#include "index/pruning.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "privacy/mechanism.h"

namespace scguard::index {
namespace {

// Uncertainty radius of the *configured* mechanism: planar Laplace uses the
// closed form of Andrés et al.; grid mechanisms report a conservative
// discrete quantile. Either way the rectangles cover the true location with
// probability >= gamma, which is what keeps pruning sound.
double MechanismConfidenceRadius(const privacy::PrivacyParams& params,
                                 double gamma,
                                 const geo::BoundingBox& region) {
  return privacy::MakeMechanismOrDie(params, region)->ConfidenceRadius(gamma);
}

}  // namespace

UncertainRegionPruner::UncertainRegionPruner(
    std::vector<WorkerRegion> workers,
    const privacy::PrivacyParams& worker_params,
    const privacy::PrivacyParams& task_params, double gamma,
    PrunerBackend backend, const geo::BoundingBox& region)
    : workers_(std::move(workers)),
      r_r_worker_(MechanismConfidenceRadius(worker_params, gamma, region)),
      r_r_task_(MechanismConfidenceRadius(task_params, gamma, region)),
      backend_(backend) {
  SCGUARD_CHECK(gamma > 0.0 && gamma < 1.0);
  if (backend_ == PrunerBackend::kLinearScan) return;

  // The expanded worker rectangles can stick out beyond the deployment
  // region; grow the grid region accordingly so border cells stay balanced.
  geo::BoundingBox grid_region = region;
  double max_extent = r_r_worker_;
  for (const auto& w : workers_) {
    max_extent = std::max(max_extent, r_r_worker_ + w.reach_radius_m);
  }
  grid_region.Extend(geo::Point{region.min_x - max_extent, region.min_y - max_extent});
  grid_region.Extend(geo::Point{region.max_x + max_extent, region.max_y + max_extent});

  if (backend_ == PrunerBackend::kGrid) {
    // Density-adaptive resolution (a perf-only knob: certification is exact
    // at any resolution): target ~64 entries per cell so boundary-cell
    // member tests stay short at a million workers without flooding small
    // workloads with empty cells.
    const int cells_per_axis = std::clamp(
        static_cast<int>(std::ceil(
            std::sqrt(static_cast<double>(workers_.size()) / 64.0))),
        16, 512);
    grid_ = std::make_unique<GridIndex>(grid_region, cells_per_axis);
    for (const auto& w : workers_) {
      grid_->Insert(w.noisy_location, r_r_worker_ + w.reach_radius_m,
                    w.worker_id);
    }
  } else {
    rtree_ = std::make_unique<RTree>();
    std::vector<RTree::Entry> entries;
    entries.reserve(workers_.size());
    for (const auto& w : workers_) {
      entries.push_back({geo::BoundingBox::FromCircle(
                             w.noisy_location, r_r_worker_ + w.reach_radius_m),
                         w.worker_id});
    }
    rtree_->BulkLoad(std::move(entries));
  }
}

std::vector<int64_t> UncertainRegionPruner::Candidates(
    geo::Point task_noisy_location) const {
  std::vector<int64_t> out;
  Candidates(task_noisy_location, out);
  return out;
}

void UncertainRegionPruner::Candidates(geo::Point task_noisy_location,
                                       std::vector<int64_t>& out) const {
  out.clear();
  const geo::BoundingBox task_box = TaskQueryBox(task_noisy_location);
  switch (backend_) {
    case PrunerBackend::kLinearScan:
      // Emits in insertion order; when construction passed ids in ascending
      // order (as the engine does) the sort below is a no-op pass.
      for (const auto& w : workers_) {
        const geo::BoundingBox worker_box = geo::BoundingBox::FromCircle(
            w.noisy_location, r_r_worker_ + w.reach_radius_m);
        if (worker_box.Intersects(task_box)) out.push_back(w.worker_id);
      }
      break;
    case PrunerBackend::kGrid:
      // Removal is native (GridIndex::Remove compacts the cell), the
      // k-way merge emits ascending ids, and nothing here consumes
      // `removed_`: the grid path pays no per-result hash probe and no
      // per-query sort. The debug check keeps a future backend regression
      // loud in tests instead of silently resurfacing the sort cost.
      grid_->Query(task_box, out);
      SCGUARD_DCHECK(std::is_sorted(out.begin(), out.end()));
      return;
    case PrunerBackend::kRTree:
      rtree_->QueryIds(task_box, out);
      break;
  }
  if (!removed_.empty()) {
    out.erase(std::remove_if(out.begin(), out.end(),
                             [this](int64_t id) {
                               return removed_.find(id) != removed_.end();
                             }),
              out.end());
  }
  if (!std::is_sorted(out.begin(), out.end())) {
    std::sort(out.begin(), out.end());
  }
}

void UncertainRegionPruner::Remove(int64_t worker_id) {
  if (backend_ == PrunerBackend::kGrid) {
    grid_->Remove(worker_id);
    return;
  }
  removed_.insert(worker_id);
}

UncertainRegionPruner::WorkerRegion* UncertainRegionPruner::FindWorker(
    int64_t worker_id) {
  if (worker_id >= 0 &&
      static_cast<size_t>(worker_id) < workers_.size() &&
      workers_[static_cast<size_t>(worker_id)].worker_id == worker_id) {
    return &workers_[static_cast<size_t>(worker_id)];
  }
  for (auto& w : workers_) {
    if (w.worker_id == worker_id) return &w;
  }
  return nullptr;
}

bool UncertainRegionPruner::Relocate(int64_t worker_id,
                                     geo::Point new_noisy_location) {
  WorkerRegion* w = FindWorker(worker_id);
  if (w == nullptr) return false;
  w->noisy_location = new_noisy_location;
  switch (backend_) {
    case PrunerBackend::kLinearScan:
      return true;  // Candidates scans the updated region directly.
    case PrunerBackend::kGrid:
      // 0 entries moved means the worker is currently Removed (matched);
      // the record update above makes a later Restore insert at the new
      // location, which is all a removed worker needs.
      grid_->Relocate(worker_id, new_noisy_location);
      return true;
    case PrunerBackend::kRTree:
      return false;  // Bulk-loaded; the caller rebuilds.
  }
  return false;
}

bool UncertainRegionPruner::Restore(int64_t worker_id) {
  WorkerRegion* w = FindWorker(worker_id);
  if (w == nullptr) return false;
  if (backend_ == PrunerBackend::kGrid) {
    if (!grid_->Contains(worker_id)) {
      grid_->Insert(w->noisy_location, r_r_worker_ + w->reach_radius_m,
                    worker_id);
    }
    return true;
  }
  removed_.erase(worker_id);
  return true;
}

}  // namespace scguard::index
