// Tests for the paper's Sec. VII extensions and rejected design variants:
// privacy budget composition, location-set Geo-I, the parallel/server-ranked
// U2E alternatives, and the reputation countermeasure.

#include <gtest/gtest.h>

#include "core/protocol.h"
#include "core/reputation.h"
#include "core/variants.h"
#include "privacy/budget.h"
#include "privacy/location_set.h"
#include "privacy/planar_laplace.h"
#include "reachability/analytical_model.h"
#include "stats/rng.h"

namespace scguard {
namespace {

using privacy::PrivacyParams;

constexpr PrivacyParams kDefault{0.7, 800.0};

// ----------------------------------------------------------- BudgetLedger

TEST(BudgetLedgerTest, TracksSpend) {
  privacy::BudgetLedger ledger(1.0);
  EXPECT_DOUBLE_EQ(ledger.remaining_epsilon(), 1.0);
  EXPECT_TRUE(ledger.Spend(0.3).ok());
  EXPECT_TRUE(ledger.Spend(0.3).ok());
  EXPECT_DOUBLE_EQ(ledger.spent_epsilon(), 0.6);
  EXPECT_NEAR(ledger.remaining_epsilon(), 0.4, 1e-12);
}

TEST(BudgetLedgerTest, RefusesOverspend) {
  privacy::BudgetLedger ledger(1.0);
  EXPECT_TRUE(ledger.Spend(0.9).ok());
  const Status overspend = ledger.Spend(0.2);
  EXPECT_TRUE(overspend.IsFailedPrecondition());
  // Failed spends consume nothing.
  EXPECT_DOUBLE_EQ(ledger.spent_epsilon(), 0.9);
  // Exact remaining spend succeeds despite floating point.
  EXPECT_TRUE(ledger.Spend(0.1).ok());
  EXPECT_FALSE(ledger.CanSpend(1e-6));
}

TEST(BudgetLedgerTest, RejectsNonPositive) {
  privacy::BudgetLedger ledger(1.0);
  EXPECT_TRUE(ledger.Spend(0.0).IsInvalidArgument());
  EXPECT_TRUE(ledger.Spend(-0.1).IsInvalidArgument());
}

TEST(BudgetLedgerTest, UniformSplit) {
  privacy::BudgetLedger ledger(1.0);
  EXPECT_DOUBLE_EQ(ledger.UniformEpsilonFor(4), 0.25);
  ASSERT_TRUE(ledger.Spend(0.5).ok());
  EXPECT_DOUBLE_EQ(ledger.UniformEpsilonFor(5), 0.1);
}

// ----------------------------------------------------- LocationSetMechanism

TEST(LocationSetTest, SplitsBudgetLinearly) {
  const auto mech = privacy::LocationSetMechanism::Create(kDefault, 4);
  ASSERT_TRUE(mech.ok());
  EXPECT_DOUBLE_EQ(mech->per_location_params().epsilon, 0.7 / 4.0);
  EXPECT_DOUBLE_EQ(mech->per_location_params().radius_m, 800.0);
}

TEST(LocationSetTest, RejectsBadArguments) {
  EXPECT_FALSE(privacy::LocationSetMechanism::Create(kDefault, 0).ok());
  EXPECT_FALSE(
      privacy::LocationSetMechanism::Create(PrivacyParams{0, 800}, 2).ok());
}

TEST(LocationSetTest, RefusesOversizedSets) {
  const auto mech = privacy::LocationSetMechanism::Create(kDefault, 2);
  ASSERT_TRUE(mech.ok());
  stats::Rng rng(1);
  const std::vector<geo::Point> three = {{0, 0}, {1, 1}, {2, 2}};
  EXPECT_TRUE(mech->PerturbSet(three, rng).status().IsInvalidArgument());
  const std::vector<geo::Point> two = {{0, 0}, {1, 1}};
  const auto out = mech->PerturbSet(two, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(LocationSetTest, NoiseGrowsWithSetSize) {
  // Mean noise radius is 2 / unit_eps = 2 n r / eps: linear in n.
  stats::Rng rng(2);
  const int trials = 4000;
  auto mean_noise = [&rng, trials](int set_size) {
    const auto mech =
        privacy::LocationSetMechanism::Create(kDefault, set_size);
    double total = 0;
    for (int i = 0; i < trials; ++i) {
      total += geo::Distance(mech->PerturbOne({0, 0}, rng), {0, 0});
    }
    return total / trials;
  };
  const double single = mean_noise(1);
  const double set_of_four = mean_noise(4);
  EXPECT_NEAR(set_of_four / single, 4.0, 0.4);
}

// ------------------------------------------------------------ U2E variants

struct VariantFixtureResult {
  std::vector<core::WorkerDevice> devices;
  std::vector<core::CandidateWorker> candidates;
  core::TaskingServer server;
};

TEST(U2eVariantsTest, AllVariantsCanAssign) {
  stats::Rng rng(3);
  const reachability::AnalyticalModel model(kDefault);
  std::vector<core::WorkerDevice> devices;
  core::TaskingServer server(&model, 0.1);
  for (int i = 0; i < 30; ++i) {
    devices.emplace_back(i, geo::Point{i * 300.0, 0.0}, 2500.0, kDefault);
    server.RegisterWorker(devices.back().Register(rng));
  }
  core::RequesterDevice requester(0, {1500, 0}, kDefault);
  const core::TaskRequest request = requester.Submit(rng);
  const auto candidates = server.FindCandidates(request);
  ASSERT_FALSE(candidates.empty());

  for (auto variant :
       {core::U2eVariant::kSequential, core::U2eVariant::kParallelBroadcast,
        core::U2eVariant::kServerRanked}) {
    const core::VariantOutcome outcome = core::RunU2eVariant(
        variant, requester, request, candidates, devices, model, 0.1, rng);
    ASSERT_TRUE(outcome.assigned_worker.has_value())
        << core::U2eVariantName(variant);
    EXPECT_TRUE(devices[static_cast<size_t>(*outcome.assigned_worker)]
                    .HandleTaskOffer(requester.exact_task_location()))
        << core::U2eVariantName(variant);
  }
}

TEST(U2eVariantsTest, DisclosureProfilesDifferAsThePaperArgues) {
  stats::Rng rng(4);
  const reachability::AnalyticalModel model(kDefault);
  std::vector<core::WorkerDevice> devices;
  core::TaskingServer server(&model, 0.1);
  stats::Rng place(5);
  for (int i = 0; i < 100; ++i) {
    devices.emplace_back(i,
                         geo::Point{place.UniformDouble(0, 10000),
                                    place.UniformDouble(0, 10000)},
                         2000.0, kDefault);
    server.RegisterWorker(devices.back().Register(rng));
  }

  int64_t seq_task_disclosures = 0, seq_worker_disclosures = 0;
  int64_t par_worker_disclosures = 0;
  int64_t ranked_server_responses = 0;
  for (int t = 0; t < 30; ++t) {
    core::RequesterDevice requester(t,
                                    {place.UniformDouble(0, 10000),
                                     place.UniformDouble(0, 10000)},
                                    kDefault);
    const core::TaskRequest request = requester.Submit(rng);
    const auto candidates = server.FindCandidates(request);
    const auto seq = core::RunU2eVariant(core::U2eVariant::kSequential,
                                         requester, request, candidates,
                                         devices, model, 0.25, rng);
    const auto par = core::RunU2eVariant(core::U2eVariant::kParallelBroadcast,
                                         requester, request, candidates,
                                         devices, model, 0.25, rng);
    const auto ranked = core::RunU2eVariant(core::U2eVariant::kServerRanked,
                                            requester, request, candidates,
                                            devices, model, 0.25, rng);
    seq_task_disclosures += seq.task_location_disclosures;
    seq_worker_disclosures += seq.worker_location_disclosures;
    par_worker_disclosures += par.worker_location_disclosures;
    ranked_server_responses += ranked.server_learned_responses;
  }
  // The sequential protocol never reveals a worker location.
  EXPECT_EQ(seq_worker_disclosures, 0);
  // The broadcast variant leaks worker locations (the paper's reason for
  // rejecting it).
  EXPECT_GT(par_worker_disclosures, 0);
  // The server-ranked variant feeds the server one correlated response per
  // candidate (the paper's reason for rejecting it).
  EXPECT_GT(ranked_server_responses, 0);
  EXPECT_GT(seq_task_disclosures, 0);
}

TEST(LocationSetTest, EmptySetIsFine) {
  const auto mech = privacy::LocationSetMechanism::Create(kDefault, 3);
  ASSERT_TRUE(mech.ok());
  stats::Rng rng(9);
  const auto out = mech->PerturbSet({}, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

// Precondition violations abort via SCGUARD_CHECK rather than corrupting
// state; pin that contract for the most safety-critical entry points.
TEST(CheckContractDeathTest, InvalidConstructionsAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(privacy::BudgetLedger ledger(0.0), "SCGUARD_CHECK");
  EXPECT_DEATH(
      {
        stats::Rng rng(1);
        (void)rng.UniformInt(0);
      },
      "SCGUARD_CHECK");
  EXPECT_DEATH(privacy::PlanarLaplace laplace(0.0), "SCGUARD_CHECK");
}

// ------------------------------------------------------------- Reputation

TEST(ReputationTest, CleanRequesterStaysClean) {
  core::ReputationTracker tracker;
  stats::Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    tracker.RecordTask(1, {rng.UniformDouble(0, 20000), rng.UniformDouble(0, 20000)});
    tracker.RecordOutcome(1, /*completed=*/true);
  }
  EXPECT_DOUBLE_EQ(tracker.Score(1), 1.0);
  EXPECT_FALSE(tracker.IsSuspicious(1));
}

TEST(ReputationTest, UnknownRequesterIsClean) {
  core::ReputationTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.Score(99), 1.0);
}

TEST(ReputationTest, ProbingAttackIsFlagged) {
  // Attack: many tasks tightly clustered around a victim, never completed.
  core::ReputationTracker tracker;
  stats::Rng rng(7);
  const geo::Point victim{5000, 5000};
  for (int i = 0; i < 40; ++i) {
    tracker.RecordTask(
        666, victim + geo::Point{rng.UniformDouble(-100, 100),
                                 rng.UniformDouble(-100, 100)});
    tracker.RecordOutcome(666, /*completed=*/false);
  }
  EXPECT_LT(tracker.Score(666), 0.2);
  EXPECT_TRUE(tracker.IsSuspicious(666));
}

TEST(ReputationTest, VolumeSignalTripsAndResets) {
  core::ReputationTracker::Config config;
  config.max_tasks_per_window = 20;
  core::ReputationTracker tracker(config);
  stats::Rng rng(8);
  for (int i = 0; i < 60; ++i) {
    tracker.RecordTask(7, {rng.UniformDouble(0, 20000), rng.UniformDouble(0, 20000)});
    tracker.RecordOutcome(7, true);
  }
  EXPECT_LT(tracker.Score(7), 0.5);
  tracker.AdvanceWindow();
  EXPECT_DOUBLE_EQ(tracker.Score(7), 1.0);  // Volume was the only signal.
}

TEST(ReputationTest, TooLittleHistoryNeverFlags) {
  core::ReputationTracker tracker;
  tracker.RecordTask(5, {0, 0});
  tracker.RecordTask(5, {1, 1});  // Extremely concentrated, but only 2 tasks.
  tracker.RecordOutcome(5, false);
  EXPECT_DOUBLE_EQ(tracker.Score(5), 1.0);
}

}  // namespace
}  // namespace scguard
