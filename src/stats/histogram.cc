#include "stats/histogram.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.h"
#include "common/str_format.h"

namespace scguard::stats {

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / num_bins),
      bins_(static_cast<size_t>(num_bins), 0) {
  SCGUARD_CHECK(lo < hi && num_bins >= 1);
}

void Histogram::Add(double value) { AddCount(value, 1); }

void Histogram::AddCount(double value, uint64_t count) {
  cumulative_valid_ = false;
  total_ += count;
  if (value < lo_) {
    underflow_ += count;
    return;
  }
  if (value >= hi_) {
    overflow_ += count;
    return;
  }
  auto bin = static_cast<size_t>((value - lo_) / width_);
  if (bin >= bins_.size()) bin = bins_.size() - 1;  // Float edge case at hi.
  bins_[bin] += count;
}

uint64_t Histogram::bin_count(int bin) const {
  SCGUARD_CHECK(bin >= 0 && bin < num_bins());
  return bins_[static_cast<size_t>(bin)];
}

const std::vector<uint64_t>& Histogram::CumulativeCounts() const {
  if (!cumulative_valid_) {
    cumulative_.resize(bins_.size());
    uint64_t running = underflow_;
    for (size_t i = 0; i < bins_.size(); ++i) {
      cumulative_[i] = running;  // Counts strictly below bin i.
      running += bins_[i];
    }
    cumulative_valid_ = true;
  }
  return cumulative_;
}

double Histogram::FractionBelow(double x) const {
  if (total_ == 0) return 0.0;
  if (x < lo_) return 0.0;
  if (x >= hi_) {
    return static_cast<double>(total_ - overflow_) / static_cast<double>(total_);
  }
  auto bin = static_cast<size_t>((x - lo_) / width_);
  if (bin >= bins_.size()) bin = bins_.size() - 1;
  const uint64_t below = CumulativeCounts()[bin];
  const double frac_in_bin =
      (x - (lo_ + static_cast<double>(bin) * width_)) / width_;
  const double partial = frac_in_bin * static_cast<double>(bins_[bin]);
  return (static_cast<double>(below) + partial) / static_cast<double>(total_);
}

double Histogram::Quantile(double p) const {
  SCGUARD_CHECK(p >= 0.0 && p <= 1.0);
  if (total_ == 0) return lo_;
  const double target = p * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (size_t i = 0; i < bins_.size(); ++i) {
    const double c = static_cast<double>(bins_[i]);
    if (cum + c >= target) {
      const double frac = c > 0 ? (target - cum) / c : 0.0;
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum += c;
  }
  return hi_;
}

double Histogram::Mean() const {
  if (total_ == 0) return 0.0;
  double sum = static_cast<double>(underflow_) * lo_ +
               static_cast<double>(overflow_) * hi_;
  for (size_t i = 0; i < bins_.size(); ++i) {
    const double mid = lo_ + (static_cast<double>(i) + 0.5) * width_;
    sum += static_cast<double>(bins_[i]) * mid;
  }
  return sum / static_cast<double>(total_);
}

Status Histogram::Merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ || other.bins_.size() != bins_.size()) {
    return Status::InvalidArgument("histogram geometries differ");
  }
  cumulative_valid_ = false;
  for (size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  return Status::OK();
}

void Histogram::Serialize(std::ostream& os) const {
  os << lo_ << ' ' << hi_ << ' ' << bins_.size() << ' ' << underflow_ << ' '
     << overflow_;
  for (uint64_t c : bins_) os << ' ' << c;
}

Result<Histogram> Histogram::Deserialize(std::istream& is) {
  double lo, hi;
  size_t n;
  uint64_t under, over;
  if (!(is >> lo >> hi >> n >> under >> over)) {
    return Status::IOError("histogram header unreadable");
  }
  if (!(lo < hi) || n == 0 || n > (1u << 24)) {
    return Status::IOError(StrCat("bad histogram geometry: lo=", lo,
                                  " hi=", hi, " bins=", n));
  }
  Histogram h(lo, hi, static_cast<int>(n));
  h.underflow_ = under;
  h.overflow_ = over;
  h.total_ = under + over;
  for (size_t i = 0; i < n; ++i) {
    uint64_t c;
    if (!(is >> c)) return Status::IOError("histogram bins truncated");
    h.bins_[i] = c;
    h.total_ += c;
  }
  return h;
}

}  // namespace scguard::stats
