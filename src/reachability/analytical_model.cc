#include "reachability/analytical_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "privacy/planar_laplace.h"
#include "stats/normal.h"
#include "stats/rice.h"

namespace scguard::reachability {
namespace {

double CoordinateVariance(const privacy::PrivacyParams& p, AnalyticalMode mode) {
  const double r_over_eps = p.radius_m / p.epsilon;
  // The paper approximates the planar Laplace by a BND whose per-coordinate
  // variance is the 1-D Laplace second moment 2 (r/eps)^2; the true planar
  // Laplace has 3 (r/eps)^2 (radial second moment 6/eps'^2 over two axes).
  const double factor = mode == AnalyticalMode::kMomentMatched ? 3.0 : 2.0;
  return factor * r_over_eps * r_over_eps;
}

}  // namespace

AnalyticalModel::AnalyticalModel(const privacy::PrivacyParams& worker_params,
                                 const privacy::PrivacyParams& task_params,
                                 AnalyticalMode mode)
    : var_worker_(CoordinateVariance(worker_params, mode)),
      var_task_(CoordinateVariance(task_params, mode)),
      unit_eps_worker_(worker_params.unit_epsilon()),
      unit_eps_task_(task_params.unit_epsilon()),
      mode_(mode) {
  SCGUARD_CHECK(worker_params.Validate().ok());
  SCGUARD_CHECK(task_params.Validate().ok());
}

double AnalyticalModel::ProbReachable(Stage stage, double observed_distance_m,
                                      double reach_radius_m) const {
  SCGUARD_DCHECK(observed_distance_m >= 0.0 && reach_radius_m >= 0.0);
  const double nu = observed_distance_m;
  const double radius = reach_radius_m;

  if (mode_ == AnalyticalMode::kExactLaplace) {
    if (stage == Stage::kU2E) {
      // Exact: the true worker is planar-Laplace distributed around the
      // observation; integrate that density over the reach disk.
      return privacy::PlanarLaplace(unit_eps_worker_)
          .DiskProbability(nu, radius);
    }
    // U2U: the combined worker+task displacement is the sum of two planar
    // Laplaces. Approximate it by one planar Laplace with the same total
    // variance: 6/e1^2 + 6/e2^2 = 6/eff^2.
    const double eff = std::sqrt(
        1.0 / (1.0 / (unit_eps_worker_ * unit_eps_worker_) +
               1.0 / (unit_eps_task_ * unit_eps_task_)));
    return privacy::PlanarLaplace(eff).DiskProbability(nu, radius);
  }

  // Variance of the difference vector z = l_w - l_t given the observations:
  // both endpoints are noisy in U2U, only the worker in U2E.
  const double var =
      stage == Stage::kU2U ? var_worker_ + var_task_ : var_worker_;

  if (stage == Stage::kU2U && mode_ == AnalyticalMode::kPaperNormalApprox) {
    // Paper Sec. IV-B1 (U2U): d^2 = |z|^2 is lambda * chi2_2(nu^2/lambda)
    // with lambda = var; approximate d^2 ~ N(2 lambda + nu^2,
    // 4 lambda^2 + 4 lambda nu^2) from the mgf's first two derivatives.
    const double lambda = var;
    const double mean = 2.0 * lambda + nu * nu;
    const double variance = 4.0 * lambda * lambda + 4.0 * lambda * nu * nu;
    const double stddev = std::sqrt(variance);
    const double p =
        stats::StandardNormalCdf((radius * radius - mean) / stddev);
    return std::clamp(p, 0.0, 1.0);
  }

  // Exact distance law of the BND approximation: Rice(nu, sqrt(var)).
  // For U2E with the paper's variance this is exactly the paper's
  // Rice(d(w', t), sqrt(2) r / eps).
  const stats::RiceDistribution rice(nu, std::sqrt(var));
  return std::clamp(rice.Cdf(radius), 0.0, 1.0);
}

void AnalyticalModel::ProbReachableBatch(Stage stage,
                                         const double* observed_distance_m,
                                         const double* reach_radius_m,
                                         size_t n, double* out) const {
  for (size_t i = 0; i < n; ++i) {
    out[i] = ProbReachable(stage, observed_distance_m[i], reach_radius_m[i]);
  }
}

}  // namespace scguard::reachability
