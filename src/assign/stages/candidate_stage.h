#ifndef SCGUARD_ASSIGN_STAGES_CANDIDATE_STAGE_H_
#define SCGUARD_ASSIGN_STAGES_CANDIDATE_STAGE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "assign/stages/cell_mirror.h"
#include "geo/bbox.h"
#include "geo/point.h"
#include "index/pruning.h"
#include "privacy/privacy_params.h"
#include "reachability/kernel.h"
#include "reachability/model.h"

namespace scguard::runtime {
class ThreadPool;
}  // namespace scguard::runtime

namespace scguard::assign {

/// Stage-level parallelism knobs (DESIGN.md section 9), the per-run analog
/// of ExperimentConfig::runtime. The determinism contract matches the
/// runtime layer's: for a fixed configuration and workload, the candidate
/// stream (and hence MatchResult and the caller RNG stream) is bit-identical
/// for every (pool, shard_size, active_set) combination — parallelism and
/// compaction only change wall-clock.
struct EngineRuntime {
  /// Pool the U2U scan fans its shards across. Not owned; must outlive the
  /// stage. nullptr (the default) keeps the scan serial, and
  /// runtime::ParallelFor falls back to serial anyway when the scan is
  /// already executing inside a pool worker (ExperimentRunner's seed
  /// fan-out), so nested parallelism never deadlocks.
  runtime::ThreadPool* pool = nullptr;

  /// Workers per scan shard. Fixed-size shards — never derived from the
  /// thread count — so per-shard candidate vectors concatenate to the same
  /// ascending id order on any pool. Smaller shards balance better once
  /// the active set drains unevenly; 4096 keeps per-shard overhead
  /// negligible up to millions of workers.
  int shard_size = 4096;

  /// Maintain per-shard active-index arrays so the scan cost tracks
  /// *available* workers: matched workers are compacted out of their shard
  /// at the next task's scan (and removed from the pruning index when one
  /// is active). Off = rescan all n workers per task with a matched[]
  /// check, the legacy full-scan path; kept as a toggle for the
  /// equivalence test and the scale bench.
  bool active_set = true;

  /// Score pruned scans through the cell-major mirror (DESIGN.md §13):
  /// candidates come from contiguous mirror slices (range kernels +
  /// whole-cell alpha certificates) instead of scattered SoA gathers over
  /// the index's id list. Engages only for the grid pruning backend with
  /// alpha thresholds and active_set on; every other configuration keeps
  /// the gather path. Decisions, metrics, and candidate order are
  /// bit-identical either way; the toggle exists for the equivalence test
  /// and A/B benching.
  bool cell_mirror = true;
};

/// The server-side U2U candidate stage (paper Alg. 1/2 Lines 1-8, DESIGN.md
/// section 10): given noisy worker registrations, answers "which available
/// workers are plausible candidates for this noisy task location?" with
/// Pr(reachable | d') >= alpha. One object owns everything the scan needs —
/// the WorkerFilterSoA snapshot, the inverted AlphaThresholdCache with its
/// per-worker certain bands, the optional uncertainty-rectangle pruner, and
/// the sharded active-set scan state — so every pipeline (ScGuardEngine,
/// core::TaskingServer, sim/dynamic, BatchMatcher) shares one filter
/// implementation and its decisions stay bit-identical across call sites.
///
/// Not thread-safe; Collect itself fans shards over the configured pool.
/// Intended to be run-local (ExperimentRunner shares one matcher across
/// concurrently running seeds, so nothing here may outlive a Run).
class U2uCandidateStage {
 public:
  /// Uncertainty-rectangle pruning (paper Sec. IV-C1) configuration; when
  /// present the stage queries the index instead of scanning every shard.
  struct Pruning {
    double gamma = 0.9;
    index::PrunerBackend backend = index::PrunerBackend::kGrid;
    /// Privacy levels used to perturb the workload; they size the
    /// confidence rectangles.
    privacy::PrivacyParams worker_params;
    privacy::PrivacyParams task_params;
    /// Deployment region (the grid backend needs it).
    geo::BoundingBox region;
  };

  struct Config {
    /// Model the server evaluates; not owned, must outlive the stage.
    const reachability::ReachabilityModel* model = nullptr;
    /// U2U acceptance threshold, in (0, 1].
    double alpha = 0.1;
    /// Kernel knobs; alpha_thresholds selects the inverted certain-band
    /// filter (exact decisions; DESIGN.md section 8).
    reachability::KernelOptions kernel;
    /// Sharded-scan and active-set knobs (DESIGN.md section 9).
    EngineRuntime runtime;
    /// Optional pruning index over the workers' uncertainty rectangles.
    std::optional<Pruning> pruning;
  };

  /// Per-Collect scan accounting, surfaced so orchestrators can feed
  /// RunMetrics and obs counters without reaching into the scan.
  struct Stats {
    int64_t scanned_last = 0;  ///< Workers scored by the last Collect.
    int64_t pruned_last = 0;   ///< Workers the index skipped last Collect.
    /// Modeled scoring-side memory traffic, cumulative over the stage's
    /// life (a traffic model, not a hardware counter — see EXPERIMENTS.md):
    /// gathered workers cost one scattered cache line per SoA stream (4 x
    /// 64 B), brute sequential scans cost the packed 32 B, mirror range
    /// scans cost the contiguous rows actually streamed (36 B bulk / 44 B
    /// boundary), and certificate-direct cells cost only their emitted id
    /// run (4 B per id, 0 for whole-cell rejects).
    int64_t gather_bytes = 0;
    /// Cells resolved purely by a whole-cell alpha certificate (accept or
    /// reject) with zero per-worker loads, cumulative.
    int64_t cells_emitted_direct = 0;
  };

  explicit U2uCandidateStage(Config config);

  /// Pre-sizes the per-worker arrays (optional; registration still grows
  /// them on demand).
  void ReserveWorkers(size_t n);

  /// Registers a worker; indices are assigned in registration order and are
  /// the ids Collect emits. Workers registered after the first Collect
  /// invalidate a configured pruning index (it is rebuilt lazily).
  uint32_t AddWorker(geo::Point noisy_location, double reach_radius_m);

  /// Re-points a worker's noisy location (dynamic re-reporting). The reach
  /// radius — and with it the inverted thresholds — stays fixed.
  void UpdateWorkerLocation(uint32_t worker, geo::Point noisy_location);

  /// Clears all matched marks and restores every shard's active set (round
  /// boundaries in multi-round simulations).
  void ResetAvailability();

  /// Finishes lazy setup — threshold prewarm for every registered radius,
  /// shard active lists, the pruning index — so the first Collect pays no
  /// setup cost. Collect calls this itself; exposed so orchestrators can
  /// keep setup out of their per-stage timings.
  void Prepare();

  /// The U2U stage for one task: ascending indices of available workers
  /// with Pr(reachable | d(w', t')) >= alpha. The returned reference stays
  /// valid until the next Collect. Decisions are bit-identical for every
  /// (pool, shard_size, active_set, pruning) combination.
  const std::vector<uint32_t>& Collect(geo::Point task_noisy_location);

  /// Scalar membership test against one task location, ignoring
  /// availability (the batch matcher scores full bipartite feasibility).
  /// Exactly `ProbReachable(kU2U, d, r) >= alpha`, via the certain-band
  /// compare when the threshold kernel is on.
  bool Decide(uint32_t worker, geo::Point task_noisy_location);

  /// Marks a worker assigned: it disappears from future Collect results.
  /// With active_set, also compacts it out of its shard at the next scan
  /// (or removes it from the pruning index).
  void MarkMatched(uint32_t worker);

  /// Clears one worker's matched mark so it reappears in future Collect
  /// results (service-side reactivation when a matched worker re-reports;
  /// the whole-run analog is ResetAvailability). With active_set, restores
  /// the worker in the pruning index / its shard's active list. No-op for
  /// workers that are not matched.
  void MarkAvailable(uint32_t worker);

  bool is_matched(uint32_t worker) const {
    return soa_.matched[worker] != 0;
  }
  size_t size() const { return soa_.size(); }
  size_t available() const;

  const Stats& stats() const { return stats_; }
  /// Cell-certification counters of a grid-backed pruning index, cumulative
  /// over the pruner's life (nullptr without pruning or for non-grid
  /// backends). Orchestrators feed these into RunMetrics / obs counters.
  const index::GridIndex::QueryStats* grid_query_stats() const {
    return pruner_ != nullptr ? pruner_->grid_query_stats() : nullptr;
  }
  /// Direct in-band model evaluations, cumulative over the stage's life
  /// (summed across shard scratches; call once per run, not per task).
  int64_t band_evals() const;
  /// Active-set shard rebuilds, cumulative.
  int64_t compactions() const;
  /// The worker snapshot (noisy coordinates, radii, matched flags); the
  /// rank stage scores candidates straight off these arrays.
  const reachability::WorkerFilterSoA& soa() const { return soa_; }
  const Config& config() const { return config_; }

 private:
  /// Per-shard scratch of the U2U scan. Each shard owns one instance for
  /// the whole run, so concurrent shard scans never share mutable state and
  /// the vectors' capacities amortize across tasks.
  struct ShardScratch {
    std::vector<uint32_t> live;    ///< Matched-filtered indices (full scan).
    std::vector<uint32_t> accept;  ///< Certain accepts, ascending.
    std::vector<uint32_t> band;    ///< In-band indices, then survivors.
    std::vector<uint32_t> out;     ///< This shard's candidates, ascending.
    int64_t scanned = 0;           ///< Workers scored for the current task.
    int64_t band_evals = 0;        ///< Direct model evals, run cumulative.
    int64_t compactions = 0;       ///< Active-set rebuilds, run cumulative.
    int64_t gather_bytes = 0;      ///< Mirror-chunk traffic, current task.
    int64_t cells_direct = 0;      ///< Certificate-direct cells, this task.
  };

  /// Scores `count` workers (an ascending index list with no matched
  /// entries) against the task's noisy location, appending the ascending
  /// candidate subset to `sc.out`. Safe to run concurrently on distinct
  /// scratches: reads only the SoA, the prewarmed threshold cache, and the
  /// (thread-safe, const) model.
  void ScanIndices(geo::Point task_noisy, const uint32_t* idx, size_t count,
                   ShardScratch& sc) const;

  /// True when Collect routes through the cell-major mirror: grid pruning
  /// backend + alpha thresholds + active_set + the cell_mirror knob. The
  /// gather path handles everything else (non-grid pruners never yield cell
  /// slices; without active_set the mirror would rescan matched workers;
  /// without thresholds there are no certain bands to mirror).
  bool UseMirror() const;

  /// The mirror Collect: certified cell walk, chunked range classification
  /// over contiguous mirror slices, bitmap union back to ascending order.
  void CollectMirror(geo::Point task_noisy);

  /// Classifies the visits [begin, end) of the current walk against the
  /// task, leaving this chunk's accepted worker ids (unordered across
  /// cells) in sc.accept and its admitted/traffic accounting in sc. Safe to
  /// run concurrently on distinct scratches.
  void ScanMirrorChunk(geo::Point task_noisy, const geo::BoundingBox& query,
                       size_t begin, size_t end, ShardScratch& sc) const;

  void RebuildShards();

  Config config_;
  reachability::WorkerFilterSoA soa_;
  std::optional<reachability::AlphaThresholdCache> thresholds_;
  std::unique_ptr<index::UncertainRegionPruner> pruner_;
  /// Cell-major scoring mirror over the grid backend's member layout.
  /// Declared after pruner_ and detached (ForgetGrid) at every
  /// pruner_.reset() site, so it never holds a dangling grid pointer.
  CellScoreMirror mirror_;
  /// Workers [0, warm_) have prewarmed thresholds and shard slots.
  size_t warm_ = 0;
  /// Set once Prepare ran; a later AddWorker/UpdateWorkerLocation drops a
  /// configured pruner so it is rebuilt over current data.
  bool prepared_ = false;

  // Sharded full-scan state (DESIGN.md section 9): fixed-size shards whose
  // boundaries depend only on (n, shard_size), never on the pool, so
  // concatenating per-shard candidates in shard order reproduces the
  // serial ascending scan bit for bit.
  std::vector<std::vector<uint32_t>> shard_active_;
  std::vector<uint8_t> shard_dirty_;
  std::vector<ShardScratch> shards_;

  /// One shard's slice [begin, end) of the pruner's ascending id list for
  /// the current task. Boundaries come from id / shard_size — the same
  /// fixed shards as the brute scan — so concatenating per-segment outputs
  /// in segment order reproduces the serial whole-list scan.
  struct Segment {
    size_t shard;
    size_t begin;
    size_t end;
  };

  /// One mirror chunk: the visit range [begin, end) of the current walk.
  /// Chunks are cut by cumulative member count against shard_size alone —
  /// pool-independent, like Segment boundaries — so chunk contents (and
  /// with them every per-chunk counter) are identical on any pool.
  struct MirrorChunk {
    size_t begin;
    size_t end;
  };

  // Reused per-Collect scratch.
  std::vector<uint32_t> candidates_;
  std::vector<int64_t> pruner_ids_;
  std::vector<Segment> segments_;
  std::vector<index::GridIndex::CellVisit> visits_;
  std::vector<MirrorChunk> mirror_chunks_;
  std::vector<uint64_t> mirror_bits_;  ///< Accept bitmap, one bit per worker.
  Stats stats_;
};

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_STAGES_CANDIDATE_STAGE_H_
