#include <gtest/gtest.h>

#include <sstream>

#include "sim/defaults.h"
#include "sim/dynamic.h"
#include "sim/experiment.h"
#include "sim/table_printer.h"

namespace scguard::sim {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table("Demo", {"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "2"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header and rows share the same width => same line length.
  std::istringstream lines(out);
  std::string line;
  size_t width = 0;
  int data_lines = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '|') continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
    ++data_lines;
  }
  EXPECT_EQ(data_lines, 3);  // Header + 2 rows.
}

TEST(TablePrinterTest, PrintJsonEmitsOneObject) {
  TablePrinter table("Demo \"quoted\"", {"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"b\\c", "2"});
  std::ostringstream os;
  table.PrintJson(os);
  EXPECT_EQ(os.str(),
            "{\"title\":\"Demo \\\"quoted\\\"\",\"columns\":[\"name\","
            "\"value\"],\"rows\":[[\"a\",\"1\"],[\"b\\\\c\",\"2\"]]}\n");
}

TEST(TablePrinterTest, NumericRowFormatting) {
  TablePrinter table("Numbers", {"label", "x", "y"});
  table.AddRow("row", {1.234, 5.0}, 1);
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("1.2"), std::string::npos);
  EXPECT_NE(os.str().find("5.0"), std::string::npos);
}

TEST(AggregateTest, MeansOverRuns) {
  assign::RunMetrics a, b;
  a.num_tasks = b.num_tasks = 10;
  a.assigned_tasks = 4;
  b.assigned_tasks = 6;
  a.accepted_assignments = 4;
  b.accepted_assignments = 6;
  a.travel_sum_m = 4000;  // Mean 1000.
  b.travel_sum_m = 12000; // Mean 2000.
  a.false_hits = 2;
  b.false_hits = 4;
  const AggregatedMetrics agg = Aggregate({a, b});
  EXPECT_EQ(agg.seeds, 2);
  EXPECT_DOUBLE_EQ(agg.assigned_tasks, 5.0);
  EXPECT_DOUBLE_EQ(agg.travel_m, 1500.0);
  EXPECT_DOUBLE_EQ(agg.false_hits, 3.0);
}

TEST(AggregateTest, EmptyIsZero) {
  const AggregatedMetrics agg = Aggregate({});
  EXPECT_EQ(agg.seeds, 0);
  EXPECT_DOUBLE_EQ(agg.assigned_tasks, 0.0);
}

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.synth.num_taxis = 300;
  config.synth.mean_trips_per_taxi = 6.0;
  config.workload.num_workers = 50;
  config.workload.num_tasks = 50;
  config.num_seeds = 3;
  return config;
}

TEST(ExperimentRunnerTest, CreateRejectsBadSeeds) {
  ExperimentConfig config = TinyConfig();
  config.num_seeds = 0;
  EXPECT_FALSE(ExperimentRunner::Create(config).ok());
}

TEST(ExperimentRunnerTest, WorkloadsAreDeterministicPerSeed) {
  const auto runner = ExperimentRunner::Create(TinyConfig());
  ASSERT_TRUE(runner.ok());
  const privacy::PrivacyParams params = DefaultPrivacy();
  const auto w1 = runner->MakeWorkload(0, params, params);
  const auto w2 = runner->MakeWorkload(0, params, params);
  ASSERT_TRUE(w1.ok() && w2.ok());
  ASSERT_EQ(w1->workers.size(), w2->workers.size());
  for (size_t i = 0; i < w1->workers.size(); ++i) {
    EXPECT_EQ(w1->workers[i].location, w2->workers[i].location);
    EXPECT_EQ(w1->workers[i].noisy_location, w2->workers[i].noisy_location);
  }
  const auto w3 = runner->MakeWorkload(1, params, params);
  ASSERT_TRUE(w3.ok());
  EXPECT_NE(w1->workers[0].location, w3->workers[0].location);
}

TEST(ExperimentRunnerTest, TrueWorkloadSharedAcrossPrivacyLevels) {
  // Common random numbers: sweeping (eps, r) must not change the sampled
  // true locations, only the noise.
  const auto runner = ExperimentRunner::Create(TinyConfig());
  ASSERT_TRUE(runner.ok());
  const auto strict = runner->MakeWorkload(0, {0.1, 2000.0}, {0.1, 2000.0});
  const auto loose = runner->MakeWorkload(0, {1.0, 200.0}, {1.0, 200.0});
  ASSERT_TRUE(strict.ok() && loose.ok());
  for (size_t i = 0; i < strict->workers.size(); ++i) {
    EXPECT_EQ(strict->workers[i].location, loose->workers[i].location);
  }
  // More noise on average under the stricter level.
  double strict_noise = 0, loose_noise = 0;
  for (size_t i = 0; i < strict->workers.size(); ++i) {
    strict_noise +=
        geo::Distance(strict->workers[i].location, strict->workers[i].noisy_location);
    loose_noise +=
        geo::Distance(loose->workers[i].location, loose->workers[i].noisy_location);
  }
  EXPECT_GT(strict_noise, loose_noise * 3);
}

TEST(ExperimentRunnerTest, RunAggregatesAcrossSeeds) {
  const auto runner = ExperimentRunner::Create(TinyConfig());
  ASSERT_TRUE(runner.ok());
  assign::MatcherHandle handle =
      assign::MakeGroundTruth(assign::RankStrategy::kNearest);
  const auto agg = runner->Run(handle, DefaultPrivacy(), DefaultPrivacy());
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->seeds, 3);
  EXPECT_GT(agg->assigned_tasks, 0.0);
  EXPECT_LE(agg->assigned_tasks, 50.0);
  EXPECT_GT(agg->travel_m, 0.0);
}

TEST(ExperimentRunnerTest, GroundTruthDominatesOblivious) {
  // The structural headline of the paper's evaluation: exact locations
  // upper-bound the oblivious baseline's utility.
  const auto runner = ExperimentRunner::Create(TinyConfig());
  ASSERT_TRUE(runner.ok());
  const privacy::PrivacyParams params{0.4, 1400.0};  // Noticeable noise.
  assign::MatcherHandle exact =
      assign::MakeGroundTruth(assign::RankStrategy::kNearest);
  assign::AlgorithmParams aparams;
  aparams.worker_params = params;
  aparams.task_params = params;
  assign::MatcherHandle oblivious =
      assign::MakeOblivious(assign::RankStrategy::kNearest, aparams);
  const auto exact_agg = runner->Run(exact, params, params);
  const auto obl_agg = runner->Run(oblivious, params, params);
  ASSERT_TRUE(exact_agg.ok() && obl_agg.ok());
  EXPECT_GT(exact_agg->assigned_tasks, obl_agg->assigned_tasks);
}

sim::DynamicConfig TinyDynamic() {
  DynamicConfig config;
  config.rounds = 4;
  config.num_workers = 80;
  config.tasks_per_round = 30;
  return config;
}

TEST(DynamicWorkersTest, ProducesOneRecordPerRound) {
  const auto rounds =
      RunDynamicWorkers(TinyDynamic(), ReportingStrategy::kNaiveRefresh);
  ASSERT_EQ(rounds.size(), 4u);
  for (size_t i = 0; i < rounds.size(); ++i) {
    EXPECT_EQ(rounds[i].round, static_cast<int>(i));
    EXPECT_GE(rounds[i].assigned, 0.0);
    EXPECT_LE(rounds[i].assigned, 30.0);
  }
}

TEST(DynamicWorkersTest, NaiveRefreshComposesEpsilonLinearly) {
  const auto config = TinyDynamic();
  const auto rounds =
      RunDynamicWorkers(config, ReportingStrategy::kNaiveRefresh);
  for (size_t i = 0; i < rounds.size(); ++i) {
    EXPECT_NEAR(rounds[i].effective_epsilon,
                config.joint.epsilon * static_cast<double>(i + 1), 1e-9);
  }
}

TEST(DynamicWorkersTest, ReportOnceKeepsEpsilonFixedButGoesStale) {
  const auto config = TinyDynamic();
  const auto rounds = RunDynamicWorkers(config, ReportingStrategy::kReportOnce);
  for (const auto& r : rounds) {
    EXPECT_DOUBLE_EQ(r.effective_epsilon, config.joint.epsilon);
  }
  // Staleness: report error in the last round exceeds the first round's.
  EXPECT_GT(rounds.back().report_error_m, rounds.front().report_error_m);
}

TEST(DynamicWorkersTest, LocationSetSplitHonorsJointBudget) {
  const auto config = TinyDynamic();
  const auto rounds =
      RunDynamicWorkers(config, ReportingStrategy::kLocationSetSplit);
  EXPECT_NEAR(rounds.back().effective_epsilon, config.joint.epsilon, 1e-9);
  // The split noise is far larger than a full-budget report's.
  const auto naive = RunDynamicWorkers(config, ReportingStrategy::kNaiveRefresh);
  EXPECT_GT(rounds.front().report_error_m, 2.0 * naive.front().report_error_m);
}

TEST(DefaultsTest, PaperParameterGrid) {
  EXPECT_EQ(kEpsilons.size(), 4u);
  EXPECT_EQ(kRadii.size(), 4u);
  EXPECT_EQ(kAlphas.size(), 8u);
  EXPECT_EQ(kBetas.size(), 7u);
  EXPECT_DOUBLE_EQ(DefaultPrivacy().epsilon, 0.7);
  EXPECT_DOUBLE_EQ(DefaultPrivacy().radius_m, 800.0);
  // Paper Sec. V-A: the default alpha is below the default beta, and the
  // beta sweep never goes below the default alpha.
  EXPECT_LT(kDefaultAlpha, kDefaultBeta);
  for (double b : kBetas) EXPECT_GE(b, kDefaultAlpha - 1e-12);
}

}  // namespace
}  // namespace scguard::sim
