#include "reachability/empirical_model.h"

#include <istream>
#include <memory>
#include <ostream>
#include <utility>
#include <vector>

#include "privacy/mechanism.h"
#include "runtime/parallel_for.h"

namespace scguard::reachability {
namespace {

// Stream-id base for the per-shard Rng forks; offset so shard streams
// cannot collide with the small fork ids (1, 2, 3, ...) callers commonly
// use on the same seed.
constexpr uint64_t kShardStreamBase = 0x5ca1ab1e00000000ULL;

// One serial Monte-Carlo pass of `num_samples` pairs into (u2u, u2e).
// Mechanism-agnostic: whatever distribution Perturb realizes is what the
// tables (and hence U2U/U2E decisions) learn.
void SampleInto(const EmpiricalModelConfig& config,
                const privacy::Mechanism& worker_mech,
                const privacy::Mechanism& task_mech, uint64_t num_samples,
                stats::Rng& rng, EmpiricalTable& u2u, EmpiricalTable& u2e) {
  const auto& region = config.region;
  for (uint64_t i = 0; i < num_samples; ++i) {
    const geo::Point worker{rng.UniformDouble(region.min_x, region.max_x),
                            rng.UniformDouble(region.min_y, region.max_y)};
    const geo::Point task{rng.UniformDouble(region.min_x, region.max_x),
                          rng.UniformDouble(region.min_y, region.max_y)};
    const double d_true = geo::Distance(worker, task);
    const geo::Point worker_noisy = worker_mech.Perturb(worker, rng);
    const geo::Point task_noisy = task_mech.Perturb(task, rng);
    // U2U: both endpoints observed with noise.
    u2u.Add(d_true, geo::Distance(worker_noisy, task_noisy));
    // U2E: exact task location, noisy worker location.
    u2e.Add(d_true, geo::Distance(worker_noisy, task));
  }
}

}  // namespace

EmpiricalModel::EmpiricalModel(EmpiricalTable u2u, EmpiricalTable u2e)
    : u2u_(std::make_unique<EmpiricalTable>(std::move(u2u))),
      u2e_(std::make_unique<EmpiricalTable>(std::move(u2e))) {}

Result<EmpiricalModel> EmpiricalModel::Build(
    const EmpiricalModelConfig& config,
    const privacy::PrivacyParams& worker_params,
    const privacy::PrivacyParams& task_params, stats::Rng& rng,
    runtime::ThreadPool* pool) {
  if (config.region.empty()) {
    return Status::InvalidArgument("empirical model needs a non-empty region");
  }
  if (config.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be > 0");
  }
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  SCGUARD_RETURN_NOT_OK(worker_params.Validate());
  SCGUARD_RETURN_NOT_OK(task_params.Validate());

  // Built once and shared read-only across shards; Perturb is const and
  // thread-safe, so shard determinism is carried entirely by the forked
  // rng streams. Grid mechanisms discretize the sampling region unless
  // their spec pins one.
  SCGUARD_ASSIGN_OR_RETURN(const auto worker_mech,
                           privacy::MakeMechanism(worker_params, config.region));
  SCGUARD_ASSIGN_OR_RETURN(const auto task_mech,
                           privacy::MakeMechanism(task_params, config.region));

  EmpiricalTable u2u(config.bucket_width_m, config.num_buckets,
                     config.true_max_m, config.true_bins);
  EmpiricalTable u2e(config.bucket_width_m, config.num_buckets,
                     config.true_max_m, config.true_bins);

  if (config.num_shards == 1) {
    // Legacy exact path: one pass consuming the caller's rng in place.
    SampleInto(config, *worker_mech, *task_mech, config.num_samples, rng, u2u,
               u2e);
  } else {
    // Sharded path: shard s draws from the independent stream
    // rng.Fork(base + s); Fork derives from the rng's seed (not its
    // position), so the shard streams — and hence the merged tables —
    // are fixed by (seed, num_shards) alone.
    const auto shards = static_cast<uint64_t>(config.num_shards);
    const uint64_t base = config.num_samples / shards;
    const uint64_t remainder = config.num_samples % shards;
    struct Partial {
      EmpiricalTable u2u;
      EmpiricalTable u2e;
    };
    std::vector<std::unique_ptr<Partial>> partials(shards);
    const Status st = runtime::ParallelFor(
        pool, 0, config.num_shards, 1,
        [&](int64_t lo, int64_t hi) -> Status {
          for (int64_t s = lo; s < hi; ++s) {
            const auto shard = static_cast<uint64_t>(s);
            stats::Rng shard_rng = rng.Fork(kShardStreamBase + shard);
            auto partial = std::make_unique<Partial>(Partial{
                EmpiricalTable(config.bucket_width_m, config.num_buckets,
                               config.true_max_m, config.true_bins),
                EmpiricalTable(config.bucket_width_m, config.num_buckets,
                               config.true_max_m, config.true_bins)});
            const uint64_t samples = base + (shard < remainder ? 1 : 0);
            SampleInto(config, *worker_mech, *task_mech, samples, shard_rng,
                       partial->u2u, partial->u2e);
            partials[shard] = std::move(partial);
          }
          return Status::OK();
        });
    SCGUARD_RETURN_NOT_OK(st);
    for (const auto& partial : partials) {
      SCGUARD_RETURN_NOT_OK(u2u.Merge(partial->u2u));
      SCGUARD_RETURN_NOT_OK(u2e.Merge(partial->u2e));
    }
  }

  // Finished tables are immutable from here on; pre-build the lazy query
  // caches so concurrent ProbReachable calls are read-only.
  u2u.WarmQueryCache();
  u2e.WarmQueryCache();
  return EmpiricalModel(std::move(u2u), std::move(u2e));
}

double EmpiricalModel::ProbReachable(Stage stage, double observed_distance_m,
                                     double reach_radius_m) const {
  const EmpiricalTable& table = stage == Stage::kU2U ? *u2u_ : *u2e_;
  return table.ProbBelow(observed_distance_m, reach_radius_m);
}

void EmpiricalModel::ProbReachableBatch(Stage stage,
                                        const double* observed_distance_m,
                                        const double* reach_radius_m, size_t n,
                                        double* out) const {
  const EmpiricalTable& table = stage == Stage::kU2U ? *u2u_ : *u2e_;
  for (size_t i = 0; i < n; ++i) {
    out[i] = table.ProbBelow(observed_distance_m[i], reach_radius_m[i]);
  }
}

void EmpiricalModel::Serialize(std::ostream& os) const {
  os << "empirical-model-v1\n";
  u2u_->Serialize(os);
  u2e_->Serialize(os);
}

Result<EmpiricalModel> EmpiricalModel::Deserialize(std::istream& is) {
  std::string magic;
  if (!(is >> magic) || magic != "empirical-model-v1") {
    return Status::IOError("bad empirical model header");
  }
  SCGUARD_ASSIGN_OR_RETURN(EmpiricalTable u2u, EmpiricalTable::Deserialize(is));
  SCGUARD_ASSIGN_OR_RETURN(EmpiricalTable u2e, EmpiricalTable::Deserialize(is));
  u2u.WarmQueryCache();
  u2e.WarmQueryCache();
  return EmpiricalModel(std::move(u2u), std::move(u2e));
}

}  // namespace scguard::reachability
