#include "privacy/geo_ind.h"

#include <cmath>

#include "common/check.h"

namespace scguard::privacy {

GeoIndMechanism::GeoIndMechanism(const PrivacyParams& params)
    : params_(params), laplace_(params.unit_epsilon()) {
  SCGUARD_CHECK(params.Validate().ok());
}

Result<GeoIndMechanism> GeoIndMechanism::Create(const PrivacyParams& params) {
  SCGUARD_RETURN_NOT_OK(params.Validate());
  return GeoIndMechanism(params);
}

geo::Point GeoIndMechanism::Perturb(geo::Point x, stats::Rng& rng) const {
  return x + laplace_.Sample(rng);
}

double GeoIndMechanism::DistinguishabilityBound(double distance_m) const {
  return std::exp(params_.unit_epsilon() * distance_m);
}

}  // namespace scguard::privacy
