#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "data/beijing.h"
#include "data/csv_loader.h"
#include "data/tdrive_synth.h"
#include "data/trip_model.h"
#include "data/workload.h"
#include "stats/rng.h"

namespace scguard::data {
namespace {

TEST(BeijingTest, RegionIsMetroScale) {
  const geo::BoundingBox region = BeijingRegion();
  EXPECT_FALSE(region.empty());
  EXPECT_NEAR(region.Width(), 51000.0, 5000.0);
  EXPECT_NEAR(region.Height(), 56000.0, 5000.0);
  EXPECT_TRUE(region.Contains(BeijingProjection().Forward(kBeijingCenter)));
}

TEST(HotspotMixtureTest, SamplesStayInRegion) {
  stats::Rng rng(1);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {10000, 10000});
  const HotspotMixture mix = HotspotMixture::MakeBeijingLike(region, 10, rng);
  EXPECT_EQ(mix.hotspots().size(), 10u);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(region.Contains(mix.Sample(rng)));
  }
}

TEST(HotspotMixtureTest, DemandIsClustered) {
  stats::Rng rng(2);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {30000, 30000});
  const HotspotMixture mix = HotspotMixture::MakeBeijingLike(region, 12, rng);
  // A clustered surface puts much more mass near the top hotspot than a
  // uniform one would.
  const auto& top = mix.hotspots().front();
  int near_top = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (geo::Distance(mix.Sample(rng), top.center) < 2.0 * top.sigma_m) {
      ++near_top;
    }
  }
  const double disk_area = M_PI * 4.0 * top.sigma_m * top.sigma_m;
  const double uniform_expectation = n * disk_area / region.Area();
  EXPECT_GT(near_top, 2.0 * uniform_expectation);
}

TEST(HotspotMixtureTest, PureBackgroundIsUniform) {
  stats::Rng rng(3);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {1000, 1000});
  const HotspotMixture mix(region, {}, 1.0);
  double sum_x = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum_x += mix.Sample(rng).x;
  EXPECT_NEAR(sum_x / n, 500.0, 10.0);
}

TEST(TDriveSynthTest, CreateValidatesConfig) {
  stats::Rng rng(4);
  const geo::BoundingBox region = BeijingRegion();
  TDriveSynthConfig config;
  config.num_taxis = 0;
  EXPECT_FALSE(TDriveSynthesizer::Create(config, region, rng).ok());
  config = TDriveSynthConfig();
  EXPECT_FALSE(TDriveSynthesizer::Create(config, geo::BoundingBox(), rng).ok());
}

TDriveSynthConfig SmallSynth() {
  TDriveSynthConfig config;
  config.num_taxis = 200;
  config.mean_trips_per_taxi = 8.0;
  return config;
}

TEST(TDriveSynthTest, TripsAreWellFormed) {
  stats::Rng rng(5);
  const geo::BoundingBox region = BeijingRegion();
  const auto synth = TDriveSynthesizer::Create(SmallSynth(), region, rng);
  ASSERT_TRUE(synth.ok());
  const std::vector<Trip> trips = synth->GenerateTrips(rng);
  ASSERT_GT(trips.size(), 500u);
  double prev_pickup = -1.0;
  for (const auto& t : trips) {
    EXPECT_GE(t.pickup_time_s, prev_pickup);  // Sorted by pickup time.
    prev_pickup = t.pickup_time_s;
    EXPECT_GE(t.dropoff_time_s, t.pickup_time_s);
    EXPECT_TRUE(region.Contains(t.pickup));
    EXPECT_TRUE(region.Contains(t.dropoff));
    EXPECT_GE(t.taxi_id, 0);
    EXPECT_LT(t.taxi_id, 200);
  }
}

TEST(TDriveSynthTest, DeterministicForEqualSeeds) {
  const geo::BoundingBox region = BeijingRegion();
  stats::Rng rng_a(6), rng_b(6);
  const auto synth_a = TDriveSynthesizer::Create(SmallSynth(), region, rng_a);
  const auto synth_b = TDriveSynthesizer::Create(SmallSynth(), region, rng_b);
  const auto trips_a = synth_a->GenerateTrips(rng_a);
  const auto trips_b = synth_b->GenerateTrips(rng_b);
  ASSERT_EQ(trips_a.size(), trips_b.size());
  for (size_t i = 0; i < trips_a.size(); i += 97) {
    EXPECT_EQ(trips_a[i].pickup, trips_b[i].pickup);
    EXPECT_DOUBLE_EQ(trips_a[i].pickup_time_s, trips_b[i].pickup_time_s);
  }
}

std::vector<Trip> MakeTrips(int taxis, int per_taxi) {
  std::vector<Trip> trips;
  stats::Rng rng(7);
  for (int taxi = 0; taxi < taxis; ++taxi) {
    double clock = rng.UniformDouble(0, 1000);
    for (int k = 0; k < per_taxi; ++k) {
      Trip t;
      t.taxi_id = taxi;
      t.pickup = {rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000)};
      t.dropoff = {rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000)};
      t.pickup_time_s = clock;
      clock += rng.UniformDouble(60, 600);
      t.dropoff_time_s = clock;
      trips.push_back(t);
    }
  }
  std::sort(trips.begin(), trips.end(),
            [](const Trip& a, const Trip& b) { return a.pickup_time_s < b.pickup_time_s; });
  return trips;
}

TEST(WorkloadTest, BuildFromTripsShapes) {
  const std::vector<Trip> trips = MakeTrips(50, 6);
  WorkloadConfig config;
  config.num_workers = 30;
  config.num_tasks = 40;
  stats::Rng rng(8);
  const auto workload = BuildWorkloadFromTrips(trips, config, rng);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->workers.size(), 30u);
  EXPECT_EQ(workload->tasks.size(), 40u);
  for (const auto& w : workload->workers) {
    EXPECT_GE(w.reach_radius_m, config.reach_min_m);
    EXPECT_LE(w.reach_radius_m, config.reach_max_m);
  }
  // Tasks arrive in time order with dense arrival sequence.
  for (size_t i = 0; i < workload->tasks.size(); ++i) {
    EXPECT_EQ(workload->tasks[i].arrival_seq, static_cast<int64_t>(i));
  }
}

TEST(WorkloadTest, WorkersAreAtFinalDropoffs) {
  // Single taxi with three trips: its worker location must be the last
  // trip's dropoff.
  std::vector<Trip> trips = MakeTrips(1, 3);
  WorkloadConfig config;
  config.num_workers = 1;
  config.num_tasks = 1;
  stats::Rng rng(9);
  const auto workload = BuildWorkloadFromTrips(trips, config, rng);
  ASSERT_TRUE(workload.ok());
  const Trip* last = &trips[0];
  for (const auto& t : trips) {
    if (t.dropoff_time_s > last->dropoff_time_s) last = &t;
  }
  EXPECT_EQ(workload->workers[0].location, last->dropoff);
}

TEST(WorkloadTest, FailsWhenTooFewTaxisOrTrips) {
  const std::vector<Trip> trips = MakeTrips(5, 2);
  stats::Rng rng(10);
  WorkloadConfig config;
  config.num_workers = 10;  // Only 5 taxis.
  config.num_tasks = 5;
  EXPECT_TRUE(BuildWorkloadFromTrips(trips, config, rng).status().IsInvalidArgument());
  config.num_workers = 3;
  config.num_tasks = 100;  // Only 10 trips.
  EXPECT_TRUE(BuildWorkloadFromTrips(trips, config, rng).status().IsInvalidArgument());
}

TEST(WorkloadTest, PerturbFillsNoisyLocations) {
  const std::vector<Trip> trips = MakeTrips(20, 4);
  WorkloadConfig config;
  config.num_workers = 10;
  config.num_tasks = 10;
  stats::Rng rng(11);
  auto workload = BuildWorkloadFromTrips(trips, config, rng);
  ASSERT_TRUE(workload.ok());
  const privacy::PrivacyParams params{0.7, 800.0};
  PerturbWorkload(params, params, rng, *workload);
  int moved = 0;
  for (const auto& w : workload->workers) {
    moved += (w.noisy_location == w.location) ? 0 : 1;
  }
  EXPECT_EQ(moved, 10);  // Perturbation almost surely moves every point.
}

TEST(WorkloadTest, UniformWorkloadInRegion) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0}, {100, 100});
  WorkloadConfig config;
  config.num_workers = 50;
  config.num_tasks = 60;
  stats::Rng rng(12);
  const assign::Workload w = MakeUniformWorkload(region, config, rng);
  EXPECT_EQ(w.workers.size(), 50u);
  EXPECT_EQ(w.tasks.size(), 60u);
  for (const auto& worker : w.workers) EXPECT_TRUE(region.Contains(worker.location));
  for (const auto& task : w.tasks) EXPECT_TRUE(region.Contains(task.location));
}

TEST(CsvLoaderTest, RoundTrip) {
  const std::vector<Trip> trips = MakeTrips(5, 3);
  std::stringstream ss;
  WriteTripsCsv(trips, ss);
  const auto loaded = LoadTripsCsv(ss);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), trips.size());
  for (size_t i = 0; i < trips.size(); ++i) {
    EXPECT_EQ((*loaded)[i].taxi_id, trips[i].taxi_id);
    EXPECT_NEAR((*loaded)[i].pickup.x, trips[i].pickup.x, 1e-3);
    EXPECT_NEAR((*loaded)[i].dropoff.y, trips[i].dropoff.y, 1e-3);
  }
}

TEST(CsvLoaderTest, SkipsHeaderAndBlankLines) {
  std::stringstream ss(
      "taxi_id,pickup_time_s,pickup_x,pickup_y,dropoff_time_s,dropoff_x,dropoff_y\n"
      "\n"
      "1,10,0,0,20,5,5\n"
      "\n");
  const auto loaded = LoadTripsCsv(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
}

TEST(CsvLoaderTest, RejectsMalformedRows) {
  {
    std::stringstream ss("1,10,0,0,20,5\n");  // 6 fields.
    EXPECT_TRUE(LoadTripsCsv(ss).status().IsInvalidArgument());
  }
  {
    std::stringstream ss("1,10,zero,0,20,5,5\n");  // Bad number.
    EXPECT_TRUE(LoadTripsCsv(ss).status().IsInvalidArgument());
  }
  {
    std::stringstream ss("1,30,0,0,20,5,5\n");  // Dropoff before pickup.
    EXPECT_TRUE(LoadTripsCsv(ss).status().IsInvalidArgument());
  }
}

TEST(CsvLoaderTest, LatLonVariantProjects) {
  const geo::LocalProjection proj({39.9, 116.4});
  std::stringstream ss("7,100,116.41,39.91,200,116.42,39.92\n");
  const auto loaded = LoadTripsCsvLatLon(ss, proj);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  const geo::Point expected = proj.Forward({39.91, 116.41});
  EXPECT_NEAR((*loaded)[0].pickup.x, expected.x, 1e-9);
  EXPECT_NEAR((*loaded)[0].pickup.y, expected.y, 1e-9);
}

TEST(CsvLoaderTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadTripsCsvFile("/nonexistent/trips.csv").status().IsIOError());
}

}  // namespace
}  // namespace scguard::data
