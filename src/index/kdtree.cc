#include "index/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace scguard::index {

KdTree::KdTree(std::vector<Entry> entries) : entries_(std::move(entries)) {
  if (entries_.empty()) return;
  std::vector<int> order(entries_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  nodes_.reserve(entries_.size());
  root_ = Build(0, static_cast<int>(order.size()), /*split_on_x=*/true, order);
}

int KdTree::Build(int lo, int hi, bool split_on_x, std::vector<int>& order) {
  if (lo >= hi) return -1;
  const int mid = lo + (hi - lo) / 2;
  auto begin = order.begin();
  std::nth_element(begin + lo, begin + mid, begin + hi,
                   [this, split_on_x](int a, int b) {
                     const geo::Point& pa = entries_[static_cast<size_t>(a)].point;
                     const geo::Point& pb = entries_[static_cast<size_t>(b)].point;
                     return split_on_x ? pa.x < pb.x : pa.y < pb.y;
                   });
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back({order[static_cast<size_t>(mid)], -1, -1, split_on_x});
  // Children are built after the push, so indices must be re-assigned via
  // the local copy (vector reallocation invalidates references).
  const int left = Build(lo, mid, !split_on_x, order);
  const int right = Build(mid + 1, hi, !split_on_x, order);
  nodes_[static_cast<size_t>(node_index)].left = left;
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

void KdTree::NearestRec(int node, geo::Point query,
                        const std::function<bool(int64_t)>& skip,
                        int /*exclude_count*/, std::vector<Neighbor>& best,
                        size_t k) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<size_t>(node)];
  const Entry& e = entries_[static_cast<size_t>(n.entry)];

  if (skip == nullptr || !skip(e.id)) {
    const double d = geo::Distance(query, e.point);
    if (best.size() < k) {
      best.push_back({e.id, d});
      std::push_heap(best.begin(), best.end(),
                     [](const Neighbor& a, const Neighbor& b) {
                       return a.distance < b.distance;
                     });
    } else if (d < best.front().distance) {
      std::pop_heap(best.begin(), best.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance;
                    });
      best.back() = {e.id, d};
      std::push_heap(best.begin(), best.end(),
                     [](const Neighbor& a, const Neighbor& b) {
                       return a.distance < b.distance;
                     });
    }
  }

  const double axis_delta =
      n.split_on_x ? query.x - e.point.x : query.y - e.point.y;
  const int near_child = axis_delta <= 0.0 ? n.left : n.right;
  const int far_child = axis_delta <= 0.0 ? n.right : n.left;
  NearestRec(near_child, query, skip, 0, best, k);
  // Visit the far side only if the splitting plane is closer than the
  // current k-th best (or we do not yet have k).
  const double worst =
      best.size() < k ? std::numeric_limits<double>::infinity()
                      : best.front().distance;
  if (std::abs(axis_delta) < worst) {
    NearestRec(far_child, query, skip, 0, best, k);
  }
}

KdTree::Neighbor KdTree::Nearest(geo::Point query,
                                 const std::function<bool(int64_t)>& skip) const {
  std::vector<Neighbor> best;
  NearestRec(root_, query, skip, 0, best, 1);
  if (best.empty()) return {-1, std::numeric_limits<double>::infinity()};
  return best.front();
}

std::vector<KdTree::Neighbor> KdTree::KNearest(geo::Point query, int k) const {
  SCGUARD_CHECK(k >= 1);
  std::vector<Neighbor> best;
  NearestRec(root_, query, nullptr, 0, best, static_cast<size_t>(k));
  std::sort(best.begin(), best.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  });
  return best;
}

void KdTree::RadiusRec(int node, geo::Point query, double radius,
                       std::vector<Neighbor>& out) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<size_t>(node)];
  const Entry& e = entries_[static_cast<size_t>(n.entry)];
  const double d = geo::Distance(query, e.point);
  if (d <= radius) out.push_back({e.id, d});
  const double axis_delta =
      n.split_on_x ? query.x - e.point.x : query.y - e.point.y;
  const int near_child = axis_delta <= 0.0 ? n.left : n.right;
  const int far_child = axis_delta <= 0.0 ? n.right : n.left;
  RadiusRec(near_child, query, radius, out);
  if (std::abs(axis_delta) <= radius) RadiusRec(far_child, query, radius, out);
}

std::vector<KdTree::Neighbor> KdTree::WithinRadius(geo::Point query,
                                                   double radius) const {
  std::vector<Neighbor> out;
  RadiusRec(root_, query, radius, out);
  return out;
}

}  // namespace scguard::index
