#ifndef SCGUARD_GEO_CIRCLE_H_
#define SCGUARD_GEO_CIRCLE_H_

#include "geo/bbox.h"
#include "geo/point.h"

namespace scguard::geo {

/// A disk in local planar coordinates: the worker's spatial region R_w of
/// the paper is `Circle{l_w, R_w}`.
struct Circle {
  Point center;
  double radius = 0.0;

  bool Contains(Point p) const { return Distance(center, p) <= radius; }

  bool Intersects(const Circle& o) const {
    return Distance(center, o.center) <= radius + o.radius;
  }

  BoundingBox Mbr() const { return BoundingBox::FromCircle(center, radius); }
};

}  // namespace scguard::geo

#endif  // SCGUARD_GEO_CIRCLE_H_
