#include "core/scguard.h"

#include <utility>

#include "data/beijing.h"

namespace scguard::core {

std::string_view AlgorithmKindName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kGroundTruthRR:
      return "GroundTruth-RR";
    case AlgorithmKind::kGroundTruthNN:
      return "GroundTruth-NN";
    case AlgorithmKind::kObliviousRR:
      return "Oblivious-RR";
    case AlgorithmKind::kObliviousRN:
      return "Oblivious-RN";
    case AlgorithmKind::kProbabilisticModel:
      return "Probabilistic-Model";
    case AlgorithmKind::kProbabilisticData:
      return "Probabilistic-Data";
  }
  return "?";
}

ScGuard::ScGuard(ScGuardOptions options, assign::MatcherHandle handle)
    : options_(std::move(options)),
      handle_(std::make_unique<assign::MatcherHandle>(std::move(handle))) {}

Result<ScGuard> ScGuard::Create(const ScGuardOptions& options) {
  SCGUARD_RETURN_NOT_OK(options.worker_params.Validate());
  SCGUARD_RETURN_NOT_OK(options.task_params.Validate());
  if (!(options.alpha > 0.0 && options.alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (!(options.beta >= 0.0 && options.beta <= 1.0)) {
    return Status::InvalidArgument("beta must be in [0, 1]");
  }
  if (options.redundancy_k < 1) {
    return Status::InvalidArgument("redundancy_k must be >= 1");
  }

  assign::AlgorithmParams params;
  params.worker_params = options.worker_params;
  params.task_params = options.task_params;
  params.alpha = options.alpha;
  params.beta = options.beta;
  params.redundancy_k = options.redundancy_k;
  params.pruning_gamma = options.pruning_gamma;
  params.analytical_mode = options.analytical_mode;

  switch (options.algorithm) {
    case AlgorithmKind::kGroundTruthRR:
      return ScGuard(options, assign::MakeGroundTruth(assign::RankStrategy::kRandom));
    case AlgorithmKind::kGroundTruthNN:
      return ScGuard(options,
                     assign::MakeGroundTruth(assign::RankStrategy::kNearest));
    case AlgorithmKind::kObliviousRR:
      return ScGuard(options,
                     assign::MakeOblivious(assign::RankStrategy::kRandom, params));
    case AlgorithmKind::kObliviousRN:
      return ScGuard(options,
                     assign::MakeOblivious(assign::RankStrategy::kNearest, params));
    case AlgorithmKind::kProbabilisticModel:
      return ScGuard(options, assign::MakeProbabilisticModel(params));
    case AlgorithmKind::kProbabilisticData: {
      reachability::EmpiricalModelConfig config = options.empirical;
      if (config.region.empty()) config.region = data::BeijingRegion();
      stats::Rng rng(options.empirical_seed);
      SCGUARD_ASSIGN_OR_RETURN(
          reachability::EmpiricalModel model,
          reachability::EmpiricalModel::Build(config, options.worker_params,
                                              options.task_params, rng));
      auto shared = std::make_shared<const reachability::EmpiricalModel>(
          std::move(model));
      return ScGuard(options,
                     assign::MakeProbabilisticData(params, std::move(shared)));
    }
  }
  return Status::InvalidArgument("unknown algorithm kind");
}

assign::MatchResult ScGuard::Assign(const assign::Workload& workload,
                                    stats::Rng& rng) {
  return handle_->Run(workload, rng);
}

assign::MatchResult ScGuard::PerturbAndAssign(assign::Workload workload,
                                              stats::Rng& rng) {
  data::PerturbWorkload(options_.worker_params, options_.task_params, rng,
                        workload);
  return handle_->Run(workload, rng);
}

}  // namespace scguard::core
