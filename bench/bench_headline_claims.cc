// Checks the paper's headline claims (Abstract & Sec. V-B1) in one table:
// relative to Oblivious-RN, Probabilistic-Model attains higher utility
// (paper: x2 at strict privacy), lower travel cost (x2/3), far fewer task
// location disclosures (/500 in the paper's most favorable reading), at a
// modest overhead increase (+20%). Reported under both beta semantics
// (see EXPERIMENTS.md for why the paper's numbers favor the
// first-contact-only reading at strict privacy).

#include "bench/bench_common.h"

namespace scguard::bench {
namespace {

void Report(const sim::ExperimentRunner& runner, const privacy::PrivacyParams& p,
            assign::BetaMode beta_mode) {
  assign::AlgorithmParams params = MakeParams(p);
  params.beta_mode = beta_mode;
  assign::MatcherHandle prob = assign::MakeProbabilisticModel(params);
  assign::MatcherHandle obl =
      assign::MakeOblivious(assign::RankStrategy::kNearest, MakeParams(p));
  assign::MatcherHandle truth =
      assign::MakeGroundTruth(assign::RankStrategy::kNearest);

  const auto prob_agg = OrDie(runner.Run(prob, p, p));
  const auto obl_agg = OrDie(runner.Run(obl, p, p));
  const auto truth_agg = OrDie(runner.Run(truth, p, p));

  const std::string mode =
      beta_mode == assign::BetaMode::kEveryContact ? "every-contact beta"
                                                   : "first-contact beta";
  sim::TablePrinter table(
      StrCat("Headline claims at eps=", p.epsilon, ", r=", p.radius_m, " (",
             mode, ")"),
      {"metric", "GroundTruth-NN", "Oblivious-RN", "Probabilistic-Model",
       "Prob/Obl ratio", "paper target"});
  auto ratio = [](double a, double b) {
    return b > 0 ? FormatDouble(a / b, 2) : std::string("inf");
  };
  table.AddRow({"utility (#tasks)", FormatDouble(truth_agg.assigned_tasks, 1),
                FormatDouble(obl_agg.assigned_tasks, 1),
                FormatDouble(prob_agg.assigned_tasks, 1),
                ratio(prob_agg.assigned_tasks, obl_agg.assigned_tasks), "~2.0"});
  table.AddRow({"travel cost (m)", FormatDouble(truth_agg.travel_m, 0),
                FormatDouble(obl_agg.travel_m, 0),
                FormatDouble(prob_agg.travel_m, 0),
                ratio(prob_agg.travel_m, obl_agg.travel_m), "~0.67"});
  table.AddRow({"false hits", FormatDouble(truth_agg.false_hits, 1),
                FormatDouble(obl_agg.false_hits, 1),
                FormatDouble(prob_agg.false_hits, 1),
                ratio(prob_agg.false_hits, obl_agg.false_hits), "~0.002"});
  table.AddRow({"overhead (#workers)", FormatDouble(truth_agg.candidates, 1),
                FormatDouble(obl_agg.candidates, 1),
                FormatDouble(prob_agg.candidates, 1),
                ratio(prob_agg.candidates, obl_agg.candidates), "~1.2"});
  table.AddRow({"disclosures/assigned", "1.00",
                FormatDouble(obl_agg.disclosures_per_task, 2),
                FormatDouble(prob_agg.disclosures_per_task, 2),
                ratio(prob_agg.disclosures_per_task,
                      obl_agg.disclosures_per_task),
                "1.04 vs 4.75"});
  table.Print(std::cout);
}

void Main() {
  const auto runner = OrDie(sim::ExperimentRunner::Create(PaperConfig()));
  for (const auto beta_mode :
       {assign::BetaMode::kEveryContact, assign::BetaMode::kFirstContactOnly}) {
    // Strict privacy, where the paper's improvements are largest.
    Report(runner, {0.1, 200.0}, beta_mode);
    Report(runner, {0.4, 800.0}, beta_mode);
    // The default operating point.
    Report(runner, {0.7, 800.0}, beta_mode);
  }
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
