#ifndef SCGUARD_OBS_TRACE_EXPORT_H_
#define SCGUARD_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/recorder.h"

namespace scguard::obs {

/// Exporters for the flight recorder's drained event stream (DESIGN.md
/// §12): Chrome trace-event JSON for ui.perfetto.dev / chrome://tracing,
/// and the privacy-audit JSONL with its reconciliation summary.

/// Renders `events` as a Chrome trace-event JSON document:
/// `{"traceEvents":[...],"displayTimeUnit":"ns"}`. Span begin/end map to
/// ph "B"/"E", instants to "i", counters to "C", and audit events to "i"
/// instants with their payload under args — so a trace with audit events
/// still opens in Perfetto. Timestamps are rebased to the earliest event
/// and emitted in fractional microseconds. `names` comes from
/// FlightRecorder::names() and must cover every name_id in `events`.
std::string ExportChromeTrace(const std::vector<TraceEvent>& events,
                              const std::vector<std::string>& names);

/// Convenience: drains the global recorder and exports it.
std::string ExportChromeTrace();

/// Aggregate totals of the audit events in a drained stream — the bridge
/// to assign/metrics.h counters. Reconciliation contract:
///   u2e_candidates_sum == RunMetrics::candidates_sum (worker noisy-location
///       disclosures to the requester at U2E), and
///   e2e_disclosures == RunMetrics::requester_to_worker_msgs (task
///       exact-location disclosures at E2E).
struct AuditTotals {
  int64_t u2e_rankings = 0;        ///< kAuditCandidates events.
  int64_t u2e_candidates_sum = 0;  ///< Sum of their candidate counts.
  int64_t u2e_candidate_lines = 0; ///< kAuditCandidate (full-audit) events.
  int64_t e2e_disclosures = 0;     ///< kAuditDisclosure events.
  int64_t e2e_accepted = 0;        ///< ...with the accepted flag set.
  int64_t budget_spends = 0;       ///< kAuditBudget events.
  int64_t budget_refused = 0;      ///< ...that the ledger refused.
  double epsilon_spent = 0.0;      ///< Sum of granted spend epsilons.
};

AuditTotals SummarizeAudit(const std::vector<TraceEvent>& events);

/// Renders the audit events in `events` as JSONL: one object per audit
/// event plus a final `{"type":"summary",...}` line carrying AuditTotals
/// and `dropped` (so consumers can tell a complete record from a
/// truncated one). Non-audit events are skipped.
std::string ExportAuditJsonl(const std::vector<TraceEvent>& events,
                             const std::vector<std::string>& names,
                             int64_t dropped);

}  // namespace scguard::obs

#endif  // SCGUARD_OBS_TRACE_EXPORT_H_
