file(REMOVE_RECURSE
  "../bench/bench_fig8_model_vs_data"
  "../bench/bench_fig8_model_vs_data.pdb"
  "CMakeFiles/bench_fig8_model_vs_data.dir/bench_fig8_model_vs_data.cc.o"
  "CMakeFiles/bench_fig8_model_vs_data.dir/bench_fig8_model_vs_data.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_model_vs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
