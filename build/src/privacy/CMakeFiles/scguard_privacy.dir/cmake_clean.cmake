file(REMOVE_RECURSE
  "CMakeFiles/scguard_privacy.dir/budget.cc.o"
  "CMakeFiles/scguard_privacy.dir/budget.cc.o.d"
  "CMakeFiles/scguard_privacy.dir/cloaking.cc.o"
  "CMakeFiles/scguard_privacy.dir/cloaking.cc.o.d"
  "CMakeFiles/scguard_privacy.dir/geo_ind.cc.o"
  "CMakeFiles/scguard_privacy.dir/geo_ind.cc.o.d"
  "CMakeFiles/scguard_privacy.dir/inference.cc.o"
  "CMakeFiles/scguard_privacy.dir/inference.cc.o.d"
  "CMakeFiles/scguard_privacy.dir/location_set.cc.o"
  "CMakeFiles/scguard_privacy.dir/location_set.cc.o.d"
  "CMakeFiles/scguard_privacy.dir/planar_laplace.cc.o"
  "CMakeFiles/scguard_privacy.dir/planar_laplace.cc.o.d"
  "CMakeFiles/scguard_privacy.dir/truncated.cc.o"
  "CMakeFiles/scguard_privacy.dir/truncated.cc.o.d"
  "libscguard_privacy.a"
  "libscguard_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scguard_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
