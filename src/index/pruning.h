#ifndef SCGUARD_INDEX_PRUNING_H_
#define SCGUARD_INDEX_PRUNING_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"
#include "index/grid_index.h"
#include "index/rtree.h"
#include "privacy/privacy_params.h"

namespace scguard::index {

/// Index backend used by the U2U pruner.
enum class PrunerBackend { kLinearScan, kGrid, kRTree };

constexpr std::string_view PrunerBackendName(PrunerBackend b) {
  switch (b) {
    case PrunerBackend::kLinearScan:
      return "linear";
    case PrunerBackend::kGrid:
      return "grid";
    case PrunerBackend::kRTree:
      return "rtree";
  }
  return "?";
}

/// The U2U pruning optimization of paper Sec. IV-C1.
///
/// Each perturbed worker location is expanded to the rectangle bounding
/// disk(l_w', r_R + R_w) and each perturbed task to disk(l_t', r_R), where
/// r_R is the Geo-I confidence radius at level gamma. If the rectangles do
/// not overlap, the pair is reachable with probability < gamma and is
/// pruned before any probability evaluation. The pruner is conservative:
/// it may keep unreachable workers but never drops a pair whose disks
/// overlap.
class UncertainRegionPruner {
 public:
  struct WorkerRegion {
    int64_t worker_id = 0;
    geo::Point noisy_location;
    double reach_radius_m = 0.0;
  };

  /// `gamma` in (0,1): confidence that a true location lies within the
  /// expanded disk of its observation. `region` bounds the deployment area
  /// (needed by the grid backend; pass the workload bounding box).
  UncertainRegionPruner(std::vector<WorkerRegion> workers,
                        const privacy::PrivacyParams& worker_params,
                        const privacy::PrivacyParams& task_params,
                        double gamma, PrunerBackend backend,
                        const geo::BoundingBox& region);

  /// Worker ids whose expanded rectangle intersects the task's rectangle,
  /// in ascending id order (every backend sorts or preserves insertion
  /// order, so callers that need determinism don't re-sort).
  std::vector<int64_t> Candidates(geo::Point task_noisy_location) const;

  /// As above into a caller-owned scratch vector (cleared first): the
  /// engine calls this once per task, so the per-task allocation of the
  /// returning overload is hoisted into the caller.
  void Candidates(geo::Point task_noisy_location,
                  std::vector<int64_t>& out) const;

  /// Permanently drops a worker from future Candidates results (the engine
  /// calls this when a worker accepts a task, so pruned queries stop
  /// returning matched workers — DESIGN.md section 9). Idempotent; removing
  /// an unknown id is a no-op. The grid backend compacts the entry out of
  /// its cell (and refreshes that cell's certification aggregates); the
  /// linear and R-tree backends filter at query time.
  void Remove(int64_t worker_id);

  /// Re-centers a worker's expanded disk at a new noisy location (dynamic
  /// re-reporting; the reach radius stays fixed). The grid backend moves
  /// the entry incrementally (GridIndex::Relocate — O(cell) for the common
  /// same-cell move); the linear backend updates the stored region, which
  /// Candidates scans directly. Returns false for the R-tree backend
  /// (bulk-loaded, no native relocation) and for unknown ids — callers
  /// fall back to a full index rebuild. A worker currently Removed keeps
  /// its new location for a later Restore.
  bool Relocate(int64_t worker_id, geo::Point new_noisy_location);

  /// Reverses a Remove: the worker rejoins future Candidates results at
  /// its current recorded location (reactivation when a matched worker
  /// re-reports). Idempotent; returns false for unknown ids.
  bool Restore(int64_t worker_id);

  /// The query rectangle Candidates builds for a task observation
  /// (`FromCircle(task, task_confidence_radius_m)`), exposed so the
  /// cell-major mirror path can drive the grid's cell walk itself with the
  /// exact box the id query would use.
  geo::BoundingBox TaskQueryBox(geo::Point task_noisy_location) const {
    return geo::BoundingBox::FromCircle(task_noisy_location, r_r_task_);
  }

  /// The grid backend's index (nullptr for other backends); the cell-major
  /// scoring mirror attaches to it. Stays owned by the pruner.
  GridIndex* grid() const { return grid_.get(); }

  /// Confidence radius applied to worker observations.
  double worker_confidence_radius_m() const { return r_r_worker_; }
  /// Confidence radius applied to task observations.
  double task_confidence_radius_m() const { return r_r_task_; }
  PrunerBackend backend() const { return backend_; }

  /// Cumulative cell-certification counters of the grid backend's queries
  /// (DESIGN.md §11); nullptr for the other backends.
  const GridIndex::QueryStats* grid_query_stats() const {
    return grid_ != nullptr ? &grid_->stats() : nullptr;
  }

 private:
  /// The stored region of `worker_id`, or nullptr when unknown. O(1) for
  /// the engine's dense registration order (workers_[id].worker_id == id),
  /// linear probe otherwise.
  WorkerRegion* FindWorker(int64_t worker_id);

  std::vector<WorkerRegion> workers_;
  double r_r_worker_;
  double r_r_task_;
  PrunerBackend backend_;
  std::unique_ptr<GridIndex> grid_;
  std::unique_ptr<RTree> rtree_;
  // Removed ids for the backends without native removal (linear, R-tree);
  // empty unless Remove was called, so untouched pruners pay nothing.
  std::unordered_set<int64_t> removed_;
};

}  // namespace scguard::index

#endif  // SCGUARD_INDEX_PRUNING_H_
