# Empty compiler generated dependencies file for scguard_sim.
# This may be replaced when dependencies are built.
