file(REMOVE_RECURSE
  "CMakeFiles/scguard_core.dir/protocol.cc.o"
  "CMakeFiles/scguard_core.dir/protocol.cc.o.d"
  "CMakeFiles/scguard_core.dir/reputation.cc.o"
  "CMakeFiles/scguard_core.dir/reputation.cc.o.d"
  "CMakeFiles/scguard_core.dir/scguard.cc.o"
  "CMakeFiles/scguard_core.dir/scguard.cc.o.d"
  "CMakeFiles/scguard_core.dir/variants.cc.o"
  "CMakeFiles/scguard_core.dir/variants.cc.o.d"
  "libscguard_core.a"
  "libscguard_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scguard_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
