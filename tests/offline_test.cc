#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "assign/algorithms.h"
#include "assign/offline.h"
#include "data/workload.h"
#include "stats/rng.h"

namespace scguard::assign {
namespace {

// Independent reference: Kuhn's augmenting-path matching, O(V * E).
int KuhnMatching(const std::vector<std::vector<int>>& adjacency, int num_workers) {
  std::vector<int> match_worker(static_cast<size_t>(num_workers), -1);
  std::vector<bool> visited;
  std::function<bool(int)> augment = [&](int task) -> bool {
    for (int w : adjacency[static_cast<size_t>(task)]) {
      if (visited[static_cast<size_t>(w)]) continue;
      visited[static_cast<size_t>(w)] = true;
      if (match_worker[static_cast<size_t>(w)] < 0 ||
          augment(match_worker[static_cast<size_t>(w)])) {
        match_worker[static_cast<size_t>(w)] = task;
        return true;
      }
    }
    return false;
  };
  int matched = 0;
  for (int t = 0; t < static_cast<int>(adjacency.size()); ++t) {
    visited.assign(static_cast<size_t>(num_workers), false);
    matched += augment(t) ? 1 : 0;
  }
  return matched;
}

int Cardinality(const std::vector<int>& match) {
  int n = 0;
  for (int m : match) n += m >= 0 ? 1 : 0;
  return n;
}

void ExpectValidMatching(const std::vector<int>& match,
                         const std::vector<std::vector<int>>& adjacency) {
  std::set<int> used;
  for (size_t t = 0; t < match.size(); ++t) {
    if (match[t] < 0) continue;
    EXPECT_TRUE(used.insert(match[t]).second) << "worker matched twice";
    const auto& adj = adjacency[t];
    EXPECT_NE(std::find(adj.begin(), adj.end(), match[t]), adj.end())
        << "matched along a non-edge";
  }
}

TEST(HopcroftKarpTest, SmallKnownInstance) {
  // Tasks {0,1,2}; edges: 0-{0,1}, 1-{0}, 2-{1}: max matching = 2... no:
  // 0->? ; 1 takes 0, 2 takes 1, 0 has nothing left => matching 2. But
  // 0-{0,1} can yield 0->0, 2->1, 1 unmatched: still 2.
  const std::vector<std::vector<int>> adjacency = {{0, 1}, {0}, {1}};
  const auto match = MaxCardinalityMatching(adjacency, 2);
  ExpectValidMatching(match, adjacency);
  EXPECT_EQ(Cardinality(match), 2);
}

TEST(HopcroftKarpTest, PerfectMatchingExists) {
  const std::vector<std::vector<int>> adjacency = {{0, 1}, {1, 2}, {2, 0}};
  const auto match = MaxCardinalityMatching(adjacency, 3);
  ExpectValidMatching(match, adjacency);
  EXPECT_EQ(Cardinality(match), 3);
}

TEST(HopcroftKarpTest, EmptyGraph) {
  EXPECT_TRUE(MaxCardinalityMatching({}, 5).empty());
  const auto match = MaxCardinalityMatching({{}, {}}, 3);
  EXPECT_EQ(Cardinality(match), 0);
}

TEST(HopcroftKarpTest, AgreesWithKuhnOnRandomGraphs) {
  stats::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const int tasks = 30 + static_cast<int>(rng.UniformInt(40));
    const int workers = 30 + static_cast<int>(rng.UniformInt(40));
    std::vector<std::vector<int>> adjacency(static_cast<size_t>(tasks));
    for (auto& adj : adjacency) {
      for (int w = 0; w < workers; ++w) {
        if (rng.UniformDouble() < 0.08) adj.push_back(w);
      }
    }
    const auto match = MaxCardinalityMatching(adjacency, workers);
    ExpectValidMatching(match, adjacency);
    EXPECT_EQ(Cardinality(match), KuhnMatching(adjacency, workers))
        << "trial " << trial;
  }
}

TEST(HungarianTest, PicksCheapestPerfectMatching) {
  // 2x2: diagonal costs 1+1=2, anti-diagonal 10+10=20.
  const std::vector<std::vector<double>> cost = {{1.0, 10.0}, {10.0, 1.0}};
  const auto match = MinCostMaxMatching(cost);
  EXPECT_EQ(match[0], 0);
  EXPECT_EQ(match[1], 1);
}

TEST(HungarianTest, MaximizesCardinalityBeforeCost) {
  // Task 0 can take worker 0 (cost 1) or worker 1 (cost 100);
  // task 1 can only take worker 0 (cost 1).
  // Greedy-min-cost would give 0->0 and leave 1 unmatched; maximum
  // cardinality requires 0->1 (expensive) and 1->0.
  const std::vector<std::vector<double>> cost = {{1.0, 100.0},
                                                 {1.0, kInfeasible}};
  const auto match = MinCostMaxMatching(cost);
  EXPECT_EQ(match[0], 1);
  EXPECT_EQ(match[1], 0);
}

TEST(HungarianTest, InfeasiblePairsStayUnmatched) {
  const std::vector<std::vector<double>> cost = {{kInfeasible, kInfeasible}};
  const auto match = MinCostMaxMatching(cost);
  EXPECT_EQ(match[0], -1);
}

TEST(HungarianTest, RectangularMoreWorkers) {
  const std::vector<std::vector<double>> cost = {{5.0, 2.0, 9.0}};
  const auto match = MinCostMaxMatching(cost);
  EXPECT_EQ(match[0], 1);
}

TEST(HungarianTest, RectangularMoreTasks) {
  const std::vector<std::vector<double>> cost = {{5.0}, {2.0}, {9.0}};
  const auto match = MinCostMaxMatching(cost);
  // Only one worker: the cheapest task takes it.
  int assigned = -1;
  for (size_t t = 0; t < match.size(); ++t) {
    if (match[t] == 0) {
      EXPECT_EQ(assigned, -1);
      assigned = static_cast<int>(t);
    }
  }
  EXPECT_EQ(assigned, 1);
}

TEST(HungarianTest, MatchesBruteForceOnSmallRandomInstances) {
  stats::Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(4));  // 2..5.
    std::vector<std::vector<double>> cost(
        static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
    for (auto& row : cost) {
      for (auto& c : row) {
        c = rng.UniformDouble() < 0.2 ? kInfeasible
                                      : std::floor(rng.UniformDouble(1.0, 100.0));
      }
    }
    // Brute force over permutations: maximize cardinality, then min cost.
    std::vector<int> perm(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
    int best_card = -1;
    double best_cost = 0;
    do {
      int card = 0;
      double total = 0;
      for (int t = 0; t < n; ++t) {
        const double c =
            cost[static_cast<size_t>(t)][static_cast<size_t>(perm[static_cast<size_t>(t)])];
        if (c < kInfeasible) {
          ++card;
          total += c;
        }
      }
      if (card > best_card || (card == best_card && total < best_cost)) {
        best_card = card;
        best_cost = total;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));

    const auto match = MinCostMaxMatching(cost);
    int card = 0;
    double total = 0;
    for (int t = 0; t < n; ++t) {
      const int w = match[static_cast<size_t>(t)];
      if (w >= 0) {
        ++card;
        total += cost[static_cast<size_t>(t)][static_cast<size_t>(w)];
      }
    }
    EXPECT_EQ(card, best_card) << "trial " << trial;
    EXPECT_DOUBLE_EQ(total, best_cost) << "trial " << trial;
  }
}

TEST(OfflineMatcherTest, DominatesEveryOnlineAlgorithm) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {20000, 20000});
  data::WorkloadConfig config;
  config.num_workers = 80;
  config.num_tasks = 80;
  stats::Rng rng(3);
  const Workload w = data::MakeUniformWorkload(region, config, rng);

  OfflineOptimalMatcher offline(OfflineObjective::kMaxTasks);
  stats::Rng rng_a(4), rng_b(4);
  const auto optimal = offline.Run(w, rng_a);
  MatcherHandle ranking = MakeGroundTruth(RankStrategy::kRandom);
  const auto online = ranking.Run(w, rng_b);
  EXPECT_GE(optimal.metrics.assigned_tasks, online.metrics.assigned_tasks);
  // Greedy maximality still guarantees half the optimum.
  EXPECT_GE(2 * online.metrics.assigned_tasks, optimal.metrics.assigned_tasks);
}

TEST(OfflineMatcherTest, MinCostVariantNeverAssignsMoreButTravelsLess) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {20000, 20000});
  data::WorkloadConfig config;
  config.num_workers = 60;
  config.num_tasks = 60;
  stats::Rng rng(5);
  const Workload w = data::MakeUniformWorkload(region, config, rng);

  OfflineOptimalMatcher max_tasks(OfflineObjective::kMaxTasks);
  OfflineOptimalMatcher min_cost(OfflineObjective::kMinTravelCost);
  stats::Rng rng_a(6), rng_b(6);
  const auto by_count = max_tasks.Run(w, rng_a);
  const auto by_cost = min_cost.Run(w, rng_b);
  // Both maximize cardinality.
  EXPECT_EQ(by_cost.metrics.assigned_tasks, by_count.metrics.assigned_tasks);
  // The min-cost variant cannot travel more in total.
  EXPECT_LE(by_cost.metrics.travel_sum_m, by_count.metrics.travel_sum_m + 1e-6);
  // All assignments valid.
  for (const auto& a : by_cost.assignments) {
    EXPECT_TRUE(w.workers[static_cast<size_t>(a.worker_id)].CanReach(
        w.tasks[static_cast<size_t>(a.task_id)].location));
  }
}

TEST(OfflineMatcherTest, Names) {
  EXPECT_EQ(OfflineOptimalMatcher(OfflineObjective::kMaxTasks).name(),
            "Offline-MaxTasks");
  EXPECT_EQ(OfflineOptimalMatcher(OfflineObjective::kMinTravelCost).name(),
            "Offline-MinCost");
}

}  // namespace
}  // namespace scguard::assign
