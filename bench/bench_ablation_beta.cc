// Ablation (beyond the paper): the two readings of Algorithm 2's beta
// threshold. Re-checking beta before every disclosure (the literal Line
// 13 -> Line 17 loop) cancels aggressively at strict privacy, while
// checking only the first contact preserves the paper's reported utility
// advantage over the oblivious baseline. See EXPERIMENTS.md.

#include "bench/bench_common.h"

namespace scguard::bench {
namespace {

void Main() {
  const auto runner = OrDie(sim::ExperimentRunner::Create(PaperConfig()));

  for (double eps : sim::kEpsilons) {
    const privacy::PrivacyParams p{eps, sim::kDefaultRadius};
    sim::TablePrinter table(
        StrCat("Beta semantics at eps=", eps, ", r=", sim::kDefaultRadius),
        {"variant", "utility", "false hits", "false dismissals",
         "disclosures/assigned"});
    for (const auto mode : {assign::BetaMode::kEveryContact,
                            assign::BetaMode::kFirstContactOnly}) {
      assign::AlgorithmParams params = MakeParams(p);
      params.beta_mode = mode;
      assign::MatcherHandle handle = assign::MakeProbabilisticModel(params);
      const auto agg = OrDie(runner.Run(handle, p, p));
      table.AddRow(mode == assign::BetaMode::kEveryContact ? "every-contact"
                                                           : "first-contact-only",
                   {agg.assigned_tasks, agg.false_hits, agg.false_dismissals,
                    agg.disclosures_per_task},
                   2);
    }
    // The oblivious baseline for context.
    assign::MatcherHandle obl =
        assign::MakeOblivious(assign::RankStrategy::kNearest, MakeParams(p));
    const auto obl_agg = OrDie(runner.Run(obl, p, p));
    table.AddRow("Oblivious-RN (reference)",
                 {obl_agg.assigned_tasks, obl_agg.false_hits,
                  obl_agg.false_dismissals, obl_agg.disclosures_per_task},
                 2);
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
