#ifndef SCGUARD_PRIVACY_GEO_IND_H_
#define SCGUARD_PRIVACY_GEO_IND_H_

#include "geo/point.h"
#include "privacy/planar_laplace.h"
#include "privacy/privacy_params.h"
#include "stats/rng.h"

namespace scguard::privacy {

/// The (eps, r)-geo-indistinguishability obfuscation mechanism each worker
/// and requester runs locally on their own device before anything reaches
/// the untrusted server (paper Sec. II / Alg. 1 lines 3-4).
class GeoIndMechanism {
 public:
  /// Dies on invalid params; use Create() for checked construction.
  explicit GeoIndMechanism(const PrivacyParams& params);

  /// Checked factory: rejects non-positive epsilon or radius.
  static Result<GeoIndMechanism> Create(const PrivacyParams& params);

  const PrivacyParams& params() const { return params_; }
  const PlanarLaplace& noise() const { return laplace_; }

  /// Reports a perturbed location for the true location `x`.
  geo::Point Perturb(geo::Point x, stats::Rng& rng) const;

  /// Multiplicative bound e^{eps * d(x,x') / r} on the ratio of observation
  /// densities for two true locations; at d = r this equals e^eps, the
  /// guarantee of (eps, r)-Geo-I.
  double DistinguishabilityBound(double distance_m) const;

  /// Radius containing the true location with probability >= gamma given an
  /// observed location.
  double ConfidenceRadius(double gamma) const {
    return laplace_.ConfidenceRadius(gamma);
  }

 private:
  PrivacyParams params_;
  PlanarLaplace laplace_;
};

}  // namespace scguard::privacy

#endif  // SCGUARD_PRIVACY_GEO_IND_H_
