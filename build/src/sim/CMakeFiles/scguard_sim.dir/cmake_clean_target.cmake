file(REMOVE_RECURSE
  "libscguard_sim.a"
)
