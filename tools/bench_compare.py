#!/usr/bin/env python3
"""Diff two BENCH_*.json files and flag perf regressions.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json \
        [--perf-threshold 0.10] [--utility-tolerance 0.02]

Points are matched on (series, x); only the intersection is compared, so a
bench that gained or lost series (e.g. a different thread list on a
different machine) still diffs the common cells. Two field classes:

  * perf fields (wall-clock): a CURRENT value more than --perf-threshold
    above BASELINE is a regression. When the two files' provenance blocks
    (bench_common.h) disagree on cpu or compiler the numbers are not
    comparable, so perf deltas are downgraded to warnings.
  * utility fields (assignment quality): must match within
    --utility-tolerance relative difference regardless of machine — the
    protocol is deterministic for a fixed config, with a small tolerance
    because libm differences can shift floating-point scores across
    toolchains.

Exit status: 1 if any regression (after downgrades), else 0.
"""

import argparse
import json
import sys

# Lower is better for all of these; only in this direction do we flag.
PERF_FIELDS = (
    "u2u_seconds",
    "u2e_seconds",
    "total_seconds",
    "seed_seconds_median",
)

# Deterministic given (config, workload, seed); tolerance covers libm
# differences across toolchains, not real behavior changes.
UTILITY_FIELDS = (
    "assigned_tasks",
    "travel_m",
    "candidates",
    "false_hits",
    "false_dismissals",
    "disclosures_per_task",
    "u2u_scanned",
)

# The service bench ("bench": "service") measures a live ingest stream, so
# its utility counts are load-dependent (how many tasks landed in the
# window) and the deterministic-field gate does not apply. sustained_qps
# is a higher-better perf field (a drop beyond the threshold is the
# regression). Latency percentiles are reported warn-only: the
# sub-millisecond tails vary several-fold run to run even on one machine
# (queue-depth luck), so ratio gates would flap — CI enforces absolute
# p99 ceilings in the service smoke step instead.
SERVICE_PERF_FIELDS_WARN = (
    "p50_seconds",
    "p95_seconds",
    "p99_seconds",
)
SERVICE_PERF_FIELDS_HIGHER = ("sustained_qps",)

# The frontier bench ("bench": "frontier") sweeps mechanism x epsilon. Its
# audited disclosure total is deterministic like the other utility counts
# (the bench itself hard-fails if the audit trail and engine counters
# disagree), and the empirical-table build cost is an extra lower-is-better
# perf field.
FRONTIER_UTILITY_FIELDS = ("audit_disclosures",)
FRONTIER_PERF_FIELDS = ("table_build_seconds",)


def rel_delta(base, cur):
    if base == cur:
        return 0.0
    denom = max(abs(base), 1e-12)
    return (cur - base) / denom


def provenance_comparable(a, b):
    """True when perf numbers from the two runs can be compared."""
    pa, pb = a.get("provenance", {}), b.get("provenance", {})
    if not pa or not pb:
        return False, "missing provenance block"
    for key in ("cpu", "compiler", "cxx_flags"):
        if pa.get(key) != pb.get(key):
            return False, f"provenance.{key} differs: " \
                          f"{pa.get(key)!r} vs {pb.get(key)!r}"
    return True, ""


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--perf-threshold", type=float, default=0.10,
                        help="relative slowdown that counts as a regression")
    parser.add_argument("--utility-tolerance", type=float, default=0.02,
                        help="max relative drift of deterministic fields")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    comparable, why = provenance_comparable(base, cur)
    if not comparable:
        print(f"note: perf deltas downgraded to warnings ({why})")

    base_points = {(p["series"], p["x"]): p for p in base.get("points", [])}
    cur_points = {(p["series"], p["x"]): p for p in cur.get("points", [])}
    common = sorted(set(base_points) & set(cur_points))
    if not common:
        print("error: no common (series, x) points to compare")
        return 1
    only_base = sorted(set(base_points) - set(cur_points))
    only_cur = sorted(set(cur_points) - set(base_points))
    for key in only_base:
        print(f"note: point {key} only in baseline (skipped)")
    for key in only_cur:
        print(f"note: point {key} only in current (skipped)")

    is_service = base.get("bench") == "service" and \
        cur.get("bench") == "service"
    is_frontier = base.get("bench") == "frontier" and \
        cur.get("bench") == "frontier"
    perf_lower = () if is_service else PERF_FIELDS
    perf_warn = SERVICE_PERF_FIELDS_WARN if is_service else ()
    perf_higher = SERVICE_PERF_FIELDS_HIGHER if is_service else ()
    utility_fields = () if is_service else UTILITY_FIELDS
    if is_frontier:
        perf_lower = perf_lower + FRONTIER_PERF_FIELDS
        utility_fields = utility_fields + FRONTIER_UTILITY_FIELDS

    regressions = warnings = 0
    for key in common:
        bp, cp = base_points[key], cur_points[key]
        for field in perf_higher:
            if field not in bp or field not in cp:
                continue
            delta = rel_delta(bp[field], cp[field])
            if delta < -args.perf_threshold:
                kind = "REGRESSION" if comparable else "warning"
                print(f"{kind}: {key} {field} {bp[field]:.6g} -> "
                      f"{cp[field]:.6g} ({delta:.1%})")
                if comparable:
                    regressions += 1
                else:
                    warnings += 1
        for field in perf_lower:
            if field not in bp or field not in cp:
                continue
            delta = rel_delta(bp[field], cp[field])
            if delta > args.perf_threshold:
                kind = "REGRESSION" if comparable else "warning"
                print(f"{kind}: {key} {field} {bp[field]:.6g} -> "
                      f"{cp[field]:.6g} (+{delta:.1%})")
                if comparable:
                    regressions += 1
                else:
                    warnings += 1
        for field in perf_warn:
            if field not in bp or field not in cp:
                continue
            delta = rel_delta(bp[field], cp[field])
            if delta > args.perf_threshold:
                print(f"warning: {key} {field} {bp[field]:.6g} -> "
                      f"{cp[field]:.6g} (+{delta:.1%}; latency tails are "
                      f"warn-only, see the absolute smoke gates)")
                warnings += 1
        for field in utility_fields:
            if field not in bp or field not in cp:
                continue
            drift = abs(rel_delta(bp[field], cp[field]))
            if drift > args.utility_tolerance:
                print(f"REGRESSION: {key} {field} {bp[field]:.6g} -> "
                      f"{cp[field]:.6g} (drift {drift:.2%}; deterministic "
                      f"field changed)")
                regressions += 1

    print(f"compared {len(common)} points: "
          f"{regressions} regressions, {warnings} warnings")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
