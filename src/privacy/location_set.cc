#include "privacy/location_set.h"

#include <utility>

#include "common/str_format.h"
#include "privacy/mechanism.h"

namespace scguard::privacy {

LocationSetMechanism::LocationSetMechanism(
    const PrivacyParams& joint, int set_size,
    std::shared_ptr<const Mechanism> mechanism)
    : joint_(joint),
      per_location_{joint.epsilon / set_size, joint.radius_m, joint.mechanism},
      set_size_(set_size),
      mechanism_(std::move(mechanism)) {}

Result<LocationSetMechanism> LocationSetMechanism::Create(
    const PrivacyParams& params, int set_size) {
  SCGUARD_RETURN_NOT_OK(params.Validate());
  if (set_size < 1) {
    return Status::InvalidArgument("set_size must be >= 1");
  }
  // Each release spends eps/n of the joint budget through the configured
  // mechanism (planar Laplace unless the spec says otherwise).
  const PrivacyParams per_location{params.epsilon / set_size, params.radius_m,
                                   params.mechanism};
  auto mechanism = MakeMechanism(per_location);
  SCGUARD_RETURN_NOT_OK(mechanism.status());
  return LocationSetMechanism(
      params, set_size,
      std::shared_ptr<const Mechanism>(std::move(mechanism).ValueOrDie()));
}

Result<std::vector<geo::Point>> LocationSetMechanism::PerturbSet(
    const std::vector<geo::Point>& locations, stats::Rng& rng) const {
  if (locations.size() > static_cast<size_t>(set_size_)) {
    return Status::InvalidArgument(
        StrCat("set of ", locations.size(), " exceeds the protected size ",
               set_size_));
  }
  std::vector<geo::Point> out(locations.size());
  mechanism_->PerturbBatch(locations.data(), locations.size(), rng,
                           out.data());
  return out;
}

geo::Point LocationSetMechanism::PerturbOne(geo::Point location,
                                            stats::Rng& rng) const {
  return mechanism_->Perturb(location, rng);
}

}  // namespace scguard::privacy
