file(REMOVE_RECURSE
  "../bench/bench_dynamic_workers"
  "../bench/bench_dynamic_workers.pdb"
  "CMakeFiles/bench_dynamic_workers.dir/bench_dynamic_workers.cc.o"
  "CMakeFiles/bench_dynamic_workers.dir/bench_dynamic_workers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
