# Empty dependencies file for scguard_stats.
# This may be replaced when dependencies are built.
