#include "stats/gamma.h"

#include <cmath>
#include <limits>

#include "common/check.h"

#if defined(__GLIBC__) && !defined(__USE_MISC)
// Strict-ANSI <cmath> hides the reentrant variant; libm always exports it.
extern "C" double lgamma_r(double, int*) noexcept;
#endif

namespace scguard::stats {

double LogGamma(double x) {
#if defined(__GLIBC__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

namespace {

// The series branch needs O(sqrt(s)) terms when x is near s (the worst
// case for both representations); 50k covers shapes up to ~3e7, far beyond
// any noncentrality this library produces.
constexpr int kMaxIterations = 50000;
constexpr double kEpsilon = 1e-15;

// Series representation of P(s, x), efficient for x < s + 1 (NR gser).
double GammaPSeries(double s, double x) {
  if (x <= 0.0) return 0.0;
  double ap = s;
  double sum = 1.0 / s;
  double del = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + s * std::log(x) - LogGamma(s));
}

// Continued-fraction representation of Q(s, x), efficient for x >= s + 1
// (NR gcf, modified Lentz).
double GammaQContinuedFraction(double s, double x) {
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEpsilon;
  double b = x + 1.0 - s;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - s);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) <= kEpsilon) break;
  }
  return std::exp(-x + s * std::log(x) - LogGamma(s)) * h;
}

}  // namespace

double RegularizedGammaP(double s, double x) {
  SCGUARD_CHECK(s > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < s + 1.0) return GammaPSeries(s, x);
  return 1.0 - GammaQContinuedFraction(s, x);
}

double RegularizedGammaQ(double s, double x) {
  SCGUARD_CHECK(s > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < s + 1.0) return 1.0 - GammaPSeries(s, x);
  return GammaQContinuedFraction(s, x);
}

}  // namespace scguard::stats
