#ifndef SCGUARD_ASSIGN_BATCH_H_
#define SCGUARD_ASSIGN_BATCH_H_

#include "assign/matcher.h"
#include "reachability/kernel.h"
#include "reachability/model.h"

namespace scguard::assign {

/// Batched privacy-aware assignment: the server buffers `batch_size` tasks
/// and solves a min-cost matching over the noisy distances before any
/// disclosure happens; each proposed pair is then validated E2E like in
/// SCGuard.
///
/// This is the assignment mode of the encryption-based related work the
/// paper compares against ([Liu et al., EDBT'17] waits for task batches;
/// the paper argues online arrival makes that infeasible for its setting).
/// Implementing it lets the bench quantify what batching buys under the
/// same Geo-I noise: globally coordinated matchings avoid the greedy
/// online mistakes at the cost of delaying every task by up to one batch.
class BatchMatcher final : public OnlineMatcher {
 public:
  /// `model` scores pair reachability from noisy data (not owned; must
  /// outlive the matcher); pairs below `alpha` are infeasible. A
  /// batch_size of 1 degenerates to a nearest-feasible online rule.
  /// `kernel.alpha_thresholds` replaces the per-pair model evaluation
  /// with an exact threshold compare (same decisions, see kernel.h).
  BatchMatcher(const reachability::ReachabilityModel* model, double alpha,
               int batch_size, reachability::KernelOptions kernel = {});

  MatchResult Run(const Workload& workload, stats::Rng& rng) override;

  std::string name() const override;

  int batch_size() const { return batch_size_; }

 private:
  const reachability::ReachabilityModel* model_;
  double alpha_;
  int batch_size_;
  reachability::KernelOptions kernel_;
};

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_BATCH_H_
