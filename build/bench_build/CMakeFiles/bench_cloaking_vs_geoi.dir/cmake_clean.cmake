file(REMOVE_RECURSE
  "../bench/bench_cloaking_vs_geoi"
  "../bench/bench_cloaking_vs_geoi.pdb"
  "CMakeFiles/bench_cloaking_vs_geoi.dir/bench_cloaking_vs_geoi.cc.o"
  "CMakeFiles/bench_cloaking_vs_geoi.dir/bench_cloaking_vs_geoi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cloaking_vs_geoi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
