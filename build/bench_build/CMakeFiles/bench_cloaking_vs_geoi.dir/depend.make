# Empty dependencies file for bench_cloaking_vs_geoi.
# This may be replaced when dependencies are built.
