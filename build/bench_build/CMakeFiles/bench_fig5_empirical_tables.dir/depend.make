# Empty dependencies file for bench_fig5_empirical_tables.
# This may be replaced when dependencies are built.
