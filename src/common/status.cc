#include "common/status.h"

namespace scguard {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kIOError:
      return "io-error";
    case StatusCode::kNotImplemented:
      return "not-implemented";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace scguard
