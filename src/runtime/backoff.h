#ifndef SCGUARD_RUNTIME_BACKOFF_H_
#define SCGUARD_RUNTIME_BACKOFF_H_

#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace scguard::runtime {

/// Progressive idle backoff for spin-then-sleep consumer loops (the
/// assignment service's drain loop): a burst of pause instructions keeps
/// sub-microsecond wakeups cheap, a yield band gives up the core to
/// runnable peers, and a growing sleep caps idle CPU burn at ~1ms latency
/// once the queue has been empty for a while. Reset() on any successful
/// pop restores full responsiveness.
class IdleBackoff {
 public:
  void Reset() { spins_ = 0; }

  void Pause() {
    ++spins_;
    if (spins_ <= kSpinLimit) {
#if defined(__x86_64__) || defined(_M_X64)
      _mm_pause();
#else
      std::this_thread::yield();
#endif
      return;
    }
    if (spins_ <= kYieldLimit) {
      std::this_thread::yield();
      return;
    }
    // Exponential 1us -> ~1ms, then flat: an idle service wakes within a
    // millisecond of new work without burning a core while empty.
    const uint32_t exp = spins_ - kYieldLimit;
    const uint32_t us = exp < 10 ? (1u << exp) : 1000u;
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

 private:
  static constexpr uint32_t kSpinLimit = 16;
  static constexpr uint32_t kYieldLimit = 64;
  uint32_t spins_ = 0;
};

}  // namespace scguard::runtime

#endif  // SCGUARD_RUNTIME_BACKOFF_H_
