#include "obs/metrics.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/str_format.h"

namespace scguard::obs {
namespace internal {

int ShardIndex() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return shard;
}

}  // namespace internal

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted scheme maps
/// '.'/'-' to '_' and drops anything else exotic.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (c == '.' || c == '-') {
      out += '_';
    } else {
      out += c;
    }
  }
  return out;
}

std::string FullPrecision(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      cells_(static_cast<size_t>(kNumShards) * (bounds_.size() + 1)) {
  SCGUARD_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    SCGUARD_CHECK(bounds_[i] > bounds_[i - 1]);
  }
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 1e2; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  bounds.push_back(1e2);
  return bounds;
}

void Histogram::Observe(double v) {
  if (!Enabled()) return;
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  const size_t shard = static_cast<size_t>(internal::ShardIndex());
  cells_[shard * (bounds_.size() + 1) + bucket].fetch_add(
      1, std::memory_order_relaxed);
  sums_[shard].value.fetch_add(v, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  const size_t num_buckets = bounds_.size() + 1;
  std::vector<int64_t> counts(num_buckets, 0);
  for (size_t shard = 0; shard < static_cast<size_t>(kNumShards); ++shard) {
    for (size_t b = 0; b < num_buckets; ++b) {
      counts[b] +=
          cells_[shard * num_buckets + b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const int64_t c : BucketCounts()) total += c;
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& cell : sums_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<int64_t> counts = BucketCounts();
  int64_t total = 0;
  for (const int64_t c : counts) total += c;
  if (total == 0) return 0.0;

  const double rank = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const int64_t next = cumulative + counts[b];
    if (static_cast<double>(next) >= rank) {
      if (b >= bounds_.size()) return bounds_.back();  // Overflow bucket.
      const double lo = b == 0 ? 0.0 : bounds_[b - 1];
      const double hi = bounds_[b];
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(counts[b]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds_.back();
}

void Histogram::Reset() {
  for (auto& cell : cells_) cell.store(0, std::memory_order_relaxed);
  for (auto& cell : sums_) cell.value.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBounds();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramStats stats;
    stats.count = histogram->Count();
    stats.sum = histogram->Sum();
    stats.p50 = histogram->Quantile(0.50);
    stats.p95 = histogram->Quantile(0.95);
    stats.p99 = histogram->Quantile(0.99);
    snapshot.histograms[name] = stats;
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << JsonEscape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) os << ',';
    first = false;
    os << '"' << JsonEscape(name) << "\":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << JsonEscape(name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"p50\":" << h.p50 << ",\"p95\":" << h.p95
       << ",\"p99\":" << h.p99 << '}';
  }
  os << "}}";
  return os.str();
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " counter\n" << prom << ' ' << value << '\n';
  }
  for (const auto& [name, value] : gauges) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " gauge\n"
       << prom << ' ' << FullPrecision(value) << '\n';
  }
  for (const auto& [name, h] : histograms) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " summary\n";
    os << prom << "{quantile=\"0.5\"} " << FullPrecision(h.p50) << '\n';
    os << prom << "{quantile=\"0.95\"} " << FullPrecision(h.p95) << '\n';
    os << prom << "{quantile=\"0.99\"} " << FullPrecision(h.p99) << '\n';
    os << prom << "_sum " << FullPrecision(h.sum) << '\n';
    os << prom << "_count " << h.count << '\n';
  }
  return os.str();
}

}  // namespace scguard::obs
