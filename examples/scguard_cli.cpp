// Command-line driver: run any of the paper's algorithms over a synthetic
// day or a trips CSV and print the metrics — the entry point for running
// SCGuard on your own data.
//
// Usage:
//   scguard_cli [--algo NAME] [--eps E] [--r METERS] [--alpha A] [--beta B]
//               [--workers N] [--tasks N] [--seeds N] [--trips FILE.csv]
//               [--json]
//
//   --algo: ground-truth-rr | ground-truth-nn | oblivious-rr | oblivious-rn
//           | probabilistic-model | probabilistic-data   (default: model)
//   --trips: 7-column CSV (see data/csv_loader.h); synthetic day if absent.
//   --json: print the metrics table as one JSON object instead of text
//           (sim::TablePrinter::PrintJson — the same shape the benches
//           emit), for piping into jq or downstream tooling.
//
// Example:
//   ./build/examples/scguard_cli --algo probabilistic-model --eps 0.4 --r 800

#include <cstring>
#include <iostream>
#include <string>

#include "common/str_format.h"
#include "core/scguard.h"
#include "data/csv_loader.h"
#include "sim/experiment.h"
#include "sim/table_printer.h"

namespace {

using namespace scguard;

struct CliOptions {
  std::string algo = "probabilistic-model";
  double eps = 0.7;
  double r = 800.0;
  double alpha = 0.1;
  double beta = 0.25;
  int workers = 500;
  int tasks = 500;
  int seeds = 10;
  std::string trips_path;
  bool json = false;
};

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(StrCat(flag, " needs a value"));
      }
      return std::string(argv[++i]);
    };
    if (flag == "--algo") {
      SCGUARD_ASSIGN_OR_RETURN(options.algo, next());
    } else if (flag == "--eps") {
      SCGUARD_ASSIGN_OR_RETURN(const std::string v, next());
      options.eps = std::stod(v);
    } else if (flag == "--r") {
      SCGUARD_ASSIGN_OR_RETURN(const std::string v, next());
      options.r = std::stod(v);
    } else if (flag == "--alpha") {
      SCGUARD_ASSIGN_OR_RETURN(const std::string v, next());
      options.alpha = std::stod(v);
    } else if (flag == "--beta") {
      SCGUARD_ASSIGN_OR_RETURN(const std::string v, next());
      options.beta = std::stod(v);
    } else if (flag == "--workers") {
      SCGUARD_ASSIGN_OR_RETURN(const std::string v, next());
      options.workers = std::stoi(v);
    } else if (flag == "--tasks") {
      SCGUARD_ASSIGN_OR_RETURN(const std::string v, next());
      options.tasks = std::stoi(v);
    } else if (flag == "--seeds") {
      SCGUARD_ASSIGN_OR_RETURN(const std::string v, next());
      options.seeds = std::stoi(v);
    } else if (flag == "--trips") {
      SCGUARD_ASSIGN_OR_RETURN(options.trips_path, next());
    } else if (flag == "--json") {
      options.json = true;
    } else if (flag == "--help" || flag == "-h") {
      return Status::InvalidArgument("help requested");
    } else {
      return Status::InvalidArgument(StrCat("unknown flag ", flag));
    }
  }
  return options;
}

Result<core::AlgorithmKind> ParseAlgo(const std::string& name) {
  if (name == "ground-truth-rr") return core::AlgorithmKind::kGroundTruthRR;
  if (name == "ground-truth-nn") return core::AlgorithmKind::kGroundTruthNN;
  if (name == "oblivious-rr") return core::AlgorithmKind::kObliviousRR;
  if (name == "oblivious-rn") return core::AlgorithmKind::kObliviousRN;
  if (name == "probabilistic-model") {
    return core::AlgorithmKind::kProbabilisticModel;
  }
  if (name == "probabilistic-data") return core::AlgorithmKind::kProbabilisticData;
  return Status::InvalidArgument(StrCat("unknown algorithm '", name, "'"));
}

Status RunCli(const CliOptions& options) {
  SCGUARD_ASSIGN_OR_RETURN(const core::AlgorithmKind kind,
                           ParseAlgo(options.algo));

  core::ScGuardOptions guard_options;
  guard_options.algorithm = kind;
  guard_options.worker_params = {options.eps, options.r};
  guard_options.task_params = {options.eps, options.r};
  guard_options.alpha = options.alpha;
  guard_options.beta = options.beta;
  SCGUARD_ASSIGN_OR_RETURN(core::ScGuard guard,
                           core::ScGuard::Create(guard_options));

  // Workload source: CSV or the synthetic day.
  sim::ExperimentConfig config;
  config.workload.num_workers = options.workers;
  config.workload.num_tasks = options.tasks;
  config.num_seeds = options.seeds;

  std::vector<assign::RunMetrics> runs;
  if (!options.trips_path.empty()) {
    SCGUARD_ASSIGN_OR_RETURN(const std::vector<data::Trip> trips,
                             data::LoadTripsCsvFile(options.trips_path));
    for (int seed = 0; seed < options.seeds; ++seed) {
      stats::Rng rng(config.base_seed + static_cast<uint64_t>(seed));
      SCGUARD_ASSIGN_OR_RETURN(
          assign::Workload workload,
          data::BuildWorkloadFromTrips(trips, config.workload, rng));
      runs.push_back(guard.PerturbAndAssign(std::move(workload), rng).metrics);
    }
  } else {
    SCGUARD_ASSIGN_OR_RETURN(const sim::ExperimentRunner runner,
                             sim::ExperimentRunner::Create(config));
    for (int seed = 0; seed < options.seeds; ++seed) {
      SCGUARD_ASSIGN_OR_RETURN(const assign::Workload workload,
                               runner.MakeWorkload(seed, guard_options.worker_params,
                                                   guard_options.task_params));
      stats::Rng rng(config.base_seed + static_cast<uint64_t>(seed));
      runs.push_back(guard.Assign(workload, rng).metrics);
    }
  }

  const sim::AggregatedMetrics agg = sim::Aggregate(runs);
  sim::TablePrinter table(
      StrCat(guard.algorithm_name(), " @ eps=", options.eps, ", r=", options.r,
             " (", options.seeds, " seeds, ",
             options.trips_path.empty() ? "synthetic day" : options.trips_path,
             ")"),
      {"metric", "value"});
  table.AddRow({"tasks assigned", FormatDouble(agg.assigned_tasks, 1)});
  table.AddRow({"of tasks", FormatDouble(options.tasks, 0)});
  table.AddRow({"mean travel (m)", FormatDouble(agg.travel_m, 0)});
  table.AddRow({"candidates per task", FormatDouble(agg.candidates, 1)});
  table.AddRow({"false hits", FormatDouble(agg.false_hits, 1)});
  table.AddRow({"false dismissals", FormatDouble(agg.false_dismissals, 1)});
  table.AddRow({"U2U precision", FormatDouble(agg.precision, 3)});
  table.AddRow({"U2U recall", FormatDouble(agg.recall, 3)});
  table.AddRow({"disclosures per assigned", FormatDouble(agg.disclosures_per_task, 2)});
  if (options.json) {
    table.PrintJson(std::cout);
  } else {
    table.Print(std::cout);
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::cerr << options.status().message() << "\n\n"
              << "usage: scguard_cli [--algo NAME] [--eps E] [--r METERS]\n"
              << "                   [--alpha A] [--beta B] [--workers N]\n"
              << "                   [--tasks N] [--seeds N] [--trips FILE]\n"
              << "                   [--json]\n";
    return options.status().message() == "help requested" ? 0 : 2;
  }
  const scguard::Status status = RunCli(*options);
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  return 0;
}
