#include "obs/trace.h"

#include <limits>
#include <sstream>
#include <vector>

#include "common/str_format.h"
#include "obs/recorder.h"

namespace scguard::obs {
namespace {

/// The calling thread's stack of open span labels. Spans are strictly
/// nested per thread (RAII guarantees it), so a plain vector suffices.
std::vector<std::string>& ThreadPathStack() {
  thread_local std::vector<std::string> stack;
  return stack;
}

std::string JoinedPath(const std::vector<std::string>& stack) {
  std::string path;
  for (size_t i = 0; i < stack.size(); ++i) {
    if (i > 0) path += '/';
    path += stack[i];
  }
  return path;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Record(const std::string& path, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanStats& stats = spans_[path];
  if (stats.count == 0) {
    stats.min_seconds = seconds;
    stats.max_seconds = seconds;
  } else {
    stats.min_seconds = std::min(stats.min_seconds, seconds);
    stats.max_seconds = std::max(stats.max_seconds, seconds);
  }
  stats.count += 1;
  stats.total_seconds += seconds;
}

std::map<std::string, Tracer::SpanStats> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string Tracer::ToJson() const {
  const auto snapshot = Snapshot();
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << '{';
  bool first = true;
  for (const auto& [path, stats] : snapshot) {
    if (!first) os << ',';
    first = false;
    os << '"' << JsonEscape(path) << "\":{\"count\":" << stats.count
       << ",\"total_seconds\":" << stats.total_seconds
       << ",\"min_seconds\":" << stats.min_seconds
       << ",\"max_seconds\":" << stats.max_seconds << '}';
  }
  os << '}';
  return os.str();
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

Span::Span(std::string_view label)
    : active_(Enabled()), rec_active_(RecorderEnabled()) {
  if (rec_active_) {
    auto& recorder = FlightRecorder::Global();
    rec_name_id_ = recorder.InternName(label);
    recorder.Emit({.name_id = rec_name_id_,
                   .type = static_cast<uint8_t>(EventType::kSpanBegin)});
  }
  if (!active_) return;
  ThreadPathStack().emplace_back(label);
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (active_) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    auto& stack = ThreadPathStack();
    Tracer::Global().Record(JoinedPath(stack), seconds);
    stack.pop_back();
  }
  if (rec_active_) {
    FlightRecorder::Global().Emit(
        {.name_id = rec_name_id_,
         .type = static_cast<uint8_t>(EventType::kSpanEnd)});
  }
}

}  // namespace scguard::obs
