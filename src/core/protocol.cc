#include "core/protocol.h"

#include <utility>

#include "assign/stages/contact_stage.h"
#include "assign/stages/rank_stage.h"
#include "common/check.h"

namespace scguard::core {

// ---------------------------------------------------------------- Worker

WorkerDevice::WorkerDevice(int64_t id, geo::Point true_location,
                           double reach_radius_m,
                           const privacy::PrivacyParams& params)
    : id_(id),
      true_location_(true_location),
      reach_radius_m_(reach_radius_m),
      params_(params),
      mechanism_(privacy::MakeMechanismOrDie(params)) {
  SCGUARD_CHECK(reach_radius_m > 0.0);
}

WorkerRegistration WorkerDevice::Register(stats::Rng& rng) {
  return {id_, mechanism_->Perturb(true_location_, rng), reach_radius_m_};
}

bool WorkerDevice::HandleTaskOffer(geo::Point exact_task_location) const {
  return geo::Distance(true_location_, exact_task_location) <= reach_radius_m_;
}

// ------------------------------------------------------------- Requester

RequesterDevice::RequesterDevice(int64_t task_id, geo::Point true_task_location,
                                 const privacy::PrivacyParams& params)
    : task_id_(task_id),
      true_task_location_(true_task_location),
      params_(params),
      mechanism_(privacy::MakeMechanismOrDie(params)) {}

TaskRequest RequesterDevice::Submit(stats::Rng& rng) {
  return {task_id_, mechanism_->Perturb(true_task_location_, rng)};
}

std::vector<CandidateWorker> RequesterDevice::RankCandidates(
    const std::vector<CandidateWorker>& candidates,
    const reachability::ReachabilityModel& model, double beta) const {
  // The shared U2E stage scores the whole candidate list with one batched
  // model call (bit-identical to per-candidate ProbReachable, see
  // kernel_test); the device keeps only the message marshalling. The stage
  // and its staging buffers live on the device so back-to-back rankings
  // reuse them instead of reallocating per task.
  if (!stage_.has_value() || stage_model_ != &model) {
    stage_.emplace(assign::U2eRankStage::Config{
        .model = &model, .rank = assign::RankStrategy::kProbability,
        .kernel = {}});
    stage_model_ = &model;
  }
  const size_t n = candidates.size();
  const assign::U2eRankStage::BatchInputs in = stage_->StageScoreInputs(n);
  for (size_t i = 0; i < n; ++i) {
    in.observed_distance_m[i] =
        geo::Distance(candidates[i].noisy_location, true_task_location_);
    in.reach_radius_m[i] = candidates[i].reach_radius_m;
  }
  const double* p = stage_->ScoreStagedInputs(n);
  scored_.clear();
  scored_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (p[i] < beta) continue;  // Below the disclosure threshold.
    scored_.emplace_back(p[i], &candidates[i]);
  }
  assign::SortRankedCandidates(
      scored_, [](const CandidateWorker* c) { return c->worker_id; });
  std::vector<CandidateWorker> plan;
  plan.reserve(scored_.size());
  for (const auto& [score, c] : scored_) plan.push_back(*c);
  return plan;
}

// ---------------------------------------------------------------- Server

namespace {

assign::U2uCandidateStage MakeServerStage(
    const reachability::ReachabilityModel* model, double alpha,
    const reachability::KernelOptions& kernel) {
  assign::U2uCandidateStage::Config config;
  config.model = model;
  config.alpha = alpha;
  config.kernel = kernel;
  return assign::U2uCandidateStage(std::move(config));
}

}  // namespace

TaskingServer::TaskingServer(const reachability::ReachabilityModel* model,
                             double alpha,
                             reachability::KernelOptions kernel)
    : stage_(MakeServerStage(model, alpha, kernel)) {}

void TaskingServer::RegisterWorker(const WorkerRegistration& registration) {
  workers_.push_back(registration);
  stage_.AddWorker(registration.noisy_location, registration.reach_radius_m);
}

std::vector<CandidateWorker> TaskingServer::FindCandidates(
    const TaskRequest& request) const {
  // The stage emits ascending worker indices of the still-available
  // candidates — the same order the per-registration scan produced.
  const std::vector<uint32_t>& indices =
      stage_.Collect(request.noisy_location);
  std::vector<CandidateWorker> candidates;
  candidates.reserve(indices.size());
  for (const uint32_t i : indices) {
    const WorkerRegistration& w = workers_[i];
    candidates.push_back({w.worker_id, w.noisy_location, w.reach_radius_m});
  }
  return candidates;
}

void TaskingServer::MarkAssigned(int64_t worker_id) {
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].worker_id == worker_id) {
      stage_.MarkMatched(static_cast<uint32_t>(i));
      return;
    }
  }
  SCGUARD_CHECK(false && "unknown worker id");
}

size_t TaskingServer::available_workers() const { return stage_.available(); }

// ----------------------------------------------------------- Coordinator

ProtocolCoordinator::ProtocolCoordinator(
    TaskingServer* server, const reachability::ReachabilityModel* u2e_model,
    double beta)
    : server_(server), u2e_model_(u2e_model), beta_(beta) {
  SCGUARD_CHECK(server != nullptr && u2e_model != nullptr);
  SCGUARD_CHECK(beta >= 0.0 && beta <= 1.0);
}

TaskOutcome ProtocolCoordinator::AssignTask(
    const RequesterDevice& requester, const TaskRequest& request,
    const std::vector<WorkerDevice>& workers) {
  TaskOutcome outcome;
  outcome.task_id = requester.task_id();
  trace_.task_requests += 1;

  // U2U on the server over perturbed data only.
  const std::vector<CandidateWorker> candidates =
      server_->FindCandidates(request);
  trace_.candidate_lists_sent += 1;
  outcome.candidates = static_cast<int64_t>(candidates.size());
  if (candidates.empty()) return outcome;

  // U2E on the requester's device (exact task location never leaves it
  // until the targeted disclosure below).
  const std::vector<CandidateWorker> plan =
      requester.RankCandidates(candidates, *u2e_model_, beta_);

  // E2E: disclose the task location to one worker at a time. The plan is
  // already beta-filtered and ordered, so the shared contact stage runs
  // gate-free and this adapter only routes offers to the devices.
  const assign::E2eContactStage contact(
      {.rank = assign::RankStrategy::kProbability, .beta = 0.0,
       .beta_mode = assign::BetaMode::kEveryContact, .redundancy_k = 1});
  const assign::E2eContactStage::Outcome o = contact.ContactPlan(
      plan,
      [&](const CandidateWorker& c) {
        SCGUARD_CHECK(c.worker_id >= 0 &&
                      static_cast<size_t>(c.worker_id) < workers.size());
        const WorkerDevice& device = workers[static_cast<size_t>(c.worker_id)];
        if (!device.HandleTaskOffer(requester.exact_task_location())) {
          return false;
        }
        server_->MarkAssigned(c.worker_id);
        outcome.assigned_worker = c.worker_id;
        return true;
      },
      requester.task_id(), [](const CandidateWorker& c) { return c.worker_id; });
  trace_.task_location_disclosures += o.disclosures;
  trace_.rejections += o.false_hits;
  outcome.disclosures = o.disclosures;
  return outcome;
}

}  // namespace scguard::core
