file(REMOVE_RECURSE
  "../bench/bench_variants"
  "../bench/bench_variants.pdb"
  "CMakeFiles/bench_variants.dir/bench_variants.cc.o"
  "CMakeFiles/bench_variants.dir/bench_variants.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
