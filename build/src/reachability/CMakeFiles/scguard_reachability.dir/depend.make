# Empty dependencies file for scguard_reachability.
# This may be replaced when dependencies are built.
