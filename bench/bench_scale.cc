// Scale bench (DESIGN.md section 9 / EXPERIMENTS.md "Scaling the engine"):
// one ScGuardEngine run per (workers, threads, pruner) cell, measuring the
// server-stage U2U scan at production sizes — up to a million workers —
// instead of the paper's 500. Emits BENCH_scale.json; the `u2u_seconds`
// field carries the thread-scaling curve and the `u2u_scanned_first_task` /
// `u2u_scanned_last_task` pair shows the active-set compaction decay.
//
// Knobs (all optional):
//   SCGUARD_SCALE_WORKERS   comma list, default "10000,100000,1000000"
//   SCGUARD_SCALE_THREADS   comma list, default "1,4,0" (0 = hardware)
//   SCGUARD_SCALE_TASKS     tasks per run, default 512
//
// Determinism contract: every cell of one worker count sees the same
// workload and a fresh identically-seeded Rng, and the engine's sharded
// scan is thread-count invariant (tests/engine_parallel_test.cc), so the
// assigned/travel columns must agree exactly across every row of a size —
// only the timing columns may differ.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "assign/scguard_engine.h"
#include "bench/bench_common.h"
#include "data/beijing.h"
#include "data/workload.h"
#include "reachability/analytical_model.h"

namespace scguard::bench {
namespace {

std::vector<int64_t> ParseList(const char* env, const char* fallback) {
  const std::string spec = env != nullptr ? env : fallback;
  std::vector<int64_t> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    out.push_back(std::stoll(spec.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

int Main() {
  // The whole point of this bench is the per-stage breakdown, so the obs
  // layer is always on here (unlike the figure benches' SCGUARD_OBS gate).
  // The flight recorder (per-event tracing + privacy audit, DESIGN.md
  // section 12) stays opt-in: SCGUARD_OBS=1 or SCGUARD_OBS_TRACE=1 turns
  // it on and the run additionally writes TRACE_scale.json (Perfetto) and
  // AUDIT_scale.jsonl. CI compares a recorder-off against a recorder-on
  // run of this bench for the <1% overhead gate.
  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  obs_config.recorder = EnvFlag("SCGUARD_OBS") || EnvFlag("SCGUARD_OBS_TRACE");
  obs_config.audit_full = EnvFlag("SCGUARD_AUDIT_FULL");
  obs::SetConfig(obs_config);
  if (obs_config.recorder) {
    // Per-thread headroom for the default 3-size sweep: span + audit
    // events stay well under this, so `dropped` must come back 0.
    obs::FlightRecorder::Global().set_ring_capacity(size_t{1} << 19);
  }

  const std::vector<int64_t> worker_counts = ParseList(
      std::getenv("SCGUARD_SCALE_WORKERS"), "10000,100000,1000000");
  std::vector<int64_t> thread_counts =
      ParseList(std::getenv("SCGUARD_SCALE_THREADS"), "1,4,0");
  const int64_t num_tasks =
      ParseList(std::getenv("SCGUARD_SCALE_TASKS"), "512").front();
  for (auto& t : thread_counts) {
    if (t == 0) t = runtime::ThreadPool::HardwareThreads();
  }
  // Dedup (0 may resolve to an explicit entry), preserving order.
  {
    std::vector<int64_t> unique;
    for (const int64_t t : thread_counts) {
      if (std::find(unique.begin(), unique.end(), t) == unique.end()) {
        unique.push_back(t);
      }
    }
    thread_counts = std::move(unique);
  }

  const privacy::PrivacyParams privacy_level{0.7, 800.0};
  const reachability::AnalyticalModel model(privacy_level);
  JsonSeriesWriter json("scale");

  std::printf("engine scale: tasks=%lld threads={", (long long)num_tasks);
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::printf("%s%lld", i > 0 ? "," : "", (long long)thread_counts[i]);
  }
  std::printf("} (hardware=%d)\n\n", runtime::ThreadPool::HardwareThreads());
  std::printf("%10s %8s %7s %10s %10s %10s %12s %12s %11s %11s %11s %12s "
              "%11s\n",
              "workers", "threads", "pruner", "assigned", "u2u_s", "total_s",
              "scan_first", "scan_last", "cells_bulk", "cells_skip",
              "boundary_w", "gather_MiB", "cells_direct");

  // Ground truth for the audit-trail reconciliation: the engine's own
  // disclosure counters summed over every cell this process ran.
  int64_t expected_disclosures = 0;
  int64_t expected_candidates = 0;

  for (const int64_t num_workers : worker_counts) {
    // One workload per size, shared by every (threads, pruner) cell: the
    // perturbation and the match Rng are seeded per run, so rows of a size
    // differ only in wall clock.
    data::WorkloadConfig wconfig;
    wconfig.num_workers = static_cast<int>(num_workers);
    wconfig.num_tasks = static_cast<int>(num_tasks);
    stats::Rng workload_rng(977 + static_cast<uint64_t>(num_workers));
    assign::Workload workload = data::MakeUniformWorkload(
        data::BeijingRegion(), wconfig, workload_rng);
    data::PerturbWorkload(privacy_level, privacy_level, workload_rng, workload);

    for (const int64_t threads : thread_counts) {
      std::unique_ptr<runtime::ThreadPool> pool;
      if (threads > 1) {
        pool = std::make_unique<runtime::ThreadPool>(static_cast<int>(threads));
      }
      for (const bool use_pruner : {false, true}) {
        assign::EnginePolicy policy;
        policy.u2u_model = &model;
        policy.u2e_model = &model;
        policy.alpha = 0.1;
        policy.beta = 0.25;
        policy.rank = assign::RankStrategy::kProbability;
        policy.worker_params = privacy_level;
        policy.task_params = privacy_level;
        // The observer-side accuracy scan is O(workers) per task and would
        // dominate every cell; this bench measures protocol throughput.
        policy.compute_accuracy_metrics = false;
        if (use_pruner) {
          policy.pruning_gamma = 0.9;
          policy.pruning_backend = index::PrunerBackend::kGrid;
        }
        policy.runtime.pool = pool.get();
        assign::ScGuardEngine engine(std::move(policy));

        stats::Rng rng(42);
        const assign::MatchResult run = engine.Run(workload, rng);
        const sim::AggregatedMetrics agg = sim::Aggregate({run.metrics});
        expected_disclosures += run.metrics.requester_to_worker_msgs;
        expected_candidates += run.metrics.candidates_sum;

        const std::string series = StrCat(
            "threads=", threads, ",pruner=", use_pruner ? "grid" : "off");
        json.Add(series, static_cast<double>(num_workers), agg,
                 {{"threads", static_cast<double>(threads)},
                  {"pruner", use_pruner ? 1.0 : 0.0},
                  {"u2u_gather_bytes",
                   static_cast<double>(run.metrics.u2u_gather_bytes)},
                  {"cells_emitted_direct",
                   static_cast<double>(run.metrics.cells_emitted_direct)}});
        std::printf(
            "%10lld %8lld %7s %10lld %10.3f %10.3f %12lld %12lld %11lld "
            "%11lld %11lld %12.1f %11lld\n",
            (long long)num_workers, (long long)threads,
            use_pruner ? "grid" : "off",
            (long long)run.metrics.assigned_tasks, run.metrics.u2u_seconds,
            run.metrics.total_seconds,
            (long long)run.metrics.u2u_scanned_first_task,
            (long long)run.metrics.u2u_scanned_last_task,
            (long long)run.metrics.cells_bulk_accepted,
            (long long)run.metrics.cells_skipped,
            (long long)run.metrics.boundary_workers,
            static_cast<double>(run.metrics.u2u_gather_bytes) / (1 << 20),
            (long long)run.metrics.cells_emitted_direct);
      }
    }
  }
  std::printf(
      "\nwrote BENCH_scale.json (u2u_seconds = thread-scaling curve;\n"
      "scan_last < scan_first = active-set compaction at work)\n");

  if (obs::RecorderEnabled()) {
    const obs::AuditTotals audit = WriteFlightArtifacts("scale");
    const int64_t dropped = obs::FlightRecorder::Global().dropped();
    std::printf(
        "\naudit reconciliation (AUDIT_scale.jsonl vs engine metrics):\n"
        "  e2e disclosures  %lld audit vs %lld metrics\n"
        "  u2e candidates   %lld audit vs %lld metrics\n"
        "  dropped events   %lld\n",
        (long long)audit.e2e_disclosures, (long long)expected_disclosures,
        (long long)audit.u2e_candidates_sum, (long long)expected_candidates,
        (long long)dropped);
    if (audit.e2e_disclosures != expected_disclosures ||
        audit.u2e_candidates_sum != expected_candidates || dropped != 0) {
      std::fprintf(stderr, "audit trail does not reconcile\n");
      return 1;
    }
    std::printf("wrote TRACE_scale.json (ui.perfetto.dev) and "
                "AUDIT_scale.jsonl\n");
  }
  return 0;
}

}  // namespace
}  // namespace scguard::bench

int main() { return scguard::bench::Main(); }
