#include "geo/latlon.h"

#include <cmath>

namespace scguard::geo {
namespace {

constexpr double kEarthRadiusMeters = 6371000.0;
constexpr double kDegToRad = M_PI / 180.0;

}  // namespace

double HaversineMeters(LatLon a, LatLon b) {
  const double phi1 = a.lat * kDegToRad;
  const double phi2 = b.lat * kDegToRad;
  const double dphi = (b.lat - a.lat) * kDegToRad;
  const double dlam = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dphi / 2.0);
  const double s2 = std::sin(dlam / 2.0);
  const double h = s1 * s1 + std::cos(phi1) * std::cos(phi2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

}  // namespace scguard::geo
