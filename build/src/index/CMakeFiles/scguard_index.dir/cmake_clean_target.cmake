file(REMOVE_RECURSE
  "libscguard_index.a"
)
