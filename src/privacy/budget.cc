#include "privacy/budget.h"

#include "common/check.h"
#include "common/str_format.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace scguard::privacy {

namespace {
// Tolerance for floating-point budget comparisons: spending exactly the
// remaining budget must succeed.
constexpr double kSlack = 1e-12;

// Cross-ledger budget telemetry (DESIGN.md §7): cumulative epsilon
// granted process-wide plus how often ledgers said no — the two numbers
// the dynamic-worker privacy evaluations track. No-ops while disabled.
struct BudgetTelemetry {
  obs::Counter* spends;
  obs::Counter* refused_spends;
  obs::Gauge* epsilon_spent;

  static const BudgetTelemetry& Get() {
    static const BudgetTelemetry t = {
        obs::MetricsRegistry::Global().GetCounter(
            "scguard.privacy.budget.spends"),
        obs::MetricsRegistry::Global().GetCounter(
            "scguard.privacy.budget.refused_spends"),
        obs::MetricsRegistry::Global().GetGauge(
            "scguard.privacy.budget.epsilon_spent")};
    return t;
  }
};
}  // namespace

BudgetLedger::BudgetLedger(double total_epsilon) : total_(total_epsilon) {
  SCGUARD_CHECK(total_epsilon > 0.0);
}

Status BudgetLedger::Spend(double epsilon) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon to spend must be positive");
  }
  if (!CanSpend(epsilon)) {
    BudgetTelemetry::Get().refused_spends->Increment();
    obs::AuditBudgetSpend(audit_owner_, epsilon, /*granted=*/false);
    return Status::FailedPrecondition(
        StrCat("privacy budget exhausted: spent ", spent_, " of ", total_,
               ", requested ", epsilon));
  }
  spent_ += epsilon;
  BudgetTelemetry::Get().spends->Increment();
  BudgetTelemetry::Get().epsilon_spent->Add(epsilon);
  obs::AuditBudgetSpend(audit_owner_, epsilon, /*granted=*/true);
  return Status::OK();
}

bool BudgetLedger::CanSpend(double epsilon) const {
  return epsilon > 0.0 && spent_ + epsilon <= total_ * (1.0 + kSlack);
}

double BudgetLedger::UniformEpsilonFor(int releases) const {
  SCGUARD_CHECK(releases > 0);
  const double remaining = total_ - spent_;
  return remaining > 0.0 ? remaining / releases : 0.0;
}

}  // namespace scguard::privacy
