#include "reachability/kernel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "reachability/binary_model.h"
#include "reachability/empirical_model.h"
#include "reachability/empirical_table.h"

namespace scguard::reachability {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Search ceiling for the bisection bracket; far beyond any planar
/// coordinate this repository produces (the Beijing region spans ~1e5 m).
constexpr double kMaxSearchDistance = 1e9;

/// Relative slack applied when converting a distance bound to squared
/// space: hypot and sqrt(dx^2 + dy^2) agree to a couple of ulps
/// (~4e-16 relative), so 1e-10 pushes every ambiguous point into the
/// direct-evaluation band instead of a certain region.
constexpr double kSqSlack = 1e-10;

double ToAcceptSq(double accept_below_m) {
  if (accept_below_m < 0.0) return -1.0;
  if (std::isinf(accept_below_m)) return kInf;
  return accept_below_m * accept_below_m * (1.0 - kSqSlack);
}

double ToRejectSq(double reject_above_m) {
  if (std::isinf(reject_above_m)) return kInf;
  return reject_above_m * reject_above_m * (1.0 + kSqSlack);
}

AlphaThreshold MakeThreshold(double accept_below_m, double reject_above_m) {
  AlphaThreshold t;
  t.accept_below_m = accept_below_m;
  t.reject_above_m = reject_above_m;
  t.accept_below_sq = ToAcceptSq(accept_below_m);
  t.reject_above_sq = ToRejectSq(reject_above_m);
  return t;
}

/// Largest distance with p(d) >= level, assuming p monotone non-increasing
/// and p(0) >= level. Returns the lower end of the final bracket, so the
/// result is certain-side conservative.
template <typename ProbFn>
double BisectDown(const ProbFn& p, double level, double initial_hi) {
  double lo = 0.0;
  double hi = std::max(initial_hi, 1.0);
  while (p(hi) >= level) {
    lo = hi;
    hi *= 2.0;
    if (hi >= kMaxSearchDistance) return kMaxSearchDistance;
  }
  // Invariant: p(lo) >= level, p(hi) < level.
  for (int iter = 0; iter < 200 && hi - lo > 1e-9 * std::max(1.0, hi);
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (p(mid) >= level) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Smallest distance with p(d) <= level under the same assumptions
/// (requires p(0) > level). Returns the upper end of the final bracket.
template <typename ProbFn>
double BisectUp(const ProbFn& p, double level, double initial_hi) {
  double lo = 0.0;
  double hi = std::max(initial_hi, 1.0);
  while (p(hi) > level) {
    lo = hi;
    hi *= 2.0;
    if (hi >= kMaxSearchDistance) return kInf;
  }
  // Invariant: p(lo) > level, p(hi) <= level.
  for (int iter = 0; iter < 200 && hi - lo > 1e-9 * std::max(1.0, hi);
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (p(mid) > level) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

/// Exact inversion for the empirical tables: ProbBelow depends on the
/// observed distance only through its bucket index, so the accept set is
/// read off the bucket row. The certain-accept region is the accepting
/// prefix, the certain-reject region everything past the last accepting
/// bucket; a non-monotone middle (sparse-data noise) stays in the band and
/// is resolved by the O(1) direct lookup.
AlphaThreshold InvertEmpirical(const EmpiricalTable& table, double alpha,
                               double reach_radius_m) {
  const double width = table.bucket_width_m();
  const int num_buckets = table.num_buckets();
  int first_reject = num_buckets;
  int last_accept = -1;
  for (int b = 0; b < num_buckets; ++b) {
    const double representative = (static_cast<double>(b) + 0.5) * width;
    const bool accepts = table.ProbBelow(representative, reach_radius_m) >= alpha;
    if (accepts) {
      last_accept = b;
    } else if (first_reject == num_buckets) {
      first_reject = b;
    }
  }
  if (last_accept < 0) {
    // No bucket accepts: certainly reject everywhere.
    return MakeThreshold(-1.0, 0.0);
  }
  // The boundary distances carry the same relative slack the squared bounds
  // get, so d / width can never round into the wrong bucket. A rejecting
  // bucket 0 means there is no certain-accept prefix at all (-1), even if
  // later buckets accept non-monotonically.
  const double accept_below_m =
      first_reject == num_buckets ? kInf
      : first_reject == 0
          ? -1.0
          : static_cast<double>(first_reject) * width * (1.0 - kSqSlack);
  const double reject_above_m =
      last_accept == num_buckets - 1
          ? kInf  // The open-ended overflow bucket accepts.
          : static_cast<double>(last_accept + 1) * width * (1.0 + kSqSlack);
  return MakeThreshold(accept_below_m, reject_above_m);
}

}  // namespace

AlphaThresholdCache::AlphaThresholdCache(const ReachabilityModel* model,
                                         Stage stage, double alpha,
                                         double margin)
    : model_(model), stage_(stage), alpha_(alpha), margin_(margin) {
  SCGUARD_CHECK(model != nullptr);
  SCGUARD_CHECK(alpha > 0.0 && alpha <= 1.0);
  SCGUARD_CHECK(margin > 0.0 && margin < alpha);
}

const AlphaThreshold& AlphaThresholdCache::For(double reach_radius_m) {
  const uint64_t key = RadiusKey(reach_radius_m);
  const auto it = by_radius_.find(key);
  if (it != by_radius_.end()) return it->second;
  return by_radius_.emplace(key, Invert(reach_radius_m)).first->second;
}

bool AlphaThresholdCache::IsCandidate(double observed_distance_m,
                                      double reach_radius_m) {
  const AlphaThreshold& t = For(reach_radius_m);
  if (observed_distance_m <= t.accept_below_m) return true;
  if (observed_distance_m >= t.reject_above_m) return false;
  ++exact_evals_;
  return model_->ProbReachable(stage_, observed_distance_m, reach_radius_m) >=
         alpha_;
}

AlphaThreshold AlphaThresholdCache::Invert(double reach_radius_m) const {
  // Exact per-model inversions first; they need no probability margin.
  if (dynamic_cast<const BinaryModel*>(model_) != nullptr) {
    // p is the step 1{d <= R}: for any alpha in (0, 1] the filter is the
    // oblivious compare itself. The distance bounds are exact; only the
    // squared bounds keep a band for hypot rounding.
    const double r = reach_radius_m;
    AlphaThreshold t;
    t.accept_below_m = r;
    t.reject_above_m = std::nextafter(r, kInf);
    t.accept_below_sq = ToAcceptSq(r);
    t.reject_above_sq = ToRejectSq(r);
    return t;
  }
  if (const auto* empirical = dynamic_cast<const EmpiricalModel*>(model_)) {
    const EmpiricalTable& table = stage_ == Stage::kU2U
                                      ? empirical->u2u_table()
                                      : empirical->u2e_table();
    return InvertEmpirical(table, alpha_, reach_radius_m);
  }

  // Generic monotone inversion: certain-accept up to the alpha + margin
  // level, certain-reject from the alpha - margin level. The margin absorbs
  // ulp-level non-monotonicity of the implementations around the crossing.
  const auto p = [this, reach_radius_m](double d) {
    return model_->ProbReachable(stage_, d, reach_radius_m);
  };
  const double p0 = p(0.0);
  const double initial_hi = std::max(reach_radius_m, 1.0);

  double accept_below_m = -1.0;
  if (p0 >= alpha_ + margin_) {
    accept_below_m = BisectDown(p, alpha_ + margin_, initial_hi);
    if (accept_below_m >= kMaxSearchDistance) accept_below_m = kInf;
  }
  double reject_above_m = 0.0;
  if (p0 > alpha_ - margin_) {
    reject_above_m = BisectUp(p, alpha_ - margin_, initial_hi);
  }
  return MakeThreshold(accept_below_m, reject_above_m);
}

KernelLut::KernelLut(const ReachabilityModel* model, Stage stage,
                     const KernelOptions& options)
    : model_(model), stage_(stage), options_(options) {
  SCGUARD_CHECK(model != nullptr);
  SCGUARD_CHECK(options.lut_step_m > 0.0);
  SCGUARD_CHECK(options.lut_max_abs_error > 0.0 &&
                options.lut_max_abs_error < 1.0);
}

double KernelLut::Prob(double observed_distance_m, double reach_radius_m) {
  const uint64_t key = RadiusKey(reach_radius_m);
  auto it = by_radius_.find(key);
  if (it == by_radius_.end()) {
    it = by_radius_.emplace(key, Build(reach_radius_m)).first;
  }
  const Table& table = it->second;
  if (observed_distance_m >= table.max_d) return table.tail_value;
  const double pos = observed_distance_m * table.inv_step;
  const auto idx = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  return table.values[idx] +
         frac * (table.values[idx + 1] - table.values[idx]);
}

KernelLut::Table KernelLut::Build(double reach_radius_m) {
  const double bound = options_.lut_max_abs_error;
  const auto p = [this, reach_radius_m](double d) {
    return model_->ProbReachable(stage_, d, reach_radius_m);
  };

  // Grid end: where the probability has fallen below a tenth of the error
  // bound, so returning the flat tail value keeps the contract (the true
  // probability is monotone below it).
  double max_d = std::max(2.0 * reach_radius_m, 1000.0);
  while (p(max_d) > bound * 0.1 && max_d < 1e7) max_d *= 2.0;

  double step = options_.lut_step_m;
  for (int refinement = 0;; ++refinement) {
    Table table;
    table.step = step;
    table.inv_step = 1.0 / step;
    const auto n = static_cast<size_t>(std::ceil(max_d / step)) + 1;
    table.max_d = static_cast<double>(n - 1) * step;
    table.values.resize(n);
    for (size_t i = 0; i < n; ++i) {
      table.values[i] = p(static_cast<double>(i) * step);
    }
    table.tail_value = table.values.back();

    // Verification: for monotone p both the interpolant and the function
    // stay inside [v[i+1], v[i]], so a cell with bracket width <= bound is
    // proven; wider cells (the CDF's transition region) are checked at the
    // quarter points against half the bound, leaving headroom for
    // off-sample residuals of the smooth closed forms.
    double worst = 0.0;
    bool ok = true;
    for (size_t i = 0; ok && i + 1 < n; ++i) {
      const double bracket = std::abs(table.values[i] - table.values[i + 1]);
      if (bracket <= bound) continue;
      const double d0 = static_cast<double>(i) * step;
      for (const double frac : {0.25, 0.5, 0.75}) {
        const double d = d0 + frac * step;
        const double interp =
            table.values[i] + frac * (table.values[i + 1] - table.values[i]);
        const double err = std::abs(interp - p(d));
        worst = std::max(worst, err);
        if (err > bound * 0.5) {
          ok = false;
          break;
        }
      }
    }
    if (ok || refinement >= 12) {
      SCGUARD_CHECK(ok && "KernelLut could not meet its error bound");
      worst_verified_error_ = std::max(worst_verified_error_, worst);
      return table;
    }
    step *= 0.5;
  }
}

void ClassifyCertainBandScalar(const WorkerFilterSoA& soa,
                               const uint32_t* indices, size_t count,
                               double task_x, double task_y,
                               std::vector<uint32_t>& accept,
                               std::vector<uint32_t>& band) {
  accept.resize(count);
  band.resize(count);
  const double* const x = soa.x.data();
  const double* const y = soa.y.data();
  const double* const accept_sq = soa.accept_below_sq.data();
  const double* const reject_sq = soa.reject_above_sq.data();
  uint32_t* const accept_out = accept.data();
  uint32_t* const band_out = band.data();
  size_t num_accept = 0;
  size_t num_band = 0;
  for (size_t k = 0; k < count; ++k) {
    const uint32_t i = indices[k];
    const double dx = x[i] - task_x;
    const double dy = y[i] - task_y;
    const double d_sq = dx * dx + dy * dy;
    // Unconditional slot writes + predicated increments keep the loop free
    // of data-dependent branches; d_sq == accept bound counts as accept,
    // matching AlphaThreshold::NeedsExactEval's open band.
    const bool in_accept = d_sq <= accept_sq[i];
    const bool in_band = (d_sq > accept_sq[i]) & (d_sq < reject_sq[i]);
    accept_out[num_accept] = i;
    num_accept += in_accept ? 1 : 0;
    band_out[num_band] = i;
    num_band += in_band ? 1 : 0;
  }
  accept.resize(num_accept);
  band.resize(num_band);
}

void ClassifyCertainBandRangeScalar(const CellMajorMirror& m, size_t begin,
                                    size_t count, double task_x,
                                    double task_y,
                                    std::vector<uint32_t>& accept,
                                    std::vector<uint32_t>& band) {
  // Append semantics: resize ahead by the worst case, shrink to the
  // survivors. Same branch-free trichotomy as ClassifyCertainBandScalar,
  // but every column load is a contiguous stream through the mirror rows.
  const size_t accept_base = accept.size();
  const size_t band_base = band.size();
  accept.resize(accept_base + count);
  band.resize(band_base + count);
  const uint32_t* const id = m.id.data() + begin;
  const double* const x = m.x.data() + begin;
  const double* const y = m.y.data() + begin;
  const double* const accept_sq = m.accept_below_sq.data() + begin;
  const double* const reject_sq = m.reject_above_sq.data() + begin;
  uint32_t* const accept_out = accept.data() + accept_base;
  uint32_t* const band_out = band.data() + band_base;
  size_t num_accept = 0;
  size_t num_band = 0;
  for (size_t k = 0; k < count; ++k) {
    const double dx = x[k] - task_x;
    const double dy = y[k] - task_y;
    const double d_sq = dx * dx + dy * dy;
    const bool in_accept = d_sq <= accept_sq[k];
    const bool in_band = (d_sq > accept_sq[k]) & (d_sq < reject_sq[k]);
    accept_out[num_accept] = id[k];
    num_accept += in_accept ? 1 : 0;
    band_out[num_band] = id[k];
    num_band += in_band ? 1 : 0;
  }
  accept.resize(accept_base + num_accept);
  band.resize(band_base + num_band);
}

size_t ClassifyCertainBandRangeRectScalar(
    const CellMajorMirror& m, size_t begin, size_t count, double task_x,
    double task_y, double q_min_x, double q_min_y, double q_max_x,
    double q_max_y, std::vector<uint32_t>& accept,
    std::vector<uint32_t>& band) {
  const size_t accept_base = accept.size();
  const size_t band_base = band.size();
  accept.resize(accept_base + count);
  band.resize(band_base + count);
  const uint32_t* const id = m.id.data() + begin;
  const double* const x = m.x.data() + begin;
  const double* const y = m.y.data() + begin;
  const double* const er = m.expanded_r.data() + begin;
  const double* const accept_sq = m.accept_below_sq.data() + begin;
  const double* const reject_sq = m.reject_above_sq.data() + begin;
  uint32_t* const accept_out = accept.data() + accept_base;
  uint32_t* const band_out = band.data() + band_base;
  size_t num_accept = 0;
  size_t num_band = 0;
  size_t admitted = 0;
  for (size_t k = 0; k < count; ++k) {
    // Bit-identical to GridIndex::Query's boundary member test.
    const bool admit = (x[k] - er[k] <= q_max_x) & (q_min_x <= x[k] + er[k]) &
                       (y[k] - er[k] <= q_max_y) & (q_min_y <= y[k] + er[k]);
    const double dx = x[k] - task_x;
    const double dy = y[k] - task_y;
    const double d_sq = dx * dx + dy * dy;
    const bool in_accept = admit & (d_sq <= accept_sq[k]);
    const bool in_band =
        admit & (d_sq > accept_sq[k]) & (d_sq < reject_sq[k]);
    accept_out[num_accept] = id[k];
    num_accept += in_accept ? 1 : 0;
    band_out[num_band] = id[k];
    num_band += in_band ? 1 : 0;
    admitted += admit ? 1 : 0;
  }
  accept.resize(accept_base + num_accept);
  band.resize(band_base + num_band);
  return admitted;
}

namespace {

using ClassifyFn = void (*)(const WorkerFilterSoA&, const uint32_t*, size_t,
                            double, double, std::vector<uint32_t>&,
                            std::vector<uint32_t>&);
using ClassifyRangeFn = void (*)(const CellMajorMirror&, size_t, size_t,
                                 double, double, std::vector<uint32_t>&,
                                 std::vector<uint32_t>&);
using ClassifyRangeRectFn = size_t (*)(const CellMajorMirror&, size_t, size_t,
                                       double, double, double, double, double,
                                       double, std::vector<uint32_t>&,
                                       std::vector<uint32_t>&);

/// nullptr = not resolved yet; the first call (or an explicit
/// ActiveClassifySimd / SetClassifySimd) resolves via CPUID. Relaxed atomics
/// suffice: every resolution writes the same value and the pointed-to
/// functions are immutable code.
std::atomic<ClassifyFn> g_classify{nullptr};
std::atomic<ClassifyRangeFn> g_classify_range{nullptr};
std::atomic<ClassifyRangeRectFn> g_classify_range_rect{nullptr};

ClassifyFn ResolveClassify() {
#if defined(SCGUARD_HAVE_AVX2)
  if (CpuSupportsAvx2()) return &ClassifyCertainBandAvx2;
#endif
  return &ClassifyCertainBandScalar;
}

ClassifyFn LoadOrResolve() {
  ClassifyFn fn = g_classify.load(std::memory_order_relaxed);
  if (fn == nullptr) {
    fn = ResolveClassify();
    g_classify.store(fn, std::memory_order_relaxed);
  }
  return fn;
}

ClassifyRangeFn LoadOrResolveRange() {
  ClassifyRangeFn fn = g_classify_range.load(std::memory_order_relaxed);
  if (fn == nullptr) {
#if defined(SCGUARD_HAVE_AVX2)
    fn = CpuSupportsAvx2() ? &ClassifyCertainBandRangeAvx2
                           : &ClassifyCertainBandRangeScalar;
#else
    fn = &ClassifyCertainBandRangeScalar;
#endif
    g_classify_range.store(fn, std::memory_order_relaxed);
  }
  return fn;
}

ClassifyRangeRectFn LoadOrResolveRangeRect() {
  ClassifyRangeRectFn fn =
      g_classify_range_rect.load(std::memory_order_relaxed);
  if (fn == nullptr) {
#if defined(SCGUARD_HAVE_AVX2)
    fn = CpuSupportsAvx2() ? &ClassifyCertainBandRangeRectAvx2
                           : &ClassifyCertainBandRangeRectScalar;
#else
    fn = &ClassifyCertainBandRangeRectScalar;
#endif
    g_classify_range_rect.store(fn, std::memory_order_relaxed);
  }
  return fn;
}

}  // namespace

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

void ClassifyCertainBand(const WorkerFilterSoA& soa, const uint32_t* indices,
                         size_t count, double task_x, double task_y,
                         std::vector<uint32_t>& accept,
                         std::vector<uint32_t>& band) {
  LoadOrResolve()(soa, indices, count, task_x, task_y, accept, band);
}

void ClassifyCertainBandRange(const CellMajorMirror& m, size_t begin,
                              size_t count, double task_x, double task_y,
                              std::vector<uint32_t>& accept,
                              std::vector<uint32_t>& band) {
  LoadOrResolveRange()(m, begin, count, task_x, task_y, accept, band);
}

size_t ClassifyCertainBandRangeRect(const CellMajorMirror& m, size_t begin,
                                    size_t count, double task_x,
                                    double task_y, double q_min_x,
                                    double q_min_y, double q_max_x,
                                    double q_max_y,
                                    std::vector<uint32_t>& accept,
                                    std::vector<uint32_t>& band) {
  return LoadOrResolveRangeRect()(m, begin, count, task_x, task_y, q_min_x,
                                  q_min_y, q_max_x, q_max_y, accept, band);
}

ClassifySimd ActiveClassifySimd() {
  const ClassifyFn fn = LoadOrResolve();
#if defined(SCGUARD_HAVE_AVX2)
  if (fn == &ClassifyCertainBandAvx2) return ClassifySimd::kAvx2;
#endif
  (void)fn;
  return ClassifySimd::kScalar;
}

void SetClassifySimd(ClassifySimd simd) {
#if defined(SCGUARD_HAVE_AVX2)
  if (simd == ClassifySimd::kAvx2 && CpuSupportsAvx2()) {
    g_classify.store(&ClassifyCertainBandAvx2, std::memory_order_relaxed);
    g_classify_range.store(&ClassifyCertainBandRangeAvx2,
                           std::memory_order_relaxed);
    g_classify_range_rect.store(&ClassifyCertainBandRangeRectAvx2,
                                std::memory_order_relaxed);
    return;
  }
#endif
  (void)simd;
  g_classify.store(&ClassifyCertainBandScalar, std::memory_order_relaxed);
  g_classify_range.store(&ClassifyCertainBandRangeScalar,
                         std::memory_order_relaxed);
  g_classify_range_rect.store(&ClassifyCertainBandRangeRectScalar,
                              std::memory_order_relaxed);
}

void ResetClassifySimd() {
  g_classify.store(nullptr, std::memory_order_relaxed);
  g_classify_range.store(nullptr, std::memory_order_relaxed);
  g_classify_range_rect.store(nullptr, std::memory_order_relaxed);
}

}  // namespace scguard::reachability
