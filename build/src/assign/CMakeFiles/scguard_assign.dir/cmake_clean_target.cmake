file(REMOVE_RECURSE
  "libscguard_assign.a"
)
