
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/build_empirical_model.cpp" "examples/CMakeFiles/build_empirical_model.dir/build_empirical_model.cpp.o" "gcc" "examples/CMakeFiles/build_empirical_model.dir/build_empirical_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scguard_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scguard_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/scguard_data.dir/DependInfo.cmake"
  "/root/repo/build/src/assign/CMakeFiles/scguard_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/reachability/CMakeFiles/scguard_reachability.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/scguard_index.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/scguard_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/scguard_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/scguard_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scguard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
