#include "obs/trace_export.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/str_format.h"

namespace scguard::obs {

namespace {

const char* PhaseFor(EventType type) {
  switch (type) {
    case EventType::kSpanBegin:
      return "B";
    case EventType::kSpanEnd:
      return "E";
    case EventType::kCounter:
      return "C";
    default:
      return "i";
  }
}

bool IsAudit(EventType type) {
  return type == EventType::kAuditCandidates ||
         type == EventType::kAuditCandidate ||
         type == EventType::kAuditDisclosure ||
         type == EventType::kAuditBudget;
}

const char* FilterName(AuditFilter filter) {
  switch (filter) {
    case AuditFilter::kAlphaBandAccept:
      return "alpha_band";
    case AuditFilter::kDirectEval:
      return "direct_eval";
    default:
      return "unknown";
  }
}

std::string NameOf(const std::vector<std::string>& names, uint16_t id) {
  if (id < names.size()) return JsonEscape(names[id]);
  return StrCat("name_", id);
}

}  // namespace

std::string ExportChromeTrace(const std::vector<TraceEvent>& events,
                              const std::vector<std::string>& names) {
  uint64_t base_ns = std::numeric_limits<uint64_t>::max();
  for (const TraceEvent& e : events) base_ns = std::min(base_ns, e.ts_ns);
  if (events.empty()) base_ns = 0;

  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    const auto type = static_cast<EventType>(e.type);
    if (!first) os << ',';
    first = false;
    // Perfetto wants ts in microseconds; keep ns precision as a fraction.
    const double ts_us = static_cast<double>(e.ts_ns - base_ns) / 1000.0;
    os << "{\"name\":\"" << NameOf(names, e.name_id) << "\",\"ph\":\""
       << PhaseFor(type) << "\",\"ts\":" << ts_us << ",\"pid\":1,\"tid\":"
       << e.tid;
    switch (type) {
      case EventType::kSpanBegin:
      case EventType::kSpanEnd:
        break;
      case EventType::kCounter:
        os << ",\"args\":{\"value\":" << e.arg0 << '}';
        break;
      case EventType::kInstant:
        os << ",\"s\":\"t\",\"args\":{\"arg0\":" << e.arg0 << ",\"value\":"
           << e.value << '}';
        break;
      case EventType::kAuditCandidates:
        os << ",\"s\":\"t\",\"args\":{\"task\":" << e.arg0 << ",\"candidates\":"
           << e.arg1 << ",\"epsilon\":" << e.value << '}';
        break;
      case EventType::kAuditCandidate:
        os << ",\"s\":\"t\",\"args\":{\"task\":" << e.arg0 << ",\"worker\":"
           << e.arg1 << ",\"score\":" << e.value << '}';
        break;
      case EventType::kAuditDisclosure:
        os << ",\"s\":\"t\",\"args\":{\"task\":" << e.arg0 << ",\"worker\":"
           << e.arg1 << ",\"score\":" << e.value << ",\"accepted\":"
           << (DisclosureAccepted(e.detail) ? "true" : "false")
           << ",\"filter\":\"" << FilterName(DisclosureFilter(e.detail))
           << "\"}";
        break;
      case EventType::kAuditBudget:
        os << ",\"s\":\"t\",\"args\":{\"owner\":" << e.arg0 << ",\"epsilon\":"
           << e.value << ",\"granted\":" << (e.detail ? "true" : "false")
           << '}';
        break;
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ns\"}";
  return os.str();
}

std::string ExportChromeTrace() {
  auto& recorder = FlightRecorder::Global();
  return ExportChromeTrace(recorder.Drain(), recorder.names());
}

AuditTotals SummarizeAudit(const std::vector<TraceEvent>& events) {
  AuditTotals totals;
  for (const TraceEvent& e : events) {
    switch (static_cast<EventType>(e.type)) {
      case EventType::kAuditCandidates:
        ++totals.u2e_rankings;
        totals.u2e_candidates_sum += e.arg1;
        break;
      case EventType::kAuditCandidate:
        ++totals.u2e_candidate_lines;
        break;
      case EventType::kAuditDisclosure:
        ++totals.e2e_disclosures;
        if (DisclosureAccepted(e.detail)) ++totals.e2e_accepted;
        break;
      case EventType::kAuditBudget:
        ++totals.budget_spends;
        if (e.detail) {
          totals.epsilon_spent += e.value;
        } else {
          ++totals.budget_refused;
        }
        break;
      default:
        break;
    }
  }
  return totals;
}

std::string ExportAuditJsonl(const std::vector<TraceEvent>& events,
                             const std::vector<std::string>& names,
                             int64_t dropped) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const TraceEvent& e : events) {
    const auto type = static_cast<EventType>(e.type);
    if (!IsAudit(type)) continue;
    os << "{\"ts_ns\":" << e.ts_ns << ",\"tid\":" << e.tid << ",\"event\":\""
       << NameOf(names, e.name_id) << '"';
    switch (type) {
      case EventType::kAuditCandidates:
        os << ",\"type\":\"u2e_candidates\",\"task\":" << e.arg0
           << ",\"candidates\":" << e.arg1 << ",\"epsilon\":" << e.value;
        break;
      case EventType::kAuditCandidate:
        os << ",\"type\":\"u2e_candidate\",\"task\":" << e.arg0
           << ",\"worker\":" << e.arg1 << ",\"score\":" << e.value;
        break;
      case EventType::kAuditDisclosure:
        os << ",\"type\":\"e2e_disclosure\",\"task\":" << e.arg0
           << ",\"worker\":" << e.arg1 << ",\"score\":" << e.value
           << ",\"accepted\":"
           << (DisclosureAccepted(e.detail) ? "true" : "false")
           << ",\"filter\":\"" << FilterName(DisclosureFilter(e.detail))
           << '"';
        break;
      case EventType::kAuditBudget:
        os << ",\"type\":\"budget_spend\",\"owner\":" << e.arg0
           << ",\"epsilon\":" << e.value << ",\"granted\":"
           << (e.detail ? "true" : "false");
        break;
      default:
        break;
    }
    os << "}\n";
  }
  const AuditTotals totals = SummarizeAudit(events);
  os << "{\"type\":\"summary\",\"u2e_rankings\":" << totals.u2e_rankings
     << ",\"u2e_candidates_sum\":" << totals.u2e_candidates_sum
     << ",\"u2e_candidate_lines\":" << totals.u2e_candidate_lines
     << ",\"e2e_disclosures\":" << totals.e2e_disclosures
     << ",\"e2e_accepted\":" << totals.e2e_accepted
     << ",\"budget_spends\":" << totals.budget_spends
     << ",\"budget_refused\":" << totals.budget_refused
     << ",\"epsilon_spent\":" << totals.epsilon_spent
     << ",\"dropped\":" << dropped << "}\n";
  return os.str();
}

}  // namespace scguard::obs
