#include "reachability/model_cache.h"

#include <filesystem>
#include <fstream>
#include <ios>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "stats/rng.h"

namespace scguard::reachability {
namespace {

/// Registry mirrors of CacheStats. The struct accessor (`stats()`) is the
/// source of truth and works with observability disabled; these exist so
/// cache behavior shows up in bench `metrics` blocks and Prometheus dumps
/// without polling every cache instance.
struct CacheCounters {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* disk_loads;

  static const CacheCounters& Get() {
    static const CacheCounters counters = {
        obs::MetricsRegistry::Global().GetCounter("scguard.model_cache.hits"),
        obs::MetricsRegistry::Global().GetCounter("scguard.model_cache.misses"),
        obs::MetricsRegistry::Global().GetCounter(
            "scguard.model_cache.disk_loads")};
    return counters;
  }
};

// FNV-1a 64-bit, for the cache filename only (the file itself stores the
// full key, so collisions degrade to a rebuild, never a wrong model).
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string HexDigest(uint64_t h) {
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

}  // namespace

ModelCache& ModelCache::Global() {
  static ModelCache* cache = new ModelCache();
  return *cache;
}

void ModelCache::set_cache_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_dir_ = std::move(dir);
}

std::string ModelCache::KeyFor(const EmpiricalModelConfig& config,
                               const privacy::PrivacyParams& worker_params,
                               const privacy::PrivacyParams& task_params,
                               uint64_t build_seed) {
  // Distinct mechanisms learn distinct tables, so the spec is part of the
  // identity of a build (a planar-Laplace model must never be served for a
  // grid-mechanism request at the same epsilon).
  const auto spec_of = [](const privacy::PrivacyParams& p) {
    std::ostringstream ss;
    ss << std::hexfloat << privacy::MechanismKindName(p.mechanism.kind) << ','
       << p.mechanism.grid_cells << ',' << p.mechanism.prior_seed << ','
       << p.mechanism.prior_samples << ',' << p.mechanism.region.min_x << ','
       << p.mechanism.region.min_y << ',' << p.mechanism.region.max_x << ','
       << p.mechanism.region.max_y;
    return ss.str();
  };
  std::ostringstream os;
  os << std::hexfloat;
  os << "w:" << worker_params.epsilon << ',' << worker_params.radius_m << ','
     << spec_of(worker_params) << ";t:" << task_params.epsilon << ','
     << task_params.radius_m << ',' << spec_of(task_params)
     << ";region:" << config.region.min_x << ',' << config.region.min_y << ','
     << config.region.max_x << ',' << config.region.max_y
     << ";samples:" << config.num_samples << ";bw:" << config.bucket_width_m
     << ";nb:" << config.num_buckets << ";tm:" << config.true_max_m
     << ";tb:" << config.true_bins << ";shards:" << config.num_shards
     << ";seed:" << build_seed;
  return os.str();
}

std::string ModelCache::PathFor(const std::string& key) const {
  return cache_dir_ + "/scguard-empirical-" + HexDigest(Fnv1a(key)) + ".model";
}

Result<std::shared_ptr<const EmpiricalModel>> ModelCache::GetOrBuild(
    const EmpiricalModelConfig& config,
    const privacy::PrivacyParams& worker_params,
    const privacy::PrivacyParams& task_params, uint64_t build_seed,
    runtime::ThreadPool* pool) {
  const std::string key =
      KeyFor(config, worker_params, task_params, build_seed);

  std::string cache_dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = models_.find(key);
    if (it != models_.end()) {
      ++stats_.hits;
      CacheCounters::Get().hits->Increment();
      static const uint16_t rec_hit_id =
          obs::FlightRecorder::Global().InternName("model_cache.hit");
      obs::EmitInstant(rec_hit_id);
      return it->second;
    }
    cache_dir = cache_dir_;
  }

  // Disk layer: a file is valid only if it records this exact key.
  std::shared_ptr<const EmpiricalModel> model;
  bool from_disk = false;
  if (!cache_dir.empty()) {
    std::ifstream in(PathFor(key));
    std::string magic, stored_key;
    if (in && std::getline(in, magic) && magic == "scguard-model-cache-v1" &&
        std::getline(in, stored_key) && stored_key == key) {
      auto loaded = EmpiricalModel::Deserialize(in);
      if (loaded.ok()) {
        model = std::make_shared<const EmpiricalModel>(std::move(*loaded));
        from_disk = true;
      }
    }
  }

  if (model == nullptr) {
    obs::Span build_span("model_cache.build");
    stats::Rng rng(build_seed);
    SCGUARD_ASSIGN_OR_RETURN(
        EmpiricalModel built,
        EmpiricalModel::Build(config, worker_params, task_params, rng, pool));
    model = std::make_shared<const EmpiricalModel>(std::move(built));
    if (!cache_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(cache_dir, ec);
      // Best-effort: an unwritable cache dir degrades to rebuilds.
      if (!ec) {
        std::ofstream out(PathFor(key), std::ios::trunc);
        if (out) {
          out << "scguard-model-cache-v1\n" << key << '\n';
          model->Serialize(out);
        }
      }
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  static const uint16_t rec_miss_id =
      obs::FlightRecorder::Global().InternName("model_cache.miss");
  if (from_disk) {
    ++stats_.disk_loads;
    CacheCounters::Get().disk_loads->Increment();
  } else {
    ++stats_.misses;
    CacheCounters::Get().misses->Increment();
    obs::EmitInstant(rec_miss_id);
  }
  // First insert wins so every caller shares one instance.
  const auto [it, inserted] = models_.emplace(key, std::move(model));
  (void)inserted;
  return it->second;
}

void ModelCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  models_.clear();
}

size_t ModelCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

ModelCache::CacheStats ModelCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace scguard::reachability
