#ifndef SCGUARD_STATS_HISTOGRAM_H_
#define SCGUARD_STATS_HISTOGRAM_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/result.h"

namespace scguard::stats {

/// Fixed-width-bin histogram over [lo, hi) with an overflow bin for values
/// >= hi and an underflow bin for values < lo.
///
/// The empirical reachability model stores, for every bucket of observed
/// (noisy) distance, a Histogram of the true distance; `FractionBelow`
/// answers Pr(d <= R_w | bucket) directly.
class Histogram {
 public:
  /// Requires lo < hi and num_bins >= 1.
  Histogram(double lo, double hi, int num_bins);

  void Add(double value);
  /// Adds `count` occurrences of `value` at once (used by deserialization).
  void AddCount(double value, uint64_t count);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int num_bins() const { return static_cast<int>(bins_.size()); }
  double bin_width() const { return width_; }
  uint64_t total_count() const { return total_; }
  uint64_t underflow_count() const { return underflow_; }
  uint64_t overflow_count() const { return overflow_; }
  uint64_t bin_count(int bin) const;

  /// Empirical Pr(X <= x) with linear interpolation inside the bin holding
  /// x (values in a bin are treated as uniformly spread across it).
  /// Returns 0 when the histogram is empty.
  double FractionBelow(double x) const;

  /// Empirical quantile (inverse of FractionBelow); p in [0, 1].
  /// Returns lo() when the histogram is empty.
  double Quantile(double p) const;

  /// Mean of the recorded values, approximated by bin midpoints (underflow
  /// and overflow contribute their boundary value).
  double Mean() const;

  /// Merges another histogram with identical geometry into this one.
  Status Merge(const Histogram& other);

  /// Writes a single-line text encoding: "lo hi n u o c0 c1 ... c(n-1)".
  void Serialize(std::ostream& os) const;

  /// Parses the encoding produced by Serialize.
  static Result<Histogram> Deserialize(std::istream& is);

 private:
  // Prefix sums (underflow + bins[0..i]) rebuilt lazily on first query
  // after a mutation, making FractionBelow O(1) — the empirical
  // reachability tables answer millions of such queries per run.
  const std::vector<uint64_t>& CumulativeCounts() const;

  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> bins_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
  mutable std::vector<uint64_t> cumulative_;
  mutable bool cumulative_valid_ = false;
};

}  // namespace scguard::stats

#endif  // SCGUARD_STATS_HISTOGRAM_H_
