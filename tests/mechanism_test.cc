#include "privacy/mechanism.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "geo/point.h"
#include "privacy/geo_ind.h"
#include "privacy/location_set.h"
#include "privacy/planar_laplace.h"
#include "privacy/privacy_params.h"
#include "reachability/analytical_model.h"
#include "reachability/empirical_model.h"
#include "runtime/thread_pool.h"
#include "sim/dynamic.h"
#include "stats/rng.h"

namespace scguard::privacy {
namespace {

constexpr double kEps = 0.7;
constexpr double kRadius = 800.0;

geo::BoundingBox TestRegion() {
  geo::BoundingBox region;
  region.Extend(geo::Point{0.0, 0.0});
  region.Extend(geo::Point{12000.0, 12000.0});
  return region;
}

PrivacyParams GridParams(MechanismKind kind, int grid_cells = 12) {
  PrivacyParams p{kEps, kRadius};
  p.mechanism.kind = kind;
  p.mechanism.grid_cells = grid_cells;
  p.mechanism.region = TestRegion();
  return p;
}

// ------------------------------------------------------------ The adapter

// The refactor's correctness bar: the adapter must consume the exact draws,
// in the exact order, of every pre-interface planar-Laplace call site, so
// seeds keep reproducing historical MatchResults bit for bit.
TEST(PlanarLaplaceMechanismTest, BitIdenticalToLegacySampleStreams) {
  const PrivacyParams p{kEps, kRadius};
  const PlanarLaplaceMechanism adapter(p);
  const GeoIndMechanism legacy(p);
  const PlanarLaplace inline_laplace(p.unit_epsilon());

  stats::Rng rng_adapter(991), rng_legacy(991), rng_inline(991);
  for (int i = 0; i < 1000; ++i) {
    const geo::Point x{100.0 * i, -37.5 * i};
    const geo::Point a = adapter.Perturb(x, rng_adapter);
    const geo::Point b = legacy.Perturb(x, rng_legacy);
    const geo::Point c = x + inline_laplace.Sample(rng_inline);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
    EXPECT_EQ(a.x, c.x);
    EXPECT_EQ(a.y, c.y);
  }
}

TEST(PlanarLaplaceMechanismTest, FactoryDefaultSpecIsTheAdapter) {
  const PrivacyParams p{kEps, kRadius};  // Default spec: planar Laplace.
  const auto mech = MakeMechanismOrDie(p);
  EXPECT_EQ(mech->name(), "planar-laplace");

  const PlanarLaplaceMechanism adapter(p);
  stats::Rng rng_a(7), rng_b(7);
  for (int i = 0; i < 200; ++i) {
    const geo::Point x{50.0 * i, 20.0 * i};
    const geo::Point a = mech->Perturb(x, rng_a);
    const geo::Point b = adapter.Perturb(x, rng_b);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
  }
}

TEST(PlanarLaplaceMechanismTest, ClosedFormsMatchPlanarLaplace) {
  const PrivacyParams p{kEps, kRadius};
  const PlanarLaplaceMechanism adapter(p);
  const PlanarLaplace laplace(p.unit_epsilon());
  for (const double nu : {0.0, 150.0, 800.0, 2500.0}) {
    const auto disk = adapter.DiskProbability(nu, 500.0);
    ASSERT_TRUE(disk.has_value());
    EXPECT_DOUBLE_EQ(*disk, laplace.DiskProbability(nu, 500.0));
  }
  EXPECT_DOUBLE_EQ(adapter.ConfidenceRadius(0.9), laplace.ConfidenceRadius(0.9));
}

TEST(MechanismTest, BatchMatchesScalarDrawOrder) {
  const auto mech = MakeMechanismOrDie(GridParams(MechanismKind::kGeoMatrix));
  std::vector<geo::Point> xs;
  for (int i = 0; i < 64; ++i) {
    xs.push_back(geo::Point{180.0 * i, 11000.0 - 160.0 * i});
  }
  std::vector<geo::Point> batch(xs.size());
  stats::Rng rng_batch(4), rng_scalar(4);
  mech->PerturbBatch(xs.data(), xs.size(), rng_batch, batch.data());
  for (size_t i = 0; i < xs.size(); ++i) {
    const geo::Point one = mech->Perturb(xs[i], rng_scalar);
    EXPECT_EQ(batch[i].x, one.x);
    EXPECT_EQ(batch[i].y, one.y);
  }
}

// --------------------------------------------------------- The alias table

TEST(AliasTableTest, SamplingMatchesProbabilities) {
  const std::vector<double> weights = {5.0, 2.0, 2.0, 1.0};  // Unnormalized.
  const AliasTable table(weights);
  ASSERT_EQ(table.size(), weights.size());
  stats::Rng rng(2024);
  const int n = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < n; ++i) counts[table.Sample(rng)] += 1;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double prob = weights[i] / 10.0;
    const double sigma = std::sqrt(prob * (1.0 - prob) / n);
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, prob, 4.0 * sigma)
        << "outcome " << i;
  }
}

TEST(MatrixMechanismTest, AliasSamplingMatchesMatrixRow) {
  const PrivacyParams p = GridParams(MechanismKind::kGeoMatrix, 6);
  const auto mech = MatrixMechanism::Make(p, TestRegion());
  ASSERT_TRUE(mech.ok());
  const MatrixMechanism& m = **mech;

  const geo::Point src{3100.0, 5300.0};
  const size_t src_cell = m.CellOf(src);
  const std::vector<double>& row = m.Row(src_cell);

  stats::Rng rng(77);
  const int n = 100000;
  std::vector<int> counts(row.size(), 0);
  for (int i = 0; i < n; ++i) counts[m.CellOf(m.Perturb(src, rng))] += 1;
  for (size_t j = 0; j < row.size(); ++j) {
    if (row[j] < 1e-4) continue;  // Tail cells: a 4-sigma band is ~0 wide.
    const double sigma = std::sqrt(row[j] * (1.0 - row[j]) / n);
    EXPECT_NEAR(static_cast<double>(counts[j]) / n, row[j],
                4.0 * sigma + 1e-4)
        << "cell " << j;
  }
}

TEST(MatrixMechanismTest, RowsAreNormalizedAndDistanceDecaying) {
  const auto mech =
      MatrixMechanism::Make(GridParams(MechanismKind::kGeoMatrix, 8),
                            TestRegion());
  ASSERT_TRUE(mech.ok());
  const MatrixMechanism& m = **mech;
  const size_t cells = static_cast<size_t>(m.grid_cells()) *
                       static_cast<size_t>(m.grid_cells());
  for (const size_t i : {size_t{0}, cells / 2, cells - 1}) {
    const std::vector<double>& row = m.Row(i);
    double sum = 0.0;
    for (const double v : row) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // The exponential kernel peaks at the true cell.
    EXPECT_EQ(std::distance(row.begin(),
                            std::max_element(row.begin(), row.end())),
              static_cast<ptrdiff_t>(i));
  }
}

TEST(MatrixMechanismTest, ConfidenceRadiusCoversGammaMass) {
  const auto mech = MakeMechanismOrDie(GridParams(MechanismKind::kGeoMatrix));
  const double r90 = mech->ConfidenceRadius(0.9);
  EXPECT_GT(r90, 0.0);
  const geo::Point src{6100.0, 4700.0};
  stats::Rng rng(11);
  const int n = 20000;
  int inside = 0;
  for (int i = 0; i < n; ++i) {
    if (geo::Distance(mech->Perturb(src, rng), src) <= r90) ++inside;
  }
  // Conservative (over-covering) is sound for pruning; under-covering is a
  // bug. The sampling slack only ever tightens the check.
  EXPECT_GE(static_cast<double>(inside) / n, 0.9 - 0.01);
}

// --------------------------------------------- Determinism of the factory

// Two mechanisms built from equal (params, region) must be behaviorally
// identical: that is what makes sharded empirical builds thread-count
// invariant and lets every call site reconstruct "the" mechanism locally.
TEST(MechanismTest, EqualSpecsBuildIdenticalMechanisms) {
  for (const MechanismKind kind :
       {MechanismKind::kPlanarLaplace, MechanismKind::kGeoMatrix,
        MechanismKind::kPriorEmpirical}) {
    const PrivacyParams p = kind == MechanismKind::kPlanarLaplace
                                ? PrivacyParams{kEps, kRadius}
                                : GridParams(kind);
    const auto a = MakeMechanismOrDie(p, TestRegion());
    const auto b = MakeMechanismOrDie(p, TestRegion());
    stats::Rng rng_a(31), rng_b(31);
    for (int i = 0; i < 300; ++i) {
      const geo::Point x{37.0 * i, 11800.0 - 35.0 * i};
      const geo::Point pa = a->Perturb(x, rng_a);
      const geo::Point pb = b->Perturb(x, rng_b);
      EXPECT_EQ(pa.x, pb.x) << MechanismKindName(kind);
      EXPECT_EQ(pa.y, pb.y) << MechanismKindName(kind);
    }
  }
}

TEST(PriorWeightedMechanismTest, PriorTiltsReportsTowardHistory) {
  // An explicit history concentrated in one corner must tilt the row mass
  // toward that corner relative to the unweighted exponential kernel.
  const PrivacyParams p = GridParams(MechanismKind::kPriorEmpirical, 8);
  std::vector<geo::Point> history;
  for (int i = 0; i < 2000; ++i) {
    history.push_back(geo::Point{500.0 + (i % 40) * 25.0,
                                 500.0 + (i / 40) * 25.0});  // SW corner.
  }
  const auto prior = PriorWeightedMechanism::Learn(p, TestRegion(),
                                                   history.data(),
                                                   history.size());
  ASSERT_TRUE(prior.ok());
  const auto plain = MatrixMechanism::Make(
      GridParams(MechanismKind::kGeoMatrix, 8), TestRegion());
  ASSERT_TRUE(plain.ok());

  const MatrixMechanism& weighted = (*prior)->matrix();
  const geo::Point src{6000.0, 6000.0};  // City center.
  const size_t cell = weighted.CellOf(src);
  const size_t sw_cell = weighted.CellOf(geo::Point{900.0, 900.0});
  EXPECT_GT(weighted.Row(cell)[sw_cell], (*plain)->Row(cell)[sw_cell]);
}

// ------------------------------------- Empirical tables across mechanisms

TEST(MechanismTest, EmpiricalBuildIsThreadCountInvariantPerMechanism) {
  reachability::EmpiricalModelConfig config;
  config.region = TestRegion();
  config.num_samples = 20000;
  config.num_shards = 8;
  runtime::ThreadPool pool(3);
  for (const MechanismKind kind :
       {MechanismKind::kPlanarLaplace, MechanismKind::kGeoMatrix,
        MechanismKind::kPriorEmpirical}) {
    const PrivacyParams p = kind == MechanismKind::kPlanarLaplace
                                ? PrivacyParams{kEps, kRadius}
                                : GridParams(kind);
    stats::Rng rng_serial(5005), rng_pooled(5005);
    const auto serial =
        reachability::EmpiricalModel::Build(config, p, rng_serial, nullptr);
    const auto pooled =
        reachability::EmpiricalModel::Build(config, p, rng_pooled, &pool);
    ASSERT_TRUE(serial.ok()) << MechanismKindName(kind);
    ASSERT_TRUE(pooled.ok()) << MechanismKindName(kind);
    std::ostringstream a, b;
    serial->Serialize(a);
    pooled->Serialize(b);
    EXPECT_EQ(a.str(), b.str()) << MechanismKindName(kind);
  }
}

// --------------------------------------------- Analytical model fail-fast

TEST(MechanismTest, AnalyticalModelRejectsMechanismsWithoutClosedForm) {
  const PrivacyParams planar{kEps, kRadius};
  EXPECT_TRUE(
      reachability::AnalyticalModel::Create(planar, planar).ok());
  for (const MechanismKind kind :
       {MechanismKind::kGeoMatrix, MechanismKind::kPriorEmpirical}) {
    const PrivacyParams grid = GridParams(kind);
    const auto result = reachability::AnalyticalModel::Create(grid, planar);
    ASSERT_FALSE(result.ok()) << MechanismKindName(kind);
    // The message must route the caller to the working path.
    EXPECT_NE(result.status().message().find("EmpiricalModel"),
              std::string::npos)
        << result.status().ToString();
    EXPECT_NE(result.status().message().find(MechanismKindName(kind)),
              std::string::npos)
        << result.status().ToString();
    // Symmetric on the task side.
    EXPECT_FALSE(reachability::AnalyticalModel::Create(planar, grid).ok());
  }
}

TEST(MechanismTest, ClosedFormAvailabilityByKind) {
  EXPECT_TRUE(HasClosedFormDiskProbability(MechanismKind::kPlanarLaplace));
  EXPECT_FALSE(HasClosedFormDiskProbability(MechanismKind::kGeoMatrix));
  EXPECT_FALSE(HasClosedFormDiskProbability(MechanismKind::kPriorEmpirical));
  const auto matrix = MakeMechanismOrDie(GridParams(MechanismKind::kGeoMatrix));
  EXPECT_FALSE(matrix->DiskProbability(100.0, 500.0).has_value());
}

// ------------------------------------------------------ Spec validation

TEST(MechanismTest, GridKindsRequireARegion) {
  PrivacyParams p{kEps, kRadius};
  p.mechanism.kind = MechanismKind::kGeoMatrix;  // No region anywhere.
  const auto result = MakeMechanism(p);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("region"), std::string::npos);
  // A fallback region (what perturbation sites pass) fixes it...
  EXPECT_TRUE(MakeMechanism(p, TestRegion()).ok());
  // ...and a pinned spec region wins over the fallback.
  p.mechanism.region = TestRegion();
  EXPECT_TRUE(MakeMechanism(p).ok());

  PrivacyParams bad = GridParams(MechanismKind::kGeoMatrix);
  bad.mechanism.grid_cells = 1;
  EXPECT_FALSE(bad.Validate().ok());
}

// ------------------------------------------------- Provenance round-trip

TEST(MechanismTest, NameAndParamsJsonAreStableProvenance) {
  for (const MechanismKind kind :
       {MechanismKind::kPlanarLaplace, MechanismKind::kGeoMatrix,
        MechanismKind::kPriorEmpirical}) {
    const PrivacyParams p = kind == MechanismKind::kPlanarLaplace
                                ? PrivacyParams{kEps, kRadius}
                                : GridParams(kind);
    const auto mech = MakeMechanismOrDie(p, TestRegion());
    EXPECT_EQ(mech->name(), MechanismKindName(kind));
    const std::string json = mech->ParamsJson();
    EXPECT_NE(json.find("\"name\":\""), std::string::npos) << json;
    EXPECT_NE(json.find(MechanismKindName(kind)), std::string::npos) << json;
    EXPECT_NE(json.find("\"epsilon\":"), std::string::npos) << json;
    // Pure function of the spec: rebuilt provenance is byte-identical.
    EXPECT_EQ(json, MakeMechanismOrDie(p, TestRegion())->ParamsJson());
  }
}

// --------------------------------- Budget splitting carries the mechanism

TEST(MechanismTest, LocationSetSplitsBudgetNotMechanism) {
  PrivacyParams joint = GridParams(MechanismKind::kGeoMatrix);
  const auto set = LocationSetMechanism::Create(joint, 4);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->per_location_params().epsilon, joint.epsilon / 4);
  EXPECT_TRUE(set->per_location_params().mechanism == joint.mechanism);
  EXPECT_EQ(set->mechanism().name(), "geo-matrix");

  // Planar default: PerturbSet must equal the legacy eps/n inline stream.
  const PrivacyParams planar{kEps, kRadius};
  const auto planar_set = LocationSetMechanism::Create(planar, 4);
  ASSERT_TRUE(planar_set.ok());
  std::vector<geo::Point> locs = {{0.0, 0.0}, {100.0, 50.0}, {2.0, 9000.0}};
  stats::Rng rng_set(13), rng_inline(13);
  const auto noisy = planar_set->PerturbSet(locs, rng_set);
  ASSERT_TRUE(noisy.ok());
  const PlanarLaplace split_laplace(planar.epsilon / 4 / planar.radius_m);
  for (size_t i = 0; i < locs.size(); ++i) {
    const geo::Point expect = locs[i] + split_laplace.Sample(rng_inline);
    EXPECT_EQ((*noisy)[i].x, expect.x);
    EXPECT_EQ((*noisy)[i].y, expect.y);
  }
}

// ------------------------------------------------- Dynamic-sim threading

TEST(MechanismTest, DynamicSimRunsEveryMechanismDeterministically) {
  sim::DynamicConfig config;
  config.rounds = 3;
  config.num_workers = 60;
  config.tasks_per_round = 20;
  for (const MechanismKind kind :
       {MechanismKind::kPlanarLaplace, MechanismKind::kGeoMatrix,
        MechanismKind::kPriorEmpirical}) {
    config.joint.mechanism = PrivacyParams{kEps, kRadius}.mechanism;
    config.joint.mechanism.kind = kind;
    config.joint.mechanism.grid_cells = 10;
    const auto a = sim::RunDynamicWorkers(
        config, sim::ReportingStrategy::kLocationSetSplit);
    const auto b = sim::RunDynamicWorkers(
        config, sim::ReportingStrategy::kLocationSetSplit);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].assigned, b[i].assigned) << MechanismKindName(kind);
      EXPECT_EQ(a[i].travel_m, b[i].travel_m) << MechanismKindName(kind);
      EXPECT_EQ(a[i].report_error_m, b[i].report_error_m)
          << MechanismKindName(kind);
    }
  }
}

}  // namespace
}  // namespace scguard::privacy
