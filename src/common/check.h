#ifndef SCGUARD_COMMON_CHECK_H_
#define SCGUARD_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>

namespace scguard::internal_check {

[[noreturn]] inline void CheckFail(const char* file, int line, const char* expr) {
  std::cerr << file << ":" << line << ": SCGUARD_CHECK failed: " << expr << std::endl;
  std::abort();
}

}  // namespace scguard::internal_check

/// Aborts the process when `cond` is false. For programmer errors
/// (precondition violations that indicate a bug, not recoverable input
/// errors — those return Status instead). Enabled in all build types.
#define SCGUARD_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) ::scguard::internal_check::CheckFail(__FILE__, __LINE__, #cond); \
  } while (false)

/// Like SCGUARD_CHECK but compiled out of release builds (NDEBUG).
#ifdef NDEBUG
#define SCGUARD_DCHECK(cond) \
  do {                       \
  } while (false)
#else
#define SCGUARD_DCHECK(cond) SCGUARD_CHECK(cond)
#endif

#endif  // SCGUARD_COMMON_CHECK_H_
