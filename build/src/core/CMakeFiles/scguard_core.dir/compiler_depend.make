# Empty compiler generated dependencies file for scguard_core.
# This may be replaced when dependencies are built.
