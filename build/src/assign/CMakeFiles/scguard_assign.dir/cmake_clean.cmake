file(REMOVE_RECURSE
  "CMakeFiles/scguard_assign.dir/algorithms.cc.o"
  "CMakeFiles/scguard_assign.dir/algorithms.cc.o.d"
  "CMakeFiles/scguard_assign.dir/batch.cc.o"
  "CMakeFiles/scguard_assign.dir/batch.cc.o.d"
  "CMakeFiles/scguard_assign.dir/cloaked.cc.o"
  "CMakeFiles/scguard_assign.dir/cloaked.cc.o.d"
  "CMakeFiles/scguard_assign.dir/ground_truth.cc.o"
  "CMakeFiles/scguard_assign.dir/ground_truth.cc.o.d"
  "CMakeFiles/scguard_assign.dir/metrics.cc.o"
  "CMakeFiles/scguard_assign.dir/metrics.cc.o.d"
  "CMakeFiles/scguard_assign.dir/offline.cc.o"
  "CMakeFiles/scguard_assign.dir/offline.cc.o.d"
  "CMakeFiles/scguard_assign.dir/scguard_engine.cc.o"
  "CMakeFiles/scguard_assign.dir/scguard_engine.cc.o.d"
  "libscguard_assign.a"
  "libscguard_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scguard_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
