# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/privacy_test[1]_include.cmake")
include("/root/repo/build/tests/reachability_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/assign_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/batch_test[1]_include.cmake")
include("/root/repo/build/tests/truncated_test[1]_include.cmake")
include("/root/repo/build/tests/cloaking_test[1]_include.cmake")
include("/root/repo/build/tests/offline_test[1]_include.cmake")
include("/root/repo/build/tests/kdtree_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
