file(REMOVE_RECURSE
  "CMakeFiles/build_empirical_model.dir/build_empirical_model.cpp.o"
  "CMakeFiles/build_empirical_model.dir/build_empirical_model.cpp.o.d"
  "build_empirical_model"
  "build_empirical_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_empirical_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
