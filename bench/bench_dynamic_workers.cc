// Paper Sec. VII made quantitative: moving workers must choose between a
// stale report (report-once), a composed privacy loss (naive refresh) and
// a linearly noisier report (location-set split). One table per strategy,
// one row per round.

#include "bench/bench_common.h"
#include "sim/dynamic.h"

namespace scguard::bench {
namespace {

void Main() {
  sim::DynamicConfig config;
  config.rounds = 8;
  config.num_workers = 250;
  config.tasks_per_round = 80;

  for (auto strategy : {sim::ReportingStrategy::kReportOnce,
                        sim::ReportingStrategy::kNaiveRefresh,
                        sim::ReportingStrategy::kLocationSetSplit}) {
    sim::TablePrinter table(
        StrCat("Dynamic workers, strategy=", sim::ReportingStrategyName(strategy),
               " (joint eps=", config.joint.epsilon, ", r=", config.joint.radius_m,
               ", ", config.rounds, " rounds)"),
        {"round", "assigned (of 80)", "travel (m)", "false hits",
         "report error (m)", "effective eps"});
    for (const auto& round : sim::RunDynamicWorkers(config, strategy)) {
      table.AddRow(StrCat(round.round),
                   {round.assigned, round.travel_m, round.false_hits,
                    round.report_error_m, round.effective_epsilon},
                   2);
    }
    table.Print(std::cout);
  }
  std::cout
      << "\nReading: report-once keeps eps fixed but its report error grows\n"
         "with movement; naive-refresh keeps reports fresh but its effective\n"
         "eps grows linearly (privacy silently eroding); location-set-split\n"
         "honors the joint budget at the cost of rounds-times more noise —\n"
         "the utility collapse the paper predicts for correlated releases.\n";
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
