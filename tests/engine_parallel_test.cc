// Thread-count / shard-size invariance of the engine's sharded U2U scan
// (DESIGN.md section 9), plus the active-set compaction equivalence and
// the removal support it leans on in the index layer. The determinism
// contract under test: for a fixed policy and workload, MatchResult and
// the caller's RNG stream are bit-identical for every
// (pool, shard_size, active_set) combination.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "assign/scguard_engine.h"
#include "data/workload.h"
#include "geo/bbox.h"
#include "index/grid_index.h"
#include "index/pruning.h"
#include "reachability/analytical_model.h"
#include "runtime/task_group.h"
#include "runtime/thread_pool.h"
#include "stats/rng.h"

namespace scguard::assign {
namespace {

using privacy::PrivacyParams;

constexpr PrivacyParams kDefault{0.7, 800.0};

Workload NoisyWorkload(int n, uint64_t seed) {
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});
  data::WorkloadConfig config;
  config.num_workers = n;
  config.num_tasks = n;
  stats::Rng rng(seed);
  Workload w = data::MakeUniformWorkload(region, config, rng);
  data::PerturbWorkload(kDefault, kDefault, rng, w);
  return w;
}

/// Asserts two runs produced the same protocol outcome bit for bit:
/// assignment sequence (ids and exact travel distances) and every
/// decision-derived metric. Timing metrics are excluded.
void ExpectBitIdentical(const MatchResult& a, const MatchResult& b,
                        const std::string& label) {
  ASSERT_EQ(a.assignments.size(), b.assignments.size()) << label;
  for (size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].task_id, b.assignments[i].task_id) << label;
    EXPECT_EQ(a.assignments[i].worker_id, b.assignments[i].worker_id) << label;
    EXPECT_EQ(a.assignments[i].travel_m, b.assignments[i].travel_m) << label;
  }
  EXPECT_EQ(a.metrics.assigned_tasks, b.metrics.assigned_tasks) << label;
  EXPECT_EQ(a.metrics.candidates_sum, b.metrics.candidates_sum) << label;
  EXPECT_EQ(a.metrics.false_hits, b.metrics.false_hits) << label;
  EXPECT_EQ(a.metrics.false_dismissals, b.metrics.false_dismissals) << label;
  EXPECT_EQ(a.metrics.requester_to_worker_msgs,
            b.metrics.requester_to_worker_msgs)
      << label;
  EXPECT_EQ(a.metrics.precision_sum, b.metrics.precision_sum) << label;
  EXPECT_EQ(a.metrics.recall_sum, b.metrics.recall_sum) << label;
  EXPECT_EQ(a.metrics.u2u_scanned, b.metrics.u2u_scanned) << label;
}

EnginePolicy BasePolicy(const reachability::AnalyticalModel* model) {
  EnginePolicy policy;
  policy.u2u_model = model;
  policy.u2e_model = model;
  policy.alpha = 0.1;
  policy.beta = 0.25;
  policy.rank = RankStrategy::kProbability;
  policy.worker_params = kDefault;
  policy.task_params = kDefault;
  return policy;
}

// The invariance matrix of ISSUE 4: pools {serial, 1, 2, 8} x shard sizes
// {64, 1024} x pruner {off, grid, rtree} x alpha-thresholds {on, off},
// each cell compared bit for bit (including the caller's RNG stream)
// against the legacy configuration: no pool, no active set.
TEST(EngineParallelTest, ThreadShardPrunerThresholdInvariance) {
  const reachability::AnalyticalModel model(kDefault);
  const Workload workload = NoisyWorkload(300, 20260806);

  // Pools are shared across cells; every Run must leave them reusable.
  std::vector<std::unique_ptr<runtime::ThreadPool>> pools;
  pools.push_back(nullptr);  // Serial.
  for (const int threads : {1, 2, 8}) {
    pools.push_back(std::make_unique<runtime::ThreadPool>(threads));
  }

  struct PrunerCase {
    const char* name;
    std::optional<double> gamma;
    index::PrunerBackend backend;
  };
  const PrunerCase pruners[] = {
      {"off", std::nullopt, index::PrunerBackend::kGrid},
      {"grid", 0.9, index::PrunerBackend::kGrid},
      {"rtree", 0.9, index::PrunerBackend::kRTree},
  };

  for (const bool thresholds : {true, false}) {
    for (const PrunerCase& pc : pruners) {
      // Baseline: the legacy serial full-rescan path.
      EnginePolicy base = BasePolicy(&model);
      base.kernel.alpha_thresholds = thresholds;
      base.pruning_gamma = pc.gamma;
      base.pruning_backend = pc.backend;
      base.runtime.pool = nullptr;
      base.runtime.active_set = false;
      ScGuardEngine baseline(base);
      stats::Rng base_rng(7);
      const MatchResult expected = baseline.Run(workload, base_rng);
      ASSERT_GT(expected.metrics.assigned_tasks, 0);
      // Where the baseline left the stream; every cell must land exactly
      // here too (the scan consumes no draws regardless of configuration).
      const double expected_next_draw = base_rng.UniformDouble();

      for (const auto& pool : pools) {
        for (const int shard_size : {64, 1024}) {
          EnginePolicy policy = BasePolicy(&model);
          policy.kernel.alpha_thresholds = thresholds;
          policy.pruning_gamma = pc.gamma;
          policy.pruning_backend = pc.backend;
          policy.runtime.pool = pool.get();
          policy.runtime.shard_size = shard_size;
          policy.runtime.active_set = true;
          ScGuardEngine engine(policy);
          stats::Rng rng(7);
          const MatchResult result = engine.Run(workload, rng);
          const std::string label =
              std::string("thresholds=") + (thresholds ? "on" : "off") +
              " pruner=" + pc.name +
              " threads=" + std::to_string(pool ? pool->num_threads() : 0) +
              " shard=" + std::to_string(shard_size);
          ExpectBitIdentical(expected, result, label);
          // Identical RNG stream: the scan consumed no draws either way.
          EXPECT_EQ(expected_next_draw, rng.UniformDouble()) << label;
        }
      }
    }
  }
}

// Nested use: Run invoked from inside a pool worker (as ExperimentRunner's
// seed fan-out does) must fall back to a serial scan, not deadlock, and
// still produce the identical result.
TEST(EngineParallelTest, NestedInsidePoolWorkerFallsBackSerially) {
  const reachability::AnalyticalModel model(kDefault);
  const Workload workload = NoisyWorkload(150, 99);
  runtime::ThreadPool pool(4);

  EnginePolicy policy = BasePolicy(&model);
  policy.runtime.pool = &pool;
  policy.runtime.shard_size = 32;
  ScGuardEngine engine(policy);

  stats::Rng serial_rng(3);
  const MatchResult expected = engine.Run(workload, serial_rng);

  MatchResult nested;
  {
    runtime::TaskGroup group(pool);
    group.Run([&]() -> Status {
      EXPECT_TRUE(runtime::ThreadPool::InWorkerThread());
      stats::Rng rng(3);
      nested = engine.Run(workload, rng);
      return Status::OK();
    });
    ASSERT_TRUE(group.Wait().ok());
  }
  ExpectBitIdentical(expected, nested, "nested-in-pool");
}

// Active-set compaction is an optimization, not a semantic change: on/off
// must agree on every decision, and with it on the scan work per task must
// shrink as workers get matched.
TEST(EngineParallelTest, ActiveSetMatchesFullScanAndShrinksWork) {
  const reachability::AnalyticalModel model(kDefault);
  const Workload workload = NoisyWorkload(400, 11);

  EnginePolicy on = BasePolicy(&model);
  on.runtime.active_set = true;
  on.runtime.shard_size = 64;
  EnginePolicy off = BasePolicy(&model);
  off.runtime.active_set = false;
  off.runtime.shard_size = 64;

  ScGuardEngine engine_on(on);
  ScGuardEngine engine_off(off);
  stats::Rng rng_on(5);
  stats::Rng rng_off(5);
  const MatchResult r_on = engine_on.Run(workload, rng_on);
  const MatchResult r_off = engine_off.Run(workload, rng_off);
  ExpectBitIdentical(r_on, r_off, "active-set on vs off");
  EXPECT_EQ(rng_on.UniformDouble(), rng_off.UniformDouble());

  // Both modes skip matched workers, so the scanned totals agree; the
  // decay is visible in the first/last per-task snapshots once anything
  // was assigned.
  EXPECT_EQ(r_on.metrics.u2u_scanned, r_off.metrics.u2u_scanned);
  ASSERT_GT(r_on.metrics.assigned_tasks, 0);
  EXPECT_LT(r_on.metrics.u2u_scanned_last_task,
            r_on.metrics.u2u_scanned_first_task);
  EXPECT_EQ(r_on.metrics.u2u_scanned_first_task, 400);
}

// Same equivalence through a pruning index: with the active set on the
// engine removes matched workers from the index instead of filtering them
// per query.
TEST(EngineParallelTest, ActiveSetMatchesFullScanUnderPruner) {
  const reachability::AnalyticalModel model(kDefault);
  const Workload workload = NoisyWorkload(300, 17);

  for (const auto backend :
       {index::PrunerBackend::kLinearScan, index::PrunerBackend::kGrid,
        index::PrunerBackend::kRTree}) {
    EnginePolicy on = BasePolicy(&model);
    on.pruning_gamma = 0.9;
    on.pruning_backend = backend;
    on.runtime.active_set = true;
    EnginePolicy off = on;
    off.runtime.active_set = false;

    ScGuardEngine engine_on(on);
    ScGuardEngine engine_off(off);
    stats::Rng rng_on(5);
    stats::Rng rng_off(5);
    const MatchResult r_on = engine_on.Run(workload, rng_on);
    const MatchResult r_off = engine_off.Run(workload, rng_off);
    const std::string label =
        std::string("pruner backend ") +
        std::string(index::PrunerBackendName(backend));
    ExpectBitIdentical(r_on, r_off, label);
    ASSERT_GT(r_on.metrics.assigned_tasks, 0) << label;
    // Removal makes the index return strictly fewer ids over the run.
    EXPECT_LE(r_on.metrics.u2u_scanned, r_off.metrics.u2u_scanned) << label;
  }
}

TEST(GridIndexRemoveTest, QueryAfterRemoveReAddAndIdempotence) {
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {1000, 1000});
  index::GridIndex grid(region, 8);
  const geo::BoundingBox box_a =
      geo::BoundingBox::FromCorners({100, 100}, {200, 200});
  const geo::BoundingBox box_b =
      geo::BoundingBox::FromCorners({150, 150}, {300, 300});
  grid.Insert(box_a, 1);
  grid.Insert(box_b, 2);
  ASSERT_EQ(grid.size(), 2u);

  const geo::BoundingBox everywhere = region;
  EXPECT_EQ(grid.QueryIds(everywhere).size(), 2u);

  // Remove drops the entry from every query it previously matched.
  EXPECT_EQ(grid.Remove(1), 1u);
  EXPECT_EQ(grid.size(), 1u);
  {
    const auto ids = grid.QueryIds(everywhere);
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], 2);
  }

  // Idempotent: a second removal is a no-op.
  EXPECT_EQ(grid.Remove(1), 0u);
  EXPECT_EQ(grid.Remove(777), 0u);  // Unknown id too.
  EXPECT_EQ(grid.size(), 1u);

  // Re-add under the same id: live again, with the new rectangle only.
  grid.Insert(geo::BoundingBox::FromCorners({800, 800}, {900, 900}), 1);
  EXPECT_EQ(grid.size(), 2u);
  {
    const auto ids = grid.QueryIds(
        geo::BoundingBox::FromCorners({790, 790}, {950, 950}));
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], 1);
  }
  // The old rectangle of id 1 stays dead.
  {
    const auto ids = grid.QueryIds(
        geo::BoundingBox::FromCorners({90, 90}, {140, 140}));
    EXPECT_TRUE(ids.empty());
  }
}

TEST(GridIndexRemoveTest, RemovesEveryEntryOfAnId) {
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {1000, 1000});
  index::GridIndex grid(region, 8);
  grid.Insert(geo::BoundingBox::FromCorners({0, 0}, {100, 100}), 5);
  grid.Insert(geo::BoundingBox::FromCorners({500, 500}, {600, 600}), 5);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid.Remove(5), 2u);
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.QueryIds(region).empty());
}

TEST(PrunerRemoveTest, AllBackendsStopReturningRemovedWorkers) {
  std::vector<index::UncertainRegionPruner::WorkerRegion> regions;
  for (int i = 0; i < 20; ++i) {
    regions.push_back({i, geo::Point{100.0 * i, 100.0 * i}, 500.0});
  }
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {2000, 2000});

  for (const auto backend :
       {index::PrunerBackend::kLinearScan, index::PrunerBackend::kGrid,
        index::PrunerBackend::kRTree}) {
    index::UncertainRegionPruner pruner(regions, kDefault, kDefault,
                                        /*gamma=*/0.9, backend, region);
    const geo::Point probe{500.0, 500.0};
    std::vector<int64_t> before = pruner.Candidates(probe);
    ASSERT_FALSE(before.empty());
    const int64_t victim = before.front();

    pruner.Remove(victim);
    pruner.Remove(victim);  // Idempotent.
    std::vector<int64_t> after = pruner.Candidates(probe);
    EXPECT_EQ(after.size(), before.size() - 1);
    for (const int64_t id : after) EXPECT_NE(id, victim);
    EXPECT_TRUE(std::is_sorted(after.begin(), after.end()));
  }
}

}  // namespace
}  // namespace scguard::assign
