
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assign/algorithms.cc" "src/assign/CMakeFiles/scguard_assign.dir/algorithms.cc.o" "gcc" "src/assign/CMakeFiles/scguard_assign.dir/algorithms.cc.o.d"
  "/root/repo/src/assign/batch.cc" "src/assign/CMakeFiles/scguard_assign.dir/batch.cc.o" "gcc" "src/assign/CMakeFiles/scguard_assign.dir/batch.cc.o.d"
  "/root/repo/src/assign/cloaked.cc" "src/assign/CMakeFiles/scguard_assign.dir/cloaked.cc.o" "gcc" "src/assign/CMakeFiles/scguard_assign.dir/cloaked.cc.o.d"
  "/root/repo/src/assign/ground_truth.cc" "src/assign/CMakeFiles/scguard_assign.dir/ground_truth.cc.o" "gcc" "src/assign/CMakeFiles/scguard_assign.dir/ground_truth.cc.o.d"
  "/root/repo/src/assign/metrics.cc" "src/assign/CMakeFiles/scguard_assign.dir/metrics.cc.o" "gcc" "src/assign/CMakeFiles/scguard_assign.dir/metrics.cc.o.d"
  "/root/repo/src/assign/offline.cc" "src/assign/CMakeFiles/scguard_assign.dir/offline.cc.o" "gcc" "src/assign/CMakeFiles/scguard_assign.dir/offline.cc.o.d"
  "/root/repo/src/assign/scguard_engine.cc" "src/assign/CMakeFiles/scguard_assign.dir/scguard_engine.cc.o" "gcc" "src/assign/CMakeFiles/scguard_assign.dir/scguard_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/scguard_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/scguard_index.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/scguard_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/reachability/CMakeFiles/scguard_reachability.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/scguard_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
