file(REMOVE_RECURSE
  "CMakeFiles/scguard_data.dir/csv_loader.cc.o"
  "CMakeFiles/scguard_data.dir/csv_loader.cc.o.d"
  "CMakeFiles/scguard_data.dir/tdrive_synth.cc.o"
  "CMakeFiles/scguard_data.dir/tdrive_synth.cc.o.d"
  "CMakeFiles/scguard_data.dir/trace.cc.o"
  "CMakeFiles/scguard_data.dir/trace.cc.o.d"
  "CMakeFiles/scguard_data.dir/trip_model.cc.o"
  "CMakeFiles/scguard_data.dir/trip_model.cc.o.d"
  "CMakeFiles/scguard_data.dir/workload.cc.o"
  "CMakeFiles/scguard_data.dir/workload.cc.o.d"
  "libscguard_data.a"
  "libscguard_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scguard_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
