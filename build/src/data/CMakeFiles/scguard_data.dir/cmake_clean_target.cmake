file(REMOVE_RECURSE
  "libscguard_data.a"
)
