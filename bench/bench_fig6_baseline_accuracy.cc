// Reproduces paper Fig. 6: precision/recall of the oblivious baseline's
// U2U candidate selection by varying the privacy radius r, at eps = 0.7
// with every worker's reach radius fixed to R_w = 1400 m (the figure's
// caption setting).

#include "bench/bench_common.h"

namespace scguard::bench {
namespace {

void Main() {
  sim::ExperimentConfig config = PaperConfig();
  // Fig. 6 fixes R_w = 1400 m for all workers.
  config.workload.reach_min_m = 1400.0;
  config.workload.reach_max_m = 1400.0;
  const auto runner = OrDie(sim::ExperimentRunner::Create(config));

  JsonSeriesWriter json("fig6_baseline_accuracy");
  sim::TablePrinter table(
      "Fig 6 — Oblivious U2U accuracy, eps=0.7, Rw=1400 m",
      {"metric", "r=200", "r=800", "r=1400", "r=2000"});
  std::vector<double> precision_row, recall_row;
  for (double r : sim::kRadii) {
    const privacy::PrivacyParams p{sim::kDefaultEpsilon, r};
    assign::MatcherHandle handle =
        assign::MakeOblivious(assign::RankStrategy::kNearest, MakeParams(p));
    const auto agg = OrDie(runner.Run(handle, p, p));
    json.Add("Oblivious-RN", r, agg);
    precision_row.push_back(agg.precision);
    recall_row.push_back(agg.recall);
  }
  table.AddRow("precision", precision_row, 2);
  table.AddRow("recall", recall_row, 2);
  table.Print(std::cout);
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
