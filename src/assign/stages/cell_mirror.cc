#include "assign/stages/cell_mirror.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace scguard::assign {
namespace {

template <typename T>
void ShiftDown(std::vector<T>& v, size_t pos, size_t end) {
  // rows [pos, end) := old rows [pos+1, end+1), mirroring the index's
  // in-slice erase shift.
  std::move(v.begin() + static_cast<std::ptrdiff_t>(pos + 1),
            v.begin() + static_cast<std::ptrdiff_t>(end + 1),
            v.begin() + static_cast<std::ptrdiff_t>(pos));
}

template <typename T>
void ShiftUp(std::vector<T>& v, size_t pos, size_t end) {
  // rows [pos+1, end) := old rows [pos, end-1), opening row `pos`.
  std::move_backward(v.begin() + static_cast<std::ptrdiff_t>(pos),
                     v.begin() + static_cast<std::ptrdiff_t>(end - 1),
                     v.begin() + static_cast<std::ptrdiff_t>(end));
}

}  // namespace

void CellScoreMirror::Attach(index::GridIndex* grid,
                             const reachability::WorkerFilterSoA* soa) {
  SCGUARD_CHECK(grid != nullptr && soa != nullptr);
  ForgetGrid();
  grid_ = grid;
  soa_ = soa;
  Resync();
  grid_->SetSliceChangeListener(this);
}

void CellScoreMirror::ForgetGrid() {
  if (grid_ != nullptr) {
    grid_->SetSliceChangeListener(nullptr);
    grid_ = nullptr;
  }
  soa_ = nullptr;
}

void CellScoreMirror::FillRow(size_t pos) {
  const auto id = static_cast<uint32_t>(grid_->member_id(pos));
  rows_.id[pos] = id;
  rows_.x[pos] = grid_->member_x(pos);
  rows_.y[pos] = grid_->member_y(pos);
  rows_.expanded_r[pos] = grid_->member_r(pos);
  SCGUARD_DCHECK(id < soa_->accept_below_sq.size());
  rows_.accept_below_sq[pos] = soa_->accept_below_sq[id];
  rows_.reject_above_sq[pos] = soa_->reject_above_sq[id];
}

void CellScoreMirror::RecomputeAgg(size_t slot) {
  CellAgg a;
  const size_t begin = grid_->cell_begin(slot);
  const size_t count = grid_->cell_count(slot);
  if (count > 0) {
    a.min_x = a.max_x = rows_.x[begin];
    a.min_y = a.max_y = rows_.y[begin];
    a.min_accept_sq = rows_.accept_below_sq[begin];
    a.max_reject_sq = rows_.reject_above_sq[begin];
    for (size_t pos = begin + 1; pos < begin + count; ++pos) {
      a.min_x = std::min(a.min_x, rows_.x[pos]);
      a.max_x = std::max(a.max_x, rows_.x[pos]);
      a.min_y = std::min(a.min_y, rows_.y[pos]);
      a.max_y = std::max(a.max_y, rows_.y[pos]);
      a.min_accept_sq = std::min(a.min_accept_sq, rows_.accept_below_sq[pos]);
      a.max_reject_sq = std::max(a.max_reject_sq, rows_.reject_above_sq[pos]);
    }
  }
  aggs_[slot] = a;
}

void CellScoreMirror::Resync() {
  rows_.Resize(grid_->member_rows());
  aggs_.assign(grid_->num_cell_slots(), CellAgg{});
  const size_t slots = grid_->num_cell_slots();
  for (size_t slot = 0; slot < slots; ++slot) {
    const size_t begin = grid_->cell_begin(slot);
    const size_t count = grid_->cell_count(slot);
    if (count == 0) continue;
    for (size_t pos = begin; pos < begin + count; ++pos) FillRow(pos);
    RecomputeAgg(slot);
  }
}

CellScoreMirror::CellAlpha CellScoreMirror::Certify(size_t slot,
                                                    double task_x,
                                                    double task_y) const {
  const CellAgg& a = aggs_[slot];
  if (a.max_x < a.min_x) return CellAlpha::kMixed;  // Empty cell.
  // Every member's kernel dx = fl(x - task_x) lies between fl(min_x -
  // task_x) and fl(max_x - task_x) (rounded subtraction is monotone in x),
  // so |dx| is bracketed by the endpoint magnitudes; squaring and the final
  // add are monotone under rounding too, so d_sq_max / d_sq_min bracket
  // every member's d_sq bit-exactly — certification never disagrees with
  // the per-member trichotomy it replaces.
  const double dx_lo = a.min_x - task_x;
  const double dx_hi = a.max_x - task_x;
  const double dy_lo = a.min_y - task_y;
  const double dy_hi = a.max_y - task_y;
  const double dxm = std::max(std::fabs(dx_lo), std::fabs(dx_hi));
  const double dym = std::max(std::fabs(dy_lo), std::fabs(dy_hi));
  const double d_sq_max = dxm * dxm + dym * dym;
  if (d_sq_max <= a.min_accept_sq) return CellAlpha::kAllAccept;
  const double dxn = dx_lo > 0.0 ? dx_lo : (dx_hi < 0.0 ? -dx_hi : 0.0);
  const double dyn = dy_lo > 0.0 ? dy_lo : (dy_hi < 0.0 ? -dy_hi : 0.0);
  const double d_sq_min = dxn * dxn + dyn * dyn;
  if (d_sq_min >= a.max_reject_sq) return CellAlpha::kAllReject;
  return CellAlpha::kMixed;
}

void CellScoreMirror::OnSliceErase(size_t slot, size_t pos, size_t end) {
  ShiftDown(rows_.id, pos, end);
  ShiftDown(rows_.x, pos, end);
  ShiftDown(rows_.y, pos, end);
  ShiftDown(rows_.expanded_r, pos, end);
  ShiftDown(rows_.accept_below_sq, pos, end);
  ShiftDown(rows_.reject_above_sq, pos, end);
  RecomputeAgg(slot);
}

void CellScoreMirror::OnSliceInsert(size_t slot, size_t pos, size_t end) {
  if (pos + 1 < end) {
    ShiftUp(rows_.id, pos, end);
    ShiftUp(rows_.x, pos, end);
    ShiftUp(rows_.y, pos, end);
    ShiftUp(rows_.expanded_r, pos, end);
    ShiftUp(rows_.accept_below_sq, pos, end);
    ShiftUp(rows_.reject_above_sq, pos, end);
  }
  FillRow(pos);
  RecomputeAgg(slot);
}

void CellScoreMirror::OnSliceUpdate(size_t slot, size_t pos, size_t end) {
  // Same-cell relocate: one row changed in place, no shifting. Re-copying
  // the row also refreshes the certain bands by id (they are unchanged —
  // the radius is fixed — but FillRow is the single source of truth).
  (void)end;
  FillRow(pos);
  RecomputeAgg(slot);
}

void CellScoreMirror::OnRebuild() { Resync(); }

}  // namespace scguard::assign
