#include "data/trip_model.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace scguard::data {

HotspotMixture::HotspotMixture(const geo::BoundingBox& region,
                               std::vector<Hotspot> hotspots,
                               double background_weight)
    : region_(region),
      hotspots_(std::move(hotspots)),
      background_weight_(background_weight),
      total_weight_(background_weight) {
  SCGUARD_CHECK(!region.empty());
  SCGUARD_CHECK(background_weight >= 0.0);
  for (const auto& h : hotspots_) {
    SCGUARD_CHECK(h.weight >= 0.0 && h.sigma_m > 0.0);
    total_weight_ += h.weight;
  }
  SCGUARD_CHECK(total_weight_ > 0.0);
}

HotspotMixture HotspotMixture::MakeBeijingLike(const geo::BoundingBox& region,
                                               int num_hotspots,
                                               stats::Rng& rng) {
  SCGUARD_CHECK(num_hotspots >= 1);
  std::vector<Hotspot> hotspots;
  hotspots.reserve(static_cast<size_t>(num_hotspots));
  // Hotspot centers concentrate in the middle 60% of the region (urban
  // core), with Zipf-like weights so a few stations dominate, matching the
  // heavy skew of real taxi demand.
  const double inset_x = region.Width() * 0.2;
  const double inset_y = region.Height() * 0.2;
  for (int i = 0; i < num_hotspots; ++i) {
    Hotspot h;
    h.center = {rng.UniformDouble(region.min_x + inset_x, region.max_x - inset_x),
                rng.UniformDouble(region.min_y + inset_y, region.max_y - inset_y)};
    h.sigma_m = rng.UniformDouble(400.0, 2000.0);
    h.weight = 1.0 / static_cast<double>(i + 1);  // Zipf(1).
    hotspots.push_back(h);
  }
  // 20% of demand is diffuse background.
  double hotspot_mass = 0.0;
  for (const auto& h : hotspots) hotspot_mass += h.weight;
  return HotspotMixture(region, std::move(hotspots), hotspot_mass * 0.25);
}

geo::Point HotspotMixture::Sample(stats::Rng& rng) const {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    double pick = rng.UniformDouble(0.0, total_weight_);
    if (pick < background_weight_) {
      return {rng.UniformDouble(region_.min_x, region_.max_x),
              rng.UniformDouble(region_.min_y, region_.max_y)};
    }
    pick -= background_weight_;
    for (const auto& h : hotspots_) {
      if (pick >= h.weight) {
        pick -= h.weight;
        continue;
      }
      const geo::Point p{rng.Gaussian(h.center.x, h.sigma_m),
                         rng.Gaussian(h.center.y, h.sigma_m)};
      if (region_.Contains(p)) return p;
      break;  // Rejected: redraw component and point.
    }
  }
  // Pathological truncation (hotspot far outside region): uniform fallback.
  return {rng.UniformDouble(region_.min_x, region_.max_x),
          rng.UniformDouble(region_.min_y, region_.max_y)};
}

}  // namespace scguard::data
