#include "sim/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "data/beijing.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"

namespace scguard::sim {

AggregatedMetrics Aggregate(const std::vector<assign::RunMetrics>& runs) {
  AggregatedMetrics agg;
  agg.seeds = static_cast<int>(runs.size());
  if (runs.empty()) return agg;
  for (const auto& m : runs) {
    agg.assigned_tasks += static_cast<double>(m.assigned_tasks);
    agg.accepted_assignments += static_cast<double>(m.accepted_assignments);
    agg.travel_m += m.MeanTravelM();
    agg.candidates += m.MeanCandidates();
    agg.false_hits += static_cast<double>(m.false_hits);
    agg.false_dismissals += static_cast<double>(m.false_dismissals);
    agg.precision += m.MeanPrecision();
    agg.recall += m.MeanRecall();
    agg.disclosures_per_task += m.DisclosuresPerAssignedTask();
    agg.u2u_seconds += m.u2u_seconds;
    agg.u2e_seconds += m.u2e_seconds;
    agg.total_seconds += m.total_seconds;
    agg.u2u_scanned += static_cast<double>(m.u2u_scanned);
    agg.u2u_scanned_first_task += static_cast<double>(m.u2u_scanned_first_task);
    agg.u2u_scanned_last_task += static_cast<double>(m.u2u_scanned_last_task);
    agg.cells_bulk_accepted += static_cast<double>(m.cells_bulk_accepted);
    agg.cells_skipped += static_cast<double>(m.cells_skipped);
    agg.boundary_workers += static_cast<double>(m.boundary_workers);
  }
  const double n = static_cast<double>(runs.size());
  agg.assigned_tasks /= n;
  agg.accepted_assignments /= n;
  agg.travel_m /= n;
  agg.candidates /= n;
  agg.false_hits /= n;
  agg.false_dismissals /= n;
  agg.precision /= n;
  agg.recall /= n;
  agg.disclosures_per_task /= n;
  agg.u2u_seconds /= n;
  agg.u2e_seconds /= n;
  agg.total_seconds /= n;
  agg.u2u_scanned /= n;
  agg.u2u_scanned_first_task /= n;
  agg.u2u_scanned_last_task /= n;
  agg.cells_bulk_accepted /= n;
  agg.cells_skipped /= n;
  agg.boundary_workers /= n;
  if (runs.size() >= 2) {
    double var_assigned = 0, var_travel = 0;
    for (const auto& m : runs) {
      const double da = static_cast<double>(m.assigned_tasks) - agg.assigned_tasks;
      const double dt = m.MeanTravelM() - agg.travel_m;
      var_assigned += da * da;
      var_travel += dt * dt;
    }
    agg.assigned_tasks_stddev = std::sqrt(var_assigned / (n - 1.0));
    agg.travel_m_stddev = std::sqrt(var_travel / (n - 1.0));
  }
  return agg;
}

ExperimentRunner::ExperimentRunner(const ExperimentConfig& config,
                                   std::vector<data::Trip> trips,
                                   const geo::BoundingBox& region)
    : config_(config), trips_(std::move(trips)), region_(region) {}

Result<ExperimentRunner> ExperimentRunner::Create(const ExperimentConfig& config) {
  if (config.num_seeds <= 0) {
    return Status::InvalidArgument("num_seeds must be positive");
  }
  const geo::BoundingBox region = data::BeijingRegion();
  stats::Rng city_rng(config.base_seed);
  SCGUARD_ASSIGN_OR_RETURN(
      data::TDriveSynthesizer synth,
      data::TDriveSynthesizer::Create(config.synth, region, city_rng));
  std::vector<data::Trip> trips = synth.GenerateTrips(city_rng);
  return ExperimentRunner(config, std::move(trips), region);
}

Result<assign::Workload> ExperimentRunner::MakeWorkload(
    int seed, const privacy::PrivacyParams& worker_params,
    const privacy::PrivacyParams& task_params) const {
  // Streams: 1 = workload sampling, 2 = Geo-I noise. Sampling is
  // independent of the privacy level, so the same seed yields the same
  // true workload for every (eps, r) point of a sweep.
  stats::Rng root(config_.base_seed + uint64_t{1000003} * static_cast<uint64_t>(seed + 1));
  stats::Rng sample_rng = root.Fork(1);
  SCGUARD_ASSIGN_OR_RETURN(
      assign::Workload workload,
      data::BuildWorkloadFromTrips(trips_, config_.workload, sample_rng));
  workload.region = region_;
  stats::Rng noise_rng = root.Fork(2);
  data::PerturbWorkload(worker_params, task_params, noise_rng, workload);
  return workload;
}

Result<AggregatedMetrics> ExperimentRunner::Run(
    assign::MatcherHandle& handle, const privacy::PrivacyParams& worker_params,
    const privacy::PrivacyParams& task_params) const {
  const obs::Span run_span("sim.run");
  // Seed fan-out: every seed derives its own Rng streams from base_seed,
  // builds its own workload, and writes its metrics into its own slot, so
  // the aggregate below — a seed-ordered reduction — is bit-identical for
  // any thread count. Timing fields (u2e/total seconds) are the only
  // metrics that vary run to run, parallel or not.
  std::vector<assign::RunMetrics> runs(static_cast<size_t>(config_.num_seeds));
  std::vector<double> seed_seconds(static_cast<size_t>(config_.num_seeds));
  const std::unique_ptr<runtime::ThreadPool> pool =
      runtime::MakePool(config_.runtime);
  const Status st = runtime::ParallelFor(
      pool.get(), 0, config_.num_seeds, /*grain=*/1,
      [&](int64_t lo, int64_t hi) -> Status {
        for (int64_t seed = lo; seed < hi; ++seed) {
          const auto seed_start = std::chrono::steady_clock::now();
          SCGUARD_ASSIGN_OR_RETURN(
              const assign::Workload workload,
              MakeWorkload(static_cast<int>(seed), worker_params, task_params));
          stats::Rng root(config_.base_seed +
                          uint64_t{1000003} * static_cast<uint64_t>(seed + 1));
          stats::Rng match_rng = root.Fork(3);  // Random ranks, shared per seed.
          runs[static_cast<size_t>(seed)] =
              handle.Run(workload, match_rng).metrics;
          seed_seconds[static_cast<size_t>(seed)] =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            seed_start)
                  .count();
        }
        return Status::OK();
      });
  SCGUARD_RETURN_NOT_OK(st);

  AggregatedMetrics agg = Aggregate(runs);
  // Per-seed wall-clock summary (and the scguard.sim.seed_seconds
  // histogram when observability is on). Previously this timing was
  // simply dropped, which made "which seed is slow" unanswerable.
  {
    obs::Counter* const seeds_counter =
        obs::MetricsRegistry::Global().GetCounter("scguard.sim.seeds_run");
    obs::Histogram* const seed_histogram =
        obs::MetricsRegistry::Global().GetHistogram(
            "scguard.sim.seed_seconds");
    seeds_counter->Increment(config_.num_seeds);
    if (obs::Enabled()) {
      for (const double s : seed_seconds) seed_histogram->Observe(s);
    }
    std::vector<double> sorted = seed_seconds;
    std::sort(sorted.begin(), sorted.end());
    agg.seed_seconds_min = sorted.front();
    agg.seed_seconds_max = sorted.back();
    const size_t mid = sorted.size() / 2;
    agg.seed_seconds_median = sorted.size() % 2 == 1
                                  ? sorted[mid]
                                  : 0.5 * (sorted[mid - 1] + sorted[mid]);
  }
  return agg;
}

Result<AggregatedMetrics> ExperimentRunner::RunFactory(
    const std::function<assign::MatcherHandle()>& factory,
    const privacy::PrivacyParams& worker_params,
    const privacy::PrivacyParams& task_params) const {
  assign::MatcherHandle handle = factory();
  return Run(handle, worker_params, task_params);
}

}  // namespace scguard::sim
