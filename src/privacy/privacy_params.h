#ifndef SCGUARD_PRIVACY_PRIVACY_PARAMS_H_
#define SCGUARD_PRIVACY_PRIVACY_PARAMS_H_

#include "common/result.h"

namespace scguard::privacy {

/// The (eps, r) pair of constrained geo-indistinguishability (paper Sec. II).
///
/// `epsilon` is the privacy level and `radius_m` the radius of concern in
/// meters: any two true locations within `radius_m` of each other produce
/// observation distributions within multiplicative distance
/// `epsilon * d(x, x') / radius_m <= epsilon`. Equivalently, the planar
/// Laplace mechanism is run with a per-meter budget of
/// `unit_epsilon() = epsilon / radius_m`.
struct PrivacyParams {
  double epsilon = 0.7;    ///< Total budget over the radius of concern.
  double radius_m = 800.0; ///< Radius of concern, meters.

  /// The per-meter epsilon the planar Laplace sampler consumes.
  double unit_epsilon() const { return epsilon / radius_m; }

  /// OK iff epsilon > 0 and radius_m > 0.
  Status Validate() const {
    if (!(epsilon > 0.0)) return Status::InvalidArgument("epsilon must be > 0");
    if (!(radius_m > 0.0)) return Status::InvalidArgument("radius_m must be > 0");
    return Status::OK();
  }

  friend bool operator==(const PrivacyParams& a, const PrivacyParams& b) {
    return a.epsilon == b.epsilon && a.radius_m == b.radius_m;
  }
};

}  // namespace scguard::privacy

#endif  // SCGUARD_PRIVACY_PRIVACY_PARAMS_H_
