#include "stats/quadrature.h"

#include <cmath>

namespace scguard::stats {
namespace {

double Recurse(const std::function<double(double)>& f, double a, double b,
               double fa, double fm, double fb, double whole, double tol,
               int depth) {
  const double m = (a + b) / 2.0;
  const double lm = (a + m) / 2.0;
  const double rm = (m + b) / 2.0;
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;  // Richardson extrapolation.
  }
  return Recurse(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1) +
         Recurse(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1);
}

}  // namespace

double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol) {
  if (a == b) return 0.0;
  const double fa = f(a);
  const double m = (a + b) / 2.0;
  const double fm = f(m);
  const double fb = f(b);
  const double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  return Recurse(f, a, b, fa, fm, fb, whole, tol, /*depth=*/40);
}

}  // namespace scguard::stats
