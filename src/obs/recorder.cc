#include "obs/recorder.h"

#include <algorithm>
#include <bit>

namespace scguard::obs {

EventRing::EventRing(size_t min_capacity) {
  const size_t capacity = std::bit_ceil(std::max<size_t>(min_capacity, 1024));
  buf_.resize(capacity);
  mask_ = capacity - 1;
}

size_t EventRing::DrainInto(std::vector<TraceEvent>& out) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  const uint64_t head = head_.load(std::memory_order_acquire);
  const size_t n = static_cast<size_t>(head - tail);
  out.reserve(out.size() + n);
  for (uint64_t i = tail; i != head; ++i) {
    out.push_back(buf_[i & mask_]);
  }
  tail_.store(head, std::memory_order_release);
  return n;
}

FlightRecorder::FlightRecorder() {
  // Fixed audit ids (kAudit*NameId): the interning order here is a contract
  // with recorder.h — do not reorder.
  InternName("audit.u2e_candidates");   // == kAuditU2eCandidatesNameId
  InternName("audit.u2e_candidate");    // == kAuditU2eCandidateNameId
  InternName("audit.e2e_disclosure");   // == kAuditE2eDisclosureNameId
  InternName("audit.budget_spend");     // == kAuditBudgetSpendNameId
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

uint16_t FlightRecorder::InternName(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<uint16_t>(i);
  }
  names_.emplace_back(name);
  return static_cast<uint16_t>(names_.size() - 1);
}

std::vector<std::string> FlightRecorder::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_;
}

namespace {
/// Per-thread handle into the recorder's ring registry: one mutex
/// acquisition per thread lifetime, none per event. tid is the ring's
/// index in rings_ — stable, dense, assigned in registration order.
struct ThreadHandle {
  FlightRecorder* owner = nullptr;
  EventRing* ring = nullptr;
  uint32_t tid = 0;
};
thread_local ThreadHandle tls_handle;
}  // namespace

EventRing* FlightRecorder::RingForThisThread() {
  if (tls_handle.owner != this) {
    std::lock_guard<std::mutex> lock(mu_);
    tls_handle.owner = this;
    tls_handle.tid = static_cast<uint32_t>(rings_.size());
    rings_.push_back(std::make_shared<EventRing>(ring_capacity_));
    tls_handle.ring = rings_.back().get();
  }
  return tls_handle.ring;
}

void FlightRecorder::Emit(TraceEvent e) {
  EmitAt(NowNs(), e);
}

void FlightRecorder::EmitAt(uint64_t ts_ns, TraceEvent e) {
  EventRing* ring = RingForThisThread();
  e.ts_ns = ts_ns;
  e.tid = tls_handle.tid;
  ring->TryPush(e);
}

std::vector<TraceEvent> FlightRecorder::Drain() {
  std::vector<std::shared_ptr<EventRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    ring->DrainInto(out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.tid < b.tid;
                   });
  return out;
}

int64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

void FlightRecorder::Reset() {
  std::vector<std::shared_ptr<EventRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> discard;
  for (const auto& ring : rings) {
    discard.clear();
    ring->DrainInto(discard);
    ring->reset_dropped();
  }
}

void FlightRecorder::set_ring_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = std::bit_ceil(std::max<size_t>(capacity, 1024));
}

size_t FlightRecorder::ring_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_capacity_;
}

size_t FlightRecorder::num_rings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rings_.size();
}

}  // namespace scguard::obs
