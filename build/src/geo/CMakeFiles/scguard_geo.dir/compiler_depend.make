# Empty compiler generated dependencies file for scguard_geo.
# This may be replaced when dependencies are built.
