#include "obs/export.h"

#include <limits>
#include <sstream>

#include "common/str_format.h"
#include "obs/recorder.h"

namespace scguard::obs {

std::string SnapshotJson() {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const std::string metrics_json = snapshot.ToJson();
  std::ostringstream os;
  // Splice the registry object open to prepend `enabled` and append
  // `spans` — metrics_json is always "{...}".
  os << "{\"enabled\":" << (Enabled() ? "true" : "false") << ','
     << metrics_json.substr(1, metrics_json.size() - 2)
     << ",\"spans\":" << Tracer::Global().ToJson() << '}';
  return os.str();
}

std::string PrometheusText() {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << MetricsRegistry::Global().Snapshot().ToPrometheus();
  os << "# TYPE scguard_span_seconds_total counter\n";
  for (const auto& [path, stats] : Tracer::Global().Snapshot()) {
    os << "scguard_span_seconds_total{path=\"" << path << "\"} "
       << stats.total_seconds << '\n';
    os << "scguard_span_count{path=\"" << path << "\"} " << stats.count
       << '\n';
  }
  return os.str();
}

void ResetGlobal() {
  MetricsRegistry::Global().ResetAll();
  Tracer::Global().Reset();
  FlightRecorder::Global().Reset();
}

}  // namespace scguard::obs
