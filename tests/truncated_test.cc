#include <gtest/gtest.h>

#include "privacy/truncated.h"
#include "stats/rng.h"
#include "stats/welford.h"

namespace scguard::privacy {
namespace {

constexpr PrivacyParams kDefault{0.7, 800.0};

geo::BoundingBox Region() {
  return geo::BoundingBox::FromCorners({0, 0}, {10000, 10000});
}

TEST(TruncatedGeoIndTest, ClampKeepsReportsInRegion) {
  const TruncatedGeoInd mech(kDefault, Region(), TruncationMode::kClamp);
  stats::Rng rng(1);
  const geo::Point corner{100, 100};  // Near the border: much noise exits.
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(Region().Contains(mech.Perturb(corner, rng)));
  }
}

TEST(TruncatedGeoIndTest, ResampleKeepsReportsInRegion) {
  const TruncatedGeoInd mech(kDefault, Region(), TruncationMode::kRejectionResample);
  stats::Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(Region().Contains(mech.Perturb({5000, 5000}, rng)));
  }
}

TEST(TruncatedGeoIndTest, NoneCanLeaveRegion) {
  const TruncatedGeoInd mech(kDefault, Region(), TruncationMode::kNone);
  stats::Rng rng(3);
  int outside = 0;
  for (int i = 0; i < 5000; ++i) {
    outside += Region().Contains(mech.Perturb({100, 100}, rng)) ? 0 : 1;
  }
  EXPECT_GT(outside, 500);  // Corner point: a lot of noise mass exits.
}

TEST(TruncatedGeoIndTest, DeepInteriorModesAgree) {
  // Far from the border, truncation almost never triggers: all three
  // modes should have nearly identical error statistics.
  const geo::BoundingBox big = geo::BoundingBox::FromCorners({0, 0},
                                                             {100000, 100000});
  const geo::Point center{50000, 50000};
  stats::OnlineMeanVar none_err, clamp_err, resample_err;
  stats::Rng rng(4);
  const int n = 20000;
  for (auto [mode, acc] :
       {std::pair{TruncationMode::kNone, &none_err},
        std::pair{TruncationMode::kClamp, &clamp_err},
        std::pair{TruncationMode::kRejectionResample, &resample_err}}) {
    const TruncatedGeoInd mech(kDefault, big, mode);
    for (int i = 0; i < n; ++i) {
      acc->Add(geo::Distance(mech.Perturb(center, rng), center));
    }
  }
  EXPECT_NEAR(clamp_err.mean() / none_err.mean(), 1.0, 0.03);
  EXPECT_NEAR(resample_err.mean() / none_err.mean(), 1.0, 0.03);
}

TEST(TruncatedGeoIndTest, ClampShrinksErrorNearBorder) {
  // Clamping pulls escaped mass back to the boundary: mean report error
  // at a corner is smaller than untruncated.
  const TruncatedGeoInd none(kDefault, Region(), TruncationMode::kNone);
  const TruncatedGeoInd clamp(kDefault, Region(), TruncationMode::kClamp);
  stats::Rng rng_a(5), rng_b(5);
  const geo::Point corner{200, 200};
  stats::OnlineMeanVar none_err, clamp_err;
  for (int i = 0; i < 20000; ++i) {
    none_err.Add(geo::Distance(none.Perturb(corner, rng_a), corner));
    clamp_err.Add(geo::Distance(clamp.Perturb(corner, rng_b), corner));
  }
  EXPECT_LT(clamp_err.mean(), none_err.mean());
}

TEST(WelfordTest, MatchesDirectComputation) {
  stats::OnlineMeanVar acc;
  const std::vector<double> values = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0;
  for (double v : values) {
    acc.Add(v);
    sum += v;
  }
  const double mean = sum / 5.0;
  double var = 0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= 4.0;
  EXPECT_DOUBLE_EQ(acc.mean(), mean);
  EXPECT_DOUBLE_EQ(acc.variance(), var);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 16.0);
  EXPECT_EQ(acc.count(), 5);
}

TEST(WelfordTest, MergeEqualsConcatenation) {
  stats::Rng rng(6);
  stats::OnlineMeanVar all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian(3.0, 2.0);
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(WelfordTest, EmptyAndSingle) {
  stats::OnlineMeanVar acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.Add(5.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  stats::OnlineMeanVar other;
  other.Merge(acc);  // Merge into empty.
  EXPECT_DOUBLE_EQ(other.mean(), 5.0);
}

}  // namespace
}  // namespace scguard::privacy
