#include "data/tdrive_synth.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/str_format.h"

namespace scguard::data {

TDriveSynthesizer::TDriveSynthesizer(const TDriveSynthConfig& config,
                                     HotspotMixture demand)
    : config_(config), demand_(std::move(demand)) {}

Result<TDriveSynthesizer> TDriveSynthesizer::Create(
    const TDriveSynthConfig& config, const geo::BoundingBox& region,
    stats::Rng& rng) {
  if (config.num_taxis <= 0) {
    return Status::InvalidArgument("num_taxis must be positive");
  }
  if (config.mean_trips_per_taxi <= 0.0 || config.day_length_s <= 0.0 ||
      config.mean_trip_speed_mps <= 0.0 || config.num_hotspots <= 0) {
    return Status::InvalidArgument("synth config rates must be positive");
  }
  if (region.empty()) {
    return Status::InvalidArgument("region must be non-empty");
  }
  return TDriveSynthesizer(
      config, HotspotMixture::MakeBeijingLike(region, config.num_hotspots, rng));
}

std::vector<Trip> TDriveSynthesizer::GenerateTrips(stats::Rng& rng) const {
  std::vector<Trip> trips;
  trips.reserve(static_cast<size_t>(config_.num_taxis) *
                static_cast<size_t>(config_.mean_trips_per_taxi));
  for (int taxi = 0; taxi < config_.num_taxis; ++taxi) {
    // Shifts start spread over the first quarter of the day.
    double clock = rng.UniformDouble(0.0, config_.day_length_s * 0.25);
    // Poisson-ish trip count: geometric spread around the mean.
    const double count_scale = rng.UniformDouble(0.5, 1.5);
    const int trip_count = std::max(
        1, static_cast<int>(std::lround(config_.mean_trips_per_taxi * count_scale)));
    geo::Point position = demand_.Sample(rng);
    for (int k = 0; k < trip_count; ++k) {
      Trip trip;
      trip.taxi_id = taxi;
      // Cruise to the next passenger: the pick-up comes from the demand
      // surface; the approach leg consumes time too.
      trip.pickup = demand_.Sample(rng);
      const double approach_s =
          geo::Distance(position, trip.pickup) / config_.mean_trip_speed_mps;
      clock += approach_s + rng.UniformDouble(config_.min_idle_gap_s,
                                              config_.max_idle_gap_s);
      trip.pickup_time_s = clock;
      trip.dropoff = demand_.Sample(rng);
      const double ride_s =
          geo::Distance(trip.pickup, trip.dropoff) / config_.mean_trip_speed_mps;
      clock += ride_s;
      trip.dropoff_time_s = clock;
      position = trip.dropoff;
      if (clock > config_.day_length_s) break;  // Shift over.
      trips.push_back(trip);
    }
  }
  std::sort(trips.begin(), trips.end(), [](const Trip& a, const Trip& b) {
    return a.pickup_time_s < b.pickup_time_s;
  });
  return trips;
}

}  // namespace scguard::data
