#ifndef SCGUARD_INDEX_RTREE_H_
#define SCGUARD_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geo/bbox.h"

namespace scguard::index {

/// An in-memory R-tree over (rectangle, id) entries with quadratic-split
/// insertion (Guttman) and STR bulk loading.
///
/// SCGuard's server indexes the workers' uncertainty rectangles with this
/// structure so that the U2U stage prunes far-away workers without a full
/// linear scan (paper Sec. IV-C1, following the uncertain-database range
/// search of Tao et al. / Bernecker et al.).
class RTree {
 public:
  struct Entry {
    geo::BoundingBox box;
    int64_t id = 0;
  };

  /// `max_entries` is the node fan-out M (>= 4); min fill is M * 0.4.
  explicit RTree(int max_entries = 16);

  RTree(RTree&&) noexcept = default;
  RTree& operator=(RTree&&) noexcept = default;

  /// Inserts one entry (quadratic split on overflow).
  void Insert(const geo::BoundingBox& box, int64_t id);

  /// Replaces the tree contents with a Sort-Tile-Recursive bulk load of
  /// `entries`; O(n log n) and yields better-packed nodes than repeated
  /// Insert.
  void BulkLoad(std::vector<Entry> entries);

  /// Invokes `fn` for every entry whose rectangle intersects `query`.
  void Query(const geo::BoundingBox& query,
             const std::function<void(const Entry&)>& fn) const;

  /// All entry ids intersecting `query` (unordered).
  std::vector<int64_t> QueryIds(const geo::BoundingBox& query) const;

  /// As above into a caller-owned scratch vector (cleared first), so tight
  /// query loops avoid the per-call allocation.
  void QueryIds(const geo::BoundingBox& query, std::vector<int64_t>& out) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (0 when empty, 1 for a single leaf).
  int Height() const;

  /// Verifies structural invariants (bounding boxes cover children, fill
  /// factors respected, all leaves at the same depth); test support.
  bool CheckInvariants() const;

 private:
  struct Node;
  using NodePtr = std::unique_ptr<Node>;

  struct Node {
    bool leaf = true;
    geo::BoundingBox box;
    std::vector<Entry> entries;   // Valid when leaf.
    std::vector<NodePtr> children;  // Valid when !leaf.
  };

  Node* ChooseLeaf(Node* node, const geo::BoundingBox& box,
                   std::vector<Node*>& path);
  NodePtr SplitLeaf(Node* node);
  NodePtr SplitInternal(Node* node);
  void RecomputeBox(Node* node) const;
  /// Static-dispatch recursion shared by Query and QueryIds: the hot
  /// QueryIds path (the U2U pruner's per-task call) visits entries through
  /// an inlined lambda instead of a std::function per hit.
  template <typename Visitor>
  static void VisitNode(const Node* node, const geo::BoundingBox& query,
                        const Visitor& visit) {
    if (node->leaf) {
      for (const auto& e : node->entries) {
        if (e.box.Intersects(query)) visit(e);
      }
      return;
    }
    for (const auto& child : node->children) {
      if (child->box.Intersects(query)) VisitNode(child.get(), query, visit);
    }
  }
  bool CheckNode(const Node* node, int depth, int leaf_depth) const;
  int LeafDepth(const Node* node) const;

  int max_entries_;
  int min_entries_;
  NodePtr root_;
  size_t size_ = 0;
};

}  // namespace scguard::index

#endif  // SCGUARD_INDEX_RTREE_H_
