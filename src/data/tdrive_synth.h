#ifndef SCGUARD_DATA_TDRIVE_SYNTH_H_
#define SCGUARD_DATA_TDRIVE_SYNTH_H_

#include <vector>

#include "common/result.h"
#include "data/trip_model.h"
#include "geo/bbox.h"
#include "stats/rng.h"

namespace scguard::data {

/// Configuration of the synthetic T-Drive day.
struct TDriveSynthConfig {
  int num_taxis = 9019;        ///< Paper: 9,019 taxis on Jan 11, 2012.
  double mean_trips_per_taxi = 12.0;
  int num_hotspots = 24;
  double day_length_s = 86400.0;
  double mean_trip_speed_mps = 8.0;   ///< ~29 km/h urban average.
  double min_idle_gap_s = 120.0;      ///< Idle time between trips.
  double max_idle_gap_s = 1800.0;
};

/// Synthesizes a day of taxi trips over a region, standing in for the
/// (non-redistributable) T-Drive dataset the paper evaluates on.
///
/// Every taxi executes a chain of trips: pick-up locations are drawn from a
/// hotspot demand mixture, drop-offs likewise, travel time follows the
/// pick-up/drop-off distance at an urban speed, and idle gaps separate
/// trips. The output preserves what the paper actually consumes: clustered
/// pick-up points with a time order (tasks) and drop-off points (workers).
class TDriveSynthesizer {
 public:
  /// Requires a valid config (positive counts and rates).
  static Result<TDriveSynthesizer> Create(const TDriveSynthConfig& config,
                                          const geo::BoundingBox& region,
                                          stats::Rng& rng);

  /// All trips of the synthetic day, sorted by pickup_time_s.
  std::vector<Trip> GenerateTrips(stats::Rng& rng) const;

  const HotspotMixture& demand() const { return demand_; }
  const TDriveSynthConfig& config() const { return config_; }

 private:
  TDriveSynthesizer(const TDriveSynthConfig& config, HotspotMixture demand);

  TDriveSynthConfig config_;
  HotspotMixture demand_;
};

}  // namespace scguard::data

#endif  // SCGUARD_DATA_TDRIVE_SYNTH_H_
