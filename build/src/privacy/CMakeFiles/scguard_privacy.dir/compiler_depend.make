# Empty compiler generated dependencies file for scguard_privacy.
# This may be replaced when dependencies are built.
