#ifndef SCGUARD_ASSIGN_METRICS_H_
#define SCGUARD_ASSIGN_METRICS_H_

#include <cstdint>
#include <ostream>

namespace scguard::assign {

/// End-to-end and per-stage performance metrics of one assignment run
/// (paper Sec. III-C).
struct RunMetrics {
  int64_t num_tasks = 0;
  int64_t num_workers = 0;

  /// (1) Utility: tasks that ended with a valid assignment (all K required
  /// workers accepted; K = 1 unless redundant assignment is enabled).
  int64_t assigned_tasks = 0;
  /// Total accepted worker-task pairs (equals assigned_tasks when K = 1).
  int64_t accepted_assignments = 0;

  /// (2) Travel cost: sum of *true* worker-task distances over accepted
  /// pairs, meters.
  double travel_sum_m = 0.0;

  /// (3) System overhead: total size of the candidate sets the server
  /// forwarded to requesters.
  int64_t candidates_sum = 0;

  /// (4) U2U accuracy: per-task precision/recall of the candidate set
  /// against the actually-reachable available workers, summed over the
  /// tasks where the respective denominator was non-zero.
  double precision_sum = 0.0;
  int64_t precision_count = 0;
  double recall_sum = 0.0;
  int64_t recall_count = 0;

  /// (5a) Privacy leak: times a task location was revealed to a candidate
  /// worker who then rejected the task (false hits).
  int64_t false_hits = 0;
  /// (5b) Reachable candidates never contacted for a task that ended
  /// unassigned (false dismissals; non-zero only with a beta threshold,
  /// since exhaustive ranking contacts every candidate).
  int64_t false_dismissals = 0;

  /// Protocol message accounting.
  int64_t server_to_requester_msgs = 0;  ///< Candidate sets sent.
  int64_t requester_to_worker_msgs = 0;  ///< Task-location disclosures.

  /// Wall-clock spent in the server-side U2U candidate scan.
  double u2u_seconds = 0.0;
  /// Wall-clock spent in the requester-side U2E ranking (paper Fig. 10e).
  double u2e_seconds = 0.0;
  /// Wall-clock of the whole run.
  double total_seconds = 0.0;

  /// Workers actually scored by the U2U filter, summed over tasks. With
  /// active-set compaction this shrinks as workers get matched; the
  /// first/last-task pair exposes the decay (scale bench, DESIGN.md §9).
  /// First/last are per-run snapshots, not accumulated across seeds.
  int64_t u2u_scanned = 0;
  int64_t u2u_scanned_first_task = 0;
  int64_t u2u_scanned_last_task = 0;

  /// Cell-certification work of a grid-backed pruning index, summed over
  /// the run's queries (DESIGN.md §11): cells whose whole id array was
  /// bulk-appended, non-empty cells skipped without touching entries, and
  /// workers that fell through to the per-member rectangle test. All zero
  /// without pruning or for non-grid backends; together they explain *why*
  /// pruning won or lost, not just that it did.
  int64_t cells_bulk_accepted = 0;
  int64_t cells_skipped = 0;
  int64_t boundary_workers = 0;

  /// Modeled scoring-side memory traffic of the U2U scan, bytes summed over
  /// the run (DESIGN.md §13 / EXPERIMENTS.md): scattered cache lines for
  /// gathered workers, packed streams for brute and mirror scans, id runs
  /// only for certificate-direct cells. A traffic model — comparable across
  /// configurations, not a hardware counter.
  int64_t u2u_gather_bytes = 0;
  /// Cells the mirror path resolved purely by a whole-cell alpha
  /// certificate, with zero per-worker loads (zero off the mirror path).
  int64_t cells_emitted_direct = 0;

  double MeanTravelM() const {
    return accepted_assignments > 0
               ? travel_sum_m / static_cast<double>(accepted_assignments)
               : 0.0;
  }
  double MeanCandidates() const {
    return num_tasks > 0
               ? static_cast<double>(candidates_sum) / static_cast<double>(num_tasks)
               : 0.0;
  }
  double MeanPrecision() const {
    return precision_count > 0 ? precision_sum / static_cast<double>(precision_count)
                               : 0.0;
  }
  double MeanRecall() const {
    return recall_count > 0 ? recall_sum / static_cast<double>(recall_count) : 0.0;
  }
  /// Mean task-location disclosures needed per assigned task
  /// (the "sends task to ~4.75 workers on average" figure of Sec. V-B2c).
  double DisclosuresPerAssignedTask() const {
    return assigned_tasks > 0 ? static_cast<double>(requester_to_worker_msgs) /
                                    static_cast<double>(assigned_tasks)
                              : 0.0;
  }

  /// Element-wise accumulation (used by the multi-seed aggregator).
  void Accumulate(const RunMetrics& other);
};

std::ostream& operator<<(std::ostream& os, const RunMetrics& m);

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_METRICS_H_
