file(REMOVE_RECURSE
  "CMakeFiles/privacy_tuning.dir/privacy_tuning.cpp.o"
  "CMakeFiles/privacy_tuning.dir/privacy_tuning.cpp.o.d"
  "privacy_tuning"
  "privacy_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
