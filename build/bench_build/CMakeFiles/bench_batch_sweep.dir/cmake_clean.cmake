file(REMOVE_RECURSE
  "../bench/bench_batch_sweep"
  "../bench/bench_batch_sweep.pdb"
  "CMakeFiles/bench_batch_sweep.dir/bench_batch_sweep.cc.o"
  "CMakeFiles/bench_batch_sweep.dir/bench_batch_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
