#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/bessel.h"
#include "stats/gamma.h"
#include "stats/histogram.h"
#include "stats/lambert_w.h"
#include "stats/marcum_q.h"
#include "stats/normal.h"
#include "stats/quadrature.h"
#include "stats/rice.h"
#include "stats/rng.h"

namespace scguard::stats {
namespace {

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMomentsMatch) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.UniformDouble();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngTest, ForkedStreamsAreDecorrelated) {
  Rng root(99);
  Rng a = root.Fork(1);
  Rng b = root.Fork(2);
  double corr = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    corr += (a.UniformDouble() - 0.5) * (b.UniformDouble() - 0.5);
  }
  EXPECT_NEAR(corr / n, 0.0, 0.005);  // Covariance of independent U(0,1).
}

TEST(RngTest, UniformDoublePositiveNeverZero) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.UniformDoublePositive(), 0.0);
}

// ------------------------------------------------------------ Lambert W

TEST(LambertWTest, W0SatisfiesDefiningEquation) {
  for (double x : {-0.36, -0.2, -0.05, 0.0, 0.1, 1.0, 5.0, 100.0, 1e6}) {
    const double w = *LambertW0(x);
    EXPECT_NEAR(w * std::exp(w), x, 1e-9 * (1.0 + std::abs(x))) << "x=" << x;
    EXPECT_GE(w, -1.0 - 1e-12);
  }
}

TEST(LambertWTest, Wm1SatisfiesDefiningEquation) {
  for (double x : {-0.3678, -0.36, -0.3, -0.2, -0.1, -0.01, -1e-4, -1e-8}) {
    const double w = *LambertWm1(x);
    EXPECT_NEAR(w * std::exp(w), x, 1e-9) << "x=" << x;
    EXPECT_LE(w, -1.0 + 1e-9);
  }
}

TEST(LambertWTest, KnownValues) {
  EXPECT_NEAR(*LambertW0(M_E), 1.0, 1e-12);       // W0(e) = 1.
  EXPECT_NEAR(*LambertW0(0.0), 0.0, 1e-12);
  EXPECT_NEAR(*LambertWm1(-1.0 / M_E), -1.0, 1e-5);  // Branch point.
}

TEST(LambertWTest, DomainErrors) {
  EXPECT_FALSE(LambertW0(-0.4).ok());
  EXPECT_FALSE(LambertWm1(-0.4).ok());
  EXPECT_FALSE(LambertWm1(0.0).ok());
  EXPECT_FALSE(LambertWm1(0.5).ok());
}

// --------------------------------------------------------------- Bessel

TEST(BesselTest, KnownValues) {
  EXPECT_DOUBLE_EQ(BesselI0(0.0), 1.0);
  EXPECT_NEAR(BesselI0(1.0), 1.2660658777520084, 1e-9);
  EXPECT_NEAR(BesselI0(5.0), 27.239871823604442, 1e-5 * 27.24);
  EXPECT_DOUBLE_EQ(BesselI1(0.0), 0.0);
  EXPECT_NEAR(BesselI1(1.0), 0.5651591039924851, 1e-9);
  EXPECT_NEAR(BesselI1(5.0), 24.335642142450524, 1e-5 * 24.3);
}

TEST(BesselTest, ScaledConsistentWithUnscaled) {
  for (double x : {0.1, 1.0, 3.0, 10.0, 50.0}) {
    EXPECT_NEAR(BesselI0Scaled(x), std::exp(-x) * BesselI0(x), 1e-10)
        << "x=" << x;
    EXPECT_NEAR(BesselI1Scaled(x), std::exp(-x) * BesselI1(x),
                1e-10 * BesselI1Scaled(x) + 1e-12)
        << "x=" << x;
  }
}

TEST(BesselTest, ScaledStableForHugeArguments) {
  // Unscaled overflows near 713; scaled must stay finite and ~1/sqrt(2 pi x).
  const double x = 1e6;
  const double v = BesselI0Scaled(x);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_NEAR(v, 1.0 / std::sqrt(2.0 * M_PI * x), 1e-9);
}

TEST(BesselTest, I1IsOdd) {
  EXPECT_DOUBLE_EQ(BesselI1(-2.0), -BesselI1(2.0));
  EXPECT_DOUBLE_EQ(BesselI0(-2.0), BesselI0(2.0));  // I0 is even.
}

// ---------------------------------------------------------------- Gamma

TEST(GammaTest, ShapeOneIsExponential) {
  for (double x : {0.0, 0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(GammaTest, HalfShapeIsErf) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.01, 0.25, 1.0, 4.0}) {
    EXPECT_NEAR(RegularizedGammaP(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
}

TEST(GammaTest, PPlusQIsOne) {
  for (double s : {0.5, 1.0, 2.5, 10.0, 100.0}) {
    for (double x : {0.1, 1.0, 5.0, 50.0, 200.0}) {
      EXPECT_NEAR(RegularizedGammaP(s, x) + RegularizedGammaQ(s, x), 1.0, 1e-12)
          << "s=" << s << " x=" << x;
    }
  }
}

TEST(GammaTest, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x < 20.0; x += 0.5) {
    const double p = RegularizedGammaP(3.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_NEAR(prev, 1.0, 1e-4);
}

// --------------------------------------------------------------- Normal

TEST(NormalTest, CdfKnownValues) {
  EXPECT_DOUBLE_EQ(StandardNormalCdf(0.0), 0.5);
  EXPECT_NEAR(StandardNormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(-1.96), 0.024997895148220435, 1e-12);
}

TEST(NormalTest, CdfSymmetry) {
  for (double z : {0.3, 1.0, 2.5, 4.0}) {
    EXPECT_NEAR(StandardNormalCdf(z) + StandardNormalCdf(-z), 1.0, 1e-14);
  }
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(StandardNormalCdf(StandardNormalQuantile(p)), p, 1e-9) << p;
  }
}

TEST(NormalTest, PdfIntegratesToOne) {
  const double integral = AdaptiveSimpson(
      [](double z) { return StandardNormalPdf(z); }, -10.0, 10.0, 1e-12);
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(NormalTest, ShiftedScaled) {
  EXPECT_DOUBLE_EQ(NormalCdf(3.0, 3.0, 2.0), 0.5);
  EXPECT_NEAR(NormalCdf(5.0, 3.0, 2.0), StandardNormalCdf(1.0), 1e-15);
  EXPECT_NEAR(NormalPdf(3.0, 3.0, 2.0), StandardNormalPdf(0.0) / 2.0, 1e-15);
}

// ------------------------------------------------------------- Marcum Q

TEST(MarcumQTest, ZeroNoncentralityIsChiSquared) {
  // chi2_2 CDF = 1 - e^{-x/2}.
  for (double x : {0.5, 1.0, 4.0, 10.0}) {
    EXPECT_NEAR(NoncentralChiSquaredCdf(2.0, 0.0, x), 1.0 - std::exp(-x / 2.0),
                1e-12);
  }
}

TEST(MarcumQTest, RayleighSpecialCase) {
  for (double b : {0.1, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(MarcumQ1(0.0, b), std::exp(-b * b / 2.0), 1e-12);
  }
}

TEST(MarcumQTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(MarcumQ1(2.0, 0.0), 1.0);
  EXPECT_NEAR(MarcumQ1(0.0, 0.0), 1.0, 1e-15);
  // Far tail: b >> a.
  EXPECT_NEAR(MarcumQ1(1.0, 50.0), 0.0, 1e-12);
  // b << a: essentially certain to exceed.
  EXPECT_NEAR(MarcumQ1(50.0, 1.0), 1.0, 1e-12);
}

TEST(MarcumQTest, MonotoneDecreasingInB) {
  double prev = 1.0 + 1e-12;
  for (double b = 0.0; b < 12.0; b += 0.25) {
    const double q = MarcumQ1(3.0, b);
    EXPECT_LE(q, prev);
    prev = q;
  }
}

TEST(MarcumQTest, MatchesNumericalIntegrationOfRicePdf) {
  // Q1(a, b) = 1 - integral_0^b ricepdf(x; a, 1) dx.
  for (double a : {0.5, 2.0, 8.0, 30.0}) {
    for (double b : {0.5 * a, a, 1.5 * a}) {
      const RiceDistribution rice(a, 1.0);
      const double cdf_numeric = AdaptiveSimpson(
          [&rice](double x) { return rice.Pdf(x); }, 0.0, b, 1e-12);
      // Tolerance bounded by the ~2e-7 relative error of the A&S Bessel
      // polynomial inside the numerically integrated pdf.
      EXPECT_NEAR(MarcumQ1(a, b), 1.0 - cdf_numeric, 2e-6)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(MarcumQTest, LargeNoncentralityStaysStable) {
  // a^2/2 ~ 1e4 Poisson terms; must neither underflow to 0 nor overflow.
  const double q = MarcumQ1(140.0, 140.0);
  EXPECT_GT(q, 0.3);
  EXPECT_LT(q, 0.7);  // Median of Rice(140, 1) is ~140.
}

// ----------------------------------------------------------------- Rice

TEST(RiceTest, PdfIntegratesToOne) {
  for (double nu : {0.0, 1.0, 5.0, 20.0}) {
    const RiceDistribution rice(nu, 2.0);
    const double integral = AdaptiveSimpson(
        [&rice](double x) { return rice.Pdf(x); }, 0.0, nu + 40.0, 1e-11);
    EXPECT_NEAR(integral, 1.0, 1e-6) << "nu=" << nu;  // Bessel-poly bound.
  }
}

TEST(RiceTest, ZeroNuIsRayleigh) {
  const double sigma = 3.0;
  const RiceDistribution rice(0.0, sigma);
  EXPECT_NEAR(rice.Mean(), sigma * std::sqrt(M_PI / 2.0), 1e-9);
  // Rayleigh CDF: 1 - exp(-x^2 / (2 sigma^2)).
  for (double x : {1.0, 3.0, 6.0}) {
    EXPECT_NEAR(rice.Cdf(x), 1.0 - std::exp(-x * x / (2 * sigma * sigma)), 1e-10);
  }
}

TEST(RiceTest, MomentsMatchNumericalIntegration) {
  const RiceDistribution rice(4.0, 1.5);
  const double mean = AdaptiveSimpson(
      [&rice](double x) { return x * rice.Pdf(x); }, 0.0, 40.0, 1e-11);
  const double second = AdaptiveSimpson(
      [&rice](double x) { return x * x * rice.Pdf(x); }, 0.0, 40.0, 1e-11);
  EXPECT_NEAR(rice.Mean(), mean, 1e-7);
  EXPECT_NEAR(rice.Variance(), second - mean * mean, 1e-6);
}

TEST(RiceTest, CdfMonotoneAndBounded) {
  const RiceDistribution rice(10.0, 2.0);
  double prev = 0.0;
  for (double x = 0.0; x <= 25.0; x += 0.5) {
    const double c = rice.Cdf(x);
    EXPECT_GE(c, prev - 1e-14);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
}

TEST(RiceTest, LargeNuApproachesNormal) {
  // For nu >> sigma, Rice(nu, sigma) ~ N(nu, sigma^2).
  const RiceDistribution rice(1000.0, 3.0);
  EXPECT_NEAR(rice.Mean(), 1000.0, 0.01);
  EXPECT_NEAR(rice.Cdf(1000.0), 0.5, 2e-3);
  EXPECT_NEAR(rice.Cdf(1003.0), StandardNormalCdf(1.0), 5e-3);
}

// ------------------------------------------------------------ Histogram

TEST(HistogramTest, BasicCounts) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  h.Add(-1.0);   // Underflow.
  h.Add(10.0);   // At hi -> overflow.
  h.Add(25.0);   // Overflow.
  EXPECT_EQ(h.total_count(), 6u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.underflow_count(), 1u);
  EXPECT_EQ(h.overflow_count(), 2u);
}

TEST(HistogramTest, FractionBelowInterpolates) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(5.5);  // All in bin [5, 6).
  EXPECT_DOUBLE_EQ(h.FractionBelow(5.0), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(6.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(5.5), 0.5);  // Linear within the bin.
  EXPECT_DOUBLE_EQ(h.FractionBelow(20.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(-3.0), 0.0);
}

TEST(HistogramTest, FractionBelowExcludesOverflowAboveHi) {
  Histogram h(0.0, 10.0, 10);
  h.Add(5.0);
  h.Add(100.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(10.0), 0.5);
}

TEST(HistogramTest, QuantileInvertsFraction) {
  Histogram h(0.0, 100.0, 100);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) h.Add(rng.UniformDouble(0.0, 100.0));
  for (double p : {0.1, 0.5, 0.9}) {
    const double q = h.Quantile(p);
    EXPECT_NEAR(h.FractionBelow(q), p, 0.02);
  }
}

TEST(HistogramTest, MeanApproximatesSampleMean) {
  Histogram h(0.0, 100.0, 200);
  Rng rng(6);
  double true_sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.UniformDouble(10.0, 60.0);
    true_sum += v;
    h.Add(v);
  }
  EXPECT_NEAR(h.Mean(), true_sum / n, 0.5);
}

TEST(HistogramTest, QueryCacheInvalidatesOnMutation) {
  // FractionBelow uses a lazy prefix-sum cache; interleaved adds and
  // queries must stay consistent.
  Histogram h(0.0, 10.0, 10);
  h.Add(2.5);
  EXPECT_DOUBLE_EQ(h.FractionBelow(5.0), 1.0);
  h.Add(7.5);  // Mutation after a query.
  EXPECT_DOUBLE_EQ(h.FractionBelow(5.0), 0.5);
  Histogram other(0.0, 10.0, 10);
  other.Add(1.5);
  ASSERT_TRUE(h.Merge(other).ok());  // Merge after a query.
  EXPECT_NEAR(h.FractionBelow(5.0), 2.0 / 3.0, 1e-12);
}

TEST(HistogramTest, MergeRequiresSameGeometry) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  Histogram c(0.0, 20.0, 10);
  a.Add(1.0);
  b.Add(2.0);
  EXPECT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.total_count(), 2u);
  EXPECT_TRUE(a.Merge(c).IsInvalidArgument());
}

TEST(HistogramTest, SerializeRoundTrip) {
  Histogram h(0.0, 50.0, 25);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) h.Add(rng.UniformDouble(-5.0, 60.0));
  std::stringstream ss;
  h.Serialize(ss);
  const auto back = Histogram::Deserialize(ss);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->total_count(), h.total_count());
  EXPECT_EQ(back->underflow_count(), h.underflow_count());
  EXPECT_EQ(back->overflow_count(), h.overflow_count());
  for (int b = 0; b < 25; ++b) EXPECT_EQ(back->bin_count(b), h.bin_count(b));
  EXPECT_DOUBLE_EQ(back->FractionBelow(30.0), h.FractionBelow(30.0));
}

TEST(HistogramTest, DeserializeRejectsGarbage) {
  std::stringstream ss("not a histogram");
  EXPECT_FALSE(Histogram::Deserialize(ss).ok());
  std::stringstream bad_geom("5 1 10 0 0 1 2 3 4 5 6 7 8 9 10");  // lo > hi.
  EXPECT_FALSE(Histogram::Deserialize(bad_geom).ok());
}

// ----------------------------------------------------------- Quadrature

TEST(QuadratureTest, IntegratesSine) {
  const double v =
      AdaptiveSimpson([](double x) { return std::sin(x); }, 0.0, M_PI, 1e-12);
  EXPECT_NEAR(v, 2.0, 1e-10);
}

TEST(QuadratureTest, IntegratesPolynomialExactly) {
  const double v =
      AdaptiveSimpson([](double x) { return 3 * x * x; }, 0.0, 2.0, 1e-12);
  EXPECT_NEAR(v, 8.0, 1e-12);  // Simpson is exact for cubics.
}

TEST(QuadratureTest, EmptyIntervalIsZero) {
  EXPECT_DOUBLE_EQ(
      AdaptiveSimpson([](double x) { return x; }, 1.0, 1.0, 1e-12), 0.0);
}

TEST(QuadratureTest, SharplyPeakedIntegrand) {
  // Narrow Gaussian inside a wide interval still integrates accurately.
  const double v = AdaptiveSimpson(
      [](double x) { return NormalPdf(x, 500.0, 0.5); }, 0.0, 1000.0, 1e-12);
  EXPECT_NEAR(v, 1.0, 1e-6);
}

}  // namespace
}  // namespace scguard::stats
