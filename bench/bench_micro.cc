// Microbenchmarks (google-benchmark): the primitive costs behind the
// end-to-end numbers — noise sampling, reachability-probability evaluation
// per model, index queries, and whole-workload assignment throughput.

#include <benchmark/benchmark.h>

#include "assign/algorithms.h"
#include "assign/scguard_engine.h"
#include "bench/bench_common.h"
#include "data/beijing.h"
#include "data/workload.h"
#include "index/kdtree.h"
#include "index/pruning.h"
#include "privacy/planar_laplace.h"
#include "reachability/analytical_model.h"
#include "reachability/binary_model.h"
#include "reachability/empirical_model.h"
#include "reachability/kernel.h"
#include "reachability/model_cache.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "sim/experiment.h"
#include "stats/lambert_w.h"
#include "stats/marcum_q.h"
#include "stats/rice.h"
#include "stats/rng.h"

namespace scguard {
namespace {

const privacy::PrivacyParams kParams{0.7, 800.0};

void BM_LambertWm1(benchmark::State& state) {
  double x = -0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(*stats::LambertWm1(x));
    x = -0.05 - (x == -0.2 ? 0.0 : 0.15);  // Alternate inputs.
  }
}
BENCHMARK(BM_LambertWm1);

void BM_PlanarLaplaceSample(benchmark::State& state) {
  const privacy::PlanarLaplace pl(kParams.unit_epsilon());
  stats::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pl.Sample(rng));
  }
}
BENCHMARK(BM_PlanarLaplaceSample);

void BM_RiceCdf(benchmark::State& state) {
  const stats::RiceDistribution rice(static_cast<double>(state.range(0)),
                                     1616.0);
  double x = 500.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rice.Cdf(x));
    x = x < 4000.0 ? x + 250.0 : 500.0;
  }
}
BENCHMARK(BM_RiceCdf)->Arg(500)->Arg(2000)->Arg(8000);

void BM_ProbReachable(benchmark::State& state) {
  const auto mode = static_cast<reachability::AnalyticalMode>(state.range(0));
  const reachability::AnalyticalModel model(kParams, mode);
  double d = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.ProbReachable(reachability::Stage::kU2E, d, 1400.0));
    d = d < 6000.0 ? d + 100.0 : 0.0;
  }
  state.SetLabel(std::string(AnalyticalModeName(mode)));
}
BENCHMARK(BM_ProbReachable)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_EmpiricalLookup(benchmark::State& state) {
  reachability::EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 50000;
  stats::Rng rng(2);
  const auto model =
      reachability::EmpiricalModel::Build(config, kParams, rng);
  double d = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model->ProbReachable(reachability::Stage::kU2U, d, 1400.0));
    d = d < 6000.0 ? d + 100.0 : 0.0;
  }
}
BENCHMARK(BM_EmpiricalLookup);

std::vector<index::UncertainRegionPruner::WorkerRegion> MakeRegions(int n) {
  stats::Rng rng(3);
  const geo::BoundingBox region = data::BeijingRegion();
  std::vector<index::UncertainRegionPruner::WorkerRegion> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back({i,
                   {rng.UniformDouble(region.min_x, region.max_x),
                    rng.UniformDouble(region.min_y, region.max_y)},
                   rng.UniformDouble(1000.0, 3000.0)});
  }
  return out;
}

void BM_PrunerCandidates(benchmark::State& state) {
  const auto backend = static_cast<index::PrunerBackend>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const index::UncertainRegionPruner pruner(MakeRegions(n), kParams, kParams,
                                            0.9, backend, data::BeijingRegion());
  stats::Rng rng(4);
  const geo::BoundingBox region = data::BeijingRegion();
  for (auto _ : state) {
    const geo::Point task{rng.UniformDouble(region.min_x, region.max_x),
                          rng.UniformDouble(region.min_y, region.max_y)};
    benchmark::DoNotOptimize(pruner.Candidates(task));
  }
  state.SetLabel(std::string(index::PrunerBackendName(backend)));
}
BENCHMARK(BM_PrunerCandidates)
    ->Args({0, 5000})    // Linear scan.
    ->Args({1, 5000})    // Grid.
    ->Args({2, 5000})    // R-tree.
    ->Args({1, 100000})  // Grid at engine scale.
    ->Args({2, 100000});  // R-tree at engine scale.

// One worker re-report against a prepared, grid-pruned stage: the service's
// apply-phase hot path. Before GridIndex::Relocate this dropped the whole
// pruner + mirror and the follow-up Prepare() rebuilt both — O(workers) per
// report, which is the pathology this measures; the incremental path keeps
// Prepare a no-op and relocates in O(cell).
void BM_UpdateWorkerLocation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const reachability::AnalyticalModel model(kParams);
  assign::U2uCandidateStage::Config config;
  config.model = &model;
  config.alpha = 0.1;
  config.pruning = assign::U2uCandidateStage::Pruning{
      0.9, index::PrunerBackend::kGrid, kParams, kParams,
      data::BeijingRegion()};
  assign::U2uCandidateStage stage(std::move(config));
  const geo::BoundingBox region = data::BeijingRegion();
  stats::Rng rng(11);
  stage.ReserveWorkers(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    stage.AddWorker({rng.UniformDouble(region.min_x, region.max_x),
                     rng.UniformDouble(region.min_y, region.max_y)},
                    rng.UniformDouble(1000.0, 3000.0));
  }
  stage.Prepare();
  uint32_t w = 0;
  for (auto _ : state) {
    // ±25 m jitter: mostly same-cell moves, the courier-drift common case.
    const geo::Point p{stage.soa().x[w] + rng.UniformDouble(-25.0, 25.0),
                       stage.soa().y[w] + rng.UniformDouble(-25.0, 25.0)};
    stage.UpdateWorkerLocation(w, p);
    stage.Prepare();
    w = (w + 9973) % static_cast<uint32_t>(n);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateWorkerLocation)->Arg(100000)->Arg(1000000);

void BM_KdTreeNearest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  stats::Rng rng(7);
  const geo::BoundingBox region = data::BeijingRegion();
  std::vector<index::KdTree::Entry> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    entries.push_back({{rng.UniformDouble(region.min_x, region.max_x),
                        rng.UniformDouble(region.min_y, region.max_y)},
                       i});
  }
  const index::KdTree tree(std::move(entries));
  for (auto _ : state) {
    const geo::Point q{rng.UniformDouble(region.min_x, region.max_x),
                       rng.UniformDouble(region.min_y, region.max_y)};
    benchmark::DoNotOptimize(tree.Nearest(q));
  }
}
BENCHMARK(BM_KdTreeNearest)->Arg(500)->Arg(5000)->Arg(50000);

void BM_EndToEndAssignment(benchmark::State& state) {
  data::WorkloadConfig config;
  config.num_workers = static_cast<int>(state.range(0));
  config.num_tasks = static_cast<int>(state.range(0));
  stats::Rng rng(5);
  assign::Workload workload =
      data::MakeUniformWorkload(data::BeijingRegion(), config, rng);
  data::PerturbWorkload(kParams, kParams, rng, workload);
  assign::AlgorithmParams params;
  params.worker_params = kParams;
  params.task_params = kParams;
  assign::MatcherHandle handle = assign::MakeProbabilisticModel(params);
  for (auto _ : state) {
    stats::Rng run_rng(6);
    benchmark::DoNotOptimize(handle.Run(workload, run_rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EndToEndAssignment)->Arg(100)->Arg(500)->Arg(1000);

// ---- Runtime subsystem: seed fan-out, sharded builds, model cache ----

// The 10-seed paper config end to end, serial vs pooled. The aggregated
// metrics are bit-identical across the two arms (see runtime_test); only
// wall-clock changes. Arg = num_threads, 0 = all hardware threads.
void BM_ExperimentSeedFanout(benchmark::State& state) {
  sim::ExperimentConfig config = bench::PaperConfig();
  config.runtime.num_threads = static_cast<int>(state.range(0));
  const auto runner = sim::ExperimentRunner::Create(config);
  const privacy::PrivacyParams p{0.7, 800.0};
  for (auto _ : state) {
    assign::MatcherHandle handle =
        assign::MakeProbabilisticModel(bench::MakeParams(p));
    benchmark::DoNotOptimize(runner->Run(handle, p, p));
  }
  state.SetLabel(StrCat("threads=", config.runtime.ResolvedThreads()));
}
BENCHMARK(BM_ExperimentSeedFanout)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// One 200k-sample empirical build at a fixed 16-shard split. The shard
// count pins the Monte-Carlo streams, so every arm produces the same
// tables; the thread count only spreads the shards.
void BM_EmpiricalBuildSharded(benchmark::State& state) {
  reachability::EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 200000;
  config.num_shards = bench::kBenchBuildShards;
  runtime::RuntimeOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  const auto pool = runtime::MakePool(options);
  for (auto _ : state) {
    stats::Rng rng(2027);
    benchmark::DoNotOptimize(
        reachability::EmpiricalModel::Build(config, kParams, rng, pool.get()));
  }
  state.SetLabel(StrCat("threads=", options.ResolvedThreads()));
}
BENCHMARK(BM_EmpiricalBuildSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Cold build through the cache (every iteration pays the Monte-Carlo
// cost) vs a warm hit — the amortization every bench binary now gets via
// bench::BuildEmpirical. Expect >= 100x between the two.
void BM_ModelCacheColdBuild(benchmark::State& state) {
  reachability::EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 200000;
  config.num_shards = bench::kBenchBuildShards;
  for (auto _ : state) {
    reachability::ModelCache cache;
    benchmark::DoNotOptimize(cache.GetOrBuild(config, kParams, kParams,
                                              bench::kBenchBuildSeed,
                                              bench::BenchPool()));
  }
}
BENCHMARK(BM_ModelCacheColdBuild)->Unit(benchmark::kMillisecond);

void BM_ModelCacheHit(benchmark::State& state) {
  reachability::EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 200000;
  config.num_shards = bench::kBenchBuildShards;
  reachability::ModelCache cache;
  benchmark::DoNotOptimize(cache.GetOrBuild(
      config, kParams, kParams, bench::kBenchBuildSeed, bench::BenchPool()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.GetOrBuild(config, kParams, kParams, bench::kBenchBuildSeed));
  }
}
BENCHMARK(BM_ModelCacheHit);

// ---- Evaluation kernels (DESIGN.md section 8) -----------------------
// The U2U alpha filter as direct per-pair model evaluation vs the
// threshold-inverted squared-distance compare, over the same SoA snapshot.
// Both report items/s = worker decisions per second; the CI smoke job
// asserts the threshold arm is at least 5x the direct arm.

struct FilterFixture {
  reachability::WorkerFilterSoA soa;
  std::vector<geo::Point> tasks;
};

FilterFixture MakeFilterFixture(size_t n) {
  FilterFixture f;
  stats::Rng rng(8);
  const geo::BoundingBox region = data::BeijingRegion();
  // A handful of radius classes, like real fleets; the threshold cache
  // pays one inversion per class.
  const double radii[] = {800.0, 1400.0, 2000.0, 2800.0};
  f.soa.Resize(n);
  for (size_t i = 0; i < n; ++i) {
    f.soa.x[i] = rng.UniformDouble(region.min_x, region.max_x);
    f.soa.y[i] = rng.UniformDouble(region.min_y, region.max_y);
    f.soa.reach_radius_m[i] = radii[i % 4];
  }
  for (int t = 0; t < 64; ++t) {
    f.tasks.push_back({rng.UniformDouble(region.min_x, region.max_x),
                       rng.UniformDouble(region.min_y, region.max_y)});
  }
  return f;
}

void BM_MarcumQ1(benchmark::State& state) {
  const double a = static_cast<double>(state.range(0));
  double b = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::MarcumQ1(a, b));
    b = b < 8.0 ? b + 0.37 : 0.1;
  }
}
BENCHMARK(BM_MarcumQ1)->Arg(0)->Arg(1)->Arg(4);

void BM_U2UFilterDirect(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const FilterFixture f = MakeFilterFixture(n);
  const reachability::AnalyticalModel model(kParams);
  const double alpha = 0.1;
  size_t t = 0;
  for (auto _ : state) {
    const geo::Point task = f.tasks[t++ % f.tasks.size()];
    int64_t accepted = 0;
    for (size_t i = 0; i < n; ++i) {
      const double d_obs = geo::Distance({f.soa.x[i], f.soa.y[i]}, task);
      accepted += model.ProbReachable(reachability::Stage::kU2U, d_obs,
                                      f.soa.reach_radius_m[i]) >= alpha
                      ? 1
                      : 0;
    }
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_U2UFilterDirect)->Arg(5000);

void BM_U2UFilterThreshold(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  FilterFixture f = MakeFilterFixture(n);
  const reachability::AnalyticalModel model(kParams);
  reachability::AlphaThresholdCache cache(&model, reachability::Stage::kU2U,
                                          0.1);
  f.soa.accept_below_sq.resize(n);
  f.soa.reject_above_sq.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const reachability::AlphaThreshold& t = cache.For(f.soa.reach_radius_m[i]);
    f.soa.accept_below_sq[i] = t.accept_below_sq;
    f.soa.reject_above_sq[i] = t.reject_above_sq;
  }
  size_t t = 0;
  for (auto _ : state) {
    const geo::Point task = f.tasks[t++ % f.tasks.size()];
    int64_t accepted = 0;
    for (size_t i = 0; i < n; ++i) {
      const double dx = f.soa.x[i] - task.x;
      const double dy = f.soa.y[i] - task.y;
      const double d_sq = dx * dx + dy * dy;
      bool is_candidate;
      if (d_sq <= f.soa.accept_below_sq[i]) {
        is_candidate = true;
      } else if (d_sq >= f.soa.reject_above_sq[i]) {
        is_candidate = false;
      } else {
        is_candidate = cache.IsCandidate(
            geo::Distance({f.soa.x[i], f.soa.y[i]}, task),
            f.soa.reach_radius_m[i]);
      }
      accepted += is_candidate ? 1 : 0;
    }
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_U2UFilterThreshold)->Arg(5000);

// ---- Cell-major mirror kernels (DESIGN.md section 13) ----------------
// The same certain-band trichotomy over the same workers, as the pruned
// path's scattered gather (indices into a large SoA, one cache line per
// worker) vs the mirror path's contiguous range (cell-major rows, packed
// column loads). Items/s = worker decisions; the gap is pure memory
// traffic, since both arms take bit-identical decisions.

struct MirrorFixture {
  reachability::WorkerFilterSoA soa;     // Large id-major pool.
  std::vector<uint32_t> indices;         // Sorted ~10% sample of the pool.
  reachability::CellMajorMirror mirror;  // The sampled workers, contiguous.
  std::vector<geo::Point> tasks;
};

MirrorFixture MakeMirrorFixture(size_t pool, size_t sample_every) {
  MirrorFixture f;
  stats::Rng rng(13);
  const geo::BoundingBox region = data::BeijingRegion();
  const double radii[] = {800.0, 1400.0, 2000.0, 2800.0};
  const reachability::AnalyticalModel model(kParams);
  reachability::AlphaThresholdCache cache(&model, reachability::Stage::kU2U,
                                          0.1);
  f.soa.Resize(pool);
  f.soa.accept_below_sq.resize(pool);
  f.soa.reject_above_sq.resize(pool);
  for (size_t i = 0; i < pool; ++i) {
    f.soa.x[i] = rng.UniformDouble(region.min_x, region.max_x);
    f.soa.y[i] = rng.UniformDouble(region.min_y, region.max_y);
    f.soa.reach_radius_m[i] = radii[i % 4];
    const reachability::AlphaThreshold& t = cache.For(f.soa.reach_radius_m[i]);
    f.soa.accept_below_sq[i] = t.accept_below_sq;
    f.soa.reject_above_sq[i] = t.reject_above_sq;
  }
  for (size_t i = 0; i < pool; i += sample_every) {
    f.indices.push_back(static_cast<uint32_t>(i));
  }
  f.mirror.Resize(f.indices.size());
  for (size_t k = 0; k < f.indices.size(); ++k) {
    const uint32_t i = f.indices[k];
    f.mirror.id[k] = i;
    f.mirror.x[k] = f.soa.x[i];
    f.mirror.y[k] = f.soa.y[i];
    f.mirror.expanded_r[k] = f.soa.reach_radius_m[i];
    f.mirror.accept_below_sq[k] = f.soa.accept_below_sq[i];
    f.mirror.reject_above_sq[k] = f.soa.reject_above_sq[i];
  }
  for (int t = 0; t < 64; ++t) {
    f.tasks.push_back({rng.UniformDouble(region.min_x, region.max_x),
                       rng.UniformDouble(region.min_y, region.max_y)});
  }
  return f;
}

void BM_ClassifyGather(benchmark::State& state) {
  const MirrorFixture f =
      MakeMirrorFixture(static_cast<size_t>(state.range(0)), 10);
  std::vector<uint32_t> accept, band;
  size_t t = 0;
  for (auto _ : state) {
    const geo::Point task = f.tasks[t++ % f.tasks.size()];
    accept.clear();
    band.clear();
    reachability::ClassifyCertainBand(f.soa, f.indices.data(),
                                      f.indices.size(), task.x, task.y,
                                      accept, band);
    benchmark::DoNotOptimize(accept.size() + band.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.indices.size()));
}
BENCHMARK(BM_ClassifyGather)->Arg(200000);

void BM_ClassifyRange(benchmark::State& state) {
  const MirrorFixture f =
      MakeMirrorFixture(static_cast<size_t>(state.range(0)), 10);
  std::vector<uint32_t> accept, band;
  size_t t = 0;
  for (auto _ : state) {
    const geo::Point task = f.tasks[t++ % f.tasks.size()];
    accept.clear();
    band.clear();
    reachability::ClassifyCertainBandRange(f.mirror, 0, f.mirror.size(),
                                           task.x, task.y, accept, band);
    benchmark::DoNotOptimize(accept.size() + band.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.mirror.size()));
}
BENCHMARK(BM_ClassifyRange)->Arg(200000);

// ProbReachableBatch per model over a dense SoA slab.
void BM_ProbReachableBatch(benchmark::State& state) {
  const size_t n = 4096;
  stats::Rng rng(9);
  std::vector<double> d(n), r(n), out(n);
  for (size_t i = 0; i < n; ++i) {
    d[i] = rng.UniformDouble(0.0, 15000.0);
    r[i] = rng.UniformDouble(500.0, 3000.0);
  }
  const reachability::BinaryModel binary;
  const reachability::AnalyticalModel analytical(kParams);
  reachability::EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 50000;
  stats::Rng build_rng(10);
  const auto empirical =
      reachability::EmpiricalModel::Build(config, kParams, build_rng);
  const reachability::ReachabilityModel* models[] = {&binary, &analytical,
                                                     &*empirical};
  const auto* model = models[state.range(0)];
  for (auto _ : state) {
    model->ProbReachableBatch(reachability::Stage::kU2E, d.data(), r.data(), n,
                              out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(std::string(model->name()));
}
BENCHMARK(BM_ProbReachableBatch)->Arg(0)->Arg(1)->Arg(2);

// End-to-end engine throughput, kernel off (0) vs on (1). Output is
// bit-identical across the arms (tests/kernel_test.cc); only speed moves.
void BM_ScGuardEngineKernel(benchmark::State& state) {
  data::WorkloadConfig config;
  config.num_workers = 500;
  config.num_tasks = 500;
  stats::Rng rng(11);
  assign::Workload workload =
      data::MakeUniformWorkload(data::BeijingRegion(), config, rng);
  data::PerturbWorkload(kParams, kParams, rng, workload);
  const reachability::AnalyticalModel model(kParams);
  assign::EnginePolicy policy;
  policy.u2u_model = &model;
  policy.u2e_model = &model;
  policy.worker_params = kParams;
  policy.task_params = kParams;
  policy.compute_accuracy_metrics = false;
  policy.kernel.alpha_thresholds = state.range(0) != 0;
  assign::ScGuardEngine engine(policy);
  for (auto _ : state) {
    stats::Rng run_rng(12);
    benchmark::DoNotOptimize(engine.Run(workload, run_rng));
  }
  state.SetItemsProcessed(state.iterations() * config.num_tasks);
  state.SetLabel(policy.kernel.alpha_thresholds ? "kernel=on" : "kernel=off");
}
BENCHMARK(BM_ScGuardEngineKernel)->Arg(0)->Arg(1);

// Cost of the observer-only U2U ground-truth accuracy scan
// (EnginePolicy::compute_accuracy_metrics): on (1) vs off (0).
void BM_ScGuardAccuracyScan(benchmark::State& state) {
  data::WorkloadConfig config;
  config.num_workers = 500;
  config.num_tasks = 500;
  stats::Rng rng(5);
  assign::Workload workload =
      data::MakeUniformWorkload(data::BeijingRegion(), config, rng);
  data::PerturbWorkload(kParams, kParams, rng, workload);
  const reachability::AnalyticalModel model(kParams);
  assign::EnginePolicy policy;
  policy.u2u_model = &model;
  policy.u2e_model = &model;
  policy.worker_params = kParams;
  policy.task_params = kParams;
  policy.compute_accuracy_metrics = state.range(0) != 0;
  assign::ScGuardEngine engine(policy);
  for (auto _ : state) {
    stats::Rng run_rng(6);
    benchmark::DoNotOptimize(engine.Run(workload, run_rng));
  }
}
BENCHMARK(BM_ScGuardAccuracyScan)->Arg(1)->Arg(0);

// ---- Flight recorder (DESIGN.md section 12) --------------------------
// The U2U threshold hot loop with per-task recorder emission (one span
// pair + one audit event per scan), recorder off (0) vs on (1). The off
// arm measures the disabled path's branch-predicted no-op cost — the <1%
// overhead contract the CI scale smoke gates end-to-end. Items/s = worker
// decisions, comparable with BM_U2UFilterThreshold.
void BM_RecorderU2uHotLoop(benchmark::State& state) {
  const bool on = state.range(0) == 1;
  obs::ObsConfig obs_config;
  obs_config.recorder = on;
  obs::SetConfig(obs_config);
  auto& recorder = obs::FlightRecorder::Global();
  recorder.Reset();
  static const uint16_t span_id = recorder.InternName("bench.u2u_scan");

  const size_t n = 5000;
  FilterFixture f = MakeFilterFixture(n);
  const reachability::AnalyticalModel model(kParams);
  reachability::AlphaThresholdCache cache(&model, reachability::Stage::kU2U,
                                          0.1);
  f.soa.accept_below_sq.resize(n);
  f.soa.reject_above_sq.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const reachability::AlphaThreshold& t = cache.For(f.soa.reach_radius_m[i]);
    f.soa.accept_below_sq[i] = t.accept_below_sq;
    f.soa.reject_above_sq[i] = t.reject_above_sq;
  }
  size_t t = 0;
  int64_t scans_since_drain = 0;
  for (auto _ : state) {
    const geo::Point task = f.tasks[t++ % f.tasks.size()];
    int64_t accepted = 0;
    {
      const obs::TimedEvent span(span_id);
      for (size_t i = 0; i < n; ++i) {
        const double dx = f.soa.x[i] - task.x;
        const double dy = f.soa.y[i] - task.y;
        const double d_sq = dx * dx + dy * dy;
        accepted += d_sq <= f.soa.accept_below_sq[i]
                        ? 1
                        : (d_sq >= f.soa.reject_above_sq[i]
                               ? 0
                               : (cache.IsCandidate(
                                      geo::Distance({f.soa.x[i], f.soa.y[i]},
                                                    task),
                                      f.soa.reach_radius_m[i])
                                      ? 1
                                      : 0));
      }
    }
    obs::AuditU2eCandidates(static_cast<int64_t>(t), accepted, 0.7);
    benchmark::DoNotOptimize(accepted);
    // Keep the ring from wrapping: a consumer that keeps up, amortized.
    if (on && ++scans_since_drain == 8192) {
      recorder.Reset();
      scans_since_drain = 0;
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  obs::SetConfig({});
  recorder.Reset();
}
BENCHMARK(BM_RecorderU2uHotLoop)->Arg(0)->Arg(1);

// Round-trip event throughput: emit a batch of instants, then Drain()
// them into the sorted stream. Items/s = events through the
// produce-then-drain cycle (the export path's input rate).
void BM_RecorderDrain(benchmark::State& state) {
  obs::ObsConfig obs_config;
  obs_config.recorder = true;
  obs::SetConfig(obs_config);
  auto& recorder = obs::FlightRecorder::Global();
  recorder.Reset();
  static const uint16_t id = recorder.InternName("bench.drain_event");
  const int64_t batch = state.range(0);
  for (auto _ : state) {
    for (int64_t i = 0; i < batch; ++i) obs::EmitInstant(id, i);
    benchmark::DoNotOptimize(recorder.Drain().size());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  obs::SetConfig({});
  recorder.Reset();
}
BENCHMARK(BM_RecorderDrain)->Arg(4096)->Arg(65536);

}  // namespace
}  // namespace scguard

BENCHMARK_MAIN();
