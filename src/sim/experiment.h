#ifndef SCGUARD_SIM_EXPERIMENT_H_
#define SCGUARD_SIM_EXPERIMENT_H_

#include <functional>
#include <vector>

#include "assign/algorithms.h"
#include "assign/matcher.h"
#include "common/result.h"
#include "data/tdrive_synth.h"
#include "data/workload.h"
#include "privacy/privacy_params.h"
#include "runtime/runtime_options.h"

namespace scguard::sim {

/// Multi-seed experiment configuration (paper Sec. V-A: 500 workers, 500
/// tasks, 10 random seeds on the synthetic T-Drive day).
struct ExperimentConfig {
  data::TDriveSynthConfig synth;
  data::WorkloadConfig workload;
  int num_seeds = 10;
  uint64_t base_seed = 42;
  /// Seed fan-out parallelism. Every seed owns an independent Rng stream
  /// and per-run metrics are merged in seed order, so the aggregate is
  /// bit-identical for any thread count (1 = legacy serial path).
  runtime::RuntimeOptions runtime;
};

/// Per-metric mean over the seeds (what the paper's figures plot).
struct AggregatedMetrics {
  double assigned_tasks = 0;
  double accepted_assignments = 0;
  double travel_m = 0;           ///< Mean travel over assigned pairs.
  double candidates = 0;         ///< Mean candidate-set size per task.
  double false_hits = 0;         ///< Total per run, averaged over seeds.
  double false_dismissals = 0;
  double precision = 0;
  double recall = 0;
  double disclosures_per_task = 0;
  double u2u_seconds = 0;        ///< Total U2U scan wall-clock per run.
  double u2e_seconds = 0;        ///< Total U2E wall-clock per run.
  double total_seconds = 0;
  /// U2U scan-work decay under active-set compaction (DESIGN.md §9):
  /// workers scored in total / by the first task / by the last task, each
  /// averaged over seeds.
  double u2u_scanned = 0;
  double u2u_scanned_first_task = 0;
  double u2u_scanned_last_task = 0;
  /// Grid-pruner cell certification per run (zero without a grid pruner;
  /// DESIGN.md §11), averaged over seeds.
  double cells_bulk_accepted = 0;
  double cells_skipped = 0;
  double boundary_workers = 0;
  /// Across-seed sample standard deviations of the headline metrics (0
  /// when fewer than two seeds).
  double assigned_tasks_stddev = 0;
  double travel_m_stddev = 0;
  int seeds = 0;
  /// Per-seed wall-clock (workload build + matcher run) distribution —
  /// min / median / max over the seeds. Filled by ExperimentRunner::Run;
  /// zero when metrics were aggregated directly via Aggregate().
  double seed_seconds_min = 0;
  double seed_seconds_median = 0;
  double seed_seconds_max = 0;
};

/// Means the per-run metrics (each already internally averaged where the
/// paper averages: travel per assigned task, candidates per task, ...).
AggregatedMetrics Aggregate(const std::vector<assign::RunMetrics>& runs);

/// Runs a synthetic T-Drive day once, then evaluates matchers over
/// `num_seeds` sampled + perturbed workload instances. All algorithms
/// evaluated through the same runner at the same privacy level see the
/// exact same workloads and the same noise (common random numbers), which
/// is how the paper compares algorithm curves.
class ExperimentRunner {
 public:
  /// Generates the trip log (hotspots seeded from base_seed so the city
  /// itself is fixed across the whole experiment suite).
  static Result<ExperimentRunner> Create(const ExperimentConfig& config);

  /// Builds the seed-th workload instance, perturbed at the given privacy
  /// levels. Deterministic in (config, seed, params).
  Result<assign::Workload> MakeWorkload(
      int seed, const privacy::PrivacyParams& worker_params,
      const privacy::PrivacyParams& task_params) const;

  /// Runs the matcher over all seeds and aggregates. Seeds fan out across
  /// a thread pool per config().runtime; the matcher's Run must therefore
  /// be re-entrant (every in-tree matcher keeps its per-run state local).
  Result<AggregatedMetrics> Run(assign::MatcherHandle& handle,
                                const privacy::PrivacyParams& worker_params,
                                const privacy::PrivacyParams& task_params) const;

  /// As Run, but a fresh matcher per seed from `factory` (needed when the
  /// matcher itself is stochastic state-free but model construction
  /// depends on the privacy level).
  Result<AggregatedMetrics> RunFactory(
      const std::function<assign::MatcherHandle()>& factory,
      const privacy::PrivacyParams& worker_params,
      const privacy::PrivacyParams& task_params) const;

  const ExperimentConfig& config() const { return config_; }
  const std::vector<data::Trip>& trips() const { return trips_; }
  const geo::BoundingBox& region() const { return region_; }

 private:
  ExperimentRunner(const ExperimentConfig& config, std::vector<data::Trip> trips,
                   const geo::BoundingBox& region);

  ExperimentConfig config_;
  std::vector<data::Trip> trips_;
  geo::BoundingBox region_;
};

}  // namespace scguard::sim

#endif  // SCGUARD_SIM_EXPERIMENT_H_
