// Reproduces paper Fig. 8 (a-f): the radius-of-concern sweep at eps = 0.7.
// Top row (a-c): Probabilistic-Model vs Probabilistic-Data — the paper's
// first headline result (the analytical model performs as well as the
// empirical one without precomputation). Bottom row (d-f): the ground-truth
// and oblivious variants under random-rank vs nearest ranking.

#include "bench/bench_common.h"

namespace scguard::bench {
namespace {

void Main() {
  const auto runner = OrDie(sim::ExperimentRunner::Create(PaperConfig()));
  const double eps = sim::kDefaultEpsilon;

  // ---- Fig 8a-c: analytical vs empirical reachability model ----
  {
    sim::TablePrinter utility("Fig 8a — Utility (#assigned of 500) vs r, eps=0.7",
                              {"algorithm", "r=200", "r=800", "r=1400", "r=2000"});
    sim::TablePrinter travel("Fig 8b — Travel cost (m) vs r, eps=0.7",
                             {"algorithm", "r=200", "r=800", "r=1400", "r=2000"});
    sim::TablePrinter leak("Fig 8c — #False hits vs r, eps=0.7",
                           {"algorithm", "r=200", "r=800", "r=1400", "r=2000"});
    for (const bool use_data : {false, true}) {
      std::vector<double> u_row, t_row, l_row;
      std::string name;
      for (double r : sim::kRadii) {
        const privacy::PrivacyParams p{eps, r};
        assign::MatcherHandle handle =
            use_data ? assign::MakeProbabilisticData(MakeParams(p),
                                                     BuildEmpirical(runner, p))
                     : assign::MakeProbabilisticModel(MakeParams(p));
        name = handle.name();
        const auto agg = OrDie(runner.Run(handle, p, p));
        u_row.push_back(agg.assigned_tasks);
        t_row.push_back(agg.travel_m);
        l_row.push_back(agg.false_hits);
      }
      utility.AddRow(name, u_row, 1);
      travel.AddRow(name, t_row, 0);
      leak.AddRow(name, l_row, 1);
    }
    utility.Print(std::cout);
    travel.Print(std::cout);
    leak.Print(std::cout);
  }

  // ---- Fig 8d-f: RR vs NN ranking for ground truth and oblivious ----
  {
    sim::TablePrinter utility("Fig 8d — Utility (#assigned of 500) vs r, eps=0.7",
                              {"algorithm", "r=200", "r=800", "r=1400", "r=2000"});
    sim::TablePrinter travel("Fig 8e — Travel cost (m) vs r, eps=0.7",
                             {"algorithm", "r=200", "r=800", "r=1400", "r=2000"});
    sim::TablePrinter leak("Fig 8f — #False hits vs r, eps=0.7",
                           {"algorithm", "r=200", "r=800", "r=1400", "r=2000"});
    struct Algo {
      std::string name;
      std::function<assign::MatcherHandle(const privacy::PrivacyParams&)> make;
    };
    const std::vector<Algo> algos = {
        {"GroundTruth-NN",
         [](const privacy::PrivacyParams&) {
           return assign::MakeGroundTruth(assign::RankStrategy::kNearest);
         }},
        {"GroundTruth-RR",
         [](const privacy::PrivacyParams&) {
           return assign::MakeGroundTruth(assign::RankStrategy::kRandom);
         }},
        {"Oblivious-RN",
         [](const privacy::PrivacyParams& p) {
           return assign::MakeOblivious(assign::RankStrategy::kNearest,
                                        MakeParams(p));
         }},
        {"Oblivious-RR",
         [](const privacy::PrivacyParams& p) {
           return assign::MakeOblivious(assign::RankStrategy::kRandom,
                                        MakeParams(p));
         }},
    };
    for (const auto& algo : algos) {
      std::vector<double> u_row, t_row, l_row;
      for (double r : sim::kRadii) {
        const privacy::PrivacyParams p{eps, r};
        assign::MatcherHandle handle = algo.make(p);
        const auto agg = OrDie(runner.Run(handle, p, p));
        u_row.push_back(agg.assigned_tasks);
        t_row.push_back(agg.travel_m);
        l_row.push_back(agg.false_hits);
      }
      utility.AddRow(algo.name, u_row, 1);
      travel.AddRow(algo.name, t_row, 0);
      leak.AddRow(algo.name, l_row, 1);
    }
    utility.Print(std::cout);
    travel.Print(std::cout);
    leak.Print(std::cout);
  }
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
