#include "privacy/mechanism.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/str_format.h"

namespace scguard::privacy {

const char* MechanismKindName(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kPlanarLaplace: return "planar-laplace";
    case MechanismKind::kGeoMatrix: return "geo-matrix";
    case MechanismKind::kPriorEmpirical: return "prior-empirical";
  }
  return "unknown";
}

void Mechanism::PerturbBatch(const geo::Point* xs, size_t n, stats::Rng& rng,
                             geo::Point* out) const {
  for (size_t i = 0; i < n; ++i) out[i] = Perturb(xs[i], rng);
}

std::optional<double> Mechanism::DiskProbability(double, double) const {
  return std::nullopt;
}

std::string Mechanism::ParamsJson() const {
  std::ostringstream os;
  os << "{\"name\":\"" << name() << "\",\"epsilon\":" << params_.epsilon
     << ",\"radius_m\":" << params_.radius_m << "}";
  return os.str();
}

// --------------------------------------------------------------------------
// PlanarLaplaceMechanism

PlanarLaplaceMechanism::PlanarLaplaceMechanism(const PrivacyParams& params)
    : Mechanism(params), laplace_(params.unit_epsilon()) {
  SCGUARD_CHECK(params.Validate().ok());
}

geo::Point PlanarLaplaceMechanism::Perturb(geo::Point x,
                                           stats::Rng& rng) const {
  // Exactly GeoIndMechanism::Perturb: one Sample, added to x. The bit-
  // identity contract of the refactor lives on this line.
  return x + laplace_.Sample(rng);
}

std::optional<double> PlanarLaplaceMechanism::DiskProbability(
    double center_distance_m, double disk_radius_m) const {
  return laplace_.DiskProbability(center_distance_m, disk_radius_m);
}

double PlanarLaplaceMechanism::ConfidenceRadius(double gamma) const {
  return laplace_.ConfidenceRadius(gamma);
}

std::string_view PlanarLaplaceMechanism::name() const {
  return "planar-laplace";
}

// --------------------------------------------------------------------------
// AliasTable

AliasTable::AliasTable(const std::vector<double>& probs) {
  const size_t n = probs.size();
  SCGUARD_CHECK(n > 0);
  const double total = std::accumulate(probs.begin(), probs.end(), 0.0);
  SCGUARD_CHECK(total > 0.0);
  accept_.resize(n);
  alias_.assign(n, 0);
  // Vose's two-stack construction, visiting indices in increasing order so
  // equal probability vectors build byte-equal tables.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = probs[i] * static_cast<double>(n) / total;
  std::vector<uint32_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    const uint32_t l = large.back();
    small.pop_back();
    accept_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are within rounding of 1; they always accept.
  for (const uint32_t l : large) accept_[l] = 1.0;
  for (const uint32_t s : small) accept_[s] = 1.0;
}

uint32_t AliasTable::Sample(stats::Rng& rng) const {
  const uint32_t column =
      static_cast<uint32_t>(rng.UniformInt(accept_.size()));
  // UniformDouble() < 1.0 always, so accept_[i] == 1.0 never falls through.
  return rng.UniformDouble() < accept_[column] ? column : alias_[column];
}

// --------------------------------------------------------------------------
// MatrixMechanism

namespace {

Status ValidateGridSpec(const PrivacyParams& params,
                        const geo::BoundingBox& region) {
  SCGUARD_RETURN_NOT_OK(params.Validate());
  if (region.empty() || region.Width() <= 0.0 || region.Height() <= 0.0) {
    return Status::InvalidArgument(
        "grid mechanisms need a non-empty region: set "
        "PrivacyParams::mechanism.region or pass a fallback_region");
  }
  return Status::OK();
}

}  // namespace

MatrixMechanism::MatrixMechanism(const PrivacyParams& params,
                                 const geo::BoundingBox& region,
                                 std::vector<std::vector<double>> rows,
                                 std::string name)
    : Mechanism(params),
      region_(region),
      cells_(params.mechanism.grid_cells),
      cell_w_(region.Width() / params.mechanism.grid_cells),
      cell_h_(region.Height() / params.mechanism.grid_cells),
      rows_(std::move(rows)),
      name_(std::move(name)) {
  const size_t n = static_cast<size_t>(cells_) * static_cast<size_t>(cells_);
  SCGUARD_CHECK(rows_.size() == n);
  alias_.reserve(n);
  for (auto& row : rows_) {
    SCGUARD_CHECK(row.size() == n);
    alias_.emplace_back(row);
    // Keep the stored rows normalized so Row(i) is a distribution.
    const double total = std::accumulate(row.begin(), row.end(), 0.0);
    for (double& p : row) p /= total;
  }
}

size_t MatrixMechanism::CellOf(geo::Point x) const {
  // Clamp onto the region so off-grid true locations (e.g. a drifting
  // service reporter) map to the nearest boundary cell instead of dying.
  const double fx = std::clamp((x.x - region_.min_x) / cell_w_, 0.0,
                               static_cast<double>(cells_) - 0.5);
  const double fy = std::clamp((x.y - region_.min_y) / cell_h_, 0.0,
                               static_cast<double>(cells_) - 0.5);
  return static_cast<size_t>(fy) * static_cast<size_t>(cells_) +
         static_cast<size_t>(fx);
}

geo::Point MatrixMechanism::CellCenter(size_t cell) const {
  const size_t nc = static_cast<size_t>(cells_);
  return {region_.min_x + (static_cast<double>(cell % nc) + 0.5) * cell_w_,
          region_.min_y + (static_cast<double>(cell / nc) + 0.5) * cell_h_};
}

Result<std::unique_ptr<MatrixMechanism>> MatrixMechanism::Make(
    const PrivacyParams& params, const geo::BoundingBox& region) {
  SCGUARD_RETURN_NOT_OK(ValidateGridSpec(params, region));
  const int cells = params.mechanism.grid_cells;
  const size_t n = static_cast<size_t>(cells) * static_cast<size_t>(cells);
  // Exponential Geo-I kernel over cell centers: the discrete analogue of
  // planar Laplace, eps/2-scaled so that P(j|i)/P(j|i') <= e^{eps d(i,i')/r}
  // after the normalizer ratio is accounted for.
  const double half_eps = 0.5 * params.unit_epsilon();
  PrivacyParams p = params;
  p.mechanism.region = region;
  std::vector<std::vector<double>> rows(n);
  // Build row 0's geometry lazily through a temporary grid: centers depend
  // only on (region, cells).
  const double cw = region.Width() / cells;
  const double ch = region.Height() / cells;
  const size_t nc = static_cast<size_t>(cells);
  auto center = [&](size_t cell) {
    return geo::Point{
        region.min_x + (static_cast<double>(cell % nc) + 0.5) * cw,
        region.min_y + (static_cast<double>(cell / nc) + 0.5) * ch};
  };
  for (size_t i = 0; i < n; ++i) {
    rows[i].resize(n);
    const geo::Point ci = center(i);
    for (size_t j = 0; j < n; ++j) {
      rows[i][j] = std::exp(-half_eps * geo::Distance(ci, center(j)));
    }
  }
  return std::unique_ptr<MatrixMechanism>(new MatrixMechanism(
      p, region, std::move(rows), MechanismKindName(MechanismKind::kGeoMatrix)));
}

Result<std::unique_ptr<MatrixMechanism>> MatrixMechanism::FromRows(
    const PrivacyParams& params, const geo::BoundingBox& region,
    std::vector<std::vector<double>> rows, std::string name) {
  SCGUARD_RETURN_NOT_OK(ValidateGridSpec(params, region));
  const size_t n = static_cast<size_t>(params.mechanism.grid_cells) *
                   static_cast<size_t>(params.mechanism.grid_cells);
  if (rows.size() != n) {
    return Status::InvalidArgument(
        StrCat("expected ", n, " rows, got ", rows.size()));
  }
  for (const auto& row : rows) {
    if (row.size() != n) {
      return Status::InvalidArgument(
          StrCat("expected ", n, " columns, got ", row.size()));
    }
    double total = 0.0;
    for (const double w : row) {
      if (!(w >= 0.0)) return Status::InvalidArgument("negative row weight");
      total += w;
    }
    if (!(total > 0.0)) return Status::InvalidArgument("all-zero matrix row");
  }
  PrivacyParams p = params;
  p.mechanism.region = region;
  return std::unique_ptr<MatrixMechanism>(
      new MatrixMechanism(p, region, std::move(rows), std::move(name)));
}

geo::Point MatrixMechanism::Perturb(geo::Point x, stats::Rng& rng) const {
  const size_t src = CellOf(x);
  const size_t nc = static_cast<size_t>(cells_);
  const size_t dst = alias_[src].Sample(rng);
  // Uniform jitter inside the landed cell; two draws, x then y.
  return {region_.min_x +
              (static_cast<double>(dst % nc) + rng.UniformDouble()) * cell_w_,
          region_.min_y +
              (static_cast<double>(dst / nc) + rng.UniformDouble()) * cell_h_};
}

double MatrixMechanism::ConfidenceRadius(double gamma) const {
  SCGUARD_CHECK(gamma > 0.0 && gamma < 1.0);
  // Per source cell: the gamma-quantile of the center-to-center distance,
  // plus a full cell diagonal covering the true point's offset inside its
  // cell and the jitter inside the landed cell. Max over sources makes the
  // radius sound for any true location, which is what pruning needs.
  const size_t n = rows_.size();
  const double slack = std::hypot(cell_w_, cell_h_);
  double worst = 0.0;
  std::vector<std::pair<double, double>> by_distance(n);
  for (size_t i = 0; i < n; ++i) {
    const geo::Point ci = CellCenter(i);
    for (size_t j = 0; j < n; ++j) {
      by_distance[j] = {geo::Distance(ci, CellCenter(j)), rows_[i][j]};
    }
    std::sort(by_distance.begin(), by_distance.end());
    double mass = 0.0;
    double radius = by_distance.back().first;
    for (const auto& [d, p] : by_distance) {
      mass += p;
      if (mass >= gamma) {
        radius = d;
        break;
      }
    }
    worst = std::max(worst, radius + slack);
  }
  return worst;
}

std::string_view MatrixMechanism::name() const { return name_; }

std::string MatrixMechanism::ParamsJson() const {
  std::ostringstream os;
  os << "{\"name\":\"" << JsonEscape(name_)
     << "\",\"epsilon\":" << params_.epsilon
     << ",\"radius_m\":" << params_.radius_m
     << ",\"grid_cells\":" << cells_ << "}";
  return os.str();
}

// --------------------------------------------------------------------------
// PriorWeightedMechanism

namespace {

/// Seeded Beijing-like demand surface: a Zipf-weighted Gaussian hotspot
/// mixture with a uniform background — the same family
/// data::HotspotMixture::MakeBeijingLike draws synthetic T-Drive trips
/// from, reimplemented here because privacy/ sits below data/ in the layer
/// graph. Purely a function of (region, seed), so every site learns the
/// identical prior.
geo::Point SampleSyntheticHistory(const geo::BoundingBox& region,
                                  const std::vector<geo::Point>& centers,
                                  const std::vector<double>& sigmas,
                                  const std::vector<double>& cum_weights,
                                  stats::Rng& rng) {
  const double pick = rng.UniformDouble();
  size_t k = cum_weights.size();  // past-the-end means background
  for (size_t i = 0; i < cum_weights.size(); ++i) {
    if (pick < cum_weights[i]) {
      k = i;
      break;
    }
  }
  geo::Point p;
  if (k == cum_weights.size()) {
    p = {rng.UniformDouble(region.min_x, region.max_x),
         rng.UniformDouble(region.min_y, region.max_y)};
  } else {
    p = {rng.Gaussian(centers[k].x, sigmas[k]),
         rng.Gaussian(centers[k].y, sigmas[k])};
  }
  return {std::clamp(p.x, region.min_x, region.max_x),
          std::clamp(p.y, region.min_y, region.max_y)};
}

std::vector<double> LearnCellPrior(const PrivacyParams& params,
                                   const geo::BoundingBox& region,
                                   const geo::Point* history, size_t n) {
  const int cells = params.mechanism.grid_cells;
  const size_t total =
      static_cast<size_t>(cells) * static_cast<size_t>(cells);
  const double cw = region.Width() / cells;
  const double ch = region.Height() / cells;
  // Add-one smoothing: unseen cells keep a floor so every row of the
  // re-weighted matrix stays a valid (and Geo-I-bounded) distribution.
  std::vector<double> prior(total, 1.0);
  for (size_t i = 0; i < n; ++i) {
    const double fx =
        std::clamp((history[i].x - region.min_x) / cw, 0.0, cells - 0.5);
    const double fy =
        std::clamp((history[i].y - region.min_y) / ch, 0.0, cells - 0.5);
    prior[static_cast<size_t>(fy) * static_cast<size_t>(cells) +
          static_cast<size_t>(fx)] += 1.0;
  }
  return prior;
}

Result<std::unique_ptr<MatrixMechanism>> BuildPriorMatrix(
    const PrivacyParams& params, const geo::BoundingBox& region,
    const std::vector<double>& prior) {
  SCGUARD_RETURN_NOT_OK(ValidateGridSpec(params, region));
  const int cells = params.mechanism.grid_cells;
  const size_t n = static_cast<size_t>(cells) * static_cast<size_t>(cells);
  SCGUARD_CHECK(prior.size() == n);
  const double half_eps = 0.5 * params.unit_epsilon();
  const double cw = region.Width() / cells;
  const double ch = region.Height() / cells;
  const size_t nc = static_cast<size_t>(cells);
  auto center = [&](size_t cell) {
    return geo::Point{
        region.min_x + (static_cast<double>(cell % nc) + 0.5) * cw,
        region.min_y + (static_cast<double>(cell / nc) + 0.5) * ch};
  };
  std::vector<std::vector<double>> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i].resize(n);
    const geo::Point ci = center(i);
    for (size_t j = 0; j < n; ++j) {
      rows[i][j] = prior[j] * std::exp(-half_eps * geo::Distance(ci, center(j)));
    }
  }
  return MatrixMechanism::FromRows(
      params, region, std::move(rows),
      MechanismKindName(MechanismKind::kPriorEmpirical));
}

}  // namespace

PriorWeightedMechanism::PriorWeightedMechanism(
    std::unique_ptr<MatrixMechanism> matrix)
    : Mechanism(matrix->params()), matrix_(std::move(matrix)) {}

Result<std::unique_ptr<PriorWeightedMechanism>> PriorWeightedMechanism::Make(
    const PrivacyParams& params, const geo::BoundingBox& region) {
  SCGUARD_RETURN_NOT_OK(ValidateGridSpec(params, region));
  // Deterministic synthetic history from the spec's stream.
  stats::Rng rng(params.mechanism.prior_seed);
  constexpr size_t kHotspots = 24;
  constexpr double kBackground = 0.2;
  const double inset_x = 0.2 * region.Width();
  const double inset_y = 0.2 * region.Height();
  std::vector<geo::Point> centers(kHotspots);
  std::vector<double> sigmas(kHotspots);
  std::vector<double> weights(kHotspots);
  for (size_t k = 0; k < kHotspots; ++k) {
    centers[k] = {rng.UniformDouble(region.min_x + inset_x,
                                    region.max_x - inset_x),
                  rng.UniformDouble(region.min_y + inset_y,
                                    region.max_y - inset_y)};
    sigmas[k] = rng.UniformDouble(400.0, 2000.0);
    weights[k] = 1.0 / (static_cast<double>(k) + 1.0);  // Zipf-like popularity
  }
  const double wsum = std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<double> cum(kHotspots);
  double acc = 0.0;
  for (size_t k = 0; k < kHotspots; ++k) {
    acc += (1.0 - kBackground) * weights[k] / wsum;
    cum[k] = acc;
  }
  std::vector<geo::Point> history(
      static_cast<size_t>(params.mechanism.prior_samples));
  for (auto& p : history) {
    p = SampleSyntheticHistory(region, centers, sigmas, cum, rng);
  }
  return Learn(params, region, history.data(), history.size());
}

Result<std::unique_ptr<PriorWeightedMechanism>> PriorWeightedMechanism::Learn(
    const PrivacyParams& params, const geo::BoundingBox& region,
    const geo::Point* history, size_t n) {
  SCGUARD_RETURN_NOT_OK(ValidateGridSpec(params, region));
  const std::vector<double> prior = LearnCellPrior(params, region, history, n);
  auto matrix = BuildPriorMatrix(params, region, prior);
  SCGUARD_RETURN_NOT_OK(matrix.status());
  return std::unique_ptr<PriorWeightedMechanism>(
      new PriorWeightedMechanism(std::move(matrix).ValueOrDie()));
}

geo::Point PriorWeightedMechanism::Perturb(geo::Point x,
                                           stats::Rng& rng) const {
  return matrix_->Perturb(x, rng);
}

double PriorWeightedMechanism::ConfidenceRadius(double gamma) const {
  return matrix_->ConfidenceRadius(gamma);
}

std::string_view PriorWeightedMechanism::name() const {
  return MechanismKindName(MechanismKind::kPriorEmpirical);
}

std::string PriorWeightedMechanism::ParamsJson() const {
  std::ostringstream os;
  os << "{\"name\":\"" << name() << "\",\"epsilon\":" << params_.epsilon
     << ",\"radius_m\":" << params_.radius_m
     << ",\"grid_cells\":" << params_.mechanism.grid_cells
     << ",\"prior_seed\":" << params_.mechanism.prior_seed
     << ",\"prior_samples\":" << params_.mechanism.prior_samples << "}";
  return os.str();
}

// --------------------------------------------------------------------------
// Factory

bool HasClosedFormDiskProbability(MechanismKind kind) {
  return kind == MechanismKind::kPlanarLaplace;
}

Result<std::unique_ptr<const Mechanism>> MakeMechanism(
    const PrivacyParams& params, const geo::BoundingBox& fallback_region) {
  SCGUARD_RETURN_NOT_OK(params.Validate());
  const geo::BoundingBox& region = params.mechanism.region.empty()
                                       ? fallback_region
                                       : params.mechanism.region;
  switch (params.mechanism.kind) {
    case MechanismKind::kPlanarLaplace:
      return std::unique_ptr<const Mechanism>(
          new PlanarLaplaceMechanism(params));
    case MechanismKind::kGeoMatrix: {
      auto m = MatrixMechanism::Make(params, region);
      SCGUARD_RETURN_NOT_OK(m.status());
      return std::unique_ptr<const Mechanism>(std::move(m).ValueOrDie());
    }
    case MechanismKind::kPriorEmpirical: {
      auto m = PriorWeightedMechanism::Make(params, region);
      SCGUARD_RETURN_NOT_OK(m.status());
      return std::unique_ptr<const Mechanism>(std::move(m).ValueOrDie());
    }
  }
  return Status::InvalidArgument("unknown mechanism kind");
}

std::unique_ptr<const Mechanism> MakeMechanismOrDie(
    const PrivacyParams& params, const geo::BoundingBox& fallback_region) {
  // ValueOrDie aborts with the status printed on error.
  return MakeMechanism(params, fallback_region).ValueOrDie();
}

}  // namespace scguard::privacy
