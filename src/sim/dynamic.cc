#include "sim/dynamic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "data/beijing.h"
#include "data/trip_model.h"
#include "privacy/planar_laplace.h"
#include "reachability/analytical_model.h"
#include "reachability/kernel.h"

namespace scguard::sim {
namespace {

geo::Point ClampToRegion(geo::Point p, const geo::BoundingBox& region) {
  return {std::clamp(p.x, region.min_x, region.max_x),
          std::clamp(p.y, region.min_y, region.max_y)};
}

}  // namespace

std::vector<DynamicRoundMetrics> RunDynamicWorkers(const DynamicConfig& config,
                                                   ReportingStrategy strategy) {
  SCGUARD_CHECK(config.rounds >= 1 && config.num_workers >= 1);
  SCGUARD_CHECK(config.joint.Validate().ok());

  const geo::BoundingBox region = data::BeijingRegion();
  stats::Rng rng(config.seed);
  const data::HotspotMixture demand =
      data::HotspotMixture::MakeBeijingLike(region, 24, rng);

  // Per-report privacy level by strategy.
  const privacy::PrivacyParams per_report =
      strategy == ReportingStrategy::kLocationSetSplit
          ? privacy::PrivacyParams{config.joint.epsilon / config.rounds,
                                   config.joint.radius_m}
          : config.joint;
  const privacy::PlanarLaplace laplace(per_report.unit_epsilon());

  // Reachability models consistent with the *claimed* per-report level:
  // the server cannot know more than what devices declare.
  const reachability::AnalyticalModel model(per_report);
  // The alpha filter as a critical-distance compare (exact decisions);
  // run-local, like the rest of the simulation state.
  reachability::AlphaThresholdCache u2u_thresholds(
      &model, reachability::Stage::kU2U, config.alpha);

  // Worker state.
  struct DynamicWorker {
    geo::Point location;
    geo::Point reported;
    double reach = 0;
    double spent_epsilon = 0;
  };
  std::vector<DynamicWorker> workers(static_cast<size_t>(config.num_workers));
  for (auto& w : workers) {
    w.location = demand.Sample(rng);
    w.reach = rng.UniformDouble(config.reach_min_m, config.reach_max_m);
  }

  // Reach radii never change, so the inverted alpha filter's squared
  // certain bounds are per-worker constants: the U2U check below is a
  // squared-distance compare (no sqrt), with the exact IsCandidate only
  // for the nanometre-wide band between the bounds (same contract as the
  // engine's PR-3 path).
  std::vector<double> accept_sq(workers.size());
  std::vector<double> reject_sq(workers.size());
  for (size_t i = 0; i < workers.size(); ++i) {
    const reachability::AlphaThreshold& t = u2u_thresholds.For(workers[i].reach);
    accept_sq[i] = t.accept_below_sq;
    reject_sq[i] = t.reject_above_sq;
  }

  // Task perturbation noise is drawn at the joint level every time
  // (tasks are one-shot); the sampler itself is deterministic state, built
  // once instead of tasks_per_round * rounds times.
  const privacy::PlanarLaplace task_laplace(config.joint.unit_epsilon());

  std::vector<DynamicRoundMetrics> results;
  std::vector<std::pair<double, size_t>> ranked;  // Reused across tasks.
  for (int round = 0; round < config.rounds; ++round) {
    // Movement (not in round 0: workers register where they are).
    if (round > 0) {
      for (auto& w : workers) {
        const double angle = rng.UniformDouble(0.0, 2.0 * M_PI);
        const double step = rng.UniformDouble(0.0, config.max_move_m);
        w.location = ClampToRegion(
            w.location + geo::Point{step * std::cos(angle), step * std::sin(angle)},
            region);
      }
    }

    // Reporting.
    for (auto& w : workers) {
      const bool refresh = round == 0 || strategy != ReportingStrategy::kReportOnce;
      if (refresh) {
        w.reported = w.location + laplace.Sample(rng);
        w.spent_epsilon += per_report.epsilon;
      }
    }

    // One round of online assignment over fresh tasks.
    DynamicRoundMetrics metrics;
    metrics.round = round;
    std::vector<bool> busy(workers.size(), false);
    double travel_sum = 0;
    for (int t = 0; t < config.tasks_per_round; ++t) {
      const geo::Point task = demand.Sample(rng);
      const geo::Point task_noisy = task + task_laplace.Sample(rng);
      // U2U + U2E against reported locations.
      ranked.clear();
      for (size_t i = 0; i < workers.size(); ++i) {
        if (busy[i]) continue;
        const DynamicWorker& w = workers[i];
        const double d_sq = geo::SquaredDistance(w.reported, task_noisy);
        if (d_sq >= reject_sq[i]) continue;
        if (d_sq > accept_sq[i] &&
            !u2u_thresholds.IsCandidate(geo::Distance(w.reported, task_noisy),
                                        w.reach)) {
          continue;
        }
        const double p_u2e = model.ProbReachable(
            reachability::Stage::kU2E, geo::Distance(w.reported, task), w.reach);
        ranked.emplace_back(p_u2e, i);
      }
      std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      for (const auto& [score, i] : ranked) {
        if (score < config.beta) break;  // Cancel.
        const double d_true = geo::Distance(workers[i].location, task);
        if (d_true <= workers[i].reach) {
          busy[i] = true;
          workers[i].location = task;  // Completes the task, ends up there.
          metrics.assigned += 1;
          travel_sum += d_true;
          break;
        }
        metrics.false_hits += 1;
      }
    }
    metrics.travel_m = metrics.assigned > 0 ? travel_sum / metrics.assigned : 0;

    double eps_max = 0, error_sum = 0;
    for (const auto& w : workers) {
      eps_max = std::max(eps_max, w.spent_epsilon);
      error_sum += geo::Distance(w.location, w.reported);
    }
    metrics.effective_epsilon = eps_max;
    metrics.report_error_m = error_sum / static_cast<double>(workers.size());
    results.push_back(metrics);
  }
  return results;
}

}  // namespace scguard::sim
