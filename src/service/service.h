#ifndef SCGUARD_SERVICE_SERVICE_H_
#define SCGUARD_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "assign/entities.h"
#include "assign/matcher.h"
#include "assign/stages/candidate_stage.h"
#include "assign/stages/contact_stage.h"
#include "assign/stages/rank_stage.h"
#include "geo/bbox.h"
#include "geo/point.h"
#include "index/pruning.h"
#include "privacy/privacy_params.h"
#include "reachability/kernel.h"
#include "reachability/model.h"
#include "service/mpsc_queue.h"
#include "stats/rng.h"

namespace scguard::service {

/// One admitted ingest event. The service's admission log is the ordered
/// sequence of these it executed; replaying the log serially through
/// Replay() reproduces the run's assignments bit-identically (DESIGN.md
/// section 14).
struct ServiceEvent {
  enum class Kind : uint8_t { kTask, kReport };
  Kind kind = Kind::kTask;
  int64_t task_id = 0;   ///< kTask only.
  uint32_t worker = 0;   ///< kReport only.
  geo::Point exact;      ///< Task location / worker's new true location.
  geo::Point noisy;      ///< Geo-I perturbed counterpart.
  uint64_t submit_ns = 0;  ///< steady_clock at enqueue (latency accounting).
};

/// How a task's service ended.
struct CompletionRecord {
  int64_t task_id = 0;
  int64_t worker_id = -1;  ///< First accepting worker; -1 when unassigned.
  double travel_m = 0.0;
  uint64_t submit_ns = 0;
  uint64_t done_ns = 0;  ///< End of the task's E2E stage.
  uint64_t epoch = 0;    ///< Snapshot epoch the scan was pinned to.
};

/// Producer-visible ingest accounting (monotonic; readable at any time).
struct IngestStats {
  int64_t tasks_submitted = 0;
  int64_t reports_submitted = 0;
  int64_t tasks_rejected = 0;    ///< TryPush refused: queue full.
  int64_t reports_rejected = 0;
  int64_t epochs = 0;            ///< Snapshot publications so far.
};

/// Protocol + runtime knobs; mirrors assign::EnginePolicy with the
/// service-specific ingest knobs appended, so a service configured from an
/// EnginePolicy's fields executes the identical per-task protocol.
struct ServiceConfig {
  const reachability::ReachabilityModel* u2u_model = nullptr;
  const reachability::ReachabilityModel* u2e_model = nullptr;
  double alpha = 0.1;
  double beta = 0.0;
  assign::BetaMode beta_mode = assign::BetaMode::kEveryContact;
  assign::RankStrategy rank = assign::RankStrategy::kProbability;
  int redundancy_k = 1;
  std::optional<double> pruning_gamma;
  index::PrunerBackend pruning_backend = index::PrunerBackend::kGrid;
  privacy::PrivacyParams worker_params;
  privacy::PrivacyParams task_params;
  reachability::KernelOptions kernel;
  assign::EngineRuntime runtime;
  /// Deployment region (sizes the pruning grid).
  geo::BoundingBox region;

  /// Ingest ring capacity (rounded up to a power of two). When full,
  /// SubmitTask / ReportLocation return false — backpressure, never a
  /// block or a drop of an admitted event.
  size_t queue_capacity = 1 << 16;
  /// Events drained per apply phase before an epoch is published. Bounds
  /// staleness under report floods without starving the scan loop.
  int max_batch = 256;
  /// A matched worker that re-reports becomes available again (it finished
  /// or abandoned its task and moved). Off keeps MarkMatched permanent,
  /// matching the one-shot engine semantics.
  bool reactivate_on_report = true;
  /// Seed of the per-worker random ranking priorities: drawn one per
  /// RegisterWorker in registration order, so a service over workers
  /// [0, n) draws the same sequence as ScGuardEngine::Run with
  /// stats::Rng(rank_seed).
  uint64_t rank_seed = 42;
};

/// Persistent assignment service around the stage library: any number of
/// producer threads push worker re-reports and task submissions into a
/// lock-free bounded ring (MpscQueue); a single consumer thread alternates
/// an apply phase (drain up to max_batch events, mutate the U2U stage's
/// index/mirror state through the incremental Relocate/MarkAvailable
/// paths, publish a new epoch) with a scan phase (run each drained task
/// through the same U2U -> U2E -> E2E body as ScGuardEngine::Run, pinned
/// to the just-published epoch).
///
/// Determinism: concurrency only decides the admission *order*; execution
/// is serial in the consumer, and every executed event is appended to the
/// admission log in execution order. Replay() of that log on a fresh,
/// identically-configured service is the same code over the same sequence
/// of states — bit-identical assignments by construction (tested in
/// tests/service_test.cc).
///
/// Thread contract: RegisterWorker before Start; SubmitTask /
/// ReportLocation from any threads between Start and Stop; results
/// (completions, metrics, admission_log, assignments) only after Stop
/// returns. epoch() and ingest_stats() are safe at any time.
class AssignmentService {
 public:
  enum class StopMode {
    kDrain,    ///< Finish everything already admitted, then exit.
    kAbandon,  ///< Exit after the current batch; queued events are dropped.
  };

  explicit AssignmentService(ServiceConfig config);
  ~AssignmentService();

  AssignmentService(const AssignmentService&) = delete;
  AssignmentService& operator=(const AssignmentService&) = delete;

  /// Registers a worker (dense ids, registration order). Draws the
  /// worker's random ranking priority. Must precede Start.
  uint32_t RegisterWorker(const assign::Worker& w);

  /// Builds the stage state (threshold prewarm, pruning index, mirror) and
  /// launches the consumer thread.
  void Start();

  /// Producers. Return false when the ring is full (event not admitted).
  bool SubmitTask(const assign::Task& t);
  bool ReportLocation(uint32_t worker, geo::Point exact_location,
                      geo::Point noisy_location);

  /// Joins the consumer. kDrain requires producers to have stopped first
  /// (nothing new may be pushed while draining). Idempotent.
  void Stop(StopMode mode = StopMode::kDrain);

  /// Serial replay of an admission log on a not-yet-started service:
  /// executes the same ApplyReport / ScanTask helpers in log order on the
  /// consumer-free path. Mutually exclusive with Start on one instance.
  void Replay(const std::vector<ServiceEvent>& log);

  /// Results; valid after Stop (or Replay) returns.
  const std::vector<CompletionRecord>& completions() const {
    return completions_;
  }
  const std::vector<ServiceEvent>& admission_log() const { return log_; }
  const std::vector<assign::Assignment>& assignments() const {
    return assignments_;
  }
  const assign::RunMetrics& metrics() const { return metrics_; }
  /// Wall-clock Stop(kDrain) spent finishing the backlog.
  double drain_seconds() const { return drain_seconds_; }

  /// Safe at any time.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  IngestStats ingest_stats() const;
  size_t queue_capacity() const { return queue_.capacity(); }

 private:
  void ConsumerLoop();
  void ApplyReport(const ServiceEvent& ev);
  void ScanTask(const ServiceEvent& ev);
  /// Grid-certification fold + one obs flush per counter; idempotent.
  void FinalizeMetrics();

  ServiceConfig config_;
  MpscQueue<ServiceEvent> queue_;
  stats::Rng rank_rng_;

  // Ground truth the E2E stage consults (exact locations); consumer-owned
  // after Start.
  std::vector<assign::Worker> workers_;
  std::vector<double> random_rank_;

  // The three protocol stages (consumer-owned after Start).
  assign::U2uCandidateStage u2u_;
  assign::U2eRankStage u2e_;
  assign::E2eContactStage e2e_;
  std::vector<std::pair<double, size_t>> ranked_;  // Reused scratch.

  // Consumer-owned results.
  std::vector<ServiceEvent> log_;
  std::vector<CompletionRecord> completions_;
  std::vector<assign::Assignment> assignments_;
  assign::RunMetrics metrics_;
  int64_t obs_evaluated_ = 0;
  int64_t obs_pruned_ = 0;
  int64_t obs_alpha_rejections_ = 0;
  int64_t obs_beta_cancels_ = 0;
  int64_t reports_applied_ = 0;
  int64_t epochs_published_ = 0;
  bool finalized_ = false;

  // Cross-thread state.
  std::atomic<uint64_t> epoch_{0};
  std::atomic<int64_t> tasks_pushed_{0};
  std::atomic<int64_t> reports_pushed_{0};
  std::atomic<int64_t> tasks_rejected_{0};
  std::atomic<int64_t> reports_rejected_{0};
  std::atomic<int64_t> events_applied_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> abandon_{false};

  std::thread consumer_;
  bool started_ = false;
  bool stopped_ = false;
  double drain_seconds_ = 0.0;
};

}  // namespace scguard::service

#endif  // SCGUARD_SERVICE_SERVICE_H_
