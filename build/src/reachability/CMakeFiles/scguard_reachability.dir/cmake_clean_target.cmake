file(REMOVE_RECURSE
  "libscguard_reachability.a"
)
