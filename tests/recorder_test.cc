// Flight-recorder suite (DESIGN.md section 12): ring mechanics, name
// interning, export structure, the privacy-audit reconciliation contract
// against a real engine run, and the acceptance criterion that recording
// never perturbs results. This binary also runs under TSan and
// ASan+UBSan in CI — the multithreaded tests are the race detectors' food.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "assign/scguard_engine.h"
#include "data/beijing.h"
#include "data/workload.h"
#include "obs/export.h"
#include "obs/obs_config.h"
#include "obs/recorder.h"
#include "obs/trace_export.h"
#include "privacy/budget.h"
#include "reachability/analytical_model.h"
#include "runtime/thread_pool.h"
#include "stats/rng.h"

namespace scguard::obs {
namespace {

/// Every test shares the process-global recorder (rings and interned names
/// are registered forever), so each starts from a drained stream and
/// leaves recording off.
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ObsConfig config;
    config.enabled = true;
    config.recorder = true;
    SetConfig(config);
    FlightRecorder::Global().Reset();
  }
  void TearDown() override {
    FlightRecorder::Global().Reset();
    SetConfig(ObsConfig{});
  }
};

TEST_F(RecorderTest, RingRoundsCapacityToPowerOfTwo) {
  EXPECT_EQ(EventRing(1000).capacity(), 1024u);
  EXPECT_EQ(EventRing(1024).capacity(), 1024u);
  EXPECT_EQ(EventRing(1025).capacity(), 2048u);
  EXPECT_EQ(EventRing(1).capacity(), 1024u);  // Floor.
}

TEST_F(RecorderTest, RingDropsNewestWhenFullAndKeepsPrefix) {
  EventRing ring(1024);
  const size_t capacity = ring.capacity();
  for (size_t i = 0; i < capacity + 5; ++i) {
    TraceEvent e;
    e.arg0 = static_cast<int64_t>(i);
    ring.TryPush(e);
  }
  EXPECT_EQ(ring.dropped(), 5);
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.DrainInto(out), capacity);
  ASSERT_EQ(out.size(), capacity);
  // Drop-newest: the drained stream is exactly the first `capacity`
  // pushes, in push order — never a hole in the middle.
  for (size_t i = 0; i < capacity; ++i) {
    EXPECT_EQ(out[i].arg0, static_cast<int64_t>(i));
  }
  // Slots freed by the drain accept events again.
  TraceEvent e;
  e.arg0 = 777;
  EXPECT_TRUE(ring.TryPush(e));
  out.clear();
  ASSERT_EQ(ring.DrainInto(out), 1u);
  EXPECT_EQ(out[0].arg0, 777);
}

TEST_F(RecorderTest, InterningIsStableAndAuditIdsAreFixed) {
  auto& recorder = FlightRecorder::Global();
  const uint16_t a = recorder.InternName("test.intern.a");
  EXPECT_EQ(recorder.InternName("test.intern.a"), a);
  EXPECT_NE(recorder.InternName("test.intern.b"), a);
  // The constructor pre-interns the audit names at fixed ids; re-interning
  // them must return those ids, and names() must resolve them.
  EXPECT_EQ(recorder.InternName("audit.u2e_candidates"),
            kAuditU2eCandidatesNameId);
  EXPECT_EQ(recorder.InternName("audit.u2e_candidate"),
            kAuditU2eCandidateNameId);
  EXPECT_EQ(recorder.InternName("audit.e2e_disclosure"),
            kAuditE2eDisclosureNameId);
  EXPECT_EQ(recorder.InternName("audit.budget_spend"),
            kAuditBudgetSpendNameId);
  const std::vector<std::string> names = recorder.names();
  ASSERT_GT(names.size(), kAuditBudgetSpendNameId);
  EXPECT_EQ(names[kAuditE2eDisclosureNameId], "audit.e2e_disclosure");
}

TEST_F(RecorderTest, DisabledEmissionIsANoOp) {
  ObsConfig config;
  config.enabled = true;
  config.recorder = false;
  SetConfig(config);
  AuditU2eCandidates(1, 5, 0.7);
  AuditE2eDisclosure(1, 2, 0.5, true, AuditFilter::kDirectEval);
  AuditBudgetSpend(1, 0.1, true);
  EmitInstant(0);
  EmitCounter(0, 42);
  EmitSpanAt(0, 10, 20);
  { TimedEvent span(0); }
  EXPECT_TRUE(FlightRecorder::Global().Drain().empty());
}

TEST_F(RecorderTest, DrainSortsByTimestamp) {
  auto& recorder = FlightRecorder::Global();
  const uint16_t id = recorder.InternName("test.sort");
  for (const uint64_t ts : {uint64_t{50}, uint64_t{30}, uint64_t{90}}) {
    TraceEvent e;
    e.name_id = id;
    e.type = static_cast<uint8_t>(EventType::kInstant);
    recorder.EmitAt(ts, e);
  }
  const std::vector<TraceEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ts_ns, 30u);
  EXPECT_EQ(events[1].ts_ns, 50u);
  EXPECT_EQ(events[2].ts_ns, 90u);
}

TEST_F(RecorderTest, DetailPackingRoundTrips) {
  for (const bool accepted : {false, true}) {
    for (const AuditFilter filter :
         {AuditFilter::kUnknown, AuditFilter::kAlphaBandAccept,
          AuditFilter::kDirectEval}) {
      const uint8_t detail = PackDisclosureDetail(accepted, filter);
      EXPECT_EQ(DisclosureAccepted(detail), accepted);
      EXPECT_EQ(DisclosureFilter(detail), filter);
    }
  }
}

TEST_F(RecorderTest, ChromeExportStructure) {
  // A synthetic stream exercises every phase mapping without touching the
  // global recorder.
  const std::vector<std::string> names = {"span", "tick", "load", "audit"};
  std::vector<TraceEvent> events(5);
  events[0] = {.ts_ns = 2000, .name_id = 0,
               .type = static_cast<uint8_t>(EventType::kSpanBegin), .tid = 1};
  events[1] = {.ts_ns = 2500, .name_id = 1,
               .type = static_cast<uint8_t>(EventType::kInstant), .tid = 1};
  events[2] = {.ts_ns = 3000, .arg0 = 7, .name_id = 2,
               .type = static_cast<uint8_t>(EventType::kCounter), .tid = 2};
  events[3] = {.ts_ns = 3500, .arg0 = 3, .arg1 = 9, .value = 0.25,
               .name_id = 3,
               .type = static_cast<uint8_t>(EventType::kAuditDisclosure),
               .detail = PackDisclosureDetail(true,
                                              AuditFilter::kAlphaBandAccept),
               .tid = 1};
  events[4] = {.ts_ns = 4000, .name_id = 0,
               .type = static_cast<uint8_t>(EventType::kSpanEnd), .tid = 1};
  const std::string json = ExportChromeTrace(events, names);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Timestamps rebase to the earliest event: 2000ns -> 0us.
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
  // The disclosure payload survives as args.
  EXPECT_NE(json.find("\"filter\":\"alpha_band\""), std::string::npos);
  EXPECT_NE(json.find("\"accepted\":true"), std::string::npos);
}

TEST_F(RecorderTest, MultithreadedEmissionIsExact) {
  constexpr int kThreads = 4;
  constexpr int kTasks = 64;
  constexpr int kEventsPerTask = 500;
  auto& recorder = FlightRecorder::Global();
  const uint16_t id = recorder.InternName("test.mt");
  {
    runtime::ThreadPool pool(kThreads);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([id, t] {
        for (int i = 0; i < kEventsPerTask; ++i) {
          EmitInstant(id, int64_t{t} * kEventsPerTask + i);
        }
      });
    }
    // Pool destructor drains the queue.
  }
  const std::vector<TraceEvent> events = recorder.Drain();
  EXPECT_EQ(recorder.dropped(), 0);
  EXPECT_EQ(events.size(), size_t{kTasks} * kEventsPerTask);
  // Every payload arrived exactly once.
  std::vector<bool> seen(size_t{kTasks} * kEventsPerTask, false);
  for (const TraceEvent& e : events) {
    ASSERT_GE(e.arg0, 0);
    ASSERT_LT(e.arg0, static_cast<int64_t>(seen.size()));
    EXPECT_FALSE(seen[static_cast<size_t>(e.arg0)]);
    seen[static_cast<size_t>(e.arg0)] = true;
  }
}

TEST_F(RecorderTest, BudgetSpendsAreAudited) {
  privacy::BudgetLedger ledger(1.0);
  ledger.set_audit_owner(7);
  EXPECT_TRUE(ledger.Spend(0.4).ok());
  EXPECT_TRUE(ledger.Spend(0.4).ok());
  EXPECT_FALSE(ledger.Spend(0.4).ok());
  const std::vector<TraceEvent> events = FlightRecorder::Global().Drain();
  const AuditTotals totals = SummarizeAudit(events);
  EXPECT_EQ(totals.budget_spends, 3);
  EXPECT_EQ(totals.budget_refused, 1);
  EXPECT_NEAR(totals.epsilon_spent, 0.8, 1e-12);
  for (const TraceEvent& e : events) {
    if (e.type == static_cast<uint8_t>(EventType::kAuditBudget)) {
      EXPECT_EQ(e.arg0, 7);
    }
  }
}

// ---- Against a real engine run ----------------------------------------

assign::Workload SmallWorkload(const privacy::PrivacyParams& privacy_level) {
  data::WorkloadConfig wconfig;
  wconfig.num_workers = 800;
  wconfig.num_tasks = 48;
  stats::Rng rng(977);
  assign::Workload workload =
      data::MakeUniformWorkload(data::BeijingRegion(), wconfig, rng);
  data::PerturbWorkload(privacy_level, privacy_level, rng, workload);
  return workload;
}

assign::MatchResult RunEngine(const assign::Workload& workload,
                              const reachability::AnalyticalModel& model,
                              const privacy::PrivacyParams& privacy_level,
                              stats::Rng& rng) {
  assign::EnginePolicy policy;
  policy.u2u_model = &model;
  policy.u2e_model = &model;
  policy.alpha = 0.1;
  policy.beta = 0.25;
  policy.rank = assign::RankStrategy::kProbability;
  policy.worker_params = privacy_level;
  policy.task_params = privacy_level;
  assign::ScGuardEngine engine(std::move(policy));
  return engine.Run(workload, rng);
}

// The tentpole's reconciliation contract: the audit trail's disclosure
// totals equal the engine's own metrics counters, exactly.
TEST_F(RecorderTest, AuditTrailReconcilesWithEngineMetrics) {
  const privacy::PrivacyParams privacy_level{0.7, 800.0};
  const reachability::AnalyticalModel model(privacy_level);
  const assign::Workload workload = SmallWorkload(privacy_level);
  stats::Rng rng(42);
  const assign::MatchResult run =
      RunEngine(workload, model, privacy_level, rng);

  auto& recorder = FlightRecorder::Global();
  const std::vector<TraceEvent> events = recorder.Drain();
  EXPECT_EQ(recorder.dropped(), 0);
  const AuditTotals totals = SummarizeAudit(events);
  EXPECT_GT(totals.u2e_rankings, 0);
  EXPECT_LE(totals.u2e_rankings, run.metrics.num_tasks);
  EXPECT_EQ(totals.u2e_candidates_sum, run.metrics.candidates_sum);
  EXPECT_EQ(totals.e2e_disclosures, run.metrics.requester_to_worker_msgs);
  EXPECT_EQ(totals.u2e_candidate_lines, 0);  // Full audit was off.
  // Every disclosure names a real task and worker and attributes a filter.
  for (const TraceEvent& e : events) {
    if (e.type != static_cast<uint8_t>(EventType::kAuditDisclosure)) continue;
    EXPECT_GE(e.arg0, 0);
    EXPECT_LT(e.arg0, run.metrics.num_tasks);
    EXPECT_GE(e.arg1, 0);
    EXPECT_LT(e.arg1, run.metrics.num_workers);
    EXPECT_NE(DisclosureFilter(e.detail), AuditFilter::kUnknown);
  }
  // And the JSONL export carries a summary line that agrees.
  const std::string jsonl = ExportAuditJsonl(events, recorder.names(), 0);
  EXPECT_NE(jsonl.find("\"type\":\"summary\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"e2e_disclosures\":" +
                       std::to_string(totals.e2e_disclosures)),
            std::string::npos);
}

// Full-audit mode adds one line per ranked candidate; the aggregate and
// the per-candidate lines must agree.
TEST_F(RecorderTest, FullAuditEmitsPerCandidateLines) {
  ObsConfig config;
  config.enabled = true;
  config.recorder = true;
  config.audit_full = true;
  SetConfig(config);
  const privacy::PrivacyParams privacy_level{0.7, 800.0};
  const reachability::AnalyticalModel model(privacy_level);
  const assign::Workload workload = SmallWorkload(privacy_level);
  stats::Rng rng(42);
  const assign::MatchResult run =
      RunEngine(workload, model, privacy_level, rng);

  const AuditTotals totals =
      SummarizeAudit(FlightRecorder::Global().Drain());
  EXPECT_GT(totals.u2e_candidate_lines, 0);
  EXPECT_EQ(totals.u2e_candidate_lines, totals.u2e_candidates_sum);
  EXPECT_EQ(totals.u2e_candidates_sum, run.metrics.candidates_sum);
}

// Acceptance criterion: recording on vs off changes nothing — not the
// assignments, not the metrics, not the RNG stream position.
TEST_F(RecorderTest, ResultsBitIdenticalWithRecorderOnAndOff) {
  const privacy::PrivacyParams privacy_level{0.7, 800.0};
  const reachability::AnalyticalModel model(privacy_level);
  const assign::Workload workload = SmallWorkload(privacy_level);

  SetConfig(ObsConfig{});  // Everything off.
  stats::Rng rng_off(42);
  const assign::MatchResult off =
      RunEngine(workload, model, privacy_level, rng_off);

  ObsConfig config;
  config.enabled = true;
  config.recorder = true;
  config.audit_full = true;  // Even the most verbose mode.
  SetConfig(config);
  stats::Rng rng_on(42);
  const assign::MatchResult on =
      RunEngine(workload, model, privacy_level, rng_on);

  ASSERT_EQ(off.assignments.size(), on.assignments.size());
  for (size_t i = 0; i < off.assignments.size(); ++i) {
    EXPECT_EQ(off.assignments[i].task_id, on.assignments[i].task_id);
    EXPECT_EQ(off.assignments[i].worker_id, on.assignments[i].worker_id);
    EXPECT_EQ(off.assignments[i].travel_m, on.assignments[i].travel_m);
  }
  EXPECT_EQ(off.metrics.assigned_tasks, on.metrics.assigned_tasks);
  EXPECT_EQ(off.metrics.accepted_assignments, on.metrics.accepted_assignments);
  EXPECT_EQ(off.metrics.travel_sum_m, on.metrics.travel_sum_m);
  EXPECT_EQ(off.metrics.candidates_sum, on.metrics.candidates_sum);
  EXPECT_EQ(off.metrics.false_hits, on.metrics.false_hits);
  EXPECT_EQ(off.metrics.false_dismissals, on.metrics.false_dismissals);
  EXPECT_EQ(off.metrics.requester_to_worker_msgs,
            on.metrics.requester_to_worker_msgs);
  // Identical stream position afterwards: recording consumed no draws.
  EXPECT_EQ(rng_off(), rng_on());
}

// Event counts are a pure function of (config, workload, seed): two
// identical instrumented runs produce the same number of events of every
// type and name.
TEST_F(RecorderTest, EventCountsAreDeterministic) {
  const privacy::PrivacyParams privacy_level{0.7, 800.0};
  const reachability::AnalyticalModel model(privacy_level);
  const assign::Workload workload = SmallWorkload(privacy_level);

  const auto count_events = [&] {
    FlightRecorder::Global().Reset();
    stats::Rng rng(42);
    RunEngine(workload, model, privacy_level, rng);
    std::map<std::pair<uint16_t, uint8_t>, int64_t> counts;
    for (const TraceEvent& e : FlightRecorder::Global().Drain()) {
      ++counts[{e.name_id, e.type}];
    }
    return counts;
  };
  const auto first = count_events();
  const auto second = count_events();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace scguard::obs
