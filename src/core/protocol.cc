#include "core/protocol.h"

#include <algorithm>

#include "common/check.h"
#include "privacy/geo_ind.h"

namespace scguard::core {

// ---------------------------------------------------------------- Worker

WorkerDevice::WorkerDevice(int64_t id, geo::Point true_location,
                           double reach_radius_m,
                           const privacy::PrivacyParams& params)
    : id_(id),
      true_location_(true_location),
      reach_radius_m_(reach_radius_m),
      params_(params) {
  SCGUARD_CHECK(reach_radius_m > 0.0);
  SCGUARD_CHECK(params.Validate().ok());
}

WorkerRegistration WorkerDevice::Register(stats::Rng& rng) {
  const privacy::GeoIndMechanism mechanism(params_);
  return {id_, mechanism.Perturb(true_location_, rng), reach_radius_m_};
}

bool WorkerDevice::HandleTaskOffer(geo::Point exact_task_location) const {
  return geo::Distance(true_location_, exact_task_location) <= reach_radius_m_;
}

// ------------------------------------------------------------- Requester

RequesterDevice::RequesterDevice(int64_t task_id, geo::Point true_task_location,
                                 const privacy::PrivacyParams& params)
    : task_id_(task_id),
      true_task_location_(true_task_location),
      params_(params) {
  SCGUARD_CHECK(params.Validate().ok());
}

TaskRequest RequesterDevice::Submit(stats::Rng& rng) {
  const privacy::GeoIndMechanism mechanism(params_);
  return {task_id_, mechanism.Perturb(true_task_location_, rng)};
}

std::vector<CandidateWorker> RequesterDevice::RankCandidates(
    const std::vector<CandidateWorker>& candidates,
    const reachability::ReachabilityModel& model, double beta) const {
  std::vector<std::pair<double, const CandidateWorker*>> scored;
  scored.reserve(candidates.size());
  for (const auto& c : candidates) {
    const double score = model.ProbReachable(
        reachability::Stage::kU2E,
        geo::Distance(c.noisy_location, true_task_location_), c.reach_radius_m);
    if (score < beta) continue;  // Below the disclosure threshold.
    scored.emplace_back(score, &c);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second->worker_id < b.second->worker_id;
  });
  std::vector<CandidateWorker> plan;
  plan.reserve(scored.size());
  for (const auto& [score, c] : scored) plan.push_back(*c);
  return plan;
}

// ---------------------------------------------------------------- Server

TaskingServer::TaskingServer(const reachability::ReachabilityModel* model,
                             double alpha,
                             reachability::KernelOptions kernel)
    : model_(model), alpha_(alpha), kernel_(kernel) {
  SCGUARD_CHECK(model != nullptr);
  SCGUARD_CHECK(alpha > 0.0 && alpha <= 1.0);
}

void TaskingServer::RegisterWorker(const WorkerRegistration& registration) {
  workers_.push_back(registration);
  assigned_.push_back(false);
}

std::vector<CandidateWorker> TaskingServer::FindCandidates(
    const TaskRequest& request) const {
  if (kernel_.alpha_thresholds && !thresholds_.has_value()) {
    thresholds_.emplace(model_, reachability::Stage::kU2U, alpha_,
                        kernel_.threshold_margin);
  }
  std::vector<CandidateWorker> candidates;
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (assigned_[i]) continue;
    const auto& w = workers_[i];
    const double d_obs =
        geo::Distance(w.noisy_location, request.noisy_location);
    const bool candidate =
        thresholds_.has_value()
            ? thresholds_->IsCandidate(d_obs, w.reach_radius_m)
            : model_->ProbReachable(reachability::Stage::kU2U, d_obs,
                                    w.reach_radius_m) >= alpha_;
    if (candidate) {
      candidates.push_back({w.worker_id, w.noisy_location, w.reach_radius_m});
    }
  }
  return candidates;
}

void TaskingServer::MarkAssigned(int64_t worker_id) {
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].worker_id == worker_id) {
      assigned_[i] = true;
      return;
    }
  }
  SCGUARD_CHECK(false && "unknown worker id");
}

size_t TaskingServer::available_workers() const {
  size_t n = 0;
  for (bool a : assigned_) n += a ? 0 : 1;
  return n;
}

// ----------------------------------------------------------- Coordinator

ProtocolCoordinator::ProtocolCoordinator(
    TaskingServer* server, const reachability::ReachabilityModel* u2e_model,
    double beta)
    : server_(server), u2e_model_(u2e_model), beta_(beta) {
  SCGUARD_CHECK(server != nullptr && u2e_model != nullptr);
  SCGUARD_CHECK(beta >= 0.0 && beta <= 1.0);
}

TaskOutcome ProtocolCoordinator::AssignTask(
    const RequesterDevice& requester, const TaskRequest& request,
    const std::vector<WorkerDevice>& workers) {
  TaskOutcome outcome;
  outcome.task_id = requester.task_id();
  trace_.task_requests += 1;

  // U2U on the server over perturbed data only.
  const std::vector<CandidateWorker> candidates =
      server_->FindCandidates(request);
  trace_.candidate_lists_sent += 1;
  outcome.candidates = static_cast<int64_t>(candidates.size());
  if (candidates.empty()) return outcome;

  // U2E on the requester's device (exact task location never leaves it
  // until the targeted disclosure below).
  const std::vector<CandidateWorker> plan =
      requester.RankCandidates(candidates, *u2e_model_, beta_);

  // E2E: disclose the task location to one worker at a time.
  for (const CandidateWorker& c : plan) {
    SCGUARD_CHECK(c.worker_id >= 0 &&
                  static_cast<size_t>(c.worker_id) < workers.size());
    const WorkerDevice& device = workers[static_cast<size_t>(c.worker_id)];
    trace_.task_location_disclosures += 1;
    outcome.disclosures += 1;
    if (device.HandleTaskOffer(requester.exact_task_location())) {
      server_->MarkAssigned(c.worker_id);
      outcome.assigned_worker = c.worker_id;
      return outcome;
    }
    trace_.rejections += 1;
  }
  return outcome;
}

}  // namespace scguard::core
