#include "reachability/empirical_table.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.h"
#include "common/str_format.h"

namespace scguard::reachability {

EmpiricalTable::EmpiricalTable(double bucket_width_m, int num_buckets,
                               double true_max_m, int true_bins)
    : bucket_width_(bucket_width_m), true_max_(true_max_m), true_bins_(true_bins) {
  SCGUARD_CHECK(bucket_width_m > 0.0 && num_buckets >= 1);
  SCGUARD_CHECK(true_max_m > 0.0 && true_bins >= 1);
  buckets_.reserve(static_cast<size_t>(num_buckets));
  for (int i = 0; i < num_buckets; ++i) {
    buckets_.emplace_back(0.0, true_max_m, true_bins);
  }
}

int EmpiricalTable::BucketIndex(double d_obs) const {
  SCGUARD_DCHECK(d_obs >= 0.0);
  const auto idx = static_cast<long>(d_obs / bucket_width_);
  return static_cast<int>(
      std::min<long>(idx, static_cast<long>(buckets_.size()) - 1));
}

void EmpiricalTable::Add(double d_true, double d_obs) {
  buckets_[static_cast<size_t>(BucketIndex(d_obs))].Add(d_true);
  ++total_samples_;
  nearest_populated_.clear();
}

double EmpiricalTable::ProbBelow(double d_obs, double threshold) const {
  const int idx = BucketIndex(d_obs);
  const auto& bucket = buckets_[static_cast<size_t>(idx)];
  if (bucket.total_count() > 0) return bucket.FractionBelow(threshold);
  // Sparse-data fallback: redirect to the nearest populated bucket and
  // shift the threshold by the difference of bucket centers, so a query in
  // an empty far bucket borrows the shape of its neighbor at the right
  // distance offset.
  int cand = -1;
  if (!nearest_populated_.empty()) {
    // O(1) via the precomputed index (WarmQueryCache).
    cand = nearest_populated_[static_cast<size_t>(idx)];
  } else {
    // Not frozen yet: walk outward, preferring the lower bucket on ties
    // (the same order the precomputed index encodes).
    for (int delta = 1; cand < 0 && delta < num_buckets(); ++delta) {
      for (int c : {idx - delta, idx + delta}) {
        if (c < 0 || c >= num_buckets()) continue;
        if (buckets_[static_cast<size_t>(c)].total_count() == 0) continue;
        cand = c;
        break;
      }
    }
  }
  if (cand < 0) return 0.0;  // Entirely empty table.
  const double center_shift = static_cast<double>(cand - idx) * bucket_width_;
  return buckets_[static_cast<size_t>(cand)].FractionBelow(threshold +
                                                           center_shift);
}

Status EmpiricalTable::Merge(const EmpiricalTable& other) {
  if (other.bucket_width_ != bucket_width_ ||
      other.buckets_.size() != buckets_.size() ||
      other.true_max_ != true_max_ || other.true_bins_ != true_bins_) {
    return Status::InvalidArgument("empirical table geometries differ");
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    SCGUARD_RETURN_NOT_OK(buckets_[i].Merge(other.buckets_[i]));
  }
  total_samples_ += other.total_samples_;
  nearest_populated_.clear();
  return Status::OK();
}

void EmpiricalTable::WarmQueryCache() const {
  for (const auto& b : buckets_) {
    // FractionBelow(lo) builds the prefix sums; empty buckets never build
    // them (every query path early-returns), so skip those.
    if (b.total_count() > 0) (void)b.FractionBelow(b.lo());
  }
  // Nearest-populated index for the sparse-data fallback: two sweeps give
  // the closest populated bucket on each side; ties prefer the lower index
  // like the lazy outward walk (which tries idx - delta first).
  const int n = num_buckets();
  nearest_populated_.assign(static_cast<size_t>(n), -1);
  int prev = -1;  // Last populated bucket at or before i.
  for (int i = 0; i < n; ++i) {
    if (buckets_[static_cast<size_t>(i)].total_count() > 0) prev = i;
    nearest_populated_[static_cast<size_t>(i)] = prev;
  }
  int next = -1;  // First populated bucket at or after i.
  for (int i = n - 1; i >= 0; --i) {
    if (buckets_[static_cast<size_t>(i)].total_count() > 0) next = i;
    const int before = nearest_populated_[static_cast<size_t>(i)];
    if (before < 0) {
      nearest_populated_[static_cast<size_t>(i)] = next;
    } else if (next >= 0 && next - i < i - before) {
      nearest_populated_[static_cast<size_t>(i)] = next;
    }
  }
}

const stats::Histogram& EmpiricalTable::bucket(int index) const {
  SCGUARD_CHECK(index >= 0 && index < num_buckets());
  return buckets_[static_cast<size_t>(index)];
}

void EmpiricalTable::Serialize(std::ostream& os) const {
  os << "empirical-table-v1 " << bucket_width_ << ' ' << buckets_.size() << ' '
     << true_max_ << ' ' << true_bins_ << ' ' << total_samples_ << '\n';
  for (const auto& b : buckets_) {
    b.Serialize(os);
    os << '\n';
  }
}

Result<EmpiricalTable> EmpiricalTable::Deserialize(std::istream& is) {
  std::string magic;
  double width, true_max;
  size_t n;
  int true_bins;
  uint64_t total;
  if (!(is >> magic >> width >> n >> true_max >> true_bins >> total) ||
      magic != "empirical-table-v1") {
    return Status::IOError("bad empirical table header");
  }
  if (!(width > 0.0) || n == 0 || n > (1u << 20) || !(true_max > 0.0) ||
      true_bins < 1) {
    return Status::IOError("bad empirical table geometry");
  }
  EmpiricalTable table(width, static_cast<int>(n), true_max, true_bins);
  table.total_samples_ = total;
  table.buckets_.clear();
  for (size_t i = 0; i < n; ++i) {
    SCGUARD_ASSIGN_OR_RETURN(stats::Histogram h, stats::Histogram::Deserialize(is));
    table.buckets_.push_back(std::move(h));
  }
  return table;
}

}  // namespace scguard::reachability
