#ifndef SCGUARD_STATS_MARCUM_Q_H_
#define SCGUARD_STATS_MARCUM_Q_H_

namespace scguard::stats {

/// CDF at `x` of a noncentral chi-squared variable with `k` degrees of
/// freedom and noncentrality `lambda` (both >= 0, k > 0).
///
/// Evaluated by the Poisson-weighted central-chi-squared mixture, summed
/// outward from the Poisson mode so no term underflows prematurely; this is
/// the backbone of the analytical reachability model (the squared distance
/// between two bivariate-normal-approximated locations is a scaled
/// noncentral chi-squared with k = 2).
double NoncentralChiSquaredCdf(double k, double lambda, double x);

/// Marcum Q-function of order 1: Q1(a, b) = Pr(Rice(a, 1) > b).
/// The Rice CDF used in the U2E stage is 1 - Q1(nu/sigma, x/sigma).
double MarcumQ1(double a, double b);

}  // namespace scguard::stats

#endif  // SCGUARD_STATS_MARCUM_Q_H_
