#ifndef SCGUARD_OBS_RECORDER_H_
#define SCGUARD_OBS_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs_config.h"

namespace scguard::obs {

/// The flight recorder (DESIGN.md section 12): event-level tracing on top
/// of the aggregate-only metrics/tracer layer. Every instrumented thread
/// appends fixed-size binary events to its own lock-free SPSC ring; a
/// drain (bench exit, test assertion) collects all rings into one
/// timestamp-sorted stream that exports to Chrome trace-event JSON (opens
/// directly in ui.perfetto.dev) and to the privacy-audit JSONL.
///
/// Contract mirrors the metrics layer's (obs_config.h): with the recorder
/// disabled every emit is one relaxed atomic load plus a predicted-not-taken
/// branch; enabled, emission is one clock read plus one ring store — no
/// locks, no allocation after a thread's first event — and never perturbs
/// RNG streams or assignment decisions. Event *counts* are a pure function
/// of (config, workload, seed); only timestamps and the thread attribution
/// vary run to run.

/// What one event records. Kept to exactly 40 bytes so a default ring
/// (1<<17 slots) costs ~5 MB per thread.
enum class EventType : uint8_t {
  kSpanBegin = 0,        ///< Timed region opens (Chrome "B").
  kSpanEnd = 1,          ///< Timed region closes (Chrome "E").
  kInstant = 2,          ///< Point event (Chrome "i").
  kCounter = 3,          ///< Counter sample, value in `arg0` (Chrome "C").
  kAuditCandidates = 4,  ///< U2E: task `arg0` saw `arg1` noisy worker
                         ///< locations at privacy level `value` (epsilon).
  kAuditCandidate = 5,   ///< U2E, full-audit mode only: worker `arg1`'s
                         ///< noisy location entered task `arg0`'s ranking
                         ///< with score `value`.
  kAuditDisclosure = 6,  ///< E2E: task `arg0`'s exact location disclosed to
                         ///< worker `arg1` (score `value`; `detail` packs
                         ///< accepted flag + admitting filter).
  kAuditBudget = 7,      ///< BudgetLedger spend: owner `arg0`, epsilon
                         ///< `value`, `detail` 1 = granted, 0 = refused.
};

/// Which U2U filter admitted the candidate a disclosure went to
/// (DESIGN.md section 8): inside the certain-accept band of the inverted
/// alpha threshold, or via a direct model evaluation in the uncertain band.
/// kUnknown when the call site cannot attribute (protocol-party plans).
enum class AuditFilter : uint8_t {
  kUnknown = 0,
  kAlphaBandAccept = 1,
  kDirectEval = 2,
};

struct TraceEvent {
  uint64_t ts_ns = 0;   ///< steady_clock nanoseconds since epoch.
  int64_t arg0 = 0;     ///< Task id / counter value / ledger owner.
  int64_t arg1 = 0;     ///< Worker id / candidate count.
  double value = 0.0;   ///< Score / epsilon / counter sample.
  uint16_t name_id = 0; ///< Interned event name (FlightRecorder::names()).
  uint8_t type = 0;     ///< EventType.
  uint8_t detail = 0;   ///< Type-specific: accepted/filter/granted packing.
  uint32_t tid = 0;     ///< Recorder-assigned thread index.
};
static_assert(sizeof(TraceEvent) == 40, "keep events cache-friendly");

/// Packing of TraceEvent::detail for kAuditDisclosure events.
inline uint8_t PackDisclosureDetail(bool accepted, AuditFilter filter) {
  return static_cast<uint8_t>((accepted ? 1u : 0u) |
                              (static_cast<uint32_t>(filter) << 1));
}
inline bool DisclosureAccepted(uint8_t detail) { return (detail & 1u) != 0; }
inline AuditFilter DisclosureFilter(uint8_t detail) {
  return static_cast<AuditFilter>((detail >> 1) & 0x3u);
}

/// Sentinel for audit emissions from call sites with no task context.
inline constexpr int64_t kAuditNoTask = -1;

/// A single-producer single-consumer ring of TraceEvents. The producer is
/// the owning thread (TryPush); the consumer is whoever drains (DrainInto).
/// Capacity is fixed at construction (rounded up to a power of two). When
/// the ring is full the *new* event is dropped and counted — earlier events
/// are never overwritten, so a drained stream is always a prefix-correct
/// record and span begin/end pairs stay balanced up to the first drop
/// (DESIGN.md section 12 drop policy).
class EventRing {
 public:
  explicit EventRing(size_t min_capacity);
  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Producer side. False (and one dropped count) when full.
  bool TryPush(const TraceEvent& e) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= buf_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    buf_[head & mask_] = e;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: appends all pending events to `out` in push order and
  /// frees their slots. Returns the number drained.
  size_t DrainInto(std::vector<TraceEvent>& out);

  int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void reset_dropped() { dropped_.store(0, std::memory_order_relaxed); }
  size_t capacity() const { return buf_.size(); }

 private:
  std::vector<TraceEvent> buf_;
  uint64_t mask_;
  alignas(64) std::atomic<uint64_t> head_{0};  ///< Next write slot.
  alignas(64) std::atomic<uint64_t> tail_{0};  ///< Next read slot.
  std::atomic<int64_t> dropped_{0};
};

/// Process-wide recorder: the name-intern table plus the registry of every
/// thread's ring. Emit resolves the calling thread's ring through a
/// thread_local handle (one registry mutex acquisition per thread lifetime,
/// none per event). Rings are registered forever — a dead thread's pending
/// events stay drainable.
class FlightRecorder {
 public:
  FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The instance all in-tree emission uses. Never destroyed.
  static FlightRecorder& Global();

  /// Interns `name`, returning its stable 16-bit id. Mutex-protected —
  /// call once per site (function-local static / constructor), never per
  /// event. Re-interning an existing name returns the existing id.
  uint16_t InternName(std::string_view name);

  /// The intern table, indexed by name id.
  std::vector<std::string> names() const;

  /// Fills ts/tid and pushes onto the calling thread's ring. The gate
  /// (RecorderEnabled) lives in the inline helpers below, not here.
  void Emit(TraceEvent e);
  /// As Emit with an explicit timestamp (callers that already read the
  /// clock for RunMetrics reuse the same time point).
  void EmitAt(uint64_t ts_ns, TraceEvent e);

  /// Moves every ring's pending events into one stream sorted by
  /// (ts_ns, tid). Emissions racing a drain land in the next one.
  std::vector<TraceEvent> Drain();

  /// Total events dropped by full rings since the last Reset.
  int64_t dropped() const;

  /// Discards pending events and zeroes drop counts. Interned names and
  /// registered rings survive (ids must stay stable for the process).
  void Reset();

  /// Capacity for rings created after this call (existing rings keep
  /// theirs). Rounded up to a power of two; min 1024.
  void set_ring_capacity(size_t capacity);
  size_t ring_capacity() const;

  /// Number of thread rings ever registered.
  size_t num_rings() const;

  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  EventRing* RingForThisThread();

  mutable std::mutex mu_;
  std::vector<std::string> names_;
  std::vector<std::shared_ptr<EventRing>> rings_;  ///< Index == tid.
  size_t ring_capacity_ = size_t{1} << 17;
};

/// Well-known interned ids, fixed by FlightRecorder's constructor so audit
/// emission needs no lookup. Order must match the interning sequence in
/// recorder.cc.
inline constexpr uint16_t kAuditU2eCandidatesNameId = 0;
inline constexpr uint16_t kAuditU2eCandidateNameId = 1;
inline constexpr uint16_t kAuditE2eDisclosureNameId = 2;
inline constexpr uint16_t kAuditBudgetSpendNameId = 3;

// ---- Hot-path emission helpers (all no-ops while the recorder is off) --

/// One U2E ranking: `count` candidate noisy locations (perturbed at
/// `epsilon`) were disclosed to the requester of `task_id`.
inline void AuditU2eCandidates(int64_t task_id, int64_t count,
                               double epsilon) {
  if (!RecorderEnabled()) return;
  FlightRecorder::Global().Emit(
      {.arg0 = task_id, .arg1 = count, .value = epsilon,
       .name_id = kAuditU2eCandidatesNameId,
       .type = static_cast<uint8_t>(EventType::kAuditCandidates)});
}

/// Full-audit mode: one ranked candidate (worker `worker_id`, score
/// `score`) of `task_id`. Callers must additionally check
/// AuditFullEnabled(); this helper only gates on the recorder.
inline void AuditU2eCandidate(int64_t task_id, int64_t worker_id,
                              double score) {
  if (!RecorderEnabled()) return;
  FlightRecorder::Global().Emit(
      {.arg0 = task_id, .arg1 = worker_id, .value = score,
       .name_id = kAuditU2eCandidateNameId,
       .type = static_cast<uint8_t>(EventType::kAuditCandidate)});
}

/// One E2E contact: the exact location of `task_id` was disclosed to
/// `worker_id` (the protocol's only task-location disclosure point).
inline void AuditE2eDisclosure(int64_t task_id, int64_t worker_id,
                               double score, bool accepted,
                               AuditFilter filter) {
  if (!RecorderEnabled()) return;
  FlightRecorder::Global().Emit(
      {.arg0 = task_id, .arg1 = worker_id, .value = score,
       .name_id = kAuditE2eDisclosureNameId,
       .type = static_cast<uint8_t>(EventType::kAuditDisclosure),
       .detail = PackDisclosureDetail(accepted, filter)});
}

/// One BudgetLedger::Spend outcome.
inline void AuditBudgetSpend(int64_t owner, double epsilon, bool granted) {
  if (!RecorderEnabled()) return;
  FlightRecorder::Global().Emit(
      {.arg0 = owner, .value = epsilon,
       .name_id = kAuditBudgetSpendNameId,
       .type = static_cast<uint8_t>(EventType::kAuditBudget),
       .detail = granted ? uint8_t{1} : uint8_t{0}});
}

/// Span pair with explicit timestamps, for callers that already read the
/// clock (the engine's per-stage RunMetrics timings).
inline void EmitSpanAt(uint16_t name_id, uint64_t begin_ns, uint64_t end_ns) {
  if (!RecorderEnabled()) return;
  auto& recorder = FlightRecorder::Global();
  recorder.EmitAt(begin_ns,
                  {.name_id = name_id,
                   .type = static_cast<uint8_t>(EventType::kSpanBegin)});
  recorder.EmitAt(end_ns, {.name_id = name_id,
                           .type = static_cast<uint8_t>(EventType::kSpanEnd)});
}

inline void EmitInstant(uint16_t name_id, int64_t arg0 = 0, double value = 0.0) {
  if (!RecorderEnabled()) return;
  FlightRecorder::Global().Emit(
      {.arg0 = arg0, .value = value, .name_id = name_id,
       .type = static_cast<uint8_t>(EventType::kInstant)});
}

inline void EmitCounter(uint16_t name_id, int64_t value) {
  if (!RecorderEnabled()) return;
  FlightRecorder::Global().Emit(
      {.arg0 = value, .name_id = name_id,
       .type = static_cast<uint8_t>(EventType::kCounter)});
}

/// RAII span with a pre-interned id — the per-task analog of obs::Span
/// (which aggregates *and* records but pays a string intern per
/// construction; this pays two clock reads and two ring stores, nothing
/// else). Gate captured at construction so begin/end stay paired across a
/// mid-scope toggle.
class TimedEvent {
 public:
  explicit TimedEvent(uint16_t name_id)
      : name_id_(name_id), active_(RecorderEnabled()) {
    if (!active_) return;
    FlightRecorder::Global().Emit(
        {.name_id = name_id_,
         .type = static_cast<uint8_t>(EventType::kSpanBegin)});
  }
  ~TimedEvent() {
    if (!active_) return;
    FlightRecorder::Global().Emit(
        {.name_id = name_id_,
         .type = static_cast<uint8_t>(EventType::kSpanEnd)});
  }
  TimedEvent(const TimedEvent&) = delete;
  TimedEvent& operator=(const TimedEvent&) = delete;

 private:
  uint16_t name_id_;
  bool active_;
};

}  // namespace scguard::obs

#endif  // SCGUARD_OBS_RECORDER_H_
