#ifndef SCGUARD_STATS_GAMMA_H_
#define SCGUARD_STATS_GAMMA_H_

namespace scguard::stats {

/// Regularized lower incomplete gamma P(s, x) = gamma(s, x) / Gamma(s),
/// s > 0, x >= 0. P(s, x) is the CDF at x of a Gamma(shape=s, scale=1)
/// variable; P(k/2, x/2) is the chi-squared CDF with k degrees of freedom.
double RegularizedGammaP(double s, double x);

/// Regularized upper incomplete gamma Q(s, x) = 1 - P(s, x).
double RegularizedGammaQ(double s, double x);

}  // namespace scguard::stats

#endif  // SCGUARD_STATS_GAMMA_H_
