# Empty compiler generated dependencies file for truncated_test.
# This may be replaced when dependencies are built.
