#ifndef SCGUARD_ASSIGN_SCGUARD_ENGINE_H_
#define SCGUARD_ASSIGN_SCGUARD_ENGINE_H_

#include <optional>
#include <string>

#include "assign/matcher.h"
#include "assign/stages/candidate_stage.h"
#include "assign/stages/rank_stage.h"
#include "index/pruning.h"
#include "privacy/privacy_params.h"
#include "reachability/kernel.h"
#include "reachability/model.h"

namespace scguard::assign {

/// Configuration of the privacy-aware three-stage protocol simulation.
///
/// Algorithm 1 (oblivious baseline) and Algorithm 2 (probability-based) are
/// the same protocol with different reachability models and thresholds:
///  * Oblivious-RR / Oblivious-RN: BinaryModel, rank random / nearest,
///    no beta threshold.
///  * Probabilistic-Model / Probabilistic-Data: AnalyticalModel /
///    EmpiricalModel, probability ranking, alpha & beta thresholds.
struct EnginePolicy {
  /// Model the server uses in U2U to build the candidate set. Not owned;
  /// must outlive the engine.
  const reachability::ReachabilityModel* u2u_model = nullptr;
  /// Model the requester uses in U2E to rank candidates (only consulted
  /// when rank == kProbability). Not owned.
  const reachability::ReachabilityModel* u2e_model = nullptr;

  /// U2U threshold alpha: a worker is a candidate iff
  /// Pr(reachable | d(w', t')) >= alpha. With BinaryModel any alpha in
  /// (0, 1] reproduces the oblivious d' <= R_w test.
  double alpha = 0.1;

  /// U2E threshold beta: the requester cancels the task when the best
  /// remaining candidate's reachability probability is < beta. 0 disables
  /// cancellation (exhaustive best-effort, Alg. 1 behaviour). Only applies
  /// to probability ranking.
  double beta = 0.0;
  BetaMode beta_mode = BetaMode::kEveryContact;

  RankStrategy rank = RankStrategy::kProbability;

  /// Redundant assignment (paper Sec. VII): the task needs K accepting
  /// workers; the requester keeps contacting candidates until K accept or
  /// the candidate set is exhausted.
  int redundancy_k = 1;

  /// Score the candidate sets against ground truth (U2U precision/recall
  /// and false-dismissal attribution). Observer-only bookkeeping — no
  /// protocol party could compute it — and the per-task O(workers) scan
  /// it needs dominates pruned runs, so throughput-oriented callers turn
  /// it off. Default on: tests and the figure benches report it.
  bool compute_accuracy_metrics = true;

  /// When set, the server prunes U2U with uncertainty-rectangle indexing
  /// (paper Sec. IV-C1) at this confidence gamma before evaluating
  /// probabilities.
  std::optional<double> pruning_gamma;
  index::PrunerBackend pruning_backend = index::PrunerBackend::kGrid;

  /// Privacy levels, needed to size the pruning rectangles. Must match the
  /// levels used to perturb the workload.
  privacy::PrivacyParams worker_params;
  privacy::PrivacyParams task_params;

  /// Evaluation-kernel knobs (DESIGN.md section 8). Defaults keep the
  /// exact threshold-inversion U2U filter on (bit-identical assignments,
  /// verified by tests/kernel_test.cc) and the bounded-error U2E LUT off.
  reachability::KernelOptions kernel;

  /// Parallel-scan and active-set knobs (DESIGN.md section 9). Defaults
  /// keep compaction on and the scan serial; thread-count invariance is
  /// held by tests/engine_parallel_test.cc.
  EngineRuntime runtime;

  /// Display name override; empty derives one from model + strategy.
  std::string name;
};

/// The SCGuard three-stage protocol (paper Fig. 2 / Table I), simulated
/// with exact bookkeeping of which party sees what:
///   U2U  server:    noisy worker + noisy task locations -> candidate set
///   U2E  requester: exact task + noisy worker locations -> ranked contacts
///   E2E  worker:    exact task location -> accept iff d(w, t) <= R_w
/// The engine implements Algorithms 1 and 2 of the paper depending on the
/// policy (see EnginePolicy). Since the stage-library refactor (DESIGN.md
/// section 10) it is a thin orchestrator: the three protocol stages live in
/// assign/stages/ (U2uCandidateStage, U2eRankStage, E2eContactStage) and the
/// engine contributes run setup, timing, and metric/obs accounting.
class ScGuardEngine final : public OnlineMatcher {
 public:
  /// Requires a U2U model; a U2E model is required for probability ranking.
  explicit ScGuardEngine(EnginePolicy policy);

  MatchResult Run(const Workload& workload, stats::Rng& rng) override;

  std::string name() const override;

  const EnginePolicy& policy() const { return policy_; }

 private:
  EnginePolicy policy_;
};

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_SCGUARD_ENGINE_H_
