#include "privacy/planar_laplace.h"

#include <cmath>

#include <algorithm>

#include "common/check.h"
#include "stats/lambert_w.h"
#include "stats/quadrature.h"

namespace scguard::privacy {

PlanarLaplace::PlanarLaplace(double unit_epsilon) : eps_(unit_epsilon) {
  SCGUARD_CHECK(unit_epsilon > 0.0);
}

double PlanarLaplace::Pdf(geo::Point z) const {
  return eps_ * eps_ / (2.0 * M_PI) * std::exp(-eps_ * z.Norm());
}

double PlanarLaplace::RadialCdf(double r0) const {
  if (r0 <= 0.0) return 0.0;
  const double t = eps_ * r0;
  return 1.0 - (1.0 + t) * std::exp(-t);
}

double PlanarLaplace::InverseRadialCdf(double p) const {
  SCGUARD_CHECK(p >= 0.0 && p < 1.0);
  if (p == 0.0) return 0.0;
  // Solve (1 + t) e^-t = 1 - p  =>  t = -W-1((p - 1)/e) - 1.
  const double w = *stats::LambertWm1((p - 1.0) / M_E);
  return -(w + 1.0) / eps_;
}

double PlanarLaplace::ConfidenceRadius(double gamma) const {
  SCGUARD_CHECK(gamma > 0.0 && gamma < 1.0);
  return InverseRadialCdf(gamma);
}

double PlanarLaplace::DiskProbability(double center_distance,
                                      double disk_radius) const {
  SCGUARD_CHECK(center_distance >= 0.0 && disk_radius >= 0.0);
  if (disk_radius == 0.0) return 0.0;
  const double nu = center_distance;
  const double radius = disk_radius;
  if (nu == 0.0) return RadialCdf(radius);

  // Mass of noise rings fully inside the disk (only when the true location
  // itself is inside): closed form via the radial CDF.
  double prob = nu < radius ? RadialCdf(radius - nu) : 0.0;

  // Rings that cross the disk boundary contribute their covered arc
  // fraction: acos((rho^2 + nu^2 - R^2) / (2 rho nu)) / pi.
  const double band_lo = std::abs(radius - nu);
  const double band_hi = nu + radius;
  const double eps = eps_;
  const auto integrand = [nu, radius, eps](double rho) {
    if (rho <= 0.0) return 0.0;
    double cosine = (rho * rho + nu * nu - radius * radius) / (2.0 * rho * nu);
    cosine = std::clamp(cosine, -1.0, 1.0);
    const double coverage = std::acos(cosine) / M_PI;
    const double radial_pdf = eps * eps * rho * std::exp(-eps * rho);
    return radial_pdf * coverage;
  };
  prob += stats::AdaptiveSimpson(integrand, band_lo, band_hi, 1e-9);
  return std::clamp(prob, 0.0, 1.0);
}

geo::Point PlanarLaplace::Sample(stats::Rng& rng) const {
  const double theta = rng.UniformDouble(0.0, 2.0 * M_PI);
  // 1 - UniformDoublePositive() is in [0, 1): valid for the inverse CDF and
  // never hits the p = 1 pole.
  const double p = 1.0 - rng.UniformDoublePositive();
  const double radius = InverseRadialCdf(p);
  return {radius * std::cos(theta), radius * std::sin(theta)};
}

}  // namespace scguard::privacy
