file(REMOVE_RECURSE
  "../bench/bench_headline_claims"
  "../bench/bench_headline_claims.pdb"
  "CMakeFiles/bench_headline_claims.dir/bench_headline_claims.cc.o"
  "CMakeFiles/bench_headline_claims.dir/bench_headline_claims.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
