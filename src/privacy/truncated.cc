#include "privacy/truncated.h"

#include <algorithm>

#include "common/check.h"

namespace scguard::privacy {

TruncatedGeoInd::TruncatedGeoInd(const PrivacyParams& params,
                                 const geo::BoundingBox& region,
                                 TruncationMode mode)
    : base_(params), region_(region), mode_(mode) {
  SCGUARD_CHECK(!region.empty());
}

geo::Point TruncatedGeoInd::Perturb(geo::Point x, stats::Rng& rng) const {
  switch (mode_) {
    case TruncationMode::kNone:
      return base_.Perturb(x, rng);
    case TruncationMode::kClamp: {
      const geo::Point z = base_.Perturb(x, rng);
      return {std::clamp(z.x, region_.min_x, region_.max_x),
              std::clamp(z.y, region_.min_y, region_.max_y)};
    }
    case TruncationMode::kRejectionResample: {
      for (int attempt = 0; attempt < 1000; ++attempt) {
        const geo::Point z = base_.Perturb(x, rng);
        if (region_.Contains(z)) return z;
      }
      // Pathological noise scale vs region: fall back to the safe clamp.
      const geo::Point z = base_.Perturb(x, rng);
      return {std::clamp(z.x, region_.min_x, region_.max_x),
              std::clamp(z.y, region_.min_y, region_.max_y)};
    }
  }
  return x;
}

}  // namespace scguard::privacy
