#include "reachability/analytical_model.h"

#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/check.h"
#include "common/str_format.h"
#include "stats/normal.h"
#include "stats/rice.h"

namespace scguard::reachability {
namespace {

double CoordinateVariance(const privacy::PrivacyParams& p, AnalyticalMode mode) {
  const double r_over_eps = p.radius_m / p.epsilon;
  // The paper approximates the planar Laplace by a BND whose per-coordinate
  // variance is the 1-D Laplace second moment 2 (r/eps)^2; the true planar
  // Laplace has 3 (r/eps)^2 (radial second moment 6/eps'^2 over two axes).
  const double factor = mode == AnalyticalMode::kMomentMatched ? 3.0 : 2.0;
  return factor * r_over_eps * r_over_eps;
}

// Variance-matched single planar Laplace for the two-sided U2U noise:
// 6/e1^2 + 6/e2^2 = 6/eff^2.
double CombinedUnitEpsilon(const privacy::PrivacyParams& worker,
                           const privacy::PrivacyParams& task) {
  const double ew = worker.unit_epsilon();
  const double et = task.unit_epsilon();
  return std::sqrt(1.0 / (1.0 / (ew * ew) + 1.0 / (et * et)));
}

Status CheckClosedForm(const privacy::PrivacyParams& p, const char* party) {
  if (!privacy::HasClosedFormDiskProbability(p.mechanism.kind)) {
    return Status::InvalidArgument(StrCat(
        party, " mechanism '", privacy::MechanismKindName(p.mechanism.kind),
        "' has no closed-form DiskProbability; the analytical model "
        "(Probabilistic-Model) only fits planar Laplace — build an "
        "EmpiricalModel (Probabilistic-Data) for this mechanism instead"));
  }
  return Status::OK();
}

}  // namespace

Result<AnalyticalModel> AnalyticalModel::Create(
    const privacy::PrivacyParams& worker_params,
    const privacy::PrivacyParams& task_params, AnalyticalMode mode) {
  SCGUARD_RETURN_NOT_OK(worker_params.Validate());
  SCGUARD_RETURN_NOT_OK(task_params.Validate());
  SCGUARD_RETURN_NOT_OK(CheckClosedForm(worker_params, "worker"));
  SCGUARD_RETURN_NOT_OK(CheckClosedForm(task_params, "task"));
  return AnalyticalModel(worker_params, task_params, mode);
}

AnalyticalModel::AnalyticalModel(const privacy::PrivacyParams& worker_params,
                                 const privacy::PrivacyParams& task_params,
                                 AnalyticalMode mode)
    : var_worker_(CoordinateVariance(worker_params, mode)),
      var_task_(CoordinateVariance(task_params, mode)),
      mode_(mode),
      worker_mechanism_(worker_params),
      u2u_combined_laplace_(CombinedUnitEpsilon(worker_params, task_params)) {
  SCGUARD_CHECK(worker_params.Validate().ok());
  SCGUARD_CHECK(task_params.Validate().ok());
  // Fail fast on mechanisms without a closed form, with the diagnosis on
  // stderr; Create reports the same condition as a Status for callers that
  // can propagate it.
  for (const Status& st : {CheckClosedForm(worker_params, "worker"),
                           CheckClosedForm(task_params, "task")}) {
    if (!st.ok()) {
      std::cerr << st.ToString() << std::endl;
      SCGUARD_CHECK(st.ok());
    }
  }
}

double AnalyticalModel::ProbReachable(Stage stage, double observed_distance_m,
                                      double reach_radius_m) const {
  SCGUARD_DCHECK(observed_distance_m >= 0.0 && reach_radius_m >= 0.0);
  const double nu = observed_distance_m;
  const double radius = reach_radius_m;

  if (mode_ == AnalyticalMode::kExactLaplace) {
    if (stage == Stage::kU2E) {
      // Exact: the true worker is planar-Laplace distributed around the
      // observation; the mechanism's closed form integrates that density
      // over the reach disk. Present by construction (Create rejects
      // mechanisms without one).
      return *worker_mechanism_.DiskProbability(nu, radius);
    }
    // U2U: the combined worker+task displacement is the sum of two planar
    // Laplaces, approximated by the variance-matched single Laplace built
    // in the constructor.
    return u2u_combined_laplace_.DiskProbability(nu, radius);
  }

  // Variance of the difference vector z = l_w - l_t given the observations:
  // both endpoints are noisy in U2U, only the worker in U2E.
  const double var =
      stage == Stage::kU2U ? var_worker_ + var_task_ : var_worker_;

  if (stage == Stage::kU2U && mode_ == AnalyticalMode::kPaperNormalApprox) {
    // Paper Sec. IV-B1 (U2U): d^2 = |z|^2 is lambda * chi2_2(nu^2/lambda)
    // with lambda = var; approximate d^2 ~ N(2 lambda + nu^2,
    // 4 lambda^2 + 4 lambda nu^2) from the mgf's first two derivatives.
    const double lambda = var;
    const double mean = 2.0 * lambda + nu * nu;
    const double variance = 4.0 * lambda * lambda + 4.0 * lambda * nu * nu;
    const double stddev = std::sqrt(variance);
    const double p =
        stats::StandardNormalCdf((radius * radius - mean) / stddev);
    return std::clamp(p, 0.0, 1.0);
  }

  // Exact distance law of the BND approximation: Rice(nu, sqrt(var)).
  // For U2E with the paper's variance this is exactly the paper's
  // Rice(d(w', t), sqrt(2) r / eps).
  const stats::RiceDistribution rice(nu, std::sqrt(var));
  return std::clamp(rice.Cdf(radius), 0.0, 1.0);
}

void AnalyticalModel::ProbReachableBatch(Stage stage,
                                         const double* observed_distance_m,
                                         const double* reach_radius_m,
                                         size_t n, double* out) const {
  for (size_t i = 0; i < n; ++i) {
    out[i] = ProbReachable(stage, observed_distance_m[i], reach_radius_m[i]);
  }
}

}  // namespace scguard::reachability
