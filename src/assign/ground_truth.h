#ifndef SCGUARD_ASSIGN_GROUND_TRUTH_H_
#define SCGUARD_ASSIGN_GROUND_TRUTH_H_

#include "assign/matcher.h"

namespace scguard::assign {

/// The non-private baseline with full access to exact locations: the
/// Ranking algorithm of Karp, Vazirani & Vazirani (GroundTruth-RR) or its
/// nearest-neighbor variant (GroundTruth-NN). Upper-bounds what any private
/// algorithm can achieve; every produced match is valid by construction.
class GroundTruthMatcher final : public OnlineMatcher {
 public:
  /// `strategy` must be kRandom or kNearest (probability ranking is
  /// meaningless with exact locations).
  explicit GroundTruthMatcher(RankStrategy strategy);

  MatchResult Run(const Workload& workload, stats::Rng& rng) override;

  std::string name() const override;

 private:
  RankStrategy strategy_;
};

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_GROUND_TRUTH_H_
