#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "privacy/geo_ind.h"
#include "privacy/planar_laplace.h"
#include "privacy/privacy_params.h"
#include "stats/rng.h"

namespace scguard::privacy {
namespace {

TEST(PrivacyParamsTest, ValidationAndUnitEpsilon) {
  PrivacyParams p{0.7, 800.0};
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_DOUBLE_EQ(p.unit_epsilon(), 0.7 / 800.0);
  EXPECT_FALSE((PrivacyParams{0.0, 800.0}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{-0.1, 800.0}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{0.7, 0.0}).Validate().ok());
}

TEST(PlanarLaplaceTest, RadialCdfBasics) {
  const PlanarLaplace pl(0.001);
  EXPECT_DOUBLE_EQ(pl.RadialCdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pl.RadialCdf(-5.0), 0.0);
  EXPECT_NEAR(pl.RadialCdf(1e7), 1.0, 1e-12);
  // C(r) = 1 - (1 + eps r) e^{-eps r} at eps*r = 1: 1 - 2/e.
  EXPECT_NEAR(pl.RadialCdf(1000.0), 1.0 - 2.0 / M_E, 1e-12);
}

TEST(PlanarLaplaceTest, InverseRadialCdfInvertsCdf) {
  const PlanarLaplace pl(0.002);
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99, 0.9999}) {
    const double r = pl.InverseRadialCdf(p);
    EXPECT_NEAR(pl.RadialCdf(r), p, 1e-9) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(pl.InverseRadialCdf(0.0), 0.0);
}

TEST(PlanarLaplaceTest, PdfIntegratesToOneOverPlane) {
  const PlanarLaplace pl(1.0);
  // Radial integral: 2 pi r * pdf(r) integrated over r>=0 equals 1; check
  // via the closed-form radial CDF at a large radius instead of 2-D
  // quadrature.
  EXPECT_NEAR(pl.RadialCdf(60.0), 1.0, 1e-12);
}

TEST(PlanarLaplaceTest, SampleRadiusDistributionMatchesCdf) {
  const double eps = 0.7 / 800.0;
  const PlanarLaplace pl(eps);
  stats::Rng rng(42);
  const int n = 100000;
  std::vector<double> radii;
  radii.reserve(n);
  for (int i = 0; i < n; ++i) radii.push_back(pl.Sample(rng).Norm());
  // Empirical CDF vs analytic at several checkpoints.
  for (double q : {0.25, 0.5, 0.75, 0.9}) {
    const double r = pl.InverseRadialCdf(q);
    int below = 0;
    for (double v : radii) below += v <= r ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(below) / n, q, 0.01) << "q=" << q;
  }
  // Mean radius = 2/eps.
  double sum = 0;
  for (double v : radii) sum += v;
  EXPECT_NEAR(sum / n / (2.0 / eps), 1.0, 0.02);
}

TEST(PlanarLaplaceTest, SampleAngleIsUniform) {
  const PlanarLaplace pl(0.01);
  stats::Rng rng(1);
  int quadrant[4] = {0, 0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const geo::Point z = pl.Sample(rng);
    const int q = (z.x >= 0 ? 0 : 1) + (z.y >= 0 ? 0 : 2);
    ++quadrant[q];
  }
  for (int q = 0; q < 4; ++q) EXPECT_NEAR(quadrant[q], n / 4, n / 40);
}

TEST(PlanarLaplaceTest, ConfidenceRadiusCoversGammaMass) {
  const PlanarLaplace pl(0.7 / 800.0);
  stats::Rng rng(3);
  const double gamma = 0.9;
  const double r_r = pl.ConfidenceRadius(gamma);
  int inside = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) inside += pl.Sample(rng).Norm() <= r_r ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(inside) / n, gamma, 0.01);
}

TEST(PlanarLaplaceTest, ConfidenceRadiusGrowsWithGammaAndShrinksWithEps) {
  const PlanarLaplace loose(0.001);
  EXPECT_LT(loose.ConfidenceRadius(0.5), loose.ConfidenceRadius(0.9));
  const PlanarLaplace strict(0.01);
  EXPECT_LT(strict.ConfidenceRadius(0.9), loose.ConfidenceRadius(0.9));
}

TEST(PlanarLaplaceTest, CoordinateVarianceMatchesSamples) {
  const PlanarLaplace pl(0.005);
  stats::Rng rng(9);
  double sum_x2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const geo::Point z = pl.Sample(rng);
    sum_x2 += z.x * z.x;
  }
  EXPECT_NEAR(sum_x2 / n / pl.CoordinateVariance(), 1.0, 0.03);
}

TEST(PlanarLaplaceTest, DiskProbabilityKnownCases) {
  const PlanarLaplace pl(0.7 / 800.0);
  // Disk centered on the true location: closed-form radial CDF.
  EXPECT_NEAR(pl.DiskProbability(0.0, 1400.0), pl.RadialCdf(1400.0), 1e-9);
  // Degenerate disk.
  EXPECT_DOUBLE_EQ(pl.DiskProbability(500.0, 0.0), 0.0);
  // Huge disk catches everything.
  EXPECT_NEAR(pl.DiskProbability(3000.0, 1e7), 1.0, 1e-6);
  // Monotone in radius, antitone in center distance.
  EXPECT_LT(pl.DiskProbability(2000.0, 1000.0), pl.DiskProbability(2000.0, 2500.0));
  EXPECT_GT(pl.DiskProbability(500.0, 1400.0), pl.DiskProbability(4000.0, 1400.0));
}

TEST(PlanarLaplaceTest, DiskProbabilityMatchesMonteCarlo) {
  const PlanarLaplace pl(0.7 / 800.0);
  stats::Rng rng(31);
  const int n = 200000;
  std::vector<geo::Point> noise;
  noise.reserve(n);
  for (int i = 0; i < n; ++i) noise.push_back(pl.Sample(rng));
  for (double nu : {200.0, 1000.0, 2500.0, 5000.0}) {
    for (double radius : {800.0, 1400.0, 3000.0}) {
      int inside = 0;
      const geo::Point center{nu, 0.0};
      for (const auto& z : noise) {
        inside += geo::Distance(z, center) <= radius ? 1 : 0;
      }
      EXPECT_NEAR(static_cast<double>(inside) / n,
                  pl.DiskProbability(nu, radius), 0.005)
          << "nu=" << nu << " R=" << radius;
    }
  }
}

TEST(GeoIndTest, CreateValidatesParams) {
  EXPECT_TRUE(GeoIndMechanism::Create({0.7, 800.0}).ok());
  EXPECT_FALSE(GeoIndMechanism::Create({0.0, 800.0}).ok());
}

TEST(GeoIndTest, PerturbationCentersOnTrueLocation) {
  const GeoIndMechanism mech({0.7, 800.0});
  stats::Rng rng(4);
  const geo::Point x{1234.0, -567.0};
  geo::Point mean{0, 0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const geo::Point z = mech.Perturb(x, rng);
    mean = mean + (z - x);
  }
  mean = mean * (1.0 / n);
  const double typical = 2.0 / mech.params().unit_epsilon();  // Mean radius.
  EXPECT_LT(mean.Norm(), typical * 0.05);  // Unbiased.
}

TEST(GeoIndTest, DistinguishabilityBound) {
  const GeoIndMechanism mech({0.7, 800.0});
  // At the radius of concern the bound is e^eps.
  EXPECT_NEAR(mech.DistinguishabilityBound(800.0), std::exp(0.7), 1e-12);
  EXPECT_DOUBLE_EQ(mech.DistinguishabilityBound(0.0), 1.0);
}

// The defining Geo-I property, verified empirically: for two locations at
// distance d <= r, the densities of observing the same output differ by at
// most e^{eps d / r}. We check the density ratio directly via the Pdf.
TEST(GeoIndTest, GeoIndistinguishabilityDensityRatioHolds) {
  const PrivacyParams params{0.7, 800.0};
  const PlanarLaplace pl(params.unit_epsilon());
  const geo::Point x1{0, 0};
  const geo::Point x2{300, 400};  // d(x1, x2) = 500 <= r.
  const double bound = std::exp(params.unit_epsilon() * 500.0);
  stats::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    // Any observation point z.
    const geo::Point z{rng.UniformDouble(-3000, 3000),
                       rng.UniformDouble(-3000, 3000)};
    const double p1 = pl.Pdf(z - x1);
    const double p2 = pl.Pdf(z - x2);
    EXPECT_LE(p1 / p2, bound * (1 + 1e-9));
    EXPECT_LE(p2 / p1, bound * (1 + 1e-9));
  }
}

}  // namespace
}  // namespace scguard::privacy
