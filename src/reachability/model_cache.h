#ifndef SCGUARD_REACHABILITY_MODEL_CACHE_H_
#define SCGUARD_REACHABILITY_MODEL_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "privacy/privacy_params.h"
#include "reachability/empirical_model.h"

namespace scguard::reachability {

/// Process-wide memoization of built empirical models, keyed by everything
/// the Monte-Carlo output depends on: both privacy levels, the region, the
/// full table/build geometry (samples, bucket and histogram shape, shard
/// count) and the build seed. A second BuildEmpirical at the same privacy
/// level costs a map lookup instead of a 200k-sample simulation — the
/// amortization the paper's precomputation argument is about, which the
/// per-process bench binaries previously threw away.
///
/// Optionally backed by a cache directory: models are serialized on first
/// build and deserialized on later runs (including later processes). Each
/// cache file records its full key, so a hash collision can never serve
/// the wrong model.
///
/// Thread-safe; lookups and inserts are mutex-protected. Concurrent
/// misses on the *same* key may build twice (last insert is dropped in
/// favor of the first) — wasteful but correct, and irrelevant for the
/// bench usage pattern.
class ModelCache {
 public:
  struct CacheStats {
    int64_t hits = 0;
    int64_t misses = 0;       ///< Fresh Monte-Carlo builds.
    int64_t disk_loads = 0;   ///< Misses served by the cache directory.
  };

  ModelCache() = default;

  /// The shared per-process instance bench binaries use.
  static ModelCache& Global();

  /// Enables (non-empty) or disables (empty) the on-disk layer. The
  /// directory is created on first write.
  void set_cache_dir(std::string dir);

  /// Returns the cached model for this exact build request, loading it
  /// from the cache directory or running the Monte-Carlo build (seeded
  /// with `build_seed`, sharded across `pool`) on a miss.
  Result<std::shared_ptr<const EmpiricalModel>> GetOrBuild(
      const EmpiricalModelConfig& config,
      const privacy::PrivacyParams& worker_params,
      const privacy::PrivacyParams& task_params, uint64_t build_seed,
      runtime::ThreadPool* pool = nullptr);

  /// Drops every in-memory entry (the disk layer is untouched).
  void Clear();

  size_t size() const;

  /// Lifetime hit/miss/disk-load counts of this cache instance. Always
  /// live — the struct is maintained unconditionally, independent of the
  /// obs::MetricsRegistry gate (which only mirrors these counts as
  /// `scguard.model_cache.*` when observability is enabled), so cache
  /// behavior is verifiable at runtime even in uninstrumented builds.
  CacheStats stats() const;

  /// The exact cache key of a build request (exposed for tests; doubles
  /// are rendered as hex floats so distinct parameters never collide).
  static std::string KeyFor(const EmpiricalModelConfig& config,
                            const privacy::PrivacyParams& worker_params,
                            const privacy::PrivacyParams& task_params,
                            uint64_t build_seed);

 private:
  std::string PathFor(const std::string& key) const;

  mutable std::mutex mu_;
  std::string cache_dir_;
  std::unordered_map<std::string, std::shared_ptr<const EmpiricalModel>>
      models_;
  CacheStats stats_;
};

}  // namespace scguard::reachability

#endif  // SCGUARD_REACHABILITY_MODEL_CACHE_H_
