// Service bench (DESIGN.md section 14 / EXPERIMENTS.md "Sustained-throughput
// service"): replays a Poisson task-arrival stream plus a configurable
// worker re-report rate against the persistent AssignmentService and
// measures what the one-shot engine benches cannot — sustained QPS and the
// admission-to-assignment latency tail under concurrent ingest. Emits
// BENCH_service.json; `sustained_qps` is higher-better and the
// p50/p95/p99_seconds fields are the latency tail (tools/bench_compare.py
// treats "service" documents with exactly these semantics).
//
// Knobs (all optional):
//   SCGUARD_SERVICE_WORKERS     comma list, default "10000,100000"
//   SCGUARD_SERVICE_QPS         target task arrivals per second, default 6000
//   SCGUARD_SERVICE_SECONDS     submission window, default 3
//   SCGUARD_SERVICE_REPORT_PCT  re-reports per second as % of workers,
//                               default 10
//   SCGUARD_SERVICE_REPORTERS   reporter threads, default 2
//   SCGUARD_SERVICE_ALPHA       U2U threshold, default 0.5 (the service
//                               point targets throughput; Fig. 10 sweeps
//                               the utility trade-off)
//
// Determinism: assignment *bits* depend only on the admission order the
// consumer logged (tests/service_test.cc replays the log bit-identically);
// this bench's numbers are throughput/latency and naturally vary run to
// run.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "data/beijing.h"
#include "data/workload.h"
#include "privacy/mechanism.h"
#include "reachability/analytical_model.h"
#include "service/service.h"

namespace scguard::bench {
namespace {

using Clock = std::chrono::steady_clock;

std::vector<int64_t> ParseList(const char* env, const char* fallback) {
  const std::string spec = env != nullptr ? env : fallback;
  std::vector<int64_t> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    out.push_back(std::stoll(spec.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

double ParseDouble(const char* env, double fallback) {
  return env != nullptr ? std::stod(env) : fallback;
}

double PercentileNs(std::vector<uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  const size_t i = std::min(
      sorted_ns.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ns.size())));
  return static_cast<double>(sorted_ns[i]);
}

int Main() {
  // Like bench_scale: the per-stage breakdown is the point, so obs is
  // always on; the flight recorder stays opt-in.
  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  obs_config.recorder = EnvFlag("SCGUARD_OBS") || EnvFlag("SCGUARD_OBS_TRACE");
  obs_config.audit_full = EnvFlag("SCGUARD_AUDIT_FULL");
  obs::SetConfig(obs_config);
  if (obs_config.recorder) {
    obs::FlightRecorder::Global().set_ring_capacity(size_t{1} << 19);
  }

  const std::vector<int64_t> worker_counts =
      ParseList(std::getenv("SCGUARD_SERVICE_WORKERS"), "10000,100000");
  const double target_qps =
      ParseDouble(std::getenv("SCGUARD_SERVICE_QPS"), 6000.0);
  const double window_seconds =
      ParseDouble(std::getenv("SCGUARD_SERVICE_SECONDS"), 3.0);
  const double report_pct =
      ParseDouble(std::getenv("SCGUARD_SERVICE_REPORT_PCT"), 10.0);
  const int num_reporters = static_cast<int>(
      ParseList(std::getenv("SCGUARD_SERVICE_REPORTERS"), "2").front());
  const double alpha = ParseDouble(std::getenv("SCGUARD_SERVICE_ALPHA"), 0.5);

  const privacy::PrivacyParams privacy_level{0.7, 800.0};
  const reachability::AnalyticalModel model(privacy_level);
  JsonSeriesWriter json("service");

  std::printf(
      "assignment service: qps=%.0f window=%.1fs report_pct=%.0f "
      "reporters=%d alpha=%.2f\n\n",
      target_qps, window_seconds, report_pct, num_reporters, alpha);
  std::printf("%10s %9s %12s %10s %10s %10s %10s %9s %8s %8s\n", "workers",
              "tasks", "sustained/s", "p50_ms", "p95_ms", "p99_ms",
              "reports/s", "rejected", "epochs", "drain_s");

  int64_t expected_disclosures = 0;
  int64_t expected_candidates = 0;

  for (const int64_t num_workers : worker_counts) {
    const int num_tasks = static_cast<int>(target_qps * window_seconds) + 1;
    data::WorkloadConfig wconfig;
    wconfig.num_workers = static_cast<int>(num_workers);
    wconfig.num_tasks = num_tasks;
    stats::Rng workload_rng(977 + static_cast<uint64_t>(num_workers));
    assign::Workload workload = data::MakeUniformWorkload(
        data::BeijingRegion(), wconfig, workload_rng);
    data::PerturbWorkload(privacy_level, privacy_level, workload_rng,
                          workload);

    service::ServiceConfig config;
    config.u2u_model = &model;
    config.u2e_model = &model;
    config.alpha = alpha;
    config.beta = 0.25;
    config.rank = assign::RankStrategy::kProbability;
    config.worker_params = privacy_level;
    config.task_params = privacy_level;
    config.pruning_gamma = 0.9;
    config.pruning_backend = index::PrunerBackend::kGrid;
    // Bounded-error U2E scoring (DESIGN.md section 8): the service point
    // trades exact per-candidate erf evaluation for LUT throughput.
    config.kernel.u2e_lut = true;
    config.region = workload.region;

    service::AssignmentService svc(config);
    for (const assign::Worker& w : workload.workers) svc.RegisterWorker(w);
    svc.Start();

    const auto bench_start = Clock::now();
    std::atomic<bool> reporters_run{true};

    // Reporter threads: each owns the workers with id % reporters == r
    // (disjoint, so per-thread exact-location state needs no locks) and
    // paces its share of the target report rate. Movement is a Gaussian
    // step re-perturbed with fresh Geo-I noise, like a courier drifting
    // between fixes.
    const double reports_per_sec =
        report_pct / 100.0 * static_cast<double>(num_workers);
    std::vector<std::thread> reporters;
    reporters.reserve(static_cast<size_t>(num_reporters));
    for (int r = 0; r < num_reporters; ++r) {
      reporters.emplace_back([&, r] {
        stats::Rng rng(9001 + static_cast<uint64_t>(r));
        // The configured obfuscation mechanism; workers may drift outside
        // the workload region, which grid mechanisms clamp to the border
        // cell.
        const auto noise =
            privacy::MakeMechanismOrDie(privacy_level, workload.region);
        std::vector<geo::Point> exact;
        std::vector<uint32_t> ids;
        for (int64_t i = r; i < num_workers; i += num_reporters) {
          ids.push_back(static_cast<uint32_t>(i));
          exact.push_back(workload.workers[static_cast<size_t>(i)].location);
        }
        if (ids.empty()) return;
        const double rate = reports_per_sec / num_reporters;
        if (rate <= 0.0) return;
        const auto interval =
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(1.0 / rate));
        auto next = Clock::now();
        size_t cursor = 0;
        while (reporters_run.load(std::memory_order_relaxed)) {
          const uint32_t w = ids[cursor];
          geo::Point& p = exact[cursor];
          cursor = cursor + 1 == ids.size() ? 0 : cursor + 1;
          p.x += rng.Gaussian(0.0, 100.0);
          p.y += rng.Gaussian(0.0, 100.0);
          svc.ReportLocation(w, p, noise->Perturb(p, rng));
          next += interval;
          const auto now = Clock::now();
          if (next > now) {
            std::this_thread::sleep_until(next);
          } else if (now - next > std::chrono::milliseconds(50)) {
            next = now;  // Fell far behind: don't burst-flood the ring.
          }
        }
      });
    }

    // Submitter (this thread): Poisson arrivals at target_qps, catching up
    // in bursts when the clock slips rather than silently lowering the
    // offered load.
    stats::Rng arrival_rng(31 + static_cast<uint64_t>(num_workers));
    auto next_arrival = Clock::now();
    int64_t submitted = 0;
    for (const assign::Task& t : workload.tasks) {
      if (Clock::now() - bench_start >
          std::chrono::duration<double>(window_seconds)) {
        break;
      }
      if (!svc.SubmitTask(t)) continue;  // Counted by the service.
      ++submitted;
      const double gap = -std::log(arrival_rng.UniformDoublePositive()) /
                         target_qps;
      next_arrival += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(gap));
      if (next_arrival > Clock::now()) {
        std::this_thread::sleep_until(next_arrival);
      }
    }

    reporters_run.store(false, std::memory_order_relaxed);
    for (auto& t : reporters) t.join();
    svc.Stop(service::AssignmentService::StopMode::kDrain);

    const double elapsed =
        std::chrono::duration<double>(Clock::now() - bench_start).count();
    const auto& completions = svc.completions();
    const service::IngestStats ingest = svc.ingest_stats();
    const assign::RunMetrics& m = svc.metrics();
    expected_disclosures += m.requester_to_worker_msgs;
    expected_candidates += m.candidates_sum;

    std::vector<uint64_t> latency_ns;
    latency_ns.reserve(completions.size());
    for (const auto& c : completions) {
      latency_ns.push_back(c.done_ns - c.submit_ns);
    }
    std::sort(latency_ns.begin(), latency_ns.end());
    const double p50 = PercentileNs(latency_ns, 0.50) * 1e-9;
    const double p95 = PercentileNs(latency_ns, 0.95) * 1e-9;
    const double p99 = PercentileNs(latency_ns, 0.99) * 1e-9;
    const double sustained =
        elapsed > 0.0 ? static_cast<double>(completions.size()) / elapsed
                      : 0.0;
    const double applied_reports_per_sec =
        elapsed > 0.0
            ? static_cast<double>(ingest.reports_submitted) / elapsed
            : 0.0;

    const sim::AggregatedMetrics agg = sim::Aggregate({m});
    json.Add(StrCat("reporters=", num_reporters),
             static_cast<double>(num_workers), agg,
             {{"threads", static_cast<double>(num_reporters)},
              {"target_qps", target_qps},
              {"sustained_qps", sustained},
              {"p50_seconds", p50},
              {"p95_seconds", p95},
              {"p99_seconds", p99},
              {"reports_per_sec", applied_reports_per_sec},
              {"tasks_submitted", static_cast<double>(ingest.tasks_submitted)},
              {"reports_submitted",
               static_cast<double>(ingest.reports_submitted)},
              {"tasks_rejected", static_cast<double>(ingest.tasks_rejected)},
              {"reports_rejected",
               static_cast<double>(ingest.reports_rejected)},
              {"epochs", static_cast<double>(ingest.epochs)},
              {"drain_seconds", svc.drain_seconds()}});
    std::printf(
        "%10lld %9zu %12.0f %10.3f %10.3f %10.3f %10.0f %9lld %8lld %8.3f\n",
        (long long)num_workers, completions.size(), sustained, p50 * 1e3,
        p95 * 1e3, p99 * 1e3, applied_reports_per_sec,
        (long long)(ingest.tasks_rejected + ingest.reports_rejected),
        (long long)ingest.epochs, svc.drain_seconds());
    (void)submitted;
  }

  std::printf(
      "\nwrote BENCH_service.json (sustained_qps higher-better, "
      "p99_seconds = latency tail)\n");

  if (obs::RecorderEnabled()) {
    const obs::AuditTotals audit = WriteFlightArtifacts("service");
    const int64_t dropped = obs::FlightRecorder::Global().dropped();
    std::printf(
        "\naudit reconciliation (AUDIT_service.jsonl vs service metrics):\n"
        "  e2e disclosures  %lld audit vs %lld metrics\n"
        "  u2e candidates   %lld audit vs %lld metrics\n"
        "  dropped events   %lld\n",
        (long long)audit.e2e_disclosures, (long long)expected_disclosures,
        (long long)audit.u2e_candidates_sum, (long long)expected_candidates,
        (long long)dropped);
    if (audit.e2e_disclosures != expected_disclosures ||
        audit.u2e_candidates_sum != expected_candidates || dropped != 0) {
      std::fprintf(stderr, "audit trail does not reconcile\n");
      return 1;
    }
    std::printf("wrote TRACE_service.json (ui.perfetto.dev) and "
                "AUDIT_service.jsonl\n");
  }
  return 0;
}

}  // namespace
}  // namespace scguard::bench

int main() { return scguard::bench::Main(); }
