#ifndef SCGUARD_STATS_LAMBERT_W_H_
#define SCGUARD_STATS_LAMBERT_W_H_

#include "common/result.h"

namespace scguard::stats {

/// Principal branch W0 of the Lambert W function (solves w*e^w = x for
/// w >= -1). Defined for x >= -1/e; returns InvalidArgument outside.
Result<double> LambertW0(double x);

/// Secondary real branch W-1 (solves w*e^w = x for w <= -1). Defined for
/// -1/e <= x < 0; returns InvalidArgument outside.
///
/// This branch is the workhorse of the planar Laplace mechanism: the inverse
/// CDF of the noise radius is C^-1(p) = -(1/eps) * (W-1((p-1)/e) + 1).
Result<double> LambertWm1(double x);

}  // namespace scguard::stats

#endif  // SCGUARD_STATS_LAMBERT_W_H_
