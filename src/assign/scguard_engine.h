#ifndef SCGUARD_ASSIGN_SCGUARD_ENGINE_H_
#define SCGUARD_ASSIGN_SCGUARD_ENGINE_H_

#include <memory>
#include <optional>
#include <string>

#include "assign/matcher.h"
#include "index/pruning.h"
#include "privacy/privacy_params.h"
#include "reachability/kernel.h"
#include "reachability/model.h"

namespace scguard::runtime {
class ThreadPool;
}  // namespace scguard::runtime

namespace scguard::assign {

/// Engine-level parallelism knobs (DESIGN.md section 9), the per-run analog
/// of ExperimentConfig::runtime. The determinism contract matches the
/// runtime layer's: for a fixed policy and workload, MatchResult and the
/// RNG stream are bit-identical for every (pool, shard_size, active_set)
/// combination — parallelism and compaction only change wall-clock.
struct EngineRuntime {
  /// Pool the U2U scan fans its shards across. Not owned; must outlive the
  /// engine's Run calls. nullptr (the default) keeps the scan serial, and
  /// runtime::ParallelFor falls back to serial anyway when Run is already
  /// executing inside a pool worker (ExperimentRunner's seed fan-out), so
  /// nested parallelism never deadlocks.
  runtime::ThreadPool* pool = nullptr;

  /// Workers per scan shard. Fixed-size shards — never derived from the
  /// thread count — so per-shard candidate vectors concatenate to the same
  /// ascending id order on any pool. Smaller shards balance better once
  /// the active set drains unevenly; 4096 keeps per-shard overhead
  /// negligible up to millions of workers.
  int shard_size = 4096;

  /// Maintain per-shard active-index arrays so the scan cost tracks
  /// *available* workers: matched workers are compacted out of their shard
  /// at the next task's scan (and removed from the pruning index when one
  /// is active). Off = rescan all n workers per task with a matched[]
  /// check, the legacy full-scan path; kept as a toggle for the
  /// equivalence test and the scale bench.
  bool active_set = true;
};

/// Configuration of the privacy-aware three-stage protocol simulation.
///
/// Algorithm 1 (oblivious baseline) and Algorithm 2 (probability-based) are
/// the same protocol with different reachability models and thresholds:
///  * Oblivious-RR / Oblivious-RN: BinaryModel, rank random / nearest,
///    no beta threshold.
///  * Probabilistic-Model / Probabilistic-Data: AnalyticalModel /
///    EmpiricalModel, probability ranking, alpha & beta thresholds.
/// When the requester applies the beta threshold (Alg. 2 Line 13).
enum class BetaMode {
  /// Re-check before every disclosure: as soon as the best *remaining*
  /// candidate scores below beta the task is cancelled. The literal
  /// reading of Algorithm 2 (Line 17 loops back through Line 13).
  kEveryContact,
  /// Check only the initial top-ranked candidate; once the requester
  /// starts contacting, she goes best-effort through the ranked list.
  /// Reproduces the paper's reported utility at strict privacy better
  /// (see bench_ablation_beta and EXPERIMENTS.md).
  kFirstContactOnly,
};

struct EnginePolicy {
  /// Model the server uses in U2U to build the candidate set. Not owned;
  /// must outlive the engine.
  const reachability::ReachabilityModel* u2u_model = nullptr;
  /// Model the requester uses in U2E to rank candidates (only consulted
  /// when rank == kProbability). Not owned.
  const reachability::ReachabilityModel* u2e_model = nullptr;

  /// U2U threshold alpha: a worker is a candidate iff
  /// Pr(reachable | d(w', t')) >= alpha. With BinaryModel any alpha in
  /// (0, 1] reproduces the oblivious d' <= R_w test.
  double alpha = 0.1;

  /// U2E threshold beta: the requester cancels the task when the best
  /// remaining candidate's reachability probability is < beta. 0 disables
  /// cancellation (exhaustive best-effort, Alg. 1 behaviour). Only applies
  /// to probability ranking.
  double beta = 0.0;
  BetaMode beta_mode = BetaMode::kEveryContact;

  RankStrategy rank = RankStrategy::kProbability;

  /// Redundant assignment (paper Sec. VII): the task needs K accepting
  /// workers; the requester keeps contacting candidates until K accept or
  /// the candidate set is exhausted.
  int redundancy_k = 1;

  /// Score the candidate sets against ground truth (U2U precision/recall
  /// and false-dismissal attribution). Observer-only bookkeeping — no
  /// protocol party could compute it — and the per-task O(workers) scan
  /// it needs dominates pruned runs, so throughput-oriented callers turn
  /// it off. Default on: tests and the figure benches report it.
  bool compute_accuracy_metrics = true;

  /// When set, the server prunes U2U with uncertainty-rectangle indexing
  /// (paper Sec. IV-C1) at this confidence gamma before evaluating
  /// probabilities.
  std::optional<double> pruning_gamma;
  index::PrunerBackend pruning_backend = index::PrunerBackend::kGrid;

  /// Privacy levels, needed to size the pruning rectangles. Must match the
  /// levels used to perturb the workload.
  privacy::PrivacyParams worker_params;
  privacy::PrivacyParams task_params;

  /// Evaluation-kernel knobs (DESIGN.md section 8). Defaults keep the
  /// exact threshold-inversion U2U filter on (bit-identical assignments,
  /// verified by tests/kernel_test.cc) and the bounded-error U2E LUT off.
  reachability::KernelOptions kernel;

  /// Parallel-scan and active-set knobs (DESIGN.md section 9). Defaults
  /// keep compaction on and the scan serial; thread-count invariance is
  /// held by tests/engine_parallel_test.cc.
  EngineRuntime runtime;

  /// Display name override; empty derives one from model + strategy.
  std::string name;
};

/// The SCGuard three-stage protocol (paper Fig. 2 / Table I), simulated
/// with exact bookkeeping of which party sees what:
///   U2U  server:    noisy worker + noisy task locations -> candidate set
///   U2E  requester: exact task + noisy worker locations -> ranked contacts
///   E2E  worker:    exact task location -> accept iff d(w, t) <= R_w
/// The engine implements Algorithms 1 and 2 of the paper depending on the
/// policy (see EnginePolicy).
class ScGuardEngine final : public OnlineMatcher {
 public:
  /// Requires a U2U model; a U2E model is required for probability ranking.
  explicit ScGuardEngine(EnginePolicy policy);

  MatchResult Run(const Workload& workload, stats::Rng& rng) override;

  std::string name() const override;

  const EnginePolicy& policy() const { return policy_; }

 private:
  EnginePolicy policy_;
};

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_SCGUARD_ENGINE_H_
