// Reproduces paper Fig. 10 (a-e): Probabilistic-Model as the U2U threshold
// alpha decreases from 0.4 to 0.05, at eps in {0.7, 1.0} (the paper's
// setting for this figure). Smaller alpha grows the candidate set: more
// utility and lower travel at the cost of overhead and U2E runtime.

#include "bench/bench_common.h"

namespace scguard::bench {
namespace {

std::vector<std::string> AlphaColumns() {
  std::vector<std::string> cols = {"series"};
  for (double a : sim::kAlphas) cols.push_back(StrCat("a=", a));
  return cols;
}

void Main() {
  const auto runner = OrDie(sim::ExperimentRunner::Create(PaperConfig()));
  JsonSeriesWriter json("fig10_vary_alpha");

  sim::TablePrinter countable("Fig 10a — Utility & overhead vs alpha (eps=0.7)",
                              AlphaColumns());
  sim::TablePrinter travel("Fig 10b — Travel cost (m) vs alpha", AlphaColumns());
  sim::TablePrinter u2u("Fig 10c — U2U precision/recall vs alpha (eps=0.7)",
                        AlphaColumns());
  sim::TablePrinter u2e("Fig 10d — U2E false hit/dismissal vs alpha (eps=0.7)",
                        AlphaColumns());
  sim::TablePrinter runtime("Fig 10e — U2E runtime per run (ms) vs alpha",
                            AlphaColumns());

  for (double eps : {0.7, 1.0}) {
    const privacy::PrivacyParams p{eps, sim::kDefaultRadius};
    std::vector<double> util_row, over_row, travel_row, prec_row, rec_row,
        hit_row, dis_row, runtime_row;
    for (double alpha : sim::kAlphas) {
      assign::MatcherHandle handle = assign::MakeProbabilisticModel(
          MakeParams(p, alpha, sim::kDefaultBeta));
      const auto agg = OrDie(runner.Run(handle, p, p));
      json.Add(StrCat("Probabilistic-Model eps=", eps), alpha, agg);
      util_row.push_back(agg.assigned_tasks);
      over_row.push_back(agg.candidates);
      travel_row.push_back(agg.travel_m);
      prec_row.push_back(agg.precision);
      rec_row.push_back(agg.recall);
      hit_row.push_back(agg.false_hits);
      dis_row.push_back(agg.false_dismissals);
      runtime_row.push_back(agg.u2e_seconds * 1000.0);
    }
    if (eps == 0.7) {
      countable.AddRow("utility (#tasks)", util_row, 1);
      countable.AddRow("overhead (#workers)", over_row, 1);
      u2u.AddRow("precision", prec_row, 2);
      u2u.AddRow("recall", rec_row, 2);
      u2e.AddRow("false hits", hit_row, 1);
      u2e.AddRow("false dismissals", dis_row, 1);
    }
    travel.AddRow(StrCat("eps=", eps), travel_row, 0);
    runtime.AddRow(StrCat("eps=", eps), runtime_row, 2);
  }
  countable.Print(std::cout);
  travel.Print(std::cout);
  u2u.Print(std::cout);
  u2e.Print(std::cout);
  runtime.Print(std::cout);
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
