#ifndef SCGUARD_COMMON_RESULT_H_
#define SCGUARD_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <type_traits>
#include <utility>
#include <variant>

#include "common/status.h"

namespace scguard {

/// Either a value of type T or a non-OK Status (Arrow's arrow::Result idiom).
///
/// Accessing the value of an erroneous Result aborts the process with the
/// status printed; callers must check `ok()` (or use SCGUARD_ASSIGN_OR_RETURN)
/// before dereferencing.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : rep_(std::in_place_index<0>, std::move(value)) {}

  /// Constructs from a non-OK status (implicit so `return status;` works).
  /// Aborts if the status is OK: an OK Result must carry a value.
  Result(Status status) : rep_(std::in_place_index<1>, std::move(status)) {
    if (std::get<1>(rep_).ok()) Fail("Result constructed from OK Status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return rep_.index() == 0; }

  /// OK when a value is held, the stored error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<1>(rep_);
  }

  const T& ValueOrDie() const& {
    if (!ok()) Fail(std::get<1>(rep_).ToString());
    return std::get<0>(rep_);
  }
  T& ValueOrDie() & {
    if (!ok()) Fail(std::get<1>(rep_).ToString());
    return std::get<0>(rep_);
  }
  T&& ValueOrDie() && {
    if (!ok()) Fail(std::get<1>(rep_).ToString());
    return std::get<0>(std::move(rep_));
  }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const& {
    return ok() ? std::get<0>(rep_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  [[noreturn]] static void Fail(std::string_view what) {
    std::cerr << "Result<T> accessed in error state: " << what << std::endl;
    std::abort();
  }

  std::variant<T, Status> rep_;
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns the Status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define SCGUARD_ASSIGN_OR_RETURN(lhs, rexpr)                    \
  SCGUARD_ASSIGN_OR_RETURN_IMPL_(                               \
      SCGUARD_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define SCGUARD_CONCAT_INNER_(a, b) a##b
#define SCGUARD_CONCAT_(a, b) SCGUARD_CONCAT_INNER_(a, b)
#define SCGUARD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr)         \
  auto tmp = (rexpr);                                           \
  if (!tmp.ok()) return tmp.status();                           \
  lhs = std::move(tmp).ValueOrDie()

}  // namespace scguard

#endif  // SCGUARD_COMMON_RESULT_H_
