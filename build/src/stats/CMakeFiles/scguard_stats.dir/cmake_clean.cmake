file(REMOVE_RECURSE
  "CMakeFiles/scguard_stats.dir/bessel.cc.o"
  "CMakeFiles/scguard_stats.dir/bessel.cc.o.d"
  "CMakeFiles/scguard_stats.dir/gamma.cc.o"
  "CMakeFiles/scguard_stats.dir/gamma.cc.o.d"
  "CMakeFiles/scguard_stats.dir/histogram.cc.o"
  "CMakeFiles/scguard_stats.dir/histogram.cc.o.d"
  "CMakeFiles/scguard_stats.dir/lambert_w.cc.o"
  "CMakeFiles/scguard_stats.dir/lambert_w.cc.o.d"
  "CMakeFiles/scguard_stats.dir/marcum_q.cc.o"
  "CMakeFiles/scguard_stats.dir/marcum_q.cc.o.d"
  "CMakeFiles/scguard_stats.dir/normal.cc.o"
  "CMakeFiles/scguard_stats.dir/normal.cc.o.d"
  "CMakeFiles/scguard_stats.dir/quadrature.cc.o"
  "CMakeFiles/scguard_stats.dir/quadrature.cc.o.d"
  "CMakeFiles/scguard_stats.dir/rice.cc.o"
  "CMakeFiles/scguard_stats.dir/rice.cc.o.d"
  "CMakeFiles/scguard_stats.dir/rng.cc.o"
  "CMakeFiles/scguard_stats.dir/rng.cc.o.d"
  "libscguard_stats.a"
  "libscguard_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scguard_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
