#ifndef SCGUARD_STATS_NORMAL_H_
#define SCGUARD_STATS_NORMAL_H_

namespace scguard::stats {

/// Standard normal density phi(z).
double StandardNormalPdf(double z);

/// Standard normal CDF Phi(z), accurate to ~1e-15 (erfc based).
double StandardNormalCdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step; |relative error| < 1e-9 over (0, 1)).
/// Requires 0 < p < 1.
double StandardNormalQuantile(double p);

/// N(mean, stddev^2) CDF at x. Requires stddev > 0.
double NormalCdf(double x, double mean, double stddev);

/// N(mean, stddev^2) density at x. Requires stddev > 0.
double NormalPdf(double x, double mean, double stddev);

}  // namespace scguard::stats

#endif  // SCGUARD_STATS_NORMAL_H_
