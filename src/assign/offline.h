#ifndef SCGUARD_ASSIGN_OFFLINE_H_
#define SCGUARD_ASSIGN_OFFLINE_H_

#include <vector>

#include "assign/matcher.h"

namespace scguard::assign {

/// Maximum-cardinality bipartite matching (Hopcroft-Karp, O(E sqrt(V))).
///
/// `adjacency[t]` lists the worker indices reachable from task t. Returns
/// for each task the matched worker index or -1. This is the *offline*
/// optimum that online algorithms are measured against: Ranking is
/// (1 - 1/e)-competitive with it in expectation [Karp-Vazirani-Vazirani].
std::vector<int> MaxCardinalityMatching(
    const std::vector<std::vector<int>>& adjacency, int num_workers);

/// Minimum-cost assignment (Hungarian algorithm / Jonker-Volgenant style
/// shortest augmenting paths, O(n^3)).
///
/// `cost[t][w]` is the cost of assigning task t to worker w; entries of
/// `kInfeasible` (or anything >= it) mark unreachable pairs. Maximizes
/// cardinality first, then minimizes total cost among maximum matchings
/// (implemented by offsetting feasible costs below a cardinality bonus).
/// Returns per-task worker index or -1.
inline constexpr double kInfeasible = 1e18;
std::vector<int> MinCostMaxMatching(const std::vector<std::vector<double>>& cost);

/// How the offline matcher scores worker-task pairs.
enum class OfflineObjective {
  kMaxTasks,        ///< Maximum number of assigned tasks (Hopcroft-Karp).
  kMinTravelCost,   ///< Max tasks, then minimum total travel (Hungarian).
};

/// The clairvoyant offline baseline: sees the entire task sequence and all
/// exact locations up-front and computes the optimal assignment. Not
/// achievable by any online algorithm; used by benches to report
/// competitive ratios.
class OfflineOptimalMatcher final : public OnlineMatcher {
 public:
  explicit OfflineOptimalMatcher(
      OfflineObjective objective = OfflineObjective::kMaxTasks);

  MatchResult Run(const Workload& workload, stats::Rng& rng) override;

  std::string name() const override;

 private:
  OfflineObjective objective_;
};

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_OFFLINE_H_
