#include <gtest/gtest.h>

#include <cmath>

#include "geo/bbox.h"
#include "geo/circle.h"
#include "geo/latlon.h"
#include "geo/point.h"
#include "geo/projection.h"

namespace scguard::geo {
namespace {

TEST(PointTest, Arithmetic) {
  const Point a{1, 2};
  const Point b{3, -1};
  EXPECT_EQ(a + b, (Point{4, 1}));
  EXPECT_EQ(a - b, (Point{-2, 3}));
  EXPECT_EQ(a * 2.0, (Point{2, 4}));
  EXPECT_EQ(2.0 * a, (Point{2, 4}));
}

TEST(PointTest, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(PointTest, NormMatchesDistanceFromOrigin) {
  const Point p{-3, 4};
  EXPECT_DOUBLE_EQ(p.Norm(), 5.0);
}

TEST(LatLonTest, HaversineKnownDistance) {
  // Beijing Tiananmen to Beijing Capital Airport: ~25 km.
  const LatLon tiananmen{39.9055, 116.3976};
  const LatLon airport{40.0799, 116.6031};
  const double d = HaversineMeters(tiananmen, airport);
  EXPECT_NEAR(d, 26000, 1500);
  EXPECT_DOUBLE_EQ(HaversineMeters(tiananmen, tiananmen), 0.0);
}

TEST(ProjectionTest, RoundTrip) {
  const LocalProjection proj({39.9, 116.4});
  const LatLon original{39.93, 116.47};
  const LatLon back = proj.Backward(proj.Forward(original));
  EXPECT_NEAR(back.lat, original.lat, 1e-12);
  EXPECT_NEAR(back.lon, original.lon, 1e-12);
}

TEST(ProjectionTest, OriginMapsToZero) {
  const LocalProjection proj({39.9, 116.4});
  const Point p = proj.Forward({39.9, 116.4});
  EXPECT_DOUBLE_EQ(p.x, 0.0);
  EXPECT_DOUBLE_EQ(p.y, 0.0);
}

TEST(ProjectionTest, DistancePreservedAtCityScale) {
  const LocalProjection proj({39.9, 116.4});
  const LatLon a{39.92, 116.42};
  const LatLon b{39.97, 116.51};
  const double planar = Distance(proj.Forward(a), proj.Forward(b));
  const double geodesic = HaversineMeters(a, b);
  // Within 0.5% at ~10 km scale.
  EXPECT_NEAR(planar / geodesic, 1.0, 0.005);
}

TEST(BoundingBoxTest, DefaultIsEmpty) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_DOUBLE_EQ(box.Area(), 0.0);
  EXPECT_FALSE(box.Contains({0, 0}));
}

TEST(BoundingBoxTest, ExtendPointAndBox) {
  BoundingBox box;
  box.Extend(Point{1, 2});
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.Contains({1, 2}));
  box.Extend(Point{-1, 5});
  EXPECT_DOUBLE_EQ(box.Width(), 2.0);
  EXPECT_DOUBLE_EQ(box.Height(), 3.0);
  BoundingBox other = BoundingBox::FromCorners({10, 10}, {11, 11});
  box.Extend(other);
  EXPECT_TRUE(box.Contains({10.5, 10.5}));
}

TEST(BoundingBoxTest, IntersectsIsSymmetricAndEdgeInclusive) {
  const BoundingBox a = BoundingBox::FromCorners({0, 0}, {2, 2});
  const BoundingBox b = BoundingBox::FromCorners({2, 2}, {3, 3});  // Touches.
  const BoundingBox c = BoundingBox::FromCorners({2.1, 2.1}, {3, 3});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(a.Intersects(BoundingBox()));  // Empty never intersects.
}

TEST(BoundingBoxTest, FromCircleCoversDisk) {
  const BoundingBox box = BoundingBox::FromCircle({5, 5}, 2);
  EXPECT_TRUE(box.Contains({3, 5}));
  EXPECT_TRUE(box.Contains({7, 7}));
  EXPECT_FALSE(box.Contains({7.5, 5}));
}

TEST(BoundingBoxTest, DistanceToPoint) {
  const BoundingBox box = BoundingBox::FromCorners({0, 0}, {2, 2});
  EXPECT_DOUBLE_EQ(box.DistanceTo({1, 1}), 0.0);       // Inside.
  EXPECT_DOUBLE_EQ(box.DistanceTo({5, 1}), 3.0);       // Right side.
  EXPECT_DOUBLE_EQ(box.DistanceTo({5, 6}), 5.0);       // Corner (3-4-5).
}

TEST(BoundingBoxTest, UnionCoversBoth) {
  const BoundingBox a = BoundingBox::FromCorners({0, 0}, {1, 1});
  const BoundingBox b = BoundingBox::FromCorners({5, 5}, {6, 6});
  const BoundingBox u = a.Union(b);
  EXPECT_TRUE(u.Contains({0.5, 0.5}));
  EXPECT_TRUE(u.Contains({5.5, 5.5}));
  EXPECT_TRUE(u.Contains({3, 3}));  // MBRs fill the gap.
}

TEST(BoundingBoxTest, CenterOfBox) {
  const BoundingBox box = BoundingBox::FromCorners({2, 4}, {6, 10});
  EXPECT_EQ(box.Center(), (Point{4, 7}));
}

TEST(CircleTest, ContainsIsRadiusInclusive) {
  const Circle c{{0, 0}, 5};
  EXPECT_TRUE(c.Contains({3, 4}));   // Exactly on the boundary.
  EXPECT_TRUE(c.Contains({0, 0}));
  EXPECT_FALSE(c.Contains({3.01, 4}));
}

TEST(CircleTest, IntersectsByCenterDistance) {
  const Circle a{{0, 0}, 2};
  const Circle b{{5, 0}, 3};   // Touching.
  const Circle c{{5, 0}, 2.9};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(CircleTest, MbrIsTight) {
  const Circle c{{1, 1}, 2};
  const BoundingBox box = c.Mbr();
  EXPECT_DOUBLE_EQ(box.min_x, -1.0);
  EXPECT_DOUBLE_EQ(box.max_y, 3.0);
}

}  // namespace
}  // namespace scguard::geo
