#ifndef SCGUARD_DATA_CSV_LOADER_H_
#define SCGUARD_DATA_CSV_LOADER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/trip_model.h"
#include "geo/projection.h"

namespace scguard::data {

/// Reads a trip log in the 7-column CSV format
/// `taxi_id,pickup_time_s,pickup_x,pickup_y,dropoff_time_s,dropoff_x,dropoff_y`
/// with coordinates in local meters. A header line starting with "taxi_id"
/// is skipped; blank lines are ignored. Fails with the offending line
/// number on malformed input.
///
/// This is the drop-in path for evaluating on the real T-Drive data the
/// paper uses: extract trips from the raw traces with any tool, project
/// them, and feed the CSV here.
Result<std::vector<Trip>> LoadTripsCsv(std::istream& is);

/// Like LoadTripsCsv but with `lon,lat` degree coordinates, projected
/// through `projection` (columns:
/// `taxi_id,pickup_time_s,pickup_lon,pickup_lat,dropoff_time_s,dropoff_lon,dropoff_lat`).
Result<std::vector<Trip>> LoadTripsCsvLatLon(std::istream& is,
                                             const geo::LocalProjection& projection);

/// Writes trips in the meters CSV format accepted by LoadTripsCsv
/// (including the header line).
void WriteTripsCsv(const std::vector<Trip>& trips, std::ostream& os);

/// Convenience: LoadTripsCsv from a file path.
Result<std::vector<Trip>> LoadTripsCsvFile(const std::string& path);

}  // namespace scguard::data

#endif  // SCGUARD_DATA_CSV_LOADER_H_
