// Truncation ablation: whether and how reports are constrained to the
// deployment region affects the noise actually seen by the server —
// clamping (safe post-processing) pulls escaped mass to the border, while
// rejection resampling (approximate guarantee) re-centers it. Measures the
// end-to-end effect on assignment quality.

#include "bench/bench_common.h"
#include "data/beijing.h"
#include "privacy/truncated.h"

namespace scguard::bench {
namespace {

// Perturbs the workload through a TruncatedGeoInd instead of the plain
// mechanism (which data::PerturbWorkload uses).
void PerturbTruncated(const privacy::TruncatedGeoInd& mechanism,
                      stats::Rng& rng, assign::Workload& workload) {
  for (auto& w : workload.workers) {
    w.noisy_location = mechanism.Perturb(w.location, rng);
  }
  for (auto& t : workload.tasks) {
    t.noisy_location = mechanism.Perturb(t.location, rng);
  }
}

void Main() {
  const auto runner = OrDie(sim::ExperimentRunner::Create(PaperConfig()));
  const privacy::PrivacyParams p{0.4, 800.0};  // Large noise: truncation matters.
  const geo::BoundingBox region = data::BeijingRegion();

  sim::TablePrinter table(
      StrCat("Truncation modes at eps=", p.epsilon, ", r=", p.radius_m),
      {"mode", "utility", "travel (m)", "false hits", "recall"});

  for (auto mode : {privacy::TruncationMode::kNone,
                    privacy::TruncationMode::kClamp,
                    privacy::TruncationMode::kRejectionResample}) {
    const privacy::TruncatedGeoInd mechanism(p, region, mode);
    std::vector<assign::RunMetrics> runs;
    assign::MatcherHandle handle = assign::MakeProbabilisticModel(MakeParams(p));
    for (int seed = 0; seed < runner.config().num_seeds; ++seed) {
      // Same true workload per seed; only the perturbation pipeline varies.
      assign::Workload workload = OrDie(runner.MakeWorkload(seed, p, p));
      stats::Rng noise_rng(9000 + static_cast<uint64_t>(seed));
      PerturbTruncated(mechanism, noise_rng, workload);
      stats::Rng match_rng(100 + static_cast<uint64_t>(seed));
      runs.push_back(handle.Run(workload, match_rng).metrics);
    }
    const sim::AggregatedMetrics agg = sim::Aggregate(runs);
    table.AddRow(std::string(privacy::TruncationModeName(mode)),
                 {agg.assigned_tasks, agg.travel_m, agg.false_hits, agg.recall},
                 2);
  }
  table.Print(std::cout);
  std::cout << "\nClamping is a pure post-processing (guarantee preserved\n"
               "exactly); rejection resampling trades a small guarantee\n"
               "degradation near the border for report accuracy.\n";
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
