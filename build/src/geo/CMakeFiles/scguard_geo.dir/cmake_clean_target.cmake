file(REMOVE_RECURSE
  "libscguard_geo.a"
)
