#include "assign/algorithms.h"

#include <utility>

#include "assign/ground_truth.h"
#include "assign/scguard_engine.h"
#include "common/check.h"
#include "common/str_format.h"
#include "reachability/binary_model.h"

namespace scguard::assign {
namespace {

EnginePolicy BasePolicy(const AlgorithmParams& params) {
  EnginePolicy policy;
  policy.worker_params = params.worker_params;
  policy.task_params = params.task_params;
  policy.redundancy_k = params.redundancy_k;
  policy.pruning_gamma = params.pruning_gamma;
  policy.pruning_backend = params.pruning_backend;
  policy.kernel = params.kernel;
  policy.runtime = params.runtime;
  return policy;
}

}  // namespace

MatcherHandle MakeGroundTruth(RankStrategy strategy) {
  MatcherHandle handle;
  handle.matcher = std::make_unique<GroundTruthMatcher>(strategy);
  return handle;
}

MatcherHandle MakeOblivious(RankStrategy strategy, const AlgorithmParams& params) {
  SCGUARD_CHECK(strategy == RankStrategy::kRandom ||
                strategy == RankStrategy::kNearest);
  auto binary = std::make_shared<const reachability::BinaryModel>();
  EnginePolicy policy = BasePolicy(params);
  policy.u2u_model = binary.get();
  policy.u2e_model = binary.get();
  // Any alpha in (0, 1] reproduces the d' <= R_w test on a 0/1 model; no
  // beta (Alg. 1 is exhaustive best-effort).
  policy.alpha = 0.5;
  policy.beta = 0.0;
  policy.rank = strategy;
  policy.name = StrCat("Oblivious-", strategy == RankStrategy::kRandom ? "RR" : "RN");
  MatcherHandle handle;
  handle.models.push_back(binary);
  handle.matcher = std::make_unique<ScGuardEngine>(std::move(policy));
  return handle;
}

MatcherHandle MakeProbabilisticModel(const AlgorithmParams& params) {
  auto model = std::make_shared<const reachability::AnalyticalModel>(
      params.worker_params, params.task_params, params.analytical_mode);
  EnginePolicy policy = BasePolicy(params);
  policy.u2u_model = model.get();
  policy.u2e_model = model.get();
  policy.alpha = params.alpha;
  policy.beta = params.beta;
  policy.beta_mode = params.beta_mode;
  policy.rank = RankStrategy::kProbability;
  policy.name = "Probabilistic-Model";
  MatcherHandle handle;
  handle.models.push_back(model);
  handle.matcher = std::make_unique<ScGuardEngine>(std::move(policy));
  return handle;
}

MatcherHandle MakeProbabilisticData(
    const AlgorithmParams& params,
    std::shared_ptr<const reachability::EmpiricalModel> model) {
  SCGUARD_CHECK(model != nullptr);
  EnginePolicy policy = BasePolicy(params);
  policy.u2u_model = model.get();
  policy.u2e_model = model.get();
  policy.alpha = params.alpha;
  policy.beta = params.beta;
  policy.beta_mode = params.beta_mode;
  policy.rank = RankStrategy::kProbability;
  policy.name = "Probabilistic-Data";
  MatcherHandle handle;
  handle.models.push_back(std::move(model));
  handle.matcher = std::make_unique<ScGuardEngine>(std::move(policy));
  return handle;
}

}  // namespace scguard::assign
