#ifndef SCGUARD_STATS_BESSEL_H_
#define SCGUARD_STATS_BESSEL_H_

namespace scguard::stats {

/// Modified Bessel function of the first kind, order zero, I0(x).
/// Overflows to +inf for |x| beyond ~713; prefer BesselI0Scaled for large
/// arguments.
double BesselI0(double x);

/// Exponentially scaled I0: e^{-|x|} * I0(x). Stable for all x; this is the
/// form used inside the Rice pdf where the exponential factors cancel.
double BesselI0Scaled(double x);

/// Modified Bessel function of the first kind, order one, I1(x).
double BesselI1(double x);

/// Exponentially scaled I1: e^{-|x|} * I1(x).
double BesselI1Scaled(double x);

}  // namespace scguard::stats

#endif  // SCGUARD_STATS_BESSEL_H_
