// Cross-implementation equivalence of the stage library (DESIGN.md section
// 10): the same perturbed workload driven through (a) assign::ScGuardEngine,
// (b) the core protocol parties (TaskingServer / RequesterDevice /
// ProtocolCoordinator), and (c) a hand-rolled sim/dynamic-style driver that
// calls the three stages directly must produce identical assignment sets
// and disclosure counts. Swept over three reachability models, the pruning
// index on/off, and the threshold kernel on/off; the core parties have no
// pruning path, so pruned combinations compare (a) against (c) only.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "assign/scguard_engine.h"
#include "assign/stages/candidate_stage.h"
#include "assign/stages/contact_stage.h"
#include "assign/stages/rank_stage.h"
#include "core/protocol.h"
#include "data/workload.h"
#include "reachability/analytical_model.h"
#include "reachability/binary_model.h"
#include "reachability/empirical_model.h"

namespace scguard {
namespace {

using privacy::PrivacyParams;

constexpr PrivacyParams kParams{0.7, 800.0};
constexpr double kAlpha = 0.1;
constexpr double kBeta = 0.25;
constexpr double kGamma = 0.9;

struct PipelineResult {
  std::set<std::pair<int64_t, int64_t>> pairs;
  int64_t disclosures = 0;
};

assign::Workload MakeWorkload() {
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});
  data::WorkloadConfig wconfig;
  wconfig.num_workers = 80;
  wconfig.num_tasks = 80;
  stats::Rng rng(7);
  assign::Workload workload = data::MakeUniformWorkload(region, wconfig, rng);
  data::PerturbWorkload(kParams, kParams, rng, workload);
  return workload;
}

reachability::KernelOptions Kernel(bool on) {
  reachability::KernelOptions kernel;
  kernel.alpha_thresholds = on;
  return kernel;
}

// (a) The batch engine.
PipelineResult RunEngine(const assign::Workload& workload,
                         const reachability::ReachabilityModel* model,
                         bool pruner_on, bool kernel_on) {
  assign::EnginePolicy policy;
  policy.u2u_model = model;
  policy.u2e_model = model;
  policy.alpha = kAlpha;
  policy.beta = kBeta;
  policy.rank = assign::RankStrategy::kProbability;
  policy.kernel = Kernel(kernel_on);
  policy.worker_params = kParams;
  policy.task_params = kParams;
  if (pruner_on) policy.pruning_gamma = kGamma;
  assign::ScGuardEngine engine(policy);
  stats::Rng rng(8);
  const assign::MatchResult result = engine.Run(workload, rng);
  PipelineResult out;
  for (const auto& a : result.assignments) {
    out.pairs.insert({a.task_id, a.worker_id});
  }
  out.disclosures = result.metrics.requester_to_worker_msgs;
  return out;
}

// (b) The message-level protocol parties.
PipelineResult RunParties(const assign::Workload& workload,
                          const reachability::ReachabilityModel* model,
                          bool kernel_on) {
  core::TaskingServer server(model, kAlpha, Kernel(kernel_on));
  std::vector<core::WorkerDevice> devices;
  for (const auto& w : workload.workers) {
    devices.emplace_back(w.id, w.location, w.reach_radius_m, kParams);
    server.RegisterWorker({w.id, w.noisy_location, w.reach_radius_m});
  }
  core::ProtocolCoordinator coordinator(&server, model, kBeta);
  PipelineResult out;
  for (const auto& t : workload.tasks) {
    const core::RequesterDevice requester(t.id, t.location, kParams);
    const core::TaskRequest request{t.id, t.noisy_location};
    const core::TaskOutcome outcome =
        coordinator.AssignTask(requester, request, devices);
    out.disclosures += outcome.disclosures;
    if (outcome.assigned_worker.has_value()) {
      out.pairs.insert({t.id, *outcome.assigned_worker});
    }
  }
  return out;
}

// (c) A dynamic-simulator-style driver over the raw stages.
PipelineResult RunStageDriver(const assign::Workload& workload,
                              const reachability::ReachabilityModel* model,
                              bool pruner_on, bool kernel_on) {
  assign::U2uCandidateStage::Config u2u_config;
  u2u_config.model = model;
  u2u_config.alpha = kAlpha;
  u2u_config.kernel = Kernel(kernel_on);
  if (pruner_on) {
    u2u_config.pruning = assign::U2uCandidateStage::Pruning{
        kGamma, index::PrunerBackend::kGrid, kParams, kParams,
        workload.region};
  }
  assign::U2uCandidateStage u2u(std::move(u2u_config));
  u2u.ReserveWorkers(workload.workers.size());
  for (const auto& w : workload.workers) {
    u2u.AddWorker(w.noisy_location, w.reach_radius_m);
  }
  assign::U2eRankStage u2e(
      {.model = model, .rank = assign::RankStrategy::kProbability,
       .kernel = {}});
  const assign::E2eContactStage contact(
      {.rank = assign::RankStrategy::kProbability, .beta = kBeta,
       .beta_mode = assign::BetaMode::kEveryContact, .redundancy_k = 1});

  PipelineResult out;
  std::vector<std::pair<double, size_t>> ranked;
  for (const auto& t : workload.tasks) {
    const std::vector<uint32_t>& candidates = u2u.Collect(t.noisy_location);
    u2e.Rank(u2u.soa(), candidates, t.location, /*random_rank=*/nullptr,
             ranked);
    const auto outcome = contact.Contact(ranked, [&](size_t i) {
      const assign::Worker& w = workload.workers[i];
      if (!w.CanReach(t.location)) return false;
      u2u.MarkMatched(static_cast<uint32_t>(i));
      out.pairs.insert({t.id, w.id});
      return true;
    });
    out.disclosures += outcome.disclosures;
  }
  return out;
}

class StageEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new assign::Workload(MakeWorkload());
    binary_ = new reachability::BinaryModel();
    analytical_ = new reachability::AnalyticalModel(kParams);
    reachability::EmpiricalModelConfig config;
    config.region = workload_->region;
    config.num_samples = 20000;
    stats::Rng rng(9);
    auto built =
        reachability::EmpiricalModel::Build(config, kParams, kParams, rng);
    ASSERT_TRUE(built.ok());
    empirical_ = new reachability::EmpiricalModel(std::move(*built));
  }

  static void TearDownTestSuite() {
    delete empirical_;
    delete analytical_;
    delete binary_;
    delete workload_;
  }

  static std::vector<const reachability::ReachabilityModel*> Models() {
    return {binary_, analytical_, empirical_};
  }

  static const assign::Workload* workload_;
  static const reachability::BinaryModel* binary_;
  static const reachability::AnalyticalModel* analytical_;
  static const reachability::EmpiricalModel* empirical_;
};

const assign::Workload* StageEquivalenceTest::workload_ = nullptr;
const reachability::BinaryModel* StageEquivalenceTest::binary_ = nullptr;
const reachability::AnalyticalModel* StageEquivalenceTest::analytical_ =
    nullptr;
const reachability::EmpiricalModel* StageEquivalenceTest::empirical_ = nullptr;

TEST_F(StageEquivalenceTest, EngineMatchesPartiesAndDriver) {
  for (const auto* model : Models()) {
    for (const bool kernel_on : {false, true}) {
      SCOPED_TRACE(std::string(model->name()) +
                   (kernel_on ? "/kernel" : "/direct"));
      const PipelineResult engine =
          RunEngine(*workload_, model, /*pruner_on=*/false, kernel_on);
      const PipelineResult parties = RunParties(*workload_, model, kernel_on);
      const PipelineResult driver =
          RunStageDriver(*workload_, model, /*pruner_on=*/false, kernel_on);
      EXPECT_EQ(engine.pairs, parties.pairs);
      EXPECT_EQ(engine.disclosures, parties.disclosures);
      EXPECT_EQ(engine.pairs, driver.pairs);
      EXPECT_EQ(engine.disclosures, driver.disclosures);
      EXPECT_FALSE(engine.pairs.empty());
    }
  }
}

// The pruning index is an engine/stage facility with no party-level
// counterpart, so pruned runs compare the two stage-built pipelines.
TEST_F(StageEquivalenceTest, PrunedEngineMatchesDriver) {
  for (const auto* model : Models()) {
    for (const bool kernel_on : {false, true}) {
      SCOPED_TRACE(std::string(model->name()) +
                   (kernel_on ? "/kernel" : "/direct"));
      const PipelineResult engine =
          RunEngine(*workload_, model, /*pruner_on=*/true, kernel_on);
      const PipelineResult driver =
          RunStageDriver(*workload_, model, /*pruner_on=*/true, kernel_on);
      EXPECT_EQ(engine.pairs, driver.pairs);
      EXPECT_EQ(engine.disclosures, driver.disclosures);
      EXPECT_FALSE(engine.pairs.empty());
    }
  }
}

// Pruning must not change decisions either (the rectangles are
// conservative at this gamma for every candidate the filter accepts).
TEST_F(StageEquivalenceTest, PruningPreservesAssignments) {
  for (const auto* model : Models()) {
    const PipelineResult unpruned =
        RunEngine(*workload_, model, /*pruner_on=*/false, /*kernel_on=*/true);
    const PipelineResult pruned =
        RunEngine(*workload_, model, /*pruner_on=*/true, /*kernel_on=*/true);
    // gamma < 1 rectangles can clip true candidates, but at 0.9 on this
    // workload the sets coincide; assert subset + near-equality so the test
    // stays robust to model-tail differences.
    EXPECT_TRUE(std::includes(unpruned.pairs.begin(), unpruned.pairs.end(),
                              pruned.pairs.begin(), pruned.pairs.end()) ||
                unpruned.pairs == pruned.pairs);
  }
}

// The broadcast variant's self-selection floor is a named constant now;
// pin its value so a silent change cannot drift the leakage accounting.
TEST(ContactStageTest, SelfRevealFloorIsPointOne) {
  EXPECT_DOUBLE_EQ(assign::kMinSelfRevealProbability, 0.1);
}

}  // namespace
}  // namespace scguard
