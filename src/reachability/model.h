#ifndef SCGUARD_REACHABILITY_MODEL_H_
#define SCGUARD_REACHABILITY_MODEL_H_

#include <cstddef>
#include <string_view>

namespace scguard::reachability {

/// Which SCGuard protocol stage a reachability query is asked in; the noise
/// on the observed distance differs per stage (paper Table I).
enum class Stage {
  /// Uncertain-to-uncertain: the server sees perturbed worker *and*
  /// perturbed task locations.
  kU2U,
  /// Uncertain-to-exact: the requester knows the exact task location and
  /// the perturbed worker location.
  kU2E,
};

constexpr std::string_view StageName(Stage stage) {
  return stage == Stage::kU2U ? "U2U" : "U2E";
}

/// Quantifies the probability that a worker can reach a task given only the
/// observed (noisy) distance between them: Pr(d(w, t) <= R_w | d').
///
/// Implementations correspond to the paper's three options: the binary
/// "oblivious" step function, the analytical BND/Rice approximation
/// (Sec. IV-B1), and the Monte-Carlo empirical tables (Sec. IV-B2).
class ReachabilityModel {
 public:
  virtual ~ReachabilityModel() = default;

  /// Reachability probability at `stage` for observed distance
  /// `observed_distance_m` (>= 0) and worker reach radius `reach_radius_m`.
  virtual double ProbReachable(Stage stage, double observed_distance_m,
                               double reach_radius_m) const = 0;

  /// Batched evaluation over contiguous arrays: out[i] = ProbReachable(
  /// stage, observed_distance_m[i], reach_radius_m[i]). Bit-identical to
  /// the scalar calls; overrides exist so the per-element cost skips the
  /// virtual dispatch and re-hoists per-stage state (the engine's U2E
  /// scoring and the batch matcher feed structure-of-arrays scans through
  /// this).
  virtual void ProbReachableBatch(Stage stage,
                                  const double* observed_distance_m,
                                  const double* reach_radius_m, size_t n,
                                  double* out) const {
    for (size_t i = 0; i < n; ++i) {
      out[i] = ProbReachable(stage, observed_distance_m[i], reach_radius_m[i]);
    }
  }

  /// Short identifier used in experiment tables ("binary", "analytical",
  /// "empirical").
  virtual std::string_view name() const = 0;
};

}  // namespace scguard::reachability

#endif  // SCGUARD_REACHABILITY_MODEL_H_
