file(REMOVE_RECURSE
  "../bench/bench_fig9_vary_epsilon"
  "../bench/bench_fig9_vary_epsilon.pdb"
  "CMakeFiles/bench_fig9_vary_epsilon.dir/bench_fig9_vary_epsilon.cc.o"
  "CMakeFiles/bench_fig9_vary_epsilon.dir/bench_fig9_vary_epsilon.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_vary_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
