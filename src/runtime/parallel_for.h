#ifndef SCGUARD_RUNTIME_PARALLEL_FOR_H_
#define SCGUARD_RUNTIME_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "runtime/thread_pool.h"

namespace scguard::runtime {

/// Partitions [begin, end) into contiguous chunks of at most `grain`
/// items and runs `fn(chunk_begin, chunk_end)` for every chunk, spread
/// across `pool` (plus the calling thread, which participates).
///
/// Deterministic by construction:
///  * Chunking depends only on (begin, end, grain) — never on the thread
///    count — so callers that write results into index-addressed slots
///    get bit-identical output for any pool size, including none.
///  * The returned Status is OK iff every chunk returned OK, otherwise
///    the error of the lowest-indexed failing chunk (the same one the
///    serial path would report).
///
/// Runs serially, in chunk order, when `pool` is null, has one thread, or
/// when called from inside a pool worker (nested ParallelFor must not
/// block on its own saturated pool). `fn` must be safe to invoke
/// concurrently from multiple threads on disjoint chunks. Requires
/// grain > 0.
Status ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                   int64_t grain,
                   const std::function<Status(int64_t, int64_t)>& fn);

}  // namespace scguard::runtime

#endif  // SCGUARD_RUNTIME_PARALLEL_FOR_H_
