#ifndef SCGUARD_COMMON_STR_FORMAT_H_
#define SCGUARD_COMMON_STR_FORMAT_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace scguard {

/// Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (void)(os << ... << args);
  return os.str();
}

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// Formats a double with `digits` significant fraction digits, no trailing
/// zeros beyond that ("12.50" with digits=2).
std::string FormatDouble(double value, int digits);

/// Escapes `text` for use inside a JSON string literal (quotes, backslash,
/// and control characters; the surrounding quotes are the caller's).
std::string JsonEscape(std::string_view text);

}  // namespace scguard

#endif  // SCGUARD_COMMON_STR_FORMAT_H_
