#include "index/grid_index.h"

#include <algorithm>

#include "common/check.h"

namespace scguard::index {

GridIndex::GridIndex(const geo::BoundingBox& region, int cells_per_axis)
    : region_(region),
      cells_(cells_per_axis),
      cell_w_(region.Width() / cells_per_axis),
      cell_h_(region.Height() / cells_per_axis),
      cells_entries_(static_cast<size_t>(cells_per_axis) *
                     static_cast<size_t>(cells_per_axis)) {
  SCGUARD_CHECK(!region.empty() && cells_per_axis >= 1);
  SCGUARD_CHECK(cell_w_ > 0.0 && cell_h_ > 0.0);
}

GridIndex::CellRange GridIndex::CellsFor(const geo::BoundingBox& box) const {
  auto clamp = [this](double v) {
    return std::clamp(static_cast<int>(v), 0, cells_ - 1);
  };
  return {clamp((box.min_x - region_.min_x) / cell_w_),
          clamp((box.max_x - region_.min_x) / cell_w_),
          clamp((box.min_y - region_.min_y) / cell_h_),
          clamp((box.max_y - region_.min_y) / cell_h_)};
}

void GridIndex::Insert(const geo::BoundingBox& box, int64_t id) {
  SCGUARD_CHECK(!box.empty());
  const size_t entry = boxes_.size();
  boxes_.push_back(box);
  ids_.push_back(id);
  stamps_.push_back(0);
  removed_.push_back(0);
  live_by_id_[id].push_back(entry);
  ++live_;
  const CellRange range = CellsFor(box);
  for (int cy = range.y0; cy <= range.y1; ++cy) {
    for (int cx = range.x0; cx <= range.x1; ++cx) {
      cells_entries_[CellSlot(cx, cy)].push_back(entry);
    }
  }
}

void GridIndex::Query(const geo::BoundingBox& query,
                      const std::function<void(int64_t)>& fn) const {
  if (boxes_.empty() || query.empty()) return;
  ++current_stamp_;
  if (current_stamp_ == 0) {  // Stamp counter wrapped; reset all.
    std::fill(stamps_.begin(), stamps_.end(), 0u);
    current_stamp_ = 1;
  }
  const CellRange range = CellsFor(query);
  for (int cy = range.y0; cy <= range.y1; ++cy) {
    for (int cx = range.x0; cx <= range.x1; ++cx) {
      for (size_t entry : cells_entries_[CellSlot(cx, cy)]) {
        if (stamps_[entry] == current_stamp_) continue;
        stamps_[entry] = current_stamp_;
        if (removed_[entry]) continue;
        if (boxes_[entry].Intersects(query)) fn(ids_[entry]);
      }
    }
  }
}

std::vector<int64_t> GridIndex::QueryIds(const geo::BoundingBox& query) const {
  std::vector<int64_t> out;
  QueryIds(query, out);
  return out;
}

void GridIndex::QueryIds(const geo::BoundingBox& query,
                         std::vector<int64_t>& out) const {
  out.clear();
  Query(query, [&out](int64_t id) { out.push_back(id); });
}

size_t GridIndex::Remove(int64_t id) {
  const auto it = live_by_id_.find(id);
  if (it == live_by_id_.end()) return 0;
  const size_t count = it->second.size();
  for (const size_t entry : it->second) removed_[entry] = 1;
  live_ -= count;
  live_by_id_.erase(it);
  return count;
}

}  // namespace scguard::index
