# Empty dependencies file for bench_fig8_model_vs_data.
# This may be replaced when dependencies are built.
