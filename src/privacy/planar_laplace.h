#ifndef SCGUARD_PRIVACY_PLANAR_LAPLACE_H_
#define SCGUARD_PRIVACY_PLANAR_LAPLACE_H_

#include "common/result.h"
#include "geo/point.h"
#include "stats/rng.h"

namespace scguard::privacy {

/// The planar Laplace noise distribution of Andrés et al. (CCS'13), the
/// mechanism that achieves geo-indistinguishability.
///
/// Density at displacement z from the true location: eps^2/(2 pi) e^{-eps |z|}
/// where `eps` is the *per-meter* epsilon. Sampling uses the polar method:
/// the angle is uniform, and the radius is drawn by inverting the radial CDF
/// C(r0) = 1 - (1 + eps r0) e^{-eps r0} through the Lambert W-1 branch.
class PlanarLaplace {
 public:
  /// Requires unit_epsilon > 0 (per-meter budget, typically eps / r).
  explicit PlanarLaplace(double unit_epsilon);

  double unit_epsilon() const { return eps_; }

  /// Density of the noise displacement `z` (a vector from the true point).
  double Pdf(geo::Point z) const;

  /// Radial CDF: probability that the noise magnitude is <= r0.
  double RadialCdf(double r0) const;

  /// Inverse radial CDF; p in [0, 1). C^-1(p) = -(1/eps)(W-1((p-1)/e) + 1).
  double InverseRadialCdf(double p) const;

  /// Radius r_R such that the true location lies within r_R of the reported
  /// one with probability at least gamma (Sec. 5 of Andrés et al.; used by
  /// the U2U pruning of paper Sec. IV-C1). gamma in (0, 1).
  double ConfidenceRadius(double gamma) const;

  /// Draws one noise displacement.
  geo::Point Sample(stats::Rng& rng) const;

  /// Exact probability that the perturbed point lands inside a disk of
  /// radius `disk_radius` whose center lies `center_distance` away from the
  /// true location (both in meters, >= 0). Computed by 1-D radial
  /// quadrature of the noise density against the disk's angular coverage.
  ///
  /// This is the gold-standard U2E reachability probability: with the task
  /// exact and the worker perturbed, Pr(d(w, t) <= R_w | d(w', t) = nu) =
  /// DiskProbability(nu, R_w).
  double DiskProbability(double center_distance, double disk_radius) const;

  /// Mean of the noise magnitude: 2 / eps.
  double RadialMean() const { return 2.0 / eps_; }

  /// Per-coordinate variance of the noise: 3 / eps^2 (the radial second
  /// moment 6/eps^2 split over two symmetric coordinates).
  double CoordinateVariance() const { return 3.0 / (eps_ * eps_); }

 private:
  double eps_;
};

}  // namespace scguard::privacy

#endif  // SCGUARD_PRIVACY_PLANAR_LAPLACE_H_
