file(REMOVE_RECURSE
  "libscguard_stats.a"
)
