#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "index/kdtree.h"
#include "stats/rng.h"

namespace scguard::index {
namespace {

std::vector<KdTree::Entry> RandomEntries(int n, stats::Rng& rng, double extent) {
  std::vector<KdTree::Entry> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    entries.push_back(
        {{rng.UniformDouble(0, extent), rng.UniformDouble(0, extent)}, i});
  }
  return entries;
}

int64_t BruteForceNearest(const std::vector<KdTree::Entry>& entries,
                          geo::Point query,
                          const std::function<bool(int64_t)>& skip = nullptr) {
  int64_t best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (const auto& e : entries) {
    if (skip && skip(e.id)) continue;
    const double d = geo::Distance(e.point, query);
    if (d < best_d) {
      best_d = d;
      best = e.id;
    }
  }
  return best;
}

TEST(KdTreeTest, EmptyTree) {
  KdTree tree({});
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Nearest({0, 0}).id, -1);
  EXPECT_TRUE(tree.KNearest({0, 0}, 3).empty());
  EXPECT_TRUE(tree.WithinRadius({0, 0}, 100).empty());
}

TEST(KdTreeTest, SingleEntry) {
  KdTree tree({{{5, 5}, 42}});
  const auto n = tree.Nearest({0, 0});
  EXPECT_EQ(n.id, 42);
  EXPECT_NEAR(n.distance, std::hypot(5, 5), 1e-12);
}

TEST(KdTreeTest, NearestMatchesBruteForce) {
  stats::Rng rng(1);
  const auto entries = RandomEntries(500, rng, 10000);
  KdTree tree(entries);
  for (int q = 0; q < 200; ++q) {
    const geo::Point query{rng.UniformDouble(-1000, 11000),
                           rng.UniformDouble(-1000, 11000)};
    EXPECT_EQ(tree.Nearest(query).id, BruteForceNearest(entries, query))
        << "query " << q;
  }
}

TEST(KdTreeTest, NearestWithSkipPredicate) {
  stats::Rng rng(2);
  const auto entries = RandomEntries(200, rng, 5000);
  KdTree tree(entries);
  // Skip even ids.
  const auto skip = [](int64_t id) { return id % 2 == 0; };
  for (int q = 0; q < 100; ++q) {
    const geo::Point query{rng.UniformDouble(0, 5000), rng.UniformDouble(0, 5000)};
    const auto got = tree.Nearest(query, skip);
    EXPECT_EQ(got.id, BruteForceNearest(entries, query, skip));
    EXPECT_NE(got.id % 2, 0);
  }
}

TEST(KdTreeTest, SkipEverythingReturnsNone) {
  stats::Rng rng(3);
  KdTree tree(RandomEntries(50, rng, 1000));
  EXPECT_EQ(tree.Nearest({0, 0}, [](int64_t) { return true; }).id, -1);
}

TEST(KdTreeTest, KNearestMatchesBruteForce) {
  stats::Rng rng(4);
  const auto entries = RandomEntries(300, rng, 8000);
  KdTree tree(entries);
  for (int q = 0; q < 50; ++q) {
    const geo::Point query{rng.UniformDouble(0, 8000), rng.UniformDouble(0, 8000)};
    const int k = 1 + static_cast<int>(rng.UniformInt(10));
    const auto got = tree.KNearest(query, k);
    ASSERT_EQ(got.size(), static_cast<size_t>(k));
    // Sorted ascending.
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_GE(got[i].distance, got[i - 1].distance);
    }
    // Matches brute-force distances (ids may tie).
    std::vector<double> brute;
    for (const auto& e : entries) brute.push_back(geo::Distance(e.point, query));
    std::sort(brute.begin(), brute.end());
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(got[static_cast<size_t>(i)].distance, brute[static_cast<size_t>(i)],
                  1e-9);
    }
  }
}

TEST(KdTreeTest, KLargerThanSizeReturnsAll) {
  stats::Rng rng(5);
  KdTree tree(RandomEntries(7, rng, 100));
  EXPECT_EQ(tree.KNearest({50, 50}, 20).size(), 7u);
}

TEST(KdTreeTest, WithinRadiusMatchesBruteForce) {
  stats::Rng rng(6);
  const auto entries = RandomEntries(400, rng, 10000);
  KdTree tree(entries);
  for (int q = 0; q < 50; ++q) {
    const geo::Point query{rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000)};
    const double radius = rng.UniformDouble(100, 3000);
    auto got = tree.WithinRadius(query, radius);
    std::set<int64_t> got_ids;
    for (const auto& n : got) {
      got_ids.insert(n.id);
      EXPECT_LE(n.distance, radius);
    }
    std::set<int64_t> expected;
    for (const auto& e : entries) {
      if (geo::Distance(e.point, query) <= radius) expected.insert(e.id);
    }
    EXPECT_EQ(got_ids, expected) << "query " << q;
  }
}

TEST(KdTreeTest, DuplicatePointsAllFound) {
  std::vector<KdTree::Entry> entries;
  for (int i = 0; i < 10; ++i) entries.push_back({{3, 3}, i});
  KdTree tree(entries);
  EXPECT_EQ(tree.WithinRadius({3, 3}, 0.1).size(), 10u);
}

}  // namespace
}  // namespace scguard::index
