#include "sim/dynamic.h"

#include <algorithm>
#include <memory>
#include <cmath>
#include <utility>

#include "assign/stages/candidate_stage.h"
#include "assign/stages/contact_stage.h"
#include "assign/stages/rank_stage.h"
#include "common/check.h"
#include "data/beijing.h"
#include "data/trip_model.h"
#include "obs/trace.h"
#include "privacy/mechanism.h"
#include "reachability/analytical_model.h"
#include "reachability/empirical_model.h"

namespace scguard::sim {
namespace {

geo::Point ClampToRegion(geo::Point p, const geo::BoundingBox& region) {
  return {std::clamp(p.x, region.min_x, region.max_x),
          std::clamp(p.y, region.min_y, region.max_y)};
}

}  // namespace

std::vector<DynamicRoundMetrics> RunDynamicWorkers(const DynamicConfig& config,
                                                   ReportingStrategy strategy) {
  SCGUARD_CHECK(config.rounds >= 1 && config.num_workers >= 1);
  SCGUARD_CHECK(config.joint.Validate().ok());

  const geo::BoundingBox region = data::BeijingRegion();
  stats::Rng rng(config.seed);
  const data::HotspotMixture demand =
      data::HotspotMixture::MakeBeijingLike(region, 24, rng);

  // Per-report privacy level by strategy. The epsilon split carries the
  // joint mechanism spec: splitting changes the budget, not the mechanism.
  const privacy::PrivacyParams per_report =
      strategy == ReportingStrategy::kLocationSetSplit
          ? privacy::PrivacyParams{config.joint.epsilon / config.rounds,
                                   config.joint.radius_m,
                                   config.joint.mechanism}
          : config.joint;
  // The injected re-report mechanism (planar Laplace by default, same draw
  // order as the historical inline sampler).
  const auto report_mechanism =
      privacy::MakeMechanismOrDie(per_report, region);

  // Reachability model consistent with the *claimed* per-report level:
  // the server cannot know more than what devices declare. Mechanisms
  // without a closed-form DiskProbability (grid kinds) get a small
  // empirical table instead of the analytical model; its Monte-Carlo
  // stream is forked off the config seed, never the simulation rng, so
  // the planar-Laplace path is bit-identical to the pre-table code.
  std::unique_ptr<const reachability::ReachabilityModel> model_owner;
  if (privacy::HasClosedFormDiskProbability(per_report.mechanism.kind)) {
    model_owner = std::make_unique<reachability::AnalyticalModel>(per_report);
  } else {
    reachability::EmpiricalModelConfig model_config;
    model_config.region = region;
    model_config.num_samples = 50000;
    model_config.num_shards = 8;
    stats::Rng build_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
    model_owner = std::make_unique<reachability::EmpiricalModel>(
        reachability::EmpiricalModel::Build(model_config, per_report,
                                            build_rng)
            .ValueOrDie());
  }
  const reachability::ReachabilityModel& model = *model_owner;

  // Worker state.
  struct DynamicWorker {
    geo::Point location;
    geo::Point reported;
    double reach = 0;
    double spent_epsilon = 0;
  };
  std::vector<DynamicWorker> workers(static_cast<size_t>(config.num_workers));
  for (auto& w : workers) {
    w.location = demand.Sample(rng);
    w.reach = rng.UniformDouble(config.reach_min_m, config.reach_max_m);
  }

  // The shared protocol stages (DESIGN.md section 10); run-local, like the
  // rest of the simulation state. Reach radii never change across rounds,
  // so the U2U stage's inverted alpha filter (threshold prewarm at first
  // Collect) stays valid for the whole run: per-round location refreshes
  // re-point the noisy coordinates via UpdateWorkerLocation, and round
  // boundaries only reset availability — the critical-distance inversion
  // is never recomputed.
  assign::U2uCandidateStage::Config u2u_config;
  u2u_config.model = &model;
  u2u_config.alpha = config.alpha;
  assign::U2uCandidateStage u2u(std::move(u2u_config));
  u2u.ReserveWorkers(workers.size());
  for (const auto& w : workers) {
    // Placeholder coordinates: every strategy refreshes the report in
    // round 0 before the first Collect.
    u2u.AddWorker(w.location, w.reach);
  }
  assign::U2eRankStage u2e(
      {.model = &model, .rank = assign::RankStrategy::kProbability,
       .kernel = {}, .audit_epsilon = per_report.epsilon});
  const assign::E2eContactStage contact(
      {.rank = assign::RankStrategy::kProbability, .beta = config.beta,
       .beta_mode = assign::BetaMode::kEveryContact, .redundancy_k = 1});

  // Task perturbation runs at the joint level every time (tasks are
  // one-shot); the mechanism itself is deterministic state, built once
  // instead of tasks_per_round * rounds times.
  const auto task_mechanism =
      privacy::MakeMechanismOrDie(config.joint, region);

  std::vector<DynamicRoundMetrics> results;
  std::vector<std::pair<double, size_t>> ranked;  // Reused across tasks.
  for (int round = 0; round < config.rounds; ++round) {
    // Movement (not in round 0: workers register where they are).
    if (round > 0) {
      for (auto& w : workers) {
        const double angle = rng.UniformDouble(0.0, 2.0 * M_PI);
        const double step = rng.UniformDouble(0.0, config.max_move_m);
        w.location = ClampToRegion(
            w.location + geo::Point{step * std::cos(angle), step * std::sin(angle)},
            region);
      }
    }

    // Reporting.
    for (size_t i = 0; i < workers.size(); ++i) {
      auto& w = workers[i];
      const bool refresh = round == 0 || strategy != ReportingStrategy::kReportOnce;
      if (refresh) {
        w.reported = report_mechanism->Perturb(w.location, rng);
        w.spent_epsilon += per_report.epsilon;
        u2u.UpdateWorkerLocation(static_cast<uint32_t>(i), w.reported);
      }
    }

    // One round of online assignment over fresh tasks; every worker is
    // available again at the round boundary.
    u2u.ResetAvailability();
    DynamicRoundMetrics metrics;
    metrics.round = round;
    double travel_sum = 0;
    const obs::Span round_span("sim.dynamic_round");
    for (int t = 0; t < config.tasks_per_round; ++t) {
      // Synthetic task id for the audit trail: stable for a fixed config,
      // unique across the whole run.
      const int64_t task_id =
          static_cast<int64_t>(round) * config.tasks_per_round + t;
      const geo::Point task = demand.Sample(rng);
      const geo::Point task_noisy = task_mechanism->Perturb(task, rng);
      // U2U over reported locations, U2E against the exact task location.
      const std::vector<uint32_t>& candidates = u2u.Collect(task_noisy);
      u2e.Rank(u2u.soa(), candidates, task, /*random_rank=*/nullptr, ranked,
               task_id);
      const auto outcome = contact.Contact(
          ranked,
          [&](size_t i) {
            const double d_true = geo::Distance(workers[i].location, task);
            if (d_true > workers[i].reach) return false;
            u2u.MarkMatched(static_cast<uint32_t>(i));
            workers[i].location = task;  // Completes the task, ends up there.
            metrics.assigned += 1;
            travel_sum += d_true;
            return true;
          },
          task_id, assign::UnknownAdmitFilter{});
      metrics.false_hits += static_cast<double>(outcome.false_hits);
    }
    metrics.travel_m = metrics.assigned > 0 ? travel_sum / metrics.assigned : 0;

    double eps_max = 0, error_sum = 0;
    for (const auto& w : workers) {
      eps_max = std::max(eps_max, w.spent_epsilon);
      error_sum += geo::Distance(w.location, w.reported);
    }
    metrics.effective_epsilon = eps_max;
    metrics.report_error_m = error_sum / static_cast<double>(workers.size());
    results.push_back(metrics);
  }
  return results;
}

}  // namespace scguard::sim
