// Thread-count / shard-size invariance of the engine's sharded U2U scan
// (DESIGN.md section 9), plus the active-set compaction equivalence and
// the removal support it leans on in the index layer. The determinism
// contract under test: for a fixed policy and workload, MatchResult and
// the caller's RNG stream are bit-identical for every
// (pool, shard_size, active_set) combination.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "assign/scguard_engine.h"
#include "data/workload.h"
#include "geo/bbox.h"
#include "index/grid_index.h"
#include "index/pruning.h"
#include "reachability/analytical_model.h"
#include "reachability/kernel.h"
#include "runtime/task_group.h"
#include "runtime/thread_pool.h"
#include "stats/rng.h"

namespace scguard::assign {
namespace {

using privacy::PrivacyParams;

constexpr PrivacyParams kDefault{0.7, 800.0};

Workload NoisyWorkload(int n, uint64_t seed) {
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});
  data::WorkloadConfig config;
  config.num_workers = n;
  config.num_tasks = n;
  stats::Rng rng(seed);
  Workload w = data::MakeUniformWorkload(region, config, rng);
  data::PerturbWorkload(kDefault, kDefault, rng, w);
  return w;
}

/// Asserts two runs produced the same protocol outcome bit for bit:
/// assignment sequence (ids and exact travel distances) and every
/// decision-derived metric. Timing metrics are excluded.
void ExpectBitIdentical(const MatchResult& a, const MatchResult& b,
                        const std::string& label) {
  ASSERT_EQ(a.assignments.size(), b.assignments.size()) << label;
  for (size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].task_id, b.assignments[i].task_id) << label;
    EXPECT_EQ(a.assignments[i].worker_id, b.assignments[i].worker_id) << label;
    EXPECT_EQ(a.assignments[i].travel_m, b.assignments[i].travel_m) << label;
  }
  EXPECT_EQ(a.metrics.assigned_tasks, b.metrics.assigned_tasks) << label;
  EXPECT_EQ(a.metrics.candidates_sum, b.metrics.candidates_sum) << label;
  EXPECT_EQ(a.metrics.false_hits, b.metrics.false_hits) << label;
  EXPECT_EQ(a.metrics.false_dismissals, b.metrics.false_dismissals) << label;
  EXPECT_EQ(a.metrics.requester_to_worker_msgs,
            b.metrics.requester_to_worker_msgs)
      << label;
  EXPECT_EQ(a.metrics.precision_sum, b.metrics.precision_sum) << label;
  EXPECT_EQ(a.metrics.recall_sum, b.metrics.recall_sum) << label;
  EXPECT_EQ(a.metrics.u2u_scanned, b.metrics.u2u_scanned) << label;
}

EnginePolicy BasePolicy(const reachability::AnalyticalModel* model) {
  EnginePolicy policy;
  policy.u2u_model = model;
  policy.u2e_model = model;
  policy.alpha = 0.1;
  policy.beta = 0.25;
  policy.rank = RankStrategy::kProbability;
  policy.worker_params = kDefault;
  policy.task_params = kDefault;
  return policy;
}

// The invariance matrix of ISSUE 4: pools {serial, 1, 2, 8} x shard sizes
// {64, 1024} x pruner {off, grid, rtree} x alpha-thresholds {on, off},
// each cell compared bit for bit (including the caller's RNG stream)
// against the legacy configuration: no pool, no active set.
TEST(EngineParallelTest, ThreadShardPrunerThresholdInvariance) {
  const reachability::AnalyticalModel model(kDefault);
  const Workload workload = NoisyWorkload(300, 20260806);

  // Pools are shared across cells; every Run must leave them reusable.
  std::vector<std::unique_ptr<runtime::ThreadPool>> pools;
  pools.push_back(nullptr);  // Serial.
  for (const int threads : {1, 2, 8}) {
    pools.push_back(std::make_unique<runtime::ThreadPool>(threads));
  }

  struct PrunerCase {
    const char* name;
    std::optional<double> gamma;
    index::PrunerBackend backend;
  };
  const PrunerCase pruners[] = {
      {"off", std::nullopt, index::PrunerBackend::kGrid},
      {"grid", 0.9, index::PrunerBackend::kGrid},
      {"rtree", 0.9, index::PrunerBackend::kRTree},
  };

  for (const bool thresholds : {true, false}) {
    for (const PrunerCase& pc : pruners) {
      // Baseline: the legacy serial full-rescan path.
      EnginePolicy base = BasePolicy(&model);
      base.kernel.alpha_thresholds = thresholds;
      base.pruning_gamma = pc.gamma;
      base.pruning_backend = pc.backend;
      base.runtime.pool = nullptr;
      base.runtime.active_set = false;
      ScGuardEngine baseline(base);
      stats::Rng base_rng(7);
      const MatchResult expected = baseline.Run(workload, base_rng);
      ASSERT_GT(expected.metrics.assigned_tasks, 0);
      // Where the baseline left the stream; every cell must land exactly
      // here too (the scan consumes no draws regardless of configuration).
      const double expected_next_draw = base_rng.UniformDouble();

      for (const auto& pool : pools) {
        for (const int shard_size : {64, 1024}) {
          EnginePolicy policy = BasePolicy(&model);
          policy.kernel.alpha_thresholds = thresholds;
          policy.pruning_gamma = pc.gamma;
          policy.pruning_backend = pc.backend;
          policy.runtime.pool = pool.get();
          policy.runtime.shard_size = shard_size;
          policy.runtime.active_set = true;
          ScGuardEngine engine(policy);
          stats::Rng rng(7);
          const MatchResult result = engine.Run(workload, rng);
          const std::string label =
              std::string("thresholds=") + (thresholds ? "on" : "off") +
              " pruner=" + pc.name +
              " threads=" + std::to_string(pool ? pool->num_threads() : 0) +
              " shard=" + std::to_string(shard_size);
          ExpectBitIdentical(expected, result, label);
          // Identical RNG stream: the scan consumed no draws either way.
          EXPECT_EQ(expected_next_draw, rng.UniformDouble()) << label;
        }
      }
    }
  }
}

// Nested use: Run invoked from inside a pool worker (as ExperimentRunner's
// seed fan-out does) must fall back to a serial scan, not deadlock, and
// still produce the identical result.
TEST(EngineParallelTest, NestedInsidePoolWorkerFallsBackSerially) {
  const reachability::AnalyticalModel model(kDefault);
  const Workload workload = NoisyWorkload(150, 99);
  runtime::ThreadPool pool(4);

  EnginePolicy policy = BasePolicy(&model);
  policy.runtime.pool = &pool;
  policy.runtime.shard_size = 32;
  ScGuardEngine engine(policy);

  stats::Rng serial_rng(3);
  const MatchResult expected = engine.Run(workload, serial_rng);

  MatchResult nested;
  {
    runtime::TaskGroup group(pool);
    group.Run([&]() -> Status {
      EXPECT_TRUE(runtime::ThreadPool::InWorkerThread());
      stats::Rng rng(3);
      nested = engine.Run(workload, rng);
      return Status::OK();
    });
    ASSERT_TRUE(group.Wait().ok());
  }
  ExpectBitIdentical(expected, nested, "nested-in-pool");
}

// Active-set compaction is an optimization, not a semantic change: on/off
// must agree on every decision, and with it on the scan work per task must
// shrink as workers get matched.
TEST(EngineParallelTest, ActiveSetMatchesFullScanAndShrinksWork) {
  const reachability::AnalyticalModel model(kDefault);
  const Workload workload = NoisyWorkload(400, 11);

  EnginePolicy on = BasePolicy(&model);
  on.runtime.active_set = true;
  on.runtime.shard_size = 64;
  EnginePolicy off = BasePolicy(&model);
  off.runtime.active_set = false;
  off.runtime.shard_size = 64;

  ScGuardEngine engine_on(on);
  ScGuardEngine engine_off(off);
  stats::Rng rng_on(5);
  stats::Rng rng_off(5);
  const MatchResult r_on = engine_on.Run(workload, rng_on);
  const MatchResult r_off = engine_off.Run(workload, rng_off);
  ExpectBitIdentical(r_on, r_off, "active-set on vs off");
  EXPECT_EQ(rng_on.UniformDouble(), rng_off.UniformDouble());

  // Both modes skip matched workers, so the scanned totals agree; the
  // decay is visible in the first/last per-task snapshots once anything
  // was assigned.
  EXPECT_EQ(r_on.metrics.u2u_scanned, r_off.metrics.u2u_scanned);
  ASSERT_GT(r_on.metrics.assigned_tasks, 0);
  EXPECT_LT(r_on.metrics.u2u_scanned_last_task,
            r_on.metrics.u2u_scanned_first_task);
  EXPECT_EQ(r_on.metrics.u2u_scanned_first_task, 400);
}

// Same equivalence through a pruning index: with the active set on the
// engine removes matched workers from the index instead of filtering them
// per query.
TEST(EngineParallelTest, ActiveSetMatchesFullScanUnderPruner) {
  const reachability::AnalyticalModel model(kDefault);
  const Workload workload = NoisyWorkload(300, 17);

  for (const auto backend :
       {index::PrunerBackend::kLinearScan, index::PrunerBackend::kGrid,
        index::PrunerBackend::kRTree}) {
    EnginePolicy on = BasePolicy(&model);
    on.pruning_gamma = 0.9;
    on.pruning_backend = backend;
    on.runtime.active_set = true;
    EnginePolicy off = on;
    off.runtime.active_set = false;

    ScGuardEngine engine_on(on);
    ScGuardEngine engine_off(off);
    stats::Rng rng_on(5);
    stats::Rng rng_off(5);
    const MatchResult r_on = engine_on.Run(workload, rng_on);
    const MatchResult r_off = engine_off.Run(workload, rng_off);
    const std::string label =
        std::string("pruner backend ") +
        std::string(index::PrunerBackendName(backend));
    ExpectBitIdentical(r_on, r_off, label);
    ASSERT_GT(r_on.metrics.assigned_tasks, 0) << label;
    // Removal makes the index return strictly fewer ids over the run.
    EXPECT_LE(r_on.metrics.u2u_scanned, r_off.metrics.u2u_scanned) << label;
  }
}

TEST(GridIndexRemoveTest, QueryAfterRemoveReAddAndIdempotence) {
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {1000, 1000});
  index::GridIndex grid(region, 8);
  grid.Insert({150, 150}, 50.0, 1);   // Rectangle [100,200]^2.
  grid.Insert({225, 225}, 75.0, 2);   // Rectangle [150,300]^2.
  ASSERT_EQ(grid.size(), 2u);

  const geo::BoundingBox everywhere = region;
  EXPECT_EQ(grid.QueryIds(everywhere).size(), 2u);

  // Remove drops the entry from every query it previously matched.
  EXPECT_EQ(grid.Remove(1), 1u);
  EXPECT_EQ(grid.size(), 1u);
  {
    const auto ids = grid.QueryIds(everywhere);
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], 2);
  }

  // Idempotent: a second removal is a no-op.
  EXPECT_EQ(grid.Remove(1), 0u);
  EXPECT_EQ(grid.Remove(777), 0u);  // Unknown id too.
  EXPECT_EQ(grid.size(), 1u);

  // Re-add under the same id: live again, with the new rectangle only.
  grid.Insert({850, 850}, 50.0, 1);  // Rectangle [800,900]^2.
  EXPECT_EQ(grid.size(), 2u);
  {
    const auto ids = grid.QueryIds(
        geo::BoundingBox::FromCorners({790, 790}, {950, 950}));
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], 1);
  }
  // The old rectangle of id 1 stays dead.
  {
    const auto ids = grid.QueryIds(
        geo::BoundingBox::FromCorners({90, 90}, {140, 140}));
    EXPECT_TRUE(ids.empty());
  }
}

TEST(GridIndexRemoveTest, RemovesEveryEntryOfAnId) {
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {1000, 1000});
  index::GridIndex grid(region, 8);
  grid.Insert({50, 50}, 50.0, 5);
  grid.Insert({550, 550}, 50.0, 5);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid.Remove(5), 2u);
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.QueryIds(region).empty());
}

TEST(PrunerRemoveTest, AllBackendsStopReturningRemovedWorkers) {
  std::vector<index::UncertainRegionPruner::WorkerRegion> regions;
  for (int i = 0; i < 20; ++i) {
    regions.push_back({i, geo::Point{100.0 * i, 100.0 * i}, 500.0});
  }
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {2000, 2000});

  for (const auto backend :
       {index::PrunerBackend::kLinearScan, index::PrunerBackend::kGrid,
        index::PrunerBackend::kRTree}) {
    index::UncertainRegionPruner pruner(regions, kDefault, kDefault,
                                        /*gamma=*/0.9, backend, region);
    const geo::Point probe{500.0, 500.0};
    std::vector<int64_t> before = pruner.Candidates(probe);
    ASSERT_FALSE(before.empty());
    const int64_t victim = before.front();

    pruner.Remove(victim);
    pruner.Remove(victim);  // Idempotent.
    std::vector<int64_t> after = pruner.Candidates(probe);
    EXPECT_EQ(after.size(), before.size() - 1);
    for (const int64_t id : after) EXPECT_NE(id, victim);
    EXPECT_TRUE(std::is_sorted(after.begin(), after.end()));
  }
}

// ---- SIMD classification kernel (ISSUE 6 tentpole c) ---------------------

/// A SoA whose certain bounds cover every trichotomy shape:
///  * mode 0: random bounds (mixed accept / band / reject),
///  * mode 1: empty band (accept_sq == reject_sq — nothing is "in band"),
///  * mode 2: all-accept (accept bound above any possible d_sq),
///  * mode 3: all-reject (accept_sq = -1, reject_sq = 0).
reachability::WorkerFilterSoA ClassifierSoA(size_t n, int mode,
                                            stats::Rng& rng) {
  reachability::WorkerFilterSoA soa;
  soa.Resize(n);
  soa.accept_below_sq.resize(n);
  soa.reject_above_sq.resize(n);
  for (size_t i = 0; i < n; ++i) {
    soa.x[i] = rng.UniformDouble(0.0, 20000.0);
    soa.y[i] = rng.UniformDouble(0.0, 20000.0);
    soa.reach_radius_m[i] = rng.UniformDouble(1000.0, 3000.0);
    switch (mode) {
      case 0: {
        const double accept = rng.UniformDouble(0.0, 10000.0);
        soa.accept_below_sq[i] = accept * accept;
        const double reject = accept + rng.UniformDouble(0.0, 8000.0);
        soa.reject_above_sq[i] = reject * reject;
        break;
      }
      case 1: {
        const double edge = rng.UniformDouble(0.0, 15000.0);
        soa.accept_below_sq[i] = edge * edge;
        soa.reject_above_sq[i] = edge * edge;
        break;
      }
      case 2:
        soa.accept_below_sq[i] = 1e18;
        soa.reject_above_sq[i] = 2e18;
        break;
      default:
        soa.accept_below_sq[i] = -1.0;
        soa.reject_above_sq[i] = 0.0;
        break;
    }
  }
  return soa;
}

#if defined(SCGUARD_HAVE_AVX2)
// The AVX2 kernel must agree with the scalar reference bit for bit: same
// surviving indices in the same order, for vector-unaligned counts (tail
// loop), the empty set, and degenerate all-accept / all-reject / empty-band
// bound shapes.
TEST(ClassifyKernelTest, Avx2MatchesScalarBitIdentically) {
  if (!reachability::CpuSupportsAvx2()) {
    GTEST_SKIP() << "host CPU lacks AVX2";
  }
  stats::Rng rng(20260809);
  for (const size_t count : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                             size_t{4}, size_t{5}, size_t{7}, size_t{8},
                             size_t{13}, size_t{16}, size_t{33}, size_t{64},
                             size_t{257}}) {
    for (int mode = 0; mode < 4; ++mode) {
      const auto soa = ClassifierSoA(count, mode, rng);
      std::vector<uint32_t> indices(count);
      for (size_t i = 0; i < count; ++i) {
        indices[i] = static_cast<uint32_t>(i);
      }
      const double tx = rng.UniformDouble(0.0, 20000.0);
      const double ty = rng.UniformDouble(0.0, 20000.0);
      std::vector<uint32_t> accept_s, band_s, accept_v, band_v;
      reachability::ClassifyCertainBandScalar(soa, indices.data(), count, tx,
                                              ty, accept_s, band_s);
      reachability::ClassifyCertainBandAvx2(soa, indices.data(), count, tx, ty,
                                            accept_v, band_v);
      const std::string label =
          "count=" + std::to_string(count) + " mode=" + std::to_string(mode);
      EXPECT_EQ(accept_s, accept_v) << label;
      EXPECT_EQ(band_s, band_v) << label;
      if (mode == 1) {
        EXPECT_TRUE(band_v.empty()) << label;
      }
      if (mode == 2) {
        EXPECT_EQ(accept_v.size(), count) << label;
      }
      if (mode == 3) {
        EXPECT_TRUE(accept_v.empty()) << label;
        EXPECT_TRUE(band_v.empty()) << label;
      }
    }
  }
}
#endif  // SCGUARD_HAVE_AVX2

// Forcing the dispatcher to scalar must take effect regardless of the host
// CPU (CI runs this everywhere), an AVX2 request must fall back to scalar
// on hosts without it, and ResetClassifySimd must restore auto-dispatch.
TEST(ClassifyKernelTest, DispatchOverrideAndReset) {
  stats::Rng rng(7);
  const auto soa = ClassifierSoA(37, /*mode=*/0, rng);
  std::vector<uint32_t> indices(37);
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<uint32_t>(i);
  }
  std::vector<uint32_t> accept_ref, band_ref;
  reachability::ClassifyCertainBandScalar(soa, indices.data(), indices.size(),
                                          123.0, 456.0, accept_ref, band_ref);

  reachability::SetClassifySimd(reachability::ClassifySimd::kScalar);
  EXPECT_EQ(reachability::ActiveClassifySimd(),
            reachability::ClassifySimd::kScalar);
  std::vector<uint32_t> accept, band;
  reachability::ClassifyCertainBand(soa, indices.data(), indices.size(), 123.0,
                                    456.0, accept, band);
  EXPECT_EQ(accept, accept_ref);
  EXPECT_EQ(band, band_ref);

  reachability::SetClassifySimd(reachability::ClassifySimd::kAvx2);
#if defined(SCGUARD_HAVE_AVX2)
  const auto expected_simd = reachability::CpuSupportsAvx2()
                                 ? reachability::ClassifySimd::kAvx2
                                 : reachability::ClassifySimd::kScalar;
#else
  const auto expected_simd = reachability::ClassifySimd::kScalar;
#endif
  EXPECT_EQ(reachability::ActiveClassifySimd(), expected_simd);
  // Whatever the dispatch resolved to, the output contract is the same.
  reachability::ClassifyCertainBand(soa, indices.data(), indices.size(), 123.0,
                                    456.0, accept, band);
  EXPECT_EQ(accept, accept_ref);
  EXPECT_EQ(band, band_ref);

  reachability::ResetClassifySimd();
}

// Engine-level SIMD invariance: a full protocol run under forced-scalar and
// forced-AVX2 dispatch produces the identical MatchResult and RNG stream,
// with the pruner both off and on (the two paths that feed the classifier).
TEST(EngineParallelTest, SimdDispatchRunInvariance) {
  const reachability::AnalyticalModel model(kDefault);
  const Workload workload = NoisyWorkload(250, 20260807);

  for (const bool prune : {false, true}) {
    EnginePolicy policy = BasePolicy(&model);
    if (prune) {
      policy.pruning_gamma = 0.9;
      policy.pruning_backend = index::PrunerBackend::kGrid;
    }

    reachability::SetClassifySimd(reachability::ClassifySimd::kScalar);
    ScGuardEngine scalar_engine(policy);
    stats::Rng scalar_rng(11);
    const MatchResult scalar_result = scalar_engine.Run(workload, scalar_rng);
    ASSERT_GT(scalar_result.metrics.assigned_tasks, 0);
    const double scalar_next_draw = scalar_rng.UniformDouble();

    reachability::SetClassifySimd(reachability::ClassifySimd::kAvx2);
    ScGuardEngine simd_engine(policy);
    stats::Rng simd_rng(11);
    const MatchResult simd_result = simd_engine.Run(workload, simd_rng);
    reachability::ResetClassifySimd();

    const std::string label = prune ? "pruner=grid" : "pruner=off";
    ExpectBitIdentical(scalar_result, simd_result, label);
    EXPECT_EQ(scalar_next_draw, simd_rng.UniformDouble()) << label;
  }
}

}  // namespace
}  // namespace scguard::assign
