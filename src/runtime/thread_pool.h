#ifndef SCGUARD_RUNTIME_THREAD_POOL_H_
#define SCGUARD_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "runtime/runtime_options.h"

namespace scguard::runtime {

/// A fixed-size worker pool. Tasks are plain `void()` callables; anything
/// fallible propagates a Status through TaskGroup / ParallelFor instead of
/// throwing (the library is exception-free).
///
/// The pool itself makes no determinism promises — *which* thread runs a
/// task is scheduler-dependent. Determinism is the callers' contract:
/// ParallelFor assigns work by chunk index and callers write results into
/// index-addressed slots, so outputs never depend on scheduling.
class ThreadPool {
 public:
  /// Starts `num_threads` (>= 1) workers immediately.
  explicit ThreadPool(int num_threads);

  /// Drains nothing: pending tasks still run, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Enqueues a task; never blocks (unbounded queue).
  void Submit(std::function<void()> task);

  /// Hardware thread count, at least 1.
  static int HardwareThreads();

  /// True when called from one of *any* ThreadPool's worker threads. Used
  /// by ParallelFor to run nested parallel sections serially instead of
  /// deadlocking on a saturated pool.
  static bool InWorkerThread();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;

  // Telemetry (DESIGN.md §7); resolved once at construction, every update
  // is a no-op while observability is disabled.
  obs::Counter* tasks_executed_;
  obs::Gauge* queue_depth_;
  obs::Histogram* wait_seconds_;
};

/// Builds the pool described by `options`: nullptr when the resolved
/// thread count is <= 1 (serial legacy path), a live pool otherwise.
std::unique_ptr<ThreadPool> MakePool(const RuntimeOptions& options);

}  // namespace scguard::runtime

#endif  // SCGUARD_RUNTIME_THREAD_POOL_H_
