#include "data/trace.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <map>
#include <ostream>

#include "common/str_format.h"

namespace scguard::data {
namespace {

// A maximal stationary episode of one taxi.
struct Stop {
  double arrive_s = 0.0;
  double depart_s = 0.0;
  geo::Point location;
};

// Stay-point detection over one taxi's time-ordered, speed-filtered fixes:
// grow a window while every fix stays within stop_radius_m of the window's
// anchor; emit a Stop when the window spans >= stop_time_s.
std::vector<Stop> DetectStops(const std::vector<GpsFix>& fixes,
                              const TraceExtractorConfig& config) {
  std::vector<Stop> stops;
  size_t anchor = 0;
  while (anchor < fixes.size()) {
    size_t end = anchor;
    geo::Point centroid = fixes[anchor].position;
    while (end + 1 < fixes.size() &&
           geo::Distance(fixes[end + 1].position, fixes[anchor].position) <=
               config.stop_radius_m) {
      ++end;
      centroid = centroid + fixes[end].position;
    }
    const double span = fixes[end].time_s - fixes[anchor].time_s;
    if (span >= config.stop_time_s) {
      Stop stop;
      stop.arrive_s = fixes[anchor].time_s;
      stop.depart_s = fixes[end].time_s;
      stop.location = centroid * (1.0 / static_cast<double>(end - anchor + 1));
      stops.push_back(stop);
      anchor = end + 1;
    } else {
      ++anchor;
    }
  }
  return stops;
}

}  // namespace

Result<std::vector<Trip>> ExtractTripsFromTraces(
    const std::vector<GpsFix>& fixes, const TraceExtractorConfig& config) {
  if (config.stop_radius_m <= 0.0 || config.stop_time_s <= 0.0 ||
      config.max_speed_mps <= 0.0) {
    return Status::InvalidArgument("trace extractor thresholds must be positive");
  }

  // Group by taxi, preserving nothing about input order.
  std::map<int64_t, std::vector<GpsFix>> by_taxi;
  for (const auto& fix : fixes) by_taxi[fix.taxi_id].push_back(fix);

  std::vector<Trip> trips;
  for (auto& [taxi_id, taxi_fixes] : by_taxi) {
    std::sort(taxi_fixes.begin(), taxi_fixes.end(),
              [](const GpsFix& a, const GpsFix& b) { return a.time_s < b.time_s; });

    // Speed filter: drop fixes implying impossible jumps from their
    // accepted predecessor.
    std::vector<GpsFix> clean;
    clean.reserve(taxi_fixes.size());
    for (const auto& fix : taxi_fixes) {
      if (!clean.empty()) {
        const double dt = fix.time_s - clean.back().time_s;
        if (dt <= 0.0) continue;  // Duplicate timestamp.
        const double speed = geo::Distance(fix.position, clean.back().position) / dt;
        if (speed > config.max_speed_mps) continue;  // Glitch.
      }
      clean.push_back(fix);
    }

    const std::vector<Stop> stops = DetectStops(clean, config);
    for (size_t i = 0; i + 1 < stops.size(); ++i) {
      Trip trip;
      trip.taxi_id = taxi_id;
      trip.pickup_time_s = stops[i].depart_s;
      trip.pickup = stops[i].location;
      trip.dropoff_time_s = stops[i + 1].arrive_s;
      trip.dropoff = stops[i + 1].location;
      if (geo::Distance(trip.pickup, trip.dropoff) < config.min_trip_distance_m) {
        continue;  // Stationary jitter, not a ride.
      }
      trips.push_back(trip);
    }
  }
  std::sort(trips.begin(), trips.end(), [](const Trip& a, const Trip& b) {
    return a.pickup_time_s < b.pickup_time_s;
  });
  return trips;
}

std::vector<GpsFix> RenderTraces(const std::vector<Trip>& trips,
                                 const TraceRenderConfig& config,
                                 stats::Rng& rng) {
  std::vector<GpsFix> fixes;
  auto emit = [&](int64_t taxi, double t, geo::Point p) {
    fixes.push_back({taxi, t,
                     p + geo::Point{rng.Gaussian(0.0, config.gps_noise_m),
                                    rng.Gaussian(0.0, config.gps_noise_m)}});
  };
  for (const auto& trip : trips) {
    // Dwell at the pick-up before departure (the stop the extractor must
    // find), then linear motion to the drop-off, then dwell there.
    for (double t = trip.pickup_time_s - config.stop_dwell_s;
         t <= trip.pickup_time_s; t += config.sample_interval_s) {
      emit(trip.taxi_id, t, trip.pickup);
    }
    const double ride_s = trip.dropoff_time_s - trip.pickup_time_s;
    if (ride_s > 0.0) {
      for (double t = config.sample_interval_s; t < ride_s;
           t += config.sample_interval_s) {
        const double frac = t / ride_s;
        emit(trip.taxi_id, trip.pickup_time_s + t,
             trip.pickup + (trip.dropoff - trip.pickup) * frac);
      }
    }
    for (double t = trip.dropoff_time_s;
         t <= trip.dropoff_time_s + config.stop_dwell_s;
         t += config.sample_interval_s) {
      emit(trip.taxi_id, t, trip.dropoff);
    }
  }
  return fixes;
}

Result<std::vector<GpsFix>> LoadFixesCsv(std::istream& is) {
  std::vector<GpsFix> fixes;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    if (line_no == 1 && stripped.substr(0, 7) == "taxi_id") continue;
    const std::vector<std::string> fields = StrSplit(stripped, ',');
    if (fields.size() != 4) {
      return Status::InvalidArgument(
          StrCat("line ", line_no, ": expected 4 fields, got ", fields.size()));
    }
    GpsFix fix;
    double values[4];
    for (int i = 0; i < 4; ++i) {
      const std::string_view f = StripAsciiWhitespace(fields[static_cast<size_t>(i)]);
      const auto [ptr, ec] =
          std::from_chars(f.data(), f.data() + f.size(), values[i]);
      if (ec != std::errc() || ptr != f.data() + f.size()) {
        return Status::InvalidArgument(
            StrCat("line ", line_no, ": bad number '", std::string(f), "'"));
      }
    }
    fix.taxi_id = static_cast<int64_t>(values[0]);
    fix.time_s = values[1];
    fix.position = {values[2], values[3]};
    fixes.push_back(fix);
  }
  return fixes;
}

void WriteFixesCsv(const std::vector<GpsFix>& fixes, std::ostream& os) {
  os.precision(12);
  os << "taxi_id,time_s,x,y\n";
  for (const auto& f : fixes) {
    os << f.taxi_id << ',' << f.time_s << ',' << f.position.x << ','
       << f.position.y << '\n';
  }
}

}  // namespace scguard::data
