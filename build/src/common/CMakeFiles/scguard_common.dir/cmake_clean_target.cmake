file(REMOVE_RECURSE
  "libscguard_common.a"
)
