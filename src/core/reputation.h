#ifndef SCGUARD_CORE_REPUTATION_H_
#define SCGUARD_CORE_REPUTATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/point.h"

namespace scguard::core {

/// Requester reputation tracking against the fake-task probing attack of
/// paper Sec. VII: a malicious requester posts many tasks it never intends
/// to run, using workers' accept/reject responses to triangulate their
/// locations. The protocol cannot prevent this cryptographically under the
/// semi-honest model, but the countermeasure the paper sketches — a
/// reputation system that flags abusive patterns — can rate-limit it.
///
/// Signals tracked per requester:
///  * completion ratio — probes are cancelled/never completed;
///  * probe concentration — probes cluster around a victim's area, so the
///    pairwise spread of a requester's task locations collapses;
///  * volume — probing needs many tasks in little time.
class ReputationTracker {
 public:
  struct Config {
    /// Tasks below this completion ratio are suspicious once enough
    /// history exists.
    double min_completion_ratio = 0.3;
    /// A requester whose mean pairwise task distance falls below this (in
    /// meters) while posting many tasks is probing one spot.
    double min_task_spread_m = 500.0;
    /// History size before any flagging applies.
    int min_observations = 10;
    /// Tasks allowed per accounting window before the volume signal trips.
    int max_tasks_per_window = 50;
  };

  ReputationTracker() : ReputationTracker(Config()) {}
  explicit ReputationTracker(const Config& config);

  /// Records a posted task for `requester_id` at (exact) location
  /// `task_location` — in deployment this runs requester-side or on an
  /// audit authority, not on the untrusted server.
  void RecordTask(int64_t requester_id, geo::Point task_location);

  /// Records the final outcome of a requester's task.
  void RecordOutcome(int64_t requester_id, bool completed);

  /// Advances to the next accounting window (volume counters reset).
  void AdvanceWindow();

  /// Reputation score in [0, 1]; 1 = no suspicious signal. The score is
  /// the product of the per-signal factors, so any strong signal drags it
  /// down.
  double Score(int64_t requester_id) const;

  /// True when the score falls below 0.5 — the platform should require
  /// payment/deposit or throttle this requester (the paper's suggested
  /// mitigations).
  bool IsSuspicious(int64_t requester_id) const;

  int64_t tasks_recorded(int64_t requester_id) const;

 private:
  struct RequesterState {
    std::vector<geo::Point> task_locations;
    int64_t completed = 0;
    int64_t finished = 0;  // Completed + failed/cancelled.
    int64_t tasks_this_window = 0;
  };

  const RequesterState* Find(int64_t requester_id) const;

  Config config_;
  std::unordered_map<int64_t, RequesterState> requesters_;
};

}  // namespace scguard::core

#endif  // SCGUARD_CORE_REPUTATION_H_
