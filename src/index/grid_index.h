#ifndef SCGUARD_INDEX_GRID_INDEX_H_
#define SCGUARD_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"

namespace scguard::index {

/// A uniform grid over a fixed region indexing (center, radius, id) point
/// entries — the expanded uncertainty disks of the U2U pruner (paper
/// Sec. IV-C1). Each entry lives in exactly one cell (the cell containing
/// its center), stored as a compacted, ascending-id structure-of-arrays.
///
/// Queries are cell-certified (DESIGN.md §11): every visited cell is first
/// classified against the query rectangle using two per-cell aggregate
/// boxes —
///  * the *cover* box (union of the members' expanded rectangles): when it
///    misses the query, no member can intersect and the whole cell is
///    skipped without touching entries;
///  * the *core* aggregates (the componentwise worst-case member bounds):
///    when even the worst member's rectangle intersects the query, every
///    member does, and the whole ascending id array is bulk-appended with
///    no per-worker work.
/// Only boundary cells fall through to the per-member rectangle test, which
/// is bit-identical to `BoundingBox::FromCircle(center, r).Intersects(q)`.
/// Output is globally ascending and callers never re-sort: when the live id
/// range is dense (the engine's ids are [0, n)), accepted ids are scattered
/// into a bitmap and extracted in order — O(hits) with tiny constants —
/// otherwise each cell emits an ascending run and a k-way merge combines
/// them.
///
/// Simpler and often faster than the R-tree for the city-scale, roughly
/// uniform extents SCGuard deals with; both satisfy the same query contract
/// so the U2U pruner can use either (ablated in bench_ablation_pruning).
class GridIndex {
 public:
  /// Observer of in-place mutations of the flat member arrays, so a derived
  /// cell-major view (the scoring mirror of DESIGN.md §13) can stay in sync
  /// without re-reading the whole index. Every callback fires *after* the
  /// index mutated, with absolute member-array positions; `end` is the
  /// owning slice's post-mutation end (`begin + count`). The listener is
  /// not owned and may outlive the index — the index never calls it from
  /// its destructor.
  class SliceChangeListener {
   public:
    virtual ~SliceChangeListener() = default;
    /// The member at position `pos` of cell `slot` was erased and the slice
    /// tail shifted down one: rows [pos, end) now hold what [pos+1, end+1)
    /// held before the erase.
    virtual void OnSliceErase(size_t slot, size_t pos, size_t end) = 0;
    /// A member was inserted at position `pos` of cell `slot` (the former
    /// [pos, end-1) rows shifted up one). Read the new member through the
    /// member accessors below.
    virtual void OnSliceInsert(size_t slot, size_t pos, size_t end) = 0;
    /// The member at position `pos` of cell `slot` changed in place
    /// (same-cell Relocate: new center, same id and radius, no shifting).
    /// Re-read the row through the member accessors.
    virtual void OnSliceUpdate(size_t slot, size_t pos, size_t end) = 0;
    /// The flat member arrays were re-laid wholesale (slice offsets and
    /// capacities changed); the view must rebuild from the accessors.
    virtual void OnRebuild() = 0;
  };

  /// Cumulative query-side certification accounting (reset with
  /// ResetStats). Mutable scratch: queries on one index must not run
  /// concurrently (the pruner queries serially; shard fan-out happens on
  /// the result, not inside the index).
  struct QueryStats {
    int64_t cells_bulk_accepted = 0;  ///< Whole id array appended.
    int64_t cells_skipped = 0;        ///< Non-empty cell, zero work.
    int64_t cells_boundary = 0;       ///< Fell through to member tests.
    int64_t boundary_workers = 0;     ///< Members tested individually.
  };

  /// Certification outcome of one cell against one query (test support).
  enum class CellCert { kSkipped, kBulkAccepted, kBoundary };

  /// `region` must be non-empty; `cells_per_axis` >= 1. Entries centered
  /// beyond the region are clamped to the border cells.
  GridIndex(const geo::BoundingBox& region, int cells_per_axis);

  /// Inserts a point entry: the rectangle it stands for is
  /// `BoundingBox::FromCircle(center, expanded_radius_m)`. Entries go into
  /// the single cell containing `center`; each cell keeps its id array
  /// ascending (append is O(1) when ids arrive in ascending order, the
  /// engine's registration order).
  void Insert(geo::Point center, double expanded_radius_m, int64_t id);

  /// Appends to `out` (cleared first) the ids of all live entries whose
  /// rectangle intersects `query`, in ascending id order; an id inserted
  /// more than once is emitted at most once. Not thread-safe (mutable
  /// bitmap/merge scratch + stats).
  void Query(const geo::BoundingBox& query, std::vector<int64_t>& out) const;

  /// As above, returning a fresh vector (test convenience).
  std::vector<int64_t> QueryIds(const geo::BoundingBox& query) const;

  /// One surviving cell of a query's certified walk: the member-array slice
  /// [begin, begin + count) and how the cell certified. Skipped cells are
  /// never emitted (they contribute no members).
  struct CellVisit {
    size_t begin = 0;
    uint32_t count = 0;
    uint32_t slot = 0;
    CellCert cert = CellCert::kBoundary;
  };

  /// The cell walk of Query without materializing member ids: appends one
  /// CellVisit per surviving (non-empty, non-skipped) cell in row-major
  /// order, with QueryStats accounting identical to Query's on the same
  /// box. A caller holding a cell-major mirror classifies the slices
  /// itself; a kBulkAccepted visit means every member's rectangle
  /// intersects `query`, a kBoundary visit means the caller must apply the
  /// per-member rectangle test (`FromCircle(center, r).Intersects(query)`
  /// bit-identically) before admitting a member. Returns the total member
  /// count across the appended visits. Not thread-safe (stats).
  size_t VisitQueryCells(const geo::BoundingBox& query,
                         std::vector<CellVisit>& out) const;

  /// Registers (or clears, with nullptr) the slice-change listener; at most
  /// one at a time. The index never owns it.
  void SetSliceChangeListener(SliceChangeListener* listener) {
    listener_ = listener;
  }

  // Flat-layout accessors for cell-major mirrors (DESIGN.md §13). Rows
  // outside a cell's [cell_begin, cell_begin + cell_count) slice are
  // headroom whose contents are unspecified.
  size_t num_cell_slots() const { return cells_ref_.size(); }
  size_t member_rows() const { return ids_.size(); }
  size_t cell_begin(size_t slot) const { return cells_ref_[slot].begin; }
  uint32_t cell_count(size_t slot) const { return cells_ref_[slot].count; }
  int64_t member_id(size_t pos) const { return ids_[pos]; }
  double member_x(size_t pos) const { return xs_[pos]; }
  double member_y(size_t pos) const { return ys_[pos]; }
  double member_r(size_t pos) const { return rs_[pos]; }

  /// Removes every live entry inserted under `id`. The cell arrays are
  /// compacted in place (ordered erase, so they stay ascending) and the
  /// cell's certification aggregates are recomputed in the same O(cell)
  /// pass — stale aggregates would stay conservative for skipping but stop
  /// bulk-accepting as the active set drains. Returns the number of entries
  /// removed — 0 when the id is absent or already removed, so repeated
  /// removal is idempotent. A later Insert with the same id makes the id
  /// live again.
  size_t Remove(int64_t id);

  /// Moves every live entry of `id` to `new_center`, keeping each entry's
  /// expanded radius — the hot mutation of dynamic re-reporting. A move
  /// that stays inside its cell updates the row in place (one O(cell)
  /// aggregate recompute, no shifting, listener OnSliceUpdate); a move
  /// that crosses cells erases and re-inserts through the normal listener
  /// callbacks. Returns the number of entries moved — 0 when the id is
  /// absent (never inserted, or currently removed).
  size_t Relocate(int64_t id, geo::Point new_center);

  /// True when at least one live entry of `id` is stored.
  bool Contains(int64_t id) const {
    return cells_of_id_.find(id) != cells_of_id_.end();
  }

  /// Live (inserted and not removed) entries.
  size_t size() const { return live_; }

  const QueryStats& stats() const { return stats_; }
  void ResetStats() const { stats_ = QueryStats{}; }

  /// Classification of cell (cx, cy) against `query` exactly as Query would
  /// decide it (test support; empty cells report kSkipped).
  CellCert ClassifyCellForTest(int cx, int cy,
                               const geo::BoundingBox& query) const;
  /// Ids currently stored in cell (cx, cy), in stored (ascending) order.
  std::vector<int64_t> CellMembersForTest(int cx, int cy) const;
  int cells_per_axis() const { return cells_; }

 private:
  /// Where one cell's members live inside the flat member arrays: the
  /// ascending-id slice [begin, begin + count), with `cap - count` spare
  /// slots at the end of the slice so post-build inserts rarely force a
  /// rebuild. Cell slices are laid out in row-major cell order, so a query
  /// sweeping a row reads the member arrays near-sequentially instead of
  /// chasing one heap vector per cell.
  struct CellRef {
    size_t begin = 0;
    uint32_t count = 0;
    uint32_t cap = 0;
  };

  /// The aggregate boxes the certification tests read — exactly one cache
  /// line per cell. All components are computed with the same
  /// floating-point operations as the per-member rectangle
  /// `FromCircle(center, r)` — `fl(c - r)` / `fl(c + r)` — and min/max are
  /// exact, so certification agrees bit-for-bit with the member-by-member
  /// test it replaces. An empty cell keeps the reset sentinels
  /// (cover_max_x = -inf), which the skip test rejects before any member
  /// array is touched.
  struct alignas(64) Agg {
    // Cover box: union of member rectangles (skip test).
    double cover_min_x, cover_min_y, cover_max_x, cover_max_y;
    // Core aggregates: max lower / min upper member bounds (bulk-accept
    // test: the query must catch even the worst member on every side).
    double core_max_lo_x, core_max_lo_y, core_min_hi_x, core_min_hi_y;

    Agg() { Reset(); }
    void Reset();
    void Accumulate(double cx, double cy, double cr);
  };
  static_assert(sizeof(Agg) == 64);

  struct CellRange {
    int x0, x1, y0, y1;  // Inclusive cell coordinates.
  };
  CellRange CellsFor(const geo::BoundingBox& box) const;
  /// The widened, clamped cell range Query visits for `query` (the
  /// max_radius_ reach expansion plus the +-1 ulp guard band).
  CellRange QueryRange(const geo::BoundingBox& query) const;
  size_t CellSlot(int cx, int cy) const {
    return static_cast<size_t>(cy) * static_cast<size_t>(cells_) +
           static_cast<size_t>(cx);
  }
  size_t CellSlotFor(geo::Point p) const;
  CellCert Classify(const Agg& agg, const geo::BoundingBox& query) const;
  void RecomputeAggregates(size_t slot);
  /// Re-lays the flat member arrays with fresh per-cell headroom
  /// (amortized: triggered only when a cell's slice is full). O(entries).
  void Rebuild();
  /// Merges the ascending runs recorded in `run_starts_` into one ascending
  /// sequence (bottom-up pairwise merge through the member scratch buffer;
  /// no per-query allocation once warm).
  void MergeRuns(std::vector<int64_t>& out) const;

  geo::BoundingBox region_;
  int cells_;
  double cell_w_;
  double cell_h_;
  std::vector<CellRef> cells_ref_;  // Per-cell slice of the member arrays.
  std::vector<Agg> aggs_;           // Parallel; one cache line per cell.
  // Flat member storage (cell-major SoA): each cell's slice keeps ids
  // ascending, with x/y/r parallel to ids.
  std::vector<int64_t> ids_;
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> rs_;
  // Id -> cells holding a live entry of that id (one slot per entry), so
  // Remove(id) goes straight to the owning cells.
  std::unordered_map<int64_t, std::vector<uint32_t>> cells_of_id_;
  // High-water mark of all inserted expanded radii; queries widen their
  // visited cell range by it so any cell whose members could reach the
  // query rectangle is visited. Kept stale-high after Remove (conservative).
  double max_radius_ = 0.0;
  // High-water id range of all inserted entries (kept stale-wide after
  // Remove): when it is dense relative to the live count, Query orders its
  // output through the bitmap instead of the run merge.
  int64_t min_id_ = 0;
  int64_t max_id_ = -1;
  size_t live_ = 0;
  SliceChangeListener* listener_ = nullptr;  // Not owned.

  std::vector<double> radius_scratch_;  // Relocate's per-entry radii.

  mutable QueryStats stats_;
  mutable std::vector<uint64_t> bitmap_;    // Dense-id accept bitmap.
  mutable std::vector<size_t> run_starts_;  // Offsets of per-cell runs.
  mutable std::vector<int64_t> merge_buf_;  // Pairwise-merge scratch.
};

}  // namespace scguard::index

#endif  // SCGUARD_INDEX_GRID_INDEX_H_
