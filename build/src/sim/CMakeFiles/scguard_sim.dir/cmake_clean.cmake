file(REMOVE_RECURSE
  "CMakeFiles/scguard_sim.dir/dynamic.cc.o"
  "CMakeFiles/scguard_sim.dir/dynamic.cc.o.d"
  "CMakeFiles/scguard_sim.dir/experiment.cc.o"
  "CMakeFiles/scguard_sim.dir/experiment.cc.o.d"
  "CMakeFiles/scguard_sim.dir/table_printer.cc.o"
  "CMakeFiles/scguard_sim.dir/table_printer.cc.o.d"
  "libscguard_sim.a"
  "libscguard_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scguard_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
