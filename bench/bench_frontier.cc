// Utility–privacy frontier across obfuscation mechanisms: sweeps the
// mechanism axis (planar Laplace, grid-discretized exponential matrix,
// prior-weighted empirical) against the epsilon axis at the paper's
// r = 200 operating point, with the flight recorder's privacy-audit trail
// forced on so every reported disclosure count is reconciled against the
// audited event stream (not just the engine's own counters).
//
// Series:
//   "planar-laplace model" — the analytical model, byte-for-byte the same
//       calls as bench_fig9's "Probabilistic-Model r=200" series; CI pins
//       the two to identical utility numbers.
//   "<mechanism> data"     — Probabilistic-Data with an empirical table
//       built per (mechanism, eps); the build cost is the
//       `table_build_seconds` extra (the price grid mechanisms pay for
//       having no closed-form DiskProbability).
//
// Grid mechanisms pin spec.region to the runner's city region so workload
// perturbation and the empirical table use one identical mechanism (a
// per-seed workload region would otherwise re-grid the city every seed).

#include <chrono>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "privacy/mechanism.h"

namespace scguard::bench {
namespace {

privacy::PrivacyParams FrontierParams(double eps, double radius_m,
                                      privacy::MechanismKind kind,
                                      const geo::BoundingBox& region) {
  privacy::PrivacyParams p{eps, radius_m};
  p.mechanism.kind = kind;
  if (kind != privacy::MechanismKind::kPlanarLaplace) {
    p.mechanism.region = region;
  }
  return p;
}

bool IsAuditEvent(const obs::TraceEvent& e) {
  return e.type >= static_cast<uint8_t>(obs::EventType::kAuditCandidates) &&
         e.type <= static_cast<uint8_t>(obs::EventType::kAuditBudget);
}

void Main() {
  // The audit trail is the point of this bench: force metrics + recorder on
  // regardless of SCGUARD_OBS, and size the rings so one sweep point's
  // events (10 seeds x 500 tasks of disclosures plus span traffic) never
  // drop — a drop would make reconciliation vacuous, so it is fatal below.
  auto& recorder = obs::FlightRecorder::Global();
  recorder.set_ring_capacity(size_t{1} << 20);
  const auto runner = OrDie(sim::ExperimentRunner::Create(PaperConfig()));
  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  obs_config.recorder = true;
  obs::SetConfig(obs_config);

  const double radius_m = 200.0;
  obs::Counter* engine_disclosures =
      obs::MetricsRegistry::Global().GetCounter("scguard.engine.disclosures");

  struct Series {
    std::string name;
    privacy::MechanismKind kind;
    bool analytical;  ///< Probabilistic-Model (vs -Data with a built table).
  };
  const std::vector<Series> series = {
      {"planar-laplace model", privacy::MechanismKind::kPlanarLaplace, true},
      {"planar-laplace data", privacy::MechanismKind::kPlanarLaplace, false},
      {"geo-matrix data", privacy::MechanismKind::kGeoMatrix, false},
      {"prior-empirical data", privacy::MechanismKind::kPriorEmpirical, false},
  };

  sim::TablePrinter utility(
      StrCat("Frontier — Utility (#assigned of 500) vs eps, r=", radius_m),
      {"mechanism/model", "eps=0.1", "eps=0.4", "eps=0.7", "eps=1.0"});
  sim::TablePrinter travel(
      StrCat("Frontier — Travel cost (m) vs eps, r=", radius_m),
      {"mechanism/model", "eps=0.1", "eps=0.4", "eps=0.7", "eps=1.0"});
  sim::TablePrinter disclosed(
      StrCat("Frontier — Audited E2E disclosures (total) vs eps, r=",
             radius_m),
      {"mechanism/model", "eps=0.1", "eps=0.4", "eps=0.7", "eps=1.0"});
  sim::TablePrinter build(
      StrCat("Frontier — Empirical-table build cost (s) vs eps, r=",
             radius_m),
      {"mechanism/model", "eps=0.1", "eps=0.4", "eps=0.7", "eps=1.0"});

  JsonSeriesWriter json("frontier");
  std::vector<obs::TraceEvent> audit_events;  // Across all sweep points.

  for (const auto& s : series) {
    std::vector<double> u_row, t_row, d_row, b_row;
    for (const double eps : sim::kEpsilons) {
      const privacy::PrivacyParams p =
          FrontierParams(eps, radius_m, s.kind, runner.region());
      // Provenance mechanism: the same instance every perturbation site
      // reconstructs from `p` (pure function of the spec).
      const auto mech = privacy::MakeMechanismOrDie(p, runner.region());

      double build_seconds = 0.0;
      assign::MatcherHandle handle = [&] {
        if (s.analytical) return assign::MakeProbabilisticModel(MakeParams(p));
        const auto t0 = std::chrono::steady_clock::now();
        auto model = BuildEmpirical(runner, p);
        build_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        return assign::MakeProbabilisticData(MakeParams(p), std::move(model));
      }();

      // Per-point audit segment: clear the rings of build-time events, run,
      // drain, and reconcile against the engine's disclosure counter.
      (void)recorder.Drain();
      const int64_t dropped_before = recorder.dropped();
      const int64_t disclosures_before = engine_disclosures->Value();
      const sim::AggregatedMetrics agg = OrDie(runner.Run(handle, p, p));
      const int64_t disclosures_delta =
          engine_disclosures->Value() - disclosures_before;
      const std::vector<obs::TraceEvent> events = recorder.Drain();
      if (recorder.dropped() != dropped_before) {
        std::cerr << "frontier: flight recorder dropped "
                  << (recorder.dropped() - dropped_before)
                  << " events at series='" << s.name << "' eps=" << eps
                  << "; raise the ring capacity\n";
        std::exit(1);
      }
      const obs::AuditTotals totals = obs::SummarizeAudit(events);
      if (totals.e2e_disclosures != disclosures_delta) {
        std::cerr << "frontier: audit trail disagrees with engine counters "
                     "at series='"
                  << s.name << "' eps=" << eps
                  << ": audited e2e_disclosures=" << totals.e2e_disclosures
                  << " vs scguard.engine.disclosures delta="
                  << disclosures_delta << "\n";
        std::exit(1);
      }
      for (const obs::TraceEvent& e : events) {
        if (IsAuditEvent(e)) audit_events.push_back(e);
      }

      json.Add(s.name, eps, agg,
               {{"table_build_seconds", build_seconds},
                {"audit_disclosures",
                 static_cast<double>(totals.e2e_disclosures)}},
               {{"mechanism", std::string(mech->name())},
                {"mechanism_params", mech->ParamsJson()},
                {"reachability", s.analytical ? "model" : "data"}});
      u_row.push_back(agg.assigned_tasks);
      t_row.push_back(agg.travel_m);
      d_row.push_back(static_cast<double>(totals.e2e_disclosures));
      b_row.push_back(build_seconds);
    }
    utility.AddRow(s.name, u_row, 1);
    travel.AddRow(s.name, t_row, 0);
    disclosed.AddRow(s.name, d_row, 0);
    build.AddRow(s.name, b_row, 2);
  }
  utility.Print(std::cout);
  travel.Print(std::cout);
  disclosed.Print(std::cout);
  build.Print(std::cout);

  // The full audited disclosure trail of the sweep (every point's segment
  // concatenated; the summary line covers all of them, dropped == 0 by the
  // fatal check above).
  {
    std::ofstream out("AUDIT_frontier.jsonl");
    if (out) out << obs::ExportAuditJsonl(audit_events, recorder.names(), 0);
  }
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
