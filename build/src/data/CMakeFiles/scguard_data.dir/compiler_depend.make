# Empty compiler generated dependencies file for scguard_data.
# This may be replaced when dependencies are built.
