#ifndef SCGUARD_ASSIGN_MATCHER_H_
#define SCGUARD_ASSIGN_MATCHER_H_

#include <string>
#include <vector>

#include "assign/entities.h"
#include "assign/metrics.h"
#include "stats/rng.h"

namespace scguard::assign {

/// One accepted worker-task pair.
struct Assignment {
  int64_t task_id = 0;
  int64_t worker_id = 0;
  double travel_m = 0.0;  ///< True distance the worker travels.
};

/// Result of matching a full workload.
struct MatchResult {
  std::vector<Assignment> assignments;
  RunMetrics metrics;
};

/// How the requester (or the ground-truth server) orders candidate workers
/// in the U2E stage.
enum class RankStrategy {
  kRandom,       ///< Precomputed random rank per worker (Ranking [Karp90]).
  kNearest,      ///< 1 / observed distance (nearest-neighbor strategy).
  kProbability,  ///< Reachability probability (Alg. 2 Line 12).
};

constexpr std::string_view RankStrategyName(RankStrategy s) {
  switch (s) {
    case RankStrategy::kRandom:
      return "RR";
    case RankStrategy::kNearest:
      return "NN";
    case RankStrategy::kProbability:
      return "prob";
  }
  return "?";
}

/// Interface of an online task-assignment algorithm: the workload's tasks
/// are processed in arrival order, each matched (or not) before the next
/// arrives.
class OnlineMatcher {
 public:
  virtual ~OnlineMatcher() = default;

  /// Runs the full online assignment. The workload must already carry
  /// noisy locations if the matcher is privacy-aware (see
  /// data::PerturbWorkload). `rng` drives random ranks.
  virtual MatchResult Run(const Workload& workload, stats::Rng& rng) = 0;

  /// Display name used in experiment tables ("Oblivious-RN", ...).
  virtual std::string name() const = 0;
};

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_MATCHER_H_
