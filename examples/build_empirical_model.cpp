// Builds the empirical reachability tables (paper Sec. IV-B2) for a given
// privacy level, serializes them to disk, reloads, and spot-checks them —
// the offline precomputation a deployment of Probabilistic-Data ships with.
//
// Usage:  ./build/examples/build_empirical_model [output_path]
// (default output: empirical_model_eps0.7_r800.txt in the working dir)

#include <fstream>
#include <iostream>

#include "data/beijing.h"
#include "reachability/analytical_model.h"
#include "reachability/empirical_model.h"

int main(int argc, char** argv) {
  using namespace scguard;

  const std::string path =
      argc > 1 ? argv[1] : "empirical_model_eps0.7_r800.txt";
  const privacy::PrivacyParams params{0.7, 800.0};

  reachability::EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 300000;
  std::cout << "building empirical tables over Beijing ("
            << config.num_samples << " simulated pairs)...\n";
  stats::Rng rng(99);
  auto model = reachability::EmpiricalModel::Build(config, params, rng);
  if (!model.ok()) {
    std::cerr << model.status() << "\n";
    return 1;
  }

  {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    model->Serialize(out);
  }
  std::cout << "wrote " << path << "\n";

  std::ifstream in(path);
  auto reloaded = reachability::EmpiricalModel::Deserialize(in);
  if (!reloaded.ok()) {
    std::cerr << "reload failed: " << reloaded.status() << "\n";
    return 1;
  }

  std::cout << "\nspot check (R_w = 1400 m), reloaded tables vs analytical:\n";
  const reachability::AnalyticalModel analytical(params);
  std::printf("  %8s  %10s  %10s\n", "d' (m)", "empirical", "analytical");
  for (double d = 0.0; d <= 5000.0; d += 1000.0) {
    std::printf("  %8.0f  %10.3f  %10.3f\n", d,
                reloaded->ProbReachable(reachability::Stage::kU2E, d, 1400.0),
                analytical.ProbReachable(reachability::Stage::kU2E, d, 1400.0));
  }
  std::cout << "(U2U table: " << reloaded->u2u_table().total_samples()
            << " samples, U2E table: " << reloaded->u2e_table().total_samples()
            << " samples)\n";
  return 0;
}
