// Privacy tuning: what does a platform give up at each privacy level?
// Sweeps the Geo-I (eps, r) grid over a realistic workload and prints the
// privacy-utility frontier, so an operator can pick an operating point.
//
// Build & run:  ./build/examples/privacy_tuning

#include <iostream>

#include "common/str_format.h"
#include "sim/defaults.h"
#include "sim/experiment.h"
#include "sim/table_printer.h"

int main() {
  using namespace scguard;

  sim::ExperimentConfig config;
  config.synth.num_taxis = 2000;
  config.workload.num_workers = 300;
  config.workload.num_tasks = 300;
  config.num_seeds = 5;
  auto runner = sim::ExperimentRunner::Create(config);
  if (!runner.ok()) {
    std::cerr << runner.status() << "\n";
    return 1;
  }

  // Non-private reference.
  assign::MatcherHandle truth =
      assign::MakeGroundTruth(assign::RankStrategy::kNearest);
  const auto truth_agg =
      runner->Run(truth, sim::DefaultPrivacy(), sim::DefaultPrivacy());
  if (!truth_agg.ok()) {
    std::cerr << truth_agg.status() << "\n";
    return 1;
  }
  std::cout << "non-private reference: " << truth_agg->assigned_tasks << "/"
            << config.workload.num_tasks << " tasks, "
            << FormatDouble(truth_agg->travel_m, 0) << " m mean travel\n";

  sim::TablePrinter table(
      "Privacy-utility frontier (Probabilistic-Model, alpha=0.1, beta=0.25)",
      {"eps", "r (m)", "tasks assigned", "% of non-private", "travel (m)",
       "false hits", "overhead"});
  for (double eps : sim::kEpsilons) {
    for (double r : {200.0, 800.0}) {
      const privacy::PrivacyParams p{eps, r};
      assign::AlgorithmParams params;
      params.worker_params = p;
      params.task_params = p;
      assign::MatcherHandle handle = assign::MakeProbabilisticModel(params);
      const auto agg = runner->Run(handle, p, p);
      if (!agg.ok()) {
        std::cerr << agg.status() << "\n";
        return 1;
      }
      table.AddRow({FormatDouble(eps, 1), FormatDouble(r, 0),
                    FormatDouble(agg->assigned_tasks, 1),
                    FormatDouble(100.0 * agg->assigned_tasks /
                                     truth_agg->assigned_tasks,
                                 1),
                    FormatDouble(agg->travel_m, 0),
                    FormatDouble(agg->false_hits, 1),
                    FormatDouble(agg->candidates, 1)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nReading: smaller eps / larger r = stronger privacy. The\n"
               "frontier shows utility degrading gracefully until the noise\n"
               "scale r/eps approaches the workers' reach radii.\n";
  return 0;
}
