#ifndef SCGUARD_GEO_LATLON_H_
#define SCGUARD_GEO_LATLON_H_

#include <ostream>

namespace scguard::geo {

/// A WGS84 geographic coordinate in decimal degrees.
struct LatLon {
  double lat = 0.0;  ///< Latitude, degrees in [-90, 90].
  double lon = 0.0;  ///< Longitude, degrees in [-180, 180].

  friend bool operator==(LatLon a, LatLon b) { return a.lat == b.lat && a.lon == b.lon; }
};

/// Great-circle (haversine) distance between two coordinates, in meters.
double HaversineMeters(LatLon a, LatLon b);

inline std::ostream& operator<<(std::ostream& os, LatLon ll) {
  return os << "(" << ll.lat << "N, " << ll.lon << "E)";
}

}  // namespace scguard::geo

#endif  // SCGUARD_GEO_LATLON_H_
