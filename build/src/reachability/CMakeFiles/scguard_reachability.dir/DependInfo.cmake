
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reachability/analytical_model.cc" "src/reachability/CMakeFiles/scguard_reachability.dir/analytical_model.cc.o" "gcc" "src/reachability/CMakeFiles/scguard_reachability.dir/analytical_model.cc.o.d"
  "/root/repo/src/reachability/binary_model.cc" "src/reachability/CMakeFiles/scguard_reachability.dir/binary_model.cc.o" "gcc" "src/reachability/CMakeFiles/scguard_reachability.dir/binary_model.cc.o.d"
  "/root/repo/src/reachability/empirical_model.cc" "src/reachability/CMakeFiles/scguard_reachability.dir/empirical_model.cc.o" "gcc" "src/reachability/CMakeFiles/scguard_reachability.dir/empirical_model.cc.o.d"
  "/root/repo/src/reachability/empirical_table.cc" "src/reachability/CMakeFiles/scguard_reachability.dir/empirical_table.cc.o" "gcc" "src/reachability/CMakeFiles/scguard_reachability.dir/empirical_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/scguard_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/scguard_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/scguard_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
