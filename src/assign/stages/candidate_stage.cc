#include "assign/stages/candidate_stage.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/status.h"
#include "runtime/parallel_for.h"

namespace scguard::assign {

U2uCandidateStage::U2uCandidateStage(Config config)
    : config_(std::move(config)) {
  SCGUARD_CHECK(config_.model != nullptr);
  SCGUARD_CHECK(config_.alpha > 0.0 && config_.alpha <= 1.0);
  SCGUARD_CHECK(config_.runtime.shard_size >= 1);
}

void U2uCandidateStage::ReserveWorkers(size_t n) {
  soa_.x.reserve(n);
  soa_.y.reserve(n);
  soa_.reach_radius_m.reserve(n);
  soa_.matched.reserve(n);
}

uint32_t U2uCandidateStage::AddWorker(geo::Point noisy_location,
                                      double reach_radius_m) {
  const size_t i = soa_.size();
  SCGUARD_CHECK(i < std::numeric_limits<uint32_t>::max());
  soa_.x.push_back(noisy_location.x);
  soa_.y.push_back(noisy_location.y);
  soa_.reach_radius_m.push_back(reach_radius_m);
  soa_.matched.push_back(0);
  // A registration after Prepare invalidates a built pruning index; it is
  // rebuilt over the full worker set at the next Collect. The mirror must
  // let go of the dying grid first.
  if (config_.pruning.has_value()) {
    mirror_.ForgetGrid();
    pruner_.reset();
  }
  return static_cast<uint32_t>(i);
}

void U2uCandidateStage::UpdateWorkerLocation(uint32_t worker,
                                             geo::Point noisy_location) {
  soa_.x[worker] = noisy_location.x;
  soa_.y[worker] = noisy_location.y;
  // The certain-band bounds depend only on the (unchanged) reach radius,
  // so the threshold prewarm stays valid. A pruning index anchors its
  // rectangle at the old location: the grid and linear backends relocate
  // the entry in place (O(cell) with the mirror kept in sync through the
  // slice listener — the mutation the service loop amortizes, DESIGN.md
  // §14); only backends without native relocation drop the index for a
  // lazy rebuild at the next Prepare.
  if (config_.pruning.has_value()) {
    if (pruner_ != nullptr &&
        pruner_->Relocate(static_cast<int64_t>(worker), noisy_location)) {
      return;
    }
    mirror_.ForgetGrid();
    pruner_.reset();
  }
}

void U2uCandidateStage::MarkAvailable(uint32_t worker) {
  if (!soa_.matched[worker]) return;
  soa_.matched[worker] = 0;
  if (!config_.runtime.active_set) return;
  // Undo MarkMatched's active-set maintenance: re-insert into the pruning
  // index, or splice the id back into its shard's ascending active list.
  if (pruner_ != nullptr) {
    if (!pruner_->Restore(static_cast<int64_t>(worker))) {
      mirror_.ForgetGrid();
      pruner_.reset();  // Rebuilt over current data at the next Prepare.
    }
  } else if (prepared_ && !config_.pruning.has_value()) {
    std::vector<uint32_t>& active =
        shard_active_[worker / static_cast<size_t>(config_.runtime.shard_size)];
    const auto pos = std::lower_bound(active.begin(), active.end(), worker);
    // A pending dirty compaction may not have erased the id yet; keep the
    // list duplicate-free either way.
    if (pos == active.end() || *pos != worker) active.insert(pos, worker);
  }
}

void U2uCandidateStage::RebuildShards() {
  const size_t n = soa_.size();
  const auto shard_size = static_cast<size_t>(config_.runtime.shard_size);
  const size_t num_shards = n > 0 ? (n + shard_size - 1) / shard_size : 0;
  shard_active_.assign(num_shards, {});
  shard_dirty_.assign(num_shards, 0);
  shards_.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t lo = s * shard_size;
    const size_t hi = std::min(n, lo + shard_size);
    shard_active_[s].reserve(hi - lo);
    for (size_t i = lo; i < hi; ++i) {
      if (!soa_.matched[i]) {
        shard_active_[s].push_back(static_cast<uint32_t>(i));
      }
    }
  }
}

void U2uCandidateStage::ResetAvailability() {
  std::fill(soa_.matched.begin(), soa_.matched.end(), uint8_t{0});
  if (config_.pruning.has_value()) {
    // Matched workers were removed from the index; rebuild it fresh.
    mirror_.ForgetGrid();
    pruner_.reset();
  } else if (prepared_) {
    RebuildShards();
  }
}

void U2uCandidateStage::Prepare() {
  const size_t n = soa_.size();
  const bool pruner_ready = !config_.pruning.has_value() || pruner_ != nullptr;
  if (prepared_ && warm_ == n && pruner_ready) return;

  // Threshold prewarm: filling accept/reject_sq also memoizes the cache for
  // every worker radius, which the parallel band resolution relies on
  // (AlphaThresholdCache::Lookup is the read-only path).
  if (config_.kernel.alpha_thresholds) {
    if (!thresholds_.has_value()) {
      thresholds_.emplace(config_.model, reachability::Stage::kU2U,
                          config_.alpha, config_.kernel.threshold_margin);
    }
    soa_.accept_below_sq.resize(n);
    soa_.reject_above_sq.resize(n);
    for (size_t i = warm_; i < n; ++i) {
      const reachability::AlphaThreshold& t =
          thresholds_->For(soa_.reach_radius_m[i]);
      soa_.accept_below_sq[i] = t.accept_below_sq;
      soa_.reject_above_sq[i] = t.reject_above_sq;
    }
  }

  if (config_.pruning.has_value()) {
    if (pruner_ == nullptr) {
      const Pruning& p = *config_.pruning;
      std::vector<index::UncertainRegionPruner::WorkerRegion> regions;
      regions.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        regions.push_back({static_cast<int64_t>(i),
                           {soa_.x[i], soa_.y[i]},
                           soa_.reach_radius_m[i]});
      }
      pruner_ = std::make_unique<index::UncertainRegionPruner>(
          std::move(regions), p.worker_params, p.task_params, p.gamma,
          p.backend, p.region);
      if (config_.runtime.active_set) {
        // Re-apply removals for workers matched before the (re)build.
        for (size_t i = 0; i < n; ++i) {
          if (soa_.matched[i]) pruner_->Remove(static_cast<int64_t>(i));
        }
      }
    }
    // Pruned runs partition the index's candidate list across the same
    // fixed-size shards as the brute scan (DESIGN.md §11), so they need the
    // full scratch set — but not shard_active_, which only the brute path
    // reads.
    const auto shard_size = static_cast<size_t>(config_.runtime.shard_size);
    shards_.resize(n > 0 ? (n + shard_size - 1) / shard_size : 0);
    // The mirror attaches after the threshold prewarm above (it copies the
    // per-worker certain bands) and after the grid is final for this
    // Prepare. A pruner rebuilt since the last attach has a fresh grid, so
    // re-attach whenever the association is gone (ForgetGrid cleared it).
    if (UseMirror() && mirror_.grid() != pruner_->grid()) {
      mirror_.Attach(pruner_->grid(), &soa_);
    }
  } else if (warm_ == 0) {
    RebuildShards();
  } else {
    // Incremental registrations: indices grow monotonically, so appending
    // to the owning shard keeps its active list ascending.
    const auto shard_size = static_cast<size_t>(config_.runtime.shard_size);
    const size_t num_shards = (n + shard_size - 1) / shard_size;
    shard_active_.resize(num_shards);
    shard_dirty_.resize(num_shards, 0);
    shards_.resize(num_shards);
    for (size_t i = warm_; i < n; ++i) {
      shard_active_[i / shard_size].push_back(static_cast<uint32_t>(i));
    }
  }

  candidates_.reserve(n);
  warm_ = n;
  prepared_ = true;
}

void U2uCandidateStage::ScanIndices(geo::Point task_noisy, const uint32_t* idx,
                                    size_t count, ShardScratch& sc) const {
  sc.out.clear();
  sc.scanned = static_cast<int64_t>(count);
  if (thresholds_.has_value()) {
    // Branch-free trichotomy over the contiguous SoA arrays, then one
    // direct evaluation per in-band worker — the same decision as
    // AlphaThresholdCache::IsCandidate, inlined so the shared cache is
    // never mutated from a pool worker.
    reachability::ClassifyCertainBand(soa_, idx, count, task_noisy.x,
                                      task_noisy.y, sc.accept, sc.band);
    size_t kept = 0;
    for (const uint32_t i : sc.band) {
      const reachability::AlphaThreshold* t =
          thresholds_->Lookup(soa_.reach_radius_m[i]);
      SCGUARD_CHECK(t != nullptr);
      const double d = geo::Distance({soa_.x[i], soa_.y[i]}, task_noisy);
      bool is_candidate;
      if (d <= t->accept_below_m) {
        is_candidate = true;
      } else if (d >= t->reject_above_m) {
        is_candidate = false;
      } else {
        ++sc.band_evals;
        is_candidate = config_.model->ProbReachable(
                           reachability::Stage::kU2U, d,
                           soa_.reach_radius_m[i]) >= config_.alpha;
      }
      sc.band[kept] = i;
      kept += is_candidate ? 1 : 0;
    }
    sc.band.resize(kept);
    // Both lists are ascending subsets of the input, so one merge restores
    // the serial scan's candidate order.
    sc.out.resize(sc.accept.size() + sc.band.size());
    std::merge(sc.accept.begin(), sc.accept.end(), sc.band.begin(),
               sc.band.end(), sc.out.begin());
  } else {
    for (size_t k = 0; k < count; ++k) {
      const uint32_t i = idx[k];
      const double d_obs = geo::Distance({soa_.x[i], soa_.y[i]}, task_noisy);
      const double p = config_.model->ProbReachable(
          reachability::Stage::kU2U, d_obs, soa_.reach_radius_m[i]);
      if (p >= config_.alpha) sc.out.push_back(i);
    }
  }
}

bool U2uCandidateStage::UseMirror() const {
  return config_.runtime.cell_mirror && config_.runtime.active_set &&
         config_.kernel.alpha_thresholds && config_.pruning.has_value() &&
         config_.pruning->backend == index::PrunerBackend::kGrid;
}

void U2uCandidateStage::ScanMirrorChunk(geo::Point task_noisy,
                                        const geo::BoundingBox& query,
                                        size_t begin, size_t end,
                                        ShardScratch& sc) const {
  sc.accept.clear();
  sc.band.clear();
  sc.scanned = 0;
  sc.gather_bytes = 0;
  sc.cells_direct = 0;
  const reachability::CellMajorMirror& m = mirror_.rows();
  for (size_t v = begin; v < end; ++v) {
    const index::GridIndex::CellVisit& visit = visits_[v];
    if (v + 1 < end) {
      // The next cell's slice is a known contiguous address; start pulling
      // its first lines while this cell classifies.
      const size_t nx = visits_[v + 1].begin;
      __builtin_prefetch(m.x.data() + nx);
      __builtin_prefetch(m.y.data() + nx);
      __builtin_prefetch(m.accept_below_sq.data() + nx);
    }
    if (visit.cert == index::GridIndex::CellCert::kBulkAccepted) {
      // Every member is rectangle-admitted; the cell-level alpha
      // certificate can settle the whole slice without touching a row.
      sc.scanned += static_cast<int64_t>(visit.count);
      const CellScoreMirror::CellAlpha alpha =
          mirror_.Certify(visit.slot, task_noisy.x, task_noisy.y);
      if (alpha == CellScoreMirror::CellAlpha::kAllAccept) {
        const auto from =
            m.id.begin() + static_cast<std::ptrdiff_t>(visit.begin);
        sc.accept.insert(sc.accept.end(), from, from + visit.count);
        sc.gather_bytes += static_cast<int64_t>(visit.count) * 4;
        ++sc.cells_direct;
      } else if (alpha == CellScoreMirror::CellAlpha::kAllReject) {
        ++sc.cells_direct;
      } else {
        reachability::ClassifyCertainBandRange(m, visit.begin, visit.count,
                                               task_noisy.x, task_noisy.y,
                                               sc.accept, sc.band);
        sc.gather_bytes += static_cast<int64_t>(visit.count) * 36;
      }
    } else {
      const size_t admitted = reachability::ClassifyCertainBandRangeRect(
          m, visit.begin, visit.count, task_noisy.x, task_noisy.y,
          query.min_x, query.min_y, query.max_x, query.max_y, sc.accept,
          sc.band);
      sc.scanned += static_cast<int64_t>(admitted);
      sc.gather_bytes += static_cast<int64_t>(visit.count) * 44;
    }
  }
  // Band resolution — the same per-worker decision as ScanIndices, so the
  // mirror and gather paths agree bit for bit (and count the same
  // band_evals).
  size_t kept = 0;
  for (const uint32_t i : sc.band) {
    const reachability::AlphaThreshold* t =
        thresholds_->Lookup(soa_.reach_radius_m[i]);
    SCGUARD_CHECK(t != nullptr);
    const double d = geo::Distance({soa_.x[i], soa_.y[i]}, task_noisy);
    bool is_candidate;
    if (d <= t->accept_below_m) {
      is_candidate = true;
    } else if (d >= t->reject_above_m) {
      is_candidate = false;
    } else {
      ++sc.band_evals;
      is_candidate =
          config_.model->ProbReachable(reachability::Stage::kU2U, d,
                                       soa_.reach_radius_m[i]) >=
          config_.alpha;
    }
    sc.band[kept] = i;
    kept += is_candidate ? 1 : 0;
  }
  sc.band.resize(kept);
  // Chunk output order is irrelevant (the bitmap union restores ascending
  // order), so survivors just append.
  sc.accept.insert(sc.accept.end(), sc.band.begin(), sc.band.end());
}

void U2uCandidateStage::CollectMirror(geo::Point task_noisy_location) {
  const size_t n = soa_.size();
  const EngineRuntime& rt = config_.runtime;
  const geo::BoundingBox query = pruner_->TaskQueryBox(task_noisy_location);
  index::GridIndex* grid = pruner_->grid();
  grid->VisitQueryCells(query, visits_);

  // Cut the visit list into chunks of >= shard_size members. Boundaries
  // depend only on the walk and shard_size — never the pool — so per-chunk
  // outputs and counters are reproducible; at most one chunk more than the
  // brute scan's shard count exists, hence the resize.
  const auto shard_size = static_cast<size_t>(rt.shard_size);
  mirror_chunks_.clear();
  size_t chunk_begin = 0;
  size_t acc = 0;
  for (size_t v = 0; v < visits_.size(); ++v) {
    acc += visits_[v].count;
    if (acc >= shard_size) {
      mirror_chunks_.push_back({chunk_begin, v + 1});
      chunk_begin = v + 1;
      acc = 0;
    }
  }
  if (chunk_begin < visits_.size()) {
    mirror_chunks_.push_back({chunk_begin, visits_.size()});
  }
  if (shards_.size() < mirror_chunks_.size()) {
    shards_.resize(mirror_chunks_.size());
  }

  const Status scan_status = runtime::ParallelFor(
      rt.pool, 0, static_cast<int64_t>(mirror_chunks_.size()), /*grain=*/1,
      [&](int64_t lo, int64_t hi) -> Status {
        for (int64_t j = lo; j < hi; ++j) {
          const MirrorChunk& chunk = mirror_chunks_[static_cast<size_t>(j)];
          ScanMirrorChunk(task_noisy_location, query, chunk.begin, chunk.end,
                          shards_[static_cast<size_t>(j)]);
        }
        return Status::OK();
      });
  SCGUARD_CHECK(scan_status.ok());

  // Union the chunks' accepted ids through a dense bitmap and read it back
  // in word order: an order-independent set union, so the ascending result
  // equals the gather path's ascending concatenation no matter how cells
  // were chunked.
  mirror_bits_.assign((n + 63) / 64, 0);
  size_t hits = 0;
  for (size_t j = 0; j < mirror_chunks_.size(); ++j) {
    const ShardScratch& sc = shards_[j];
    for (const uint32_t i : sc.accept) {
      mirror_bits_[i >> 6] |= uint64_t{1} << (i & 63);
    }
    hits += sc.accept.size();
    stats_.scanned_last += sc.scanned;
    stats_.gather_bytes += sc.gather_bytes;
    stats_.cells_emitted_direct += sc.cells_direct;
  }
  stats_.pruned_last = static_cast<int64_t>(n) - stats_.scanned_last;
  candidates_.reserve(hits);
  for (size_t w = 0; w < mirror_bits_.size(); ++w) {
    uint64_t bits = mirror_bits_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      candidates_.push_back(
          static_cast<uint32_t>((w << 6) + static_cast<size_t>(b)));
      bits &= bits - 1;
    }
  }
}

const std::vector<uint32_t>& U2uCandidateStage::Collect(
    geo::Point task_noisy_location) {
  Prepare();
  const size_t n = soa_.size();
  const EngineRuntime& rt = config_.runtime;
  candidates_.clear();
  stats_.scanned_last = 0;
  stats_.pruned_last = 0;

  if (pruner_ != nullptr && UseMirror()) {
    CollectMirror(task_noisy_location);
    return candidates_;
  }

  if (pruner_ != nullptr) {
    // The index query itself stays serial (sub-linear, and it owns mutable
    // merge scratch); the classification work it feeds is what fans out.
    pruner_->Candidates(task_noisy_location, pruner_ids_);
    stats_.pruned_last = static_cast<int64_t>(n) -
                         static_cast<int64_t>(pruner_ids_.size());
    // Partition the ascending id list into per-shard segments using the
    // same fixed boundaries as the brute scan (shard of id = id /
    // shard_size — depends only on (n, shard_size), never the pool), then
    // fan the non-empty segments over the pool and concatenate their
    // outputs in segment order. Segments are ascending and disjoint, so
    // the result reproduces the old serial whole-list scan bit for bit.
    const auto shard_size = static_cast<size_t>(rt.shard_size);
    const size_t m = pruner_ids_.size();
    segments_.clear();
    for (size_t pos = 0; pos < m;) {
      const size_t shard = static_cast<size_t>(pruner_ids_[pos]) / shard_size;
      const auto shard_end = static_cast<int64_t>((shard + 1) * shard_size);
      size_t end = pos + 1;
      while (end < m && pruner_ids_[end] < shard_end) ++end;
      segments_.push_back({shard, pos, end});
      pos = end;
    }
    const Status scan_status = runtime::ParallelFor(
        rt.pool, 0, static_cast<int64_t>(segments_.size()), /*grain=*/1,
        [&](int64_t lo, int64_t hi) -> Status {
          for (int64_t j = lo; j < hi; ++j) {
            const Segment& seg = segments_[static_cast<size_t>(j)];
            ShardScratch& sc = shards_[seg.shard];
            sc.live.clear();
            if (rt.active_set) {
              // MarkMatched removed matched workers from the index, so the
              // query result is already the live set.
              for (size_t k = seg.begin; k < seg.end; ++k) {
                sc.live.push_back(static_cast<uint32_t>(pruner_ids_[k]));
              }
            } else {
              for (size_t k = seg.begin; k < seg.end; ++k) {
                const auto i = static_cast<size_t>(pruner_ids_[k]);
                if (!soa_.matched[i]) {
                  sc.live.push_back(static_cast<uint32_t>(i));
                }
              }
            }
            ScanIndices(task_noisy_location, sc.live.data(), sc.live.size(),
                        sc);
          }
          return Status::OK();
        });
    SCGUARD_CHECK(scan_status.ok());
    // Segment order == ascending id order; untouched shards keep stale
    // scratch from earlier tasks, so only this task's segments reduce.
    for (const Segment& seg : segments_) {
      const ShardScratch& sc = shards_[seg.shard];
      candidates_.insert(candidates_.end(), sc.out.begin(), sc.out.end());
      stats_.scanned_last += sc.scanned;
      // Traffic model: each gathered worker touches one scattered cache
      // line per SoA stream (x, y, accept_sq, reject_sq).
      stats_.gather_bytes += sc.scanned * 256;
    }
    return candidates_;
  }

  const auto num_shards = static_cast<int64_t>(shards_.size());
  const Status scan_status = runtime::ParallelFor(
      rt.pool, 0, num_shards, /*grain=*/1,
      [&](int64_t lo, int64_t hi) -> Status {
        for (int64_t s = lo; s < hi; ++s) {
          std::vector<uint32_t>& active = shard_active_[static_cast<size_t>(s)];
          ShardScratch& sc = shards_[static_cast<size_t>(s)];
          if (rt.active_set) {
            if (shard_dirty_[static_cast<size_t>(s)]) {
              // Stage-boundary rebuild from matched[]: a stable filter, so
              // the shard stays ascending and the next scan touches only
              // available workers.
              active.erase(
                  std::remove_if(
                      active.begin(), active.end(),
                      [&](uint32_t i) { return soa_.matched[i] != 0; }),
                  active.end());
              shard_dirty_[static_cast<size_t>(s)] = 0;
              ++sc.compactions;
            }
            ScanIndices(task_noisy_location, active.data(), active.size(), sc);
          } else {
            // Legacy full scan: the matched filter runs per task.
            sc.live.clear();
            for (const uint32_t i : active) {
              if (!soa_.matched[i]) sc.live.push_back(i);
            }
            ScanIndices(task_noisy_location, sc.live.data(), sc.live.size(),
                        sc);
          }
        }
        return Status::OK();
      });
  SCGUARD_CHECK(scan_status.ok());
  // Seed-order reduction: shard order == ascending id order.
  for (const ShardScratch& sc : shards_) {
    candidates_.insert(candidates_.end(), sc.out.begin(), sc.out.end());
    stats_.scanned_last += sc.scanned;
    // Traffic model: the brute scan streams the four packed doubles.
    stats_.gather_bytes += sc.scanned * 32;
  }
  return candidates_;
}

bool U2uCandidateStage::Decide(uint32_t worker,
                               geo::Point task_noisy_location) {
  Prepare();
  const geo::Point noisy{soa_.x[worker], soa_.y[worker]};
  const double r = soa_.reach_radius_m[worker];
  if (thresholds_.has_value()) {
    const double d_sq = geo::SquaredDistance(noisy, task_noisy_location);
    if (d_sq >= soa_.reject_above_sq[worker]) return false;  // No sqrt.
    // Certain accept needs no eval; only the band pays IsCandidate.
    return d_sq <= soa_.accept_below_sq[worker] ||
           thresholds_->IsCandidate(geo::Distance(noisy, task_noisy_location),
                                    r);
  }
  const double d_obs = geo::Distance(noisy, task_noisy_location);
  return config_.model->ProbReachable(reachability::Stage::kU2U, d_obs, r) >=
         config_.alpha;
}

void U2uCandidateStage::MarkMatched(uint32_t worker) {
  soa_.matched[worker] = 1;
  if (!config_.runtime.active_set) return;
  // Active-set maintenance: full scans compact the shard at its next scan;
  // pruned runs drop the worker from the index so queries stop returning
  // it.
  if (pruner_ != nullptr) {
    pruner_->Remove(static_cast<int64_t>(worker));
  } else if (prepared_) {
    shard_dirty_[worker / static_cast<size_t>(config_.runtime.shard_size)] = 1;
  }
}

size_t U2uCandidateStage::available() const {
  size_t n = 0;
  for (const uint8_t m : soa_.matched) n += m == 0 ? 1 : 0;
  return n;
}

int64_t U2uCandidateStage::band_evals() const {
  int64_t sum = 0;
  for (const ShardScratch& sc : shards_) sum += sc.band_evals;
  return sum;
}

int64_t U2uCandidateStage::compactions() const {
  int64_t sum = 0;
  for (const ShardScratch& sc : shards_) sum += sc.compactions;
  return sum;
}

}  // namespace scguard::assign
