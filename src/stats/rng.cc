#include "stats/rng.h"

#include <cmath>

#include "common/check.h"

namespace scguard::stats {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::UniformDoublePositive() {
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return u;
}

uint64_t Rng::UniformInt(uint64_t n) {
  SCGUARD_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = max() - max() % n;
  uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % n;
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  have_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

Rng Rng::Fork(uint64_t stream) const {
  // Mix the stream id into the original seed through SplitMix64 twice so
  // adjacent streams do not share low-bit structure.
  uint64_t sm = seed_ ^ (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL);
  const uint64_t derived = SplitMix64(sm) ^ SplitMix64(sm);
  return Rng(derived);
}

}  // namespace scguard::stats
