
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/budget.cc" "src/privacy/CMakeFiles/scguard_privacy.dir/budget.cc.o" "gcc" "src/privacy/CMakeFiles/scguard_privacy.dir/budget.cc.o.d"
  "/root/repo/src/privacy/cloaking.cc" "src/privacy/CMakeFiles/scguard_privacy.dir/cloaking.cc.o" "gcc" "src/privacy/CMakeFiles/scguard_privacy.dir/cloaking.cc.o.d"
  "/root/repo/src/privacy/geo_ind.cc" "src/privacy/CMakeFiles/scguard_privacy.dir/geo_ind.cc.o" "gcc" "src/privacy/CMakeFiles/scguard_privacy.dir/geo_ind.cc.o.d"
  "/root/repo/src/privacy/inference.cc" "src/privacy/CMakeFiles/scguard_privacy.dir/inference.cc.o" "gcc" "src/privacy/CMakeFiles/scguard_privacy.dir/inference.cc.o.d"
  "/root/repo/src/privacy/location_set.cc" "src/privacy/CMakeFiles/scguard_privacy.dir/location_set.cc.o" "gcc" "src/privacy/CMakeFiles/scguard_privacy.dir/location_set.cc.o.d"
  "/root/repo/src/privacy/planar_laplace.cc" "src/privacy/CMakeFiles/scguard_privacy.dir/planar_laplace.cc.o" "gcc" "src/privacy/CMakeFiles/scguard_privacy.dir/planar_laplace.cc.o.d"
  "/root/repo/src/privacy/truncated.cc" "src/privacy/CMakeFiles/scguard_privacy.dir/truncated.cc.o" "gcc" "src/privacy/CMakeFiles/scguard_privacy.dir/truncated.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/scguard_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/scguard_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
