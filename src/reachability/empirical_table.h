#ifndef SCGUARD_REACHABILITY_EMPIRICAL_TABLE_H_
#define SCGUARD_REACHABILITY_EMPIRICAL_TABLE_H_

#include <iosfwd>
#include <vector>

#include "common/result.h"
#include "stats/histogram.h"

namespace scguard::reachability {

/// A precomputed conditional distribution table: for each bucket of
/// observed (noisy) distance d' — disjoint ranges [0, s), [s, 2s), ...,
/// [B*s, inf) with s = 100 m in the paper — the empirical distribution of
/// the true distance d, stored as a Histogram.
///
/// Query: Pr(d <= R_w | d' in bucket) = bucket histogram's FractionBelow(R_w).
class EmpiricalTable {
 public:
  /// `bucket_width_m` is s (> 0); `num_buckets` B (>= 1; the last bucket is
  /// the open-ended [B*s, inf) overflow). True-distance histograms span
  /// [0, true_max_m) with `true_bins` bins.
  EmpiricalTable(double bucket_width_m, int num_buckets, double true_max_m,
                 int true_bins);

  double bucket_width_m() const { return bucket_width_; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  uint64_t total_samples() const { return total_samples_; }

  /// Index of the bucket holding observed distance `d_obs` (>= 0); values
  /// beyond the last closed bucket map to the overflow bucket.
  int BucketIndex(double d_obs) const;

  /// Records one (true, observed) distance pair.
  void Add(double d_true, double d_obs);

  /// Pr(d <= threshold | bucket(d_obs)). When the bucket holds no samples,
  /// falls back to the nearest non-empty bucket (shifting the query by the
  /// bucket-center offset so the estimate stays distance-consistent). The
  /// fallback is O(1) once WarmQueryCache has built the nearest-populated
  /// index; before that it walks outward per query.
  double ProbBelow(double d_obs, double threshold) const;

  /// Direct access to a bucket's true-distance histogram.
  const stats::Histogram& bucket(int index) const;

  /// Adds every sample of `other` into this table. Requires identical
  /// geometry (bucket width/count and histogram shape). Count addition is
  /// exact, so merging per-shard partials in any order yields the same
  /// table as one serial pass over the union of their samples.
  Status Merge(const EmpiricalTable& other);

  /// Pre-builds every bucket histogram's cumulative-count cache and the
  /// nearest-populated-bucket index behind the sparse-data fallback. Both
  /// are otherwise built lazily on the first ProbBelow query, which would
  /// be a data race when a finished table is queried from several threads;
  /// builders call this once so later queries are read-only.
  void WarmQueryCache() const;

  /// Text serialization (header + one histogram line per bucket).
  void Serialize(std::ostream& os) const;
  static Result<EmpiricalTable> Deserialize(std::istream& is);

 private:
  double bucket_width_;
  double true_max_;
  int true_bins_;
  std::vector<stats::Histogram> buckets_;
  uint64_t total_samples_ = 0;
  /// Per-bucket index of the nearest populated bucket (-1 when the table
  /// is entirely empty; ties break toward the lower index, matching the
  /// lazy outward walk). Built by WarmQueryCache, invalidated by Add and
  /// Merge; empty means "not built".
  mutable std::vector<int> nearest_populated_;
};

}  // namespace scguard::reachability

#endif  // SCGUARD_REACHABILITY_EMPIRICAL_TABLE_H_
