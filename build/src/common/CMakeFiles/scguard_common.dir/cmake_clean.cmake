file(REMOVE_RECURSE
  "CMakeFiles/scguard_common.dir/status.cc.o"
  "CMakeFiles/scguard_common.dir/status.cc.o.d"
  "CMakeFiles/scguard_common.dir/str_format.cc.o"
  "CMakeFiles/scguard_common.dir/str_format.cc.o.d"
  "libscguard_common.a"
  "libscguard_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scguard_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
