#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geo/bbox.h"
#include "index/grid_index.h"
#include "index/pruning.h"
#include "index/rtree.h"
#include "stats/rng.h"

namespace scguard::index {
namespace {

geo::BoundingBox RandomBox(stats::Rng& rng, double extent, double max_size) {
  const geo::Point c{rng.UniformDouble(0, extent), rng.UniformDouble(0, extent)};
  return geo::BoundingBox::FromCircle(c, rng.UniformDouble(1.0, max_size));
}

std::vector<int64_t> BruteForce(const std::vector<RTree::Entry>& entries,
                                const geo::BoundingBox& query) {
  std::vector<int64_t> out;
  for (const auto& e : entries) {
    if (e.box.Intersects(query)) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_TRUE(tree.QueryIds(geo::BoundingBox::FromCorners({0, 0}, {1, 1})).empty());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  tree.Insert(geo::BoundingBox::FromCorners({0, 0}, {1, 1}), 7);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  const auto hits = tree.QueryIds(geo::BoundingBox::FromCorners({0.5, 0.5}, {2, 2}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7);
  EXPECT_TRUE(tree.QueryIds(geo::BoundingBox::FromCorners({5, 5}, {6, 6})).empty());
}

TEST(RTreeTest, InsertMatchesBruteForce) {
  stats::Rng rng(1);
  RTree tree(8);
  std::vector<RTree::Entry> entries;
  for (int64_t i = 0; i < 500; ++i) {
    const geo::BoundingBox box = RandomBox(rng, 1000.0, 30.0);
    entries.push_back({box, i});
    tree.Insert(box, i);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GT(tree.Height(), 1);
  for (int q = 0; q < 50; ++q) {
    const geo::BoundingBox query = RandomBox(rng, 1000.0, 100.0);
    auto got = tree.QueryIds(query);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForce(entries, query)) << "query " << q;
  }
}

TEST(RTreeTest, BulkLoadMatchesBruteForce) {
  stats::Rng rng(2);
  std::vector<RTree::Entry> entries;
  for (int64_t i = 0; i < 2000; ++i) {
    entries.push_back({RandomBox(rng, 5000.0, 40.0), i});
  }
  RTree tree(16);
  tree.BulkLoad(entries);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), 2000u);
  for (int q = 0; q < 50; ++q) {
    const geo::BoundingBox query = RandomBox(rng, 5000.0, 200.0);
    auto got = tree.QueryIds(query);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForce(entries, query)) << "query " << q;
  }
}

TEST(RTreeTest, BulkLoadEmptyAndTiny) {
  RTree tree;
  tree.BulkLoad({});
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariants());
  tree.BulkLoad({{geo::BoundingBox::FromCorners({0, 0}, {1, 1}), 1}});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, DuplicateBoxesAllReported) {
  RTree tree(4);
  const geo::BoundingBox box = geo::BoundingBox::FromCorners({0, 0}, {1, 1});
  for (int64_t i = 0; i < 20; ++i) tree.Insert(box, i);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.QueryIds(box).size(), 20u);
}

TEST(RTreeTest, QueryCallbackReceivesEntries) {
  RTree tree;
  tree.Insert(geo::BoundingBox::FromCorners({0, 0}, {1, 1}), 3);
  int64_t seen_id = -1;
  tree.Query(geo::BoundingBox::FromCorners({0, 0}, {2, 2}),
             [&seen_id](const RTree::Entry& e) { seen_id = e.id; });
  EXPECT_EQ(seen_id, 3);
}

// ------------------------------------------------------------- GridIndex

struct PointEntry {
  geo::Point center;
  double radius = 0.0;
  int64_t id = 0;
};

PointEntry RandomPointEntry(stats::Rng& rng, double extent, double max_radius,
                            int64_t id) {
  return {{rng.UniformDouble(0, extent), rng.UniformDouble(0, extent)},
          rng.UniformDouble(1.0, max_radius),
          id};
}

/// The per-entry predicate GridIndex certifies against: the entry's
/// expanded rectangle intersects the query.
bool EntryHits(const PointEntry& e, const geo::BoundingBox& query) {
  return geo::BoundingBox::FromCircle(e.center, e.radius).Intersects(query);
}

std::vector<int64_t> BruteForcePoints(const std::vector<PointEntry>& entries,
                                      const geo::BoundingBox& query) {
  std::vector<int64_t> out;
  for (const auto& e : entries) {
    if (EntryHits(e, query)) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(GridIndexTest, MatchesBruteForceAndEmitsAscending) {
  stats::Rng rng(3);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0}, {1000, 1000});
  GridIndex grid(region, 16);
  std::vector<PointEntry> entries;
  for (int64_t i = 0; i < 500; ++i) {
    entries.push_back(RandomPointEntry(rng, 1000.0, 50.0, i));
    grid.Insert(entries.back().center, entries.back().radius, i);
  }
  EXPECT_EQ(grid.size(), 500u);
  for (int q = 0; q < 50; ++q) {
    const geo::BoundingBox query = RandomBox(rng, 1000.0, 120.0);
    const auto got = grid.QueryIds(query);
    // Ascending without any caller-side sort: the k-way merge contract.
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    EXPECT_EQ(got, BruteForcePoints(entries, query)) << "query " << q;
  }
}

TEST(GridIndexTest, OutOfOrderInsertionStaysAscending) {
  stats::Rng rng(8);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0}, {1000, 1000});
  GridIndex grid(region, 8);
  std::vector<PointEntry> entries;
  for (int64_t i = 0; i < 300; ++i) {
    entries.push_back(RandomPointEntry(rng, 1000.0, 40.0, i));
  }
  // Insert in shuffled id order; cells must re-establish ascending ids.
  std::vector<size_t> order(entries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t i = order.size(); i > 1; --i) {  // Fisher-Yates.
    std::swap(order[i - 1], order[rng.UniformInt(i)]);
  }
  for (const size_t i : order) {
    grid.Insert(entries[i].center, entries[i].radius, entries[i].id);
  }
  for (int q = 0; q < 30; ++q) {
    const geo::BoundingBox query = RandomBox(rng, 1000.0, 150.0);
    const auto got = grid.QueryIds(query);
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    EXPECT_EQ(got, BruteForcePoints(entries, query)) << "query " << q;
  }
}

TEST(GridIndexTest, EntriesOutsideRegionClampToBorderCells) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0}, {100, 100});
  GridIndex grid(region, 4);
  grid.Insert({-45, -45}, 5.0, 1);
  grid.Insert({205, 205}, 5.0, 2);
  // Queries beyond the region still find them through the border cells.
  EXPECT_EQ(grid.QueryIds(geo::BoundingBox::FromCorners({-60, -60}, {-45, -45})).size(),
            1u);
  EXPECT_EQ(grid.QueryIds(geo::BoundingBox::FromCorners({205, 205}, {220, 220})).size(),
            1u);
}

TEST(GridIndexTest, CellCertificationAgreesWithMemberTests) {
  // Property: a bulk-accepted cell implies every member passes the scalar
  // rectangle test; a skipped cell implies none does. Query() must agree
  // with brute force, and its certification counters must account for
  // every returned id.
  stats::Rng rng(9);
  const double extent = 1000.0;
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {extent, extent});
  GridIndex grid(region, 8);
  std::vector<PointEntry> entries;
  for (int64_t i = 0; i < 400; ++i) {
    entries.push_back(RandomPointEntry(rng, extent, 80.0, i));
    grid.Insert(entries.back().center, entries.back().radius, i);
  }
  auto entry_by_id = [&](int64_t id) -> const PointEntry& {
    return entries[static_cast<size_t>(id)];
  };
  for (int q = 0; q < 40; ++q) {
    const geo::BoundingBox query = RandomBox(rng, extent, 200.0);
    for (int cy = 0; cy < grid.cells_per_axis(); ++cy) {
      for (int cx = 0; cx < grid.cells_per_axis(); ++cx) {
        const auto members = grid.CellMembersForTest(cx, cy);
        if (members.empty()) continue;
        switch (grid.ClassifyCellForTest(cx, cy, query)) {
          case GridIndex::CellCert::kBulkAccepted:
            for (const int64_t id : members) {
              EXPECT_TRUE(EntryHits(entry_by_id(id), query))
                  << "bulk-accepted cell (" << cx << "," << cy
                  << ") holds a non-matching member " << id;
            }
            break;
          case GridIndex::CellCert::kSkipped:
            for (const int64_t id : members) {
              EXPECT_FALSE(EntryHits(entry_by_id(id), query))
                  << "skipped cell (" << cx << "," << cy
                  << ") holds a matching member " << id;
            }
            break;
          case GridIndex::CellCert::kBoundary:
            break;  // Per-member tests decide; covered by the query check.
        }
      }
    }
    grid.ResetStats();
    const auto got = grid.QueryIds(query);
    EXPECT_EQ(got, BruteForcePoints(entries, query)) << "query " << q;
    const GridIndex::QueryStats& stats = grid.stats();
    EXPECT_GE(stats.boundary_workers, 0);
    // Every returned id came from a bulk-accepted cell or survived a
    // boundary test; bulk cells contribute at least one id each.
    EXPECT_GE(static_cast<int64_t>(got.size()), stats.cells_bulk_accepted);
  }
}

TEST(GridIndexTest, RemoveCompactsAndReAddChurn) {
  // Remove/re-add churn against a brute-force mirror: the compacted cell
  // arrays must keep answering exactly, stay ascending, and Remove must be
  // idempotent.
  stats::Rng rng(10);
  const double extent = 500.0;
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {extent, extent});
  GridIndex grid(region, 6);
  std::vector<PointEntry> live;
  std::vector<PointEntry> pool;
  for (int64_t i = 0; i < 200; ++i) {
    pool.push_back(RandomPointEntry(rng, extent, 60.0, i));
  }
  for (const auto& e : pool) {
    grid.Insert(e.center, e.radius, e.id);
    live.push_back(e);
  }
  for (int step = 0; step < 300; ++step) {
    const uint64_t op = rng.UniformInt(3);
    if (op == 0 && live.empty()) continue;
    if (op == 0) {
      // Remove a random live id.
      const auto k = static_cast<size_t>(rng.UniformInt(live.size()));
      const int64_t id = live[k].id;
      EXPECT_EQ(grid.Remove(id), 1u);
      EXPECT_EQ(grid.Remove(id), 0u);  // Idempotent.
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    } else if (op == 1) {
      // Re-add an absent pool entry (possibly at a fresh location).
      const auto k = static_cast<size_t>(rng.UniformInt(pool.size()));
      const bool absent =
          std::none_of(live.begin(), live.end(),
                       [&](const PointEntry& e) { return e.id == pool[k].id; });
      if (!absent) continue;
      PointEntry e = pool[k];
      e.center = {rng.UniformDouble(0, extent), rng.UniformDouble(0, extent)};
      grid.Insert(e.center, e.radius, e.id);
      live.push_back(e);
    } else {
      const geo::BoundingBox query = RandomBox(rng, extent, 120.0);
      const auto got = grid.QueryIds(query);
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
      EXPECT_EQ(got, BruteForcePoints(live, query)) << "step " << step;
    }
    EXPECT_EQ(grid.size(), live.size());
  }
}

TEST(GridIndexTest, RelocateMatchesRemoveInsertChurn) {
  // Relocate churn against a brute-force mirror: same-cell jitters (the
  // service's common case, handled in place) and cross-cell jumps
  // (erase + insert) must both keep queries exact and the index ascending.
  stats::Rng rng(17);
  const double extent = 500.0;
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {extent, extent});
  GridIndex grid(region, 6);
  std::vector<PointEntry> live;
  for (int64_t i = 0; i < 150; ++i) {
    live.push_back(RandomPointEntry(rng, extent, 60.0, i));
    grid.Insert(live.back().center, live.back().radius, live.back().id);
  }
  EXPECT_EQ(grid.Relocate(999, {10, 10}), 0u);  // Unknown id: no-op.
  for (int step = 0; step < 400; ++step) {
    const auto k = static_cast<size_t>(rng.UniformInt(live.size()));
    geo::Point next;
    if (step % 2 == 0) {
      // Small jitter: usually stays in the same cell (~83 m cells here).
      next = {live[k].center.x + rng.UniformDouble(-10.0, 10.0),
              live[k].center.y + rng.UniformDouble(-10.0, 10.0)};
    } else {
      next = {rng.UniformDouble(0, extent), rng.UniformDouble(0, extent)};
    }
    EXPECT_EQ(grid.Relocate(live[k].id, next), 1u);
    live[k].center = next;
    EXPECT_TRUE(grid.Contains(live[k].id));
    if (step % 7 == 0) {
      const geo::BoundingBox query = RandomBox(rng, extent, 120.0);
      const auto got = grid.QueryIds(query);
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
      EXPECT_EQ(got, BruteForcePoints(live, query)) << "step " << step;
    }
  }
  // Relocate after Remove is a no-op until a fresh Insert revives the id.
  const int64_t victim = live.front().id;
  EXPECT_EQ(grid.Remove(victim), 1u);
  EXPECT_FALSE(grid.Contains(victim));
  EXPECT_EQ(grid.Relocate(victim, {1, 1}), 0u);
}

TEST(GridIndexTest, SparseIdsFallBackToRunMergeCorrectly) {
  // Ids spread over a huge range disable the dense bitmap ordering; the
  // run-merge fallback must produce the same ascending answers.
  stats::Rng rng(21);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {1000, 1000});
  GridIndex grid(region, 8);
  std::vector<PointEntry> entries;
  for (int i = 0; i < 120; ++i) {
    // Widely scattered ids, including negatives and near-2^40 values.
    const int64_t id = (static_cast<int64_t>(i) << 33) - 4000000000LL +
                       static_cast<int64_t>(rng.UniformInt(1000));
    entries.push_back(RandomPointEntry(rng, 1000.0, 60.0, id));
    grid.Insert(entries.back().center, entries.back().radius, id);
  }
  for (int q = 0; q < 30; ++q) {
    const geo::BoundingBox query = RandomBox(rng, 1000.0, 200.0);
    const auto got = grid.QueryIds(query);
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    EXPECT_EQ(got, BruteForcePoints(entries, query)) << "query " << q;
  }
}

TEST(GridIndexTest, DuplicateIdEmittedOnce) {
  // An id inserted at two locations is reported once per query that reaches
  // either entry — in both the dense-bitmap and the sparse-merge regimes.
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {1000, 1000});
  const geo::BoundingBox everywhere = region;
  {
    GridIndex dense(region, 8);
    dense.Insert({100, 100}, 10.0, 7);
    dense.Insert({900, 900}, 10.0, 7);
    const auto ids = dense.QueryIds(everywhere);
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], 7);
    EXPECT_EQ(dense.Remove(7), 2u);
  }
  {
    GridIndex sparse(region, 8);
    sparse.Insert({100, 100}, 10.0, 7);
    sparse.Insert({900, 900}, 10.0, 7);
    sparse.Insert({500, 500}, 10.0, int64_t{1} << 40);  // Force sparse mode.
    const auto ids = sparse.QueryIds(everywhere);
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], 7);
    EXPECT_EQ(ids[1], int64_t{1} << 40);
  }
}

// ---------------------------------------------------------------- Pruner

std::vector<UncertainRegionPruner::WorkerRegion> MakeRegions(int n,
                                                             stats::Rng& rng,
                                                             double extent) {
  std::vector<UncertainRegionPruner::WorkerRegion> regions;
  for (int i = 0; i < n; ++i) {
    regions.push_back({i,
                       {rng.UniformDouble(0, extent), rng.UniformDouble(0, extent)},
                       rng.UniformDouble(1000.0, 3000.0)});
  }
  return regions;
}

TEST(PrunerTest, BackendsAgree) {
  stats::Rng rng(4);
  const double extent = 30000.0;
  const auto regions = MakeRegions(300, rng, extent);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {extent, extent});
  const privacy::PrivacyParams params{0.7, 800.0};
  const UncertainRegionPruner linear(regions, params, params, 0.9,
                                     PrunerBackend::kLinearScan, region);
  const UncertainRegionPruner grid(regions, params, params, 0.9,
                                   PrunerBackend::kGrid, region);
  const UncertainRegionPruner rtree(regions, params, params, 0.9,
                                    PrunerBackend::kRTree, region);
  for (int q = 0; q < 30; ++q) {
    const geo::Point task{rng.UniformDouble(0, extent), rng.UniformDouble(0, extent)};
    auto a = linear.Candidates(task);
    auto b = grid.Candidates(task);
    auto c = rtree.Candidates(task);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::sort(c.begin(), c.end());
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
  }
}

TEST(PrunerTest, NeverDropsOverlappingDiskPairs) {
  // Conservativeness: if disk(w', rR + Rw) and disk(t', rR) intersect, the
  // worker must be returned (MBRs enclose the disks).
  stats::Rng rng(5);
  const double extent = 20000.0;
  const auto regions = MakeRegions(200, rng, extent);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {extent, extent});
  const privacy::PrivacyParams params{0.7, 800.0};
  const UncertainRegionPruner pruner(regions, params, params, 0.9,
                                     PrunerBackend::kGrid, region);
  for (int q = 0; q < 50; ++q) {
    const geo::Point task{rng.UniformDouble(0, extent), rng.UniformDouble(0, extent)};
    auto candidates = pruner.Candidates(task);
    std::sort(candidates.begin(), candidates.end());
    for (const auto& w : regions) {
      const double gap = geo::Distance(w.noisy_location, task);
      const double disk_sum = pruner.worker_confidence_radius_m() +
                              w.reach_radius_m +
                              pruner.task_confidence_radius_m();
      if (gap <= disk_sum) {
        EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                       w.worker_id))
            << "worker " << w.worker_id << " at disk distance " << gap;
      }
    }
  }
}

TEST(PrunerTest, ConfidenceRadiusGrowsWithGamma) {
  stats::Rng rng(6);
  const auto regions = MakeRegions(10, rng, 1000.0);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {1000, 1000});
  const privacy::PrivacyParams params{0.7, 800.0};
  const UncertainRegionPruner p50(regions, params, params, 0.5,
                                  PrunerBackend::kLinearScan, region);
  const UncertainRegionPruner p99(regions, params, params, 0.99,
                                  PrunerBackend::kLinearScan, region);
  EXPECT_LT(p50.worker_confidence_radius_m(), p99.worker_confidence_radius_m());
}

TEST(PrunerTest, FarTaskPrunesMostWorkers) {
  stats::Rng rng(7);
  const double extent = 50000.0;
  const auto regions = MakeRegions(500, rng, extent);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {extent, extent});
  const privacy::PrivacyParams params{1.0, 200.0};  // Little noise.
  const UncertainRegionPruner pruner(regions, params, params, 0.9,
                                     PrunerBackend::kRTree, region);
  // A task far outside the deployment region keeps almost nothing.
  const auto candidates = pruner.Candidates({extent * 3, extent * 3});
  EXPECT_LT(candidates.size(), 5u);
}

}  // namespace
}  // namespace scguard::index
