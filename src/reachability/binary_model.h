#ifndef SCGUARD_REACHABILITY_BINARY_MODEL_H_
#define SCGUARD_REACHABILITY_BINARY_MODEL_H_

#include "reachability/model.h"

namespace scguard::reachability {

/// The oblivious model (paper Sec. IV-A): treats observed locations as true
/// ones, so reachability is the step function 1{d' <= R_w} at every stage.
/// This is the reachability model behind Algorithm 1 (the baseline).
class BinaryModel final : public ReachabilityModel {
 public:
  double ProbReachable(Stage stage, double observed_distance_m,
                       double reach_radius_m) const override;

  void ProbReachableBatch(Stage stage, const double* observed_distance_m,
                          const double* reach_radius_m, size_t n,
                          double* out) const override;

  std::string_view name() const override { return "binary"; }
};

}  // namespace scguard::reachability

#endif  // SCGUARD_REACHABILITY_BINARY_MODEL_H_
