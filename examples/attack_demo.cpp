// The fake-task probing attack of paper Sec. VII and its countermeasure:
// a malicious requester floods the area around a victim with bogus tasks
// and uses workers' accept/reject responses to triangulate them; the
// reputation tracker flags the pattern and the platform throttles the
// attacker before the triangulation converges.
//
// Build & run:  ./build/examples/attack_demo

#include <iostream>

#include "common/str_format.h"
#include "core/protocol.h"
#include "core/reputation.h"
#include "geo/bbox.h"
#include "geo/point.h"
#include "reachability/analytical_model.h"
#include "stats/rng.h"

int main() {
  using namespace scguard;

  const privacy::PrivacyParams params{0.7, 800.0};
  stats::Rng rng(11);

  // A victim worker with a 1500 m region, registered with the server.
  const geo::Point victim_location{5000.0, 5000.0};
  core::WorkerDevice victim(0, victim_location, 1500.0, params);
  const reachability::AnalyticalModel model(params);
  core::TaskingServer server(&model, 0.1);
  server.RegisterWorker(victim.Register(rng));

  // --- The attack: probe a grid of fake task locations -----------------
  // Each accepted probe reveals "victim within 1500 m of this point";
  // intersecting the accepting disks shrinks the feasible region.
  core::ReputationTracker reputation;
  constexpr int64_t kAttacker = 666;
  geo::BoundingBox feasible = geo::BoundingBox::FromCorners({0, 0}, {10000, 10000});
  int probes = 0, accepted = 0, blocked_at = -1;

  for (double y = 500; y < 10000; y += 950) {
    for (double x = 500; x < 10000; x += 950) {
      const geo::Point probe{x, y};
      reputation.RecordTask(kAttacker, probe);
      if (reputation.IsSuspicious(kAttacker)) {
        blocked_at = probes;  // Platform cuts the attacker off here.
        break;
      }
      ++probes;
      // The attacker contacts the victim directly (it learned the worker
      // id from an earlier legitimate exchange) and observes the E2E
      // accept/reject signal.
      const bool accepts = victim.HandleTaskOffer(probe);
      reputation.RecordOutcome(kAttacker, /*completed=*/false);  // Never runs it.
      if (accepts) {
        ++accepted;
        feasible = [&] {
          geo::BoundingBox disk = geo::BoundingBox::FromCircle(probe, 1500.0);
          geo::BoundingBox intersection;
          intersection.min_x = std::max(feasible.min_x, disk.min_x);
          intersection.min_y = std::max(feasible.min_y, disk.min_y);
          intersection.max_x = std::min(feasible.max_x, disk.max_x);
          intersection.max_y = std::min(feasible.max_y, disk.max_y);
          return intersection;
        }();
      }
    }
    if (blocked_at >= 0) break;
  }

  std::cout << "attacker sent " << probes << " probes ("
            << accepted << " accepted) before the reputation system ";
  if (blocked_at >= 0) {
    std::cout << "flagged it (score "
              << FormatDouble(reputation.Score(kAttacker), 3) << ")\n";
  } else {
    std::cout << "never flagged it — countermeasure failed!\n";
  }
  std::cout << "feasible region for the victim after the blocked attack: "
            << FormatDouble(feasible.Width(), 0) << " x "
            << FormatDouble(feasible.Height(), 0) << " m (true location "
            << (feasible.Contains(victim_location) ? "inside" : "outside")
            << ")\n";

  // --- A legitimate requester for contrast ------------------------------
  core::ReputationTracker clean_tracker;
  for (int i = 0; i < 40; ++i) {
    clean_tracker.RecordTask(
        1, {rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000)});
    clean_tracker.RecordOutcome(1, /*completed=*/true);
  }
  std::cout << "\nlegitimate requester score after 40 real tasks: "
            << FormatDouble(clean_tracker.Score(1), 3) << " (suspicious: "
            << (clean_tracker.IsSuspicious(1) ? "yes" : "no") << ")\n";
  return 0;
}
