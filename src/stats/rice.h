#ifndef SCGUARD_STATS_RICE_H_
#define SCGUARD_STATS_RICE_H_

namespace scguard::stats {

/// The Rice (Rician) distribution with noncentrality `nu` and scale `sigma`:
/// the norm of a 2-D Gaussian with per-coordinate stddev `sigma` centered at
/// distance `nu` from the origin.
///
/// This is exactly the distribution of the true worker-task distance in the
/// U2E stage of SCGuard (paper Sec. IV-B1): the task location is exact, the
/// worker location is a bivariate normal approximation of the planar
/// Laplace noise around the observed point, so `d(w, t) ~ Rice(d(w', t),
/// sqrt(2) r / eps)`.
class RiceDistribution {
 public:
  /// Requires nu >= 0 and sigma > 0.
  RiceDistribution(double nu, double sigma);

  double nu() const { return nu_; }
  double sigma() const { return sigma_; }

  /// Density at x (0 for x < 0). Numerically stable for large nu/sigma via
  /// the exponentially scaled Bessel I0.
  double Pdf(double x) const;

  /// Pr(X <= x) = 1 - MarcumQ1(nu/sigma, x/sigma).
  double Cdf(double x) const;

  /// E[X] = sigma * sqrt(pi/2) * L_{1/2}(-nu^2 / (2 sigma^2)), where L is the
  /// Laguerre function expressed through Bessel I0/I1.
  double Mean() const;

  /// Var[X] = 2 sigma^2 + nu^2 - Mean()^2.
  double Variance() const;

 private:
  double nu_;
  double sigma_;
};

}  // namespace scguard::stats

#endif  // SCGUARD_STATS_RICE_H_
