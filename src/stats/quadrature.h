#ifndef SCGUARD_STATS_QUADRATURE_H_
#define SCGUARD_STATS_QUADRATURE_H_

#include <functional>

namespace scguard::stats {

/// Adaptive Simpson integration of `f` over [a, b] to absolute tolerance
/// `tol`. Used to cross-check closed-form CDFs (tests) and to integrate
/// reachability densities that have no closed form.
double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol = 1e-10);

}  // namespace scguard::stats

#endif  // SCGUARD_STATS_QUADRATURE_H_
