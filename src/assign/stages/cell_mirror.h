#ifndef SCGUARD_ASSIGN_STAGES_CELL_MIRROR_H_
#define SCGUARD_ASSIGN_STAGES_CELL_MIRROR_H_

#include <cstdint>
#include <vector>

#include "index/grid_index.h"
#include "reachability/kernel.h"

namespace scguard::assign {

/// The cell-major scoring mirror (DESIGN.md §13): a CellMajorMirror whose
/// rows shadow a GridIndex's flat member arrays position for position —
/// same CSR cell slices, same headroom, same ascending in-slice id order —
/// plus a per-cell aggregate that certifies whole cells against the alpha
/// filter. It registers as the index's SliceChangeListener, so the index's
/// in-slice erases (MarkMatched removals), inserts, and rebuilds keep the
/// mirror in sync in O(cell) per mutation without re-reading the index.
///
/// Contract with the stage:
///  * Attach after the per-worker certain bands are prewarmed (the mirror
///    copies accept/reject_sq by worker id at build and insert time) and
///    after the grid is built.
///  * Call ForgetGrid() *before* the grid is destroyed (the stage does this
///    wherever it resets its pruner). The mirror's destructor never touches
///    the grid, so a mirror whose grid died after ForgetGrid is safe — but
///    a grid must never mutate after its listener died without detaching.
///
/// Not thread-safe for mutation; the concurrent Collect scan only reads.
class CellScoreMirror final : public index::GridIndex::SliceChangeListener {
 public:
  /// Conservative cell-level alpha certificate for one task location:
  /// kAllAccept / kAllReject mean *every* member of the cell lands in the
  /// scalar kernel's certain-accept / certain-reject region, so the cell
  /// resolves with zero per-worker loads and zero band evaluations —
  /// exactly what the per-member trichotomy would have decided. kMixed
  /// means the cell must be classified member by member.
  enum class CellAlpha { kMixed, kAllAccept, kAllReject };

  CellScoreMirror() = default;
  ~CellScoreMirror() override = default;
  CellScoreMirror(const CellScoreMirror&) = delete;
  CellScoreMirror& operator=(const CellScoreMirror&) = delete;

  /// Rebuilds the mirror over `grid`'s current layout and registers as its
  /// slice-change listener (displacing any previous listener). `soa` must
  /// have accept_below_sq / reject_above_sq filled for every id the grid
  /// holds, and both pointers must stay valid while attached.
  void Attach(index::GridIndex* grid,
              const reachability::WorkerFilterSoA* soa);

  /// Detaches from the grid (clears its listener registration) and forgets
  /// the pointer. Must run before the grid dies; idempotent.
  void ForgetGrid();

  const index::GridIndex* grid() const { return grid_; }
  const reachability::CellMajorMirror& rows() const { return rows_; }

  /// Certifies cell `slot` against the task location. The bounds are
  /// floating-point conservative: each member's kernel d_sq (computed as
  /// fl(fl(dx^2) + fl(dy^2)) with dx = fl(x - task_x)) is bracketed by the
  /// corner distances of the cell's member bounding box evaluated with the
  /// same operations — rounding is monotone, so no slack is needed — and
  /// compared against the cell's min accept / max reject bound.
  CellAlpha Certify(size_t slot, double task_x, double task_y) const;

  // index::GridIndex::SliceChangeListener:
  void OnSliceErase(size_t slot, size_t pos, size_t end) override;
  void OnSliceInsert(size_t slot, size_t pos, size_t end) override;
  void OnSliceUpdate(size_t slot, size_t pos, size_t end) override;
  void OnRebuild() override;

  /// Per-cell member aggregate (test support): the member x/y bounding box
  /// and the cell-wide worst-case certain-band bounds.
  struct CellAgg {
    double min_x = 0.0, max_x = -1.0;  // Empty sentinel: max < min.
    double min_y = 0.0, max_y = -1.0;
    double min_accept_sq = 0.0;
    double max_reject_sq = 0.0;
  };
  const CellAgg& CellAggForTest(size_t slot) const { return aggs_[slot]; }

 private:
  /// Copies grid row `pos` (id/x/y/expanded_r) plus the id's certain bands
  /// from the soa into mirror row `pos`.
  void FillRow(size_t pos);
  /// Rebuilds cell `slot`'s aggregate from its mirror rows.
  void RecomputeAgg(size_t slot);
  /// Full rebuild from the grid's current layout.
  void Resync();

  index::GridIndex* grid_ = nullptr;          // Not owned.
  const reachability::WorkerFilterSoA* soa_ = nullptr;  // Not owned.
  reachability::CellMajorMirror rows_;
  std::vector<CellAgg> aggs_;
};

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_STAGES_CELL_MIRROR_H_
