#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <sstream>
#include <vector>

#include "assign/algorithms.h"
#include "data/beijing.h"
#include "reachability/empirical_model.h"
#include "reachability/model_cache.h"
#include "runtime/parallel_for.h"
#include "runtime/task_group.h"
#include "runtime/thread_pool.h"
#include "sim/defaults.h"
#include "sim/experiment.h"

namespace scguard::runtime {
namespace {

TEST(RuntimeOptionsTest, ResolvesThreads) {
  EXPECT_GE(RuntimeOptions{0}.ResolvedThreads(), 1);
  EXPECT_EQ(RuntimeOptions{1}.ResolvedThreads(), 1);
  EXPECT_EQ(RuntimeOptions{7}.ResolvedThreads(), 7);
  EXPECT_EQ(MakePool(RuntimeOptions{1}), nullptr);
  const auto pool = MakePool(RuntimeOptions{3});
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->num_threads(), 3);
}

TEST(ThreadPoolTest, StartsAndStopsRepeatedly) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
  }
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, InWorkerThreadFlag) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  std::atomic<bool> seen_inside{false};
  {
    ThreadPool pool(2);
    pool.Submit([&] { seen_inside = ThreadPool::InWorkerThread(); });
  }
  EXPECT_TRUE(seen_inside.load());
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

TEST(TaskGroupTest, WaitsForAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) {
    group.Run([&count]() -> Status {
      count.fetch_add(1);
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(count.load(), 64);
}

TEST(TaskGroupTest, ReportsEarliestSubmittedFailure) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  for (int i = 0; i < 16; ++i) {
    group.Run([i]() -> Status {
      if (i == 11) return Status::Internal("late failure");
      if (i == 5) return Status::InvalidArgument("early failure");
      return Status::OK();
    });
  }
  const Status st = group.Wait();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "early failure");
}

// Sums [0, n) through ParallelFor into index-addressed slots.
int64_t ParallelSum(ThreadPool* pool, int64_t n, int64_t grain) {
  std::vector<int64_t> partial(static_cast<size_t>(n), 0);
  const Status st = ParallelFor(pool, 0, n, grain,
                                [&](int64_t lo, int64_t hi) -> Status {
                                  for (int64_t i = lo; i < hi; ++i) {
                                    partial[static_cast<size_t>(i)] = i;
                                  }
                                  return Status::OK();
                                });
  EXPECT_TRUE(st.ok());
  return std::accumulate(partial.begin(), partial.end(), int64_t{0});
}

TEST(ParallelForTest, CoversRangeUnderOddGrains) {
  ThreadPool pool(4);
  for (int64_t n : {0, 1, 2, 7, 64, 1000}) {
    const int64_t want = n * (n - 1) / 2;
    for (int64_t grain : {int64_t{1}, int64_t{3}, int64_t{7}, n + 1}) {
      if (grain <= 0) continue;
      EXPECT_EQ(ParallelSum(nullptr, n, grain), want) << n << "/" << grain;
      EXPECT_EQ(ParallelSum(&pool, n, grain), want) << n << "/" << grain;
    }
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(2);
  const Status st = ParallelFor(&pool, 5, 5, 1, [](int64_t, int64_t) -> Status {
    ADD_FAILURE() << "fn invoked on empty range";
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
}

TEST(ParallelForTest, PropagatesLowestIndexedFailure) {
  ThreadPool pool(4);
  // Chunks of one item; items 3 and 17 fail with distinct messages. The
  // serial and parallel paths must both report item 3's status.
  const auto fn = [](int64_t lo, int64_t) -> Status {
    if (lo == 17) return Status::Internal("chunk 17");
    if (lo == 3) return Status::OutOfRange("chunk 3");
    return Status::OK();
  };
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    const Status st = ParallelFor(p, 0, 32, 1, fn);
    EXPECT_TRUE(st.IsOutOfRange());
    EXPECT_EQ(st.message(), "chunk 3");
  }
}

TEST(ParallelForTest, NestedCallRunsSeriallyWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  const Status st = ParallelFor(
      &pool, 0, 8, 1, [&](int64_t, int64_t) -> Status {
        // Inner ParallelFor on the same (saturated) pool: must detect the
        // worker context and degrade to the serial path.
        return ParallelFor(&pool, 0, 10, 3, [&](int64_t lo, int64_t hi) -> Status {
          total.fetch_add(hi - lo);
          return Status::OK();
        });
      });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(total.load(), 80);
}

}  // namespace
}  // namespace scguard::runtime

namespace scguard::sim {
namespace {

ExperimentConfig SmallConfig(int num_threads) {
  ExperimentConfig config;
  config.synth.num_taxis = 300;
  config.synth.mean_trips_per_taxi = 6.0;
  config.workload.num_workers = 60;
  config.workload.num_tasks = 60;
  config.num_seeds = 5;
  config.runtime.num_threads = num_threads;
  return config;
}

// Everything except wall-clock must match bit for bit.
void ExpectIdenticalMetrics(const AggregatedMetrics& a,
                            const AggregatedMetrics& b) {
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.assigned_tasks, b.assigned_tasks);
  EXPECT_EQ(a.accepted_assignments, b.accepted_assignments);
  EXPECT_EQ(a.travel_m, b.travel_m);
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.false_hits, b.false_hits);
  EXPECT_EQ(a.false_dismissals, b.false_dismissals);
  EXPECT_EQ(a.precision, b.precision);
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_EQ(a.disclosures_per_task, b.disclosures_per_task);
  EXPECT_EQ(a.assigned_tasks_stddev, b.assigned_tasks_stddev);
  EXPECT_EQ(a.travel_m_stddev, b.travel_m_stddev);
}

TEST(ParallelExperimentTest, SeedFanoutIsBitIdenticalToSerial) {
  const auto serial = ExperimentRunner::Create(SmallConfig(1));
  const auto parallel = ExperimentRunner::Create(SmallConfig(4));
  ASSERT_TRUE(serial.ok() && parallel.ok());
  const privacy::PrivacyParams p = DefaultPrivacy();
  for (const auto make : {+[] {
         return assign::MakeGroundTruth(assign::RankStrategy::kNearest);
       },
                          +[] {
                            assign::AlgorithmParams params;
                            params.worker_params = DefaultPrivacy();
                            params.task_params = DefaultPrivacy();
                            return assign::MakeProbabilisticModel(params);
                          }}) {
    assign::MatcherHandle serial_handle = make();
    assign::MatcherHandle parallel_handle = make();
    const auto a = serial->Run(serial_handle, p, p);
    const auto b = parallel->Run(parallel_handle, p, p);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectIdenticalMetrics(*a, *b);
  }
}

TEST(ParallelExperimentTest, OversizedPoolMatchesToo) {
  // More threads than seeds: the extra workers find no chunks to claim.
  const auto serial = ExperimentRunner::Create(SmallConfig(1));
  const auto parallel = ExperimentRunner::Create(SmallConfig(16));
  ASSERT_TRUE(serial.ok() && parallel.ok());
  const privacy::PrivacyParams p = DefaultPrivacy();
  assign::MatcherHandle h1 = assign::MakeGroundTruth(assign::RankStrategy::kRandom);
  assign::MatcherHandle h2 = assign::MakeGroundTruth(assign::RankStrategy::kRandom);
  const auto a = serial->Run(h1, p, p);
  const auto b = parallel->Run(h2, p, p);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdenticalMetrics(*a, *b);
}

}  // namespace
}  // namespace scguard::sim

namespace scguard::reachability {
namespace {

EmpiricalModelConfig SmallModelConfig(int num_shards) {
  EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 20000;
  config.num_shards = num_shards;
  return config;
}

const privacy::PrivacyParams kLevel{0.7, 800.0};

std::string Serialized(const EmpiricalModel& model) {
  std::ostringstream os;
  model.Serialize(os);
  return os.str();
}

TEST(ShardedEmpiricalBuildTest, RejectsBadShardCount) {
  stats::Rng rng(1);
  EXPECT_FALSE(
      EmpiricalModel::Build(SmallModelConfig(0), kLevel, rng).ok());
}

TEST(ShardedEmpiricalBuildTest, ShardedBuildIsThreadCountInvariant) {
  // Same shard count, no pool vs pools of several sizes: identical bytes.
  stats::Rng rng_serial(99);
  const auto serial =
      EmpiricalModel::Build(SmallModelConfig(8), kLevel, rng_serial);
  ASSERT_TRUE(serial.ok());
  const std::string want = Serialized(*serial);
  for (int threads : {2, 4}) {
    runtime::ThreadPool pool(threads);
    stats::Rng rng(99);
    const auto parallel =
        EmpiricalModel::Build(SmallModelConfig(8), kLevel, rng, &pool);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(Serialized(*parallel), want) << "threads=" << threads;
  }
}

TEST(ShardedEmpiricalBuildTest, ShardStreamsIgnoreRngPosition) {
  // Shard streams fork from the rng's seed, so a pre-consumed rng builds
  // the same tables — sharded builds are a pure function of (seed, config).
  stats::Rng fresh(7);
  stats::Rng consumed(7);
  for (int i = 0; i < 1000; ++i) (void)consumed();
  const auto a = EmpiricalModel::Build(SmallModelConfig(4), kLevel, fresh);
  const auto b = EmpiricalModel::Build(SmallModelConfig(4), kLevel, consumed);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(Serialized(*a), Serialized(*b));
}

TEST(ShardedEmpiricalBuildTest, LegacySinglePathUnchanged) {
  // num_shards = 1 must keep consuming the caller's rng in place — two
  // sequential builds from one rng differ, matching pre-sharding behavior.
  stats::Rng rng(3);
  const auto first = EmpiricalModel::Build(SmallModelConfig(1), kLevel, rng);
  const auto second = EmpiricalModel::Build(SmallModelConfig(1), kLevel, rng);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_NE(Serialized(*first), Serialized(*second));
}

TEST(EmpiricalTableMergeTest, RejectsGeometryMismatch) {
  EmpiricalTable a(100.0, 10, 1000.0, 20);
  EmpiricalTable b(100.0, 11, 1000.0, 20);
  EmpiricalTable c(50.0, 10, 1000.0, 20);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(EmpiricalTableMergeTest, MergeEqualsOnePass) {
  EmpiricalTable whole(100.0, 10, 1000.0, 20);
  EmpiricalTable left(100.0, 10, 1000.0, 20);
  EmpiricalTable right(100.0, 10, 1000.0, 20);
  stats::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double d_true = rng.UniformDouble(0.0, 1200.0);
    const double d_obs = rng.UniformDouble(0.0, 1200.0);
    whole.Add(d_true, d_obs);
    (i % 2 == 0 ? left : right).Add(d_true, d_obs);
  }
  ASSERT_TRUE(left.Merge(right).ok());
  std::ostringstream a, b;
  whole.Serialize(a);
  left.Serialize(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ModelCacheTest, SecondLookupIsServedFromMemory) {
  ModelCache cache;
  const auto first =
      cache.GetOrBuild(SmallModelConfig(4), kLevel, kLevel, 123);
  const auto second =
      cache.GetOrBuild(SmallModelConfig(4), kLevel, kLevel, 123);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->get(), second->get());  // The exact same instance.
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ModelCacheTest, KeyCoversEveryBuildParameter) {
  const auto base = SmallModelConfig(4);
  const std::string key = ModelCache::KeyFor(base, kLevel, kLevel, 1);
  EXPECT_NE(key, ModelCache::KeyFor(base, kLevel, kLevel, 2));
  EXPECT_NE(key, ModelCache::KeyFor(base, {0.1, 800.0}, kLevel, 1));
  EXPECT_NE(key, ModelCache::KeyFor(base, kLevel, {0.7, 200.0}, 1));
  auto shards = base;
  shards.num_shards = 8;
  EXPECT_NE(key, ModelCache::KeyFor(shards, kLevel, kLevel, 1));
  auto samples = base;
  samples.num_samples = 30000;
  EXPECT_NE(key, ModelCache::KeyFor(samples, kLevel, kLevel, 1));
}

TEST(ModelCacheTest, DistinctPrivacyLevelsGetDistinctModels) {
  ModelCache cache;
  const auto a = cache.GetOrBuild(SmallModelConfig(4), kLevel, kLevel, 5);
  const auto b =
      cache.GetOrBuild(SmallModelConfig(4), {0.1, 800.0}, {0.1, 800.0}, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(ModelCacheTest, DiskLayerRoundTripsAcrossInstances) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "scguard_model_cache")
          .string();
  std::filesystem::remove_all(dir);

  ModelCache writer;
  writer.set_cache_dir(dir);
  const auto built = writer.GetOrBuild(SmallModelConfig(4), kLevel, kLevel, 9);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(writer.stats().misses, 1);

  // A fresh cache (think: the next bench process) loads from disk.
  ModelCache reader;
  reader.set_cache_dir(dir);
  const auto loaded = reader.GetOrBuild(SmallModelConfig(4), kLevel, kLevel, 9);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(reader.stats().disk_loads, 1);
  EXPECT_EQ(reader.stats().misses, 0);
  std::ostringstream a, b;
  (*built)->Serialize(a);
  (*loaded)->Serialize(b);
  EXPECT_EQ(a.str(), b.str());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace scguard::reachability
