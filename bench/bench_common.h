#ifndef SCGUARD_BENCH_BENCH_COMMON_H_
#define SCGUARD_BENCH_BENCH_COMMON_H_

// Shared setup for the figure-reproduction harnesses: every bench uses the
// same synthetic T-Drive city, the paper's workload sizes, and 10 seeds, so
// series are comparable across binaries.

#include <cstdio>
#include <iostream>
#include <memory>

#include "assign/algorithms.h"
#include "common/str_format.h"
#include "sim/defaults.h"
#include "sim/experiment.h"
#include "sim/table_printer.h"

namespace scguard::bench {

using scguard::FormatDouble;
using scguard::StrCat;

/// The paper's experimental setup (Sec. V-A): 500 workers, 500 tasks,
/// R_w ~ U[1000, 3000] m, averaged over 10 seeds, on one synthetic T-Drive
/// day of 9,019 taxis.
inline sim::ExperimentConfig PaperConfig() {
  sim::ExperimentConfig config;
  config.synth.num_taxis = 9019;
  config.synth.mean_trips_per_taxi = 12.0;
  config.workload.num_workers = 500;
  config.workload.num_tasks = 500;
  config.num_seeds = 10;
  config.base_seed = 42;
  return config;
}

/// Smaller setup for the expensive ablations (exact-Laplace quadrature,
/// pruning backends) so every bench binary stays runnable in seconds.
inline sim::ExperimentConfig QuickConfig() {
  sim::ExperimentConfig config = PaperConfig();
  config.synth.num_taxis = 2000;
  config.workload.num_workers = 250;
  config.workload.num_tasks = 250;
  config.num_seeds = 5;
  return config;
}

inline assign::AlgorithmParams MakeParams(const privacy::PrivacyParams& p,
                                          double alpha = sim::kDefaultAlpha,
                                          double beta = sim::kDefaultBeta) {
  assign::AlgorithmParams params;
  params.worker_params = p;
  params.task_params = p;
  params.alpha = alpha;
  params.beta = beta;
  return params;
}

/// Builds (or reuses) an empirical model for the runner's region at the
/// given privacy level; the expensive Monte-Carlo precomputation that
/// Probabilistic-Data amortizes.
inline std::shared_ptr<const reachability::EmpiricalModel> BuildEmpirical(
    const sim::ExperimentRunner& runner, const privacy::PrivacyParams& p,
    uint64_t samples = 200000) {
  reachability::EmpiricalModelConfig config;
  config.region = runner.region();
  config.num_samples = samples;
  stats::Rng rng(20177);
  auto model = reachability::EmpiricalModel::Build(config, p, rng);
  if (!model.ok()) {
    std::cerr << "empirical build failed: " << model.status() << "\n";
    std::exit(1);
  }
  return std::make_shared<const reachability::EmpiricalModel>(
      std::move(*model));
}

/// Unwraps a Result or aborts with its status (bench binaries have no
/// recovery path).
template <typename T>
T OrDie(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "bench failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

}  // namespace scguard::bench

#endif  // SCGUARD_BENCH_BENCH_COMMON_H_
