#include "assign/stages/rank_stage.h"

#include "common/check.h"

namespace scguard::assign {

U2eRankStage::U2eRankStage(const Config& config) : config_(config) {
  if (config_.rank == RankStrategy::kProbability) {
    SCGUARD_CHECK(config_.model != nullptr);
    if (config_.kernel.u2e_lut) {
      lut_.emplace(config_.model, reachability::Stage::kU2E, config_.kernel);
    }
  }
}

void U2eRankStage::ScoreBatch(const double* observed_distance_m,
                              const double* reach_radius_m, size_t n,
                              double* out) {
  if (lut_.has_value()) {
    for (size_t k = 0; k < n; ++k) {
      out[k] = lut_->Prob(observed_distance_m[k], reach_radius_m[k]);
    }
    return;
  }
  config_.model->ProbReachableBatch(reachability::Stage::kU2E,
                                    observed_distance_m, reach_radius_m, n,
                                    out);
}

U2eRankStage::BatchInputs U2eRankStage::StageScoreInputs(size_t n) {
  if (d_.size() < n) {
    d_.resize(n);
    r_.resize(n);
  }
  if (p_.size() < n) p_.resize(n);
  return {d_.data(), r_.data()};
}

const double* U2eRankStage::ScoreStagedInputs(size_t n) {
  SCGUARD_CHECK(d_.size() >= n && r_.size() >= n && p_.size() >= n);
  ScoreBatch(d_.data(), r_.data(), n, p_.data());
  return p_.data();
}

void U2eRankStage::Rank(const reachability::WorkerFilterSoA& soa,
                        const std::vector<uint32_t>& candidates,
                        geo::Point exact_task_location,
                        const double* random_rank,
                        std::vector<std::pair<double, size_t>>& ranked,
                        int64_t audit_task_id) {
  ranked.clear();
  if (config_.rank == RankStrategy::kProbability) {
    // Batched scoring: gather candidate distances/radii into dense arrays,
    // then one ProbReachableBatch call (or the bounded-error LUT when
    // enabled) instead of a virtual call per candidate.
    const size_t c = candidates.size();
    d_.resize(c);
    r_.resize(c);
    p_.resize(c);
    for (size_t k = 0; k < c; ++k) {
      const size_t i = candidates[k];
      d_[k] = geo::Distance({soa.x[i], soa.y[i]}, exact_task_location);
      r_[k] = soa.reach_radius_m[i];
    }
    ScoreBatch(d_.data(), r_.data(), c, p_.data());
    for (size_t k = 0; k < c; ++k) {
      ranked.emplace_back(p_[k], candidates[k]);
    }
  } else {
    for (const uint32_t i : candidates) {
      const double score =
          config_.rank == RankStrategy::kRandom
              ? random_rank[i]
              : -geo::Distance({soa.x[i], soa.y[i]}, exact_task_location);
      ranked.emplace_back(score, i);
    }
  }
  SortRankedCandidates(ranked);

  if (obs::RecorderEnabled()) {
    // Each candidate's noisy location reached the requester: one aggregate
    // audit event per ranking (reconciles with RunMetrics::candidates_sum),
    // per-candidate lines only in full-audit mode — O(candidates) events
    // per task is for small runs and tests, not the 1M bench.
    obs::AuditU2eCandidates(audit_task_id,
                            static_cast<int64_t>(candidates.size()),
                            config_.audit_epsilon);
    if (obs::AuditFullEnabled()) {
      for (const auto& [score, i] : ranked) {
        obs::AuditU2eCandidate(audit_task_id, static_cast<int64_t>(i), score);
      }
    }
  }
}

}  // namespace scguard::assign
