#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "reachability/analytical_model.h"
#include "reachability/binary_model.h"
#include "reachability/empirical_model.h"
#include "reachability/empirical_table.h"
#include "stats/rice.h"
#include "stats/rng.h"

namespace scguard::reachability {
namespace {

using privacy::PrivacyParams;

constexpr PrivacyParams kDefault{0.7, 800.0};

TEST(BinaryModelTest, StepFunctionAtReachRadius) {
  BinaryModel model;
  for (Stage stage : {Stage::kU2U, Stage::kU2E}) {
    EXPECT_DOUBLE_EQ(model.ProbReachable(stage, 0.0, 1000.0), 1.0);
    EXPECT_DOUBLE_EQ(model.ProbReachable(stage, 1000.0, 1000.0), 1.0);
    EXPECT_DOUBLE_EQ(model.ProbReachable(stage, 1000.1, 1000.0), 0.0);
  }
  EXPECT_EQ(model.name(), "binary");
}

TEST(AnalyticalModelTest, U2EMatchesPaperRice) {
  // Paper Sec. IV-B1: U2E distance ~ Rice(nu, sqrt(2) r / eps).
  const AnalyticalModel model(kDefault);
  const double sigma = std::sqrt(2.0) * kDefault.radius_m / kDefault.epsilon;
  for (double nu : {0.0, 500.0, 1500.0, 4000.0}) {
    const stats::RiceDistribution rice(nu, sigma);
    for (double radius : {800.0, 1400.0, 3000.0}) {
      EXPECT_NEAR(model.ProbReachable(Stage::kU2E, nu, radius), rice.Cdf(radius),
                  1e-10)
          << "nu=" << nu << " R=" << radius;
    }
  }
}

TEST(AnalyticalModelTest, U2UPaperNormalApproxFormula) {
  // d^2 ~ N(2 lambda + nu^2, 4 lambda^2 + 4 lambda nu^2), lambda = 4r^2/eps^2.
  const AnalyticalModel model(kDefault);
  const double r_over_eps = kDefault.radius_m / kDefault.epsilon;
  const double lambda = 4.0 * r_over_eps * r_over_eps;
  const double nu = 2000.0, radius = 1400.0;
  const double mean = 2.0 * lambda + nu * nu;
  const double sd = std::sqrt(4.0 * lambda * lambda + 4.0 * lambda * nu * nu);
  const double expected = 0.5 * std::erfc(-(radius * radius - mean) / sd / M_SQRT2);
  EXPECT_NEAR(model.ProbReachable(Stage::kU2U, nu, radius), expected, 1e-12);
}

TEST(AnalyticalModelTest, MonotoneInObservedDistanceAndRadius) {
  const AnalyticalModel model(kDefault);
  for (Stage stage : {Stage::kU2U, Stage::kU2E}) {
    double prev = 2.0;
    for (double d = 0.0; d <= 8000.0; d += 250.0) {
      const double p = model.ProbReachable(stage, d, 1400.0);
      EXPECT_LE(p, prev + 1e-12) << StageName(stage) << " d=" << d;
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      prev = p;
    }
    EXPECT_LT(model.ProbReachable(stage, 2000.0, 1000.0),
              model.ProbReachable(stage, 2000.0, 3000.0));
  }
}

TEST(AnalyticalModelTest, ModesAgreeQualitatively) {
  const AnalyticalModel paper(kDefault, AnalyticalMode::kPaperNormalApprox);
  const AnalyticalModel exact(kDefault, AnalyticalMode::kExactRice);
  const AnalyticalModel matched(kDefault, AnalyticalMode::kMomentMatched);
  for (double d : {0.0, 1000.0, 2500.0, 5000.0}) {
    const double p1 = paper.ProbReachable(Stage::kU2U, d, 1400.0);
    const double p2 = exact.ProbReachable(Stage::kU2U, d, 1400.0);
    const double p3 = matched.ProbReachable(Stage::kU2U, d, 1400.0);
    EXPECT_NEAR(p1, p2, 0.12) << d;
    EXPECT_NEAR(p2, p3, 0.12) << d;
  }
}

TEST(AnalyticalModelTest, PaperAndExactRiceCoincideAtU2E) {
  // The paper's U2E already IS the Rice CDF, so the two modes must agree
  // exactly at that stage (they only differ in the U2U approximation).
  const AnalyticalModel paper(kDefault, AnalyticalMode::kPaperNormalApprox);
  const AnalyticalModel exact(kDefault, AnalyticalMode::kExactRice);
  for (double d : {0.0, 700.0, 2100.0, 6000.0}) {
    EXPECT_DOUBLE_EQ(paper.ProbReachable(Stage::kU2E, d, 1400.0),
                     exact.ProbReachable(Stage::kU2E, d, 1400.0));
  }
}

TEST(AnalyticalModelTest, ExactRiceU2UUsesCombinedVariance) {
  // With both endpoints noisy, the difference vector variance doubles:
  // sigma_c = 2 r / eps, so U2U must be flatter than U2E.
  const AnalyticalModel exact(kDefault, AnalyticalMode::kExactRice);
  const double p_u2u_far = exact.ProbReachable(Stage::kU2U, 6000.0, 1400.0);
  const double p_u2e_far = exact.ProbReachable(Stage::kU2E, 6000.0, 1400.0);
  EXPECT_GT(p_u2u_far, p_u2e_far);  // Heavier smearing keeps more mass far out.
}

TEST(AnalyticalModelTest, StricterPrivacyFlattensTheCurve) {
  const AnalyticalModel strict(PrivacyParams{0.1, 800.0});
  const AnalyticalModel loose(PrivacyParams{1.0, 800.0});
  // With weak privacy the probability at small observed distance is near 1
  // and at huge distance near 0; strong privacy pulls both toward the
  // middle.
  EXPECT_GT(loose.ProbReachable(Stage::kU2E, 100.0, 1400.0),
            strict.ProbReachable(Stage::kU2E, 100.0, 1400.0));
  EXPECT_LT(loose.ProbReachable(Stage::kU2E, 9000.0, 1400.0),
            strict.ProbReachable(Stage::kU2E, 9000.0, 1400.0));
}

TEST(AnalyticalModelTest, AsymmetricPartyParams) {
  const PrivacyParams strict{0.1, 2000.0};
  const AnalyticalModel model(strict, kDefault);
  EXPECT_GT(model.WorkerCoordinateVariance(), model.TaskCoordinateVariance());
}

// ------------------------------------------------------- EmpiricalTable

TEST(EmpiricalTableTest, BucketIndexing) {
  EmpiricalTable table(100.0, 121, 30000.0, 300);
  EXPECT_EQ(table.BucketIndex(0.0), 0);
  EXPECT_EQ(table.BucketIndex(99.9), 0);
  EXPECT_EQ(table.BucketIndex(100.0), 1);
  EXPECT_EQ(table.BucketIndex(11999.0), 119);
  EXPECT_EQ(table.BucketIndex(12000.0), 120);   // Last closed -> overflow.
  EXPECT_EQ(table.BucketIndex(1e9), 120);       // Deep overflow clamps.
}

TEST(EmpiricalTableTest, AddAndQuery) {
  EmpiricalTable table(100.0, 121, 30000.0, 300);
  // Bucket [1900, 2000): true distances centered at 1950.
  for (int i = 0; i < 1000; ++i) {
    table.Add(/*d_true=*/1800.0 + (i % 300), /*d_obs=*/1950.0);
  }
  EXPECT_EQ(table.total_samples(), 1000u);
  EXPECT_DOUBLE_EQ(table.ProbBelow(1950.0, 30000.0), 1.0);
  EXPECT_DOUBLE_EQ(table.ProbBelow(1950.0, 0.0), 0.0);
  const double mid = table.ProbBelow(1950.0, 1950.0);
  EXPECT_GT(mid, 0.3);
  EXPECT_LT(mid, 0.7);
}

TEST(EmpiricalTableTest, EmptyBucketFallsBackToNeighborWithShift) {
  EmpiricalTable table(100.0, 121, 30000.0, 300);
  for (int i = 0; i < 1000; ++i) table.Add(2000.0, 2050.0);  // Bucket 20 only.
  // Query bucket 22 (empty): borrows bucket 20's distribution shifted by
  // +200 m, so the step moves from 2000 to ~2200.
  EXPECT_DOUBLE_EQ(table.ProbBelow(2250.0, 2150.0), 0.0);
  EXPECT_DOUBLE_EQ(table.ProbBelow(2250.0, 2350.0), 1.0);
}

TEST(EmpiricalTableTest, EmptyTableReturnsZero) {
  EmpiricalTable table(100.0, 10, 1000.0, 10);
  EXPECT_DOUBLE_EQ(table.ProbBelow(500.0, 1000.0), 0.0);
}

TEST(EmpiricalTableTest, SerializeRoundTrip) {
  EmpiricalTable table(100.0, 30, 5000.0, 50);
  stats::Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    const double d = rng.UniformDouble(0.0, 4000.0);
    table.Add(d, d + rng.UniformDouble(-500.0, 500.0) + 500.0);
  }
  std::stringstream ss;
  table.Serialize(ss);
  const auto back = EmpiricalTable::Deserialize(ss);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->total_samples(), table.total_samples());
  for (double d_obs : {50.0, 1050.0, 2950.0}) {
    for (double thr : {500.0, 2000.0}) {
      EXPECT_DOUBLE_EQ(back->ProbBelow(d_obs, thr), table.ProbBelow(d_obs, thr));
    }
  }
}

TEST(EmpiricalTableTest, DeserializeRejectsGarbage) {
  std::stringstream ss("bogus");
  EXPECT_FALSE(EmpiricalTable::Deserialize(ss).ok());
}

// ------------------------------------------------------- EmpiricalModel

EmpiricalModelConfig SmallConfig() {
  EmpiricalModelConfig config;
  config.region = geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});
  config.num_samples = 60000;
  return config;
}

TEST(EmpiricalModelTest, BuildRejectsBadConfig) {
  stats::Rng rng(1);
  EmpiricalModelConfig config = SmallConfig();
  config.region = geo::BoundingBox();
  EXPECT_FALSE(EmpiricalModel::Build(config, kDefault, rng).ok());
  config = SmallConfig();
  config.num_samples = 0;
  EXPECT_FALSE(EmpiricalModel::Build(config, kDefault, rng).ok());
  EXPECT_FALSE(
      EmpiricalModel::Build(SmallConfig(), PrivacyParams{0, 1}, rng).ok());
}

TEST(EmpiricalModelTest, ProbabilityDecreasesWithDistance) {
  stats::Rng rng(2);
  const auto model = EmpiricalModel::Build(SmallConfig(), kDefault, rng);
  ASSERT_TRUE(model.ok());
  for (Stage stage : {Stage::kU2U, Stage::kU2E}) {
    const double near = model->ProbReachable(stage, 200.0, 1400.0);
    const double mid = model->ProbReachable(stage, 3000.0, 1400.0);
    const double far = model->ProbReachable(stage, 9000.0, 1400.0);
    EXPECT_GT(near, mid) << StageName(stage);
    EXPECT_GT(mid, far) << StageName(stage);
  }
}

TEST(EmpiricalModelTest, AgreesWithAnalyticalModel) {
  // The paper's headline modeling result (Sec. V-B1): the analytical model
  // tracks the empirical one.
  stats::Rng rng(3);
  EmpiricalModelConfig config = SmallConfig();
  config.num_samples = 150000;
  const auto empirical = EmpiricalModel::Build(config, kDefault, rng);
  ASSERT_TRUE(empirical.ok());
  // Two sources of modeled-vs-empirical disagreement, both inherent:
  // (a) the paper's Gaussian approximation misfits the peaked bulk of the
  //     planar Laplace (why the paper also proposes the empirical model);
  // (b) the empirical tables carry the *bounded-region prior* — with
  //     locations uniform over a finite city, conditioning on a small
  //     observed distance tilts the true-distance posterior shorter,
  //     which no flat-prior analytical model reproduces. The tilt decays
  //     with distance, so the exact-Laplace mode converges to the tables
  //     away from zero while the Gaussian modes stay biased everywhere.
  const AnalyticalModel paper(kDefault, AnalyticalMode::kPaperNormalApprox);
  const AnalyticalModel exact(kDefault, AnalyticalMode::kExactLaplace);
  for (double d : {500.0, 1500.0, 2500.0, 4000.0}) {
    EXPECT_NEAR(paper.ProbReachable(Stage::kU2E, d, 1400.0),
                empirical->ProbReachable(Stage::kU2E, d, 1400.0), 0.25)
        << "paper U2E d=" << d;
    EXPECT_NEAR(paper.ProbReachable(Stage::kU2U, d, 1400.0),
                empirical->ProbReachable(Stage::kU2U, d, 1400.0), 0.25)
        << "paper U2U d=" << d;
    const double prior_tolerance = d <= 600.0 ? 0.15 : 0.07;
    EXPECT_NEAR(exact.ProbReachable(Stage::kU2E, d, 1400.0),
                empirical->ProbReachable(Stage::kU2E, d, 1400.0),
                prior_tolerance)
        << "exact U2E d=" << d;
    EXPECT_NEAR(exact.ProbReachable(Stage::kU2U, d, 1400.0),
                empirical->ProbReachable(Stage::kU2U, d, 1400.0),
                prior_tolerance)
        << "exact U2U d=" << d;
  }
}

TEST(EmpiricalModelTest, SerializeRoundTrip) {
  stats::Rng rng(4);
  EmpiricalModelConfig config = SmallConfig();
  config.num_samples = 20000;
  const auto model = EmpiricalModel::Build(config, kDefault, rng);
  ASSERT_TRUE(model.ok());
  std::stringstream ss;
  model->Serialize(ss);
  const auto back = EmpiricalModel::Deserialize(ss);
  ASSERT_TRUE(back.ok());
  for (Stage stage : {Stage::kU2U, Stage::kU2E}) {
    for (double d : {100.0, 2100.0, 7100.0}) {
      EXPECT_DOUBLE_EQ(back->ProbReachable(stage, d, 1400.0),
                       model->ProbReachable(stage, d, 1400.0));
    }
  }
}

TEST(EmpiricalModelTest, U2ETighterThanU2UAtZeroDistance) {
  // With one exact endpoint there is less total noise, so observing d'=0
  // should imply short true distances more strongly than in U2U.
  stats::Rng rng(5);
  const auto model = EmpiricalModel::Build(SmallConfig(), kDefault, rng);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model->ProbReachable(Stage::kU2E, 50.0, 1400.0),
            model->ProbReachable(Stage::kU2U, 50.0, 1400.0) - 0.02);
}

}  // namespace
}  // namespace scguard::reachability
