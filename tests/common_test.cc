#include <gtest/gtest.h>

#include <sstream>

#include "common/result.h"
#include "common/status.h"
#include "common/str_format.h"

namespace scguard {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  const Status s = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad epsilon");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad epsilon");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::NotFound("missing");
  Status copy = s;
  EXPECT_EQ(copy, s);
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsNotFound());
  EXPECT_EQ(moved.message(), "missing");
}

TEST(StatusTest, WithContextPrepends) {
  const Status s = Status::IOError("disk gone").WithContext("loading table");
  EXPECT_EQ(s.message(), "loading table: disk gone");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "internal: boom");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "io-error");
}

Status FailsThenReturns(bool fail) {
  SCGUARD_RETURN_NOT_OK(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(FailsThenReturns(false).ok());
  EXPECT_TRUE(FailsThenReturns(true).IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SCGUARD_ASSIGN_OR_RETURN(const int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd.
  EXPECT_TRUE(Quarter(5).status().IsInvalidArgument());
}

TEST(StrFormatTest, StrCatConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StrFormatTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"only"}, ", "), "only");
}

TEST(StrFormatTest, StrSplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(StrSplit("a,b,", ','), (std::vector<std::string>{"a", "b", ""}));
}

TEST(StrFormatTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("\t \n"), "");
  EXPECT_EQ(StripAsciiWhitespace("abc"), "abc");
}

TEST(StrFormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(12.5, 2), "12.50");
  EXPECT_EQ(FormatDouble(-0.125, 3), "-0.125");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
}

}  // namespace
}  // namespace scguard
