// Ablation of the paper's Sec. IV-C1 U2U pruning: effect of the index
// backend and confidence gamma on runtime and on result fidelity (pruning
// with finite gamma may drop low-probability candidates the threshold
// alpha would have kept).

#include <chrono>

#include "bench/bench_common.h"

namespace scguard::bench {
namespace {

void Main() {
  sim::ExperimentConfig config = PaperConfig();
  config.num_seeds = 5;
  const auto runner = OrDie(sim::ExperimentRunner::Create(config));
  const privacy::PrivacyParams p{0.7, 800.0};

  sim::TablePrinter table(
      "Pruning ablation (eps=0.7, r=800, alpha=0.1)",
      {"configuration", "utility", "overhead", "recall", "runtime (ms/run)",
       "cells bulk", "cells skip", "boundary wkrs"});

  auto report = [&](const std::string& name,
                    std::optional<double> gamma,
                    index::PrunerBackend backend) {
    assign::AlgorithmParams params = MakeParams(p);
    params.pruning_gamma = gamma;
    params.pruning_backend = backend;
    assign::MatcherHandle handle = assign::MakeProbabilisticModel(params);
    const auto start = std::chrono::steady_clock::now();
    const auto agg = OrDie(runner.Run(handle, p, p));
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count() /
        config.num_seeds;
    // The cell counters separate the two ways the grid query avoids work:
    // bulk-accepted cells skip the per-member box tests entirely, skipped
    // cells never touch their members, and boundary_workers counts the
    // members that still needed the per-member test (zero for the non-grid
    // backends).
    table.AddRow(name,
                 {agg.assigned_tasks, agg.candidates, agg.recall, elapsed_ms,
                  agg.cells_bulk_accepted, agg.cells_skipped,
                  agg.boundary_workers},
                 2);
  };

  report("no pruning (full scan)", std::nullopt, index::PrunerBackend::kGrid);
  for (double gamma : {0.5, 0.9, 0.99}) {
    report(StrCat("grid, gamma=", gamma), gamma, index::PrunerBackend::kGrid);
  }
  report("rtree, gamma=0.9", 0.9, index::PrunerBackend::kRTree);
  report("linear MBR scan, gamma=0.9", 0.9, index::PrunerBackend::kLinearScan);
  table.Print(std::cout);
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
