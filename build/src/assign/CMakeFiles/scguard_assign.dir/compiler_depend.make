# Empty compiler generated dependencies file for scguard_assign.
# This may be replaced when dependencies are built.
