// Reproduces paper Fig. 9 (a-e): GroundTruth-NN, Oblivious-RN and
// Probabilistic-Model across the privacy-level sweep eps in {0.1, 0.4,
// 0.7, 1.0}.
//
// Radius of concern: the paper's Fig. 9 shows substantial utility for
// Probabilistic-Model even at eps = 0.1, which is only consistent with the
// small end of the r grid (at r = 800 the Geo-I noise at eps = 0.1 has a
// ~16 km mean radius and every U2E probability falls below the default
// beta, canceling all tasks — we report that series too). We therefore run
// the sweep at r = 200 and add the r = 800 series as a secondary table;
// see EXPERIMENTS.md.

#include "bench/bench_common.h"

namespace scguard::bench {
namespace {

void RunSweep(const sim::ExperimentRunner& runner, double radius_m,
              JsonSeriesWriter& json) {
  sim::TablePrinter utility(
      StrCat("Fig 9a — Utility (#assigned of 500) vs eps, r=", radius_m),
      {"algorithm", "eps=0.1", "eps=0.4", "eps=0.7", "eps=1.0"});
  sim::TablePrinter travel(
      StrCat("Fig 9b — Travel cost (m) vs eps, r=", radius_m),
      {"algorithm", "eps=0.1", "eps=0.4", "eps=0.7", "eps=1.0"});
  sim::TablePrinter leak(
      StrCat("Fig 9c — Privacy leak (#false hits) vs eps, r=", radius_m),
      {"algorithm", "eps=0.1", "eps=0.4", "eps=0.7", "eps=1.0"});
  sim::TablePrinter overhead(
      StrCat("Fig 9d — Overhead (#candidate workers per task) vs eps, r=",
             radius_m),
      {"algorithm", "eps=0.1", "eps=0.4", "eps=0.7", "eps=1.0"});
  sim::TablePrinter accuracy(
      StrCat("Fig 9e — U2U precision/recall vs eps, r=", radius_m),
      {"algorithm", "eps=0.1", "eps=0.4", "eps=0.7", "eps=1.0"});

  struct Algo {
    std::string name;
    std::function<assign::MatcherHandle(const privacy::PrivacyParams&)> make;
  };
  const std::vector<Algo> algos = {
      {"GroundTruth-NN",
       [](const privacy::PrivacyParams&) {
         return assign::MakeGroundTruth(assign::RankStrategy::kNearest);
       }},
      {"Oblivious-RN",
       [](const privacy::PrivacyParams& p) {
         return assign::MakeOblivious(assign::RankStrategy::kNearest,
                                      MakeParams(p));
       }},
      {"Probabilistic-Model",
       [](const privacy::PrivacyParams& p) {
         return assign::MakeProbabilisticModel(MakeParams(p));
       }},
  };

  for (const auto& algo : algos) {
    std::vector<double> utility_row, travel_row, leak_row, overhead_row;
    std::vector<std::string> accuracy_row = {algo.name};
    for (double eps : sim::kEpsilons) {
      const privacy::PrivacyParams p{eps, radius_m};
      assign::MatcherHandle handle = algo.make(p);
      const sim::AggregatedMetrics agg = OrDie(runner.Run(handle, p, p));
      json.Add(StrCat(algo.name, " r=", radius_m), eps, agg);
      utility_row.push_back(agg.assigned_tasks);
      travel_row.push_back(agg.travel_m);
      leak_row.push_back(agg.false_hits);
      overhead_row.push_back(agg.candidates);
      accuracy_row.push_back(StrCat(FormatDouble(agg.precision, 2), "/",
                                    FormatDouble(agg.recall, 2)));
    }
    utility.AddRow(algo.name, utility_row, 1);
    travel.AddRow(algo.name, travel_row, 0);
    leak.AddRow(algo.name, leak_row, 1);
    overhead.AddRow(algo.name, overhead_row, 1);
    accuracy.AddRow(accuracy_row);
  }
  utility.Print(std::cout);
  travel.Print(std::cout);
  leak.Print(std::cout);
  overhead.Print(std::cout);
  accuracy.Print(std::cout);
}

void Main() {
  const auto runner = OrDie(sim::ExperimentRunner::Create(PaperConfig()));
  JsonSeriesWriter json("fig9_vary_epsilon");
  RunSweep(runner, 200.0, json);
  RunSweep(runner, 800.0, json);
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
