#include "privacy/inference.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace scguard::privacy {

BayesianAdversary::BayesianAdversary(const geo::BoundingBox& region,
                                     int cells_per_axis,
                                     std::function<double(geo::Point)> prior_density)
    : region_(region),
      cells_(cells_per_axis),
      cell_w_(region.Width() / cells_per_axis),
      cell_h_(region.Height() / cells_per_axis) {
  SCGUARD_CHECK(!region.empty() && cells_per_axis >= 2);
  prior_.resize(static_cast<size_t>(cells_) * static_cast<size_t>(cells_));
  double total = 0;
  for (size_t i = 0; i < prior_.size(); ++i) {
    const double density = prior_density(CellCenter(static_cast<int>(i)));
    SCGUARD_CHECK(density >= 0.0);
    prior_[i] = density;
    total += density;
  }
  SCGUARD_CHECK(total > 0.0);
  for (double& p : prior_) p /= total;
}

BayesianAdversary::BayesianAdversary(const geo::BoundingBox& region,
                                     int cells_per_axis)
    : BayesianAdversary(region, cells_per_axis,
                        [](geo::Point) { return 1.0; }) {}

geo::Point BayesianAdversary::CellCenter(int index) const {
  const int cx = index % cells_;
  const int cy = index / cells_;
  return {region_.min_x + (cx + 0.5) * cell_w_,
          region_.min_y + (cy + 0.5) * cell_h_};
}

std::vector<double> BayesianAdversary::PosteriorLaplace(
    geo::Point report, double unit_epsilon) const {
  SCGUARD_CHECK(unit_epsilon > 0.0);
  std::vector<double> posterior(prior_.size());
  // Subtract the minimum exponent for numerical stability before
  // normalizing (the likelihood's 2*pi/eps^2 factor cancels).
  double best = std::numeric_limits<double>::infinity();
  std::vector<double> dist(prior_.size());
  for (size_t i = 0; i < prior_.size(); ++i) {
    dist[i] = geo::Distance(CellCenter(static_cast<int>(i)), report);
    best = std::min(best, dist[i]);
  }
  double total = 0;
  for (size_t i = 0; i < prior_.size(); ++i) {
    posterior[i] = prior_[i] * std::exp(-unit_epsilon * (dist[i] - best));
    total += posterior[i];
  }
  for (double& p : posterior) p /= total;
  return posterior;
}

std::vector<double> BayesianAdversary::PosteriorCloak(
    const geo::BoundingBox& cloak) const {
  std::vector<double> posterior(prior_.size(), 0.0);
  double total = 0;
  for (size_t i = 0; i < prior_.size(); ++i) {
    if (cloak.Contains(CellCenter(static_cast<int>(i)))) {
      posterior[i] = prior_[i];
      total += prior_[i];
    }
  }
  if (total == 0.0) return std::vector<double>(prior_.size(), 0.0);
  for (double& p : posterior) p /= total;
  return posterior;
}

BayesianAdversary::AttackResult BayesianAdversary::Evaluate(
    const std::vector<double>& posterior, geo::Point true_location,
    double radius_of_concern) const {
  SCGUARD_CHECK(posterior.size() == prior_.size());
  AttackResult result;
  double best_mass = -1.0;
  geo::Point map_estimate{0, 0};
  for (size_t i = 0; i < posterior.size(); ++i) {
    const geo::Point center = CellCenter(static_cast<int>(i));
    const double d = geo::Distance(center, true_location);
    result.expected_error_m += posterior[i] * d;
    if (d <= radius_of_concern) result.mass_within_r += posterior[i];
    if (posterior[i] > best_mass) {
      best_mass = posterior[i];
      map_estimate = center;
    }
  }
  result.map_error_m = geo::Distance(map_estimate, true_location);
  return result;
}

}  // namespace scguard::privacy
