#ifndef SCGUARD_ASSIGN_ENTITIES_H_
#define SCGUARD_ASSIGN_ENTITIES_H_

#include <cstdint>
#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"

namespace scguard::assign {

/// A spatial-crowdsourcing worker (paper Sec. III-A): a true location, the
/// reachable distance R_w they are willing to travel, and the perturbed
/// location they report to the server.
///
/// `location` is private to the worker's device; only `noisy_location` and
/// `reach_radius_m` ever reach the server. The assignment engines keep the
/// true location here solely to adjudicate the E2E stage (which the real
/// worker performs locally) and to score metrics.
struct Worker {
  int64_t id = 0;
  geo::Point location;        ///< True location (device-side only).
  geo::Point noisy_location;  ///< Geo-I perturbed location (public).
  double reach_radius_m = 0;  ///< Reachable distance R_w, meters.

  /// True iff the task location is within this worker's spatial region —
  /// the E2E stage check d(w, t) <= R_w.
  bool CanReach(geo::Point task_location) const {
    return geo::Distance(location, task_location) <= reach_radius_m;
  }
};

/// A spatial task (paper Sec. III-A): must be performed at its location.
/// Tasks arrive online, one at a time, in `arrival_seq` order.
struct Task {
  int64_t id = 0;
  geo::Point location;        ///< True location (requester-side only).
  geo::Point noisy_location;  ///< Geo-I perturbed location (public).
  int64_t arrival_seq = 0;    ///< Position in the online arrival order.
};

/// A complete online-assignment instance: workers known up-front, tasks in
/// arrival order, and the deployment region (used by index pruning and the
/// empirical model).
struct Workload {
  std::vector<Worker> workers;
  std::vector<Task> tasks;  ///< Sorted by arrival_seq.
  geo::BoundingBox region;
};

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_ENTITIES_H_
