#include "assign/metrics.h"

namespace scguard::assign {

void RunMetrics::Accumulate(const RunMetrics& other) {
  num_tasks += other.num_tasks;
  num_workers += other.num_workers;
  assigned_tasks += other.assigned_tasks;
  accepted_assignments += other.accepted_assignments;
  travel_sum_m += other.travel_sum_m;
  candidates_sum += other.candidates_sum;
  precision_sum += other.precision_sum;
  precision_count += other.precision_count;
  recall_sum += other.recall_sum;
  recall_count += other.recall_count;
  false_hits += other.false_hits;
  false_dismissals += other.false_dismissals;
  server_to_requester_msgs += other.server_to_requester_msgs;
  requester_to_worker_msgs += other.requester_to_worker_msgs;
  u2u_seconds += other.u2u_seconds;
  u2e_seconds += other.u2e_seconds;
  total_seconds += other.total_seconds;
  u2u_scanned += other.u2u_scanned;
  cells_bulk_accepted += other.cells_bulk_accepted;
  cells_skipped += other.cells_skipped;
  boundary_workers += other.boundary_workers;
  u2u_gather_bytes += other.u2u_gather_bytes;
  cells_emitted_direct += other.cells_emitted_direct;
}

std::ostream& operator<<(std::ostream& os, const RunMetrics& m) {
  return os << "assigned=" << m.assigned_tasks << "/" << m.num_tasks
            << " travel=" << m.MeanTravelM() << "m"
            << " candidates=" << m.MeanCandidates()
            << " false_hits=" << m.false_hits
            << " false_dismissals=" << m.false_dismissals
            << " precision=" << m.MeanPrecision()
            << " recall=" << m.MeanRecall();
}

}  // namespace scguard::assign
