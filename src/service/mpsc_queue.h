#ifndef SCGUARD_SERVICE_MPSC_QUEUE_H_
#define SCGUARD_SERVICE_MPSC_QUEUE_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/check.h"

namespace scguard::service {

/// Bounded lock-free multi-producer queue with a single consumer (the
/// assignment loop), after Vyukov's bounded MPMC design: each slot carries
/// a sequence number producers and the consumer rendezvous on, so an
/// enqueue is one CAS on the tail plus a release store, and a dequeue
/// (single consumer) needs no CAS at all — one acquire load and two plain
/// stores. TryPush returns false when the ring is full; that is the
/// service's backpressure signal, never a block.
///
/// Capacity is rounded up to a power of two. `T` must be movable; slots
/// are default-constructed up front, so keep T cheap to hold (the service
/// stores a small POD event).
template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t capacity_hint)
      : capacity_(std::bit_ceil(capacity_hint < 2 ? size_t{2} : capacity_hint)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<Slot[]>(capacity_)) {
    for (size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(static_cast<uint64_t>(i), std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Producer side; safe from any number of threads concurrently. Returns
  /// false when the queue is full (the value is untouched).
  bool TryPush(T value) {
    uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS refreshed `pos`; retry with the new tail.
      } else if (dif < 0) {
        // The slot still holds an unconsumed value from one lap ago: full.
        return false;
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side; single thread only. Returns false when empty.
  bool TryPop(T& out) {
    const uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1) < 0) {
      return false;  // Producer hasn't published this slot yet.
    }
    out = std::move(slot.value);
    slot.seq.store(pos + mask_ + 1, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Racy depth estimate for the ingest_queue_depth gauge (may briefly
  /// read torn head/tail pairs; clamped to [0, capacity]).
  size_t ApproxDepth() const {
    const uint64_t tail = enqueue_pos_.load(std::memory_order_relaxed);
    const uint64_t head = dequeue_pos_.load(std::memory_order_relaxed);
    const uint64_t depth = tail >= head ? tail - head : 0;
    return depth > capacity_ ? capacity_ : static_cast<size_t>(depth);
  }

  size_t capacity() const { return capacity_; }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  const size_t capacity_;
  const uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<uint64_t> dequeue_pos_{0};
};

}  // namespace scguard::service

#endif  // SCGUARD_SERVICE_MPSC_QUEUE_H_
