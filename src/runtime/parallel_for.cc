#include "runtime/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "runtime/task_group.h"

namespace scguard::runtime {

Status ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                   int64_t grain,
                   const std::function<Status(int64_t, int64_t)>& fn) {
  if (begin >= end) return Status::OK();
  SCGUARD_CHECK(grain > 0);
  const int64_t num_chunks = (end - begin + grain - 1) / grain;

  // Function-local statics: the registry lookup happens once per process,
  // updates are no-ops while observability is disabled.
  static obs::Counter* const chunks_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "scguard.runtime.parallel_for.chunks");
  static obs::Counter* const serial_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "scguard.runtime.parallel_for.serial_sections");
  static obs::Counter* const parallel_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "scguard.runtime.parallel_for.parallel_sections");
  static obs::Counter* const nested_serial_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "scguard.runtime.parallel_for.nested_serial_sections");
  chunks_counter->Increment(num_chunks);
  // Flight-recorder span per invocation plus a chunk-count sample, so a
  // Perfetto trace shows where the fan-outs sit inside the engine's stage
  // spans. Ids intern once per process; the whole block is a no-op branch
  // while the recorder is off.
  static const uint16_t rec_span_id =
      obs::FlightRecorder::Global().InternName("runtime.parallel_for");
  static const uint16_t rec_chunks_id =
      obs::FlightRecorder::Global().InternName(
          "runtime.parallel_for.num_chunks");
  const obs::TimedEvent rec_span(rec_span_id);
  obs::EmitCounter(rec_chunks_id, num_chunks);
  const auto chunk_bounds = [&](int64_t c) {
    const int64_t lo = begin + c * grain;
    return std::pair<int64_t, int64_t>{lo, std::min(end, lo + grain)};
  };

  const bool serial = pool == nullptr || pool->num_threads() <= 1 ||
                      num_chunks == 1 || ThreadPool::InWorkerThread();
  if (serial) {
    serial_counter->Increment();
    // Sections the nesting guard demoted — they *would* have fanned out
    // (multi-thread pool, multiple chunks) but the caller already runs on
    // a pool worker. A large count flags an orchestration layer eating the
    // parallelism of the layer below (e.g. ExperimentRunner's seed fan-out
    // serializing the engine's shard scan; DESIGN.md section 9).
    if (ThreadPool::InWorkerThread() && pool != nullptr &&
        pool->num_threads() > 1 && num_chunks > 1) {
      nested_serial_counter->Increment();
    }
    for (int64_t c = 0; c < num_chunks; ++c) {
      const auto [lo, hi] = chunk_bounds(c);
      // Early exit is safe: the first failure is by definition the
      // lowest-indexed one, matching the parallel path's reduction.
      SCGUARD_RETURN_NOT_OK(fn(lo, hi));
    }
    return Status::OK();
  }

  parallel_counter->Increment();

  // Dynamic chunk claiming: threads race for chunk indices, but every
  // result lands in its chunk's slot, so the reduction below is
  // schedule-independent.
  std::vector<Status> statuses(static_cast<size_t>(num_chunks));
  std::atomic<int64_t> next{0};
  const auto drain = [&]() -> Status {
    for (int64_t c = next.fetch_add(1, std::memory_order_relaxed);
         c < num_chunks; c = next.fetch_add(1, std::memory_order_relaxed)) {
      const auto [lo, hi] = chunk_bounds(c);
      statuses[static_cast<size_t>(c)] = fn(lo, hi);
    }
    return Status::OK();
  };

  {
    TaskGroup group(*pool);
    const int64_t helpers =
        std::min<int64_t>(pool->num_threads(), num_chunks - 1);
    for (int64_t i = 0; i < helpers; ++i) group.Run(drain);
    drain();  // The caller works too instead of idling in Wait.
    group.Wait();
  }

  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace scguard::runtime
