# Empty compiler generated dependencies file for bench_fig11_vary_beta.
# This may be replaced when dependencies are built.
