#include "runtime/thread_pool.h"

#include <chrono>
#include <utility>

#include "common/check.h"

namespace scguard::runtime {
namespace {

// Set for the lifetime of every pool worker thread; lets ParallelFor
// detect nesting without threading a context object through call sites.
thread_local bool tls_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : tasks_executed_(obs::MetricsRegistry::Global().GetCounter(
          "scguard.runtime.tasks_executed")),
      queue_depth_(obs::MetricsRegistry::Global().GetGauge(
          "scguard.runtime.queue_depth")),
      wait_seconds_(obs::MetricsRegistry::Global().GetHistogram(
          "scguard.runtime.wait_seconds")) {
  SCGUARD_CHECK(num_threads >= 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SCGUARD_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    SCGUARD_CHECK(!stop_);  // Submitting during destruction is a bug.
    queue_.push_back(std::move(task));
    queue_depth_->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const auto ready = [this] { return stop_ || !queue_.empty(); };
      if (!ready() && obs::Enabled()) {
        // Idle time: how long this worker sat starved for work.
        const auto wait_start = std::chrono::steady_clock::now();
        cv_.wait(lock, ready);
        wait_seconds_->Observe(std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - wait_start)
                                   .count());
      } else {
        cv_.wait(lock, ready);
      }
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
    task();
    tasks_executed_->Increment();
  }
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool ThreadPool::InWorkerThread() { return tls_in_pool_worker; }

int RuntimeOptions::ResolvedThreads() const {
  if (num_threads <= 0) return ThreadPool::HardwareThreads();
  return num_threads;
}

std::unique_ptr<ThreadPool> MakePool(const RuntimeOptions& options) {
  const int threads = options.ResolvedThreads();
  if (threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(threads);
}

}  // namespace scguard::runtime
