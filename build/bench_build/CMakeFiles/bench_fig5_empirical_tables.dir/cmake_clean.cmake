file(REMOVE_RECURSE
  "../bench/bench_fig5_empirical_tables"
  "../bench/bench_fig5_empirical_tables.pdb"
  "CMakeFiles/bench_fig5_empirical_tables.dir/bench_fig5_empirical_tables.cc.o"
  "CMakeFiles/bench_fig5_empirical_tables.dir/bench_fig5_empirical_tables.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_empirical_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
