#include "core/reputation.h"

#include <algorithm>
#include <cmath>

namespace scguard::core {

ReputationTracker::ReputationTracker(const Config& config) : config_(config) {}

void ReputationTracker::RecordTask(int64_t requester_id, geo::Point task_location) {
  RequesterState& state = requesters_[requester_id];
  state.task_locations.push_back(task_location);
  state.tasks_this_window += 1;
}

void ReputationTracker::RecordOutcome(int64_t requester_id, bool completed) {
  RequesterState& state = requesters_[requester_id];
  state.finished += 1;
  if (completed) state.completed += 1;
}

void ReputationTracker::AdvanceWindow() {
  for (auto& [id, state] : requesters_) state.tasks_this_window = 0;
}

const ReputationTracker::RequesterState* ReputationTracker::Find(
    int64_t requester_id) const {
  const auto it = requesters_.find(requester_id);
  return it == requesters_.end() ? nullptr : &it->second;
}

double ReputationTracker::Score(int64_t requester_id) const {
  const RequesterState* state = Find(requester_id);
  if (state == nullptr) return 1.0;  // Unknown requesters start clean.
  if (static_cast<int>(state->task_locations.size()) < config_.min_observations) {
    return 1.0;  // Not enough history to judge.
  }

  double score = 1.0;

  // Completion signal: ratio of completed to finished tasks.
  if (state->finished >= config_.min_observations) {
    const double ratio = static_cast<double>(state->completed) /
                         static_cast<double>(state->finished);
    if (ratio < config_.min_completion_ratio) {
      score *= ratio / config_.min_completion_ratio;
    }
  }

  // Concentration signal: mean pairwise distance of posted tasks (sampled
  // against the centroid for O(n)).
  {
    geo::Point centroid{0, 0};
    for (geo::Point p : state->task_locations) centroid = centroid + p;
    centroid = centroid * (1.0 / static_cast<double>(state->task_locations.size()));
    double mean_spread = 0.0;
    for (geo::Point p : state->task_locations) {
      mean_spread += geo::Distance(p, centroid);
    }
    mean_spread /= static_cast<double>(state->task_locations.size());
    if (mean_spread < config_.min_task_spread_m) {
      score *= std::max(0.0, mean_spread / config_.min_task_spread_m);
    }
  }

  // Volume signal.
  if (state->tasks_this_window > config_.max_tasks_per_window) {
    score *= static_cast<double>(config_.max_tasks_per_window) /
             static_cast<double>(state->tasks_this_window);
  }

  return std::clamp(score, 0.0, 1.0);
}

bool ReputationTracker::IsSuspicious(int64_t requester_id) const {
  return Score(requester_id) < 0.5;
}

int64_t ReputationTracker::tasks_recorded(int64_t requester_id) const {
  const RequesterState* state = Find(requester_id);
  return state == nullptr ? 0
                          : static_cast<int64_t>(state->task_locations.size());
}

}  // namespace scguard::core
