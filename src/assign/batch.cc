#include "assign/batch.h"

#include <chrono>

#include "assign/offline.h"
#include "assign/stages/candidate_stage.h"
#include "common/check.h"
#include "common/str_format.h"

namespace scguard::assign {

BatchMatcher::BatchMatcher(const reachability::ReachabilityModel* model,
                           double alpha, int batch_size,
                           reachability::KernelOptions kernel)
    : model_(model), alpha_(alpha), batch_size_(batch_size), kernel_(kernel) {
  SCGUARD_CHECK(model != nullptr);
  SCGUARD_CHECK(alpha > 0.0 && alpha <= 1.0);
  SCGUARD_CHECK(batch_size >= 1);
}

std::string BatchMatcher::name() const {
  return StrCat("Batch-", batch_size_);
}

MatchResult BatchMatcher::Run(const Workload& workload, stats::Rng& /*rng*/) {
  const auto start = std::chrono::steady_clock::now();
  MatchResult result;
  RunMetrics& m = result.metrics;
  m.num_tasks = static_cast<int64_t>(workload.tasks.size());
  m.num_workers = static_cast<int64_t>(workload.workers.size());

  std::vector<bool> matched(workload.workers.size(), false);

  // Run-local U2U stage (one threshold bisection per distinct reach radius)
  // keeps Run safe to call concurrently on a shared matcher. The batch
  // matcher scores full bipartite feasibility, so it uses the stage's
  // scalar Decide — the same certain-band contract as the engine scan,
  // prewarmed here so the cost-matrix loop mostly resolves on a
  // squared-distance compare with no sqrt and no hash lookup.
  U2uCandidateStage::Config u2u_config;
  u2u_config.model = model_;
  u2u_config.alpha = alpha_;
  u2u_config.kernel = kernel_;
  U2uCandidateStage u2u(std::move(u2u_config));
  u2u.ReserveWorkers(workload.workers.size());
  for (const Worker& w : workload.workers) {
    u2u.AddWorker(w.noisy_location, w.reach_radius_m);
  }
  u2u.Prepare();

  for (size_t batch_start = 0; batch_start < workload.tasks.size();
       batch_start += static_cast<size_t>(batch_size_)) {
    const size_t batch_end = std::min(
        batch_start + static_cast<size_t>(batch_size_), workload.tasks.size());
    const size_t batch_count = batch_end - batch_start;

    // Available workers for this batch.
    std::vector<size_t> available;
    for (size_t w = 0; w < workload.workers.size(); ++w) {
      if (!matched[w]) available.push_back(w);
    }
    m.server_to_requester_msgs += static_cast<int64_t>(batch_count);

    // Noisy cost matrix: observed distance where the pair is plausibly
    // reachable, infeasible otherwise.
    std::vector<std::vector<double>> cost(
        batch_count, std::vector<double>(available.size(), kInfeasible));
    for (size_t bt = 0; bt < batch_count; ++bt) {
      const Task& task = workload.tasks[batch_start + bt];
      int64_t candidates = 0;
      for (size_t wi = 0; wi < available.size(); ++wi) {
        const size_t w = available[wi];
        const Worker& worker = workload.workers[w];
        if (u2u.Decide(static_cast<uint32_t>(w), task.noisy_location)) {
          // d_obs doubles as the matching cost (computed only for feasible
          // pairs now; Distance stays the cost so values are unchanged).
          cost[bt][wi] =
              geo::Distance(worker.noisy_location, task.noisy_location);
          ++candidates;
        }
      }
      m.candidates_sum += candidates;
      // U2U accuracy bookkeeping, as in the online engine.
      int64_t truly_reachable = 0, candidates_reachable = 0;
      for (size_t wi = 0; wi < available.size(); ++wi) {
        const Worker& worker = workload.workers[available[wi]];
        const bool reachable = worker.CanReach(task.location);
        truly_reachable += reachable ? 1 : 0;
        if (cost[bt][wi] < kInfeasible && reachable) ++candidates_reachable;
      }
      if (candidates > 0) {
        m.precision_sum += static_cast<double>(candidates_reachable) /
                           static_cast<double>(candidates);
        m.precision_count += 1;
      }
      if (truly_reachable > 0) {
        m.recall_sum += static_cast<double>(candidates_reachable) /
                        static_cast<double>(truly_reachable);
        m.recall_count += 1;
      }
    }

    const std::vector<int> batch_match = MinCostMaxMatching(cost);

    // E2E validation of each proposed pair.
    for (size_t bt = 0; bt < batch_count; ++bt) {
      if (batch_match[bt] < 0) continue;
      const Task& task = workload.tasks[batch_start + bt];
      const size_t w = available[static_cast<size_t>(batch_match[bt])];
      const Worker& worker = workload.workers[w];
      m.requester_to_worker_msgs += 1;
      if (worker.CanReach(task.location)) {
        matched[w] = true;
        const double travel = geo::Distance(worker.location, task.location);
        result.assignments.push_back({task.id, worker.id, travel});
        m.assigned_tasks += 1;
        m.accepted_assignments += 1;
        m.travel_sum_m += travel;
      } else {
        m.false_hits += 1;
      }
    }
  }

  m.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace scguard::assign
