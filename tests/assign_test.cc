#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "assign/algorithms.h"
#include "assign/ground_truth.h"
#include "assign/scguard_engine.h"
#include "data/workload.h"
#include "reachability/analytical_model.h"
#include "reachability/binary_model.h"
#include "stats/rng.h"

namespace scguard::assign {
namespace {

using privacy::PrivacyParams;

constexpr PrivacyParams kDefault{0.7, 800.0};

Worker MakeWorker(int64_t id, double x, double y, double reach) {
  Worker w;
  w.id = id;
  w.location = {x, y};
  w.noisy_location = {x, y};  // Zero noise unless perturbed.
  w.reach_radius_m = reach;
  return w;
}

Task MakeTask(int64_t id, double x, double y) {
  Task t;
  t.id = id;
  t.location = {x, y};
  t.noisy_location = {x, y};
  t.arrival_seq = id;
  return t;
}

// A 3x3 instance in the spirit of the paper's Fig. 1: w1 reaches all tasks,
// w2 reaches only t1, w3 reaches only t2; the optimal assignment is
// t1->w2, t2->w3, t3->w1.
Workload FigureOneWorkload() {
  Workload w;
  w.workers = {MakeWorker(0, 0, 0, 10000),   // w1: huge region.
               MakeWorker(1, 1000, 0, 600),  // w2: only near t1.
               MakeWorker(2, 0, 1000, 600)}; // w3: only near t2.
  w.tasks = {MakeTask(0, 1000, 100),   // t1: near w2 (and w1).
             MakeTask(1, 100, 1000),   // t2: near w3 (and w1).
             MakeTask(2, 3000, 3000)}; // t3: only w1.
  for (const auto& worker : w.workers) w.region.Extend(worker.location);
  for (const auto& task : w.tasks) w.region.Extend(task.location);
  return w;
}

void ExpectAllAssignmentsValid(const Workload& workload, const MatchResult& result) {
  std::set<int64_t> used_workers;
  for (const auto& a : result.assignments) {
    const auto worker_it =
        std::find_if(workload.workers.begin(), workload.workers.end(),
                     [&a](const Worker& w) { return w.id == a.worker_id; });
    const auto task_it =
        std::find_if(workload.tasks.begin(), workload.tasks.end(),
                     [&a](const Task& t) { return t.id == a.task_id; });
    ASSERT_NE(worker_it, workload.workers.end());
    ASSERT_NE(task_it, workload.tasks.end());
    EXPECT_TRUE(worker_it->CanReach(task_it->location))
        << "invalid assignment w" << a.worker_id << " -> t" << a.task_id;
    EXPECT_DOUBLE_EQ(a.travel_m,
                     geo::Distance(worker_it->location, task_it->location));
    EXPECT_TRUE(used_workers.insert(a.worker_id).second)
        << "worker " << a.worker_id << " assigned twice";
  }
}

// --------------------------------------------------------- Ground truth

TEST(GroundTruthTest, NearestNeighborPicksClosest) {
  Workload w;
  w.workers = {MakeWorker(0, 0, 0, 5000), MakeWorker(1, 900, 0, 5000)};
  w.tasks = {MakeTask(0, 1000, 0)};
  GroundTruthMatcher matcher(RankStrategy::kNearest);
  stats::Rng rng(1);
  const MatchResult result = matcher.Run(w, rng);
  ASSERT_EQ(result.assignments.size(), 1u);
  EXPECT_EQ(result.assignments[0].worker_id, 1);  // 100 m vs 1000 m.
  EXPECT_DOUBLE_EQ(result.assignments[0].travel_m, 100.0);
}

TEST(GroundTruthTest, AssignsAllWhenPossible) {
  const Workload w = FigureOneWorkload();
  GroundTruthMatcher matcher(RankStrategy::kNearest);
  stats::Rng rng(2);
  const MatchResult result = matcher.Run(w, rng);
  // NN matches t1->w2, t2->w3, t3->w1: the optimum.
  EXPECT_EQ(result.metrics.assigned_tasks, 3);
  ExpectAllAssignmentsValid(w, result);
}

TEST(GroundTruthTest, UnreachableTaskStaysUnassigned) {
  Workload w;
  w.workers = {MakeWorker(0, 0, 0, 100)};
  w.tasks = {MakeTask(0, 10000, 10000)};
  GroundTruthMatcher matcher(RankStrategy::kRandom);
  stats::Rng rng(3);
  const MatchResult result = matcher.Run(w, rng);
  EXPECT_EQ(result.metrics.assigned_tasks, 0);
  EXPECT_TRUE(result.assignments.empty());
}

TEST(GroundTruthTest, MetricsArePerfectOnExactData) {
  const Workload w = FigureOneWorkload();
  GroundTruthMatcher matcher(RankStrategy::kNearest);
  stats::Rng rng(4);
  const MatchResult result = matcher.Run(w, rng);
  EXPECT_EQ(result.metrics.false_hits, 0);
  EXPECT_EQ(result.metrics.false_dismissals, 0);
  EXPECT_DOUBLE_EQ(result.metrics.MeanPrecision(), 1.0);
  EXPECT_DOUBLE_EQ(result.metrics.MeanRecall(), 1.0);
}

TEST(GroundTruthTest, RankingIsMaximal) {
  // Ranking never leaves a task unassigned while a reachable unmatched
  // worker exists (greedy maximality).
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {20000, 20000});
  data::WorkloadConfig config;
  config.num_workers = 60;
  config.num_tasks = 60;
  stats::Rng rng(5);
  const Workload w = data::MakeUniformWorkload(region, config, rng);
  GroundTruthMatcher matcher(RankStrategy::kRandom);
  const MatchResult result = matcher.Run(w, rng);
  std::set<int64_t> matched_workers;
  std::set<int64_t> assigned_tasks;
  for (const auto& a : result.assignments) {
    matched_workers.insert(a.worker_id);
    assigned_tasks.insert(a.task_id);
  }
  for (const auto& task : w.tasks) {
    if (assigned_tasks.count(task.id) > 0) continue;
    for (const auto& worker : w.workers) {
      if (matched_workers.count(worker.id) > 0) continue;
      EXPECT_FALSE(worker.CanReach(task.location))
          << "task " << task.id << " skipped though worker " << worker.id
          << " was free and reachable";
    }
  }
}

// --------------------------------------------------------------- Engine

TEST(EngineTest, ZeroNoiseObliviousMatchesGroundTruthCount) {
  // With noisy == true locations the binary model is exact, so the
  // oblivious engine must reproduce the ground-truth Ranking outcome.
  const Workload w = FigureOneWorkload();
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  MatcherHandle oblivious = MakeOblivious(RankStrategy::kNearest, params);
  stats::Rng rng_a(6), rng_b(6);
  const MatchResult private_result = oblivious.Run(w, rng_a);
  GroundTruthMatcher exact(RankStrategy::kNearest);
  const MatchResult exact_result = exact.Run(w, rng_b);
  EXPECT_EQ(private_result.metrics.assigned_tasks,
            exact_result.metrics.assigned_tasks);
  EXPECT_EQ(private_result.metrics.false_hits, 0);
  ExpectAllAssignmentsValid(w, private_result);
}

Workload NoisyUniformWorkload(int n, uint64_t seed,
                              const PrivacyParams& params = kDefault) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {20000, 20000});
  data::WorkloadConfig config;
  config.num_workers = n;
  config.num_tasks = n;
  stats::Rng rng(seed);
  Workload w = data::MakeUniformWorkload(region, config, rng);
  data::PerturbWorkload(params, params, rng, w);
  return w;
}

TEST(EngineTest, AcceptedAssignmentsAreAlwaysValid) {
  const Workload w = NoisyUniformWorkload(80, 7);
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  for (auto make : {+[](const AlgorithmParams& p) {
                      return MakeOblivious(RankStrategy::kNearest, p);
                    },
                    +[](const AlgorithmParams& p) {
                      return MakeProbabilisticModel(p);
                    }}) {
    MatcherHandle handle = make(params);
    stats::Rng rng(8);
    const MatchResult result = handle.Run(w, rng);
    ExpectAllAssignmentsValid(w, result);
    EXPECT_GT(result.metrics.assigned_tasks, 0) << handle.name();
  }
}

TEST(EngineTest, MetricsInternallyConsistent) {
  const Workload w = NoisyUniformWorkload(80, 9);
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  MatcherHandle handle = MakeProbabilisticModel(params);
  stats::Rng rng(10);
  const MatchResult result = handle.Run(w, rng);
  const RunMetrics& m = result.metrics;
  // Every contact either succeeded or was a false hit.
  EXPECT_EQ(m.requester_to_worker_msgs, m.accepted_assignments + m.false_hits);
  EXPECT_EQ(m.accepted_assignments,
            static_cast<int64_t>(result.assignments.size()));
  EXPECT_EQ(m.assigned_tasks, m.accepted_assignments);  // K = 1.
  EXPECT_LE(m.assigned_tasks, m.num_tasks);
  EXPECT_EQ(m.server_to_requester_msgs, m.num_tasks);
  EXPECT_GE(m.MeanPrecision(), 0.0);
  EXPECT_LE(m.MeanPrecision(), 1.0);
  EXPECT_GE(m.MeanRecall(), 0.0);
  EXPECT_LE(m.MeanRecall(), 1.0);
  EXPECT_GE(m.u2e_seconds, 0.0);
  EXPECT_GE(m.total_seconds, m.u2e_seconds);
}

TEST(EngineTest, DeterministicForEqualSeeds) {
  const Workload w = NoisyUniformWorkload(60, 11);
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  MatcherHandle h1 = MakeProbabilisticModel(params);
  MatcherHandle h2 = MakeProbabilisticModel(params);
  stats::Rng rng_a(12), rng_b(12);
  const MatchResult a = h1.Run(w, rng_a);
  const MatchResult b = h2.Run(w, rng_b);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].worker_id, b.assignments[i].worker_id);
    EXPECT_EQ(a.assignments[i].task_id, b.assignments[i].task_id);
  }
}

TEST(EngineTest, LowerAlphaGrowsCandidateSets) {
  const Workload w = NoisyUniformWorkload(80, 13);
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  params.beta = 0.0;
  params.alpha = 0.05;
  MatcherHandle loose = MakeProbabilisticModel(params);
  params.alpha = 0.4;
  MatcherHandle tight = MakeProbabilisticModel(params);
  stats::Rng rng_a(14), rng_b(14);
  const auto loose_result = loose.Run(w, rng_a);
  const auto tight_result = tight.Run(w, rng_b);
  EXPECT_GT(loose_result.metrics.candidates_sum,
            tight_result.metrics.candidates_sum);
}

TEST(EngineTest, HigherBetaReducesDisclosures) {
  const Workload w = NoisyUniformWorkload(80, 15);
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  params.beta = 0.0;
  MatcherHandle no_beta = MakeProbabilisticModel(params);
  params.beta = 0.4;
  MatcherHandle high_beta = MakeProbabilisticModel(params);
  stats::Rng rng_a(16), rng_b(16);
  const auto open = no_beta.Run(w, rng_a);
  const auto guarded = high_beta.Run(w, rng_b);
  EXPECT_LE(guarded.metrics.requester_to_worker_msgs,
            open.metrics.requester_to_worker_msgs);
  EXPECT_LE(guarded.metrics.false_hits, open.metrics.false_hits);
  // Beta canceling can only create false dismissals, never remove them.
  EXPECT_GE(guarded.metrics.false_dismissals, open.metrics.false_dismissals);
}

TEST(EngineTest, FirstContactBetaTradesLeakForUtility) {
  // The alternative beta reading (see EXPERIMENTS.md): once the first
  // contact clears the threshold, the requester goes best-effort.
  const Workload w = NoisyUniformWorkload(100, 27);
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  params.beta = 0.25;
  MatcherHandle strict = MakeProbabilisticModel(params);
  params.beta_mode = BetaMode::kFirstContactOnly;
  MatcherHandle permissive = MakeProbabilisticModel(params);
  stats::Rng rng_a(28), rng_b(28);
  const auto strict_result = strict.Run(w, rng_a);
  const auto permissive_result = permissive.Run(w, rng_b);
  EXPECT_GE(permissive_result.metrics.assigned_tasks,
            strict_result.metrics.assigned_tasks);
  EXPECT_GE(permissive_result.metrics.requester_to_worker_msgs,
            strict_result.metrics.requester_to_worker_msgs);
  // Fewer reachable workers are silently skipped.
  EXPECT_LE(permissive_result.metrics.false_dismissals,
            strict_result.metrics.false_dismissals);
}

TEST(EngineTest, BetaOneCancelsAlmostEverything) {
  const Workload w = NoisyUniformWorkload(50, 17);
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  params.beta = 1.0;  // Requires certainty: almost no contact happens.
  MatcherHandle handle = MakeProbabilisticModel(params);
  stats::Rng rng(18);
  const auto result = handle.Run(w, rng);
  EXPECT_LE(result.metrics.requester_to_worker_msgs, 5);
}

TEST(EngineTest, RedundantAssignmentNeedsKWorkers) {
  // Dense workers around each task so K = 2 is satisfiable.
  Workload w;
  for (int i = 0; i < 6; ++i) {
    w.workers.push_back(
        MakeWorker(i, 100.0 * i, 0, 5000));
  }
  w.tasks = {MakeTask(0, 250, 0), MakeTask(1, 300, 0)};
  for (const auto& worker : w.workers) w.region.Extend(worker.location);
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  params.redundancy_k = 2;
  params.beta = 0.0;
  MatcherHandle handle = MakeProbabilisticModel(params);
  stats::Rng rng(19);
  const auto result = handle.Run(w, rng);
  EXPECT_EQ(result.metrics.assigned_tasks, 2);
  EXPECT_EQ(result.metrics.accepted_assignments, 4);
  // No worker serves two tasks.
  std::set<int64_t> used;
  for (const auto& a : result.assignments) {
    EXPECT_TRUE(used.insert(a.worker_id).second);
  }
}

TEST(EngineTest, PruningPreservesResultsAtHighGamma) {
  const Workload w = NoisyUniformWorkload(100, 20);
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  MatcherHandle plain = MakeProbabilisticModel(params);
  params.pruning_gamma = 0.99;
  for (auto backend : {index::PrunerBackend::kGrid, index::PrunerBackend::kRTree,
                       index::PrunerBackend::kLinearScan}) {
    params.pruning_backend = backend;
    MatcherHandle pruned = MakeProbabilisticModel(params);
    stats::Rng rng_a(21), rng_b(21);
    const auto a = plain.Run(w, rng_a);
    const auto b = pruned.Run(w, rng_b);
    EXPECT_EQ(a.metrics.assigned_tasks, b.metrics.assigned_tasks)
        << index::PrunerBackendName(backend);
    EXPECT_EQ(a.metrics.candidates_sum, b.metrics.candidates_sum)
        << index::PrunerBackendName(backend);
    ASSERT_EQ(a.assignments.size(), b.assignments.size());
    for (size_t i = 0; i < a.assignments.size(); ++i) {
      EXPECT_EQ(a.assignments[i].worker_id, b.assignments[i].worker_id);
    }
  }
}

TEST(EngineTest, EmptyWorkloads) {
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  MatcherHandle handle = MakeProbabilisticModel(params);
  stats::Rng rng(22);
  Workload empty;
  const auto result = handle.Run(empty, rng);
  EXPECT_EQ(result.metrics.assigned_tasks, 0);

  Workload only_workers = NoisyUniformWorkload(10, 23);
  only_workers.tasks.clear();
  EXPECT_EQ(handle.Run(only_workers, rng).metrics.assigned_tasks, 0);

  Workload only_tasks = NoisyUniformWorkload(10, 24);
  only_tasks.workers.clear();
  const auto no_workers = handle.Run(only_tasks, rng);
  EXPECT_EQ(no_workers.metrics.assigned_tasks, 0);
  EXPECT_EQ(no_workers.metrics.candidates_sum, 0);
}

TEST(EngineTest, NamesIdentifyAlgorithms) {
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  EXPECT_EQ(MakeGroundTruth(RankStrategy::kRandom).name(), "GroundTruth-RR");
  EXPECT_EQ(MakeGroundTruth(RankStrategy::kNearest).name(), "GroundTruth-NN");
  EXPECT_EQ(MakeOblivious(RankStrategy::kRandom, params).name(), "Oblivious-RR");
  EXPECT_EQ(MakeOblivious(RankStrategy::kNearest, params).name(), "Oblivious-RN");
  EXPECT_EQ(MakeProbabilisticModel(params).name(), "Probabilistic-Model");
}

TEST(EngineTest, ObliviousFalseHitsCountDisclosures) {
  const Workload w = NoisyUniformWorkload(80, 25, PrivacyParams{0.1, 2000.0});
  AlgorithmParams params;
  params.worker_params = {0.1, 2000.0};
  params.task_params = {0.1, 2000.0};
  MatcherHandle handle = MakeOblivious(RankStrategy::kNearest, params);
  stats::Rng rng(26);
  const auto result = handle.Run(w, rng);
  // Heavy noise: the oblivious baseline must suffer disclosures.
  EXPECT_GT(result.metrics.false_hits, 0);
  EXPECT_EQ(result.metrics.requester_to_worker_msgs,
            result.metrics.false_hits + result.metrics.accepted_assignments);
}

}  // namespace
}  // namespace scguard::assign
