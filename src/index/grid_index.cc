#include "index/grid_index.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace scguard::index {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Headroom a rebuild leaves in a cell's slice: grows with the cell so
/// repeated inserts into one cell trigger O(log) rebuilds.
uint32_t SliceCapacityFor(uint32_t count) {
  return count + std::max<uint32_t>(4, count / 2);
}

}  // namespace

void GridIndex::Agg::Reset() {
  cover_min_x = cover_min_y = kInf;
  cover_max_x = cover_max_y = -kInf;
  core_max_lo_x = core_max_lo_y = -kInf;
  core_min_hi_x = core_min_hi_y = kInf;
}

void GridIndex::Agg::Accumulate(double cx, double cy, double cr) {
  // Exactly the member rectangle bounds FromCircle computes; aggregating
  // with min/max keeps every comparison downstream bit-compatible with the
  // per-member test.
  const double lo_x = cx - cr;
  const double hi_x = cx + cr;
  const double lo_y = cy - cr;
  const double hi_y = cy + cr;
  cover_min_x = std::min(cover_min_x, lo_x);
  cover_max_x = std::max(cover_max_x, hi_x);
  cover_min_y = std::min(cover_min_y, lo_y);
  cover_max_y = std::max(cover_max_y, hi_y);
  core_max_lo_x = std::max(core_max_lo_x, lo_x);
  core_min_hi_x = std::min(core_min_hi_x, hi_x);
  core_max_lo_y = std::max(core_max_lo_y, lo_y);
  core_min_hi_y = std::min(core_min_hi_y, hi_y);
}

void GridIndex::RecomputeAggregates(size_t slot) {
  const CellRef& c = cells_ref_[slot];
  Agg& agg = aggs_[slot];
  agg.Reset();
  for (size_t k = c.begin; k < c.begin + c.count; ++k) {
    agg.Accumulate(xs_[k], ys_[k], rs_[k]);
  }
}

GridIndex::GridIndex(const geo::BoundingBox& region, int cells_per_axis)
    : region_(region),
      cells_(cells_per_axis),
      cell_w_(region.Width() / cells_per_axis),
      cell_h_(region.Height() / cells_per_axis),
      cells_ref_(static_cast<size_t>(cells_per_axis) *
                 static_cast<size_t>(cells_per_axis)),
      aggs_(cells_ref_.size()) {
  SCGUARD_CHECK(!region.empty() && cells_per_axis >= 1);
  SCGUARD_CHECK(cell_w_ > 0.0 && cell_h_ > 0.0);
}

GridIndex::CellRange GridIndex::CellsFor(const geo::BoundingBox& box) const {
  auto clamp = [this](double v) {
    return std::clamp(static_cast<int>(v), 0, cells_ - 1);
  };
  return {clamp((box.min_x - region_.min_x) / cell_w_),
          clamp((box.max_x - region_.min_x) / cell_w_),
          clamp((box.min_y - region_.min_y) / cell_h_),
          clamp((box.max_y - region_.min_y) / cell_h_)};
}

size_t GridIndex::CellSlotFor(geo::Point p) const {
  const int cx = std::clamp(
      static_cast<int>((p.x - region_.min_x) / cell_w_), 0, cells_ - 1);
  const int cy = std::clamp(
      static_cast<int>((p.y - region_.min_y) / cell_h_), 0, cells_ - 1);
  return CellSlot(cx, cy);
}

void GridIndex::Rebuild() {
  // New layout: row-major cell order with fresh per-cell headroom. One
  // streaming pass moves every live slice; the old arrays are replaced
  // wholesale, so any pointer into the member arrays is invalidated (none
  // outlives a call into the index).
  size_t total = 0;
  for (const CellRef& c : cells_ref_) {
    total += SliceCapacityFor(c.count);
  }
  std::vector<int64_t> new_ids(total);
  std::vector<double> new_xs(total), new_ys(total), new_rs(total);
  size_t at = 0;
  for (CellRef& c : cells_ref_) {
    const auto src = static_cast<std::ptrdiff_t>(c.begin);
    const auto dst = static_cast<std::ptrdiff_t>(at);
    std::copy_n(ids_.begin() + src, c.count, new_ids.begin() + dst);
    std::copy_n(xs_.begin() + src, c.count, new_xs.begin() + dst);
    std::copy_n(ys_.begin() + src, c.count, new_ys.begin() + dst);
    std::copy_n(rs_.begin() + src, c.count, new_rs.begin() + dst);
    c.begin = at;
    c.cap = SliceCapacityFor(c.count);
    at += c.cap;
  }
  ids_.swap(new_ids);
  xs_.swap(new_xs);
  ys_.swap(new_ys);
  rs_.swap(new_rs);
  if (listener_ != nullptr) listener_->OnRebuild();
}

void GridIndex::Insert(geo::Point center, double expanded_radius_m,
                       int64_t id) {
  SCGUARD_CHECK(expanded_radius_m >= 0.0 &&
                std::isfinite(expanded_radius_m));
  const size_t slot = CellSlotFor(center);
  if (cells_ref_[slot].count == cells_ref_[slot].cap) Rebuild();
  CellRef& c = cells_ref_[slot];
  // Ascending insert; callers registering ids in order hit the append path.
  const size_t end = c.begin + c.count;
  size_t pos = end;
  if (c.count > 0 && id < ids_[end - 1]) {
    pos = static_cast<size_t>(
        std::lower_bound(ids_.begin() + static_cast<std::ptrdiff_t>(c.begin),
                         ids_.begin() + static_cast<std::ptrdiff_t>(end), id) -
        ids_.begin());
    const auto from = static_cast<std::ptrdiff_t>(pos);
    const auto to = static_cast<std::ptrdiff_t>(end);
    std::move_backward(ids_.begin() + from, ids_.begin() + to,
                       ids_.begin() + to + 1);
    std::move_backward(xs_.begin() + from, xs_.begin() + to,
                       xs_.begin() + to + 1);
    std::move_backward(ys_.begin() + from, ys_.begin() + to,
                       ys_.begin() + to + 1);
    std::move_backward(rs_.begin() + from, rs_.begin() + to,
                       rs_.begin() + to + 1);
  }
  ids_[pos] = id;
  xs_[pos] = center.x;
  ys_[pos] = center.y;
  rs_[pos] = expanded_radius_m;
  ++c.count;
  aggs_[slot].Accumulate(center.x, center.y, expanded_radius_m);
  if (listener_ != nullptr) {
    listener_->OnSliceInsert(slot, pos, c.begin + c.count);
  }
  cells_of_id_[id].push_back(static_cast<uint32_t>(slot));
  max_radius_ = std::max(max_radius_, expanded_radius_m);
  if (max_id_ < min_id_) {
    min_id_ = max_id_ = id;
  } else {
    min_id_ = std::min(min_id_, id);
    max_id_ = std::max(max_id_, id);
  }
  ++live_;
}

GridIndex::CellCert GridIndex::Classify(const Agg& agg,
                                        const geo::BoundingBox& query) const {
  // Skip: the union of member rectangles misses the query, so no member
  // can pass its intersection test. Empty cells keep the reset sentinels
  // (cover_max_x = -inf) and land here too.
  if (agg.cover_max_x < query.min_x || query.max_x < agg.cover_min_x ||
      agg.cover_max_y < query.min_y || query.max_y < agg.cover_min_y) {
    return CellCert::kSkipped;
  }
  // Bulk accept: the query catches even the componentwise-worst member
  // bound on every side, which is exactly "every member's rectangle
  // intersects the query".
  if (agg.core_max_lo_x <= query.max_x && query.min_x <= agg.core_min_hi_x &&
      agg.core_max_lo_y <= query.max_y && query.min_y <= agg.core_min_hi_y) {
    return CellCert::kBulkAccepted;
  }
  return CellCert::kBoundary;
}

GridIndex::CellRange GridIndex::QueryRange(
    const geo::BoundingBox& query) const {
  // A member's rectangle can reach at most max_radius_ beyond its center,
  // so widening the query by the radius high-water mark bounds the cells
  // whose members could intersect. The extra +-1 cell absorbs the ulp-level
  // difference between this widened box and each member's own fl(c +- r),
  // plus the truncation-vs-floor edge of the cell assignment.
  geo::BoundingBox reach = query;
  reach.min_x -= max_radius_;
  reach.min_y -= max_radius_;
  reach.max_x += max_radius_;
  reach.max_y += max_radius_;
  CellRange range = CellsFor(reach);
  range.x0 = std::max(0, range.x0 - 1);
  range.y0 = std::max(0, range.y0 - 1);
  range.x1 = std::min(cells_ - 1, range.x1 + 1);
  range.y1 = std::min(cells_ - 1, range.y1 + 1);
  return range;
}

void GridIndex::Query(const geo::BoundingBox& query,
                      std::vector<int64_t>& out) const {
  out.clear();
  if (live_ == 0 || query.empty()) return;
  const CellRange range = QueryRange(query);

  // Output-ordering strategy. When the inserted id range is dense relative
  // to the live count (the engine's ids are exactly [0, n)), accepted ids
  // are scattered into a bitmap and read back in word order: ascending and
  // deduplicated in O(hits + range/64), no comparison sorting at all. For
  // sparse id sets a bitmap would be oversized, so each cell records an
  // ascending run and a k-way merge combines them.
  const uint64_t id_span = static_cast<uint64_t>(max_id_) -
                           static_cast<uint64_t>(min_id_) + 1;
  const bool dense = id_span <= 8 * static_cast<uint64_t>(live_) + 8192;
  size_t dense_hits = 0;
  if (dense) {
    bitmap_.assign(static_cast<size_t>((id_span + 63) / 64), 0);
  } else {
    run_starts_.clear();
  }
  const auto set_bit = [this](int64_t id) {
    const uint64_t off =
        static_cast<uint64_t>(id) - static_cast<uint64_t>(min_id_);
    bitmap_[static_cast<size_t>(off >> 6)] |= uint64_t{1} << (off & 63);
  };

  for (int cy = range.y0; cy <= range.y1; ++cy) {
    for (int cx = range.x0; cx <= range.x1; ++cx) {
      const size_t slot = CellSlot(cx, cy);
      // The agg array is the only memory the visit touches until a cell
      // certifies as bulk or boundary: 64 contiguous bytes per cell. The
      // member slices of surviving cells sit in the flat arrays in
      // row-major cell order, so a row sweep streams them near-sequentially
      // instead of chasing one heap vector per cell.
      const Agg& agg = aggs_[slot];
      const CellCert cert = Classify(agg, query);
      if (cert == CellCert::kSkipped) {
        // Empty cells keep the -inf sentinel and are not "skipped work".
        if (agg.cover_max_x != -kInf) ++stats_.cells_skipped;
        continue;
      }
      const CellRef& c = cells_ref_[slot];
      const int64_t* const mids = ids_.data() + c.begin;
      const size_t m = c.count;
      const size_t run = out.size();
      if (cert == CellCert::kBulkAccepted) {
        ++stats_.cells_bulk_accepted;
        if (dense) {
          for (size_t k = 0; k < m; ++k) set_bit(mids[k]);
          dense_hits += m;
        } else {
          out.insert(out.end(), mids, mids + m);
        }
      } else {
        ++stats_.cells_boundary;
        stats_.boundary_workers += static_cast<int64_t>(m);
        const double* const mx = xs_.data() + c.begin;
        const double* const my = ys_.data() + c.begin;
        const double* const mr = rs_.data() + c.begin;
        for (size_t k = 0; k < m; ++k) {
          // Bit-identical to FromCircle(center, r).Intersects(query).
          const bool hit = (mx[k] - mr[k] <= query.max_x) &
                           (query.min_x <= mx[k] + mr[k]) &
                           (my[k] - mr[k] <= query.max_y) &
                           (query.min_y <= my[k] + mr[k]);
          if (dense) {
            if (hit) {
              set_bit(mids[k]);
              ++dense_hits;
            }
          } else if (hit) {
            out.push_back(mids[k]);
          }
        }
      }
      if (!dense && out.size() > run) run_starts_.push_back(run);
    }
  }

  if (dense) {
    out.reserve(dense_hits);
    for (size_t w = 0; w < bitmap_.size(); ++w) {
      uint64_t bits = bitmap_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        out.push_back(min_id_ +
                      static_cast<int64_t>((w << 6) + static_cast<size_t>(b)));
        bits &= bits - 1;
      }
    }
  } else {
    MergeRuns(out);
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
}

void GridIndex::MergeRuns(std::vector<int64_t>& out) const {
  // Bottom-up pairwise merge of the recorded ascending runs. Each pass
  // streams `out` once through the scratch buffer and halves the run
  // count: O(n log k) total, allocation-free once the scratch is warm.
  while (run_starts_.size() > 1) {
    merge_buf_.clear();
    merge_buf_.reserve(out.size());
    const size_t num_runs = run_starts_.size();
    size_t next = 0;  // Run starts for the next pass, written in place.
    for (size_t i = 0; i < num_runs; i += 2) {
      const size_t begin0 = run_starts_[i];
      const size_t end0 = i + 1 < num_runs ? run_starts_[i + 1] : out.size();
      const size_t merged_start = merge_buf_.size();
      if (i + 1 < num_runs) {
        const size_t end1 = i + 2 < num_runs ? run_starts_[i + 2] : out.size();
        std::merge(out.begin() + static_cast<std::ptrdiff_t>(begin0),
                   out.begin() + static_cast<std::ptrdiff_t>(end0),
                   out.begin() + static_cast<std::ptrdiff_t>(end0),
                   out.begin() + static_cast<std::ptrdiff_t>(end1),
                   std::back_inserter(merge_buf_));
      } else {
        merge_buf_.insert(merge_buf_.end(),
                          out.begin() + static_cast<std::ptrdiff_t>(begin0),
                          out.end());
      }
      run_starts_[next++] = merged_start;
    }
    run_starts_.resize(next);
    out.swap(merge_buf_);
  }
}

size_t GridIndex::VisitQueryCells(const geo::BoundingBox& query,
                                  std::vector<CellVisit>& out) const {
  // The cell walk of Query, with identical certification accounting, minus
  // the id materialization: each surviving cell is reported as its flat
  // member-array slice so a cell-major mirror can do the scoring-side work
  // over contiguous rows.
  out.clear();
  if (live_ == 0 || query.empty()) return 0;
  const CellRange range = QueryRange(query);
  size_t total = 0;
  for (int cy = range.y0; cy <= range.y1; ++cy) {
    for (int cx = range.x0; cx <= range.x1; ++cx) {
      const size_t slot = CellSlot(cx, cy);
      const Agg& agg = aggs_[slot];
      const CellCert cert = Classify(agg, query);
      if (cert == CellCert::kSkipped) {
        if (agg.cover_max_x != -kInf) ++stats_.cells_skipped;
        continue;
      }
      const CellRef& c = cells_ref_[slot];
      if (cert == CellCert::kBulkAccepted) {
        ++stats_.cells_bulk_accepted;
      } else {
        ++stats_.cells_boundary;
        stats_.boundary_workers += static_cast<int64_t>(c.count);
      }
      out.push_back(CellVisit{c.begin, c.count, static_cast<uint32_t>(slot),
                              cert});
      total += c.count;
    }
  }
  return total;
}

std::vector<int64_t> GridIndex::QueryIds(const geo::BoundingBox& query) const {
  std::vector<int64_t> out;
  Query(query, out);
  return out;
}

size_t GridIndex::Remove(int64_t id) {
  const auto it = cells_of_id_.find(id);
  if (it == cells_of_id_.end()) return 0;
  size_t count = 0;
  for (const uint32_t slot : it->second) {
    CellRef& c = cells_ref_[slot];
    // One recorded slot per inserted entry; erase one occurrence each.
    const auto begin = ids_.begin() + static_cast<std::ptrdiff_t>(c.begin);
    const auto end = begin + static_cast<std::ptrdiff_t>(c.count);
    const auto pos = std::lower_bound(begin, end, id);
    SCGUARD_CHECK(pos != end && *pos == id);
    // Ordered in-slice erase: shift the tail down one; the freed slot
    // becomes headroom for a later re-insert into this cell.
    const auto k = pos - ids_.begin();
    const auto slice_end = static_cast<std::ptrdiff_t>(c.begin + c.count);
    std::move(ids_.begin() + k + 1, ids_.begin() + slice_end,
              ids_.begin() + k);
    std::move(xs_.begin() + k + 1, xs_.begin() + slice_end, xs_.begin() + k);
    std::move(ys_.begin() + k + 1, ys_.begin() + slice_end, ys_.begin() + k);
    std::move(rs_.begin() + k + 1, rs_.begin() + slice_end, rs_.begin() + k);
    --c.count;
    RecomputeAggregates(slot);
    if (listener_ != nullptr) {
      listener_->OnSliceErase(slot, static_cast<size_t>(k),
                              c.begin + c.count);
    }
    ++count;
  }
  cells_of_id_.erase(it);
  live_ -= count;
  return count;
}

size_t GridIndex::Relocate(int64_t id, geo::Point new_center) {
  const auto it = cells_of_id_.find(id);
  if (it == cells_of_id_.end()) return 0;
  const size_t new_slot = CellSlotFor(new_center);
  if (it->second.size() == 1 && it->second[0] == new_slot) {
    // Same-cell move: the slice stays ascending (id unchanged), so only
    // the coordinates and the cell's certification aggregates change.
    CellRef& c = cells_ref_[new_slot];
    const auto begin = ids_.begin() + static_cast<std::ptrdiff_t>(c.begin);
    const auto end = begin + static_cast<std::ptrdiff_t>(c.count);
    const auto pos = std::lower_bound(begin, end, id);
    SCGUARD_CHECK(pos != end && *pos == id);
    const auto k = static_cast<size_t>(pos - ids_.begin());
    xs_[k] = new_center.x;
    ys_[k] = new_center.y;
    RecomputeAggregates(new_slot);
    if (listener_ != nullptr) {
      listener_->OnSliceUpdate(new_slot, k, c.begin + c.count);
    }
    return 1;
  }
  // Cross-cell (or multi-entry) move: collect each entry's radius, then
  // erase and re-insert through the ordinary mutation paths so listeners
  // see the usual erase/insert (or rebuild) sequence.
  radius_scratch_.clear();
  for (const uint32_t slot : it->second) {
    const CellRef& c = cells_ref_[slot];
    const auto begin = ids_.begin() + static_cast<std::ptrdiff_t>(c.begin);
    const auto end = begin + static_cast<std::ptrdiff_t>(c.count);
    const auto pos = std::lower_bound(begin, end, id);
    SCGUARD_CHECK(pos != end && *pos == id);
    radius_scratch_.push_back(rs_[static_cast<size_t>(pos - ids_.begin())]);
  }
  const size_t moved = Remove(id);
  for (const double r : radius_scratch_) Insert(new_center, r, id);
  return moved;
}

GridIndex::CellCert GridIndex::ClassifyCellForTest(
    int cx, int cy, const geo::BoundingBox& query) const {
  return Classify(aggs_[CellSlot(cx, cy)], query);
}

std::vector<int64_t> GridIndex::CellMembersForTest(int cx, int cy) const {
  const CellRef& c = cells_ref_[CellSlot(cx, cy)];
  return std::vector<int64_t>(
      ids_.begin() + static_cast<std::ptrdiff_t>(c.begin),
      ids_.begin() + static_cast<std::ptrdiff_t>(c.begin + c.count));
}

}  // namespace scguard::index
