
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv_loader.cc" "src/data/CMakeFiles/scguard_data.dir/csv_loader.cc.o" "gcc" "src/data/CMakeFiles/scguard_data.dir/csv_loader.cc.o.d"
  "/root/repo/src/data/tdrive_synth.cc" "src/data/CMakeFiles/scguard_data.dir/tdrive_synth.cc.o" "gcc" "src/data/CMakeFiles/scguard_data.dir/tdrive_synth.cc.o.d"
  "/root/repo/src/data/trace.cc" "src/data/CMakeFiles/scguard_data.dir/trace.cc.o" "gcc" "src/data/CMakeFiles/scguard_data.dir/trace.cc.o.d"
  "/root/repo/src/data/trip_model.cc" "src/data/CMakeFiles/scguard_data.dir/trip_model.cc.o" "gcc" "src/data/CMakeFiles/scguard_data.dir/trip_model.cc.o.d"
  "/root/repo/src/data/workload.cc" "src/data/CMakeFiles/scguard_data.dir/workload.cc.o" "gcc" "src/data/CMakeFiles/scguard_data.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/scguard_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/scguard_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/scguard_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
