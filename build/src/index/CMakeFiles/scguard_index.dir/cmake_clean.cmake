file(REMOVE_RECURSE
  "CMakeFiles/scguard_index.dir/grid_index.cc.o"
  "CMakeFiles/scguard_index.dir/grid_index.cc.o.d"
  "CMakeFiles/scguard_index.dir/kdtree.cc.o"
  "CMakeFiles/scguard_index.dir/kdtree.cc.o.d"
  "CMakeFiles/scguard_index.dir/pruning.cc.o"
  "CMakeFiles/scguard_index.dir/pruning.cc.o.d"
  "CMakeFiles/scguard_index.dir/rtree.cc.o"
  "CMakeFiles/scguard_index.dir/rtree.cc.o.d"
  "libscguard_index.a"
  "libscguard_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scguard_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
