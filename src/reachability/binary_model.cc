#include "reachability/binary_model.h"

namespace scguard::reachability {

double BinaryModel::ProbReachable(Stage /*stage*/, double observed_distance_m,
                                  double reach_radius_m) const {
  return observed_distance_m <= reach_radius_m ? 1.0 : 0.0;
}

}  // namespace scguard::reachability
