file(REMOVE_RECURSE
  "libscguard_core.a"
)
