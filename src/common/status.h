#ifndef SCGUARD_COMMON_STATUS_H_
#define SCGUARD_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace scguard {

/// Machine-readable category of a Status.
///
/// The set mirrors the categories used by database engines (Arrow/RocksDB):
/// it is deliberately small so call sites can switch exhaustively.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kNotImplemented = 7,
  kInternal = 8,
};

/// Returns the canonical lower-case name of a code ("ok", "invalid-argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail without carrying a value.
///
/// SCGuard does not use exceptions (per the project style); every fallible
/// operation returns a Status or a Result<T>. The OK state stores no heap
/// data, so returning OK is as cheap as returning an int.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other) : rep_(other.rep_ ? new Rep(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) rep_.reset(other.rep_ ? new Rep(*other.rep_) : nullptr);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Constructs a status with the given non-OK code and message.
  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk ? nullptr : new Rep{code, std::move(message)}) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Message of a non-OK status; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const { return code() == StatusCode::kFailedPrecondition; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Prepends context to the message of a non-OK status; OK is unchanged.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null for OK so the common path allocates nothing.
  std::unique_ptr<Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define SCGUARD_RETURN_NOT_OK(expr)                   \
  do {                                                \
    ::scguard::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                        \
  } while (false)

}  // namespace scguard

#endif  // SCGUARD_COMMON_STATUS_H_
