// Reproduces paper Fig. 11 (a-c): Probabilistic-Model as the U2E threshold
// beta increases from 0.1 to 0.4, at eps in {0.7, 1.0}. Higher beta cuts
// privacy leak (false hits) linearly, at the cost of false dismissals —
// and hence utility — past a knee near beta = 0.25.

#include "bench/bench_common.h"

namespace scguard::bench {
namespace {

std::vector<std::string> BetaColumns() {
  std::vector<std::string> cols = {"series"};
  for (double b : sim::kBetas) cols.push_back(StrCat("b=", b));
  return cols;
}

void Main() {
  const auto runner = OrDie(sim::ExperimentRunner::Create(PaperConfig()));
  JsonSeriesWriter json("fig11_vary_beta");

  sim::TablePrinter countable("Fig 11a — Utility & overhead vs beta (eps=0.7)",
                              BetaColumns());
  sim::TablePrinter u2e("Fig 11b — U2E false hit/dismissal vs beta (eps=0.7)",
                        BetaColumns());
  sim::TablePrinter travel("Fig 11c — Travel cost (m) vs beta", BetaColumns());

  for (double eps : {0.7, 1.0}) {
    const privacy::PrivacyParams p{eps, sim::kDefaultRadius};
    std::vector<double> util_row, over_row, hit_row, dis_row, travel_row;
    for (double beta : sim::kBetas) {
      assign::MatcherHandle handle = assign::MakeProbabilisticModel(
          MakeParams(p, sim::kDefaultAlpha, beta));
      const auto agg = OrDie(runner.Run(handle, p, p));
      json.Add(StrCat("Probabilistic-Model eps=", eps), beta, agg);
      util_row.push_back(agg.assigned_tasks);
      over_row.push_back(agg.candidates);
      hit_row.push_back(agg.false_hits);
      dis_row.push_back(agg.false_dismissals);
      travel_row.push_back(agg.travel_m);
    }
    if (eps == 0.7) {
      countable.AddRow("utility (#tasks)", util_row, 1);
      countable.AddRow("overhead (#workers)", over_row, 1);
      u2e.AddRow("false hits", hit_row, 1);
      u2e.AddRow("false dismissals", dis_row, 1);
    }
    travel.AddRow(StrCat("eps=", eps), travel_row, 0);
  }
  countable.Print(std::cout);
  u2e.Print(std::cout);
  travel.Print(std::cout);
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
