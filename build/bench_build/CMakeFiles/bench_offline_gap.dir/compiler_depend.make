# Empty compiler generated dependencies file for bench_offline_gap.
# This may be replaced when dependencies are built.
