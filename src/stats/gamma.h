#ifndef SCGUARD_STATS_GAMMA_H_
#define SCGUARD_STATS_GAMMA_H_

namespace scguard::stats {

/// Thread-safe log Gamma(x) for x > 0. POSIX `lgamma` writes the global
/// `signgam`, which is a data race when stats code runs on a thread pool;
/// this wrapper uses the reentrant `lgamma_r` where available (bit-identical
/// values on glibc) and plain `std::lgamma` elsewhere.
double LogGamma(double x);

/// Regularized lower incomplete gamma P(s, x) = gamma(s, x) / Gamma(s),
/// s > 0, x >= 0. P(s, x) is the CDF at x of a Gamma(shape=s, scale=1)
/// variable; P(k/2, x/2) is the chi-squared CDF with k degrees of freedom.
double RegularizedGammaP(double s, double x);

/// Regularized upper incomplete gamma Q(s, x) = 1 - P(s, x).
double RegularizedGammaQ(double s, double x);

}  // namespace scguard::stats

#endif  // SCGUARD_STATS_GAMMA_H_
