#ifndef SCGUARD_REACHABILITY_ANALYTICAL_MODEL_H_
#define SCGUARD_REACHABILITY_ANALYTICAL_MODEL_H_

#include "common/result.h"
#include "privacy/mechanism.h"
#include "privacy/planar_laplace.h"
#include "privacy/privacy_params.h"
#include "reachability/model.h"

namespace scguard::reachability {

/// How the analytical model turns the bivariate-normal approximation into a
/// reachability probability.
enum class AnalyticalMode {
  /// The paper's method (Sec. IV-B1): per-coordinate noise variance
  /// 2 r^2 / eps^2; U2U approximates d^2 by a normal via the first two
  /// moments of its mgf; U2E uses the Rice CDF.
  kPaperNormalApprox,
  /// Same variance, but the exact CDF of the BND-induced distance (a Rice
  /// CDF at both stages) instead of the normal approximation of d^2.
  kExactRice,
  /// Rice CDF with the true planar Laplace per-coordinate variance
  /// 3 r^2 / eps^2 (moment matching the actual mechanism instead of the
  /// paper's 1-D Laplace second moment). Ablation mode.
  kMomentMatched,
  /// Beyond the paper: exact quadrature of the planar Laplace density over
  /// the reachability disk. Exact for U2E; for U2U the combined two-sided
  /// noise is approximated by a single planar Laplace with matched
  /// variance (eps_eff = eps / sqrt(2)). Slower than the closed forms but
  /// still precomputation-free, and much closer to the empirical tables
  /// (the Gaussian modes misfit the Laplace's peaked bulk).
  kExactLaplace,
};

constexpr std::string_view AnalyticalModeName(AnalyticalMode mode) {
  switch (mode) {
    case AnalyticalMode::kPaperNormalApprox:
      return "paper-normal";
    case AnalyticalMode::kExactRice:
      return "exact-rice";
    case AnalyticalMode::kMomentMatched:
      return "moment-matched";
    case AnalyticalMode::kExactLaplace:
      return "exact-laplace";
  }
  return "?";
}

/// The analytical reachability model (paper Sec. IV-B1): approximate the
/// planar Laplace posterior of each true location by a circular bivariate
/// normal centered at the observed point, then evaluate Pr(d <= R_w) in
/// closed form. Fast and requires no precomputation (this is
/// *Probabilistic-Model* in the evaluation).
class AnalyticalModel final : public ReachabilityModel {
 public:
  /// Checked factory: every closed form here is derived from the planar
  /// Laplace noise shape, so a configured mechanism without an analytical
  /// DiskProbability (the grid kinds) is rejected with a Status pointing at
  /// the empirical path (EmpiricalModel / Probabilistic-Data), which learns
  /// any mechanism's distribution by sampling it.
  static Result<AnalyticalModel> Create(
      const privacy::PrivacyParams& worker_params,
      const privacy::PrivacyParams& task_params,
      AnalyticalMode mode = AnalyticalMode::kPaperNormalApprox);

  /// Workers and requesters may use different privacy levels; the paper's
  /// experiments use equal ones. Dies where Create would return an error.
  AnalyticalModel(const privacy::PrivacyParams& worker_params,
                  const privacy::PrivacyParams& task_params,
                  AnalyticalMode mode = AnalyticalMode::kPaperNormalApprox);

  /// Convenience: both parties at the same privacy level.
  explicit AnalyticalModel(
      const privacy::PrivacyParams& params,
      AnalyticalMode mode = AnalyticalMode::kPaperNormalApprox)
      : AnalyticalModel(params, params, mode) {}

  double ProbReachable(Stage stage, double observed_distance_m,
                       double reach_radius_m) const override;

  /// Scalar loop over the (final, devirtualized) ProbReachable — identical
  /// results, one dispatch for the whole array.
  void ProbReachableBatch(Stage stage, const double* observed_distance_m,
                          const double* reach_radius_m, size_t n,
                          double* out) const override;

  std::string_view name() const override { return "analytical"; }

  AnalyticalMode mode() const { return mode_; }

  /// Per-coordinate variance attributed to one perturbed endpoint under the
  /// current mode (2 r^2/eps^2 paper modes, 3 r^2/eps^2 moment-matched).
  double WorkerCoordinateVariance() const { return var_worker_; }
  double TaskCoordinateVariance() const { return var_task_; }

 private:
  double var_worker_;
  double var_task_;
  AnalyticalMode mode_;
  // kExactLaplace machinery, hoisted out of ProbReachable: the worker-side
  // mechanism adapter (its DiskProbability is the exact U2E answer) and the
  // variance-matched single Laplace standing in for the two-sided U2U noise.
  privacy::PlanarLaplaceMechanism worker_mechanism_;
  privacy::PlanarLaplace u2u_combined_laplace_;
};

}  // namespace scguard::reachability

#endif  // SCGUARD_REACHABILITY_ANALYTICAL_MODEL_H_
