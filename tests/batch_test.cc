#include <gtest/gtest.h>

#include <set>

#include "assign/batch.h"
#include "assign/offline.h"
#include "data/workload.h"
#include "privacy/truncated.h"
#include "reachability/analytical_model.h"
#include "reachability/binary_model.h"
#include "stats/rng.h"
#include "stats/welford.h"

namespace scguard::assign {
namespace {

using privacy::PrivacyParams;

constexpr PrivacyParams kDefault{0.7, 800.0};

Workload NoisyWorkload(int n, uint64_t seed) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {20000, 20000});
  data::WorkloadConfig config;
  config.num_workers = n;
  config.num_tasks = n;
  stats::Rng rng(seed);
  Workload w = data::MakeUniformWorkload(region, config, rng);
  data::PerturbWorkload(kDefault, kDefault, rng, w);
  return w;
}

TEST(BatchMatcherTest, AssignmentsAreValidAndWorkersUnique) {
  const Workload w = NoisyWorkload(80, 1);
  const reachability::AnalyticalModel model(kDefault);
  BatchMatcher matcher(&model, 0.1, /*batch_size=*/10);
  stats::Rng rng(2);
  const MatchResult result = matcher.Run(w, rng);
  EXPECT_GT(result.metrics.assigned_tasks, 0);
  std::set<int64_t> used;
  for (const auto& a : result.assignments) {
    EXPECT_TRUE(used.insert(a.worker_id).second);
    EXPECT_TRUE(w.workers[static_cast<size_t>(a.worker_id)].CanReach(
        w.tasks[static_cast<size_t>(a.task_id)].location));
  }
  EXPECT_EQ(result.metrics.requester_to_worker_msgs,
            result.metrics.accepted_assignments + result.metrics.false_hits);
}

TEST(BatchMatcherTest, ZeroNoiseBatchEqualsOfflinePerBatch) {
  // With exact locations and one big batch, the batch matcher solves the
  // global min-cost matching: utility equals the offline optimum.
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {15000, 15000});
  data::WorkloadConfig config;
  config.num_workers = 50;
  config.num_tasks = 50;
  stats::Rng rng(3);
  Workload w = data::MakeUniformWorkload(region, config, rng);
  for (auto& worker : w.workers) worker.noisy_location = worker.location;
  for (auto& task : w.tasks) task.noisy_location = task.location;

  const reachability::BinaryModel binary;
  BatchMatcher one_batch(&binary, 0.5, /*batch_size=*/50);
  stats::Rng rng_a(4);
  const MatchResult batch_result = one_batch.Run(w, rng_a);
  EXPECT_EQ(batch_result.metrics.false_hits, 0);  // Exact data, no surprises.

  OfflineOptimalMatcher offline(OfflineObjective::kMaxTasks);
  stats::Rng rng_b(5);
  const MatchResult offline_result = offline.Run(w, rng_b);
  EXPECT_EQ(batch_result.metrics.assigned_tasks,
            offline_result.metrics.assigned_tasks);
}

TEST(BatchMatcherTest, LargerBatchesNeverHurtMuch) {
  // Batching trades latency for coordination; under noise the bigger
  // batch should be at least competitive on utility.
  const Workload w = NoisyWorkload(100, 6);
  const reachability::AnalyticalModel model(kDefault);
  BatchMatcher small(&model, 0.1, 1);
  BatchMatcher large(&model, 0.1, 50);
  stats::Rng rng_a(7), rng_b(7);
  const auto small_result = small.Run(w, rng_a);
  const auto large_result = large.Run(w, rng_b);
  EXPECT_GE(large_result.metrics.assigned_tasks + 5,
            small_result.metrics.assigned_tasks);
}

TEST(BatchMatcherTest, NameEncodesBatchSize) {
  const reachability::BinaryModel binary;
  EXPECT_EQ(BatchMatcher(&binary, 0.5, 16).name(), "Batch-16");
}

}  // namespace
}  // namespace scguard::assign
