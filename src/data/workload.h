#ifndef SCGUARD_DATA_WORKLOAD_H_
#define SCGUARD_DATA_WORKLOAD_H_

#include <vector>

#include "assign/entities.h"
#include "common/result.h"
#include "data/trip_model.h"
#include "privacy/privacy_params.h"
#include "stats/rng.h"

namespace scguard::data {

/// How a trip log is turned into an online-assignment instance
/// (paper Sec. V-A).
struct WorkloadConfig {
  int num_workers = 500;  ///< Paper: 500 random workers.
  int num_tasks = 500;    ///< Paper: 500 random tasks.
  double reach_min_m = 1000.0;  ///< R_w ~ Uniform[reach_min, reach_max].
  double reach_max_m = 3000.0;
};

/// Builds a workload following the paper's T-Drive mapping: each sampled
/// taxi becomes a worker located at its most recent (final) drop-off; each
/// sampled pick-up becomes a task, and tasks arrive in pick-up time order.
/// Noisy locations are NOT set; call PerturbWorkload.
///
/// Fails when the trip log has fewer distinct taxis than `num_workers` or
/// fewer trips than `num_tasks`.
Result<assign::Workload> BuildWorkloadFromTrips(const std::vector<Trip>& trips,
                                                const WorkloadConfig& config,
                                                stats::Rng& rng);

/// Applies Geo-I perturbation to every worker and task location, filling
/// their `noisy_location` fields — the device-side step of the protocol
/// (Alg. 1/2 lines 3-4). Workers and requesters may use different privacy
/// levels.
void PerturbWorkload(const privacy::PrivacyParams& worker_params,
                     const privacy::PrivacyParams& task_params,
                     stats::Rng& rng, assign::Workload& workload);

/// Uniform-random workload over a region (used by unit tests and the
/// empirical-model precomputation cross-checks).
assign::Workload MakeUniformWorkload(const geo::BoundingBox& region,
                                     const WorkloadConfig& config,
                                     stats::Rng& rng);

}  // namespace scguard::data

#endif  // SCGUARD_DATA_WORKLOAD_H_
