#include "assign/offline.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <queue>

#include "common/check.h"

namespace scguard::assign {
namespace {

constexpr int kNil = -1;

}  // namespace

std::vector<int> MaxCardinalityMatching(
    const std::vector<std::vector<int>>& adjacency, int num_workers) {
  const int num_tasks = static_cast<int>(adjacency.size());
  std::vector<int> match_task(static_cast<size_t>(num_tasks), kNil);
  std::vector<int> match_worker(static_cast<size_t>(num_workers), kNil);
  std::vector<int> dist(static_cast<size_t>(num_tasks), 0);
  constexpr int kInf = std::numeric_limits<int>::max();

  // BFS builds the layered graph from free tasks; returns true if an
  // augmenting path exists.
  auto bfs = [&]() {
    std::queue<int> queue;
    for (int t = 0; t < num_tasks; ++t) {
      if (match_task[static_cast<size_t>(t)] == kNil) {
        dist[static_cast<size_t>(t)] = 0;
        queue.push(t);
      } else {
        dist[static_cast<size_t>(t)] = kInf;
      }
    }
    bool found = false;
    while (!queue.empty()) {
      const int t = queue.front();
      queue.pop();
      for (int w : adjacency[static_cast<size_t>(t)]) {
        const int next = match_worker[static_cast<size_t>(w)];
        if (next == kNil) {
          found = true;
        } else if (dist[static_cast<size_t>(next)] == kInf) {
          dist[static_cast<size_t>(next)] = dist[static_cast<size_t>(t)] + 1;
          queue.push(next);
        }
      }
    }
    return found;
  };

  // DFS along the layered graph.
  std::function<bool(int)> dfs = [&](int t) {
    for (int w : adjacency[static_cast<size_t>(t)]) {
      const int next = match_worker[static_cast<size_t>(w)];
      if (next == kNil ||
          (dist[static_cast<size_t>(next)] == dist[static_cast<size_t>(t)] + 1 &&
           dfs(next))) {
        match_task[static_cast<size_t>(t)] = w;
        match_worker[static_cast<size_t>(w)] = t;
        return true;
      }
    }
    dist[static_cast<size_t>(t)] = std::numeric_limits<int>::max();
    return false;
  };

  while (bfs()) {
    for (int t = 0; t < num_tasks; ++t) {
      if (match_task[static_cast<size_t>(t)] == kNil) dfs(t);
    }
  }
  return match_task;
}

namespace {

// Hungarian with potentials (e-maxx formulation, 1-indexed) over a
// rectangular matrix with rows <= cols, entries already finite. O(rows^2 *
// cols). Returns col index per row.
std::vector<int> HungarianRect(
    const std::function<double(int, int)>& entry, int rows, int cols) {
  SCGUARD_CHECK(rows <= cols);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(static_cast<size_t>(rows) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(cols) + 1, 0.0);
  std::vector<int> p(static_cast<size_t>(cols) + 1, 0);  // Col -> row.
  std::vector<int> way(static_cast<size_t>(cols) + 1, 0);
  for (int i = 1; i <= rows; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<size_t>(cols) + 1, kInf);
    std::vector<bool> used(static_cast<size_t>(cols) + 1, false);
    do {
      used[static_cast<size_t>(j0)] = true;
      const int i0 = p[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= cols; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        const double cur = entry(i0 - 1, j - 1) - u[static_cast<size_t>(i0)] -
                           v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= cols; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(p[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<size_t>(j0)] != 0);
    do {
      const int j1 = way[static_cast<size_t>(j0)];
      p[static_cast<size_t>(j0)] = p[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }
  std::vector<int> row_match(static_cast<size_t>(rows), kNil);
  for (int j = 1; j <= cols; ++j) {
    const int i = p[static_cast<size_t>(j)];
    if (i > 0) row_match[static_cast<size_t>(i - 1)] = j - 1;
  }
  return row_match;
}

}  // namespace

std::vector<int> MinCostMaxMatching(const std::vector<std::vector<double>>& cost) {
  const int num_tasks = static_cast<int>(cost.size());
  if (num_tasks == 0) return {};
  const int num_workers = static_cast<int>(cost[0].size());
  for (const auto& row : cost) {
    SCGUARD_CHECK(static_cast<int>(row.size()) == num_workers);
  }
  if (num_workers == 0) {
    return std::vector<int>(static_cast<size_t>(num_tasks), kNil);
  }

  // Infeasible pairs are offset to a "cardinality bonus" B above every
  // feasible cost, so the min-cost complete matching of the smaller side
  // maximizes the number of feasible pairs first.
  const int n = std::max(num_tasks, num_workers);
  double max_feasible = 0.0;
  for (const auto& row : cost) {
    for (double c : row) {
      if (c < kInfeasible) max_feasible = std::max(max_feasible, c);
    }
  }
  const double bonus = (max_feasible + 1.0) * (n + 1);
  auto task_worker = [&](int t, int w) -> double {
    const double c = cost[static_cast<size_t>(t)][static_cast<size_t>(w)];
    return c >= kInfeasible ? bonus : c;
  };

  // Run the rectangular Hungarian with the smaller side as rows: matching
  // every row is then always possible and no padding is needed.
  std::vector<int> match_task(static_cast<size_t>(num_tasks), kNil);
  if (num_tasks <= num_workers) {
    const std::vector<int> rows =
        HungarianRect(task_worker, num_tasks, num_workers);
    for (int t = 0; t < num_tasks; ++t) {
      const int w = rows[static_cast<size_t>(t)];
      if (w >= 0 &&
          cost[static_cast<size_t>(t)][static_cast<size_t>(w)] < kInfeasible) {
        match_task[static_cast<size_t>(t)] = w;
      }
    }
  } else {
    const std::vector<int> cols = HungarianRect(
        [&task_worker](int w, int t) { return task_worker(t, w); }, num_workers,
        num_tasks);
    for (int w = 0; w < num_workers; ++w) {
      const int t = cols[static_cast<size_t>(w)];
      if (t >= 0 &&
          cost[static_cast<size_t>(t)][static_cast<size_t>(w)] < kInfeasible) {
        match_task[static_cast<size_t>(t)] = w;
      }
    }
  }
  return match_task;
}

OfflineOptimalMatcher::OfflineOptimalMatcher(OfflineObjective objective)
    : objective_(objective) {}

std::string OfflineOptimalMatcher::name() const {
  return objective_ == OfflineObjective::kMaxTasks ? "Offline-MaxTasks"
                                                   : "Offline-MinCost";
}

MatchResult OfflineOptimalMatcher::Run(const Workload& workload,
                                       stats::Rng& /*rng*/) {
  const auto start = std::chrono::steady_clock::now();
  MatchResult result;
  RunMetrics& m = result.metrics;
  m.num_tasks = static_cast<int64_t>(workload.tasks.size());
  m.num_workers = static_cast<int64_t>(workload.workers.size());

  std::vector<int> match;
  if (objective_ == OfflineObjective::kMaxTasks) {
    std::vector<std::vector<int>> adjacency(workload.tasks.size());
    for (size_t t = 0; t < workload.tasks.size(); ++t) {
      for (size_t w = 0; w < workload.workers.size(); ++w) {
        if (workload.workers[w].CanReach(workload.tasks[t].location)) {
          adjacency[t].push_back(static_cast<int>(w));
        }
      }
    }
    match = MaxCardinalityMatching(adjacency,
                                   static_cast<int>(workload.workers.size()));
  } else {
    std::vector<std::vector<double>> cost(
        workload.tasks.size(),
        std::vector<double>(workload.workers.size(), kInfeasible));
    for (size_t t = 0; t < workload.tasks.size(); ++t) {
      for (size_t w = 0; w < workload.workers.size(); ++w) {
        if (workload.workers[w].CanReach(workload.tasks[t].location)) {
          cost[t][w] =
              geo::Distance(workload.workers[w].location, workload.tasks[t].location);
        }
      }
    }
    match = MinCostMaxMatching(cost);
  }

  for (size_t t = 0; t < match.size(); ++t) {
    if (match[t] == kNil) continue;
    const Worker& worker = workload.workers[static_cast<size_t>(match[t])];
    const Task& task = workload.tasks[t];
    const double travel = geo::Distance(worker.location, task.location);
    result.assignments.push_back({task.id, worker.id, travel});
    m.assigned_tasks += 1;
    m.accepted_assignments += 1;
    m.travel_sum_m += travel;
  }
  m.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace scguard::assign
