#ifndef SCGUARD_STATS_RNG_H_
#define SCGUARD_STATS_RNG_H_

#include <cstdint>

namespace scguard::stats {

/// Deterministic pseudo-random generator (xoshiro256++ seeded via SplitMix64).
///
/// Every randomized component in SCGuard draws from an explicitly seeded Rng
/// so that experiments are reproducible; the paper averages over 10 random
/// seeds and so do the benches. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  uint64_t operator()();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Uniform double in (0, 1] — never returns exactly 0, which inverse-CDF
  /// samplers must avoid.
  double UniformDoublePositive();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal deviate (polar Marsaglia method).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// A statistically independent generator derived from this one's seed and
  /// `stream`; forking with distinct streams gives decorrelated substreams.
  Rng Fork(uint64_t stream) const;

 private:
  uint64_t s_[4];
  uint64_t seed_;
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace scguard::stats

#endif  // SCGUARD_STATS_RNG_H_
