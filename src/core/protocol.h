#ifndef SCGUARD_CORE_PROTOCOL_H_
#define SCGUARD_CORE_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "assign/stages/candidate_stage.h"
#include "assign/stages/rank_stage.h"
#include "geo/point.h"
#include "privacy/mechanism.h"
#include "privacy/privacy_params.h"
#include "reachability/kernel.h"
#include "reachability/model.h"
#include "stats/rng.h"

namespace scguard::core {

/// What a worker's device sends to the server when registering: only the
/// Geo-I perturbed location and the reach radius ever leave the device.
struct WorkerRegistration {
  int64_t worker_id = 0;
  geo::Point noisy_location;
  double reach_radius_m = 0.0;
};

/// What a requester's device sends to the server for a new task.
struct TaskRequest {
  int64_t task_id = 0;
  geo::Point noisy_location;
};

/// What the server forwards back to the requester for each candidate.
struct CandidateWorker {
  int64_t worker_id = 0;
  geo::Point noisy_location;
  double reach_radius_m = 0.0;
};

/// A worker's device: holds the true location privately; exposes only the
/// perturbed registration (U2U input) and the E2E accept/reject decision.
class WorkerDevice {
 public:
  WorkerDevice(int64_t id, geo::Point true_location, double reach_radius_m,
               const privacy::PrivacyParams& params);

  /// Perturbs the location (consuming the device's Geo-I budget once) and
  /// returns the registration message for the server.
  WorkerRegistration Register(stats::Rng& rng);

  /// E2E stage: the requester disclosed the exact task location; accept
  /// iff it lies within this worker's spatial region.
  bool HandleTaskOffer(geo::Point exact_task_location) const;

  int64_t id() const { return id_; }
  double reach_radius_m() const { return reach_radius_m_; }
  const privacy::PrivacyParams& params() const { return params_; }

  /// Test/metrics support only — a real deployment never exports this.
  geo::Point true_location_for_testing() const { return true_location_; }

 private:
  int64_t id_;
  geo::Point true_location_;
  double reach_radius_m_;
  privacy::PrivacyParams params_;
  /// The device's obfuscation mechanism, built once from the params' spec
  /// (grid kinds need spec.region pinned — a device has no ambient region).
  /// shared_ptr keeps the device copyable for vector storage.
  std::shared_ptr<const privacy::Mechanism> mechanism_;
};

/// A requester's device: owns one task, perturbs its location for the
/// server, and runs the U2E ranking locally over the candidate list.
class RequesterDevice {
 public:
  RequesterDevice(int64_t task_id, geo::Point true_task_location,
                  const privacy::PrivacyParams& params);

  /// Perturbs the task location and returns the submission message.
  TaskRequest Submit(stats::Rng& rng);

  /// U2E stage: orders `candidates` by reachability (scored by `model`
  /// against the *exact* task location, which only this device knows),
  /// dropping those below `beta`. The returned order is the contact plan;
  /// the coordinator discloses the task location to one worker at a time.
  std::vector<CandidateWorker> RankCandidates(
      const std::vector<CandidateWorker>& candidates,
      const reachability::ReachabilityModel& model, double beta) const;

  int64_t task_id() const { return task_id_; }
  geo::Point exact_task_location() const { return true_task_location_; }

 private:
  int64_t task_id_;
  geo::Point true_task_location_;
  privacy::PrivacyParams params_;
  /// See WorkerDevice::mechanism_.
  std::shared_ptr<const privacy::Mechanism> mechanism_;
  /// Lazily built U2E stage plus ranking scratch, reused across
  /// RankCandidates calls so the per-task hot path stops allocating once
  /// capacities settle; rebuilt if a caller switches models. Mutable
  /// because ranking is logically const (the device's observable state —
  /// task id, location, budget — never changes).
  mutable std::optional<assign::U2eRankStage> stage_;
  mutable const reachability::ReachabilityModel* stage_model_ = nullptr;
  mutable std::vector<std::pair<double, const CandidateWorker*>> scored_;
};

/// The untrusted SC server: sees only registrations and task requests
/// (perturbed data), performs the U2U candidate search, and tracks worker
/// availability. By construction it never holds an exact location. A thin
/// party adapter over assign::U2uCandidateStage (DESIGN.md section 10):
/// the message framing lives here, the filter itself is the shared stage.
class TaskingServer {
 public:
  /// `alpha` is the U2U threshold applied to `model` probabilities.
  /// `kernel.alpha_thresholds` answers the filter via the inverted
  /// critical-distance compare (exact decisions, see kernel.h).
  TaskingServer(const reachability::ReachabilityModel* model, double alpha,
                reachability::KernelOptions kernel = {});

  void RegisterWorker(const WorkerRegistration& registration);

  /// U2U stage: candidate workers for the request among those still
  /// available.
  std::vector<CandidateWorker> FindCandidates(const TaskRequest& request) const;

  /// Called when a worker accepted a task (it leaves the pool).
  void MarkAssigned(int64_t worker_id);

  size_t available_workers() const;

 private:
  /// Registration messages in arrival order; stage worker indices equal
  /// positions here (the stage registers them in the same order).
  std::vector<WorkerRegistration> workers_;
  /// The server object models a single logical party and is not called
  /// concurrently, so a mutable stage behind the const query keeps the
  /// message-level API unchanged (the stage memoizes thresholds and scan
  /// state on first use, as the lazy threshold cache did before it).
  mutable assign::U2uCandidateStage stage_;
};

/// Message counters of one protocol execution.
struct ProtocolTrace {
  int64_t worker_registrations = 0;
  int64_t task_requests = 0;
  int64_t candidate_lists_sent = 0;    ///< Server -> requester.
  int64_t task_location_disclosures = 0;  ///< Requester -> worker (E2E).
  int64_t rejections = 0;              ///< False hits.
};

/// Outcome of assigning one task through the full three-stage protocol.
struct TaskOutcome {
  int64_t task_id = 0;
  std::optional<int64_t> assigned_worker;
  int64_t candidates = 0;
  int64_t disclosures = 0;
};

/// Drives the three-stage protocol end to end for a fleet of worker
/// devices and a stream of requester devices. This is the reference
/// implementation of SCGuard's dataflow (Fig. 2); assign::ScGuardEngine is
/// its batch-vectorized equivalent used by the experiment harness (an
/// integration test pins them to identical outputs).
class ProtocolCoordinator {
 public:
  /// Neither pointer is owned. `u2e_model` scores the requester-side
  /// ranking; `beta` cancels tasks whose best candidate scores below it.
  ProtocolCoordinator(TaskingServer* server,
                      const reachability::ReachabilityModel* u2e_model,
                      double beta);

  /// Runs stages U2U -> U2E -> E2E for one task. `request` must be the
  /// message `requester` produced via Submit; `workers` must contain every
  /// registered device with worker ids equal to their index.
  TaskOutcome AssignTask(const RequesterDevice& requester,
                         const TaskRequest& request,
                         const std::vector<WorkerDevice>& workers);

  const ProtocolTrace& trace() const { return trace_; }

 private:
  TaskingServer* server_;
  const reachability::ReachabilityModel* u2e_model_;
  double beta_;
  ProtocolTrace trace_;
};

}  // namespace scguard::core

#endif  // SCGUARD_CORE_PROTOCOL_H_
