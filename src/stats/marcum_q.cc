#include "stats/marcum_q.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/gamma.h"

namespace scguard::stats {
namespace {

constexpr double kTermTolerance = 1e-16;
constexpr int kMaxTerms = 100000;

double Clamp01(double p) { return std::min(1.0, std::max(0.0, p)); }

}  // namespace

double NoncentralChiSquaredCdf(double k, double lambda, double x) {
  SCGUARD_CHECK(k > 0.0 && lambda >= 0.0);
  if (x <= 0.0) return 0.0;
  if (lambda == 0.0) return RegularizedGammaP(k / 2.0, x / 2.0);

  const double m = lambda / 2.0;  // Poisson intensity of the mixture index.
  const double y = x / 2.0;       // Gamma argument.

  // Start both sweeps at the Poisson mode so the largest weight is computed
  // first (directly in log space) and recurrences only shrink terms.
  const long j0 = static_cast<long>(m);
  const double j0d = static_cast<double>(j0);

  // w(j) = e^-m m^j / j!, the Poisson weight.
  const double log_w0 = -m + j0d * std::log(m) - LogGamma(j0d + 1.0);
  // g(j) = P(Gamma(j + k/2) <= y), the central chi-squared CDF piece.
  const double g0 = RegularizedGammaP(j0d + k / 2.0, y);
  // t(j) = e^-y y^(j + k/2) / Gamma(j + k/2 + 1) satisfies
  // g(j) - g(j+1) = t(j), enabling O(1) per-term updates of g.
  const double log_t0 =
      -y + (j0d + k / 2.0) * std::log(y) - LogGamma(j0d + k / 2.0 + 1.0);

  double sum = std::exp(log_w0) * g0;

  // Upward sweep: j = j0+1, j0+2, ...
  {
    double w = std::exp(log_w0);
    double g = g0;
    double t = std::exp(log_t0);
    for (long j = j0 + 1; j < j0 + kMaxTerms; ++j) {
      const double jd = static_cast<double>(j);
      w *= m / jd;
      g -= t;
      g = std::max(g, 0.0);
      t *= y / (jd + k / 2.0);
      const double term = w * g;
      sum += term;
      if (term < kTermTolerance && w < kTermTolerance) break;
    }
  }

  // Downward sweep: j = j0-1, ..., 0.
  {
    double w = std::exp(log_w0);
    double g = g0;
    double t = std::exp(log_t0);
    for (long j = j0 - 1; j >= 0; --j) {
      const double jd = static_cast<double>(j);
      w *= (jd + 1.0) / m;
      t *= (jd + k / 2.0 + 1.0) / y;
      g += t;
      g = std::min(g, 1.0);
      const double term = w * g;
      sum += term;
      if (term < kTermTolerance && w < kTermTolerance) break;
    }
  }

  return Clamp01(sum);
}

double MarcumQ1(double a, double b) {
  SCGUARD_CHECK(a >= 0.0 && b >= 0.0);
  if (b == 0.0) return 1.0;
  if (a == 0.0) return std::exp(-b * b / 2.0);  // Rayleigh tail.
  return Clamp01(1.0 - NoncentralChiSquaredCdf(2.0, a * a, b * b));
}

}  // namespace scguard::stats
