# Empty compiler generated dependencies file for bench_fig6_baseline_accuracy.
# This may be replaced when dependencies are built.
