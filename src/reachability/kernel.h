#ifndef SCGUARD_REACHABILITY_KERNEL_H_
#define SCGUARD_REACHABILITY_KERNEL_H_

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "reachability/model.h"

namespace scguard::reachability {

/// Evaluation-kernel knobs for the protocol hot path (engine U2U filter and
/// U2E scoring). Defaults are thresholds-on / LUT-off: the threshold path is
/// exact (bit-identical assignment decisions), the LUT trades a bounded
/// probability error for speed and must be opted into.
struct KernelOptions {
  /// Replace the per-pair `ProbReachable >= alpha` U2U filter by a
  /// precomputed critical-distance compare (exact; see AlphaThresholdCache).
  bool alpha_thresholds = true;

  /// Score the U2E stage through an interpolated lookup table instead of
  /// direct model evaluation. Bounded absolute error (lut_max_abs_error) on
  /// every returned probability; changes ranking only where two candidates
  /// score within the bound of each other. Off by default.
  bool u2e_lut = false;

  /// Initial observed-distance grid spacing of the LUT; halved until the
  /// construction-time error check passes.
  double lut_step_m = 50.0;

  /// Max absolute probability error the LUT is verified against.
  double lut_max_abs_error = 1e-4;

  /// Probability margin separating the certain-accept / certain-reject
  /// regions from the direct-evaluation band of the threshold filter. Must
  /// dominate the model's own evaluation noise around the alpha crossing
  /// (ulp-level for the closed forms); the defaults leave nine decades of
  /// headroom.
  double threshold_margin = 1e-9;
};

/// Bit pattern of a radius, used as the memoization key (exact-value
/// classes; quantize radii upstream to share tables across near-equal
/// values).
inline uint64_t RadiusKey(double reach_radius_m) {
  uint64_t key = 0;
  static_assert(sizeof(key) == sizeof(reach_radius_m));
  std::memcpy(&key, &reach_radius_m, sizeof(key));
  return key;
}

/// The alpha filter for one (stage, alpha, reach_radius), inverted into
/// distance space. The decision contract, relied on for bit-identical
/// engine output:
///   d_sq <= accept_below_sq  =>  ProbReachable(stage, d, r) >= alpha
///   d_sq >= reject_above_sq  =>  ProbReachable(stage, d, r) <  alpha
/// where `d` is the rounded Euclidean distance (std::hypot) whose square
/// `d_sq` approximates; the squared bounds carry enough slack that hypot
/// rounding can never move a point across a certain region. Distances in
/// the open band between the two bounds must be resolved by one direct
/// model evaluation (AlphaThresholdCache::IsCandidate does this); the band
/// is a few nanometres wide for the closed-form models and at most the
/// non-monotone bucket range for empirical tables.
struct AlphaThreshold {
  double accept_below_m = -1.0;   ///< d <= this => candidate. < 0: none.
  double reject_above_m = 0.0;    ///< d >= this => not a candidate.
  double accept_below_sq = -1.0;  ///< Squared-space accept bound (slacked).
  double reject_above_sq = 0.0;   ///< Squared-space reject bound (slacked).

  /// True when the decision at squared distance `d_sq` cannot be taken from
  /// the precomputed bounds and needs one direct evaluation.
  bool NeedsExactEval(double d_sq) const {
    return d_sq > accept_below_sq && d_sq < reject_above_sq;
  }
};

/// Inverts the alpha filter once per distinct (stage, reach_radius): because
/// ProbReachable is monotone non-increasing in the observed distance for
/// every model (the geo-indistinguishability threshold trick of Andres et
/// al., CCS'13), `p >= alpha` is a critical-distance compare. Construction
/// is per-model:
///  * BinaryModel: d* = R exactly, no search.
///  * EmpiricalModel: the probability is constant per observed-distance
///    bucket, so the accept set is read off the bucket row exactly — no
///    monotonicity assumption; a non-monotone middle range stays in the
///    direct-evaluation band.
///  * Anything else (the analytical closed forms): bisection of the
///    monotone ProbReachable to the alpha -/+ margin levels.
/// Thresholds are memoized by radius bit pattern; a workload with shared
/// radii pays one inversion per distinct value.
///
/// Not thread-safe (lazy memoization); use one instance per thread or run.
class AlphaThresholdCache {
 public:
  /// `model` must outlive the cache. Requires alpha in (0, 1].
  AlphaThresholdCache(const ReachabilityModel* model, Stage stage,
                      double alpha, double margin = 1e-9);

  /// The inverted filter for this radius (memoized).
  const AlphaThreshold& For(double reach_radius_m);

  /// Read-only lookup of an already-memoized radius; nullptr when the
  /// radius was never inverted. Unlike For(), never mutates, so concurrent
  /// readers may share a warmed cache — the parallel engine scan resolves
  /// its in-band workers through this after prewarming every worker radius
  /// (DESIGN.md section 9).
  const AlphaThreshold* Lookup(double reach_radius_m) const {
    const auto it = by_radius_.find(RadiusKey(reach_radius_m));
    return it == by_radius_.end() ? nullptr : &it->second;
  }

  /// Exactly `model->ProbReachable(stage, d, r) >= alpha`, via the
  /// threshold compare plus (rarely) one direct evaluation in the band.
  bool IsCandidate(double observed_distance_m, double reach_radius_m);

  /// Band resolutions that required a direct model call (test support).
  int64_t exact_evals() const { return exact_evals_; }
  size_t size() const { return by_radius_.size(); }

  const ReachabilityModel* model() const { return model_; }
  Stage stage() const { return stage_; }
  double alpha() const { return alpha_; }

 private:
  AlphaThreshold Invert(double reach_radius_m) const;

  const ReachabilityModel* model_;
  Stage stage_;
  double alpha_;
  double margin_;
  int64_t exact_evals_ = 0;
  std::unordered_map<uint64_t, AlphaThreshold> by_radius_;
};

/// Opt-in interpolated probability table for the U2E scoring path: one
/// linear-interpolation grid over observed distance per distinct reach
/// radius (the radius dimension is never interpolated, so the only error
/// source is the distance grid). Each table is verified at construction —
/// the grid is refined until both the monotone bracket bound and sampled
/// interpolation residuals sit under KernelOptions::lut_max_abs_error —
/// so every Prob() return is within that bound of the direct evaluation.
///
/// Worth enabling only when the number of scoring queries per distinct
/// radius clearly exceeds the table build cost (several hundred direct
/// evaluations); see DESIGN.md section 8. Not thread-safe (lazy per-radius
/// builds).
class KernelLut {
 public:
  /// `model` must outlive the LUT.
  KernelLut(const ReachabilityModel* model, Stage stage,
            const KernelOptions& options);

  /// Interpolated Pr(reachable | d, r); |result - direct| is bounded by
  /// options.lut_max_abs_error.
  double Prob(double observed_distance_m, double reach_radius_m);

  /// Largest interpolation residual observed while verifying any built
  /// table (always <= options.lut_max_abs_error).
  double worst_verified_error() const { return worst_verified_error_; }
  size_t tables_built() const { return by_radius_.size(); }

 private:
  struct Table {
    double step = 0.0;
    double inv_step = 0.0;
    double max_d = 0.0;          ///< Grid end; beyond it the tail value.
    double tail_value = 0.0;     ///< Probability at/after max_d (tiny).
    std::vector<double> values;  ///< Prob at i * step, i = 0..n.
  };

  Table Build(double reach_radius_m);

  const ReachabilityModel* model_;
  Stage stage_;
  KernelOptions options_;
  double worst_verified_error_ = 0.0;
  std::unordered_map<uint64_t, Table> by_radius_;
};

/// Structure-of-arrays snapshot of the per-worker state the U2U filter
/// touches, so the per-task scan is cache-linear instead of striding
/// Worker structs. `accept_below_sq` / `reject_above_sq` are only filled
/// when the alpha-threshold kernel is on.
struct WorkerFilterSoA {
  std::vector<double> x;               ///< Noisy location east, meters.
  std::vector<double> y;               ///< Noisy location north, meters.
  std::vector<double> reach_radius_m;
  std::vector<double> accept_below_sq;
  std::vector<double> reject_above_sq;
  std::vector<uint8_t> matched;        ///< 1 once assigned.

  void Resize(size_t n) {
    x.resize(n);
    y.resize(n);
    reach_radius_m.resize(n);
    matched.assign(n, 0);
  }
  size_t size() const { return x.size(); }
};

/// Branch-free certain-band classification of the U2U alpha filter over a
/// list of worker indices (DESIGN.md section 9): each index i is trichotomized
/// by comparing the squared distance from (task_x, task_y) to the worker's
/// noisy location against the precomputed per-worker certain bounds:
///  * accept: d_sq <= soa.accept_below_sq[i]   (certain candidate),
///  * band:   strictly between the two bounds  (one direct eval needed),
///  * reject: d_sq >= soa.reject_above_sq[i]   (dropped).
/// Both outputs preserve the input order (ascending input => ascending
/// output). Dispatches once per process through a CPUID check (DESIGN.md
/// §11) to the widest available implementation — currently the explicit
/// 4-lane AVX2 kernel on x86-64 hosts that support it — with the scalar
/// loop as the bit-identical fallback everywhere else. Requires
/// soa.accept_below_sq / soa.reject_above_sq to be filled for every listed
/// index.
void ClassifyCertainBand(const WorkerFilterSoA& soa, const uint32_t* indices,
                         size_t count, double task_x, double task_y,
                         std::vector<uint32_t>& accept,
                         std::vector<uint32_t>& band);

/// The portable reference implementation: a fixed-trip-count pass over the
/// contiguous SoA arrays with unconditional slot writes + predicated
/// increments (no data-dependent branches), so compilers can vectorize it.
/// Compiled at the baseline target (no FMA contraction), which pins the
/// rounding of d_sq = dx*dx + dy*dy — the bit-identity anchor every SIMD
/// variant is verified against.
void ClassifyCertainBandScalar(const WorkerFilterSoA& soa,
                               const uint32_t* indices, size_t count,
                               double task_x, double task_y,
                               std::vector<uint32_t>& accept,
                               std::vector<uint32_t>& band);

#if defined(SCGUARD_HAVE_AVX2)
/// Explicit 4-lane AVX2 kernel (kernel_avx2.cc, the only TU built with
/// -mavx2): gathers x/y/bounds through the index vector, evaluates the
/// trichotomy as explicit mul/mul/add (never FMA — -mavx2 does not enable
/// it — so lane rounding equals the scalar loop's), and left-packs
/// surviving lane indices with a shuffle LUT. Bit-identical outputs to
/// ClassifyCertainBandScalar for any input; only callable on AVX2 CPUs.
/// Worker indices must be < 2^31 (vpgatherdpd treats them as signed).
void ClassifyCertainBandAvx2(const WorkerFilterSoA& soa,
                             const uint32_t* indices, size_t count,
                             double task_x, double task_y,
                             std::vector<uint32_t>& accept,
                             std::vector<uint32_t>& band);
#endif  // SCGUARD_HAVE_AVX2

/// Cell-major mirror of the scoring-side worker state (DESIGN.md §13): the
/// same per-worker columns the U2U filter reads, but laid out in a
/// GridIndex's CSR cell order (including the per-slice headroom rows), so a
/// cell's members are one contiguous run instead of a scattered gather
/// through `indices`. `id` maps each row back to the engine worker index;
/// `expanded_r` is the pruner's expanded rectangle radius, carried so
/// boundary cells can fuse the rectangle admission test with the band
/// classification. Rows outside the owning index's live slices are headroom
/// with unspecified contents. Owned and synced by assign::CellScoreMirror.
struct CellMajorMirror {
  std::vector<uint32_t> id;
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> expanded_r;
  std::vector<double> accept_below_sq;
  std::vector<double> reject_above_sq;

  void Resize(size_t n) {
    id.resize(n);
    x.resize(n);
    y.resize(n);
    expanded_r.resize(n);
    accept_below_sq.resize(n);
    reject_above_sq.resize(n);
  }
  size_t size() const { return id.size(); }
};

/// ClassifyCertainBand over the contiguous mirror rows [begin, begin+count)
/// instead of a gathered index list: same trichotomy, same rounding (no
/// FMA), but every load is sequential. **Appends** the surviving rows' `id`
/// values to `accept` / `band` (existing contents are preserved — the
/// mirror path accumulates several cells into one output), in row order,
/// which for a live index slice is ascending id order. Dispatches through
/// the same CPUID mechanism as ClassifyCertainBand; bit-identical decisions
/// to running the scalar gather loop over the same workers.
void ClassifyCertainBandRange(const CellMajorMirror& m, size_t begin,
                              size_t count, double task_x, double task_y,
                              std::vector<uint32_t>& accept,
                              std::vector<uint32_t>& band);

/// Range classification for *boundary* cells: fuses the per-member pruner
/// rectangle admission test — bit-identical to GridIndex::Query's
/// `(x - er <= q.max_x) & (q.min_x <= x + er) & (y - er <= q.max_y) &
/// (q.min_y <= y + er)` member test, reading `expanded_r` — with the alpha
/// trichotomy, so rectangle-rejected members never produce a d_sq
/// classification. Appends like ClassifyCertainBandRange and returns the
/// number of rows the rectangle admitted (the gather path's "scanned"
/// contribution for the cell). The query box is passed as four doubles to
/// keep the kernel layer free of geo types.
size_t ClassifyCertainBandRangeRect(const CellMajorMirror& m, size_t begin,
                                    size_t count, double task_x,
                                    double task_y, double q_min_x,
                                    double q_min_y, double q_max_x,
                                    double q_max_y,
                                    std::vector<uint32_t>& accept,
                                    std::vector<uint32_t>& band);

/// Portable reference implementations (bit-identity anchors; same
/// unconditional-write/predicated-increment discipline as
/// ClassifyCertainBandScalar).
void ClassifyCertainBandRangeScalar(const CellMajorMirror& m, size_t begin,
                                    size_t count, double task_x,
                                    double task_y,
                                    std::vector<uint32_t>& accept,
                                    std::vector<uint32_t>& band);
size_t ClassifyCertainBandRangeRectScalar(
    const CellMajorMirror& m, size_t begin, size_t count, double task_x,
    double task_y, double q_min_x, double q_min_y, double q_max_x,
    double q_max_y, std::vector<uint32_t>& accept, std::vector<uint32_t>& band);

#if defined(SCGUARD_HAVE_AVX2)
/// 4-lane AVX2 range variants (kernel_avx2.cc): contiguous _mm256_loadu_pd
/// column loads replace the index gathers, ids left-pack through the same
/// shuffle LUT as ClassifyCertainBandAvx2. Bit-identical outputs to the
/// scalar range loops; only callable on AVX2 CPUs.
void ClassifyCertainBandRangeAvx2(const CellMajorMirror& m, size_t begin,
                                  size_t count, double task_x, double task_y,
                                  std::vector<uint32_t>& accept,
                                  std::vector<uint32_t>& band);
size_t ClassifyCertainBandRangeRectAvx2(
    const CellMajorMirror& m, size_t begin, size_t count, double task_x,
    double task_y, double q_min_x, double q_min_y, double q_max_x,
    double q_max_y, std::vector<uint32_t>& accept, std::vector<uint32_t>& band);
#endif  // SCGUARD_HAVE_AVX2

/// Which ClassifyCertainBand implementation the dispatcher resolves to.
enum class ClassifySimd { kScalar, kAvx2 };

/// True when the running CPU reports AVX2 (always false off x86).
bool CpuSupportsAvx2();

/// The implementation the next ClassifyCertainBand call will run (resolves
/// the lazy CPUID dispatch if it has not happened yet).
ClassifySimd ActiveClassifySimd();

/// Forces the dispatch (test/bench support). Requests for kAvx2 fall back
/// to scalar when the binary or CPU lacks AVX2 — check ActiveClassifySimd
/// afterwards. Not synchronized against in-flight ClassifyCertainBand
/// calls; switch only between scans.
void SetClassifySimd(ClassifySimd simd);

/// Restores CPUID auto-dispatch after a SetClassifySimd override.
void ResetClassifySimd();

}  // namespace scguard::reachability

#endif  // SCGUARD_REACHABILITY_KERNEL_H_
