#include "data/csv_loader.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/str_format.h"

namespace scguard::data {
namespace {

Result<double> ParseDouble(std::string_view field, int line_no) {
  field = StripAsciiWhitespace(field);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    return Status::InvalidArgument(
        StrCat("line ", line_no, ": bad number '", std::string(field), "'"));
  }
  return value;
}

Result<std::vector<Trip>> LoadTripsImpl(std::istream& is, bool latlon,
                                        const geo::LocalProjection* projection) {
  std::vector<Trip> trips;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    if (line_no == 1 && stripped.substr(0, 7) == "taxi_id") continue;  // Header.
    const std::vector<std::string> fields = StrSplit(stripped, ',');
    if (fields.size() != 7) {
      return Status::InvalidArgument(
          StrCat("line ", line_no, ": expected 7 fields, got ", fields.size()));
    }
    SCGUARD_ASSIGN_OR_RETURN(const double taxi_id, ParseDouble(fields[0], line_no));
    SCGUARD_ASSIGN_OR_RETURN(const double pt, ParseDouble(fields[1], line_no));
    SCGUARD_ASSIGN_OR_RETURN(const double pa, ParseDouble(fields[2], line_no));
    SCGUARD_ASSIGN_OR_RETURN(const double pb, ParseDouble(fields[3], line_no));
    SCGUARD_ASSIGN_OR_RETURN(const double dt, ParseDouble(fields[4], line_no));
    SCGUARD_ASSIGN_OR_RETURN(const double da, ParseDouble(fields[5], line_no));
    SCGUARD_ASSIGN_OR_RETURN(const double db, ParseDouble(fields[6], line_no));
    Trip trip;
    trip.taxi_id = static_cast<int64_t>(taxi_id);
    trip.pickup_time_s = pt;
    trip.dropoff_time_s = dt;
    if (latlon) {
      trip.pickup = projection->Forward({/*lat=*/pb, /*lon=*/pa});
      trip.dropoff = projection->Forward({/*lat=*/db, /*lon=*/da});
    } else {
      trip.pickup = {pa, pb};
      trip.dropoff = {da, db};
    }
    if (trip.dropoff_time_s < trip.pickup_time_s) {
      return Status::InvalidArgument(
          StrCat("line ", line_no, ": dropoff precedes pickup"));
    }
    trips.push_back(trip);
  }
  return trips;
}

}  // namespace

Result<std::vector<Trip>> LoadTripsCsv(std::istream& is) {
  return LoadTripsImpl(is, /*latlon=*/false, nullptr);
}

Result<std::vector<Trip>> LoadTripsCsvLatLon(
    std::istream& is, const geo::LocalProjection& projection) {
  return LoadTripsImpl(is, /*latlon=*/true, &projection);
}

void WriteTripsCsv(const std::vector<Trip>& trips, std::ostream& os) {
  os.precision(12);  // Meter coordinates round-trip losslessly in practice.
  os << "taxi_id,pickup_time_s,pickup_x,pickup_y,dropoff_time_s,dropoff_x,dropoff_y\n";
  for (const auto& t : trips) {
    os << t.taxi_id << ',' << t.pickup_time_s << ',' << t.pickup.x << ','
       << t.pickup.y << ',' << t.dropoff_time_s << ',' << t.dropoff.x << ','
       << t.dropoff.y << '\n';
  }
}

Result<std::vector<Trip>> LoadTripsCsvFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IOError(StrCat("cannot open ", path));
  return LoadTripsCsv(file);
}

}  // namespace scguard::data
