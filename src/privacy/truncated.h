#ifndef SCGUARD_PRIVACY_TRUNCATED_H_
#define SCGUARD_PRIVACY_TRUNCATED_H_

#include "geo/bbox.h"
#include "privacy/geo_ind.h"

namespace scguard::privacy {

/// How out-of-region perturbations are handled.
enum class TruncationMode {
  /// No truncation: reports may land outside the deployment region (the
  /// paper's setting — the server just sees far-away points).
  kNone,
  /// Clamp the report to the region boundary. A deterministic
  /// post-processing of the Geo-I output, so the (eps, r) guarantee is
  /// preserved *exactly* — the recommended truncation.
  kClamp,
  /// Re-draw the noise until the report falls inside the region. NOT pure
  /// post-processing (the accept loop depends on the true location): the
  /// guarantee degrades to eps * d(x, x') + |ln C(x') - ln C(x)| where
  /// C(x) is the in-region noise mass around x. Acceptable deep inside
  /// the region (C ~ 1), material near the border; provided for
  /// comparison because several deployed systems do this.
  kRejectionResample,
};

constexpr std::string_view TruncationModeName(TruncationMode mode) {
  switch (mode) {
    case TruncationMode::kNone:
      return "none";
    case TruncationMode::kClamp:
      return "clamp";
    case TruncationMode::kRejectionResample:
      return "resample";
  }
  return "?";
}

/// Geo-I mechanism whose outputs are constrained to a deployment region.
class TruncatedGeoInd {
 public:
  /// Requires valid params and a non-empty region.
  TruncatedGeoInd(const PrivacyParams& params, const geo::BoundingBox& region,
                  TruncationMode mode);

  /// Perturbs `x` (which should lie inside the region) according to the
  /// configured truncation.
  geo::Point Perturb(geo::Point x, stats::Rng& rng) const;

  TruncationMode mode() const { return mode_; }
  const geo::BoundingBox& region() const { return region_; }
  const GeoIndMechanism& base() const { return base_; }

 private:
  GeoIndMechanism base_;
  geo::BoundingBox region_;
  TruncationMode mode_;
};

}  // namespace scguard::privacy

#endif  // SCGUARD_PRIVACY_TRUNCATED_H_
