#ifndef SCGUARD_RUNTIME_TASK_GROUP_H_
#define SCGUARD_RUNTIME_TASK_GROUP_H_

#include <condition_variable>
#include <functional>
#include <mutex>

#include "common/status.h"
#include "runtime/thread_pool.h"

namespace scguard::runtime {

/// Fork/join helper over a ThreadPool: `Run` submits Status-returning
/// tasks, `Wait` blocks until all of them finished and reports the error
/// of the *earliest-submitted* failing task — a deterministic choice that
/// does not depend on which task happened to fail first in wall-clock.
///
/// Not reusable across Wait cycles and not thread-safe itself: one owner
/// thread calls Run/Wait.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  /// Blocks until every submitted task completed.
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits a task to the pool.
  void Run(std::function<Status()> fn);

  /// Blocks until all tasks completed; OK iff every task returned OK,
  /// otherwise the Status of the lowest submission index that failed.
  Status Wait();

 private:
  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  int pending_ = 0;
  int next_index_ = 0;
  int error_index_ = -1;  // -1 = no error yet.
  Status error_;
};

}  // namespace scguard::runtime

#endif  // SCGUARD_RUNTIME_TASK_GROUP_H_
