file(REMOVE_RECURSE
  "CMakeFiles/truncated_test.dir/truncated_test.cc.o"
  "CMakeFiles/truncated_test.dir/truncated_test.cc.o.d"
  "truncated_test"
  "truncated_test.pdb"
  "truncated_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truncated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
