#ifndef SCGUARD_ASSIGN_CLOAKED_H_
#define SCGUARD_ASSIGN_CLOAKED_H_

#include "assign/matcher.h"
#include "privacy/cloaking.h"

namespace scguard::assign {

/// Online assignment under the related work's threat model (Pournajaf et
/// al.): workers report *cloaking rectangles*, task locations are PUBLIC.
///
/// The server (which here sees exact task locations — a disclosure SCGuard
/// refuses) keeps candidates whose cloak-reach probability meets `alpha`,
/// ranks by that probability, and contacts best-first; the worker's E2E
/// check is exact as usual. Comparing this matcher against SCGuard
/// separates the cost of hiding the tasks from the cost of the mechanism.
class CloakedMatcher final : public OnlineMatcher {
 public:
  /// Cloak geometry from `mechanism`; `alpha`/`beta` as in Algorithm 2.
  CloakedMatcher(const privacy::CloakingMechanism& mechanism, double alpha,
                 double beta);

  /// Cloaks are drawn per run from `rng` (they are the workers' reports),
  /// so the workload's noisy locations are ignored.
  MatchResult Run(const Workload& workload, stats::Rng& rng) override;

  std::string name() const override;

 private:
  privacy::CloakingMechanism mechanism_;
  double alpha_;
  double beta_;
};

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_CLOAKED_H_
