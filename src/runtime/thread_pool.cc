#include "runtime/thread_pool.h"

#include <utility>

#include "common/check.h"

namespace scguard::runtime {
namespace {

// Set for the lifetime of every pool worker thread; lets ParallelFor
// detect nesting without threading a context object through call sites.
thread_local bool tls_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  SCGUARD_CHECK(num_threads >= 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SCGUARD_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    SCGUARD_CHECK(!stop_);  // Submitting during destruction is a bug.
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool ThreadPool::InWorkerThread() { return tls_in_pool_worker; }

int RuntimeOptions::ResolvedThreads() const {
  if (num_threads <= 0) return ThreadPool::HardwareThreads();
  return num_threads;
}

std::unique_ptr<ThreadPool> MakePool(const RuntimeOptions& options) {
  const int threads = options.ResolvedThreads();
  if (threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(threads);
}

}  // namespace scguard::runtime
