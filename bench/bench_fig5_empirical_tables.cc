// Reproduces paper Fig. 5: (a) the empirical distribution of the true
// distance d for the noisy-distance bucket 1900 <= d' < 2000 (U2U), and
// (b) the reachability probability Pr(d <= R_w | d') as a function of d'
// for the U2U, U2E and E2E stages, with the analytical models overlaid.

#include "bench/bench_common.h"
#include "data/beijing.h"
#include "reachability/analytical_model.h"
#include "reachability/empirical_model.h"

namespace scguard::bench {
namespace {

void RunAt(const privacy::PrivacyParams& p);

void Main() {
  // The conditional histogram's center depends on the noise scale r/eps;
  // print both grid radii so either reading of the paper's default can be
  // compared (see EXPERIMENTS.md).
  RunAt({sim::kDefaultEpsilon, 200.0});
  RunAt({sim::kDefaultEpsilon, sim::kDefaultRadius});
}

void RunAt(const privacy::PrivacyParams& p) {
  reachability::EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 400000;
  stats::Rng rng(5);
  const auto model = OrDie(
      reachability::EmpiricalModel::Build(config, p, rng));

  // ---- Fig 5a: distribution of d for bucket [1900, 2000) of d' (U2U) ----
  {
    const int bucket = model.u2u_table().BucketIndex(1950.0);
    const stats::Histogram& hist = model.u2u_table().bucket(bucket);
    std::cout << "\n== Fig 5a — distribution of true d for 1900<=d'<2000 (U2U, "
              << "eps=" << p.epsilon << ", r=" << p.radius_m << ") ==\n";
    std::cout << "samples in bucket: " << hist.total_count() << "\n";
    // Coarse text histogram: 500 m bands up to 6 km.
    const uint64_t total = hist.total_count();
    for (double lo = 0.0; lo < 6000.0; lo += 500.0) {
      const double frac =
          hist.FractionBelow(lo + 500.0) - hist.FractionBelow(lo);
      const int bars = static_cast<int>(frac * 200.0);
      std::printf("  d in [%4.0f,%4.0f): %5.1f%% %s\n", lo, lo + 500.0,
                  frac * 100.0, std::string(static_cast<size_t>(bars), '#').c_str());
    }
    (void)total;
  }

  // ---- Fig 5b: Pr(d <= Rw | d') by stage, Rw = 1400 m ----
  {
    const double reach = 1400.0;
    const reachability::AnalyticalModel paper_model(p);
    const reachability::AnalyticalModel exact_model(
        p, reachability::AnalyticalMode::kExactLaplace);
    sim::TablePrinter table(
        "Fig 5b — Pr(d <= 1400 | d') by stage (empirical vs analytical)",
        {"d' (m)", "U2U emp", "U2U paper", "U2U exactL", "U2E emp",
         "U2E paper", "U2E exactL", "E2E"});
    for (double d = 0.0; d <= 6000.0; d += 500.0) {
      table.AddRow(
          FormatDouble(d, 0),
          {model.ProbReachable(reachability::Stage::kU2U, d, reach),
           paper_model.ProbReachable(reachability::Stage::kU2U, d, reach),
           exact_model.ProbReachable(reachability::Stage::kU2U, d, reach),
           model.ProbReachable(reachability::Stage::kU2E, d, reach),
           paper_model.ProbReachable(reachability::Stage::kU2E, d, reach),
           exact_model.ProbReachable(reachability::Stage::kU2E, d, reach),
           d <= reach ? 1.0 : 0.0},
          3);
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
