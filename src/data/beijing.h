#ifndef SCGUARD_DATA_BEIJING_H_
#define SCGUARD_DATA_BEIJING_H_

#include "geo/bbox.h"
#include "geo/latlon.h"
#include "geo/projection.h"

namespace scguard::data {

/// Geographic extent of greater Beijing used by the synthetic T-Drive
/// workload (the paper's region of interest for the empirical model).
/// T-Drive trips cover the metro area well beyond the urban core; the
/// extent below calibrates the synthetic workload's reachability density
/// to the paper's ground-truth utility (~320 of 500 tasks assignable).
inline constexpr geo::LatLon kBeijingSouthWest{39.68, 116.10};
inline constexpr geo::LatLon kBeijingNorthEast{40.18, 116.70};
inline constexpr geo::LatLon kBeijingCenter{39.93, 116.40};

/// Projection anchored at the Beijing center; all synthetic workloads are
/// expressed in its local meter coordinates.
inline geo::LocalProjection BeijingProjection() {
  return geo::LocalProjection(kBeijingCenter);
}

/// The Beijing extent in local meters (about 30 km x 33 km).
inline geo::BoundingBox BeijingRegion() {
  const geo::LocalProjection proj = BeijingProjection();
  geo::BoundingBox box;
  box.Extend(proj.Forward(kBeijingSouthWest));
  box.Extend(proj.Forward(kBeijingNorthEast));
  return box;
}

}  // namespace scguard::data

#endif  // SCGUARD_DATA_BEIJING_H_
