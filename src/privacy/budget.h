#ifndef SCGUARD_PRIVACY_BUDGET_H_
#define SCGUARD_PRIVACY_BUDGET_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace scguard::privacy {

/// Per-device privacy budget ledger with sequential composition.
///
/// Geo-I composes like differential privacy: releasing two observations of
/// the *same* (or correlated) location at levels eps1 and eps2 is
/// (eps1 + eps2)-geo-indistinguishable. A device that re-reports its
/// location across protocol rounds must therefore account for cumulative
/// spend; this ledger enforces a total budget and refuses further spends
/// once exhausted (paper Sec. VII, "protection for dynamic workers").
class BudgetLedger {
 public:
  /// `total_epsilon` > 0 is the lifetime budget at a fixed radius of
  /// concern.
  explicit BudgetLedger(double total_epsilon);

  double total_epsilon() const { return total_; }
  double spent_epsilon() const { return spent_; }
  double remaining_epsilon() const { return total_ - spent_; }

  /// Records a release at level `epsilon`. Fails with FailedPrecondition
  /// (spending nothing) if the remaining budget is insufficient.
  Status Spend(double epsilon);

  /// True iff a release at `epsilon` would still be within budget.
  bool CanSpend(double epsilon) const;

  /// Largest per-release epsilon that allows `releases` further releases.
  /// Returns 0 when the budget is exhausted.
  double UniformEpsilonFor(int releases) const;

  /// Owner id stamped on the flight recorder's per-spend audit events
  /// (recorder.h kAuditBudget) — typically the worker id the ledger
  /// belongs to. Defaults to -1 (unattributed).
  void set_audit_owner(int64_t owner) { audit_owner_ = owner; }
  int64_t audit_owner() const { return audit_owner_; }

 private:
  double total_;
  double spent_ = 0.0;
  int64_t audit_owner_ = -1;
};

}  // namespace scguard::privacy

#endif  // SCGUARD_PRIVACY_BUDGET_H_
