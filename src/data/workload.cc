#include "data/workload.h"

#include <algorithm>
#include <unordered_map>

#include "common/str_format.h"
#include "privacy/mechanism.h"

namespace scguard::data {
namespace {

// Draws `k` distinct indices from [0, n) (partial Fisher-Yates).
std::vector<size_t> SampleDistinct(size_t n, size_t k, stats::Rng& rng) {
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + rng.UniformInt(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace

Result<assign::Workload> BuildWorkloadFromTrips(const std::vector<Trip>& trips,
                                                const WorkloadConfig& config,
                                                stats::Rng& rng) {
  if (config.num_workers <= 0 || config.num_tasks <= 0) {
    return Status::InvalidArgument("workload counts must be positive");
  }
  if (!(config.reach_min_m > 0.0) || config.reach_max_m < config.reach_min_m) {
    return Status::InvalidArgument("bad reach radius range");
  }

  // Most recent drop-off per taxi (trips are pickup-time sorted, so keep
  // the latest by dropoff time).
  std::unordered_map<int64_t, const Trip*> last_dropoff;
  for (const auto& t : trips) {
    auto [it, inserted] = last_dropoff.try_emplace(t.taxi_id, &t);
    if (!inserted && t.dropoff_time_s > it->second->dropoff_time_s) {
      it->second = &t;
    }
  }
  if (last_dropoff.size() < static_cast<size_t>(config.num_workers)) {
    return Status::InvalidArgument(
        StrCat("trip log has ", last_dropoff.size(), " taxis; need ",
               config.num_workers, " workers"));
  }
  if (trips.size() < static_cast<size_t>(config.num_tasks)) {
    return Status::InvalidArgument(StrCat("trip log has ", trips.size(),
                                          " trips; need ", config.num_tasks,
                                          " tasks"));
  }

  assign::Workload workload;

  // Workers: a random sample of taxis at their final drop-off.
  std::vector<const Trip*> taxis;
  taxis.reserve(last_dropoff.size());
  for (const auto& [id, trip] : last_dropoff) taxis.push_back(trip);
  // unordered_map order is not deterministic across libraries; fix it.
  std::sort(taxis.begin(), taxis.end(),
            [](const Trip* a, const Trip* b) { return a->taxi_id < b->taxi_id; });
  for (size_t idx : SampleDistinct(taxis.size(),
                                   static_cast<size_t>(config.num_workers), rng)) {
    assign::Worker w;
    w.id = static_cast<int64_t>(workload.workers.size());
    w.location = taxis[idx]->dropoff;
    w.reach_radius_m = rng.UniformDouble(config.reach_min_m, config.reach_max_m);
    workload.workers.push_back(w);
    workload.region.Extend(w.location);
  }

  // Tasks: a random sample of pick-ups, ordered by pick-up time.
  std::vector<size_t> task_idx =
      SampleDistinct(trips.size(), static_cast<size_t>(config.num_tasks), rng);
  std::sort(task_idx.begin(), task_idx.end(), [&trips](size_t a, size_t b) {
    return trips[a].pickup_time_s < trips[b].pickup_time_s;
  });
  for (size_t i = 0; i < task_idx.size(); ++i) {
    assign::Task t;
    t.id = static_cast<int64_t>(i);
    t.location = trips[task_idx[i]].pickup;
    t.arrival_seq = static_cast<int64_t>(i);
    workload.tasks.push_back(t);
    workload.region.Extend(t.location);
  }
  return workload;
}

void PerturbWorkload(const privacy::PrivacyParams& worker_params,
                     const privacy::PrivacyParams& task_params,
                     stats::Rng& rng, assign::Workload& workload) {
  // Workers then tasks, in storage order, from one rng stream — the draw
  // order the seeds reproduce. Grid mechanisms discretize the workload's
  // region unless the spec pins its own.
  const auto worker_mech =
      privacy::MakeMechanismOrDie(worker_params, workload.region);
  const auto task_mech =
      privacy::MakeMechanismOrDie(task_params, workload.region);
  for (auto& w : workload.workers) {
    w.noisy_location = worker_mech->Perturb(w.location, rng);
  }
  for (auto& t : workload.tasks) {
    t.noisy_location = task_mech->Perturb(t.location, rng);
  }
}

assign::Workload MakeUniformWorkload(const geo::BoundingBox& region,
                                     const WorkloadConfig& config,
                                     stats::Rng& rng) {
  assign::Workload workload;
  workload.region = region;
  for (int i = 0; i < config.num_workers; ++i) {
    assign::Worker w;
    w.id = i;
    w.location = {rng.UniformDouble(region.min_x, region.max_x),
                  rng.UniformDouble(region.min_y, region.max_y)};
    w.reach_radius_m = rng.UniformDouble(config.reach_min_m, config.reach_max_m);
    workload.workers.push_back(w);
  }
  for (int i = 0; i < config.num_tasks; ++i) {
    assign::Task t;
    t.id = i;
    t.location = {rng.UniformDouble(region.min_x, region.max_x),
                  rng.UniformDouble(region.min_y, region.max_y)};
    t.arrival_seq = i;
    workload.tasks.push_back(t);
  }
  return workload;
}

}  // namespace scguard::data
