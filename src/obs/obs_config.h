#ifndef SCGUARD_OBS_OBS_CONFIG_H_
#define SCGUARD_OBS_OBS_CONFIG_H_

#include <atomic>

namespace scguard::obs {

/// The single gate for every piece of instrumentation in the tree.
///
/// Contract (DESIGN.md §7): with `enabled == false` every metric update
/// and span degrades to one relaxed atomic load plus a predicted-not-taken
/// branch — no clock reads, no locks, no allocation — so uninstrumented
/// runs pay effectively nothing. With `enabled == true` instrumentation
/// may read clocks and touch sharded atomics but must never perturb RNG
/// streams, assignment results, or empirical tables: observation is
/// side-effect-free by construction.
struct ObsConfig {
  bool enabled = false;
  /// The flight recorder (recorder.h, DESIGN.md §12): event-level ring
  /// buffers behind their own gate so aggregate metrics can stay on while
  /// per-event recording stays off (benches: SCGUARD_OBS_TRACE=1).
  bool recorder = false;
  /// Full-audit mode: additionally emit one kAuditCandidate event per
  /// ranked U2E candidate. O(candidates) events per task — meant for small
  /// runs and tests, not the 1M bench (SCGUARD_AUDIT_FULL=1).
  bool audit_full = false;
};

namespace internal {
/// The process-wide gate flag. Relaxed is enough: callers only need a
/// monotonic-ish view, not ordering against the data they instrument.
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
inline std::atomic<bool>& RecorderFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
inline std::atomic<bool>& AuditFullFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace internal

/// Installs `config` process-wide. Typically called once at startup
/// (benches read SCGUARD_OBS=1); toggling mid-run is safe but updates
/// in flight on other threads may straddle the change.
inline void SetConfig(const ObsConfig& config) {
  internal::EnabledFlag().store(config.enabled, std::memory_order_relaxed);
  internal::RecorderFlag().store(config.recorder, std::memory_order_relaxed);
  internal::AuditFullFlag().store(config.audit_full,
                                  std::memory_order_relaxed);
}

/// The hot-path check every instrument performs first.
inline bool Enabled() {
  return internal::EnabledFlag().load(std::memory_order_relaxed);
}

/// The hot-path check every flight-recorder emission performs first.
inline bool RecorderEnabled() {
  return internal::RecorderFlag().load(std::memory_order_relaxed);
}

/// Whether per-candidate U2E audit events are wanted (callers must also
/// check RecorderEnabled(); the helpers in recorder.h gate on it).
inline bool AuditFullEnabled() {
  return internal::AuditFullFlag().load(std::memory_order_relaxed);
}

}  // namespace scguard::obs

#endif  // SCGUARD_OBS_OBS_CONFIG_H_
