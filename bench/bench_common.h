#ifndef SCGUARD_BENCH_BENCH_COMMON_H_
#define SCGUARD_BENCH_BENCH_COMMON_H_

// Shared setup for the figure-reproduction harnesses: every bench uses the
// same synthetic T-Drive city, the paper's workload sizes, and 10 seeds, so
// series are comparable across binaries.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "assign/algorithms.h"
#include "common/str_format.h"
#include "obs/export.h"
#include "obs/obs_config.h"
#include "obs/recorder.h"
#include "obs/trace_export.h"
#include "reachability/model_cache.h"
#include "runtime/thread_pool.h"
#include "sim/defaults.h"
#include "sim/experiment.h"
#include "sim/table_printer.h"

// Provenance stamped into every BENCH_*.json (bench/CMakeLists.txt passes
// the real values; the fallbacks keep non-CMake builds compiling).
#ifndef SCGUARD_GIT_SHA
#define SCGUARD_GIT_SHA "unknown"
#endif
#ifndef SCGUARD_CXX_FLAGS
#define SCGUARD_CXX_FLAGS ""
#endif

namespace scguard::bench {

using scguard::FormatDouble;
using scguard::StrCat;

/// True when `name` is set to a value starting with '1' in the
/// environment.
inline bool EnvFlag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] == '1';
}

/// Observability switches for the bench binaries: SCGUARD_OBS=1 turns the
/// instrumentation layer on (stage-latency histograms, cache and engine
/// counters land in the BENCH_<name>.json `metrics` block);
/// SCGUARD_OBS_TRACE=1 additionally turns the flight recorder on
/// (recorder.h — per-event tracing and the privacy audit trail);
/// SCGUARD_AUDIT_FULL=1 adds per-candidate U2E audit events (small runs
/// only). Default all off — the published numbers are from uninstrumented
/// runs. Idempotent; every config entry point calls it.
inline void InitObsFromEnv() {
  static const bool initialized = [] {
    obs::ObsConfig config;
    config.enabled = EnvFlag("SCGUARD_OBS");
    config.recorder = EnvFlag("SCGUARD_OBS_TRACE");
    config.audit_full = EnvFlag("SCGUARD_AUDIT_FULL");
    obs::SetConfig(config);
    return true;
  }();
  (void)initialized;
}

/// First "model name" line of /proc/cpuinfo, or "unknown" off Linux.
inline std::string CpuModelName() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        return std::string(StripAsciiWhitespace(line.substr(colon + 1)));
      }
    }
  }
  return "unknown";
}

/// The provenance block every BENCH_*.json carries: enough to tell whether
/// two bench JSONs are comparable (same code? same compiler? same
/// machine?) before tools/bench_compare.py flags a perf delta as a
/// regression rather than a machine difference.
inline std::string ProvenanceJson() {
  return StrCat("{\"git_sha\":\"", JsonEscape(SCGUARD_GIT_SHA),
                "\",\"compiler\":\"", JsonEscape(__VERSION__),
                "\",\"cxx_flags\":\"", JsonEscape(SCGUARD_CXX_FLAGS),
                "\",\"hardware_threads\":",
                runtime::ThreadPool::HardwareThreads(), ",\"cpu\":\"",
                JsonEscape(CpuModelName()), "\"}");
}

/// Drains the flight recorder into the per-run artifacts: TRACE_<name>.json
/// (Chrome trace-event JSON — open in ui.perfetto.dev) and
/// AUDIT_<name>.jsonl (one line per privacy-audit event plus a summary
/// line). Returns the audit totals so the caller can reconcile them
/// against its RunMetrics counters. Writes nothing useful (all zeros)
/// while the recorder is off.
inline obs::AuditTotals WriteFlightArtifacts(const std::string& name) {
  auto& recorder = obs::FlightRecorder::Global();
  const int64_t dropped = recorder.dropped();
  const std::vector<obs::TraceEvent> events = recorder.Drain();
  const std::vector<std::string> names = recorder.names();
  {
    std::ofstream out(StrCat("TRACE_", name, ".json"));
    if (out) out << obs::ExportChromeTrace(events, names);
  }
  {
    std::ofstream out(StrCat("AUDIT_", name, ".jsonl"));
    if (out) out << obs::ExportAuditJsonl(events, names, dropped);
  }
  return obs::SummarizeAudit(events);
}

/// The paper's experimental setup (Sec. V-A): 500 workers, 500 tasks,
/// R_w ~ U[1000, 3000] m, averaged over 10 seeds, on one synthetic T-Drive
/// day of 9,019 taxis. Seeds fan out across all hardware threads
/// (config.runtime defaults to num_threads = 0); the reported numbers are
/// bit-identical to the serial path — set num_threads = 1 to verify.
inline sim::ExperimentConfig PaperConfig() {
  InitObsFromEnv();
  sim::ExperimentConfig config;
  config.synth.num_taxis = 9019;
  config.synth.mean_trips_per_taxi = 12.0;
  config.workload.num_workers = 500;
  config.workload.num_tasks = 500;
  config.num_seeds = 10;
  config.base_seed = 42;
  return config;
}

/// Smaller setup for the expensive ablations (exact-Laplace quadrature,
/// pruning backends) so every bench binary stays runnable in seconds.
inline sim::ExperimentConfig QuickConfig() {
  sim::ExperimentConfig config = PaperConfig();
  config.synth.num_taxis = 2000;
  config.workload.num_workers = 250;
  config.workload.num_tasks = 250;
  config.num_seeds = 5;
  return config;
}

inline assign::AlgorithmParams MakeParams(const privacy::PrivacyParams& p,
                                          double alpha = sim::kDefaultAlpha,
                                          double beta = sim::kDefaultBeta) {
  assign::AlgorithmParams params;
  params.worker_params = p;
  params.task_params = p;
  params.alpha = alpha;
  params.beta = beta;
  return params;
}

/// The process-wide pool bench binaries share for sharded empirical-table
/// builds (seed fan-out uses ExperimentConfig::runtime instead).
inline runtime::ThreadPool* BenchPool() {
  static runtime::ThreadPool* pool =
      new runtime::ThreadPool(runtime::ThreadPool::HardwareThreads());
  return pool;
}

/// Fixed shard count for every bench empirical build. A machine-independent
/// constant (NOT the core count): the shard count picks the Monte-Carlo
/// streams, so it must be pinned for tables to be reproducible everywhere;
/// the thread count only decides how many shards run at once.
inline constexpr int kBenchBuildShards = 16;

/// Seed of every bench empirical build (part of the model-cache key).
inline constexpr uint64_t kBenchBuildSeed = 20177;

/// Builds (or reuses) an empirical model for the runner's region at the
/// given privacy level; the expensive Monte-Carlo precomputation that
/// Probabilistic-Data amortizes. Served from reachability::ModelCache, so
/// repeated calls at one privacy level cost a lookup; set
/// SCGUARD_MODEL_CACHE_DIR to also persist tables across bench processes.
inline std::shared_ptr<const reachability::EmpiricalModel> BuildEmpirical(
    const sim::ExperimentRunner& runner, const privacy::PrivacyParams& p,
    uint64_t samples = 200000) {
  static const bool configured = [] {
    if (const char* dir = std::getenv("SCGUARD_MODEL_CACHE_DIR")) {
      reachability::ModelCache::Global().set_cache_dir(dir);
    }
    return true;
  }();
  (void)configured;
  reachability::EmpiricalModelConfig config;
  config.region = runner.region();
  config.num_samples = samples;
  config.num_shards = kBenchBuildShards;
  auto model = reachability::ModelCache::Global().GetOrBuild(
      config, p, p, kBenchBuildSeed, BenchPool());
  if (!model.ok()) {
    std::cerr << "empirical build failed: " << model.status() << "\n";
    std::exit(1);
  }
  return *model;
}

/// Unwraps a Result or aborts with its status (bench binaries have no
/// recovery path).
template <typename T>
T OrDie(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "bench failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

/// Collects (series, x, metrics) points and writes them as
/// `BENCH_<name>.json` next to the printed tables, so the perf/utility
/// trajectory is machine-trackable across PRs. Flushes on destruction.
class JsonSeriesWriter {
 public:
  explicit JsonSeriesWriter(std::string name) : name_(std::move(name)) {}

  JsonSeriesWriter(const JsonSeriesWriter&) = delete;
  JsonSeriesWriter& operator=(const JsonSeriesWriter&) = delete;

  ~JsonSeriesWriter() { Flush(); }

  /// `extra` key/value pairs are emitted verbatim as additional JSON
  /// fields of this point (e.g. the scale bench's thread count), after the
  /// fixed metric schema. `extra_str` values are emitted as JSON-escaped
  /// strings (mechanism provenance in the frontier bench). Keys must be
  /// unique and distinct from the fixed field names.
  void Add(const std::string& series, double x, const sim::AggregatedMetrics& m,
           std::vector<std::pair<std::string, double>> extra = {},
           std::vector<std::pair<std::string, std::string>> extra_str = {}) {
    points_.push_back({series, x, m, std::move(extra), std::move(extra_str)});
  }

  void Flush() {
    if (flushed_) return;
    flushed_ = true;
    std::ofstream out(StrCat("BENCH_", name_, ".json"));
    if (!out) return;  // Read-only cwd: tables were printed, JSON is bonus.
    out.precision(std::numeric_limits<double>::max_digits10);
    out << "{\"bench\":\"" << name_ << "\",\"provenance\":"
        << ProvenanceJson() << ",\"points\":[";
    for (size_t i = 0; i < points_.size(); ++i) {
      const auto& p = points_[i];
      if (i > 0) out << ',';
      out << "{\"series\":\"" << p.series << "\",\"x\":" << p.x
          << ",\"seeds\":" << p.m.seeds
          << ",\"assigned_tasks\":" << p.m.assigned_tasks
          << ",\"assigned_tasks_stddev\":" << p.m.assigned_tasks_stddev
          << ",\"travel_m\":" << p.m.travel_m
          << ",\"travel_m_stddev\":" << p.m.travel_m_stddev
          << ",\"candidates\":" << p.m.candidates
          << ",\"false_hits\":" << p.m.false_hits
          << ",\"false_dismissals\":" << p.m.false_dismissals
          << ",\"precision\":" << p.m.precision
          << ",\"recall\":" << p.m.recall
          << ",\"disclosures_per_task\":" << p.m.disclosures_per_task
          << ",\"u2u_seconds\":" << p.m.u2u_seconds
          << ",\"u2e_seconds\":" << p.m.u2e_seconds
          << ",\"total_seconds\":" << p.m.total_seconds
          << ",\"u2u_scanned\":" << p.m.u2u_scanned
          << ",\"u2u_scanned_first_task\":" << p.m.u2u_scanned_first_task
          << ",\"u2u_scanned_last_task\":" << p.m.u2u_scanned_last_task
          << ",\"cells_bulk_accepted\":" << p.m.cells_bulk_accepted
          << ",\"cells_skipped\":" << p.m.cells_skipped
          << ",\"boundary_workers\":" << p.m.boundary_workers
          << ",\"seed_seconds_min\":" << p.m.seed_seconds_min
          << ",\"seed_seconds_median\":" << p.m.seed_seconds_median
          << ",\"seed_seconds_max\":" << p.m.seed_seconds_max;
      for (const auto& [key, value] : p.extra) {
        out << ",\"" << key << "\":" << value;
      }
      for (const auto& [key, value] : p.extra_str) {
        out << ",\"" << key << "\":\"" << JsonEscape(value) << "\"";
      }
      out << '}';
    }
    // Observability snapshot: counters, stage-latency percentiles, and
    // span aggregates of this whole bench process (see EXPERIMENTS.md;
    // "enabled":false means the values are all zero by construction).
    out << "],\"metrics\":" << obs::SnapshotJson() << "}\n";
  }

 private:
  struct Point {
    std::string series;
    double x;
    sim::AggregatedMetrics m;
    std::vector<std::pair<std::string, double>> extra;
    std::vector<std::pair<std::string, std::string>> extra_str;
  };

  std::string name_;
  std::vector<Point> points_;
  bool flushed_ = false;
};

}  // namespace scguard::bench

#endif  // SCGUARD_BENCH_BENCH_COMMON_H_
