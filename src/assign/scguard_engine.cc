#include "assign/scguard_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "reachability/kernel.h"

#include "common/check.h"
#include "common/str_format.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace scguard::assign {
namespace {

using Clock = std::chrono::steady_clock;

double Elapsed(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

/// The engine's metric set (DESIGN.md §7), resolved once per process.
/// Counts are accumulated in plain locals during a run and flushed with
/// one Increment each at the end, so the per-worker hot loop never
/// touches an atomic; stage histograms additionally cost two clock reads
/// per task per stage, gated on obs::Enabled().
struct EngineObs {
  obs::Counter* tasks;
  obs::Counter* assigned_tasks;
  obs::Counter* assignments;
  obs::Counter* candidates;
  obs::Counter* workers_evaluated;
  obs::Counter* workers_pruned;
  obs::Counter* alpha_rejections;
  obs::Counter* beta_cancels;
  obs::Counter* disclosures;
  obs::Counter* false_hits;
  obs::Counter* false_dismissals;
  obs::Counter* band_evals;
  obs::Counter* active_compactions;
  obs::Histogram* u2u_seconds;
  obs::Histogram* u2e_seconds;
  obs::Histogram* e2e_seconds;
  obs::Histogram* u2u_scan_workers;

  static const EngineObs& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static const EngineObs o = {
        registry.GetCounter("scguard.engine.tasks"),
        registry.GetCounter("scguard.engine.assigned_tasks"),
        registry.GetCounter("scguard.engine.assignments"),
        registry.GetCounter("scguard.engine.candidates"),
        registry.GetCounter("scguard.engine.workers_evaluated"),
        registry.GetCounter("scguard.engine.workers_pruned"),
        registry.GetCounter("scguard.engine.alpha_rejections"),
        registry.GetCounter("scguard.engine.beta_cancels"),
        registry.GetCounter("scguard.engine.disclosures"),
        registry.GetCounter("scguard.engine.false_hits"),
        registry.GetCounter("scguard.engine.false_dismissals"),
        registry.GetCounter("scguard.engine.u2u_band_evals"),
        registry.GetCounter("scguard.engine.active_compactions"),
        registry.GetHistogram("scguard.engine.u2u_seconds"),
        registry.GetHistogram("scguard.engine.u2e_seconds"),
        registry.GetHistogram("scguard.engine.e2e_seconds"),
        registry.GetHistogram("scguard.engine.u2u_scan_workers")};
    return o;
  }
};

/// Per-shard scratch of the U2U scan. Each shard owns one instance for the
/// whole run, so concurrent shard scans never share mutable state and the
/// vectors' capacities amortize across tasks.
struct ShardScratch {
  std::vector<uint32_t> live;    ///< Matched-filtered indices (full-scan mode).
  std::vector<uint32_t> accept;  ///< Certain accepts, ascending.
  std::vector<uint32_t> band;    ///< In-band indices, then surviving subset.
  std::vector<uint32_t> out;     ///< This shard's candidates, ascending.
  int64_t scanned = 0;           ///< Workers scored for the current task.
  int64_t band_evals = 0;        ///< Direct model evals, run cumulative.
  int64_t compactions = 0;       ///< Active-set rebuilds, run cumulative.
};

}  // namespace

ScGuardEngine::ScGuardEngine(EnginePolicy policy) : policy_(std::move(policy)) {
  SCGUARD_CHECK(policy_.u2u_model != nullptr);
  if (policy_.rank == RankStrategy::kProbability) {
    SCGUARD_CHECK(policy_.u2e_model != nullptr);
  }
  SCGUARD_CHECK(policy_.alpha > 0.0 && policy_.alpha <= 1.0);
  SCGUARD_CHECK(policy_.beta >= 0.0 && policy_.beta <= 1.0);
  SCGUARD_CHECK(policy_.redundancy_k >= 1);
  SCGUARD_CHECK(policy_.runtime.shard_size >= 1);
}

std::string ScGuardEngine::name() const {
  if (!policy_.name.empty()) return policy_.name;
  return StrCat("SCGuard[", policy_.u2u_model->name(), ",",
                RankStrategyName(policy_.rank), "]");
}

MatchResult ScGuardEngine::Run(const Workload& workload, stats::Rng& rng) {
  // Observation never perturbs the protocol: no RNG draws, no reordering
  // — the bit-identity test in tests/obs_test.cc holds the engine to it.
  const bool obs_on = obs::Enabled();
  const obs::Span run_span("engine.run");
  const EngineObs& eo = EngineObs::Get();
  int64_t obs_evaluated = 0;       // Workers the U2U filter actually scored.
  int64_t obs_alpha_rejections = 0;  // Scored but below alpha.
  int64_t obs_beta_cancels = 0;
  int64_t obs_pruned = 0;          // Skipped entirely by the pruning index.

  const auto run_start = Clock::now();
  MatchResult result;
  RunMetrics& m = result.metrics;
  m.num_tasks = static_cast<int64_t>(workload.tasks.size());
  m.num_workers = static_cast<int64_t>(workload.workers.size());

  const size_t n = workload.workers.size();
  SCGUARD_CHECK(n <= std::numeric_limits<uint32_t>::max());

  // Ranking's random priorities, fixed once per run (Alg. 1 Line 12).
  std::vector<double> random_rank(n);
  for (auto& r : random_rank) r = rng.UniformDouble();

  // Structure-of-arrays snapshot of the server's view of the workers.
  // The U2U hot loop reads only these contiguous arrays; the AoS Worker
  // records are touched again only for ranking and ground-truth checks.
  reachability::WorkerFilterSoA soa;
  soa.Resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Worker& w = workload.workers[i];
    soa.x[i] = w.noisy_location.x;
    soa.y[i] = w.noisy_location.y;
    soa.reach_radius_m[i] = w.reach_radius_m;
  }
  std::vector<uint8_t>& matched = soa.matched;

  // Kernel caches are per-Run: ExperimentRunner shares one matcher across
  // concurrently running seeds, so nothing here may live in the engine.
  // Filling accept/reject_sq below also prewarms the threshold cache for
  // every worker radius, which the parallel band resolution relies on
  // (AlphaThresholdCache::Lookup is the read-only path).
  const reachability::KernelOptions& kopts = policy_.kernel;
  std::optional<reachability::AlphaThresholdCache> u2u_thresholds;
  if (kopts.alpha_thresholds) {
    u2u_thresholds.emplace(policy_.u2u_model, reachability::Stage::kU2U,
                           policy_.alpha, kopts.threshold_margin);
    soa.accept_below_sq.resize(n);
    soa.reject_above_sq.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const reachability::AlphaThreshold& t =
          u2u_thresholds->For(soa.reach_radius_m[i]);
      soa.accept_below_sq[i] = t.accept_below_sq;
      soa.reject_above_sq[i] = t.reject_above_sq;
    }
  }
  std::optional<reachability::KernelLut> u2e_lut;
  if (kopts.u2e_lut && policy_.rank == RankStrategy::kProbability) {
    u2e_lut.emplace(policy_.u2e_model, reachability::Stage::kU2E, kopts);
  }

  // Optional U2U pruning index over the workers' uncertainty rectangles.
  std::unique_ptr<index::UncertainRegionPruner> pruner;
  if (policy_.pruning_gamma.has_value()) {
    std::vector<index::UncertainRegionPruner::WorkerRegion> regions;
    regions.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const Worker& w = workload.workers[i];
      regions.push_back({static_cast<int64_t>(i), w.noisy_location,
                         w.reach_radius_m});
    }
    pruner = std::make_unique<index::UncertainRegionPruner>(
        std::move(regions), policy_.worker_params, policy_.task_params,
        *policy_.pruning_gamma, policy_.pruning_backend, workload.region);
  }

  // ---- Sharded scan state (DESIGN.md §9) ---------------------------------
  // The full scan partitions the SoA into fixed-size shards; each shard
  // keeps a dense ascending array of its still-available worker indices.
  // Shard boundaries depend only on (n, shard_size), never on the pool, so
  // concatenating per-shard candidates in shard order reproduces the serial
  // ascending scan bit for bit. Pruned runs query the index instead and
  // skip this state entirely (the pruner's Remove keeps *it* shrinking).
  const EngineRuntime& rt = policy_.runtime;
  const bool full_scan = pruner == nullptr;
  const size_t shard_size = static_cast<size_t>(rt.shard_size);
  const size_t num_shards =
      full_scan && n > 0 ? (n + shard_size - 1) / shard_size : 0;
  std::vector<std::vector<uint32_t>> shard_active(num_shards);
  std::vector<uint8_t> shard_dirty(num_shards, 0);
  std::vector<ShardScratch> shards(full_scan ? num_shards : 1);
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t lo = s * shard_size;
    const size_t hi = std::min(n, lo + shard_size);
    shard_active[s].reserve(hi - lo);
    for (size_t i = lo; i < hi; ++i) {
      shard_active[s].push_back(static_cast<uint32_t>(i));
    }
  }

  // Reused scratch between tasks (allocating these per task shows up on
  // pruned runs, where the real work per task is small).
  std::vector<uint32_t> candidates;
  candidates.reserve(n);
  std::vector<std::pair<double, size_t>> ranked;
  ranked.reserve(n);
  std::vector<int64_t> pruner_ids;
  std::vector<double> u2e_d;
  std::vector<double> u2e_r;
  std::vector<double> u2e_p;

  // Scores `count` workers (an ascending index list with no matched
  // entries) against the current task's noisy location, appending the
  // ascending candidate subset to `sc.out`. Safe to run concurrently on
  // distinct scratches: reads only the SoA, the prewarmed threshold cache,
  // and the (thread-safe, const) model.
  const auto scan_indices = [&](geo::Point task_noisy, const uint32_t* idx,
                                size_t count, ShardScratch& sc) {
    sc.out.clear();
    sc.scanned = static_cast<int64_t>(count);
    if (u2u_thresholds.has_value()) {
      // Branch-free trichotomy over the contiguous SoA arrays, then one
      // direct evaluation per in-band worker — the same decision as
      // AlphaThresholdCache::IsCandidate, inlined so the shared cache is
      // never mutated from a pool worker.
      reachability::ClassifyCertainBand(soa, idx, count, task_noisy.x,
                                        task_noisy.y, sc.accept, sc.band);
      size_t kept = 0;
      for (const uint32_t i : sc.band) {
        const reachability::AlphaThreshold* t =
            u2u_thresholds->Lookup(soa.reach_radius_m[i]);
        SCGUARD_CHECK(t != nullptr);
        const double d =
            geo::Distance({soa.x[i], soa.y[i]}, task_noisy);
        bool is_candidate;
        if (d <= t->accept_below_m) {
          is_candidate = true;
        } else if (d >= t->reject_above_m) {
          is_candidate = false;
        } else {
          ++sc.band_evals;
          is_candidate = policy_.u2u_model->ProbReachable(
                             reachability::Stage::kU2U, d,
                             soa.reach_radius_m[i]) >= policy_.alpha;
        }
        sc.band[kept] = i;
        kept += is_candidate ? 1 : 0;
      }
      sc.band.resize(kept);
      // Both lists are ascending subsets of the input, so one merge
      // restores the serial scan's candidate order.
      sc.out.resize(sc.accept.size() + sc.band.size());
      std::merge(sc.accept.begin(), sc.accept.end(), sc.band.begin(),
                 sc.band.end(), sc.out.begin());
    } else {
      for (size_t k = 0; k < count; ++k) {
        const uint32_t i = idx[k];
        const double d_obs =
            geo::Distance({soa.x[i], soa.y[i]}, task_noisy);
        const double p = policy_.u2u_model->ProbReachable(
            reachability::Stage::kU2U, d_obs, soa.reach_radius_m[i]);
        if (p >= policy_.alpha) sc.out.push_back(i);
      }
    }
  };

  size_t task_index = 0;
  for (const Task& task : workload.tasks) {
    // ---- Stage 1: U2U (server) -------------------------------------
    // Server sees only noisy locations and the workers' reach radii.
    const auto u2u_start = Clock::now();
    candidates.clear();
    int64_t scanned_this_task = 0;
    if (pruner != nullptr) {
      pruner->Candidates(task.noisy_location, pruner_ids);
      ShardScratch& sc = shards[0];
      sc.live.clear();
      for (const int64_t id : pruner_ids) {
        if (!matched[static_cast<size_t>(id)]) {
          sc.live.push_back(static_cast<uint32_t>(id));
        }
      }
      scan_indices(task.noisy_location, sc.live.data(), sc.live.size(), sc);
      // Backends emit ids in ascending order, so `candidates` is already
      // sorted — no per-task re-sort.
      candidates.assign(sc.out.begin(), sc.out.end());
      scanned_this_task = sc.scanned;
      obs_pruned += static_cast<int64_t>(n) -
                    static_cast<int64_t>(pruner_ids.size());
    } else {
      const Status scan_status = runtime::ParallelFor(
          rt.pool, 0, static_cast<int64_t>(num_shards), /*grain=*/1,
          [&](int64_t lo, int64_t hi) -> Status {
            for (int64_t s = lo; s < hi; ++s) {
              std::vector<uint32_t>& active =
                  shard_active[static_cast<size_t>(s)];
              ShardScratch& sc = shards[static_cast<size_t>(s)];
              if (rt.active_set) {
                if (shard_dirty[static_cast<size_t>(s)]) {
                  // Stage-boundary rebuild from matched[]: a stable filter,
                  // so the shard stays ascending and the next scan touches
                  // only available workers.
                  active.erase(
                      std::remove_if(active.begin(), active.end(),
                                     [&](uint32_t i) { return matched[i] != 0; }),
                      active.end());
                  shard_dirty[static_cast<size_t>(s)] = 0;
                  ++sc.compactions;
                }
                scan_indices(task.noisy_location, active.data(), active.size(),
                             sc);
              } else {
                // Legacy full scan: the matched filter runs per task.
                sc.live.clear();
                for (const uint32_t i : active) {
                  if (!matched[i]) sc.live.push_back(i);
                }
                scan_indices(task.noisy_location, sc.live.data(),
                             sc.live.size(), sc);
              }
            }
            return Status::OK();
          });
      SCGUARD_CHECK(scan_status.ok());
      // Seed-order reduction: shard order == ascending id order.
      for (size_t s = 0; s < num_shards; ++s) {
        const ShardScratch& sc = shards[s];
        candidates.insert(candidates.end(), sc.out.begin(), sc.out.end());
        scanned_this_task += sc.scanned;
      }
    }
    obs_evaluated += scanned_this_task;
    obs_alpha_rejections +=
        scanned_this_task - static_cast<int64_t>(candidates.size());
    m.u2u_scanned += scanned_this_task;
    if (task_index == 0) m.u2u_scanned_first_task = scanned_this_task;
    m.u2u_scanned_last_task = scanned_this_task;
    ++task_index;
    {
      const double u2u_elapsed = Elapsed(u2u_start);
      m.u2u_seconds += u2u_elapsed;
      if (obs_on) {
        eo.u2u_seconds->Observe(u2u_elapsed);
        eo.u2u_scan_workers->Observe(static_cast<double>(scanned_this_task));
      }
    }
    m.candidates_sum += static_cast<int64_t>(candidates.size());
    m.server_to_requester_msgs += 1;

    // U2U accuracy metrics, scored against ground truth (observer-only:
    // no protocol party computes this). The availability scan is
    // O(workers) per task, so it is gated for throughput runs.
    if (policy_.compute_accuracy_metrics) {
      int64_t truly_reachable_available = 0;
      int64_t candidates_reachable = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!matched[i] && workload.workers[i].CanReach(task.location)) {
          ++truly_reachable_available;
        }
      }
      for (const uint32_t i : candidates) {
        if (workload.workers[i].CanReach(task.location)) ++candidates_reachable;
      }
      if (!candidates.empty()) {
        m.precision_sum += static_cast<double>(candidates_reachable) /
                           static_cast<double>(candidates.size());
        m.precision_count += 1;
      }
      if (truly_reachable_available > 0) {
        m.recall_sum += static_cast<double>(candidates_reachable) /
                        static_cast<double>(truly_reachable_available);
        m.recall_count += 1;
      }
    }

    if (candidates.empty()) continue;  // Task remains unassigned.

    // ---- Stage 2: U2E (requester) ----------------------------------
    // Requester knows the exact task location and the candidates' noisy
    // locations; ranks and contacts them best-first.
    const auto u2e_start = Clock::now();
    ranked.clear();
    if (policy_.rank == RankStrategy::kProbability) {
      // Batched scoring: gather candidate distances/radii into dense
      // arrays, then one ProbReachableBatch call (or the bounded-error
      // LUT when enabled) instead of a virtual call per candidate.
      const size_t c = candidates.size();
      u2e_d.resize(c);
      u2e_r.resize(c);
      u2e_p.resize(c);
      for (size_t k = 0; k < c; ++k) {
        const size_t i = candidates[k];
        u2e_d[k] = geo::Distance({soa.x[i], soa.y[i]}, task.location);
        u2e_r[k] = soa.reach_radius_m[i];
      }
      if (u2e_lut.has_value()) {
        for (size_t k = 0; k < c; ++k) {
          u2e_p[k] = u2e_lut->Prob(u2e_d[k], u2e_r[k]);
        }
      } else {
        policy_.u2e_model->ProbReachableBatch(reachability::Stage::kU2E,
                                              u2e_d.data(), u2e_r.data(), c,
                                              u2e_p.data());
      }
      for (size_t k = 0; k < c; ++k) {
        ranked.emplace_back(u2e_p[k], candidates[k]);
      }
    } else {
      for (const uint32_t i : candidates) {
        const double score =
            policy_.rank == RankStrategy::kRandom
                ? random_rank[i]
                : -geo::Distance({soa.x[i], soa.y[i]}, task.location);
        ranked.emplace_back(score, i);
      }
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;  // Stable tie-break for determinism.
    });
    {
      const double u2e_elapsed = Elapsed(u2e_start);
      m.u2e_seconds += u2e_elapsed;
      if (obs_on) eo.u2e_seconds->Observe(u2e_elapsed);
    }

    // ---- Stage 3: E2E (workers), interleaved with U2E re-ranking ----
    Clock::time_point stage_start;
    if (obs_on) stage_start = Clock::now();
    int accepted = 0;
    size_t next = 0;
    bool cancelled = false;
    while (accepted < policy_.redundancy_k && next < ranked.size()) {
      const auto [score, i] = ranked[next++];
      // Beta thresholding (Alg. 2 Line 13): the requester cancels rather
      // than disclose to an unlikely-reachable worker. Under
      // kFirstContactOnly the threshold only guards the first disclosure.
      const bool beta_applies =
          policy_.rank == RankStrategy::kProbability && policy_.beta > 0.0 &&
          (policy_.beta_mode == BetaMode::kEveryContact || next == 1);
      if (beta_applies && score < policy_.beta) {
        cancelled = true;
        ++obs_beta_cancels;
        break;
      }
      // Requester sends the exact task location to the worker: this is
      // the protocol's only disclosure point.
      m.requester_to_worker_msgs += 1;
      const Worker& w = workload.workers[i];
      if (w.CanReach(task.location)) {
        matched[i] = true;
        if (rt.active_set) {
          // Active-set maintenance: full scans compact the shard at its
          // next scan; pruned runs drop the worker from the index so
          // queries stop returning it.
          if (pruner != nullptr) {
            pruner->Remove(static_cast<int64_t>(i));
          } else {
            shard_dirty[i / shard_size] = 1;
          }
        }
        ++accepted;
        const double travel = geo::Distance(w.location, task.location);
        result.assignments.push_back({task.id, w.id, travel});
        m.accepted_assignments += 1;
        m.travel_sum_m += travel;
      } else {
        // The worker learned the task location yet rejects: a false hit.
        m.false_hits += 1;
      }
    }
    if (obs_on) eo.e2e_seconds->Observe(Elapsed(stage_start));
    if (accepted >= policy_.redundancy_k) {
      m.assigned_tasks += 1;
    } else {
      // Task ends unassigned (cancelled or exhausted): reachable
      // candidates that were never contacted are false dismissals. On a
      // beta cancel, the candidate that tripped the threshold was not
      // contacted either.
      const size_t first_uncontacted = cancelled ? next - 1 : next;
      for (size_t k = first_uncontacted; k < ranked.size(); ++k) {
        if (workload.workers[ranked[k].second].CanReach(task.location)) {
          m.false_dismissals += 1;
        }
      }
    }
  }

  m.total_seconds = Elapsed(run_start);

  int64_t obs_band_evals = 0;
  int64_t obs_compactions = 0;
  for (const ShardScratch& sc : shards) {
    obs_band_evals += sc.band_evals;
    obs_compactions += sc.compactions;
  }

  // One atomic flush per counter per run; no-ops while disabled.
  eo.tasks->Increment(m.num_tasks);
  eo.assigned_tasks->Increment(m.assigned_tasks);
  eo.assignments->Increment(m.accepted_assignments);
  eo.candidates->Increment(m.candidates_sum);
  eo.workers_evaluated->Increment(obs_evaluated);
  eo.workers_pruned->Increment(obs_pruned);
  eo.alpha_rejections->Increment(obs_alpha_rejections);
  eo.beta_cancels->Increment(obs_beta_cancels);
  eo.disclosures->Increment(m.requester_to_worker_msgs);
  eo.false_hits->Increment(m.false_hits);
  eo.false_dismissals->Increment(m.false_dismissals);
  eo.band_evals->Increment(obs_band_evals);
  eo.active_compactions->Increment(obs_compactions);
  return result;
}

}  // namespace scguard::assign
