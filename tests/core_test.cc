#include <gtest/gtest.h>

#include <vector>

#include "core/protocol.h"
#include "core/scguard.h"
#include "data/workload.h"
#include "reachability/analytical_model.h"
#include "reachability/binary_model.h"
#include "stats/rng.h"

namespace scguard::core {
namespace {

using privacy::PrivacyParams;

constexpr PrivacyParams kDefault{0.7, 800.0};

TEST(WorkerDeviceTest, RegistrationHidesTrueLocation) {
  WorkerDevice device(3, {1000, 2000}, 1500, kDefault);
  stats::Rng rng(1);
  const WorkerRegistration reg = device.Register(rng);
  EXPECT_EQ(reg.worker_id, 3);
  EXPECT_DOUBLE_EQ(reg.reach_radius_m, 1500);
  // The reported location is perturbed (equality has probability zero).
  EXPECT_NE(reg.noisy_location, (geo::Point{1000, 2000}));
}

TEST(WorkerDeviceTest, OfferDecisionIsExactDiskTest) {
  WorkerDevice device(0, {0, 0}, 1000, kDefault);
  EXPECT_TRUE(device.HandleTaskOffer({600, 800}));    // d = 1000, inclusive.
  EXPECT_FALSE(device.HandleTaskOffer({600, 801}));
}

TEST(RequesterDeviceTest, RankingOrdersByReachability) {
  RequesterDevice requester(0, {0, 0}, kDefault);
  const reachability::AnalyticalModel model(kDefault);
  std::vector<CandidateWorker> candidates = {
      {0, {8000, 0}, 1500},  // Far.
      {1, {500, 0}, 1500},   // Near.
      {2, {3000, 0}, 1500},  // Middle.
  };
  const auto plan = requester.RankCandidates(candidates, model, /*beta=*/0.0);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].worker_id, 1);
  EXPECT_EQ(plan[1].worker_id, 2);
  EXPECT_EQ(plan[2].worker_id, 0);
}

TEST(RequesterDeviceTest, BetaFiltersLowProbabilityCandidates) {
  RequesterDevice requester(0, {0, 0}, kDefault);
  const reachability::AnalyticalModel model(kDefault);
  std::vector<CandidateWorker> candidates = {
      {0, {500, 0}, 2000},     // High probability.
      {1, {20000, 0}, 1000},   // Essentially unreachable.
  };
  const auto plan = requester.RankCandidates(candidates, model, /*beta=*/0.3);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].worker_id, 0);
}

TEST(TaskingServerTest, CandidatesRespectAlphaAndAvailability) {
  const reachability::AnalyticalModel model(kDefault);
  TaskingServer server(&model, /*alpha=*/0.1);
  server.RegisterWorker({0, {0, 0}, 2000});
  server.RegisterWorker({1, {500, 0}, 2000});
  server.RegisterWorker({2, {40000, 40000}, 1000});  // Hopeless.
  EXPECT_EQ(server.available_workers(), 3u);
  const TaskRequest request{0, {200, 0}};
  auto candidates = server.FindCandidates(request);
  EXPECT_EQ(candidates.size(), 2u);
  server.MarkAssigned(0);
  EXPECT_EQ(server.available_workers(), 2u);
  candidates = server.FindCandidates(request);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].worker_id, 1);
}

TEST(ProtocolCoordinatorTest, EndToEndAssignsAndCounts) {
  stats::Rng rng(2);
  const reachability::AnalyticalModel model(kDefault);
  TaskingServer server(&model, 0.1);
  std::vector<WorkerDevice> devices;
  // Worker ids must equal their index.
  for (int i = 0; i < 20; ++i) {
    devices.emplace_back(i, geo::Point{i * 500.0, 0.0}, 2000.0, kDefault);
  }
  for (auto& d : devices) server.RegisterWorker(d.Register(rng));

  ProtocolCoordinator coordinator(&server, &model, /*beta=*/0.1);
  RequesterDevice requester(0, {1000, 0}, kDefault);
  const TaskRequest request = requester.Submit(rng);
  const TaskOutcome outcome = coordinator.AssignTask(requester, request, devices);
  ASSERT_TRUE(outcome.assigned_worker.has_value());
  // The assigned worker really can reach the task.
  const WorkerDevice& assigned =
      devices[static_cast<size_t>(*outcome.assigned_worker)];
  EXPECT_TRUE(assigned.HandleTaskOffer(requester.exact_task_location()));
  // Message accounting: one request, one candidate list, >= 1 disclosure.
  EXPECT_EQ(coordinator.trace().task_requests, 1);
  EXPECT_EQ(coordinator.trace().candidate_lists_sent, 1);
  EXPECT_GE(coordinator.trace().task_location_disclosures, 1);
  EXPECT_EQ(coordinator.trace().task_location_disclosures,
            outcome.disclosures);
  EXPECT_EQ(coordinator.trace().rejections, outcome.disclosures - 1);
  // The worker left the pool.
  EXPECT_EQ(server.available_workers(), 19u);
}

TEST(ProtocolCoordinatorTest, HopelessTaskEndsUnassigned) {
  stats::Rng rng(3);
  const reachability::BinaryModel model;
  TaskingServer server(&model, 0.5);
  std::vector<WorkerDevice> devices;
  devices.emplace_back(0, geo::Point{0, 0}, 500.0, kDefault);
  server.RegisterWorker(devices[0].Register(rng));
  ProtocolCoordinator coordinator(&server, &model, 0.0);
  RequesterDevice requester(0, {100000, 100000}, kDefault);
  const TaskRequest request = requester.Submit(rng);
  const TaskOutcome outcome = coordinator.AssignTask(requester, request, devices);
  EXPECT_FALSE(outcome.assigned_worker.has_value());
  EXPECT_EQ(server.available_workers(), 1u);
}

// ---------------------------------------------------------------- Facade

TEST(ScGuardFacadeTest, CreateValidatesOptions) {
  ScGuardOptions options;
  options.worker_params = {0, 800};
  EXPECT_FALSE(ScGuard::Create(options).ok());
  options = ScGuardOptions();
  options.alpha = 0.0;
  EXPECT_FALSE(ScGuard::Create(options).ok());
  options = ScGuardOptions();
  options.beta = 1.5;
  EXPECT_FALSE(ScGuard::Create(options).ok());
  options = ScGuardOptions();
  options.redundancy_k = 0;
  EXPECT_FALSE(ScGuard::Create(options).ok());
  EXPECT_TRUE(ScGuard::Create(ScGuardOptions()).ok());
}

TEST(ScGuardFacadeTest, AlgorithmNames) {
  EXPECT_EQ(AlgorithmKindName(AlgorithmKind::kProbabilisticModel),
            "Probabilistic-Model");
  EXPECT_EQ(AlgorithmKindName(AlgorithmKind::kObliviousRN), "Oblivious-RN");
  ScGuardOptions options;
  options.algorithm = AlgorithmKind::kObliviousRR;
  auto guard = ScGuard::Create(options);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->algorithm_name(), "Oblivious-RR");
}

TEST(ScGuardFacadeTest, PerturbAndAssignRuns) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {20000, 20000});
  data::WorkloadConfig wconfig;
  wconfig.num_workers = 60;
  wconfig.num_tasks = 60;
  stats::Rng rng(4);
  const assign::Workload workload =
      data::MakeUniformWorkload(region, wconfig, rng);

  ScGuardOptions options;
  options.algorithm = AlgorithmKind::kProbabilisticModel;
  auto guard = ScGuard::Create(options);
  ASSERT_TRUE(guard.ok());
  const assign::MatchResult result = guard->PerturbAndAssign(workload, rng);
  EXPECT_GT(result.metrics.assigned_tasks, 0);
  EXPECT_LE(result.metrics.assigned_tasks, 60);
}

TEST(ScGuardFacadeTest, ProbabilisticDataBuildsEmpiricalModel) {
  ScGuardOptions options;
  options.algorithm = AlgorithmKind::kProbabilisticData;
  options.empirical.num_samples = 20000;  // Keep the test fast.
  options.empirical.region =
      geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});
  auto guard = ScGuard::Create(options);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->algorithm_name(), "Probabilistic-Data");

  data::WorkloadConfig wconfig;
  wconfig.num_workers = 40;
  wconfig.num_tasks = 40;
  stats::Rng rng(5);
  const assign::Workload workload =
      data::MakeUniformWorkload(options.empirical.region, wconfig, rng);
  const assign::MatchResult result = guard->PerturbAndAssign(workload, rng);
  EXPECT_GT(result.metrics.assigned_tasks, 0);
}

TEST(ScGuardFacadeTest, GroundTruthIgnoresNoise) {
  ScGuardOptions options;
  options.algorithm = AlgorithmKind::kGroundTruthNN;
  auto guard = ScGuard::Create(options);
  ASSERT_TRUE(guard.ok());
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {15000, 15000});
  data::WorkloadConfig wconfig;
  wconfig.num_workers = 50;
  wconfig.num_tasks = 50;
  stats::Rng rng(6);
  const assign::Workload workload =
      data::MakeUniformWorkload(region, wconfig, rng);
  const assign::MatchResult result = guard->Assign(workload, rng);
  EXPECT_EQ(result.metrics.false_hits, 0);
}

}  // namespace
}  // namespace scguard::core
