#ifndef SCGUARD_ASSIGN_STAGES_CONTACT_STAGE_H_
#define SCGUARD_ASSIGN_STAGES_CONTACT_STAGE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "assign/matcher.h"
#include "assign/metrics.h"
#include "assign/stages/rank_stage.h"
#include "obs/recorder.h"

namespace scguard::assign {

/// Default filter attribution for contact-audit events: call sites that
/// cannot say which U2U filter admitted a candidate (protocol-party plans,
/// variants) report kUnknown.
struct UnknownAdmitFilter {
  template <typename Id>
  obs::AuditFilter operator()(const Id&) const {
    return obs::AuditFilter::kUnknown;
  }
};

/// Worker-side self-selection floor of the parallel-broadcast U2E variant
/// (paper Sec. III-A): a candidate reveals its exact location to the
/// requester only when its own reachability estimate is at least
/// max(beta, kMinSelfRevealProbability). The floor keeps hopeless
/// candidates from disclosing themselves even when the requester runs with
/// beta = 0 (exhaustive ranking) — without it the broadcast variant's
/// worker-location disclosures would scale with the whole candidate set,
/// overstating the leakage the paper attributes to the design itself
/// rather than to a degenerate threshold choice.
inline constexpr double kMinSelfRevealProbability = 0.1;

/// The E2E contact stage (Alg. 2 Lines 13-17, DESIGN.md section 10): walks
/// a ranked candidate list best-first, disclosing the exact task location
/// to one worker at a time until `redundancy_k` workers accept, the beta
/// threshold cancels the task, or the list is exhausted. The stage owns
/// the disclosure accounting — every offer is a task-location disclosure,
/// every rejection a false hit — while the caller-supplied offer callback
/// owns the accept decision and its side effects (marking the worker
/// matched, travel bookkeeping).
class E2eContactStage {
 public:
  struct Config {
    /// Ranking strategy the scores came from; beta only guards
    /// probability-ranked contacts (Alg. 2 is the probability variant).
    RankStrategy rank = RankStrategy::kProbability;
    /// Disclosure threshold: cancel rather than disclose to a candidate
    /// scoring below it. 0 disables cancellation (Alg. 1 best-effort).
    double beta = 0.0;
    BetaMode beta_mode = BetaMode::kEveryContact;
    /// Redundant assignment (paper Sec. VII): contact until this many
    /// workers accept.
    int redundancy_k = 1;
  };

  /// Outcome of one task's contact loop.
  struct Outcome {
    int accepted = 0;          ///< Workers that accepted the task.
    int64_t disclosures = 0;   ///< Task-location disclosures made.
    int64_t false_hits = 0;    ///< Disclosed-to workers that rejected.
    bool cancelled = false;    ///< Beta threshold tripped.
    size_t next = 0;           ///< Entries consumed from the ranked list.

    /// First ranked entry that was never contacted (a beta cancel consumed
    /// its tripping entry without contacting it).
    size_t first_uncontacted() const { return cancelled ? next - 1 : next; }
  };

  explicit E2eContactStage(const Config& config) : config_(config) {}

  /// Walks `ranked` (score-desc / id-asc pairs) with beta gating.
  /// `offer(id)` must disclose the task to the worker and return whether it
  /// accepted, performing the caller's accept bookkeeping.
  ///
  /// `audit_task_id` / `admit_filter` feed the flight recorder's privacy
  /// audit trail (recorder.h): every disclosure emits a kAuditDisclosure
  /// event tagged with the task, worker, score, accept outcome, and the
  /// U2U filter that admitted the candidate (`admit_filter(id)`, consulted
  /// only when the recorder is on). Call sites without task context use
  /// the two-argument overload.
  template <typename Id, typename OfferFn, typename FilterFn>
  Outcome Contact(const std::vector<std::pair<double, Id>>& ranked,
                  OfferFn&& offer, int64_t audit_task_id,
                  FilterFn&& admit_filter) const {
    Outcome o;
    const bool audit = obs::RecorderEnabled();
    while (o.accepted < config_.redundancy_k && o.next < ranked.size()) {
      const auto& [score, id] = ranked[o.next++];
      // Beta thresholding (Alg. 2 Line 13): the requester cancels rather
      // than disclose to an unlikely-reachable worker. Under
      // kFirstContactOnly the threshold only guards the first disclosure.
      const bool beta_applies =
          config_.rank == RankStrategy::kProbability && config_.beta > 0.0 &&
          (config_.beta_mode == BetaMode::kEveryContact || o.next == 1);
      if (beta_applies && score < config_.beta) {
        o.cancelled = true;
        break;
      }
      // This is the protocol's only task-location disclosure point.
      ++o.disclosures;
      const bool accepted = offer(id);
      if (accepted) {
        ++o.accepted;
      } else {
        // The worker learned the task location yet rejects: a false hit.
        ++o.false_hits;
      }
      if (audit) {
        obs::AuditE2eDisclosure(audit_task_id, static_cast<int64_t>(id),
                                score, accepted, admit_filter(id));
      }
    }
    return o;
  }

  template <typename Id, typename OfferFn>
  Outcome Contact(const std::vector<std::pair<double, Id>>& ranked,
                  OfferFn&& offer) const {
    return Contact(ranked, std::forward<OfferFn>(offer), obs::kAuditNoTask,
                   UnknownAdmitFilter{});
  }

  /// As Contact for an already beta-filtered contact plan (the protocol
  /// parties rank and threshold on the requester device, then hand the
  /// coordinator a plain ordered list): no score gating, `offer` sees the
  /// plan entry itself. `id_of` projects the entry to the worker id for
  /// the audit event (scores are not visible at this layer).
  template <typename Entry, typename OfferFn, typename IdFn>
  Outcome ContactPlan(const std::vector<Entry>& plan, OfferFn&& offer,
                      int64_t audit_task_id, IdFn&& id_of) const {
    Outcome o;
    const bool audit = obs::RecorderEnabled();
    while (o.accepted < config_.redundancy_k && o.next < plan.size()) {
      const Entry& entry = plan[o.next++];
      ++o.disclosures;
      const bool accepted = offer(entry);
      if (accepted) {
        ++o.accepted;
      } else {
        ++o.false_hits;
      }
      if (audit) {
        obs::AuditE2eDisclosure(audit_task_id,
                                static_cast<int64_t>(id_of(entry)),
                                /*score=*/0.0, accepted,
                                obs::AuditFilter::kUnknown);
      }
    }
    return o;
  }

  template <typename Entry, typename OfferFn>
  Outcome ContactPlan(const std::vector<Entry>& plan, OfferFn&& offer) const {
    return ContactPlan(plan, std::forward<OfferFn>(offer), obs::kAuditNoTask,
                       [](const Entry&) { return int64_t{-1}; });
  }

  /// Contact plus the engine-side RunMetrics fold: disclosure/false-hit
  /// counters, the assigned-task tally, and — for tasks that end
  /// unassigned — false-dismissal attribution against ground truth via
  /// `can_reach(id)`.
  template <typename Id, typename OfferFn, typename ReachFn,
            typename FilterFn>
  Outcome Run(const std::vector<std::pair<double, Id>>& ranked,
              OfferFn&& offer, ReachFn&& can_reach, RunMetrics& m,
              int64_t audit_task_id, FilterFn&& admit_filter) const {
    const Outcome o = Contact(ranked, offer, audit_task_id,
                              std::forward<FilterFn>(admit_filter));
    m.requester_to_worker_msgs += o.disclosures;
    m.false_hits += o.false_hits;
    if (o.accepted >= config_.redundancy_k) {
      m.assigned_tasks += 1;
    } else {
      // Task ends unassigned (cancelled or exhausted): reachable candidates
      // that were never contacted are false dismissals. On a beta cancel,
      // the candidate that tripped the threshold was not contacted either.
      for (size_t k = o.first_uncontacted(); k < ranked.size(); ++k) {
        if (can_reach(ranked[k].second)) m.false_dismissals += 1;
      }
    }
    return o;
  }

  template <typename Id, typename OfferFn, typename ReachFn>
  Outcome Run(const std::vector<std::pair<double, Id>>& ranked,
              OfferFn&& offer, ReachFn&& can_reach, RunMetrics& m) const {
    return Run(ranked, std::forward<OfferFn>(offer),
               std::forward<ReachFn>(can_reach), m, obs::kAuditNoTask,
               UnknownAdmitFilter{});
  }

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_STAGES_CONTACT_STAGE_H_
