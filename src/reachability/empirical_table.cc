#include "reachability/empirical_table.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.h"
#include "common/str_format.h"

namespace scguard::reachability {

EmpiricalTable::EmpiricalTable(double bucket_width_m, int num_buckets,
                               double true_max_m, int true_bins)
    : bucket_width_(bucket_width_m), true_max_(true_max_m), true_bins_(true_bins) {
  SCGUARD_CHECK(bucket_width_m > 0.0 && num_buckets >= 1);
  SCGUARD_CHECK(true_max_m > 0.0 && true_bins >= 1);
  buckets_.reserve(static_cast<size_t>(num_buckets));
  for (int i = 0; i < num_buckets; ++i) {
    buckets_.emplace_back(0.0, true_max_m, true_bins);
  }
}

int EmpiricalTable::BucketIndex(double d_obs) const {
  SCGUARD_DCHECK(d_obs >= 0.0);
  const auto idx = static_cast<long>(d_obs / bucket_width_);
  return static_cast<int>(
      std::min<long>(idx, static_cast<long>(buckets_.size()) - 1));
}

void EmpiricalTable::Add(double d_true, double d_obs) {
  buckets_[static_cast<size_t>(BucketIndex(d_obs))].Add(d_true);
  ++total_samples_;
}

double EmpiricalTable::ProbBelow(double d_obs, double threshold) const {
  const int idx = BucketIndex(d_obs);
  const auto& bucket = buckets_[static_cast<size_t>(idx)];
  if (bucket.total_count() > 0) return bucket.FractionBelow(threshold);
  // Sparse-data fallback: walk outward to the nearest populated bucket and
  // shift the threshold by the difference of bucket centers, so a query in
  // an empty far bucket borrows the shape of its neighbor at the right
  // distance offset.
  for (int delta = 1; delta < num_buckets(); ++delta) {
    for (int cand : {idx - delta, idx + delta}) {
      if (cand < 0 || cand >= num_buckets()) continue;
      const auto& other = buckets_[static_cast<size_t>(cand)];
      if (other.total_count() == 0) continue;
      const double center_shift = static_cast<double>(cand - idx) * bucket_width_;
      return other.FractionBelow(threshold + center_shift);
    }
  }
  return 0.0;  // Entirely empty table.
}

Status EmpiricalTable::Merge(const EmpiricalTable& other) {
  if (other.bucket_width_ != bucket_width_ ||
      other.buckets_.size() != buckets_.size() ||
      other.true_max_ != true_max_ || other.true_bins_ != true_bins_) {
    return Status::InvalidArgument("empirical table geometries differ");
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    SCGUARD_RETURN_NOT_OK(buckets_[i].Merge(other.buckets_[i]));
  }
  total_samples_ += other.total_samples_;
  return Status::OK();
}

void EmpiricalTable::WarmQueryCache() const {
  for (const auto& b : buckets_) {
    // FractionBelow(lo) builds the prefix sums; empty buckets never build
    // them (every query path early-returns), so skip those.
    if (b.total_count() > 0) (void)b.FractionBelow(b.lo());
  }
}

const stats::Histogram& EmpiricalTable::bucket(int index) const {
  SCGUARD_CHECK(index >= 0 && index < num_buckets());
  return buckets_[static_cast<size_t>(index)];
}

void EmpiricalTable::Serialize(std::ostream& os) const {
  os << "empirical-table-v1 " << bucket_width_ << ' ' << buckets_.size() << ' '
     << true_max_ << ' ' << true_bins_ << ' ' << total_samples_ << '\n';
  for (const auto& b : buckets_) {
    b.Serialize(os);
    os << '\n';
  }
}

Result<EmpiricalTable> EmpiricalTable::Deserialize(std::istream& is) {
  std::string magic;
  double width, true_max;
  size_t n;
  int true_bins;
  uint64_t total;
  if (!(is >> magic >> width >> n >> true_max >> true_bins >> total) ||
      magic != "empirical-table-v1") {
    return Status::IOError("bad empirical table header");
  }
  if (!(width > 0.0) || n == 0 || n > (1u << 20) || !(true_max > 0.0) ||
      true_bins < 1) {
    return Status::IOError("bad empirical table geometry");
  }
  EmpiricalTable table(width, static_cast<int>(n), true_max, true_bins);
  table.total_samples_ = total;
  table.buckets_.clear();
  for (size_t i = 0; i < n; ++i) {
    SCGUARD_ASSIGN_OR_RETURN(stats::Histogram h, stats::Histogram::Deserialize(is));
    table.buckets_.push_back(std::move(h));
  }
  return table;
}

}  // namespace scguard::reachability
