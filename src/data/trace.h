#ifndef SCGUARD_DATA_TRACE_H_
#define SCGUARD_DATA_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/result.h"
#include "data/trip_model.h"
#include "geo/point.h"
#include "stats/rng.h"

namespace scguard::data {

/// One raw GPS fix, the record format of the real T-Drive release
/// (taxi id, timestamp, position).
struct GpsFix {
  int64_t taxi_id = 0;
  double time_s = 0.0;  ///< Seconds since start of day.
  geo::Point position;  ///< Local meters.
};

/// Tuning of the trace -> trips extractor.
struct TraceExtractorConfig {
  /// A taxi stationary within `stop_radius_m` for at least `stop_time_s`
  /// is considered stopped (passenger exchange).
  double stop_radius_m = 150.0;
  double stop_time_s = 180.0;
  /// Fixes implying speed above this are GPS glitches and are dropped.
  double max_speed_mps = 40.0;
  /// Trips shorter than this (straight-line) are noise and discarded.
  double min_trip_distance_m = 300.0;
};

/// Extracts trips from raw GPS traces by stay-point detection: each
/// maximal stationary episode is a stop; the movement between consecutive
/// stops of a taxi is a trip (pick-up at the first stop's end, drop-off at
/// the next stop's start). Fixes need not be sorted; they are grouped by
/// taxi and time-ordered internally. This is the preprocessing the paper's
/// T-Drive evaluation presumes (drivers' drop-off / passengers' pick-up
/// locations).
Result<std::vector<Trip>> ExtractTripsFromTraces(
    const std::vector<GpsFix>& fixes, const TraceExtractorConfig& config = {});

/// Controls for RenderTraces.
struct TraceRenderConfig {
  double sample_interval_s = 30.0;  ///< T-Drive averages ~3 min; we default denser.
  double gps_noise_m = 15.0;        ///< Per-fix isotropic Gaussian jitter.
  double stop_dwell_s = 240.0;      ///< Stationary time emitted around stops.
};

/// Inverse of the extractor, for testing and synthetic-data generation:
/// renders a trip list into the raw GPS fixes a taxi fleet would log
/// (linear movement between endpoints, dwell at stops, sampling jitter).
std::vector<GpsFix> RenderTraces(const std::vector<Trip>& trips,
                                 const TraceRenderConfig& config,
                                 stats::Rng& rng);

/// Reads raw fixes in the T-Drive text format
/// `taxi_id,time_s,x,y` (local meters; header optional).
Result<std::vector<GpsFix>> LoadFixesCsv(std::istream& is);

/// Writes fixes in the format LoadFixesCsv reads.
void WriteFixesCsv(const std::vector<GpsFix>& fixes, std::ostream& os);

}  // namespace scguard::data

#endif  // SCGUARD_DATA_TRACE_H_
