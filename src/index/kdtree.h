#ifndef SCGUARD_INDEX_KDTREE_H_
#define SCGUARD_INDEX_KDTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geo/point.h"

namespace scguard::index {

/// A static 2-d tree over (point, id) entries supporting nearest-neighbor,
/// k-nearest and radius queries.
///
/// Used by the non-private baselines (nearest-worker lookup) and available
/// to deployments whose U2E stage ranks by distance; built once per worker
/// snapshot (median splits, O(n log n)), queries O(log n) expected.
class KdTree {
 public:
  struct Entry {
    geo::Point point;
    int64_t id = 0;
  };

  struct Neighbor {
    int64_t id = 0;
    double distance = 0.0;
  };

  /// Builds the tree from `entries` (copied, then recursively median-split).
  explicit KdTree(std::vector<Entry> entries);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// The nearest entry to `query`, optionally skipping entries for which
  /// `skip` returns true (e.g. already-matched workers). Returns id -1
  /// when no eligible entry exists.
  Neighbor Nearest(geo::Point query,
                   const std::function<bool(int64_t)>& skip = nullptr) const;

  /// The k nearest entries, closest first.
  std::vector<Neighbor> KNearest(geo::Point query, int k) const;

  /// All entries within `radius` of `query` (unordered).
  std::vector<Neighbor> WithinRadius(geo::Point query, double radius) const;

 private:
  struct Node {
    int entry = -1;       // Index into entries_.
    int left = -1;
    int right = -1;
    bool split_on_x = true;
  };

  int Build(int lo, int hi, bool split_on_x, std::vector<int>& order);
  void NearestRec(int node, geo::Point query,
                  const std::function<bool(int64_t)>& skip, int exclude_count,
                  std::vector<Neighbor>& best, size_t k) const;
  void RadiusRec(int node, geo::Point query, double radius,
                 std::vector<Neighbor>& out) const;

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace scguard::index

#endif  // SCGUARD_INDEX_KDTREE_H_
