
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bessel.cc" "src/stats/CMakeFiles/scguard_stats.dir/bessel.cc.o" "gcc" "src/stats/CMakeFiles/scguard_stats.dir/bessel.cc.o.d"
  "/root/repo/src/stats/gamma.cc" "src/stats/CMakeFiles/scguard_stats.dir/gamma.cc.o" "gcc" "src/stats/CMakeFiles/scguard_stats.dir/gamma.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/scguard_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/scguard_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/lambert_w.cc" "src/stats/CMakeFiles/scguard_stats.dir/lambert_w.cc.o" "gcc" "src/stats/CMakeFiles/scguard_stats.dir/lambert_w.cc.o.d"
  "/root/repo/src/stats/marcum_q.cc" "src/stats/CMakeFiles/scguard_stats.dir/marcum_q.cc.o" "gcc" "src/stats/CMakeFiles/scguard_stats.dir/marcum_q.cc.o.d"
  "/root/repo/src/stats/normal.cc" "src/stats/CMakeFiles/scguard_stats.dir/normal.cc.o" "gcc" "src/stats/CMakeFiles/scguard_stats.dir/normal.cc.o.d"
  "/root/repo/src/stats/quadrature.cc" "src/stats/CMakeFiles/scguard_stats.dir/quadrature.cc.o" "gcc" "src/stats/CMakeFiles/scguard_stats.dir/quadrature.cc.o.d"
  "/root/repo/src/stats/rice.cc" "src/stats/CMakeFiles/scguard_stats.dir/rice.cc.o" "gcc" "src/stats/CMakeFiles/scguard_stats.dir/rice.cc.o.d"
  "/root/repo/src/stats/rng.cc" "src/stats/CMakeFiles/scguard_stats.dir/rng.cc.o" "gcc" "src/stats/CMakeFiles/scguard_stats.dir/rng.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scguard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
