#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "assign/algorithms.h"
#include "assign/scguard_engine.h"
#include "data/workload.h"
#include "reachability/analytical_model.h"
#include "reachability/binary_model.h"
#include "reachability/empirical_model.h"
#include "reachability/empirical_table.h"
#include "reachability/kernel.h"
#include "stats/rice.h"
#include "stats/rng.h"

namespace scguard::reachability {
namespace {

using assign::AlgorithmParams;
using assign::MatcherHandle;
using assign::MatchResult;
using assign::Workload;
using privacy::PrivacyParams;

constexpr PrivacyParams kDefault{0.7, 800.0};

Workload NoisyWorkload(int n, uint64_t seed) {
  const geo::BoundingBox region =
      geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});
  data::WorkloadConfig config;
  config.num_workers = n;
  config.num_tasks = n;
  stats::Rng rng(seed);
  Workload w = data::MakeUniformWorkload(region, config, rng);
  data::PerturbWorkload(kDefault, kDefault, rng, w);
  return w;
}

/// Asserts two runs produced the same protocol outcome bit for bit:
/// assignment sequence (ids and exact travel distances) and every
/// decision-derived metric. Timing metrics are excluded.
void ExpectBitIdentical(const MatchResult& a, const MatchResult& b,
                        const std::string& label) {
  ASSERT_EQ(a.assignments.size(), b.assignments.size()) << label;
  for (size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].task_id, b.assignments[i].task_id) << label;
    EXPECT_EQ(a.assignments[i].worker_id, b.assignments[i].worker_id) << label;
    EXPECT_EQ(a.assignments[i].travel_m, b.assignments[i].travel_m) << label;
  }
  EXPECT_EQ(a.metrics.assigned_tasks, b.metrics.assigned_tasks) << label;
  EXPECT_EQ(a.metrics.candidates_sum, b.metrics.candidates_sum) << label;
  EXPECT_EQ(a.metrics.false_hits, b.metrics.false_hits) << label;
  EXPECT_EQ(a.metrics.false_dismissals, b.metrics.false_dismissals) << label;
  EXPECT_EQ(a.metrics.requester_to_worker_msgs,
            b.metrics.requester_to_worker_msgs)
      << label;
  EXPECT_EQ(a.metrics.precision_sum, b.metrics.precision_sum) << label;
  EXPECT_EQ(a.metrics.recall_sum, b.metrics.recall_sum) << label;
}

// ------------------------------------------- Engine bit-identity contract

// The headline exactness contract: flipping the threshold kernel changes
// nothing observable — same assignments, same metrics, same RNG stream —
// across all three reachability models.
TEST(KernelEngineTest, ThresholdToggleIsBitIdenticalAcrossModels) {
  const Workload w = NoisyWorkload(120, 31);
  stats::Rng build_rng(32);
  EmpiricalModelConfig config;
  config.region = geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});
  config.num_samples = 60000;
  auto empirical_built = EmpiricalModel::Build(config, kDefault, build_rng);
  ASSERT_TRUE(empirical_built.ok());
  auto empirical = std::make_shared<const EmpiricalModel>(
      std::move(*empirical_built));

  using Factory = MatcherHandle (*)(
      const AlgorithmParams&, std::shared_ptr<const EmpiricalModel>);
  const std::pair<const char*, Factory> variants[] = {
      {"oblivious-binary",
       [](const AlgorithmParams& p, std::shared_ptr<const EmpiricalModel>) {
         return MakeOblivious(assign::RankStrategy::kNearest, p);
       }},
      {"probabilistic-model",
       [](const AlgorithmParams& p, std::shared_ptr<const EmpiricalModel>) {
         return MakeProbabilisticModel(p);
       }},
      {"probabilistic-data",
       [](const AlgorithmParams& p, std::shared_ptr<const EmpiricalModel> m) {
         return MakeProbabilisticData(p, std::move(m));
       }}};

  for (const auto& [label, make] : variants) {
    AlgorithmParams params;
    params.worker_params = kDefault;
    params.task_params = kDefault;
    params.kernel.alpha_thresholds = true;
    MatcherHandle on = make(params, empirical);
    params.kernel.alpha_thresholds = false;
    MatcherHandle off = make(params, empirical);
    stats::Rng rng_on(33), rng_off(33);
    const MatchResult a = on.Run(w, rng_on);
    const MatchResult b = off.Run(w, rng_off);
    ExpectBitIdentical(a, b, label);
    // Both runs must have consumed the RNG stream identically.
    EXPECT_EQ(rng_on.UniformDouble(), rng_off.UniformDouble()) << label;
  }
}

TEST(KernelEngineTest, ThresholdToggleIsBitIdenticalUnderPruning) {
  const Workload w = NoisyWorkload(150, 34);
  for (auto backend :
       {index::PrunerBackend::kLinearScan, index::PrunerBackend::kGrid,
        index::PrunerBackend::kRTree}) {
    AlgorithmParams params;
    params.worker_params = kDefault;
    params.task_params = kDefault;
    params.pruning_gamma = 0.9;
    params.pruning_backend = backend;
    params.kernel.alpha_thresholds = true;
    MatcherHandle on = MakeProbabilisticModel(params);
    params.kernel.alpha_thresholds = false;
    MatcherHandle off = MakeProbabilisticModel(params);
    stats::Rng rng_on(35), rng_off(35);
    const MatchResult a = on.Run(w, rng_on);
    const MatchResult b = off.Run(w, rng_off);
    ExpectBitIdentical(a, b, std::string(index::PrunerBackendName(backend)));
    EXPECT_EQ(rng_on.UniformDouble(), rng_off.UniformDouble());
  }
}

// Sorted-pruner satellite: pruned runs must also match the unpruned scan
// exactly at near-certain gamma (the engine no longer re-sorts, so this
// doubles as the ascending-id contract check).
TEST(KernelEngineTest, PrunedRunsStayIdenticalToUnprunedAtHighGamma) {
  const Workload w = NoisyWorkload(100, 36);
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  MatcherHandle plain = MakeProbabilisticModel(params);
  stats::Rng rng_plain(37);
  const MatchResult base = plain.Run(w, rng_plain);
  for (auto backend :
       {index::PrunerBackend::kLinearScan, index::PrunerBackend::kGrid,
        index::PrunerBackend::kRTree}) {
    params.pruning_gamma = 0.999;
    params.pruning_backend = backend;
    MatcherHandle pruned = MakeProbabilisticModel(params);
    stats::Rng rng(37);
    ExpectBitIdentical(base, pruned.Run(w, rng),
                       std::string(index::PrunerBackendName(backend)));
  }
}

// ------------------------------------------------- Threshold inversion

// The inversion agrees with direct evaluation everywhere, including at
// +/- 1 ulp around both critical distances.
TEST(AlphaThresholdTest, AgreesWithDirectEvalAroundBoundary) {
  const AnalyticalModel model(kDefault);
  for (double alpha : {0.05, 0.1, 0.4, 0.9}) {
    AlphaThresholdCache cache(&model, Stage::kU2U, alpha);
    for (double radius : {600.0, 1400.0, 3000.0}) {
      const AlphaThreshold& t = cache.For(radius);
      // At alpha = 0.4, R = 600 even p(0) < alpha: no accept region exists
      // (accept_below_m = -1) and the filter certainly rejects everything.
      EXPECT_EQ(t.accept_below_m >= 0.0,
                model.ProbReachable(Stage::kU2U, 0.0, radius) >= alpha)
          << "alpha=" << alpha << " R=" << radius;
      std::vector<double> probes;
      for (double b : {t.accept_below_m, t.reject_above_m}) {
        if (b < 0.0 || std::isinf(b)) continue;
        if (b > 0.0) probes.push_back(std::nextafter(b, 0.0));
        probes.push_back(b);
        probes.push_back(std::nextafter(b, 1e18));
      }
      for (double d = 0.0; d <= 12000.0; d += 97.0) probes.push_back(d);
      for (double d : probes) {
        const bool direct =
            model.ProbReachable(Stage::kU2U, d, radius) >= alpha;
        EXPECT_EQ(cache.IsCandidate(d, radius), direct)
            << "alpha=" << alpha << " R=" << radius << " d=" << d;
      }
    }
    // One inversion per distinct radius, memoized.
    EXPECT_EQ(cache.size(), 3u);
  }
}

TEST(AlphaThresholdTest, BinaryModelThresholdIsExactStep) {
  const BinaryModel model;
  AlphaThresholdCache cache(&model, Stage::kU2U, 0.5);
  const double r = 1000.0;
  EXPECT_TRUE(cache.IsCandidate(r, r));  // d == R accepts (p = 1).
  EXPECT_FALSE(cache.IsCandidate(std::nextafter(r, 1e18), r));
  EXPECT_TRUE(cache.IsCandidate(0.0, r));
  // No direct evaluations needed: the step is representable exactly.
  EXPECT_EQ(cache.exact_evals(), 0);
}

// The empirical table is piecewise-constant in d_obs and need not be
// monotone; the inversion must still reproduce every per-bucket decision.
TEST(AlphaThresholdTest, EmpiricalInversionMatchesBucketDecisions) {
  stats::Rng rng(38);
  EmpiricalModelConfig config;
  config.region = geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});
  config.num_samples = 40000;
  const auto model = EmpiricalModel::Build(config, kDefault, rng);
  ASSERT_TRUE(model.ok());
  for (double alpha : {0.05, 0.3, 0.7}) {
    AlphaThresholdCache cache(&*model, Stage::kU2U, alpha);
    for (double radius : {800.0, 1400.0}) {
      const double width = model->u2u_table().bucket_width_m();
      for (int b = 0; b < model->u2u_table().num_buckets(); ++b) {
        // Probe the bucket's interior and both edges.
        for (double d : {b * width, (b + 0.5) * width,
                         std::nextafter((b + 1) * width, 0.0)}) {
          const bool direct =
              model->ProbReachable(Stage::kU2U, d, radius) >= alpha;
          EXPECT_EQ(cache.IsCandidate(d, radius), direct)
              << "alpha=" << alpha << " R=" << radius << " d=" << d;
        }
      }
    }
  }
}

// ------------------------------------------------------- Batch evaluation

TEST(BatchEvalTest, MatchesScalarBitForBit) {
  stats::Rng rng(39);
  EmpiricalModelConfig config;
  config.region = geo::BoundingBox::FromCorners({0, 0}, {20000, 20000});
  config.num_samples = 30000;
  const auto empirical = EmpiricalModel::Build(config, kDefault, rng);
  ASSERT_TRUE(empirical.ok());
  const AnalyticalModel analytical(kDefault);
  const BinaryModel binary;
  const ReachabilityModel* models[] = {&binary, &analytical, &*empirical};

  const size_t n = 257;
  std::vector<double> d(n), r(n), batch(n);
  for (size_t i = 0; i < n; ++i) {
    d[i] = rng.UniformDouble(0.0, 15000.0);
    r[i] = rng.UniformDouble(300.0, 3000.0);
  }
  for (const ReachabilityModel* model : models) {
    for (Stage stage : {Stage::kU2U, Stage::kU2E}) {
      model->ProbReachableBatch(stage, d.data(), r.data(), n, batch.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(batch[i], model->ProbReachable(stage, d[i], r[i]))
            << model->name() << " " << StageName(stage) << " i=" << i;
      }
    }
  }
}

// ------------------------------------------------------------------ LUT

TEST(KernelLutTest, ErrorBoundHoldsAgainstDirectRice) {
  const AnalyticalModel model(kDefault);
  KernelOptions options;
  options.u2e_lut = true;
  KernelLut lut(&model, Stage::kU2E, options);
  // U2E under the paper model IS the Rice CDF: check the LUT against both
  // the model and an independent 1 - MarcumQ1 evaluation.
  const double sigma = std::sqrt(2.0) * kDefault.radius_m / kDefault.epsilon;
  double worst = 0.0;
  for (double radius : {700.0, 1400.0, 2800.0}) {
    for (double d = 0.0; d <= 20000.0; d += 3.7) {
      const double got = lut.Prob(d, radius);
      const double direct = model.ProbReachable(Stage::kU2E, d, radius);
      worst = std::max(worst, std::abs(got - direct));
      ASSERT_NEAR(got, direct, options.lut_max_abs_error)
          << "R=" << radius << " d=" << d;
      const double marcum = stats::RiceDistribution(d, sigma).Cdf(radius);
      ASSERT_NEAR(got, marcum, options.lut_max_abs_error)
          << "R=" << radius << " d=" << d;
    }
  }
  EXPECT_EQ(lut.tables_built(), 3u);
  EXPECT_LE(lut.worst_verified_error(), options.lut_max_abs_error);
  EXPECT_GT(worst, 0.0);  // The LUT interpolates, it is not a pass-through.
}

TEST(KernelLutTest, EngineWithLutStaysCloseToExactScoring) {
  const Workload w = NoisyWorkload(100, 40);
  AlgorithmParams params;
  params.worker_params = kDefault;
  params.task_params = kDefault;
  MatcherHandle exact = MakeProbabilisticModel(params);
  params.kernel.u2e_lut = true;
  MatcherHandle lut = MakeProbabilisticModel(params);
  stats::Rng rng_a(41), rng_b(41);
  const MatchResult a = exact.Run(w, rng_a);
  const MatchResult b = lut.Run(w, rng_b);
  // The 1e-4 score error can only flip near-tied rankings; the aggregate
  // outcome must stay essentially unchanged.
  EXPECT_EQ(a.metrics.candidates_sum, b.metrics.candidates_sum);
  EXPECT_NEAR(static_cast<double>(a.metrics.assigned_tasks),
              static_cast<double>(b.metrics.assigned_tasks), 2.0);
}

// ----------------------------------------- Empirical sparse fallback

TEST(EmpiricalTableTest, SparseFallbackIndexMatchesLazyWalk) {
  // A sparse table: only buckets 2, 7 and 9 hold samples.
  EmpiricalTable walk(100.0, 12, 4000.0, 40);
  walk.Add(500.0, 250.0);
  walk.Add(900.0, 270.0);
  walk.Add(1500.0, 770.0);
  walk.Add(3500.0, 950.0);
  EmpiricalTable indexed(100.0, 12, 4000.0, 40);
  indexed.Add(500.0, 250.0);
  indexed.Add(900.0, 270.0);
  indexed.Add(1500.0, 770.0);
  indexed.Add(3500.0, 950.0);
  indexed.WarmQueryCache();  // Builds the nearest-populated index.
  for (int b = 0; b < 12; ++b) {
    const double d = (b + 0.25) * 100.0;
    for (double threshold : {400.0, 1000.0, 2600.0}) {
      EXPECT_EQ(indexed.ProbBelow(d, threshold), walk.ProbBelow(d, threshold))
          << "bucket=" << b << " threshold=" << threshold;
    }
  }
}

TEST(EmpiricalTableTest, MergeInvalidatesFallbackIndex) {
  EmpiricalTable a(100.0, 8, 4000.0, 40);
  a.Add(100.0, 150.0);
  a.WarmQueryCache();
  EmpiricalTable b(100.0, 8, 4000.0, 40);
  b.Add(600.0, 650.0);
  ASSERT_TRUE(a.Merge(b).ok());
  // Bucket 6 is now populated; a stale index would shift the query to
  // bucket 1 and see only the short sample.
  EXPECT_GT(a.ProbBelow(650.0, 700.0), 0.99);
  a.WarmQueryCache();
  // Post-merge + re-warm must agree with a never-warmed table holding the
  // same samples on every bucket (ties included).
  EmpiricalTable fresh(100.0, 8, 4000.0, 40);
  fresh.Add(100.0, 150.0);
  fresh.Add(600.0, 650.0);
  for (int bucket = 0; bucket < 8; ++bucket) {
    const double d = (bucket + 0.5) * 100.0;
    for (double threshold : {150.0, 700.0}) {
      EXPECT_EQ(a.ProbBelow(d, threshold), fresh.ProbBelow(d, threshold))
          << "bucket=" << bucket << " threshold=" << threshold;
    }
  }
}

}  // namespace
}  // namespace scguard::reachability
