# Empty compiler generated dependencies file for bench_dynamic_workers.
# This may be replaced when dependencies are built.
