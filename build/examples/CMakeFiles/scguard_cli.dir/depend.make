# Empty dependencies file for scguard_cli.
# This may be replaced when dependencies are built.
