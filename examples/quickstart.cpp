// Quickstart: the three core primitives of SCGuard in ~60 lines —
// 1. perturb a location with geo-indistinguishability,
// 2. quantify worker-task reachability from noisy observations,
// 3. run a private online assignment through the ScGuard facade.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/scguard.h"
#include "data/beijing.h"
#include "data/workload.h"
#include "privacy/geo_ind.h"
#include "reachability/analytical_model.h"

int main() {
  using namespace scguard;

  // --- 1. Geo-indistinguishable perturbation (device-side) -------------
  // (eps = 0.7, r = 800 m): an adversary seeing the reported location
  // cannot distinguish true locations within 800 m beyond a factor e^0.7.
  const privacy::PrivacyParams params{0.7, 800.0};
  const privacy::GeoIndMechanism mechanism(params);
  stats::Rng rng(2024);

  const geo::Point true_location{1250.0, -430.0};  // Local meters.
  const geo::Point reported = mechanism.Perturb(true_location, rng);
  std::cout << "true location:     " << true_location << "\n"
            << "reported location: " << reported << " (noise "
            << geo::Distance(true_location, reported) << " m)\n"
            << "90%-confidence radius around a report: "
            << mechanism.ConfidenceRadius(0.9) << " m\n\n";

  // --- 2. Reachability from noisy data ---------------------------------
  // A worker willing to travel 1400 m was observed (noisily) 2 km from a
  // task: how likely can they actually reach it?
  const reachability::AnalyticalModel model(params);
  std::cout << "Pr(reachable | observed 2 km, R_w = 1400 m)\n"
            << "  server view  (both noisy, U2U): "
            << model.ProbReachable(reachability::Stage::kU2U, 2000.0, 1400.0)
            << "\n  requester view (task exact, U2E): "
            << model.ProbReachable(reachability::Stage::kU2E, 2000.0, 1400.0)
            << "\n\n";

  // --- 3. Private online assignment ------------------------------------
  core::ScGuardOptions options;
  options.algorithm = core::AlgorithmKind::kProbabilisticModel;
  options.worker_params = params;
  options.task_params = params;
  auto guard = core::ScGuard::Create(options);
  if (!guard.ok()) {
    std::cerr << guard.status() << "\n";
    return 1;
  }

  data::WorkloadConfig workload_config;
  workload_config.num_workers = 200;
  workload_config.num_tasks = 200;
  const assign::Workload workload =
      data::MakeUniformWorkload(data::BeijingRegion(), workload_config, rng);

  const assign::MatchResult result = guard->PerturbAndAssign(workload, rng);
  std::cout << "assigned " << result.metrics.assigned_tasks << "/"
            << result.metrics.num_tasks << " tasks privately\n"
            << "mean travel distance: " << result.metrics.MeanTravelM()
            << " m\n"
            << "task-location disclosures to rejecting workers (false hits): "
            << result.metrics.false_hits << "\n";
  return 0;
}
