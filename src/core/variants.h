#ifndef SCGUARD_CORE_VARIANTS_H_
#define SCGUARD_CORE_VARIANTS_H_

#include <optional>
#include <vector>

#include "core/protocol.h"
#include "privacy/location_set.h"
#include "reachability/model.h"

namespace scguard::core {

/// The two alternative U2E designs the paper considers and rejects
/// (Sec. III-A), implemented so their cost can be measured rather than
/// argued:
///
/// * kParallelBroadcast — the server forwards the *perturbed* task
///   location to every candidate at once; candidates who deem it
///   reachable reveal themselves (their exact locations) to the
///   requester. More round-trips saved, but every self-revealing
///   candidate discloses a worker location, and several may do so for
///   one task.
/// * kServerRanked — candidates send their reachability likelihoods back
///   to the *server*, which picks the best. The responses are computed
///   from the same task, so they are correlated observations of it: to
///   keep (eps, r)-Geo-I for the task the requester must fall back to
///   location-set budgeting (eps / |candidates| per response), collapsing
///   accuracy exactly as the paper predicts.
enum class U2eVariant { kSequential, kParallelBroadcast, kServerRanked };

constexpr std::string_view U2eVariantName(U2eVariant v) {
  switch (v) {
    case U2eVariant::kSequential:
      return "sequential";
    case U2eVariant::kParallelBroadcast:
      return "parallel-broadcast";
    case U2eVariant::kServerRanked:
      return "server-ranked";
  }
  return "?";
}

/// Outcome of one task under a variant, with its disclosure profile.
struct VariantOutcome {
  std::optional<int64_t> assigned_worker;
  int64_t task_location_disclosures = 0;    ///< Exact task loc -> workers.
  int64_t worker_location_disclosures = 0;  ///< Exact worker loc -> requester.
  int64_t server_learned_responses = 0;     ///< Correlated signals to server.
};

/// Runs one task through the chosen U2E variant against a fleet of worker
/// devices (ids equal to their index) given the server's candidate list.
/// `request` is the task's U2U submission (its noisy location is what
/// broadcast variants show to candidates); `model` scores reachability
/// where the variant needs it; `beta` applies to sequential ranking and to
/// the candidates' self-selection threshold in the broadcast variant.
VariantOutcome RunU2eVariant(U2eVariant variant,
                             const RequesterDevice& requester,
                             const TaskRequest& request,
                             const std::vector<CandidateWorker>& candidates,
                             const std::vector<WorkerDevice>& workers,
                             const reachability::ReachabilityModel& model,
                             double beta, stats::Rng& rng);

}  // namespace scguard::core

#endif  // SCGUARD_CORE_VARIANTS_H_
