#include "assign/scguard_engine.h"

#include <chrono>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "assign/stages/contact_stage.h"
#include "common/check.h"
#include "common/str_format.h"
#include "geo/point.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace scguard::assign {
namespace {

using Clock = std::chrono::steady_clock;

double Elapsed(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

/// The engine's metric set (DESIGN.md §7), resolved once per process.
/// Counts are accumulated in plain locals during a run and flushed with
/// one Increment each at the end, so the per-worker hot loop never
/// touches an atomic; stage histograms additionally cost two clock reads
/// per task per stage, gated on obs::Enabled().
struct EngineObs {
  obs::Counter* tasks;
  obs::Counter* assigned_tasks;
  obs::Counter* assignments;
  obs::Counter* candidates;
  obs::Counter* workers_evaluated;
  obs::Counter* workers_pruned;
  obs::Counter* alpha_rejections;
  obs::Counter* beta_cancels;
  obs::Counter* disclosures;
  obs::Counter* false_hits;
  obs::Counter* false_dismissals;
  obs::Counter* band_evals;
  obs::Counter* active_compactions;
  obs::Counter* cells_bulk_accepted;
  obs::Counter* cells_skipped;
  obs::Counter* boundary_workers;
  obs::Counter* u2u_gather_bytes;
  obs::Counter* cells_emitted_direct;
  obs::Histogram* u2u_seconds;
  obs::Histogram* u2e_seconds;
  obs::Histogram* e2e_seconds;
  obs::Histogram* u2u_scan_workers;

  static const EngineObs& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static const EngineObs o = {
        registry.GetCounter("scguard.engine.tasks"),
        registry.GetCounter("scguard.engine.assigned_tasks"),
        registry.GetCounter("scguard.engine.assignments"),
        registry.GetCounter("scguard.engine.candidates"),
        registry.GetCounter("scguard.engine.workers_evaluated"),
        registry.GetCounter("scguard.engine.workers_pruned"),
        registry.GetCounter("scguard.engine.alpha_rejections"),
        registry.GetCounter("scguard.engine.beta_cancels"),
        registry.GetCounter("scguard.engine.disclosures"),
        registry.GetCounter("scguard.engine.false_hits"),
        registry.GetCounter("scguard.engine.false_dismissals"),
        registry.GetCounter("scguard.engine.u2u_band_evals"),
        registry.GetCounter("scguard.engine.active_compactions"),
        registry.GetCounter("scguard.engine.cells_bulk_accepted"),
        registry.GetCounter("scguard.engine.cells_skipped"),
        registry.GetCounter("scguard.engine.boundary_workers"),
        registry.GetCounter("scguard.engine.u2u_gather_bytes"),
        registry.GetCounter("scguard.engine.cells_emitted_direct"),
        registry.GetHistogram("scguard.engine.u2u_seconds"),
        registry.GetHistogram("scguard.engine.u2e_seconds"),
        registry.GetHistogram("scguard.engine.e2e_seconds"),
        registry.GetHistogram("scguard.engine.u2u_scan_workers")};
    return o;
  }
};

/// Pre-interned flight-recorder ids for the engine's per-task stage spans
/// (recorder.h: interning is a mutex, so it happens once per process, not
/// per task).
struct EngineTraceIds {
  uint16_t u2u;
  uint16_t u2e;
  uint16_t e2e;

  static const EngineTraceIds& Get() {
    auto& recorder = obs::FlightRecorder::Global();
    static const EngineTraceIds ids = {
        recorder.InternName("engine.u2u"),
        recorder.InternName("engine.u2e"),
        recorder.InternName("engine.e2e")};
    return ids;
  }
};

uint64_t ToNs(Clock::time_point t) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
}

}  // namespace

ScGuardEngine::ScGuardEngine(EnginePolicy policy) : policy_(std::move(policy)) {
  SCGUARD_CHECK(policy_.u2u_model != nullptr);
  if (policy_.rank == RankStrategy::kProbability) {
    SCGUARD_CHECK(policy_.u2e_model != nullptr);
  }
  SCGUARD_CHECK(policy_.alpha > 0.0 && policy_.alpha <= 1.0);
  SCGUARD_CHECK(policy_.beta >= 0.0 && policy_.beta <= 1.0);
  SCGUARD_CHECK(policy_.redundancy_k >= 1);
  SCGUARD_CHECK(policy_.runtime.shard_size >= 1);
}

std::string ScGuardEngine::name() const {
  if (!policy_.name.empty()) return policy_.name;
  return StrCat("SCGuard[", policy_.u2u_model->name(), ",",
                RankStrategyName(policy_.rank), "]");
}

MatchResult ScGuardEngine::Run(const Workload& workload, stats::Rng& rng) {
  // Observation never perturbs the protocol: no RNG draws, no reordering
  // — the bit-identity test in tests/obs_test.cc holds the engine to it.
  const bool obs_on = obs::Enabled();
  const bool rec_on = obs::RecorderEnabled();
  const obs::Span run_span("engine.run");
  const EngineObs& eo = EngineObs::Get();
  const EngineTraceIds& eti = EngineTraceIds::Get();
  int64_t obs_evaluated = 0;       // Workers the U2U filter actually scored.
  int64_t obs_alpha_rejections = 0;  // Scored but below alpha.
  int64_t obs_beta_cancels = 0;
  int64_t obs_pruned = 0;  // Skipped entirely by the pruning index.

  const auto run_start = Clock::now();
  MatchResult result;
  RunMetrics& m = result.metrics;
  m.num_tasks = static_cast<int64_t>(workload.tasks.size());
  m.num_workers = static_cast<int64_t>(workload.workers.size());

  const size_t n = workload.workers.size();
  SCGUARD_CHECK(n <= std::numeric_limits<uint32_t>::max());

  // Ranking's random priorities, fixed once per run (Alg. 1 Line 12).
  std::vector<double> random_rank(n);
  for (auto& r : random_rank) r = rng.UniformDouble();

  // The three protocol stages (DESIGN.md section 10). Stage state is
  // per-Run: ExperimentRunner shares one matcher across concurrently
  // running seeds, so nothing may live in the engine between runs.
  U2uCandidateStage::Config u2u_config;
  u2u_config.model = policy_.u2u_model;
  u2u_config.alpha = policy_.alpha;
  u2u_config.kernel = policy_.kernel;
  u2u_config.runtime = policy_.runtime;
  if (policy_.pruning_gamma.has_value()) {
    u2u_config.pruning = U2uCandidateStage::Pruning{
        *policy_.pruning_gamma, policy_.pruning_backend, policy_.worker_params,
        policy_.task_params, workload.region};
  }
  U2uCandidateStage u2u(std::move(u2u_config));
  u2u.ReserveWorkers(n);
  for (const Worker& w : workload.workers) {
    u2u.AddWorker(w.noisy_location, w.reach_radius_m);
  }
  // Threshold prewarm, pruning-index build, and shard setup happen here so
  // the first task's U2U timing measures only the scan.
  u2u.Prepare();
  const reachability::WorkerFilterSoA& soa = u2u.soa();

  U2eRankStage u2e(
      {.model = policy_.u2e_model, .rank = policy_.rank,
       .kernel = policy_.kernel,
       .audit_epsilon = policy_.worker_params.epsilon});
  const E2eContactStage e2e({.rank = policy_.rank, .beta = policy_.beta,
                             .beta_mode = policy_.beta_mode,
                             .redundancy_k = policy_.redundancy_k});

  // Reused scratch between tasks (allocating this per task shows up on
  // pruned runs, where the real work per task is small).
  std::vector<std::pair<double, size_t>> ranked;
  ranked.reserve(n);

  size_t task_index = 0;
  for (const Task& task : workload.tasks) {
    // ---- Stage 1: U2U (server) -------------------------------------
    // Server sees only noisy locations and the workers' reach radii.
    const auto u2u_start = Clock::now();
    const std::vector<uint32_t>& candidates = u2u.Collect(task.noisy_location);
    const U2uCandidateStage::Stats& scan = u2u.stats();
    obs_evaluated += scan.scanned_last;
    obs_pruned += scan.pruned_last;
    obs_alpha_rejections +=
        scan.scanned_last - static_cast<int64_t>(candidates.size());
    m.u2u_scanned += scan.scanned_last;
    if (task_index == 0) m.u2u_scanned_first_task = scan.scanned_last;
    m.u2u_scanned_last_task = scan.scanned_last;
    ++task_index;
    {
      // One end-of-stage clock read serves RunMetrics, the histogram, and
      // the flight-recorder span — recording adds no extra clock cost.
      const auto u2u_end = Clock::now();
      const double u2u_elapsed =
          std::chrono::duration<double>(u2u_end - u2u_start).count();
      m.u2u_seconds += u2u_elapsed;
      if (obs_on) {
        eo.u2u_seconds->Observe(u2u_elapsed);
        eo.u2u_scan_workers->Observe(static_cast<double>(scan.scanned_last));
      }
      if (rec_on) obs::EmitSpanAt(eti.u2u, ToNs(u2u_start), ToNs(u2u_end));
    }
    m.candidates_sum += static_cast<int64_t>(candidates.size());
    m.server_to_requester_msgs += 1;

    // U2U accuracy metrics, scored against ground truth (observer-only:
    // no protocol party computes this). The availability scan is
    // O(workers) per task, so it is gated for throughput runs.
    if (policy_.compute_accuracy_metrics) {
      int64_t truly_reachable_available = 0;
      int64_t candidates_reachable = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!soa.matched[i] && workload.workers[i].CanReach(task.location)) {
          ++truly_reachable_available;
        }
      }
      for (const uint32_t i : candidates) {
        if (workload.workers[i].CanReach(task.location)) ++candidates_reachable;
      }
      if (!candidates.empty()) {
        m.precision_sum += static_cast<double>(candidates_reachable) /
                           static_cast<double>(candidates.size());
        m.precision_count += 1;
      }
      if (truly_reachable_available > 0) {
        m.recall_sum += static_cast<double>(candidates_reachable) /
                        static_cast<double>(truly_reachable_available);
        m.recall_count += 1;
      }
    }

    if (candidates.empty()) continue;  // Task remains unassigned.

    // ---- Stage 2: U2E (requester) ----------------------------------
    // Requester knows the exact task location and the candidates' noisy
    // locations; ranks them best-first.
    const auto u2e_start = Clock::now();
    u2e.Rank(soa, candidates, task.location, random_rank.data(), ranked,
             task.id);
    {
      const auto u2e_end = Clock::now();
      const double u2e_elapsed =
          std::chrono::duration<double>(u2e_end - u2e_start).count();
      m.u2e_seconds += u2e_elapsed;
      if (obs_on) eo.u2e_seconds->Observe(u2e_elapsed);
      if (rec_on) obs::EmitSpanAt(eti.u2e, ToNs(u2e_start), ToNs(u2e_end));
    }

    // ---- Stage 3: E2E (workers), interleaved with U2E re-ranking ----
    Clock::time_point stage_start;
    if (obs_on || rec_on) stage_start = Clock::now();
    // Audit attribution of each disclosure's admitting U2U filter: with
    // the alpha-threshold kernel on, a candidate inside the certain-accept
    // band was admitted without a model evaluation; everything else (the
    // uncertain band, or the kernel-off scan) was a direct eval. The SoA
    // bands are only filled when the kernel is on.
    const bool has_bands = soa.accept_below_sq.size() == n;
    const E2eContactStage::Outcome outcome = e2e.Run(
        ranked,
        [&](size_t i) {
          const Worker& w = workload.workers[i];
          if (!w.CanReach(task.location)) return false;
          u2u.MarkMatched(static_cast<uint32_t>(i));
          const double travel = geo::Distance(w.location, task.location);
          result.assignments.push_back({task.id, w.id, travel});
          m.accepted_assignments += 1;
          m.travel_sum_m += travel;
          return true;
        },
        [&](size_t i) { return workload.workers[i].CanReach(task.location); },
        m, task.id,
        [&](size_t i) {
          if (!has_bands) return obs::AuditFilter::kDirectEval;
          const double dx = soa.x[i] - task.noisy_location.x;
          const double dy = soa.y[i] - task.noisy_location.y;
          return dx * dx + dy * dy <= soa.accept_below_sq[i]
                     ? obs::AuditFilter::kAlphaBandAccept
                     : obs::AuditFilter::kDirectEval;
        });
    if (outcome.cancelled) ++obs_beta_cancels;
    if (obs_on || rec_on) {
      const auto e2e_end = Clock::now();
      if (obs_on) {
        eo.e2e_seconds->Observe(
            std::chrono::duration<double>(e2e_end - stage_start).count());
      }
      if (rec_on) obs::EmitSpanAt(eti.e2e, ToNs(stage_start), ToNs(e2e_end));
    }
  }

  m.total_seconds = Elapsed(run_start);

  // Cell-certification accounting of a grid-backed pruner, cumulative over
  // the run's queries (the pruner lives for the whole run, so the final
  // snapshot is the run total).
  if (const index::GridIndex::QueryStats* gs = u2u.grid_query_stats()) {
    m.cells_bulk_accepted = gs->cells_bulk_accepted;
    m.cells_skipped = gs->cells_skipped;
    m.boundary_workers = gs->boundary_workers;
  }
  // Scoring-side traffic accounting, cumulative over the stage's life like
  // the certification counters above.
  m.u2u_gather_bytes = u2u.stats().gather_bytes;
  m.cells_emitted_direct = u2u.stats().cells_emitted_direct;

  // One atomic flush per counter per run; no-ops while disabled.
  eo.tasks->Increment(m.num_tasks);
  eo.assigned_tasks->Increment(m.assigned_tasks);
  eo.assignments->Increment(m.accepted_assignments);
  eo.candidates->Increment(m.candidates_sum);
  eo.workers_evaluated->Increment(obs_evaluated);
  eo.workers_pruned->Increment(obs_pruned);
  eo.alpha_rejections->Increment(obs_alpha_rejections);
  eo.beta_cancels->Increment(obs_beta_cancels);
  eo.disclosures->Increment(m.requester_to_worker_msgs);
  eo.false_hits->Increment(m.false_hits);
  eo.false_dismissals->Increment(m.false_dismissals);
  eo.band_evals->Increment(u2u.band_evals());
  eo.active_compactions->Increment(u2u.compactions());
  eo.cells_bulk_accepted->Increment(m.cells_bulk_accepted);
  eo.cells_skipped->Increment(m.cells_skipped);
  eo.boundary_workers->Increment(m.boundary_workers);
  eo.u2u_gather_bytes->Increment(m.u2u_gather_bytes);
  eo.cells_emitted_direct->Increment(m.cells_emitted_direct);
  return result;
}

}  // namespace scguard::assign
