#include "reachability/empirical_model.h"

#include <istream>
#include <ostream>
#include <utility>

#include "privacy/geo_ind.h"

namespace scguard::reachability {

EmpiricalModel::EmpiricalModel(EmpiricalTable u2u, EmpiricalTable u2e)
    : u2u_(std::make_unique<EmpiricalTable>(std::move(u2u))),
      u2e_(std::make_unique<EmpiricalTable>(std::move(u2e))) {}

Result<EmpiricalModel> EmpiricalModel::Build(
    const EmpiricalModelConfig& config,
    const privacy::PrivacyParams& worker_params,
    const privacy::PrivacyParams& task_params, stats::Rng& rng) {
  if (config.region.empty()) {
    return Status::InvalidArgument("empirical model needs a non-empty region");
  }
  if (config.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be > 0");
  }
  SCGUARD_RETURN_NOT_OK(worker_params.Validate());
  SCGUARD_RETURN_NOT_OK(task_params.Validate());

  const privacy::GeoIndMechanism worker_mech(worker_params);
  const privacy::GeoIndMechanism task_mech(task_params);

  EmpiricalTable u2u(config.bucket_width_m, config.num_buckets,
                     config.true_max_m, config.true_bins);
  EmpiricalTable u2e(config.bucket_width_m, config.num_buckets,
                     config.true_max_m, config.true_bins);

  const auto& region = config.region;
  for (uint64_t i = 0; i < config.num_samples; ++i) {
    const geo::Point worker{rng.UniformDouble(region.min_x, region.max_x),
                            rng.UniformDouble(region.min_y, region.max_y)};
    const geo::Point task{rng.UniformDouble(region.min_x, region.max_x),
                          rng.UniformDouble(region.min_y, region.max_y)};
    const double d_true = geo::Distance(worker, task);
    const geo::Point worker_noisy = worker_mech.Perturb(worker, rng);
    const geo::Point task_noisy = task_mech.Perturb(task, rng);
    // U2U: both endpoints observed with noise.
    u2u.Add(d_true, geo::Distance(worker_noisy, task_noisy));
    // U2E: exact task location, noisy worker location.
    u2e.Add(d_true, geo::Distance(worker_noisy, task));
  }
  return EmpiricalModel(std::move(u2u), std::move(u2e));
}

double EmpiricalModel::ProbReachable(Stage stage, double observed_distance_m,
                                     double reach_radius_m) const {
  const EmpiricalTable& table = stage == Stage::kU2U ? *u2u_ : *u2e_;
  return table.ProbBelow(observed_distance_m, reach_radius_m);
}

void EmpiricalModel::Serialize(std::ostream& os) const {
  os << "empirical-model-v1\n";
  u2u_->Serialize(os);
  u2e_->Serialize(os);
}

Result<EmpiricalModel> EmpiricalModel::Deserialize(std::istream& is) {
  std::string magic;
  if (!(is >> magic) || magic != "empirical-model-v1") {
    return Status::IOError("bad empirical model header");
  }
  SCGUARD_ASSIGN_OR_RETURN(EmpiricalTable u2u, EmpiricalTable::Deserialize(is));
  SCGUARD_ASSIGN_OR_RETURN(EmpiricalTable u2e, EmpiricalTable::Deserialize(is));
  return EmpiricalModel(std::move(u2u), std::move(u2e));
}

}  // namespace scguard::reachability
