#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "data/beijing.h"
#include "data/tdrive_synth.h"
#include "data/trace.h"
#include "stats/rng.h"

namespace scguard::data {
namespace {


TEST(TraceExtractorTest, RejectsBadConfig) {
  TraceExtractorConfig config;
  config.stop_radius_m = 0.0;
  EXPECT_TRUE(ExtractTripsFromTraces({}, config).status().IsInvalidArgument());
}

TEST(TraceExtractorTest, EmptyTraceYieldsNoTrips) {
  const auto trips = ExtractTripsFromTraces({});
  ASSERT_TRUE(trips.ok());
  EXPECT_TRUE(trips->empty());
}

TEST(TraceExtractorTest, RecoversASingleTrip) {
  // Hand-built trace: dwell at A (0..400 s), drive to B, dwell at B.
  std::vector<GpsFix> fixes;
  const geo::Point a{0, 0}, b{5000, 0};
  for (double t = 0; t <= 400; t += 50) fixes.push_back({7, t, a});
  for (double t = 450; t < 900; t += 50) {
    const double frac = (t - 400) / 500.0;
    fixes.push_back({7, t, a + (b - a) * frac});
  }
  for (double t = 900; t <= 1300; t += 50) fixes.push_back({7, t, b});

  const auto trips = ExtractTripsFromTraces(fixes);
  ASSERT_TRUE(trips.ok());
  ASSERT_EQ(trips->size(), 1u);
  const Trip& trip = (*trips)[0];
  EXPECT_EQ(trip.taxi_id, 7);
  EXPECT_NEAR(geo::Distance(trip.pickup, a), 0.0, 1.0);
  EXPECT_NEAR(geo::Distance(trip.dropoff, b), 0.0, 1.0);
  EXPECT_NEAR(trip.pickup_time_s, 400.0, 60.0);
  EXPECT_NEAR(trip.dropoff_time_s, 900.0, 60.0);
}

TEST(TraceExtractorTest, DropsGpsGlitches) {
  std::vector<GpsFix> fixes;
  const geo::Point a{0, 0}, b{4000, 0};
  for (double t = 0; t <= 400; t += 50) fixes.push_back({1, t, a});
  for (double t = 450; t < 800; t += 50) {
    const double frac = (t - 400) / 400.0;
    fixes.push_back({1, t, a + (b - a) * frac});
  }
  // A teleporting glitch mid-ride (100 km away).
  fixes.push_back({1, 620, geo::Point{100000, 100000}});
  for (double t = 800; t <= 1200; t += 50) fixes.push_back({1, t, b});

  const auto trips = ExtractTripsFromTraces(fixes);
  ASSERT_TRUE(trips.ok());
  ASSERT_EQ(trips->size(), 1u);
  EXPECT_NEAR(geo::Distance((*trips)[0].dropoff, b), 0.0, 1.0);
}

TEST(TraceExtractorTest, ShortHopsAreNotTrips) {
  // Two dwell spots 100 m apart: below min_trip_distance_m.
  std::vector<GpsFix> fixes;
  for (double t = 0; t <= 400; t += 50) fixes.push_back({1, t, {0, 0}});
  for (double t = 500; t <= 900; t += 50) fixes.push_back({1, t, {100, 0}});
  const auto trips = ExtractTripsFromTraces(fixes);
  ASSERT_TRUE(trips.ok());
  EXPECT_TRUE(trips->empty());
}

TEST(TraceExtractorTest, HandlesUnsortedMultiTaxiInput) {
  std::vector<GpsFix> fixes;
  for (int64_t taxi : {3, 5}) {
    const geo::Point a{static_cast<double>(taxi) * 1000, 0};
    const geo::Point b{static_cast<double>(taxi) * 1000, 6000};
    for (double t = 0; t <= 400; t += 40) fixes.push_back({taxi, t, a});
    for (double t = 440; t < 1000; t += 40) {
      fixes.push_back({taxi, t, a + (b - a) * ((t - 400) / 600.0)});
    }
    for (double t = 1000; t <= 1400; t += 40) fixes.push_back({taxi, t, b});
  }
  // Shuffle.
  stats::Rng rng(1);
  for (size_t i = fixes.size(); i > 1; --i) {
    std::swap(fixes[i - 1], fixes[rng.UniformInt(i)]);
  }
  const auto trips = ExtractTripsFromTraces(fixes);
  ASSERT_TRUE(trips.ok());
  ASSERT_EQ(trips->size(), 2u);
  EXPECT_NE((*trips)[0].taxi_id, (*trips)[1].taxi_id);
}

TEST(TraceRoundTripTest, RenderThenExtractRecoversTrips) {
  // End-to-end: synthetic trips -> GPS traces -> extractor -> trips.
  stats::Rng rng(2);
  const geo::BoundingBox region = BeijingRegion();
  TDriveSynthConfig synth_config;
  synth_config.num_taxis = 20;
  synth_config.mean_trips_per_taxi = 5.0;
  synth_config.min_idle_gap_s = 400.0;  // Longer than the stop threshold.
  synth_config.max_idle_gap_s = 1200.0;
  const auto synth = TDriveSynthesizer::Create(synth_config, region, rng);
  ASSERT_TRUE(synth.ok());
  std::vector<Trip> original = synth->GenerateTrips(rng);
  // Keep only trips long enough for the extractor's minimum.
  original.erase(std::remove_if(original.begin(), original.end(),
                                [](const Trip& t) {
                                  return geo::Distance(t.pickup, t.dropoff) < 600.0;
                                }),
                 original.end());
  ASSERT_GT(original.size(), 20u);

  TraceRenderConfig render;
  render.sample_interval_s = 20.0;
  render.gps_noise_m = 10.0;
  // Shorter than half the minimum idle gap so consecutive trips' dwell
  // periods never overlap in time.
  render.stop_dwell_s = 180.0;
  const std::vector<GpsFix> fixes = RenderTraces(original, render, rng);
  const auto extracted = ExtractTripsFromTraces(fixes);
  ASSERT_TRUE(extracted.ok());

  // The extractor recovers the ride trips and, in addition, sees the
  // between-rides cruising as trips of its own (the renderer leaves those
  // legs implicit), so we assert recovery of the originals rather than
  // precision of the extraction.
  EXPECT_GE(extracted->size(), original.size() * 6 / 10);
  int recovered = 0;
  for (const auto& o : original) {
    for (const auto& e : *extracted) {
      if (o.taxi_id == e.taxi_id &&
          geo::Distance(o.pickup, e.pickup) < 200.0 &&
          geo::Distance(o.dropoff, e.dropoff) < 200.0) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_GT(recovered, static_cast<int>(original.size() * 7 / 10));
}

TEST(FixesCsvTest, RoundTrip) {
  std::vector<GpsFix> fixes = {{1, 10.5, {100.25, -3.5}}, {2, 20.0, {0, 0}}};
  std::stringstream ss;
  WriteFixesCsv(fixes, ss);
  const auto back = LoadFixesCsv(ss);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].taxi_id, 1);
  EXPECT_DOUBLE_EQ((*back)[0].time_s, 10.5);
  EXPECT_NEAR((*back)[0].position.x, 100.25, 1e-9);
}

TEST(FixesCsvTest, RejectsMalformed) {
  std::stringstream bad_fields("1,2,3\n");
  EXPECT_TRUE(LoadFixesCsv(bad_fields).status().IsInvalidArgument());
  std::stringstream bad_number("1,abc,3,4\n");
  EXPECT_TRUE(LoadFixesCsv(bad_number).status().IsInvalidArgument());
}

}  // namespace
}  // namespace scguard::data
