file(REMOVE_RECURSE
  "../bench/bench_truncation"
  "../bench/bench_truncation.pdb"
  "CMakeFiles/bench_truncation.dir/bench_truncation.cc.o"
  "CMakeFiles/bench_truncation.dir/bench_truncation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_truncation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
