#include "reachability/binary_model.h"

namespace scguard::reachability {

double BinaryModel::ProbReachable(Stage /*stage*/, double observed_distance_m,
                                  double reach_radius_m) const {
  return observed_distance_m <= reach_radius_m ? 1.0 : 0.0;
}

void BinaryModel::ProbReachableBatch(Stage /*stage*/,
                                     const double* observed_distance_m,
                                     const double* reach_radius_m, size_t n,
                                     double* out) const {
  for (size_t i = 0; i < n; ++i) {
    out[i] = observed_distance_m[i] <= reach_radius_m[i] ? 1.0 : 0.0;
  }
}

}  // namespace scguard::reachability
