#ifndef SCGUARD_SIM_TABLE_PRINTER_H_
#define SCGUARD_SIM_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace scguard::sim {

/// Fixed-width text tables for experiment output — one table per paper
/// figure/series, so bench output reads like the paper's plots.
class TablePrinter {
 public:
  /// `title` is printed above the table; `columns` are the header cells.
  TablePrinter(std::string title, std::vector<std::string> columns);

  /// Adds a row of preformatted cells; must match the column count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: first cell is a label, the rest are numbers formatted
  /// with `digits` fraction digits.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int digits = 2);

  /// Renders the table with column-wise alignment.
  void Print(std::ostream& os) const;

  /// Renders the same table as one JSON object —
  /// {"title":...,"columns":[...],"rows":[[...],...]} — the shared
  /// machine-readable format for examples and benches (`--json` paths),
  /// so downstream tooling parses one shape everywhere. Cells stay the
  /// preformatted strings Print would show.
  void PrintJson(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scguard::sim

#endif  // SCGUARD_SIM_TABLE_PRINTER_H_
