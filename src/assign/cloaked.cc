#include "assign/cloaked.h"

#include <chrono>

#include "assign/stages/contact_stage.h"
#include "assign/stages/rank_stage.h"
#include "common/check.h"
#include "common/str_format.h"

namespace scguard::assign {

CloakedMatcher::CloakedMatcher(const privacy::CloakingMechanism& mechanism,
                               double alpha, double beta)
    : mechanism_(mechanism), alpha_(alpha), beta_(beta) {
  SCGUARD_CHECK(alpha > 0.0 && alpha <= 1.0);
  SCGUARD_CHECK(beta >= 0.0 && beta <= 1.0);
}

std::string CloakedMatcher::name() const {
  return StrCat("Cloaked-", FormatDouble(mechanism_.width_m(), 0), "m");
}

MatchResult CloakedMatcher::Run(const Workload& workload, stats::Rng& rng) {
  const auto start = std::chrono::steady_clock::now();
  MatchResult result;
  RunMetrics& m = result.metrics;
  m.num_tasks = static_cast<int64_t>(workload.tasks.size());
  m.num_workers = static_cast<int64_t>(workload.workers.size());

  // Workers report cloaks once, up-front.
  std::vector<geo::BoundingBox> cloaks;
  cloaks.reserve(workload.workers.size());
  for (const auto& w : workload.workers) {
    cloaks.push_back(mechanism_.Cloak(w.location, rng));
  }
  std::vector<bool> matched(workload.workers.size(), false);

  // Beta-gated sequential contact, shared with the engine (the cloak's
  // reach probabilities play the U2E scores).
  const E2eContactStage contact({.rank = RankStrategy::kProbability,
                                 .beta = beta_,
                                 .beta_mode = BetaMode::kEveryContact,
                                 .redundancy_k = 1});
  std::vector<std::pair<double, size_t>> ranked;  // Reused across tasks.
  ranked.reserve(workload.workers.size());

  for (const Task& task : workload.tasks) {
    // Candidate selection against the PUBLIC exact task location.
    ranked.clear();
    int64_t truly_reachable = 0, candidates_reachable = 0;
    for (size_t i = 0; i < workload.workers.size(); ++i) {
      if (matched[i]) continue;
      const Worker& w = workload.workers[i];
      if (w.CanReach(task.location)) ++truly_reachable;
      const double p = privacy::CloakReachProbability(cloaks[i], task.location,
                                                      w.reach_radius_m);
      if (p < alpha_) continue;
      ranked.emplace_back(p, i);
      if (w.CanReach(task.location)) ++candidates_reachable;
    }
    m.candidates_sum += static_cast<int64_t>(ranked.size());
    m.server_to_requester_msgs += 1;
    if (!ranked.empty()) {
      m.precision_sum += static_cast<double>(candidates_reachable) /
                         static_cast<double>(ranked.size());
      m.precision_count += 1;
    }
    if (truly_reachable > 0) {
      m.recall_sum += static_cast<double>(candidates_reachable) /
                      static_cast<double>(truly_reachable);
      m.recall_count += 1;
    }
    if (ranked.empty()) continue;

    SortRankedCandidates(ranked);
    contact.Run(
        ranked,
        [&](size_t i) {
          const Worker& w = workload.workers[i];
          if (!w.CanReach(task.location)) return false;
          matched[i] = true;
          const double travel = geo::Distance(w.location, task.location);
          result.assignments.push_back({task.id, w.id, travel});
          m.accepted_assignments += 1;
          m.travel_sum_m += travel;
          return true;
        },
        [&](size_t i) { return workload.workers[i].CanReach(task.location); },
        m, task.id, UnknownAdmitFilter{});
  }
  m.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace scguard::assign
