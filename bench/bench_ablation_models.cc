// Ablation (beyond the paper): how the choice of analytical approximation
// inside Probabilistic-Model affects end-to-end assignment quality.
// Modes: the paper's normal-approximation of d^2 with sigma^2 = 2 r^2/eps^2;
// the exact Rice CDF of the same Gaussian model; the moment-matched
// Gaussian (3 r^2/eps^2, the true planar Laplace variance); the exact
// planar-Laplace disk quadrature; and the empirical tables as reference.

#include "assign/scguard_engine.h"
#include "bench/bench_common.h"

namespace scguard::bench {
namespace {

void Main() {
  const auto runner = OrDie(sim::ExperimentRunner::Create(QuickConfig()));

  sim::TablePrinter table(
      "Ablation — reachability model inside Probabilistic (eps=0.7, r=800)",
      {"model", "utility", "travel(m)", "false hits", "false dismissals",
       "overhead", "recall"});

  const privacy::PrivacyParams p{0.7, 800.0};
  auto report = [&](assign::MatcherHandle handle) {
    const auto agg = OrDie(runner.Run(handle, p, p));
    table.AddRow(handle.name(),
                 {agg.assigned_tasks, agg.travel_m, agg.false_hits,
                  agg.false_dismissals, agg.candidates, agg.recall},
                 2);
  };

  for (auto mode : {reachability::AnalyticalMode::kPaperNormalApprox,
                    reachability::AnalyticalMode::kExactRice,
                    reachability::AnalyticalMode::kMomentMatched,
                    reachability::AnalyticalMode::kExactLaplace}) {
    assign::AlgorithmParams params = MakeParams(p);
    params.analytical_mode = mode;
    assign::MatcherHandle handle = assign::MakeProbabilisticModel(params);
    handle.matcher = [&] {
      assign::EnginePolicy policy;
      // Rebuild with a mode-specific display name.
      policy = static_cast<assign::ScGuardEngine*>(handle.matcher.get())->policy();
      policy.name = StrCat("Probabilistic[", AnalyticalModeName(mode), "]");
      return std::make_unique<assign::ScGuardEngine>(std::move(policy));
    }();
    report(std::move(handle));
  }
  {
    assign::MatcherHandle handle = assign::MakeProbabilisticData(
        MakeParams(p), BuildEmpirical(runner, p, 150000));
    report(std::move(handle));
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace scguard::bench

int main() {
  scguard::bench::Main();
  return 0;
}
