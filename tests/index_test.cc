#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geo/bbox.h"
#include "index/grid_index.h"
#include "index/pruning.h"
#include "index/rtree.h"
#include "stats/rng.h"

namespace scguard::index {
namespace {

geo::BoundingBox RandomBox(stats::Rng& rng, double extent, double max_size) {
  const geo::Point c{rng.UniformDouble(0, extent), rng.UniformDouble(0, extent)};
  return geo::BoundingBox::FromCircle(c, rng.UniformDouble(1.0, max_size));
}

std::vector<int64_t> BruteForce(const std::vector<RTree::Entry>& entries,
                                const geo::BoundingBox& query) {
  std::vector<int64_t> out;
  for (const auto& e : entries) {
    if (e.box.Intersects(query)) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_TRUE(tree.QueryIds(geo::BoundingBox::FromCorners({0, 0}, {1, 1})).empty());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  tree.Insert(geo::BoundingBox::FromCorners({0, 0}, {1, 1}), 7);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  const auto hits = tree.QueryIds(geo::BoundingBox::FromCorners({0.5, 0.5}, {2, 2}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7);
  EXPECT_TRUE(tree.QueryIds(geo::BoundingBox::FromCorners({5, 5}, {6, 6})).empty());
}

TEST(RTreeTest, InsertMatchesBruteForce) {
  stats::Rng rng(1);
  RTree tree(8);
  std::vector<RTree::Entry> entries;
  for (int64_t i = 0; i < 500; ++i) {
    const geo::BoundingBox box = RandomBox(rng, 1000.0, 30.0);
    entries.push_back({box, i});
    tree.Insert(box, i);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GT(tree.Height(), 1);
  for (int q = 0; q < 50; ++q) {
    const geo::BoundingBox query = RandomBox(rng, 1000.0, 100.0);
    auto got = tree.QueryIds(query);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForce(entries, query)) << "query " << q;
  }
}

TEST(RTreeTest, BulkLoadMatchesBruteForce) {
  stats::Rng rng(2);
  std::vector<RTree::Entry> entries;
  for (int64_t i = 0; i < 2000; ++i) {
    entries.push_back({RandomBox(rng, 5000.0, 40.0), i});
  }
  RTree tree(16);
  tree.BulkLoad(entries);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), 2000u);
  for (int q = 0; q < 50; ++q) {
    const geo::BoundingBox query = RandomBox(rng, 5000.0, 200.0);
    auto got = tree.QueryIds(query);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForce(entries, query)) << "query " << q;
  }
}

TEST(RTreeTest, BulkLoadEmptyAndTiny) {
  RTree tree;
  tree.BulkLoad({});
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariants());
  tree.BulkLoad({{geo::BoundingBox::FromCorners({0, 0}, {1, 1}), 1}});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, DuplicateBoxesAllReported) {
  RTree tree(4);
  const geo::BoundingBox box = geo::BoundingBox::FromCorners({0, 0}, {1, 1});
  for (int64_t i = 0; i < 20; ++i) tree.Insert(box, i);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.QueryIds(box).size(), 20u);
}

TEST(RTreeTest, QueryCallbackReceivesEntries) {
  RTree tree;
  tree.Insert(geo::BoundingBox::FromCorners({0, 0}, {1, 1}), 3);
  int64_t seen_id = -1;
  tree.Query(geo::BoundingBox::FromCorners({0, 0}, {2, 2}),
             [&seen_id](const RTree::Entry& e) { seen_id = e.id; });
  EXPECT_EQ(seen_id, 3);
}

TEST(GridIndexTest, MatchesBruteForce) {
  stats::Rng rng(3);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0}, {1000, 1000});
  GridIndex grid(region, 16);
  std::vector<RTree::Entry> entries;
  for (int64_t i = 0; i < 500; ++i) {
    const geo::BoundingBox box = RandomBox(rng, 1000.0, 50.0);
    entries.push_back({box, i});
    grid.Insert(box, i);
  }
  for (int q = 0; q < 50; ++q) {
    const geo::BoundingBox query = RandomBox(rng, 1000.0, 120.0);
    auto got = grid.QueryIds(query);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForce(entries, query)) << "query " << q;
  }
}

TEST(GridIndexTest, EntriesOutsideRegionClampToBorderCells) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0}, {100, 100});
  GridIndex grid(region, 4);
  grid.Insert(geo::BoundingBox::FromCorners({-50, -50}, {-40, -40}), 1);
  grid.Insert(geo::BoundingBox::FromCorners({200, 200}, {210, 210}), 2);
  // Queries beyond the region still find them through the border cells.
  EXPECT_EQ(grid.QueryIds(geo::BoundingBox::FromCorners({-60, -60}, {-45, -45})).size(),
            1u);
  EXPECT_EQ(grid.QueryIds(geo::BoundingBox::FromCorners({205, 205}, {220, 220})).size(),
            1u);
}

TEST(GridIndexTest, MultiCellEntryReportedOnce) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0}, {100, 100});
  GridIndex grid(region, 10);
  grid.Insert(geo::BoundingBox::FromCorners({5, 5}, {95, 95}), 42);  // Many cells.
  const auto hits = grid.QueryIds(geo::BoundingBox::FromCorners({0, 0}, {100, 100}));
  EXPECT_EQ(hits.size(), 1u);
}

// ---------------------------------------------------------------- Pruner

std::vector<UncertainRegionPruner::WorkerRegion> MakeRegions(int n,
                                                             stats::Rng& rng,
                                                             double extent) {
  std::vector<UncertainRegionPruner::WorkerRegion> regions;
  for (int i = 0; i < n; ++i) {
    regions.push_back({i,
                       {rng.UniformDouble(0, extent), rng.UniformDouble(0, extent)},
                       rng.UniformDouble(1000.0, 3000.0)});
  }
  return regions;
}

TEST(PrunerTest, BackendsAgree) {
  stats::Rng rng(4);
  const double extent = 30000.0;
  const auto regions = MakeRegions(300, rng, extent);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {extent, extent});
  const privacy::PrivacyParams params{0.7, 800.0};
  const UncertainRegionPruner linear(regions, params, params, 0.9,
                                     PrunerBackend::kLinearScan, region);
  const UncertainRegionPruner grid(regions, params, params, 0.9,
                                   PrunerBackend::kGrid, region);
  const UncertainRegionPruner rtree(regions, params, params, 0.9,
                                    PrunerBackend::kRTree, region);
  for (int q = 0; q < 30; ++q) {
    const geo::Point task{rng.UniformDouble(0, extent), rng.UniformDouble(0, extent)};
    auto a = linear.Candidates(task);
    auto b = grid.Candidates(task);
    auto c = rtree.Candidates(task);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::sort(c.begin(), c.end());
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
  }
}

TEST(PrunerTest, NeverDropsOverlappingDiskPairs) {
  // Conservativeness: if disk(w', rR + Rw) and disk(t', rR) intersect, the
  // worker must be returned (MBRs enclose the disks).
  stats::Rng rng(5);
  const double extent = 20000.0;
  const auto regions = MakeRegions(200, rng, extent);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {extent, extent});
  const privacy::PrivacyParams params{0.7, 800.0};
  const UncertainRegionPruner pruner(regions, params, params, 0.9,
                                     PrunerBackend::kGrid, region);
  for (int q = 0; q < 50; ++q) {
    const geo::Point task{rng.UniformDouble(0, extent), rng.UniformDouble(0, extent)};
    auto candidates = pruner.Candidates(task);
    std::sort(candidates.begin(), candidates.end());
    for (const auto& w : regions) {
      const double gap = geo::Distance(w.noisy_location, task);
      const double disk_sum = pruner.worker_confidence_radius_m() +
                              w.reach_radius_m +
                              pruner.task_confidence_radius_m();
      if (gap <= disk_sum) {
        EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                       w.worker_id))
            << "worker " << w.worker_id << " at disk distance " << gap;
      }
    }
  }
}

TEST(PrunerTest, ConfidenceRadiusGrowsWithGamma) {
  stats::Rng rng(6);
  const auto regions = MakeRegions(10, rng, 1000.0);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {1000, 1000});
  const privacy::PrivacyParams params{0.7, 800.0};
  const UncertainRegionPruner p50(regions, params, params, 0.5,
                                  PrunerBackend::kLinearScan, region);
  const UncertainRegionPruner p99(regions, params, params, 0.99,
                                  PrunerBackend::kLinearScan, region);
  EXPECT_LT(p50.worker_confidence_radius_m(), p99.worker_confidence_radius_m());
}

TEST(PrunerTest, FarTaskPrunesMostWorkers) {
  stats::Rng rng(7);
  const double extent = 50000.0;
  const auto regions = MakeRegions(500, rng, extent);
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {extent, extent});
  const privacy::PrivacyParams params{1.0, 200.0};  // Little noise.
  const UncertainRegionPruner pruner(regions, params, params, 0.9,
                                     PrunerBackend::kRTree, region);
  // A task far outside the deployment region keeps almost nothing.
  const auto candidates = pruner.Candidates({extent * 3, extent * 3});
  EXPECT_LT(candidates.size(), 5u);
}

}  // namespace
}  // namespace scguard::index
