# Empty dependencies file for scguard_index.
# This may be replaced when dependencies are built.
