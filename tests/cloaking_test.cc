// Tests for the cloaking baseline and the Bayesian inference adversary.

#include <gtest/gtest.h>

#include <numeric>

#include "assign/cloaked.h"
#include "data/workload.h"
#include "privacy/cloaking.h"
#include "privacy/inference.h"
#include "privacy/planar_laplace.h"
#include "stats/rng.h"

namespace scguard::privacy {
namespace {

TEST(CloakingTest, CloakAlwaysContainsTrueLocation) {
  const CloakingMechanism mech(2000.0, 1500.0);
  stats::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const geo::Point p{rng.UniformDouble(-1e4, 1e4), rng.UniformDouble(-1e4, 1e4)};
    const geo::BoundingBox cloak = mech.Cloak(p, rng);
    EXPECT_TRUE(cloak.Contains(p));
    EXPECT_NEAR(cloak.Width(), 2000.0, 1e-9);
    EXPECT_NEAR(cloak.Height(), 1500.0, 1e-9);
  }
}

TEST(CloakingTest, LocationIsUniformWithinCloak) {
  // The relative position of the true point inside its cloak must be
  // uniform: mean relative offset = 0.5 on each axis.
  const CloakingMechanism mech = CloakingMechanism::WithArea(4e6);
  stats::Rng rng(2);
  const geo::Point p{100, 100};
  double mean_rx = 0, mean_ry = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const geo::BoundingBox cloak = mech.Cloak(p, rng);
    mean_rx += (p.x - cloak.min_x) / cloak.Width();
    mean_ry += (p.y - cloak.min_y) / cloak.Height();
  }
  EXPECT_NEAR(mean_rx / n, 0.5, 0.01);
  EXPECT_NEAR(mean_ry / n, 0.5, 0.01);
}

TEST(CloakingTest, ReachProbabilityLimits) {
  const geo::BoundingBox cloak = geo::BoundingBox::FromCorners({0, 0}, {1000, 1000});
  // Disk covering the whole cloak.
  EXPECT_DOUBLE_EQ(CloakReachProbability(cloak, {500, 500}, 5000.0), 1.0);
  // Disk missing the cloak entirely.
  EXPECT_DOUBLE_EQ(CloakReachProbability(cloak, {10000, 10000}, 1000.0), 0.0);
  // Half-plane-ish cut: task far to the right, radius reaching mid-cloak.
  const double half = CloakReachProbability(cloak, {1500, 500}, 1000.0);
  EXPECT_GT(half, 0.3);
  EXPECT_LT(half, 0.7);
  EXPECT_DOUBLE_EQ(CloakReachProbability(cloak, {500, 500}, 0.0), 0.0);
}

TEST(CloakingTest, ReachProbabilityMatchesMonteCarlo) {
  const geo::BoundingBox cloak = geo::BoundingBox::FromCorners({0, 0}, {2000, 2000});
  const geo::Point task{2500, 1000};
  const double radius = 1500.0;
  stats::Rng rng(3);
  int inside = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const geo::Point p{rng.UniformDouble(0, 2000), rng.UniformDouble(0, 2000)};
    inside += geo::Distance(p, task) <= radius ? 1 : 0;
  }
  EXPECT_NEAR(CloakReachProbability(cloak, task, radius),
              static_cast<double>(inside) / n, 0.02);
}

// --------------------------------------------------------------- Adversary

TEST(BayesianAdversaryTest, PosteriorsAreDistributions) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {10000, 10000});
  const BayesianAdversary adversary(region, 40);
  const auto laplace = adversary.PosteriorLaplace({5000, 5000}, 0.7 / 800.0);
  const auto cloak = adversary.PosteriorCloak(
      geo::BoundingBox::FromCorners({4000, 4000}, {6000, 6000}));
  for (const auto& posterior : {laplace, cloak}) {
    const double total = std::accumulate(posterior.begin(), posterior.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (double p : posterior) EXPECT_GE(p, 0.0);
  }
}

TEST(BayesianAdversaryTest, LaplacePosteriorPeaksAtReport) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {10000, 10000});
  const BayesianAdversary adversary(region, 50);
  const geo::Point report{3000, 7000};
  const auto posterior = adversary.PosteriorLaplace(report, 1.0 / 200.0);
  size_t best = 0;
  for (size_t i = 1; i < posterior.size(); ++i) {
    if (posterior[i] > posterior[best]) best = i;
  }
  EXPECT_LT(geo::Distance(adversary.CellCenter(static_cast<int>(best)), report),
            300.0);
}

TEST(BayesianAdversaryTest, StricterEpsilonRaisesInferenceError) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {20000, 20000});
  const BayesianAdversary adversary(region, 40);
  stats::Rng rng(4);
  double strict_error = 0, loose_error = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    const geo::Point truth{rng.UniformDouble(4000, 16000),
                           rng.UniformDouble(4000, 16000)};
    for (auto [eps, acc] : {std::pair{0.1 / 800.0, &strict_error},
                            std::pair{1.0 / 200.0, &loose_error}}) {
      const PlanarLaplace laplace(eps);
      const geo::Point report = truth + laplace.Sample(rng);
      const auto posterior = adversary.PosteriorLaplace(report, eps);
      *acc += adversary.Evaluate(posterior, truth, 800.0).expected_error_m;
    }
  }
  EXPECT_GT(strict_error, 2.0 * loose_error);
}

TEST(BayesianAdversaryTest, GeoIBoundsPosteriorOddsCloakingDoesNot) {
  // The semantic difference the paper leans on: observing a Geo-I report
  // shifts the posterior odds between any two locations at distance d by
  // at most e^{eps d / r} — independent of the prior — while observing a
  // cloak shifts the odds between an inside and an outside location to
  // infinity (the outside one is fully excluded).
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {10000, 10000});
  const geo::Point hotspot{4000, 4000};
  const BayesianAdversary informed(region, 50, [hotspot](geo::Point p) {
    const double d = geo::Distance(p, hotspot);
    return std::exp(-d * d / (2.0 * 2000.0 * 2000.0)) + 1e-6;
  });
  stats::Rng rng(5);
  const PrivacyParams params{0.7, 800.0};
  const PlanarLaplace laplace(params.unit_epsilon());
  const geo::Point truth{4300, 4100};
  const geo::Point report = truth + laplace.Sample(rng);
  const auto geoi_posterior =
      informed.PosteriorLaplace(report, params.unit_epsilon());

  // Geo-I: posterior-to-prior odds shift between nearby cells is bounded.
  stats::Rng pick(6);
  const auto uniform = BayesianAdversary(region, 50);
  const auto flat_posterior =
      uniform.PosteriorLaplace(report, params.unit_epsilon());
  for (int trial = 0; trial < 200; ++trial) {
    const int i = static_cast<int>(pick.UniformInt(50 * 50));
    const int j = static_cast<int>(pick.UniformInt(50 * 50));
    const double d =
        geo::Distance(uniform.CellCenter(i), uniform.CellCenter(j));
    if (d > params.radius_m) continue;
    // With a uniform prior the posterior IS the normalized likelihood, so
    // the odds ratio is the likelihood ratio, bounded by e^{eps d / r}.
    const double odds = flat_posterior[static_cast<size_t>(i)] /
                        flat_posterior[static_cast<size_t>(j)];
    const double bound = std::exp(params.unit_epsilon() * d);
    EXPECT_LE(odds, bound * (1.0 + 1e-9));
    EXPECT_GE(odds, 1.0 / bound * (1.0 - 1e-9));
  }
  // And the informed posterior never zeroes out plausible locations.
  int zero_cells = 0;
  for (double p : geoi_posterior) zero_cells += p == 0.0 ? 1 : 0;
  EXPECT_EQ(zero_cells, 0);

  // Cloaking: everything outside the reported rectangle is excluded, so
  // some pair of locations at distance << r has infinite odds shift.
  const CloakingMechanism cloaking = CloakingMechanism::WithArea(4e6);
  const auto cloak_posterior =
      informed.PosteriorCloak(cloaking.Cloak(truth, rng));
  int excluded = 0;
  for (double p : cloak_posterior) excluded += p == 0.0 ? 1 : 0;
  EXPECT_GT(excluded, 50 * 50 / 2);  // Most of the city certainly ruled out.
}

// ---------------------------------------------------------- CloakedMatcher

TEST(CloakedMatcherTest, AssignmentsValidAndAccounted) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {20000, 20000});
  data::WorkloadConfig config;
  config.num_workers = 80;
  config.num_tasks = 80;
  stats::Rng rng(6);
  const assign::Workload w = data::MakeUniformWorkload(region, config, rng);
  assign::CloakedMatcher matcher(CloakingMechanism::WithArea(4e6), 0.1, 0.25);
  const auto result = matcher.Run(w, rng);
  EXPECT_GT(result.metrics.assigned_tasks, 0);
  for (const auto& a : result.assignments) {
    EXPECT_TRUE(w.workers[static_cast<size_t>(a.worker_id)].CanReach(
        w.tasks[static_cast<size_t>(a.task_id)].location));
  }
  EXPECT_EQ(result.metrics.requester_to_worker_msgs,
            result.metrics.accepted_assignments + result.metrics.false_hits);
}

TEST(CloakedMatcherTest, SmallerCloaksAssignMore) {
  const geo::BoundingBox region = geo::BoundingBox::FromCorners({0, 0},
                                                                {20000, 20000});
  data::WorkloadConfig config;
  config.num_workers = 100;
  config.num_tasks = 100;
  stats::Rng rng(7);
  const assign::Workload w = data::MakeUniformWorkload(region, config, rng);
  assign::CloakedMatcher tight(CloakingMechanism::WithArea(1e6), 0.1, 0.25);
  assign::CloakedMatcher huge(CloakingMechanism::WithArea(64e6), 0.1, 0.25);
  stats::Rng rng_a(8), rng_b(8);
  EXPECT_GE(tight.Run(w, rng_a).metrics.assigned_tasks,
            huge.Run(w, rng_b).metrics.assigned_tasks);
}

}  // namespace
}  // namespace scguard::privacy
