#ifndef SCGUARD_REACHABILITY_EMPIRICAL_MODEL_H_
#define SCGUARD_REACHABILITY_EMPIRICAL_MODEL_H_

#include <iosfwd>
#include <memory>

#include "common/result.h"
#include "geo/bbox.h"
#include "privacy/privacy_params.h"
#include "reachability/empirical_table.h"
#include "reachability/model.h"
#include "runtime/thread_pool.h"
#include "stats/rng.h"

namespace scguard::reachability {

/// Parameters of the Monte-Carlo simulation that precomputes the empirical
/// tables (paper Sec. IV-B2).
struct EmpiricalModelConfig {
  /// Region of interest over which pair locations are generated uniformly
  /// (the paper uses Beijing City).
  geo::BoundingBox region;
  /// Number of simulated worker-task pairs per table.
  uint64_t num_samples = 200000;
  /// Noisy-distance bucket width s (paper: 100 m).
  double bucket_width_m = 100.0;
  /// Closed buckets [0, s) ... [(B-1)s, Bs); bucket B is [Bs, inf).
  /// Paper: 121 buckets (up to 120 s).
  int num_buckets = 121;
  /// Geometry of the per-bucket true-distance histograms.
  double true_max_m = 40000.0;
  int true_bins = 400;
  /// Monte-Carlo shards. 1 = the exact legacy serial loop consuming the
  /// caller's rng. For k > 1 the samples are split across k SplitMix64
  /// streams forked off the caller's rng seed and the per-shard partial
  /// tables are merged in shard order — the result depends on the shard
  /// count but NOT on how many threads (if any) build the shards, so a
  /// fixed shard count gives bit-identical tables on every machine.
  int num_shards = 1;
};

/// The empirical reachability model (*Probabilistic-Data* in the paper's
/// evaluation): precomputes, from synthetic or historic data, the
/// distribution of true distance per bucket of observed distance, for both
/// the U2U and U2E stages.
///
/// The precomputation uses randomly generated locations, so it does not
/// touch (or leak) any individual's data.
class EmpiricalModel final : public ReachabilityModel {
 public:
  /// Runs the Monte-Carlo precomputation for the given privacy levels.
  /// Requires a non-empty region, num_samples > 0 and num_shards >= 1.
  /// With config.num_shards > 1 the shards are built across `pool` (or
  /// serially when pool is null) — see EmpiricalModelConfig::num_shards
  /// for the determinism contract.
  static Result<EmpiricalModel> Build(const EmpiricalModelConfig& config,
                                      const privacy::PrivacyParams& worker_params,
                                      const privacy::PrivacyParams& task_params,
                                      stats::Rng& rng,
                                      runtime::ThreadPool* pool = nullptr);

  /// Convenience: both parties at the same privacy level.
  static Result<EmpiricalModel> Build(const EmpiricalModelConfig& config,
                                      const privacy::PrivacyParams& params,
                                      stats::Rng& rng,
                                      runtime::ThreadPool* pool = nullptr) {
    return Build(config, params, params, rng, pool);
  }

  double ProbReachable(Stage stage, double observed_distance_m,
                       double reach_radius_m) const override;

  /// Hoists the per-stage table selection out of the loop; otherwise the
  /// same O(1) bucket lookups as the scalar call.
  void ProbReachableBatch(Stage stage, const double* observed_distance_m,
                          const double* reach_radius_m, size_t n,
                          double* out) const override;

  std::string_view name() const override { return "empirical"; }

  const EmpiricalTable& u2u_table() const { return *u2u_; }
  const EmpiricalTable& u2e_table() const { return *u2e_; }

  /// Text round-trip so tables can be built once and shipped.
  void Serialize(std::ostream& os) const;
  static Result<EmpiricalModel> Deserialize(std::istream& is);

 private:
  EmpiricalModel(EmpiricalTable u2u, EmpiricalTable u2e);

  // unique_ptr keeps the model cheap to move while EmpiricalTable stays
  // value-semantic.
  std::unique_ptr<EmpiricalTable> u2u_;
  std::unique_ptr<EmpiricalTable> u2e_;
};

}  // namespace scguard::reachability

#endif  // SCGUARD_REACHABILITY_EMPIRICAL_MODEL_H_
