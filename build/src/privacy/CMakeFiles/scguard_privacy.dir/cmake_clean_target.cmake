file(REMOVE_RECURSE
  "libscguard_privacy.a"
)
