#ifndef SCGUARD_ASSIGN_STAGES_RANK_STAGE_H_
#define SCGUARD_ASSIGN_STAGES_RANK_STAGE_H_

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "assign/matcher.h"
#include "geo/point.h"
#include "obs/recorder.h"
#include "reachability/kernel.h"
#include "reachability/model.h"

namespace scguard::assign {

/// When the requester applies the beta threshold (Alg. 2 Line 13).
enum class BetaMode {
  /// Re-check before every disclosure: as soon as the best *remaining*
  /// candidate scores below beta the task is cancelled. The literal
  /// reading of Algorithm 2 (Line 17 loops back through Line 13).
  kEveryContact,
  /// Check only the initial top-ranked candidate; once the requester
  /// starts contacting, she goes best-effort through the ranked list.
  /// Reproduces the paper's reported utility at strict privacy better
  /// (see bench_ablation_beta and EXPERIMENTS.md).
  kFirstContactOnly,
};

/// The deterministic contact order every ranking call site uses: score
/// descending, then id ascending as the tie-break (Alg. 2 Line 12 plus the
/// determinism contract of DESIGN.md section 10). `Pair` is any
/// (score, id)-shaped pair whose second member orders like an id.
struct ScoreDescIdAscLess {
  template <typename Pair>
  bool operator()(const Pair& a, const Pair& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // Stable tie-break for determinism.
  }
};

/// Sorts a ranked-candidate list into the shared contact order.
template <typename Pair>
void SortRankedCandidates(std::vector<Pair>& ranked) {
  std::sort(ranked.begin(), ranked.end(), ScoreDescIdAscLess{});
}

/// As above for pairs whose second member is not itself the id (e.g. the
/// protocol layer ranks CandidateWorker pointers); `id_of` projects it.
template <typename Pair, typename IdFn>
void SortRankedCandidates(std::vector<Pair>& ranked, IdFn id_of) {
  std::sort(ranked.begin(), ranked.end(),
            [&id_of](const Pair& a, const Pair& b) {
              if (a.first != b.first) return a.first > b.first;
              return id_of(a.second) < id_of(b.second);
            });
}

/// The requester-side U2E ranking stage (Alg. 2 Lines 10-12, DESIGN.md
/// section 10): scores candidates against the *exact* task location — which
/// only the requester knows — and orders them best-first with the shared
/// deterministic tie-break. Probability scoring goes through the batched
/// model kernel (one ProbReachableBatch per task) or the opt-in
/// bounded-error KernelLut; random and nearest-neighbor strategies score
/// from a caller-supplied rank array / the observed distance.
///
/// Not thread-safe (the LUT builds lazily); run-local like the other
/// stages.
class U2eRankStage {
 public:
  struct Config {
    /// Scoring model; required (and only consulted) for kProbability.
    /// Not owned.
    const reachability::ReachabilityModel* model = nullptr;
    RankStrategy rank = RankStrategy::kProbability;
    /// kernel.u2e_lut routes scoring through the bounded-error LUT
    /// (DESIGN.md section 8); off by default.
    reachability::KernelOptions kernel;
    /// The epsilon the candidates' noisy locations were perturbed at —
    /// recorded on the flight recorder's per-task U2E audit event
    /// (recorder.h kAuditCandidates). Audit metadata only; never consulted
    /// by scoring.
    double audit_epsilon = 0.0;
  };

  explicit U2eRankStage(const Config& config);

  /// Ranks `candidates` (indices into `soa`) for a task at
  /// `exact_task_location` into `ranked` (score, worker index), sorted
  /// score-desc / id-asc. `random_rank` supplies the per-worker priorities
  /// for kRandom (may be nullptr otherwise).
  ///
  /// When the flight recorder is on, emits one kAuditCandidates event
  /// (`audit_task_id`, candidate count, config.audit_epsilon) — every
  /// candidate's noisy location is a worker-side disclosure to the
  /// requester — plus one kAuditCandidate per ranked entry in full-audit
  /// mode (obs::AuditFullEnabled).
  void Rank(const reachability::WorkerFilterSoA& soa,
            const std::vector<uint32_t>& candidates,
            geo::Point exact_task_location, const double* random_rank,
            std::vector<std::pair<double, size_t>>& ranked,
            int64_t audit_task_id = obs::kAuditNoTask);

  /// Batched probability scoring of (observed distance, radius) pairs:
  /// out[i] = Pr(reachable at U2E | d[i], r[i]), through the LUT when
  /// enabled. The protocol-party adapter ranks AoS candidate lists through
  /// this.
  void ScoreBatch(const double* observed_distance_m,
                  const double* reach_radius_m, size_t n, double* out);

  /// Staged variant of ScoreBatch for AoS call sites (the protocol device
  /// ranks CandidateWorker lists): write the i-th candidate's observed
  /// distance / radius into the arrays StageScoreInputs(n) returns, then
  /// ScoreStagedInputs(n) scores them and returns the probabilities. Both
  /// point into the stage's batching scratch, so a caller ranking
  /// repeatedly through one stage allocates nothing once the high-water
  /// capacity is reached. Pointers are invalidated by the next
  /// StageScoreInputs or Rank call.
  struct BatchInputs {
    double* observed_distance_m;
    double* reach_radius_m;
  };
  BatchInputs StageScoreInputs(size_t n);
  const double* ScoreStagedInputs(size_t n);

 private:
  Config config_;
  std::optional<reachability::KernelLut> lut_;
  // Batching scratch, reused across tasks.
  std::vector<double> d_;
  std::vector<double> r_;
  std::vector<double> p_;
};

}  // namespace scguard::assign

#endif  // SCGUARD_ASSIGN_STAGES_RANK_STAGE_H_
