#ifndef SCGUARD_PRIVACY_CLOAKING_H_
#define SCGUARD_PRIVACY_CLOAKING_H_

#include "geo/bbox.h"
#include "geo/point.h"
#include "stats/rng.h"

namespace scguard::privacy {

/// The spatial-cloaking baseline of the related work (Gruteser &
/// Grunwald; Pournajaf et al.): instead of a perturbed point, the device
/// reports a rectangle that contains its true location.
///
/// The rectangle is placed uniformly at random subject to containing the
/// true point, so that — absent side information — the location is
/// uniformly distributed within the reported cloak. Unlike Geo-I, the
/// guarantee is *syntactic*: a prior-informed adversary can concentrate
/// far beyond uniform (quantified by privacy::BayesianAdversary and
/// bench_cloaking_vs_geoi), which is the paper's argument for preferring
/// geo-indistinguishability.
class CloakingMechanism {
 public:
  /// Cloak rectangles of `width_m` x `height_m` (> 0).
  CloakingMechanism(double width_m, double height_m);

  /// A square cloak with the given area.
  static CloakingMechanism WithArea(double area_m2);

  /// Reports a cloak containing `location`.
  geo::BoundingBox Cloak(geo::Point location, stats::Rng& rng) const;

  double width_m() const { return width_; }
  double height_m() const { return height_; }
  double area_m2() const { return width_ * height_; }

 private:
  double width_;
  double height_;
};

/// Probability that a worker uniformly distributed in `cloak` is within
/// `reach_radius_m` of `task` — the cloaked analogue of the reachability
/// probability (midpoint-rule fraction of the cloak covered by the disk).
double CloakReachProbability(const geo::BoundingBox& cloak, geo::Point task,
                             double reach_radius_m);

}  // namespace scguard::privacy

#endif  // SCGUARD_PRIVACY_CLOAKING_H_
