#include "geo/projection.h"

#include <cmath>

namespace scguard::geo {
namespace {

constexpr double kEarthRadiusMeters = 6371000.0;
constexpr double kDegToRad = M_PI / 180.0;

}  // namespace

LocalProjection::LocalProjection(LatLon origin)
    : origin_(origin),
      meters_per_deg_lat_(kEarthRadiusMeters * kDegToRad),
      meters_per_deg_lon_(kEarthRadiusMeters * kDegToRad *
                          std::cos(origin.lat * kDegToRad)) {}

Point LocalProjection::Forward(LatLon ll) const {
  return {(ll.lon - origin_.lon) * meters_per_deg_lon_,
          (ll.lat - origin_.lat) * meters_per_deg_lat_};
}

LatLon LocalProjection::Backward(Point p) const {
  return {origin_.lat + p.y / meters_per_deg_lat_,
          origin_.lon + p.x / meters_per_deg_lon_};
}

}  // namespace scguard::geo
