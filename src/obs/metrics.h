#ifndef SCGUARD_OBS_METRICS_H_
#define SCGUARD_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/obs_config.h"

namespace scguard::obs {

/// Number of independent atomic cells each metric spreads its updates
/// over. Threads are assigned cells round-robin, so update contention on
/// a hot counter scales down by ~kNumShards; reads merge all cells.
inline constexpr int kNumShards = 8;

namespace internal {
/// This thread's fixed shard index in [0, kNumShards).
int ShardIndex();

/// One cache line per cell so shards never false-share.
struct alignas(64) CounterCell {
  std::atomic<int64_t> value{0};
};

struct alignas(64) DoubleCell {
  std::atomic<double> value{0.0};
};
}  // namespace internal

/// A monotonically increasing integer metric. Updates are relaxed adds to
/// a per-thread shard; `Value()` is the exact sum of all increments ever
/// applied (int64 addition is order-free, so totals are deterministic
/// whenever the increment count is — the determinism contract benches and
/// tests rely on).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// No-op unless observability is enabled. `n` may be any non-negative
  /// delta; the common case is 1.
  void Increment(int64_t n = 1) {
    if (!Enabled()) return;
    cells_[static_cast<size_t>(internal::ShardIndex())].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Merged total across shards.
  int64_t Value() const {
    int64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every shard. Not atomic with respect to concurrent updates.
  void Reset() {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<internal::CounterCell, kNumShards> cells_;
};

/// A point-in-time double metric (queue depth, epsilon spent). `Set`
/// last-writer-wins; `Add` accumulates. Unsharded: gauges are not hot
/// enough to need it, and last-writer semantics shard poorly anyway.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  void Add(double delta) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram over doubles with sharded atomic bucket
/// counts. Bucket i counts observations <= bounds[i] (and > bounds[i-1]);
/// one implicit overflow bucket catches the rest. Quantiles are estimated
/// by linear interpolation inside the owning bucket, so precision is set
/// by the bucket grid, not the observation count.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Default grid for latencies in seconds: 1-2-5 decades from 1 us to
  /// 100 s — wide enough for a per-task stage and a whole bench run.
  static std::vector<double> DefaultLatencyBounds();

  /// No-op unless observability is enabled.
  void Observe(double v);

  int64_t Count() const;
  double Sum() const;

  /// Estimated q-quantile, q in [0, 1]; 0 when empty. Observations in the
  /// overflow bucket clamp to the largest finite bound.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// Merged per-bucket counts (bounds().size() + 1 entries, the last
  /// being the overflow bucket).
  std::vector<int64_t> BucketCounts() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  /// cells_[shard * num_buckets + bucket]. Rows are contiguous per shard,
  /// so two shards only share a cache line at row boundaries; per-shard
  /// sums are fully padded.
  std::vector<std::atomic<int64_t>> cells_;
  std::array<internal::DoubleCell, kNumShards> sums_;
};

/// Read-only view of every registered metric at one instant, sorted by
/// name. Counters merge exactly; histogram stats are computed from the
/// merged buckets.
struct MetricsSnapshot {
  struct HistogramStats {
    int64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

  /// Prometheus text exposition: counters and gauges as-is, histograms as
  /// summaries (quantile-labeled samples plus _sum/_count). Metric names
  /// map '.' and '-' to '_'.
  std::string ToPrometheus() const;
};

/// The process-wide name -> metric table. Lookup is a mutex-protected map
/// probe; instruments therefore resolve their metrics once (per object or
/// per run), never per update. Returned pointers are stable for the
/// registry's lifetime — metrics are never erased.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The instance all in-tree instrumentation uses. Never destroyed, so
  /// metric pointers cached in static storage stay valid at exit.
  static MetricsRegistry& Global();

  /// Finds or creates. Names follow `scguard.<subsystem>.<name>`
  /// (DESIGN.md §7). Valid (and usable as no-ops) even while disabled.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);

  /// `bounds` applies only on first creation (empty = default latency
  /// grid); later callers get the existing histogram unchanged.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (registrations stay). For tests and benches that
  /// want per-phase deltas.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace scguard::obs

#endif  // SCGUARD_OBS_METRICS_H_
