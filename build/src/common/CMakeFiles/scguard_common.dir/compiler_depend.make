# Empty compiler generated dependencies file for scguard_common.
# This may be replaced when dependencies are built.
