// Microbenchmarks (google-benchmark): the primitive costs behind the
// end-to-end numbers — noise sampling, reachability-probability evaluation
// per model, index queries, and whole-workload assignment throughput.

#include <benchmark/benchmark.h>

#include "assign/algorithms.h"
#include "bench/bench_common.h"
#include "data/beijing.h"
#include "data/workload.h"
#include "index/kdtree.h"
#include "index/pruning.h"
#include "privacy/planar_laplace.h"
#include "reachability/analytical_model.h"
#include "reachability/empirical_model.h"
#include "reachability/model_cache.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "sim/experiment.h"
#include "stats/lambert_w.h"
#include "stats/rice.h"
#include "stats/rng.h"

namespace scguard {
namespace {

const privacy::PrivacyParams kParams{0.7, 800.0};

void BM_LambertWm1(benchmark::State& state) {
  double x = -0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(*stats::LambertWm1(x));
    x = -0.05 - (x == -0.2 ? 0.0 : 0.15);  // Alternate inputs.
  }
}
BENCHMARK(BM_LambertWm1);

void BM_PlanarLaplaceSample(benchmark::State& state) {
  const privacy::PlanarLaplace pl(kParams.unit_epsilon());
  stats::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pl.Sample(rng));
  }
}
BENCHMARK(BM_PlanarLaplaceSample);

void BM_RiceCdf(benchmark::State& state) {
  const stats::RiceDistribution rice(static_cast<double>(state.range(0)),
                                     1616.0);
  double x = 500.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rice.Cdf(x));
    x = x < 4000.0 ? x + 250.0 : 500.0;
  }
}
BENCHMARK(BM_RiceCdf)->Arg(500)->Arg(2000)->Arg(8000);

void BM_ProbReachable(benchmark::State& state) {
  const auto mode = static_cast<reachability::AnalyticalMode>(state.range(0));
  const reachability::AnalyticalModel model(kParams, mode);
  double d = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.ProbReachable(reachability::Stage::kU2E, d, 1400.0));
    d = d < 6000.0 ? d + 100.0 : 0.0;
  }
  state.SetLabel(std::string(AnalyticalModeName(mode)));
}
BENCHMARK(BM_ProbReachable)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_EmpiricalLookup(benchmark::State& state) {
  reachability::EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 50000;
  stats::Rng rng(2);
  const auto model =
      reachability::EmpiricalModel::Build(config, kParams, rng);
  double d = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model->ProbReachable(reachability::Stage::kU2U, d, 1400.0));
    d = d < 6000.0 ? d + 100.0 : 0.0;
  }
}
BENCHMARK(BM_EmpiricalLookup);

std::vector<index::UncertainRegionPruner::WorkerRegion> MakeRegions(int n) {
  stats::Rng rng(3);
  const geo::BoundingBox region = data::BeijingRegion();
  std::vector<index::UncertainRegionPruner::WorkerRegion> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back({i,
                   {rng.UniformDouble(region.min_x, region.max_x),
                    rng.UniformDouble(region.min_y, region.max_y)},
                   rng.UniformDouble(1000.0, 3000.0)});
  }
  return out;
}

void BM_PrunerCandidates(benchmark::State& state) {
  const auto backend = static_cast<index::PrunerBackend>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const index::UncertainRegionPruner pruner(MakeRegions(n), kParams, kParams,
                                            0.9, backend, data::BeijingRegion());
  stats::Rng rng(4);
  const geo::BoundingBox region = data::BeijingRegion();
  for (auto _ : state) {
    const geo::Point task{rng.UniformDouble(region.min_x, region.max_x),
                          rng.UniformDouble(region.min_y, region.max_y)};
    benchmark::DoNotOptimize(pruner.Candidates(task));
  }
  state.SetLabel(std::string(index::PrunerBackendName(backend)));
}
BENCHMARK(BM_PrunerCandidates)
    ->Args({0, 5000})   // Linear scan.
    ->Args({1, 5000})   // Grid.
    ->Args({2, 5000});  // R-tree.

void BM_KdTreeNearest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  stats::Rng rng(7);
  const geo::BoundingBox region = data::BeijingRegion();
  std::vector<index::KdTree::Entry> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    entries.push_back({{rng.UniformDouble(region.min_x, region.max_x),
                        rng.UniformDouble(region.min_y, region.max_y)},
                       i});
  }
  const index::KdTree tree(std::move(entries));
  for (auto _ : state) {
    const geo::Point q{rng.UniformDouble(region.min_x, region.max_x),
                       rng.UniformDouble(region.min_y, region.max_y)};
    benchmark::DoNotOptimize(tree.Nearest(q));
  }
}
BENCHMARK(BM_KdTreeNearest)->Arg(500)->Arg(5000)->Arg(50000);

void BM_EndToEndAssignment(benchmark::State& state) {
  data::WorkloadConfig config;
  config.num_workers = static_cast<int>(state.range(0));
  config.num_tasks = static_cast<int>(state.range(0));
  stats::Rng rng(5);
  assign::Workload workload =
      data::MakeUniformWorkload(data::BeijingRegion(), config, rng);
  data::PerturbWorkload(kParams, kParams, rng, workload);
  assign::AlgorithmParams params;
  params.worker_params = kParams;
  params.task_params = kParams;
  assign::MatcherHandle handle = assign::MakeProbabilisticModel(params);
  for (auto _ : state) {
    stats::Rng run_rng(6);
    benchmark::DoNotOptimize(handle.Run(workload, run_rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EndToEndAssignment)->Arg(100)->Arg(500)->Arg(1000);

// ---- Runtime subsystem: seed fan-out, sharded builds, model cache ----

// The 10-seed paper config end to end, serial vs pooled. The aggregated
// metrics are bit-identical across the two arms (see runtime_test); only
// wall-clock changes. Arg = num_threads, 0 = all hardware threads.
void BM_ExperimentSeedFanout(benchmark::State& state) {
  sim::ExperimentConfig config = bench::PaperConfig();
  config.runtime.num_threads = static_cast<int>(state.range(0));
  const auto runner = sim::ExperimentRunner::Create(config);
  const privacy::PrivacyParams p{0.7, 800.0};
  for (auto _ : state) {
    assign::MatcherHandle handle =
        assign::MakeProbabilisticModel(bench::MakeParams(p));
    benchmark::DoNotOptimize(runner->Run(handle, p, p));
  }
  state.SetLabel(StrCat("threads=", config.runtime.ResolvedThreads()));
}
BENCHMARK(BM_ExperimentSeedFanout)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// One 200k-sample empirical build at a fixed 16-shard split. The shard
// count pins the Monte-Carlo streams, so every arm produces the same
// tables; the thread count only spreads the shards.
void BM_EmpiricalBuildSharded(benchmark::State& state) {
  reachability::EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 200000;
  config.num_shards = bench::kBenchBuildShards;
  runtime::RuntimeOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  const auto pool = runtime::MakePool(options);
  for (auto _ : state) {
    stats::Rng rng(2027);
    benchmark::DoNotOptimize(
        reachability::EmpiricalModel::Build(config, kParams, rng, pool.get()));
  }
  state.SetLabel(StrCat("threads=", options.ResolvedThreads()));
}
BENCHMARK(BM_EmpiricalBuildSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Cold build through the cache (every iteration pays the Monte-Carlo
// cost) vs a warm hit — the amortization every bench binary now gets via
// bench::BuildEmpirical. Expect >= 100x between the two.
void BM_ModelCacheColdBuild(benchmark::State& state) {
  reachability::EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 200000;
  config.num_shards = bench::kBenchBuildShards;
  for (auto _ : state) {
    reachability::ModelCache cache;
    benchmark::DoNotOptimize(cache.GetOrBuild(config, kParams, kParams,
                                              bench::kBenchBuildSeed,
                                              bench::BenchPool()));
  }
}
BENCHMARK(BM_ModelCacheColdBuild)->Unit(benchmark::kMillisecond);

void BM_ModelCacheHit(benchmark::State& state) {
  reachability::EmpiricalModelConfig config;
  config.region = data::BeijingRegion();
  config.num_samples = 200000;
  config.num_shards = bench::kBenchBuildShards;
  reachability::ModelCache cache;
  benchmark::DoNotOptimize(cache.GetOrBuild(
      config, kParams, kParams, bench::kBenchBuildSeed, bench::BenchPool()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.GetOrBuild(config, kParams, kParams, bench::kBenchBuildSeed));
  }
}
BENCHMARK(BM_ModelCacheHit);

// Cost of the observer-only U2U ground-truth accuracy scan
// (EnginePolicy::compute_accuracy_metrics): on (1) vs off (0).
void BM_ScGuardAccuracyScan(benchmark::State& state) {
  data::WorkloadConfig config;
  config.num_workers = 500;
  config.num_tasks = 500;
  stats::Rng rng(5);
  assign::Workload workload =
      data::MakeUniformWorkload(data::BeijingRegion(), config, rng);
  data::PerturbWorkload(kParams, kParams, rng, workload);
  const reachability::AnalyticalModel model(kParams);
  assign::EnginePolicy policy;
  policy.u2u_model = &model;
  policy.u2e_model = &model;
  policy.worker_params = kParams;
  policy.task_params = kParams;
  policy.compute_accuracy_metrics = state.range(0) != 0;
  assign::ScGuardEngine engine(policy);
  for (auto _ : state) {
    stats::Rng run_rng(6);
    benchmark::DoNotOptimize(engine.Run(workload, run_rng));
  }
}
BENCHMARK(BM_ScGuardAccuracyScan)->Arg(1)->Arg(0);

}  // namespace
}  // namespace scguard

BENCHMARK_MAIN();
