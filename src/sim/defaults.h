#ifndef SCGUARD_SIM_DEFAULTS_H_
#define SCGUARD_SIM_DEFAULTS_H_

#include <array>

#include "privacy/privacy_params.h"

namespace scguard::sim {

// The parameter grid of paper Sec. V-A; defaults in the paper's boldface.

/// Privacy level sweep (strict -> loose).
inline constexpr std::array<double, 4> kEpsilons = {0.1, 0.4, 0.7, 1.0};
inline constexpr double kDefaultEpsilon = 0.7;

/// Radius-of-concern sweep, meters.
inline constexpr std::array<double, 4> kRadii = {200.0, 800.0, 1400.0, 2000.0};
inline constexpr double kDefaultRadius = 800.0;

/// U2U threshold sweep.
inline constexpr std::array<double, 8> kAlphas = {0.05, 0.1,  0.15, 0.2,
                                                  0.25, 0.3, 0.35, 0.4};
inline constexpr double kDefaultAlpha = 0.1;

/// U2E threshold sweep.
inline constexpr std::array<double, 7> kBetas = {0.1,  0.15, 0.2, 0.25,
                                                 0.3, 0.35, 0.4};
inline constexpr double kDefaultBeta = 0.25;

inline privacy::PrivacyParams DefaultPrivacy() {
  return {kDefaultEpsilon, kDefaultRadius};
}

}  // namespace scguard::sim

#endif  // SCGUARD_SIM_DEFAULTS_H_
