#include "stats/lambert_w.h"

#include <cmath>

#include "common/str_format.h"

namespace scguard::stats {
namespace {

constexpr double kMinusOneOverE = -0.36787944117144233;  // -1/e

// Halley refinement of w*e^w = x starting from w0. Converges cubically for
// any starting point in the basin of the requested branch.
double Halley(double x, double w) {
  for (int i = 0; i < 64; ++i) {
    const double ew = std::exp(w);
    const double f = w * ew - x;
    if (f == 0.0) break;  // Exact solution (e.g. the branch point itself).
    const double wp1 = w + 1.0;
    const double denom = ew * wp1 - (w + 2.0) * f / (2.0 * wp1);
    const double step = f / denom;
    w -= step;
    if (std::abs(step) <= 1e-14 * (1.0 + std::abs(w))) break;
  }
  return w;
}

}  // namespace

Result<double> LambertW0(double x) {
  if (!(x >= kMinusOneOverE)) {
    return Status::InvalidArgument(
        StrCat("LambertW0 requires x >= -1/e, got ", x));
  }
  if (x == 0.0) return 0.0;
  double w;
  if (x < -0.32) {
    // Near the branch point: series in p = sqrt(2(1 + e*x)); the max guards
    // against 1 + e*x rounding slightly negative at x = -1/e.
    const double p = std::sqrt(std::max(0.0, 2.0 * (1.0 + M_E * x)));
    w = -1.0 + p - p * p / 3.0 + 11.0 / 72.0 * p * p * p;
  } else if (x < 3.0) {
    w = std::log1p(x);  // Within ~35% of W0 on this range; Halley fixes it.
  } else {
    const double lx = std::log(x);
    const double llx = std::log(lx);  // > 0 for x >= 3.
    w = lx - llx + llx / lx;  // Asymptotic expansion.
  }
  return Halley(x, w);
}

Result<double> LambertWm1(double x) {
  if (!(x >= kMinusOneOverE) || !(x < 0.0)) {
    return Status::InvalidArgument(
        StrCat("LambertWm1 requires -1/e <= x < 0, got ", x));
  }
  double w;
  if (x < -0.32) {
    // Near the branch point: series in p = -sqrt(2(1 + e*x)).
    const double p = -std::sqrt(std::max(0.0, 2.0 * (1.0 + M_E * x)));
    w = -1.0 + p - p * p / 3.0 + 11.0 / 72.0 * p * p * p;
  } else {
    // Asymptotic guess valid as x -> 0-.
    const double l1 = std::log(-x);
    const double l2 = std::log(-l1);
    w = l1 - l2 + l2 / l1;
  }
  return Halley(x, w);
}

}  // namespace scguard::stats
